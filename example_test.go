package incastlab_test

import (
	"fmt"

	"incastlab"
)

// The paper's headline simulation: repeated equal-demand bursts from N
// senders over a 10G/100G dumbbell under DCTCP. At 500 flows every sender
// is pinned at the 1-MSS degenerate point and the queue stands at N - BDP.
func ExampleRunIncastSim() {
	res := incastlab.RunIncastSim(incastlab.SimConfig{
		Flows:  500,
		Bursts: 4, // keep the example fast; the paper runs 11
	})
	fmt.Printf("algorithm: %s\n", res.AlgName)
	fmt.Printf("timeouts: %d\n", res.Timeouts)
	fmt.Printf("queue stands near N-BDP: %v\n", res.MaxQueue > 450 && res.MaxQueue < 700)
	// Output:
	// algorithm: dctcp
	// timeouts: 0
	// queue stands near N-BDP: true
}

// Millisampler's burst definition: contiguous 1 ms spans above 50% of line
// rate; an incast is a burst with more than 25 flows.
func ExampleDetectBursts() {
	p, _ := incastlab.ServiceByName("video")
	tr := p.Generate(incastlab.GenConfig{Seed: 3, DurationMS: 1000})
	bursts := incastlab.DetectBursts(tr)
	incasts := 0
	for _, b := range bursts {
		if b.IsIncast() {
			incasts++
		}
	}
	fmt.Printf("every video burst is an incast: %v\n", incasts == len(bursts) && len(bursts) > 0)
	// Output:
	// every video burst is an incast: true
}

// The Section 3.3 stability observation as a component: observe per-burst
// incast degrees, predict the worst case to expect next.
func ExampleNewPredictor() {
	pr := incastlab.NewPredictor(incastlab.DefaultPredictorConfig())
	for i := 0; i < 99; i++ {
		pr.Observe(150)
	}
	pr.Observe(420) // one rare deep incast
	fmt.Printf("ready: %v\n", pr.Ready())
	fmt.Printf("predicted worst-case degree above typical: %v\n", pr.PredictedDegree() > 150)
	// Output:
	// ready: true
	// predicted worst-case degree above typical: true
}

// The Section 5.1 guardrail sizes a per-flow window clamp from a predicted
// incast degree: each flow gets its share of BDP plus marking headroom.
func ExampleNewGuardrail() {
	net := incastlab.DefaultDumbbellConfig(1)
	g := incastlab.NewGuardrail(
		incastlab.NewDCTCP(incastlab.DefaultDCTCPConfig()),
		net.BDPBytes(), net.ECNThresholdPackets*1500)
	g.Predict(50)
	fmt.Printf("cap for 50 flows: %d bytes\n", g.Cap())
	g.Predict(0)
	fmt.Printf("no incast expected, cap removed: %v\n", g.Cap() == 0)
	// Output:
	// cap for 50 flows: 2699 bytes
	// no incast expected, cap removed: true
}

// Wave scheduling (Section 5.2) turns one large incast into a series of
// small ones: only W flows are released at a time.
func ExampleNewWave() {
	res := incastlab.RunIncastSim(incastlab.SimConfig{
		Flows:         200,
		BurstDuration: 2 * incastlab.Millisecond,
		Bursts:        3,
		Interval:      20 * incastlab.Millisecond,
		Admitter:      incastlab.NewWave(50),
	})
	fmt.Printf("scheduled incast completed without loss: %v\n", res.Drops == 0)
	fmt.Printf("queue stayed shallow: %v\n", res.MaxQueue < 200)
	// Output:
	// scheduled incast completed without loss: true
	// queue stayed shallow: true
}
