// Dctcpmodes: the paper's Figure 5 in miniature — run the same 15 ms
// repeated incast at three flow counts and watch DCTCP pass through its
// three operating modes: healthy oscillation around the marking threshold,
// the 1-MSS degenerate point, and timeout-dominated collapse.
package main

import (
	"fmt"

	"incastlab"
)

func main() {
	// Flow counts straddling this configuration's mode boundaries:
	// healthy below K + BDP (~90), degenerate up to capacity + BDP
	// (~1358), timeouts beyond.
	for _, n := range []int{80, 500, 1400} {
		res := incastlab.RunIncastSim(incastlab.SimConfig{
			Flows:  n,
			Bursts: 6, // enough for steady state; the demo favors speed
		})

		fmt.Printf("=== %d flows ===\n", n)
		fmt.Printf("  BCT %v  queue max %.0f pkts (capacity %d)  spike %.0f\n",
			res.MeanBCT, res.MaxQueue, res.QueueCapacity, res.SpikePackets)
		fmt.Printf("  below-K time %.0f%%  drops %d  timeouts %d\n",
			100*res.FracBelowK, res.Drops, res.Timeouts)

		switch {
		case res.Timeouts > 0:
			fmt.Println("  mode 3: overflow drops with 1-MSS windows mean no dup ACKs;")
			fmt.Printf("          recovery waits for the %v min-RTO, so BCT ~ %v.\n",
				200*incastlab.Millisecond, res.MeanBCT)
		case res.FracBelowK < 0.10:
			fmt.Printf("  mode 2: all flows pinned at 1 MSS; queue stands at N-BDP = %.0f pkts;\n",
				float64(n-25))
			fmt.Println("          ~every packet is CE-marked, yet nobody can back off further.")
		default:
			fmt.Println("  mode 1: queue oscillates around K; marking comes in phases;")
			fmt.Println("          flows keep multi-packet windows and finish on time.")
		}

		// A terminal-sized queue profile: one row per 500us.
		fmt.Println("  queue profile (# = 40 pkts):")
		step := int(500 * incastlab.Microsecond / incastlab.Time(res.AvgQueue.IntervalNS))
		for i := 0; i < len(res.AvgQueue.Values); i += step {
			v := res.AvgQueue.Values[i]
			nHash := int(v / 40)
			if nHash > 70 {
				nHash = 70
			}
			bar := make([]byte, nHash)
			for j := range bar {
				bar[j] = '#'
			}
			fmt.Printf("  %6.1fms %5.0f %s\n", float64(res.AvgQueue.TimeAt(i))/1e6, v, bar)
		}
		fmt.Println()
	}
}
