// Partitionaggregate: the application pattern that causes incast, as a
// closed loop. A coordinator fans a query out to N workers; their roughly
// synchronized responses converge on the coordinator's ToR downlink. The
// example holds the total response volume constant and sweeps the fan-in
// degree, showing the paper's service-level story: the median query is
// bandwidth-bound and immune, while the tail is destroyed by incast loss.
package main

import (
	"fmt"

	"incastlab"
)

func main() {
	fmt.Println("partition/aggregate: 4 MB of responses per query, fan-in sweep")
	fmt.Printf("%8s %12s %12s %12s %10s\n", "workers", "QCT p50", "QCT p99", "QCT max", "timeouts")

	for _, workers := range []int{20, 80, 400, 1600} {
		res := incastlab.RunPartitionAggregate(incastlab.PartitionAggregateConfig{
			Workers:          workers,
			ResponseBytes:    4_000_000 / int64(workers),
			ProcessingJitter: 100 * incastlab.Microsecond,
			Queries:          10,
			ThinkTime:        incastlab.Millisecond,
			Seed:             1,
		})
		s := res.QCT
		fmt.Printf("%8d %10.2fms %10.2fms %10.2fms %10d\n",
			workers, s.P50, s.P99, s.Max, res.Timeouts)
	}

	fmt.Println("\nthe bandwidth bound is ~3.2 ms for every row; everything beyond it is")
	fmt.Println("incast queueing, and the max column shows RTO-bound collapse at high fan-in.")
}
