// Guardrail: the paper's Section 5 proposals in action. The Section 3.3
// observation — per-service incast degree distributions are stable and
// therefore predictable — feeds two proactive mechanisms:
//
//  1. a guardrail (Section 5.1) that clamps per-flow ramp-up at the
//     predicted fair share, so stragglers cannot "unlearn" the incast
//     window between bursts; and
//  2. a receiver-driven wave scheduler (Section 5.2) that splits one large
//     incast into a series of healthy small ones.
//
// The example predicts the incast degree from Millisampler observations of
// the "aggregator" service and then compares vanilla DCTCP, guardrail, and
// wave scheduling on the same simulated incast.
package main

import (
	"fmt"

	"incastlab"
)

func main() {
	// --- Step 1: learn the service's incast degree from measurements. ----
	p, _ := incastlab.ServiceByName("aggregator")
	cfg := incastlab.DefaultCollectConfig()
	cfg.Hosts, cfg.Rounds = 8, 3

	pr := incastlab.NewPredictor(incastlab.DefaultPredictorConfig())
	for _, tr := range incastlab.Collect(p, cfg) {
		for _, b := range incastlab.DetectBursts(tr) {
			if b.IsIncast() {
				pr.Observe(b.PeakFlows)
			}
		}
	}
	fmt.Printf("observed %d incasts; mean degree %.0f, predicted worst case (p99) %d flows\n",
		pr.N(), pr.Mean(), pr.PredictedDegree())
	fmt.Printf("stability (CoV of degree): %.2f — low, as Figure 3 promises\n\n", pr.Stability())

	// --- Step 2: size the guardrail from the prediction. -----------------
	// We simulate an incast near the service's typical degree.
	const flows = 150
	net := incastlab.DefaultDumbbellConfig(flows)
	bdp := net.BDPBytes()
	kBytes := net.ECNThresholdPackets * 1500

	schemes := []struct {
		name string
		cfg  incastlab.SimConfig
	}{
		{"dctcp (reactive)", incastlab.SimConfig{}},
		{"dctcp + guardrail (predict & clamp)", incastlab.SimConfig{
			Alg: func(int) incastlab.CongestionControl {
				g := incastlab.NewGuardrail(incastlab.NewDCTCP(incastlab.DefaultDCTCPConfig()), bdp, kBytes)
				g.Predict(flows) // per-bottleneck prediction for this incast
				return g
			},
		}},
		{"dctcp + wave scheduling (W=64)", incastlab.SimConfig{
			Admitter: incastlab.NewWave(64),
		}},
	}

	fmt.Printf("simulating a %d-flow, 15 ms incast under three schemes:\n\n", flows)
	fmt.Printf("%-38s %10s %10s %8s %8s %9s\n",
		"scheme", "BCT", "queue-max", "spike", "drops", "timeouts")
	for _, s := range schemes {
		c := s.cfg
		c.Flows = flows
		c.Bursts = 6
		res := incastlab.RunIncastSim(c)
		fmt.Printf("%-38s %10v %10.0f %8.0f %8d %9d\n",
			s.name, res.MeanBCT, res.MaxQueue, res.SpikePackets, res.Drops, res.Timeouts)
	}

	fmt.Println("\nthe guardrail removes the burst-start straggler spike at the same BCT;")
	fmt.Println("wave scheduling keeps only a healthy number of flows active at once,")
	fmt.Println("trading a little completion time for a far shallower queue.")
}
