// Quickstart: simulate one incast and read the three health indicators the
// paper's Section 4 analysis is built on — burst completion time, queue
// depth relative to the ECN threshold, and loss recovery events.
package main

import (
	"fmt"

	"incastlab"
)

func main() {
	// 100 senders each deliver an equal share of a 15 ms burst to one
	// receiver over the paper's 10G/100G dumbbell, using DCTCP. Eleven
	// bursts run; the first (slow-start transient) is discarded.
	res := incastlab.RunIncastSim(incastlab.SimConfig{Flows: 100})

	fmt.Printf("incast of %d DCTCP flows, 15ms bursts\n\n", res.Flows)

	// Indicator 1: did the burst complete near its optimum?
	fmt.Printf("burst completion time: %v (optimal 15ms)\n", res.MeanBCT)

	// Indicator 2: where does the queue sit relative to the marking
	// threshold K? A healthy DCTCP oscillates around K; a degenerate one
	// stands at N - BDP because windows cannot shrink below 1 MSS.
	fmt.Printf("queue: max %.0f packets against K=%d (%.0f%% of busy time below K)\n",
		res.MaxQueue, res.ECNThreshold, 100*res.FracBelowK)

	// Indicator 3: did congestion control lose the plot?
	fmt.Printf("loss recovery: %d drops, %d fast retransmits, %d timeouts\n",
		res.Drops, res.FastRetransmits, res.Timeouts)

	switch {
	case res.Timeouts > 0:
		fmt.Println("\n=> Mode 3: windows are too small for dup-ACK recovery; RTOs dominate.")
	case res.FracBelowK < 0.10:
		fmt.Println("\n=> Mode 2: every flow is pinned at the 1-MSS degenerate point;")
		fmt.Println("   the queue stands at N - BDP and everything is ECN-marked.")
	default:
		fmt.Println("\n=> Mode 1: congestion control is functioning.")
	}
}
