// Aggregator: a measurement-study walk-through of the paper's most
// congested service. Reproduces the Figure 1 view (one host, two seconds,
// 1 ms bins) and the Figure 2/4 burst statistics for the "aggregator"
// profile, using the Millisampler pipeline on synthesized traces.
package main

import (
	"fmt"
	"log"

	"incastlab"
)

func main() {
	p, ok := incastlab.ServiceByName("aggregator")
	if !ok {
		log.Fatal("aggregator profile missing")
	}
	fmt.Printf("service %q: %s\n\n", p.Name, p.Description)

	// --- Figure 1 style: one host, one two-second trace. -----------------
	tr := p.Generate(incastlab.GenConfig{Seed: 1, Host: 0, DurationMS: 2000})
	bursts := incastlab.DetectBursts(tr)

	fmt.Printf("two-second trace at 1 ms granularity (%.0f Gbps NIC)\n", float64(tr.LineRateBps)/1e9)
	fmt.Printf("  mean utilization: %.1f%% (paper reports 10.6%%: low overall, yet...)\n",
		100*tr.MeanUtilization())
	fmt.Printf("  bursts detected:  %d (spans above 50%% of line rate)\n", len(bursts))

	var incasts, maxFlows int
	var worstRetx float64
	for _, b := range bursts {
		if b.IsIncast() {
			incasts++
		}
		if b.PeakFlows > maxFlows {
			maxFlows = b.PeakFlows
		}
		if b.RetxLineRateFraction > worstRetx {
			worstRetx = b.RetxLineRateFraction
		}
	}
	fmt.Printf("  incasts (>25 flows): %d of %d bursts; peak concurrency %d flows\n",
		incasts, len(bursts), maxFlows)
	fmt.Printf("  worst retransmission burst: %.1f%% of line rate\n\n", 100*worstRetx)

	// Print the first few bursts the way an operator would eyeball them.
	fmt.Println("first bursts of the trace:")
	for i, b := range bursts {
		if i == 5 {
			break
		}
		fmt.Printf("  %v\n", b)
	}

	// --- Figure 2/4 style: the full 20-host, 9-round campaign. -----------
	cfg := incastlab.DefaultCollectConfig()
	rep := incastlab.AnalyzeTraces(incastlab.Collect(p, cfg))

	fmt.Printf("\ncampaign: %d hosts x %d rounds -> %d bursts\n", cfg.Hosts, cfg.Rounds, rep.Bursts)
	fmt.Printf("  burst frequency:   p50 %.0f/s\n", rep.BurstsPerSecond.Quantile(0.5))
	fmt.Printf("  burst duration:    p50 %.0fms, p90 %.0fms (most bursts are 1-2 ms)\n",
		rep.DurationMS.Quantile(0.5), rep.DurationMS.Quantile(0.9))
	fmt.Printf("  incast degree:     p50 %.0f flows, p99 %.0f flows\n",
		rep.Flows.Quantile(0.5), rep.Flows.Quantile(0.99))
	fmt.Printf("  ECN marking:       %.0f%% of bursts unmarked; p90 marking %.0f%%\n",
		100*rep.ECNFraction.At(0), 100*rep.ECNFraction.Quantile(0.9))
	fmt.Printf("  retransmissions:   %.1f%% of bursts affected; worst %.1f%% of line rate\n",
		100*(1-rep.RetxFraction.At(0)), 100*rep.RetxFraction.Max())

	// --- Section 3.3: the distribution is stable, hence predictable. -----
	pr := incastlab.NewPredictor(incastlab.DefaultPredictorConfig())
	for _, t := range incastlab.Collect(p, cfg) {
		for _, b := range incastlab.DetectBursts(t) {
			if b.IsIncast() {
				pr.Observe(b.PeakFlows)
			}
		}
	}
	fmt.Printf("\npredictor after %d incasts: expected worst-case degree (p99) = %d flows\n",
		pr.N(), pr.PredictedDegree())
	fmt.Println("this prediction is what sizes the Section 5.1 guardrail (see examples/guardrail)")
}
