module incastlab

go 1.22
