package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildBinary compiles the incastsim binary once for the CLI exit-code
// tests below — they assert on observable process behavior (exit status
// and stderr), which in-process flag tests cannot reach past log.Fatalf.
var buildBinary = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "incastsim-cli")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "incastsim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		return "", &exec.Error{Name: "go build: " + string(out), Err: err}
	}
	return bin, nil
})

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	bin, err := buildBinary()
	if err != nil {
		t.Fatalf("build incastsim: %v", err)
	}
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestCLIUnknownFidelity: a bogus -fidelity value must exit non-zero and
// the diagnostic must list the valid levels so the user can self-correct.
func TestCLIUnknownFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips binary build")
	}
	out, err := runCLI(t, "-fidelity", "quantum", "-flows", "8")
	if err == nil {
		t.Fatalf("-fidelity quantum exited zero; output:\n%s", out)
	}
	for _, want := range []string{`"quantum"`, `"packet"`, `"flow"`} {
		if !strings.Contains(out, want) {
			t.Errorf("unknown-fidelity diagnostic %q does not mention %s", out, want)
		}
	}
}

// TestCLIFlowFidelityNotifyRejected: fidelity "flow" cannot model the
// notification path; the refusal must exit non-zero and name both knobs
// — the fidelity value and the notification feature — so the user knows
// which of the two to change.
func TestCLIFlowFidelityNotifyRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips binary build")
	}
	out, err := runCLI(t, "-fidelity", "flow", "-notify", "-flows", "8")
	if err == nil {
		t.Fatalf("-fidelity flow -notify exited zero; output:\n%s", out)
	}
	for _, want := range []string{"-fidelity flow", "notification", `"packet"`} {
		if !strings.Contains(out, want) {
			t.Errorf("flow+notify diagnostic %q does not mention %q", out, want)
		}
	}
}

// TestCLIUnknownAggregation: a bogus -aggregation level must exit
// non-zero and the diagnostic must list the valid levels so the user can
// self-correct, mirroring the -fidelity contract.
func TestCLIUnknownAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips binary build")
	}
	out, err := runCLI(t, "-fidelity", "flow", "-aggregation", "bogus", "-flows", "8")
	if err == nil {
		t.Fatalf("-aggregation bogus exited zero; output:\n%s", out)
	}
	for _, want := range []string{`"bogus"`, `"auto"`, `"cohort"`, `"perflow"`} {
		if !strings.Contains(out, want) {
			t.Errorf("unknown-aggregation diagnostic %q does not mention %s", out, want)
		}
	}
}

// TestCLIAggregationNeedsFlowFidelity: -aggregation shapes the fluid
// backend's flow population; asking for it on the (default) packet
// backend must exit non-zero and point at the fidelity knob.
func TestCLIAggregationNeedsFlowFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips binary build")
	}
	out, err := runCLI(t, "-aggregation", "cohort", "-flows", "8")
	if err == nil {
		t.Fatalf("-aggregation cohort without -fidelity flow exited zero; output:\n%s", out)
	}
	for _, want := range []string{`"cohort"`, "-fidelity", `"flow"`} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregation-without-flow diagnostic %q does not mention %s", out, want)
		}
	}
}

// TestCLIFlowFidelityClosAccepted: since the fluid engine solves the
// whole queue network, -fidelity flow with a Clos scenario must run.
func TestCLIFlowFidelityClosAccepted(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips binary build")
	}
	outDir := t.TempDir()
	out, err := runCLI(t, "-scenario", "../../examples/scenarios/clos_crossrack.json",
		"-fidelity", "flow", "-quick", "-out", outDir)
	if err != nil {
		t.Fatalf("clos scenario at -fidelity flow failed: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(outDir, "clos_crossrack.csv")); err != nil {
		t.Errorf("no CSV written: %v", err)
	}
}
