// Command incastsim runs one packet-level incast simulation over the
// paper's dumbbell topology and reports the congestion outcome: queue
// behavior, burst completion times, marks, drops, and timeouts. With
// -scenario it instead runs a declarative JSON scenario spec end to end
// and writes the sweep's CSV artifact.
//
// Examples:
//
//	incastsim -flows 100                          # Mode 1/2 boundary
//	incastsim -flows 1400                         # Mode 3 (timeouts)
//	incastsim -flows 500 -cca swift               # pacing under incast
//	incastsim -flows 500 -wave 64                 # Section 5.2 scheduling
//	incastsim -flows 200 -guardrail               # Section 5.1 clamp
//	incastsim -flows 1400 -notify                 # explicit incast notification
//	incastsim -flows 1000 -shared 2000000 -contend 700000
//	incastsim -sweep 80,500,1400                  # one run per degree, in parallel
//	incastsim -scenario examples/scenarios/ml_periodic_bursts.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"incastlab"
	"incastlab/internal/cli"
)

func main() {
	flows := flag.Int("flows", 100, "incast degree N")
	durationMS := flag.Float64("duration", 15, "burst duration in ms")
	bursts := flag.Int("bursts", 11, "bursts to run (first is discarded)")
	intervalMS := flag.Float64("interval", 250, "burst start-to-start interval in ms")
	jitterMS := flag.Float64("jitter", 0, "per-flow start jitter ceiling in ms (0 = default 0.1; very large synchronized incasts need more to avoid retransmission-timer lockstep)")
	cca := flag.String("cca", "dctcp", "congestion control: dctcp, reno, swift")
	g := flag.Float64("g", 1.0/16, "DCTCP alpha gain")
	ecnK := flag.Int("ecn", 65, "switch ECN marking threshold in packets")
	queuePkts := flag.Int("queue", 1333, "switch queue capacity in packets")
	shared := flag.Int("shared", 0, "shared switch buffer bytes (0 = dedicated queues)")
	contend := flag.Int("contend", 0, "external rack contention bytes in the shared buffer")
	wave := flag.Int("wave", 0, "wave-schedule the incast with this concurrency (0 = off)")
	guardrail := flag.Bool("guardrail", false, "clamp ramp-up at the predicted fair share")
	notify := flag.Bool("notify", false, "switch-side incast detection with explicit sender notification")
	notifyBackoff := flag.Float64("notify-backoff", 0, "with -notify: multiplicative backoff factor in (0,1) (0 = default 0.5)")
	ictcp := flag.Bool("ictcp", false, "manage receive windows with a receiver-side ICTCP controller")
	seed := flag.Uint64("seed", 1, "jitter seed")
	plot := flag.Bool("plot", true, "print the ASCII queue plot")
	sweep := flag.String("sweep", "", "comma-separated incast degrees to run instead of -flows (e.g. 80,500,1400)")
	scenarioPath := flag.String("scenario", "", "run a declarative scenario spec (JSON file) instead of the flag-built simulation")
	out := flag.String("out", "out", "output directory for the -scenario CSV artifact")
	quick := flag.Bool("quick", false, "with -scenario: reduced burst counts")
	cacheDir := flag.String("cache", "", "with -scenario: content-addressed row cache directory (sweeps resume incrementally; warm reruns are byte-identical)")
	shardSpec := flag.String("shard", "", "with -scenario -cache: compute only rows K/N of the sweep, e.g. 0/4 (other rows are read from cache or skipped)")
	shardProcs := flag.Int("shard-procs", 0, "with -scenario -cache: fan the sweep out over this many worker processes, then assemble from cache")
	common := cli.Register(flag.CommandLine)
	flag.Parse()

	if err := common.Setup(); err != nil {
		log.Fatal(err)
	}
	defer common.Close()

	if *scenarioPath != "" {
		sc := scenarioInvocation{
			path:       *scenarioPath,
			out:        *out,
			seed:       *seed,
			quick:      *quick,
			cacheDir:   *cacheDir,
			shardSpec:  *shardSpec,
			shardProcs: *shardProcs,
		}
		sc.run(common)
		if err := common.WriteMetrics(true); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *cacheDir != "" || *shardSpec != "" || *shardProcs > 0 {
		log.Fatal("-cache, -shard, and -shard-procs only apply to -scenario runs")
	}

	metrics := common.Metrics()

	buildCfg := func(flows int) incastlab.SimConfig {
		net := incastlab.DefaultDumbbellConfig(flows)
		net.ECNThresholdPackets = *ecnK
		net.QueueCapacityPackets = *queuePkts
		net.QueueCapacityBytes = *queuePkts * 1500
		if *shared > 0 {
			net.SharedBufferBytes = *shared
			net.SharedBufferAlpha = 1
		}

		cfg := incastlab.SimConfig{
			Flows:               flows,
			BurstDuration:       incastlab.Time(*durationMS * float64(incastlab.Millisecond)),
			Bursts:              *bursts,
			Interval:            incastlab.Time(*intervalMS * float64(incastlab.Millisecond)),
			JitterMax:           incastlab.Time(*jitterMS * float64(incastlab.Millisecond)),
			Net:                 net,
			ExternalBufferBytes: *contend,
			Audit:               common.Audit,
			Seed:                *seed,
			Metrics:             metrics,
			Experiment:          "incastsim",
			Fidelity:            common.Fidelity,
			Aggregation:         common.Aggregation,
		}
		switch *cca {
		case "dctcp":
			gv := *g
			cfg.Alg = func(int) incastlab.CongestionControl {
				c := incastlab.DefaultDCTCPConfig()
				c.G = gv
				return incastlab.NewDCTCP(c)
			}
		case "reno":
			cfg.Alg = func(int) incastlab.CongestionControl { return incastlab.NewReno(10 * 1460) }
		case "swift":
			rtt := net.BaseRTT()
			cfg.Alg = func(int) incastlab.CongestionControl {
				return incastlab.NewSwift(incastlab.DefaultSwiftConfig(rtt))
			}
		default:
			log.Fatalf("unknown cca %q (dctcp, reno, swift)", *cca)
		}
		if *guardrail {
			inner := cfg.Alg
			bdp := net.BDPBytes()
			kBytes := net.ECNThresholdPackets * 1500
			n := flows
			cfg.Alg = func(i int) incastlab.CongestionControl {
				gr := incastlab.NewGuardrail(inner(i), bdp, kBytes)
				gr.Predict(n)
				return gr
			}
		}
		if *wave > 0 {
			cfg.Admitter = incastlab.NewWave(*wave)
		}
		if *notify {
			cfg.Notification = &incastlab.NotificationConfig{Backoff: *notifyBackoff}
		}
		cfg.EnableICTCP = *ictcp
		return cfg
	}

	degrees := []int{*flows}
	if *sweep != "" {
		degrees = degrees[:0]
		for _, f := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				log.Fatalf("bad -sweep entry %q: want positive integers like 80,500,1400", f)
			}
			degrees = append(degrees, n)
		}
	}

	cfgs := make([]incastlab.SimConfig, len(degrees))
	for i, n := range degrees {
		cfgs[i] = buildCfg(n)
		// An explicit -fidelity flow request fails up front with the
		// feature that blocks it, not deep inside the run.
		if common.Fidelity == incastlab.FidelityFlow {
			if err := cfgs[i].FlowCompatible(); err != nil {
				log.Fatalf("-fidelity flow: %v", err)
			}
		}
	}

	started := time.Now()
	results := incastlab.RunIncastSims(common.Workers, cfgs)
	elapsed := time.Since(started)

	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		net := cfgs[i].Net
		backend := ""
		if res.Fidelity == incastlab.FidelityFlow {
			backend = ", flow-level backend"
		}
		fmt.Printf("incast: %d flows x %.3gms bursts, %s, topology %dG/%dG, K=%d, queue=%d pkts%s\n",
			res.Flows, *durationMS, res.AlgName,
			net.HostLinkBps/1e9, net.CoreLinkBps/1e9, net.ECNThresholdPackets, net.QueueCapacityPackets, backend)
		fmt.Printf("  mean BCT        %v (max %v; optimal %.3gms)\n", res.MeanBCT, res.MaxBCT, *durationMS)
		fmt.Printf("  queue           busy-avg %.0f pkts, max %.0f, burst-start spike %.0f, %.0f%% of busy samples below K\n",
			busyAvg(res), res.MaxQueue, res.SpikePackets, 100*res.FracBelowK)
		fmt.Printf("  loss/recovery   %d drops, %d fast retransmits, %d timeouts, %d retransmitted packets\n",
			res.Drops, res.FastRetransmits, res.Timeouts, res.RetransmitPackets)
		fmt.Printf("  marking         %d CE marks over %d packets sent\n", res.Marks, res.SentPackets)

		if *plot && len(results) == 1 {
			if err := printQueue(res); err != nil {
				fmt.Fprintf(os.Stderr, "plot: %v\n", err)
			}
		}
	}
	audited := ""
	if common.Audit {
		audited = ", invariants audited: clean"
	}
	fmt.Printf("\n(%d simulation(s) in %v wall clock, workers=%d%s)\n",
		len(results), elapsed.Round(time.Millisecond), common.Workers, audited)

	if err := common.WriteMetrics(true); err != nil {
		log.Fatal(err)
	}
}

// scenarioInvocation carries one -scenario run's flags: the spec, the
// output directory, and the optional sweep-cache/sharding setup.
type scenarioInvocation struct {
	path, out  string
	seed       uint64
	quick      bool
	cacheDir   string
	shardSpec  string
	shardProcs int
}

// run loads the JSON spec, runs it (directly, or through the sweep cache
// when -cache is set), writes its CSV artifact under out, and prints the
// rendered summary. Any resolution or validation failure exits non-zero
// with the underlying error.
func (sc scenarioInvocation) run(common *cli.Common) {
	spec, err := incastlab.LoadScenario(sc.path)
	if err != nil {
		log.Fatalf("-scenario: %v", err)
	}
	opt := incastlab.Options{
		Seed:        sc.seed,
		Quick:       sc.quick,
		Workers:     common.Workers,
		Audit:       common.Audit,
		Metrics:     common.Metrics(),
		Fidelity:    common.Fidelity,
		Aggregation: common.Aggregation,
	}
	started := time.Now()

	var res *incastlab.TableResult
	switch {
	case sc.cacheDir == "" && (sc.shardSpec != "" || sc.shardProcs > 0):
		log.Fatal("-shard and -shard-procs need -cache: shards meet in the shared row cache")
	case sc.cacheDir == "":
		res, err = incastlab.RunScenario(opt, spec)
		if err != nil {
			log.Fatalf("-scenario %s: %v", sc.path, err)
		}
	default:
		if sc.shardProcs > 0 {
			sc.fanOut(common)
		}
		cache, err := incastlab.OpenSweepCache(sc.cacheDir)
		if err != nil {
			log.Fatalf("-cache: %v", err)
		}
		shard, err := parseShard(sc.shardSpec)
		if err != nil {
			log.Fatalf("-shard: %v", err)
		}
		var stats incastlab.SweepCacheStats
		res, stats, err = incastlab.RunScenarioCached(opt, spec, cache, shard)
		if err != nil {
			log.Fatalf("-scenario %s: %v", sc.path, err)
		}
		fmt.Printf("cache: %s\n", stats)
		if res == nil {
			fmt.Printf("[%s shard %s incomplete after %v: rows owned by other shards are not cached yet; rerun to resume]\n",
				spec.Name, sc.shardSpec, time.Since(started).Round(time.Millisecond))
			return
		}
	}

	if err := os.MkdirAll(sc.out, 0o755); err != nil {
		log.Fatalf("create output dir: %v", err)
	}
	if err := res.WriteFiles(sc.out); err != nil {
		log.Fatalf("%s: write artifacts: %v", res.Name(), err)
	}
	fmt.Print(res.Summary())
	fmt.Printf("\n[%s completed in %v; CSVs under %s]\n",
		res.Name(), time.Since(started).Round(time.Millisecond), sc.out)
}

// fanOut re-executes this binary once per shard with -shard k/N, waits for
// all workers, and returns with the cache fully populated (the caller then
// assembles the table from it). Worker failures are fatal: a missing shard
// would leave the sweep incomplete anyway.
func (sc scenarioInvocation) fanOut(common *cli.Common) {
	if sc.shardSpec != "" {
		log.Fatal("-shard and -shard-procs are mutually exclusive: -shard-procs spawns the shards itself")
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("-shard-procs: resolve executable: %v", err)
	}
	procs := make([]*exec.Cmd, sc.shardProcs)
	for k := 0; k < sc.shardProcs; k++ {
		args := []string{
			"-scenario", sc.path,
			"-cache", sc.cacheDir,
			"-shard", fmt.Sprintf("%d/%d", k, sc.shardProcs),
			"-seed", strconv.FormatUint(sc.seed, 10),
			"-out", sc.out,
			"-workers", strconv.Itoa(common.Workers),
		}
		if sc.quick {
			args = append(args, "-quick")
		}
		if common.Audit {
			args = append(args, "-audit")
		}
		if common.Fidelity != "" {
			args = append(args, "-fidelity", common.Fidelity)
		}
		if common.Aggregation != "" {
			args = append(args, "-aggregation", common.Aggregation)
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("-shard-procs: start shard %d: %v", k, err)
		}
		procs[k] = cmd
	}
	for k, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("-shard-procs: shard %d/%d failed: %v", k, sc.shardProcs, err)
		}
	}
}

// parseShard parses "K/N" into a shard selector; "" selects the whole
// sweep. Malformed specs are rejected here rather than deferred to the
// core validator, because the zero-value shard (which "0/0" would parse
// to) is a legal whole-sweep sentinel internally — a user who typed a
// shard spec meant to select a real slice, so anything that does not
// satisfy 0 <= K < N is an error with the fix spelled out.
func parseShard(s string) (incastlab.SweepShard, error) {
	if s == "" {
		return incastlab.SweepShard{}, nil
	}
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return incastlab.SweepShard{}, fmt.Errorf("want K/N, e.g. 0/4 (got %q)", s)
	}
	k, err1 := strconv.Atoi(strings.TrimSpace(idx))
	n, err2 := strconv.Atoi(strings.TrimSpace(cnt))
	if err1 != nil || err2 != nil {
		return incastlab.SweepShard{}, fmt.Errorf("want integers K/N, e.g. 0/4 (got %q)", s)
	}
	if n <= 0 {
		return incastlab.SweepShard{}, fmt.Errorf(
			"shard count must be positive (got %q); drop -shard to run the whole sweep", s)
	}
	if k < 0 || k >= n {
		return incastlab.SweepShard{}, fmt.Errorf(
			"shard index %d out of range for %d shard(s) (got %q); want 0 <= K < N, e.g. 0/%d", k, n, s, n)
	}
	return incastlab.SweepShard{Index: k, Count: n}, nil
}

func busyAvg(res *incastlab.SimResult) float64 {
	var sum float64
	n := 0
	for _, v := range res.AvgQueue.Values {
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func printQueue(res *incastlab.SimResult) error {
	fmt.Println("\nQueue depth over the averaged burst (packets vs ms):")
	step := len(res.AvgQueue.Values) / 60
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.AvgQueue.Values); i += step {
		v := res.AvgQueue.Values[i]
		bar := int(v / float64(res.QueueCapacity) * 60)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%7.2fms %6.0f |%s\n", float64(res.AvgQueue.TimeAt(i))/1e6, v, bars(bar))
	}
	return nil
}

func bars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
