package main

import (
	"strings"
	"testing"

	"incastlab"
)

func TestParseShardValid(t *testing.T) {
	cases := []struct {
		in   string
		want incastlab.SweepShard
	}{
		{"", incastlab.SweepShard{}},
		{"0/1", incastlab.SweepShard{Index: 0, Count: 1}},
		{"0/4", incastlab.SweepShard{Index: 0, Count: 4}},
		{"3/4", incastlab.SweepShard{Index: 3, Count: 4}},
		{" 1 / 2 ", incastlab.SweepShard{Index: 1, Count: 2}},
	}
	for _, c := range cases {
		got, err := parseShard(c.in)
		if err != nil {
			t.Errorf("parseShard(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseShard(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseShardInvalid(t *testing.T) {
	cases := []struct {
		in      string
		wantErr string
	}{
		// "0/0" parses to the zero-value shard, which internally means
		// "whole sweep" — a typed shard spec must never silently mean that.
		{"0/0", "shard count must be positive"},
		{"1/0", "shard count must be positive"},
		{"0/-2", "shard count must be positive"},
		{"4/4", "out of range"},
		{"7/4", "out of range"},
		{"-1/4", "out of range"},
		{"4", "want K/N"},
		{"a/b", "want integers"},
		{"1/b", "want integers"},
		{"1.5/4", "want integers"},
		{"/", "want integers"},
	}
	for _, c := range cases {
		got, err := parseShard(c.in)
		if err == nil {
			t.Errorf("parseShard(%q) = %+v, want error containing %q", c.in, got, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("parseShard(%q) error %q does not mention %q", c.in, err, c.wantErr)
		}
	}
}
