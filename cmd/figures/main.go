// Command figures regenerates every table and figure of "Understanding
// Incast Bursts in Modern Datacenters" (IMC 2024), plus the ablations, as
// CSV artifacts and text summaries. The set of experiments comes from the
// incastlab registry — there is no list to maintain here.
//
// Usage:
//
//	figures [-out DIR] [-seed N] [-quick] [-workers N] [-only name1,name2] [-list]
//
// CSVs land under DIR (default "out"); summaries print to stdout and are
// also written to DIR/summary.txt. Per-experiment wall-clock timings are
// additionally written, machine-readable, to DIR/bench_summary.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"incastlab"
	"incastlab/internal/cli"
)

func main() {
	out := flag.String("out", "out", "output directory for CSV artifacts")
	seed := flag.Uint64("seed", 1, "experiment seed")
	quick := flag.Bool("quick", false, "reduced corpus sizes (seconds instead of minutes)")
	only := flag.String("only", "", "comma-separated experiment names (default: all)")
	list := flag.Bool("list", false, "list experiment names and exit")
	common := cli.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, name := range incastlab.ExperimentNames() {
			fmt.Println(name)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
		for name := range selected {
			if _, ok := incastlab.LookupExperiment(name); !ok {
				log.Fatalf("unknown experiment %q; registered experiments are:\n  %s",
					name, strings.Join(incastlab.ExperimentNames(), "\n  "))
			}
		}
	}

	if err := common.Setup(); err != nil {
		log.Fatal(err)
	}
	defer common.Close()

	opt := incastlab.Options{
		Seed:        *seed,
		Quick:       *quick,
		Workers:     common.Workers,
		Audit:       common.Audit,
		Metrics:     common.Metrics(),
		Fidelity:    common.Fidelity,
		Aggregation: common.Aggregation,
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("create output dir: %v", err)
	}
	summaryFile, err := os.Create(filepath.Join(*out, "summary.txt"))
	if err != nil {
		log.Fatalf("create summary: %v", err)
	}
	sink := io.MultiWriter(os.Stdout, summaryFile)

	timings := make(map[string]float64)
	order := []string{}
	totalStarted := time.Now()
	for _, e := range incastlab.Experiments() {
		if len(selected) > 0 && !selected[e.Name] {
			continue
		}
		started := time.Now()
		res := e.Run(opt)
		elapsed := time.Since(started)
		if err := res.WriteFiles(*out); err != nil {
			log.Fatalf("%s: write artifacts: %v", e.Name, err)
		}
		timings[e.Name] = elapsed.Seconds()
		order = append(order, e.Name)
		common.Metrics().SetGauge("wall_experiment_seconds", incastlab.MetricsMergeSum,
			elapsed.Seconds(), "experiment", e.Name)
		fmt.Fprintf(sink, "%s\n[%s completed in %v; CSVs under %s]\n\n",
			res.Summary(), e.Name, elapsed.Round(time.Millisecond), *out)
	}
	total := time.Since(totalStarted)

	fmt.Fprintf(sink, "Wall-clock per experiment (workers=%d):\n", common.Workers)
	for _, name := range order {
		fmt.Fprintf(sink, "  %-26s %8.3fs\n", name, timings[name])
	}
	fmt.Fprintf(sink, "  %-26s %8.3fs\n", "total", total.Seconds())

	if err := writeBenchSummary(filepath.Join(*out, "bench_summary.json"), common.Workers, timings, total); err != nil {
		log.Fatalf("write bench summary: %v", err)
	}

	// A failed Close can lose buffered summary output; surface it as a
	// non-zero exit instead of silently shipping a truncated file.
	if err := summaryFile.Close(); err != nil {
		log.Fatalf("close summary: %v", err)
	}

	if err := common.WriteMetrics(false); err != nil {
		log.Fatal(err)
	}
}

// benchSummary is the machine-readable wall-clock record written alongside
// the CSV artifacts, for tracking orchestration performance across runs.
type benchSummary struct {
	Workers      int                `json:"workers"`
	TotalSeconds float64            `json:"total_seconds"`
	Experiments  map[string]float64 `json:"experiments_seconds"`
}

func writeBenchSummary(path string, workers int, timings map[string]float64, total time.Duration) error {
	b, err := json.MarshalIndent(benchSummary{
		Workers:      workers,
		TotalSeconds: total.Seconds(),
		Experiments:  timings,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
