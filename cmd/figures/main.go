// Command figures regenerates every table and figure of "Understanding
// Incast Bursts in Modern Datacenters" (IMC 2024), plus the ablations, as
// CSV artifacts and text summaries.
//
// Usage:
//
//	figures [-out DIR] [-seed N] [-quick] [-workers N] [-only name1,name2] [-list]
//
// CSVs land under DIR (default "out"); summaries print to stdout and are
// also written to DIR/summary.txt. Per-experiment wall-clock timings are
// additionally written, machine-readable, to DIR/bench_summary.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"incastlab"
)

// experiments enumerates the runners by name, in presentation order.
var experiments = []struct {
	name string
	run  func(incastlab.Options) incastlab.Result
}{
	{"table1", func(o incastlab.Options) incastlab.Result { return incastlab.Table1(o) }},
	{"fig1", func(o incastlab.Options) incastlab.Result { return incastlab.Fig1ExampleTrace(o) }},
	{"fig2_fig4", func(o incastlab.Options) incastlab.Result { return incastlab.Fig2And4BurstCharacterization(o) }},
	{"fig3", func(o incastlab.Options) incastlab.Result { return incastlab.Fig3Stability(o) }},
	{"fig5", func(o incastlab.Options) incastlab.Result { return incastlab.Fig5Modes(o) }},
	{"fig6", func(o incastlab.Options) incastlab.Result { return incastlab.Fig6ShortBursts(o) }},
	{"fig7", func(o incastlab.Options) incastlab.Result { return incastlab.Fig7InFlight(o) }},
	{"crossval", func(o incastlab.Options) incastlab.Result { return incastlab.CrossValidation(o) }},
	{"ablation_g", func(o incastlab.Options) incastlab.Result { return incastlab.AblationG(o) }},
	{"ablation_ecn_threshold", func(o incastlab.Options) incastlab.Result { return incastlab.AblationECNThreshold(o) }},
	{"ablation_shared_buffer", func(o incastlab.Options) incastlab.Result { return incastlab.AblationSharedBuffer(o) }},
	{"ablation_delayed_acks", func(o incastlab.Options) incastlab.Result { return incastlab.AblationDelayedACKs(o) }},
	{"ablation_guardrail", func(o incastlab.Options) incastlab.Result { return incastlab.AblationGuardrail(o) }},
	{"ablation_cca", func(o incastlab.Options) incastlab.Result { return incastlab.AblationCCA(o) }},
	{"ablation_min_rto", func(o incastlab.Options) incastlab.Result { return incastlab.AblationMinRTO(o) }},
	{"ablation_idle_restart", func(o incastlab.Options) incastlab.Result { return incastlab.AblationIdleRestart(o) }},
	{"ablation_receiver_window", func(o incastlab.Options) incastlab.Result { return incastlab.AblationReceiverWindow(o) }},
	{"ablation_marking", func(o incastlab.Options) incastlab.Result { return incastlab.AblationMarkingDiscipline(o) }},
	{"ext_query_tail", func(o incastlab.Options) incastlab.Result { return incastlab.QueryTailLatency(o) }},
	{"ext_rack_contention", func(o incastlab.Options) incastlab.Result { return incastlab.RackContention(o) }},
	{"ext_mode_boundary", func(o incastlab.Options) incastlab.Result { return incastlab.ModeBoundary(o) }},
}

func main() {
	out := flag.String("out", "out", "output directory for CSV artifacts")
	seed := flag.Uint64("seed", 1, "experiment seed")
	quick := flag.Bool("quick", false, "reduced corpus sizes (seconds instead of minutes)")
	workers := flag.Int("workers", 0, "worker goroutines per experiment sweep (0 = GOMAXPROCS, 1 = serial)")
	only := flag.String("only", "", "comma-separated experiment names (default: all)")
	list := flag.Bool("list", false, "list experiment names and exit")
	auditFlag := flag.Bool("audit", false, "run simulations in checked mode: enforce invariants (conservation, queue bounds, cc protocol bounds) on every packet-level run")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot of all runs to this file (\"-\" for stdout)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) and sample memory statistics")
	flag.Parse()

	if err := incastlab.ValidateWorkers(*workers); err != nil {
		log.Fatalf("-workers: %v", err)
	}

	if *list {
		for _, e := range experiments {
			fmt.Println(e.name)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
		for name := range selected {
			if !knownExperiment(name) {
				log.Fatalf("unknown experiment %q (use -list)", name)
			}
		}
	}

	opt := incastlab.Options{Seed: *seed, Quick: *quick, Workers: *workers, Audit: *auditFlag}

	var metrics *incastlab.MetricsRegistry
	if *metricsPath != "" || *pprofAddr != "" {
		metrics = incastlab.NewMetricsRegistry()
		opt.Metrics = metrics
	}
	var prof *incastlab.Profiler
	if *pprofAddr != "" {
		var err error
		prof, err = incastlab.StartProfiler(*pprofAddr, metrics, time.Second)
		if err != nil {
			log.Fatalf("-pprof: %v", err)
		}
		defer prof.Stop()
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", prof.Addr())
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("create output dir: %v", err)
	}
	summaryFile, err := os.Create(filepath.Join(*out, "summary.txt"))
	if err != nil {
		log.Fatalf("create summary: %v", err)
	}
	sink := io.MultiWriter(os.Stdout, summaryFile)

	timings := make(map[string]float64)
	order := []string{}
	totalStarted := time.Now()
	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		started := time.Now()
		res := e.run(opt)
		elapsed := time.Since(started)
		if err := res.WriteFiles(*out); err != nil {
			log.Fatalf("%s: write artifacts: %v", e.name, err)
		}
		timings[e.name] = elapsed.Seconds()
		order = append(order, e.name)
		metrics.SetGauge("wall_experiment_seconds", incastlab.MetricsMergeSum,
			elapsed.Seconds(), "experiment", e.name)
		fmt.Fprintf(sink, "%s\n[%s completed in %v; CSVs under %s]\n\n",
			res.Summary(), e.name, elapsed.Round(time.Millisecond), *out)
	}
	total := time.Since(totalStarted)

	fmt.Fprintf(sink, "Wall-clock per experiment (workers=%d):\n", *workers)
	for _, name := range order {
		fmt.Fprintf(sink, "  %-26s %8.3fs\n", name, timings[name])
	}
	fmt.Fprintf(sink, "  %-26s %8.3fs\n", "total", total.Seconds())

	if err := writeBenchSummary(filepath.Join(*out, "bench_summary.json"), *workers, timings, total); err != nil {
		log.Fatalf("write bench summary: %v", err)
	}

	// A failed Close can lose buffered summary output; surface it as a
	// non-zero exit instead of silently shipping a truncated file.
	if err := summaryFile.Close(); err != nil {
		log.Fatalf("close summary: %v", err)
	}

	if *metricsPath != "" {
		// Stop (idempotent) before snapshotting so the profiler's final
		// MemStats sample lands in the written file.
		prof.Stop()
		if err := metrics.Snapshot().WriteFile(*metricsPath); err != nil {
			log.Fatalf("-metrics: %v", err)
		}
		if *metricsPath != "-" {
			fmt.Printf("metrics snapshot written to %s\n", *metricsPath)
		}
	}
}

// benchSummary is the machine-readable wall-clock record written alongside
// the CSV artifacts, for tracking orchestration performance across runs.
type benchSummary struct {
	Workers      int                `json:"workers"`
	TotalSeconds float64            `json:"total_seconds"`
	Experiments  map[string]float64 `json:"experiments_seconds"`
}

func writeBenchSummary(path string, workers int, timings map[string]float64, total time.Duration) error {
	b, err := json.MarshalIndent(benchSummary{
		Workers:      workers,
		TotalSeconds: total.Seconds(),
		Experiments:  timings,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func knownExperiment(name string) bool {
	for _, e := range experiments {
		if e.name == name {
			return true
		}
	}
	return false
}
