// Command figures regenerates every table and figure of "Understanding
// Incast Bursts in Modern Datacenters" (IMC 2024), plus the ablations, as
// CSV artifacts and text summaries.
//
// Usage:
//
//	figures [-out DIR] [-seed N] [-quick] [-only name1,name2] [-list]
//
// CSVs land under DIR (default "out"); summaries print to stdout and are
// also written to DIR/summary.txt.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"incastlab"
)

// experiments enumerates the runners by name, in presentation order.
var experiments = []struct {
	name string
	run  func(incastlab.Options) incastlab.Result
}{
	{"table1", func(o incastlab.Options) incastlab.Result { return incastlab.Table1(o) }},
	{"fig1", func(o incastlab.Options) incastlab.Result { return incastlab.Fig1ExampleTrace(o) }},
	{"fig2_fig4", func(o incastlab.Options) incastlab.Result { return incastlab.Fig2And4BurstCharacterization(o) }},
	{"fig3", func(o incastlab.Options) incastlab.Result { return incastlab.Fig3Stability(o) }},
	{"fig5", func(o incastlab.Options) incastlab.Result { return incastlab.Fig5Modes(o) }},
	{"fig6", func(o incastlab.Options) incastlab.Result { return incastlab.Fig6ShortBursts(o) }},
	{"fig7", func(o incastlab.Options) incastlab.Result { return incastlab.Fig7InFlight(o) }},
	{"crossval", func(o incastlab.Options) incastlab.Result { return incastlab.CrossValidation(o) }},
	{"ablation_g", func(o incastlab.Options) incastlab.Result { return incastlab.AblationG(o) }},
	{"ablation_ecn_threshold", func(o incastlab.Options) incastlab.Result { return incastlab.AblationECNThreshold(o) }},
	{"ablation_shared_buffer", func(o incastlab.Options) incastlab.Result { return incastlab.AblationSharedBuffer(o) }},
	{"ablation_delayed_acks", func(o incastlab.Options) incastlab.Result { return incastlab.AblationDelayedACKs(o) }},
	{"ablation_guardrail", func(o incastlab.Options) incastlab.Result { return incastlab.AblationGuardrail(o) }},
	{"ablation_cca", func(o incastlab.Options) incastlab.Result { return incastlab.AblationCCA(o) }},
	{"ablation_min_rto", func(o incastlab.Options) incastlab.Result { return incastlab.AblationMinRTO(o) }},
	{"ablation_idle_restart", func(o incastlab.Options) incastlab.Result { return incastlab.AblationIdleRestart(o) }},
	{"ablation_receiver_window", func(o incastlab.Options) incastlab.Result { return incastlab.AblationReceiverWindow(o) }},
	{"ablation_marking", func(o incastlab.Options) incastlab.Result { return incastlab.AblationMarkingDiscipline(o) }},
	{"ext_query_tail", func(o incastlab.Options) incastlab.Result { return incastlab.QueryTailLatency(o) }},
	{"ext_rack_contention", func(o incastlab.Options) incastlab.Result { return incastlab.RackContention(o) }},
	{"ext_mode_boundary", func(o incastlab.Options) incastlab.Result { return incastlab.ModeBoundary(o) }},
}

func main() {
	out := flag.String("out", "out", "output directory for CSV artifacts")
	seed := flag.Uint64("seed", 1, "experiment seed")
	quick := flag.Bool("quick", false, "reduced corpus sizes (seconds instead of minutes)")
	only := flag.String("only", "", "comma-separated experiment names (default: all)")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Println(e.name)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
		for name := range selected {
			if !knownExperiment(name) {
				log.Fatalf("unknown experiment %q (use -list)", name)
			}
		}
	}

	opt := incastlab.Options{Seed: *seed, Quick: *quick}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("create output dir: %v", err)
	}
	summaryFile, err := os.Create(filepath.Join(*out, "summary.txt"))
	if err != nil {
		log.Fatalf("create summary: %v", err)
	}
	defer summaryFile.Close()
	sink := io.MultiWriter(os.Stdout, summaryFile)

	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		started := time.Now()
		res := e.run(opt)
		if err := res.WriteFiles(*out); err != nil {
			log.Fatalf("%s: write artifacts: %v", e.name, err)
		}
		fmt.Fprintf(sink, "%s\n[%s completed in %v; CSVs under %s]\n\n",
			res.Summary(), e.name, time.Since(started).Round(time.Millisecond), *out)
	}
}

func knownExperiment(name string) bool {
	for _, e := range experiments {
		if e.name == name {
			return true
		}
	}
	return false
}
