// Command millisample runs the measurement-study pipeline for one service:
// it synthesizes per-millisecond host traces, detects bursts at the paper's
// 50%-of-line-rate threshold, and prints the per-burst statistics the paper
// reports in Figures 1, 2, and 4.
//
// Examples:
//
//	millisample -service aggregator
//	millisample -service video -hosts 20 -rounds 9
//	millisample -service storage -trace        # dump one raw 1 ms trace
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strings"

	"incastlab"
)

func main() {
	service := flag.String("service", "aggregator", "service profile (see -listservices)")
	hosts := flag.Int("hosts", 20, "hosts to sample")
	rounds := flag.Int("rounds", 9, "collection rounds")
	traceMS := flag.Int("ms", 2000, "trace duration in milliseconds")
	seed := flag.Uint64("seed", 1, "campaign seed")
	dumpTrace := flag.Bool("trace", false, "dump one raw trace instead of the aggregate report")
	saveDir := flag.String("savedir", "", "archive the generated traces as CSV under this directory")
	listServices := flag.Bool("listservices", false, "list service profiles and exit")
	flag.Parse()

	if *listServices {
		for _, p := range incastlab.Services() {
			fmt.Printf("%-12s %s\n", p.Name, p.Description)
		}
		return
	}

	p, ok := incastlab.ServiceByName(*service)
	if !ok {
		var names []string
		for _, s := range incastlab.Services() {
			names = append(names, s.Name)
		}
		log.Fatalf("unknown service %q (have: %s)", *service, strings.Join(names, ", "))
	}

	if *dumpTrace {
		tr := p.Generate(incastlab.GenConfig{Seed: *seed, DurationMS: *traceMS})
		fmt.Println("ms  util  flows  ecn_frac  retx_frac")
		for i, s := range tr.Samples {
			capacity := float64(tr.LineRateBps) / 8 * float64(tr.IntervalNS) / 1e9
			if s.Bytes == 0 {
				continue
			}
			fmt.Printf("%4d  %.2f  %5d  %8.2f  %9.4f\n",
				i, s.Bytes/capacity, s.Flows, frac(s.ECNBytes, s.Bytes), frac(s.RetxBytes, s.Bytes))
		}
		return
	}

	cfg := incastlab.DefaultCollectConfig()
	cfg.Seed = *seed
	cfg.Hosts = *hosts
	cfg.Rounds = *rounds
	cfg.TraceMS = *traceMS
	traces := incastlab.Collect(p, cfg)
	if *saveDir != "" {
		for i, tr := range traces {
			path := filepath.Join(*saveDir, fmt.Sprintf("%s_trace_%03d.csv", p.Name, i))
			if err := tr.Save(path); err != nil {
				log.Fatalf("archive trace: %v", err)
			}
		}
		fmt.Printf("archived %d traces under %s\n", len(traces), *saveDir)
	}
	rep := incastlab.AnalyzeTraces(traces)

	fmt.Printf("service %q: %d traces (%d hosts x %d rounds x %dms), %d bursts (%.0f%% incasts)\n",
		p.Name, rep.Traces, *hosts, *rounds, *traceMS, rep.Bursts, 100*rep.IncastFraction())
	fmt.Printf("mean link utilization: %.1f%%\n\n", 100*rep.MeanUtilization)

	fmt.Println("metric                          p50      p90      p99      max")
	row := func(name string, q50, q90, q99, max float64) {
		fmt.Printf("%-28s %8.3g %8.3g %8.3g %8.3g\n", name, q50, q90, q99, max)
	}
	row("bursts per second", rep.BurstsPerSecond.Quantile(0.5), rep.BurstsPerSecond.Quantile(0.9),
		rep.BurstsPerSecond.Quantile(0.99), rep.BurstsPerSecond.Max())
	row("burst duration (ms)", rep.DurationMS.Quantile(0.5), rep.DurationMS.Quantile(0.9),
		rep.DurationMS.Quantile(0.99), rep.DurationMS.Max())
	row("active flows per burst", rep.Flows.Quantile(0.5), rep.Flows.Quantile(0.9),
		rep.Flows.Quantile(0.99), rep.Flows.Max())
	row("queue watermark (frac)", rep.QueueWatermark.Quantile(0.5), rep.QueueWatermark.Quantile(0.9),
		rep.QueueWatermark.Quantile(0.99), rep.QueueWatermark.Max())
	row("ECN-marked fraction", rep.ECNFraction.Quantile(0.5), rep.ECNFraction.Quantile(0.9),
		rep.ECNFraction.Quantile(0.99), rep.ECNFraction.Max())
	row("retx (frac of line rate)", rep.RetxFraction.Quantile(0.5), rep.RetxFraction.Quantile(0.9),
		rep.RetxFraction.Quantile(0.99), rep.RetxFraction.Max())

	fmt.Printf("\nbursts with no ECN marking: %.0f%%   bursts with no retransmissions: %.1f%%\n",
		100*rep.ECNFraction.At(0), 100*rep.RetxFraction.At(0))
	fmt.Printf("bursts below the 25-flow incast threshold: %.0f%%\n", 100*(1-rep.IncastFraction()))
}

func frac(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
