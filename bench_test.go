package incastlab_test

// The benchmark harness regenerates every table and figure of the paper
// (one benchmark per artifact) plus the DESIGN.md ablations. Each benchmark
// iteration runs the complete experiment; the first iteration of each also
// prints the experiment's summary — the same rows/series the paper reports
// — so `go test -bench=. -benchmem` doubles as the reproduction log.
//
// By default the experiments run in Quick mode (reduced corpus sizes) so
// the full suite finishes in minutes. Set INCASTLAB_FULL=1 to run the
// paper-sized corpora (what EXPERIMENTS.md records); cmd/figures does the
// same with nicer output handling.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"incastlab"
)

// benchOptions picks quick or full experiment sizing.
func benchOptions() incastlab.Options {
	return incastlab.Options{Seed: 1, Quick: os.Getenv("INCASTLAB_FULL") == ""}
}

// printedSummaries dedups summary printing across -benchtime iterations.
var printedSummaries sync.Map

func runExperiment(b *testing.B, name string, run func(incastlab.Options) incastlab.Result) {
	b.Helper()
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := run(opt)
		if _, done := printedSummaries.LoadOrStore(name, true); !done {
			fmt.Printf("\n%s\n", res.Summary())
		}
	}
}

// --- One benchmark per paper artifact. ----------------------------------

func BenchmarkTable1Services(b *testing.B) {
	runExperiment(b, "table1", func(o incastlab.Options) incastlab.Result {
		return incastlab.Table1(o)
	})
}

func BenchmarkFig1ExampleTrace(b *testing.B) {
	runExperiment(b, "fig1", func(o incastlab.Options) incastlab.Result {
		return incastlab.Fig1ExampleTrace(o)
	})
}

func BenchmarkFig2And4BurstCharacteristics(b *testing.B) {
	runExperiment(b, "fig2_fig4", func(o incastlab.Options) incastlab.Result {
		return incastlab.Fig2And4BurstCharacterization(o)
	})
}

func BenchmarkFig3Stability(b *testing.B) {
	runExperiment(b, "fig3", func(o incastlab.Options) incastlab.Result {
		return incastlab.Fig3Stability(o)
	})
}

func BenchmarkFig5DCTCPModes(b *testing.B) {
	runExperiment(b, "fig5", func(o incastlab.Options) incastlab.Result {
		return incastlab.Fig5Modes(o)
	})
}

func BenchmarkFig6ShortBursts(b *testing.B) {
	runExperiment(b, "fig6", func(o incastlab.Options) incastlab.Result {
		return incastlab.Fig6ShortBursts(o)
	})
}

func BenchmarkFig7InFlightSkew(b *testing.B) {
	runExperiment(b, "fig7", func(o incastlab.Options) incastlab.Result {
		return incastlab.Fig7InFlight(o)
	})
}

// --- Ablations (design choices DESIGN.md calls out). ---------------------

func BenchmarkAblationG(b *testing.B) {
	runExperiment(b, "ablation_g", func(o incastlab.Options) incastlab.Result {
		return incastlab.AblationG(o)
	})
}

func BenchmarkAblationECNThreshold(b *testing.B) {
	runExperiment(b, "ablation_ecn", func(o incastlab.Options) incastlab.Result {
		return incastlab.AblationECNThreshold(o)
	})
}

func BenchmarkAblationSharedBuffer(b *testing.B) {
	runExperiment(b, "ablation_shared", func(o incastlab.Options) incastlab.Result {
		return incastlab.AblationSharedBuffer(o)
	})
}

func BenchmarkAblationDelayedACKs(b *testing.B) {
	runExperiment(b, "ablation_delack", func(o incastlab.Options) incastlab.Result {
		return incastlab.AblationDelayedACKs(o)
	})
}

func BenchmarkAblationGuardrail(b *testing.B) {
	runExperiment(b, "ablation_guardrail", func(o incastlab.Options) incastlab.Result {
		return incastlab.AblationGuardrail(o)
	})
}

func BenchmarkAblationCCA(b *testing.B) {
	runExperiment(b, "ablation_cca", func(o incastlab.Options) incastlab.Result {
		return incastlab.AblationCCA(o)
	})
}

func BenchmarkAblationMinRTO(b *testing.B) {
	runExperiment(b, "ablation_min_rto", func(o incastlab.Options) incastlab.Result {
		return incastlab.AblationMinRTO(o)
	})
}

// BenchmarkCrossValidation runs the Millisampler-over-simulator check.
func BenchmarkCrossValidation(b *testing.B) {
	runExperiment(b, "crossval", func(o incastlab.Options) incastlab.Result {
		return incastlab.CrossValidation(o)
	})
}

func BenchmarkAblationIdleRestart(b *testing.B) {
	runExperiment(b, "ablation_idle_restart", func(o incastlab.Options) incastlab.Result {
		return incastlab.AblationIdleRestart(o)
	})
}

func BenchmarkAblationReceiverWindow(b *testing.B) {
	runExperiment(b, "ablation_receiver_window", func(o incastlab.Options) incastlab.Result {
		return incastlab.AblationReceiverWindow(o)
	})
}

func BenchmarkAblationMarkingDiscipline(b *testing.B) {
	runExperiment(b, "ablation_marking", func(o incastlab.Options) incastlab.Result {
		return incastlab.AblationMarkingDiscipline(o)
	})
}

// BenchmarkExtQueryTail runs the partition/aggregate fan-in sweep.
func BenchmarkExtQueryTail(b *testing.B) {
	runExperiment(b, "ext_query_tail", func(o incastlab.Options) incastlab.Result {
		return incastlab.QueryTailLatency(o)
	})
}

// BenchmarkExtRackContention runs the shared-buffer neighbor-incast study.
func BenchmarkExtRackContention(b *testing.B) {
	runExperiment(b, "ext_rack_contention", func(o incastlab.Options) incastlab.Result {
		return incastlab.RackContention(o)
	})
}

// BenchmarkExtModeBoundary sweeps the incast degree across both regime
// boundaries.
func BenchmarkExtModeBoundary(b *testing.B) {
	runExperiment(b, "ext_mode_boundary", func(o incastlab.Options) incastlab.Result {
		return incastlab.ModeBoundary(o)
	})
}

// --- Substrate micro-benchmarks. -----------------------------------------

// BenchmarkSimulatorPacketRate measures the packet-level simulator's
// throughput: one 100-flow, 1 ms burst end to end. Reported as ns/op for
// ~3.4k delivered packets (data + ACKs), plus engine events dispatched per
// wall-clock second.
func BenchmarkSimulatorPacketRate(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		res := incastlab.RunIncastSim(incastlab.SimConfig{
			Flows:         100,
			BurstDuration: incastlab.Millisecond,
			Bursts:        2,
			Interval:      5 * incastlab.Millisecond,
		})
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkMillisamplerAnalyze measures the measurement pipeline: generate
// and analyze one 2-second aggregator trace.
func BenchmarkMillisamplerAnalyze(b *testing.B) {
	p, _ := incastlab.ServiceByName("aggregator")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := p.Generate(incastlab.GenConfig{Seed: uint64(i + 1), DurationMS: 2000})
		incastlab.AnalyzeTraces([]*incastlab.MeasurementTrace{tr})
	}
}

// BenchmarkPredictorObserve measures the Section 3.3 predictor's ingest
// path.
func BenchmarkPredictorObserve(b *testing.B) {
	pr := incastlab.NewPredictor(incastlab.DefaultPredictorConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr.Observe(100 + i%50)
	}
}

// BenchmarkFlowsimFig5 regenerates the Fig-5 mode table through the
// flow-level fluid fast path (Options.Fidelity = FidelityFlow) instead of
// the packet simulator. Compared against BenchmarkFig5DCTCPModes it records
// the fast path's speedup on the same sweep (BENCH_PR6.json); the
// three-way differential gate (internal/audit) pins the two backends'
// agreement, so this benchmark is purely about wall clock.
func BenchmarkFlowsimFig5(b *testing.B) {
	runExperiment(b, "fig5_flow", func(o incastlab.Options) incastlab.Result {
		o.Fidelity = incastlab.FidelityFlow
		return incastlab.Fig5Modes(o)
	})
}

// --- Clos fabric: packet vs flow (BENCH_PR9.json). -----------------------

// benchClosFidelity runs a registered Clos experiment at the given
// fidelity. The packet/flow pairs below record the multi-queue fluid
// solver's speedup over the packet fabric on identical sweeps
// (BENCH_PR9.json); the fabric closed-loop gate (TestClosDifferentialGate
// in internal/audit) pins the two backends' agreement, so the benchmarks
// are purely about wall clock.
func benchClosFidelity(b *testing.B, name string, fidelity string) {
	b.Helper()
	exp, ok := incastlab.LookupExperiment(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	runExperiment(b, name+"_"+fidelity, func(o incastlab.Options) incastlab.Result {
		o.Fidelity = fidelity
		return exp.Run(o)
	})
}

func BenchmarkClosCrossRackPacket(b *testing.B) {
	benchClosFidelity(b, "ext_clos_crossrack", incastlab.FidelityPacket)
}

func BenchmarkClosCrossRackFlow(b *testing.B) {
	benchClosFidelity(b, "ext_clos_crossrack", incastlab.FidelityFlow)
}

func BenchmarkClosMultiAggPacket(b *testing.B) {
	benchClosFidelity(b, "ext_clos_multiagg", incastlab.FidelityPacket)
}

func BenchmarkClosMultiAggFlow(b *testing.B) {
	benchClosFidelity(b, "ext_clos_multiagg", incastlab.FidelityFlow)
}

// --- Cohort aggregation: per-flow vs cohort (BENCH_PR10.json). -----------

// BenchmarkFlowsimCohortFig5 regenerates the Fig-5 mode table on the fluid
// backend with cohort aggregation forced on every point. Compared against
// BenchmarkFlowsimFig5 (the same sweep under the automatic policy, which
// keeps these sub-threshold degrees per-flow) it records what cohorts buy
// across the whole sweep, small points included.
func BenchmarkFlowsimCohortFig5(b *testing.B) {
	runExperiment(b, "fig5_cohort", func(o incastlab.Options) incastlab.Result {
		o.Fidelity = incastlab.FidelityFlow
		o.Aggregation = incastlab.AggregationCohort
		return incastlab.Fig5Modes(o)
	})
}

// benchFlowsimFig5Point runs the Fig-5 sweep's deepest point — a
// 1400-degree dumbbell incast, the timeout-collapse regime — on the fluid
// backend with the given flow representation. The per-flow/cohort pair
// records cohort aggregation's speedup on the identical run
// (BENCH_PR10.json); the cohort differential gate (TestCohortDifferentialGate
// in internal/audit) pins the representations' agreement, so the pair is
// purely about wall clock.
func benchFlowsimFig5Point(b *testing.B, aggregation string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := incastlab.RunIncastSim(incastlab.SimConfig{
			Flows:       1400,
			Bursts:      4, // quick-mode burst count, like the sweep benchmarks
			Fidelity:    incastlab.FidelityFlow,
			Aggregation: aggregation,
		})
		if res.MeanBCT <= 0 {
			b.Fatal("degenerate run: no burst completed")
		}
	}
}

func BenchmarkFlowsimPerFlowFig5Point(b *testing.B) {
	benchFlowsimFig5Point(b, incastlab.AggregationPerFlow)
}

func BenchmarkFlowsimCohortFig5Point(b *testing.B) {
	benchFlowsimFig5Point(b, incastlab.AggregationCohort)
}

// BenchmarkClosMillionFlowSingleRun integrates 1,048,576 flows — 16
// aggregators, each fanning in 65,536 cross-rack workers — through the
// Clos fabric's coupled queues in ONE cohort-aggregated run, the
// configuration examples/scenarios/clos_million_flow_single.json ships.
// Per-flow records cannot represent this run at all (the release-packing
// limit bounds them below 2^20 flows), so there is no baseline twin: the
// benchmark pins that the headline scale stays runnable and how much wall
// clock it costs.
func BenchmarkClosMillionFlowSingleRun(b *testing.B) {
	spec, err := incastlab.LoadScenario("examples/scenarios/clos_million_flow_single.json")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := incastlab.RunScenario(opt, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printedSummaries.LoadOrStore("clos_million_flow_single", true); !done {
			fmt.Printf("\n%s\n", res.Summary())
		}
	}
}
