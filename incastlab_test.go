package incastlab_test

import (
	"testing"

	"incastlab"
)

// These tests exercise the public facade end to end, the way a downstream
// user would.

func TestPublicSimulationAPI(t *testing.T) {
	res := incastlab.RunIncastSim(incastlab.SimConfig{
		Flows:         40,
		BurstDuration: incastlab.Millisecond,
		Bursts:        3,
		Interval:      10 * incastlab.Millisecond,
	})
	if res.MeanBCT <= 0 || res.MeanBCT > 5*incastlab.Millisecond {
		t.Fatalf("BCT = %v", res.MeanBCT)
	}
	if res.AlgName != "dctcp" {
		t.Fatalf("default algorithm = %q", res.AlgName)
	}
	if res.MaxQueue <= 0 {
		t.Fatal("no queueing observed")
	}
}

func TestPublicCustomCCA(t *testing.T) {
	net := incastlab.DefaultDumbbellConfig(30)
	res := incastlab.RunIncastSim(incastlab.SimConfig{
		Flows:         30,
		BurstDuration: incastlab.Millisecond,
		Bursts:        2,
		Interval:      10 * incastlab.Millisecond,
		Net:           net,
		Alg: func(int) incastlab.CongestionControl {
			return incastlab.NewSwift(incastlab.DefaultSwiftConfig(net.BaseRTT()))
		},
	})
	if res.AlgName != "swift" {
		t.Fatalf("algorithm = %q", res.AlgName)
	}
}

func TestPublicMeasurementAPI(t *testing.T) {
	p, ok := incastlab.ServiceByName("aggregator")
	if !ok {
		t.Fatal("aggregator missing")
	}
	tr := p.Generate(incastlab.GenConfig{Seed: 1, DurationMS: 500})
	bursts := incastlab.DetectBursts(tr)
	if len(bursts) == 0 {
		t.Fatal("no bursts detected")
	}
	cfg := incastlab.DefaultCollectConfig()
	cfg.Hosts, cfg.Rounds = 2, 1
	rep := incastlab.AnalyzeTraces(incastlab.Collect(p, cfg))
	if rep.Bursts == 0 || rep.IncastFraction() == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(incastlab.Services()) != 5 {
		t.Fatal("service registry wrong")
	}
}

func TestPublicPredictorAndWave(t *testing.T) {
	pr := incastlab.NewPredictor(incastlab.DefaultPredictorConfig())
	for i := 0; i < 100; i++ {
		pr.Observe(200)
	}
	if d := pr.PredictedDegree(); d != 200 {
		t.Fatalf("predicted degree = %d", d)
	}

	res := incastlab.RunIncastSim(incastlab.SimConfig{
		Flows:         60,
		BurstDuration: incastlab.Millisecond,
		Bursts:        2,
		Interval:      20 * incastlab.Millisecond,
		Admitter:      incastlab.NewWave(20),
	})
	if res.MeanBCT <= 0 {
		t.Fatal("wave-scheduled incast did not complete")
	}
}

func TestPublicGuardrail(t *testing.T) {
	net := incastlab.DefaultDumbbellConfig(1)
	g := incastlab.NewGuardrail(incastlab.NewDCTCP(incastlab.DefaultDCTCPConfig()),
		net.BDPBytes(), net.ECNThresholdPackets*1500)
	g.Predict(100)
	if g.Cap() <= 0 {
		t.Fatal("guardrail cap not set")
	}
}

func TestPublicExperimentRunners(t *testing.T) {
	opt := incastlab.Options{Seed: 1, Quick: true}
	t1 := incastlab.Table1(opt)
	if len(t1.Services) != 5 {
		t.Fatal("table 1 wrong")
	}
	f1 := incastlab.Fig1ExampleTrace(opt)
	if len(f1.Bursts) == 0 {
		t.Fatal("fig1 empty")
	}
	dir := t.TempDir()
	if err := f1.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPartitionAggregate(t *testing.T) {
	res := incastlab.RunPartitionAggregate(incastlab.PartitionAggregateConfig{
		Workers:       10,
		ResponseBytes: 20_000,
		Queries:       3,
		ThinkTime:     incastlab.Millisecond,
		Seed:          1,
	})
	if len(res.Queries) != 3 {
		t.Fatalf("queries = %d", len(res.Queries))
	}
	if res.QCT.P50 <= 0 {
		t.Fatalf("QCT summary empty: %+v", res.QCT)
	}
}

func TestPublicTracePersistence(t *testing.T) {
	p, _ := incastlab.ServiceByName("indexer")
	tr := p.Generate(incastlab.GenConfig{Seed: 1, DurationMS: 100})
	path := t.TempDir() + "/trace.csv"
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := incastlab.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(tr.Samples) {
		t.Fatalf("round trip lost samples: %d vs %d", len(got.Samples), len(tr.Samples))
	}
}

func TestPublicD2TCP(t *testing.T) {
	alg := incastlab.NewD2TCP(incastlab.DefaultD2TCPConfig())
	if alg.Name() != "d2tcp" {
		t.Fatalf("name = %q", alg.Name())
	}
	res := incastlab.RunIncastSim(incastlab.SimConfig{
		Flows:         20,
		BurstDuration: incastlab.Millisecond,
		Bursts:        2,
		Interval:      10 * incastlab.Millisecond,
		Alg: func(int) incastlab.CongestionControl {
			return incastlab.NewD2TCP(incastlab.DefaultD2TCPConfig())
		},
	})
	if res.AlgName != "d2tcp" {
		t.Fatalf("sim ran %q", res.AlgName)
	}
}

func TestPublicModeBoundary(t *testing.T) {
	r := incastlab.ModeBoundary(incastlab.Options{Seed: 1, Quick: true})
	if len(r.Flows) == 0 || r.HealthyToDegenerate == 0 {
		t.Fatalf("mode boundary empty: %+v", r)
	}
}
