// Package incastlab is a laboratory for studying incast traffic bursts in
// datacenter networks. It reproduces, end to end and in pure Go, the
// measurement and simulation study of "Understanding Incast Bursts in
// Modern Datacenters" (IMC 2024):
//
//   - a packet-level discrete-event network simulator (links, ECN-marking
//     switch queues with optional shared buffers, a dumbbell topology) with
//     a TCP-like transport and pluggable congestion control (DCTCP, Reno, a
//     Swift-like pacer, and the paper's Section 5.1 "guardrail");
//   - a Millisampler-style host measurement pipeline (1 ms samples, burst
//     detection at 50% of line rate, per-burst statistics) together with
//     calibrated stochastic models of the paper's five production services;
//   - experiment runners that regenerate every table and figure of the
//     paper plus a set of ablations, as CSV artifacts and text summaries;
//   - the Section 5 proposals as working components: an incast-degree
//     predictor built on the paper's stability observation, and a
//     receiver-driven wave scheduler that splits large incasts into a
//     series of healthy small ones.
//
// This package is a facade: it re-exports the stable public surface of the
// internal packages. Start with Quickstart-style usage:
//
//	result := incastlab.RunIncastSim(incastlab.SimConfig{Flows: 100})
//	fmt.Println(result.MeanBCT, result.MaxQueue, result.Timeouts)
//
// or regenerate the whole paper:
//
//	for _, r := range incastlab.AllExperiments(incastlab.Options{}) {
//	    fmt.Println(r.Summary())
//	    r.WriteFiles("out")
//	}
package incastlab

import (
	"fmt"

	"incastlab/internal/app"
	"incastlab/internal/audit"
	"incastlab/internal/cc"
	"incastlab/internal/core"
	"incastlab/internal/millisampler"
	"incastlab/internal/netsim"
	"incastlab/internal/obs"
	"incastlab/internal/predict"
	"incastlab/internal/scenario"
	"incastlab/internal/schedule"
	"incastlab/internal/services"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
	"incastlab/internal/sweep"
	"incastlab/internal/tcp"
	"incastlab/internal/workload"
)

// Time is simulation time in nanoseconds.
type Time = sim.Time

// Convenient duration units in simulation time.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Simulation backends for SimConfig.Fidelity / Options.Fidelity: the
// packet-level discrete-event simulator (the default) or the flow-level
// fluid fast path.
const (
	FidelityPacket = core.FidelityPacket
	FidelityFlow   = core.FidelityFlow
)

// Flow-population representations for SimConfig.Aggregation /
// Options.Aggregation on the flow-level backend: the automatic policy
// (cohorts from the size threshold up), forced cohort aggregation, or the
// one-record-per-flow reference.
const (
	AggregationAuto    = core.AggregationAuto
	AggregationCohort  = core.AggregationCohort
	AggregationPerFlow = core.AggregationPerFlow
)

// Experiment API --------------------------------------------------------

// Options configures the experiment runners (seed, quick mode).
type Options = core.Options

// Result is a runnable experiment's output: CSV artifacts plus a text
// summary.
type Result = core.Result

// AllExperiments regenerates every table, figure, and ablation in
// presentation order.
func AllExperiments(opt Options) []Result { return core.All(opt) }

// Experiment registry ----------------------------------------------------

// Experiment is one registered experiment: its registry name, kind, the
// part of the paper it reproduces, and its runner. Every experiment
// self-registers, so the registry is the single source of truth for
// front ends (cmd/figures -list/-only drive off it).
type Experiment = core.Experiment

// ExperimentKind classifies a registered experiment.
type ExperimentKind = core.Kind

// Experiment kinds.
const (
	KindTable     = core.KindTable
	KindFigure    = core.KindFigure
	KindAblation  = core.KindAblation
	KindExtension = core.KindExtension
)

// Experiments returns the full registry in presentation order.
var Experiments = core.Experiments

// ExperimentNames returns the registered experiment names in presentation
// order.
var ExperimentNames = core.ExperimentNames

// LookupExperiment resolves a registered experiment by name.
var LookupExperiment = core.LookupExperiment

// TableResult is the generic table-backed experiment result: named CSV
// artifacts plus a rendered text summary. Every registered experiment's
// result embeds one.
type TableResult = core.TableResult

// Scenario API -----------------------------------------------------------

// Scenario is a declarative, JSON-encodable experiment specification:
// topology, workload, congestion control, transport tuning, and an
// optional sweep axis. It validates (Scenario.Validate) and compiles into
// packet-level simulations (RunScenario); the ten Ablation* experiments
// are themselves scenario specs run through the same path. See
// examples/scenarios/ for ready-to-run files.
type (
	Scenario          = scenario.Spec
	ScenarioTopology  = scenario.Topology
	ScenarioWorkload  = scenario.Workload
	ScenarioCC        = scenario.CC
	ScenarioTransport = scenario.Transport
	ScenarioSweep     = scenario.Sweep
	ScenarioValue     = scenario.Value
)

// LoadScenario reads and validates a scenario spec from a JSON file.
var LoadScenario = scenario.Load

// ParseScenario parses and validates a scenario spec from JSON text.
var ParseScenario = scenario.Parse

// AblationSpecs returns the declarative specs behind the ten Ablation*
// runners, in registry order.
var AblationSpecs = core.AblationSpecs

// CompileScenario validates spec and compiles it into simulation configs,
// returning the sweep table's label header, one label row per config, and
// the configs themselves.
func CompileScenario(opt Options, spec Scenario) ([]string, [][]string, []SimConfig, error) {
	return core.CompileScenario(opt, spec)
}

// RunScenario validates, compiles, and runs spec, rendering the sweep
// into a single-CSV TableResult.
func RunScenario(opt Options, spec Scenario) (*TableResult, error) {
	return core.RunScenario(opt, spec)
}

// ScenarioClos is the multi-rack leaf/spine block of a scenario topology.
type ScenarioClos = scenario.Clos

// Sweep-cache API: shard a scenario's rows across processes and memoize
// each row's rendered cells under a content address, so large studies
// resume incrementally and warm reruns are byte-identical to cold runs.
type (
	// SweepCache is the content-addressed row store (a directory).
	SweepCache = sweep.Cache
	// SweepShard selects the rows a process owns (row i iff i%Count==Index).
	SweepShard = core.Shard
	// SweepCacheStats reports hits/computed/skipped after a cached pass.
	SweepCacheStats = core.CacheStats
)

// OpenSweepCache creates (if needed) and opens the row cache rooted at dir.
var OpenSweepCache = sweep.Open

// SimCodeVersion is baked into every sweep-cache key; bumping it
// invalidates all cached rows.
const SimCodeVersion = core.SimCodeVersion

// RunScenarioCached is RunScenario backed by a sweep cache and an optional
// shard selector. The table is nil while rows owned by other shards are
// still missing; stats report progress either way.
func RunScenarioCached(opt Options, spec Scenario, cache *SweepCache, shard SweepShard) (*TableResult, SweepCacheStats, error) {
	return core.RunScenarioCached(opt, spec, cache, shard)
}

// Table1 returns the five-services registry (paper Table 1).
func Table1(opt Options) *core.Table1Result { return core.Table1(opt) }

// Fig1ExampleTrace generates the two-second example trace (paper Fig 1).
func Fig1ExampleTrace(opt Options) *core.Fig1Result { return core.Fig1ExampleTrace(opt) }

// Fig2And4BurstCharacterization runs the five-service measurement campaign
// (paper Figs 2 and 4).
func Fig2And4BurstCharacterization(opt Options) *core.Fig2And4Result {
	return core.Fig2And4BurstCharacterization(opt)
}

// Fig3Stability runs the 18-hour stability campaign (paper Fig 3).
func Fig3Stability(opt Options) *core.Fig3Result { return core.Fig3Stability(opt) }

// Fig5Modes runs the DCTCP operating-mode sweep (paper Fig 5).
func Fig5Modes(opt Options) *core.Fig5Result { return core.Fig5Modes(opt) }

// Fig6ShortBursts runs the 2 ms burst sweep (paper Fig 6).
func Fig6ShortBursts(opt Options) *core.Fig6Result { return core.Fig6ShortBursts(opt) }

// Fig7InFlight runs the per-flow in-flight skew experiment (paper Fig 7).
func Fig7InFlight(opt Options) *core.Fig7Result { return core.Fig7InFlight(opt) }

// CrossValidation runs the Millisampler pipeline over the packet
// simulator's receiver, checking the two methodologies against each other.
func CrossValidation(opt Options) *core.CrossValidationResult { return core.CrossValidation(opt) }

// Ablations (see DESIGN.md).
var (
	AblationG                 = core.AblationG
	AblationECNThreshold      = core.AblationECNThreshold
	AblationSharedBuffer      = core.AblationSharedBuffer
	AblationDelayedACKs       = core.AblationDelayedACKs
	AblationGuardrail         = core.AblationGuardrail
	AblationCCA               = core.AblationCCA
	AblationMinRTO            = core.AblationMinRTO
	AblationIdleRestart       = core.AblationIdleRestart
	AblationReceiverWindow    = core.AblationReceiverWindow
	AblationMarkingDiscipline = core.AblationMarkingDiscipline
)

// Simulation API --------------------------------------------------------

// SimConfig describes one packet-level incast simulation (defaults follow
// the paper's Section 4 setup).
type SimConfig = core.SimConfig

// SimResult is a simulation's aggregated outcome.
type SimResult = core.SimResult

// NotificationConfig enables explicit incast notification on a packet-level
// run: switch-side onset detection (single bottleneck detector, or
// coordinated per-leaf uplink detectors on a Clos when MinPorts > 0) plus a
// Pulser multiplicative-backoff reaction wrapped around every flow's
// congestion control. Zero fields take defaults sized for the paper's
// ~30 us fabrics; set SimConfig.Notification to enable.
type NotificationConfig = core.NotificationConfig

// RunIncastSim executes one repeated-burst incast simulation.
func RunIncastSim(cfg SimConfig) *SimResult { return core.RunIncastSim(cfg) }

// RunIncastSims executes independent simulations across a worker pool
// (workers == 0 uses GOMAXPROCS; 1 runs serially; negative counts are
// invalid — see ValidateWorkers). Results are returned in config order and
// are bit-identical to looping over RunIncastSim.
func RunIncastSims(workers int, cfgs []SimConfig) []*SimResult {
	return core.RunIncastSims(workers, cfgs)
}

// ValidateWorkers rejects invalid worker counts (negative values) with a
// clear error; front ends should call it on user-supplied -workers values
// before building experiments.
var ValidateWorkers = core.ValidateWorkers

// Observability -----------------------------------------------------------

// MetricsRegistry collects run telemetry (engine, queue, link, pool,
// transport, and congestion-control counters) from instrumented
// simulations. Attach one via Options.Metrics or SimConfig.Metrics; a nil
// registry disables all instrumentation. Merging is commutative, so
// snapshots are identical across serial and parallel runs, and
// instrumented simulation results are bit-identical to uninstrumented
// ones.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty metrics registry.
var NewMetricsRegistry = obs.NewRegistry

// MetricsSnapshot is a registry's exported state: a stable, sorted,
// JSON-serializable view. Snapshot.Deterministic() strips wall-clock-domain
// metrics (wall_*, mem_*) for bit-for-bit comparisons across runs.
type MetricsSnapshot = obs.Snapshot

// ParseMetricsSnapshot parses and validates a snapshot previously written
// with MetricsSnapshot.WriteFile/WriteJSON.
var ParseMetricsSnapshot = obs.ParseSnapshot

// MetricsMergeMode selects how repeated gauge observations fold together.
type MetricsMergeMode = obs.MergeMode

// Gauge merge modes: sum accumulates, max/min keep the extreme.
const (
	MetricsMergeSum = obs.MergeSum
	MetricsMergeMax = obs.MergeMax
	MetricsMergeMin = obs.MergeMin
)

// Profiler serves net/http/pprof on a dedicated listener and periodically
// samples runtime memory statistics into a registry (mem_* max-gauges).
type Profiler = obs.Profiler

// StartProfiler starts a pprof server on addr; if reg is non-nil, memory
// statistics are sampled into it at the given interval.
var StartProfiler = obs.StartProfiler

// Invariant auditing -----------------------------------------------------

// AuditConfig tunes the runtime invariant auditor (internal/audit): sweep
// interval, violation cap, and end-state drain checks. Experiments enable
// auditing wholesale through Options.Audit / SimConfig.Audit; the explicit
// types are exported for callers embedding the auditor in their own engine
// runs.
type AuditConfig = audit.Config

// Auditor enforces simulation invariants (byte/packet conservation, queue
// bounds, clock monotonicity, cc protocol bounds, packet-pool hygiene) over
// one engine run.
type Auditor = audit.Auditor

// AuditViolation is one recorded invariant breach.
type AuditViolation = audit.Violation

// NewAuditor creates an auditor bound to an engine.
var NewAuditor = audit.New

// DiffConfig parameterizes the rackmodel/netsim differential cross-check.
type DiffConfig = audit.DiffConfig

// DiffResult carries both sides' curves and tolerance verdicts.
type DiffResult = audit.DiffResult

// DefaultDiffConfig returns the canonical cross-check trace and tolerances.
var DefaultDiffConfig = audit.DefaultDiffConfig

// RunDiff drives one offered-load trace through both the analytic rack
// model and the packet simulator and errors when they disagree beyond the
// configured tolerances.
var RunDiff = audit.RunDiff

// DumbbellConfig describes the simulated topology.
type DumbbellConfig = netsim.DumbbellConfig

// DefaultDumbbellConfig returns the paper's topology for n senders.
func DefaultDumbbellConfig(n int) DumbbellConfig { return netsim.DefaultDumbbellConfig(n) }

// ClosConfig describes a multi-rack leaf/spine fabric with seeded ECMP;
// set SimConfig.Clos to run the incast over it instead of the dumbbell.
type ClosConfig = netsim.ClosConfig

// DefaultClosConfig returns a fabric with the paper's per-port parameters
// for the given shape (two spines, 10/100 Gbps, K=65).
func DefaultClosConfig(racks, hostsPerRack int) ClosConfig {
	return netsim.DefaultClosConfig(racks, hostsPerRack)
}

// Worker placement policies for SimConfig.Placement on a Clos fabric.
const (
	PlacementCrossRack = workload.PlacementCrossRack
	PlacementSameRack  = workload.PlacementSameRack
)

// IncastConfig and Admitter expose the burst workload driver for custom
// experiments beyond the canned runners.
type (
	IncastConfig = workload.IncastConfig
	Admitter     = workload.Admitter
)

// Congestion control -----------------------------------------------------

// CongestionControl is the pluggable congestion-control interface.
type CongestionControl = cc.Algorithm

// DCTCPConfig tunes DCTCP; NewDCTCP builds an instance.
type DCTCPConfig = cc.DCTCPConfig

// NewDCTCP builds a DCTCP instance.
func NewDCTCP(cfg DCTCPConfig) *cc.DCTCP { return cc.NewDCTCP(cfg) }

// DefaultDCTCPConfig returns the paper's DCTCP parameters (IW 10, g=1/16).
func DefaultDCTCPConfig() DCTCPConfig { return cc.DefaultDCTCPConfig() }

// NewReno builds the loss-based baseline.
func NewReno(initialWindow int) *cc.Reno { return cc.NewReno(initialWindow) }

// D2TCPConfig tunes the deadline-aware DCTCP variant.
type D2TCPConfig = cc.D2TCPConfig

// NewD2TCP builds a Deadline-Aware Datacenter TCP instance.
func NewD2TCP(cfg D2TCPConfig) *cc.D2TCP { return cc.NewD2TCP(cfg) }

// DefaultD2TCPConfig returns DCTCP parameters with a neutral deadline.
func DefaultD2TCPConfig() D2TCPConfig { return cc.DefaultD2TCPConfig() }

// SwiftConfig tunes the Swift-like delay-based pacer.
type SwiftConfig = cc.SwiftConfig

// NewSwift builds a Swift-like instance.
func NewSwift(cfg SwiftConfig) *cc.Swift { return cc.NewSwift(cfg) }

// DefaultSwiftConfig scales Swift parameters to a base RTT.
func DefaultSwiftConfig(baseRTT Time) SwiftConfig { return cc.DefaultSwiftConfig(baseRTT) }

// NewGuardrail wraps an algorithm with the Section 5.1 ramp-up clamp.
func NewGuardrail(inner CongestionControl, bdpBytes, ecnThresholdBytes int) *cc.Guardrail {
	return cc.NewGuardrail(inner, bdpBytes, ecnThresholdBytes)
}

// Measurement API --------------------------------------------------------

// ServiceProfile is a calibrated model of one production service.
type ServiceProfile = services.Profile

// Services returns the five services of Table 1.
func Services() []ServiceProfile { return services.All() }

// ServiceByName looks up a service profile.
func ServiceByName(name string) (ServiceProfile, bool) { return services.ByName(name) }

// GenConfig addresses one synthetic trace collection.
type GenConfig = services.GenConfig

// CollectConfig describes a measurement campaign; Collect runs it.
type CollectConfig = services.CollectConfig

// DefaultCollectConfig returns the paper's 20-host, 9-round campaign.
func DefaultCollectConfig() CollectConfig { return services.DefaultCollectConfig() }

// Collect generates the corpus of traces for one service.
func Collect(p ServiceProfile, cfg CollectConfig) []*MeasurementTrace {
	return services.Collect(p, cfg)
}

// MeasurementTrace is a Millisampler trace: per-millisecond host samples.
type MeasurementTrace = millisampler.Trace

// Burst is one detected burst with the paper's per-burst metrics.
type Burst = millisampler.Burst

// BurstReport aggregates burst statistics over a trace corpus.
type BurstReport = millisampler.Report

// DetectBursts extracts bursts at the paper's 50%-of-line-rate threshold.
func DetectBursts(t *MeasurementTrace) []Burst {
	return millisampler.Detect(t, millisampler.DefaultBurstThreshold)
}

// AnalyzeTraces builds the aggregate burst report for a corpus.
func AnalyzeTraces(traces []*MeasurementTrace) *BurstReport { return millisampler.Analyze(traces) }

// LoadTrace reads a trace archived with MeasurementTrace.Save.
func LoadTrace(path string) (*MeasurementTrace, error) { return millisampler.Load(path) }

// Section 5 components ---------------------------------------------------

// Predictor tracks a service's incast-degree distribution and predicts the
// scale of upcoming incasts (paper Section 3.3/5.1).
type Predictor = predict.Predictor

// PredictorConfig tunes a Predictor.
type PredictorConfig = predict.Config

// NewPredictor builds a Predictor.
func NewPredictor(cfg PredictorConfig) *Predictor { return predict.New(cfg) }

// DefaultPredictorConfig returns a 512-burst window, p99 prediction.
func DefaultPredictorConfig() PredictorConfig { return predict.DefaultConfig() }

// Wave is the receiver-driven wave scheduler (paper Section 5.2).
type Wave = schedule.Wave

// NewWave builds a Wave admitter with the given concurrency limit.
func NewWave(size int) *Wave { return schedule.NewWave(size) }

// Application API ---------------------------------------------------------

// PartitionAggregateConfig describes a closed-loop coordinator/worker
// fan-out application (the pattern that causes incast).
type PartitionAggregateConfig = app.PartitionAggregateConfig

// QueryRecord is one completed partition/aggregate query.
type QueryRecord = app.QueryRecord

// Summary is a descriptive-statistics bundle (mean and percentiles).
type Summary = stats.Summary

// DefaultPartitionAggregateConfig returns a fan-out of n workers with
// 20 KB responses and 1 ms think time.
func DefaultPartitionAggregateConfig(n int) PartitionAggregateConfig {
	return app.DefaultPartitionAggregateConfig(n)
}

// PartitionAggregateResult is the outcome of RunPartitionAggregate.
type PartitionAggregateResult struct {
	// Queries holds the per-query records.
	Queries []QueryRecord
	// QCT summarizes query completion times in milliseconds.
	QCT Summary
	// Timeouts counts RTO events across all worker flows.
	Timeouts int64
}

// RunPartitionAggregate builds the paper's dumbbell for cfg.Workers,
// runs the closed-loop application under DCTCP, and summarizes the query
// completion times.
func RunPartitionAggregate(cfg PartitionAggregateConfig) *PartitionAggregateResult {
	eng := sim.NewEngine()
	if cfg.Sender.MSS == 0 {
		cfg.Sender = tcp.DefaultSenderConfig()
	}
	pa := app.NewPartitionAggregate(eng, netsim.DefaultDumbbellConfig(cfg.Workers), cfg,
		func(int) cc.Algorithm { return cc.NewDCTCP(cc.DefaultDCTCPConfig()) })
	eng.RunUntil(60 * Second)
	if !pa.Done() {
		panic(fmt.Sprintf("incastlab: partition/aggregate with %d workers did not complete", cfg.Workers))
	}
	var timeouts int64
	for _, s := range pa.Senders() {
		timeouts += s.Stats().Timeouts
	}
	return &PartitionAggregateResult{
		Queries:  pa.Queries(),
		QCT:      pa.QCTStats(),
		Timeouts: timeouts,
	}
}

// QueryTailLatency sweeps partition/aggregate fan-in at constant query
// volume — the extension experiment behind examples/partitionaggregate.
func QueryTailLatency(opt Options) *core.QueryTailResult { return core.QueryTailLatency(opt) }

// RackContention reproduces the Section 3.4 shared-buffer effect at packet
// level: a neighbor incast on the same rack turns a lossless incast into a
// timeout-bound one.
func RackContention(opt Options) *core.RackContentionResult { return core.RackContention(opt) }

// ModeBoundary sweeps the incast degree to locate the operating-mode
// boundaries the paper's arithmetic predicts (K+BDP and capacity+BDP).
func ModeBoundary(opt Options) *core.ModeBoundaryResult { return core.ModeBoundary(opt) }
