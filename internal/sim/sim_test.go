package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := Duration(1500 * time.Microsecond); got != 1500*Microsecond {
		t.Fatalf("Duration = %v, want %v", got, 1500*Microsecond)
	}
	if got := (2 * Millisecond).Std(); got != 2*time.Millisecond {
		t.Fatalf("Std = %v, want 2ms", got)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
	if got := (3 * Microsecond).Milliseconds(); got != 0.003 {
		t.Fatalf("Milliseconds = %v, want 0.003", got)
	}
	if got := (2500 * Nanosecond).Microseconds(); got != 2.5 {
		t.Fatalf("Microseconds = %v, want 2.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("Run returned %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order %v, want [1 2 3]", order)
	}
}

func TestEngineFIFOForSameTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-timestamp events ran out of scheduling order: %v", order)
	}
}

func TestEngineClockAdvancesDuringRun(t *testing.T) {
	e := NewEngine()
	var at1, at2 Time
	e.At(100, func() { at1 = e.Now() })
	e.At(250, func() { at2 = e.Now() })
	e.Run()
	if at1 != 100 || at2 != 250 {
		t.Fatalf("event-visible clock = %v, %v; want 100, 250", at1, at2)
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("After fired at %v, want 150", fired)
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEnginePanicsOnNilFunc(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil event function did not panic")
		}
	}()
	e.At(1, nil)
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(10, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active after scheduling")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true on an active timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if tm.Active() {
		t.Fatal("timer should be inactive after Stop")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.At(10, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	if tm.Active() {
		t.Fatal("fired timer should not be active")
	}
}

func TestNilTimerIsInert(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("nil Timer Stop should report false")
	}
	if tm.Active() {
		t.Fatal("nil Timer should not be active")
	}
	if tm.When() != MaxTime {
		t.Fatal("nil Timer When should be MaxTime")
	}
}

// TestTimerStaleAfterRecycle checks the generation guard: once a timer's
// event fires and its struct is recycled into a new event, the stale handle
// must not cancel or observe the new occupant.
func TestTimerStaleAfterRecycle(t *testing.T) {
	e := NewEngine()
	first := e.At(10, func() {})
	e.Run()
	// The fired event's struct is on the free list; this reuses it.
	secondFired := false
	second := e.At(20, func() { secondFired = true })
	if first.Active() {
		t.Fatal("stale handle reports Active after its event was recycled")
	}
	if first.Stop() {
		t.Fatal("stale handle Stop returned true")
	}
	if first.When() != MaxTime {
		t.Fatalf("stale handle When = %v, want MaxTime", first.When())
	}
	if !second.Active() {
		t.Fatal("new timer should be unaffected by stale-handle calls")
	}
	e.Run()
	if !secondFired {
		t.Fatal("new event did not fire — stale handle interfered")
	}
}

// TestTimerStopInsideOwnCallback checks that a callback stopping its own
// timer is a safe no-op: the event is recycled before the closure runs.
func TestTimerStopInsideOwnCallback(t *testing.T) {
	e := NewEngine()
	var tm *Timer
	stopped := true
	tm = e.At(5, func() { stopped = tm.Stop() })
	e.Run()
	if stopped {
		t.Fatal("Stop inside own callback should report false")
	}
}

func TestResetAtReschedules(t *testing.T) {
	e := NewEngine()
	var fired []Time
	var tm Timer
	e.ResetAt(&tm, 10, func() { fired = append(fired, e.Now()) })
	// Re-arm before the first fire: only the new deadline should fire.
	e.ResetAt(&tm, 30, func() { fired = append(fired, e.Now()) })
	if tm.When() != 30 {
		t.Fatalf("When = %v, want 30", tm.When())
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 30 {
		t.Fatalf("fired at %v, want [30]", fired)
	}
	// Re-arm after a fire works too, and does not allocate a new handle.
	e.ResetAfter(&tm, 5, func() { fired = append(fired, e.Now()) })
	e.Run()
	if len(fired) != 2 || fired[1] != 35 {
		t.Fatalf("fired at %v, want [30 35]", fired)
	}
}

func TestResetAtRepeatedReuseDoesNotLeak(t *testing.T) {
	e := NewEngine()
	var tm Timer
	count := 0
	for i := 0; i < 1000; i++ {
		e.ResetAt(&tm, Time(i), func() { count++ })
		e.Run()
	}
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

func TestScheduleFireAndForget(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(20, func() { order = append(order, 2) })
	e.ScheduleAfter(10, func() { order = append(order, 1) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

// TestFreeListPreservesOrdering churns the free list hard and checks the
// (time, seq) execution invariant still holds with recycled event structs.
func TestFreeListPreservesOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	n := 0
	var spawn func()
	spawn = func() {
		if n >= 300 {
			return
		}
		n++
		i := n
		e.ScheduleAfter(Time(n%7), func() { got = append(got, i); spawn() })
		if n%3 == 0 {
			tm := e.After(Time(n%5), func() { t.Error("stopped event fired") })
			tm.Stop()
		}
	}
	spawn()
	e.Run()
	if len(got) != 300 {
		t.Fatalf("executed %d events, want 300", len(got))
	}
}

func TestTimerWhen(t *testing.T) {
	e := NewEngine()
	tm := e.At(77, func() {})
	if tm.When() != 77 {
		t.Fatalf("When = %v, want 77", tm.When())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	end := e.RunUntil(25)
	if end != 25 {
		t.Fatalf("RunUntil returned %v, want 25", end)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	// Resuming picks up the rest.
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after resume fired %v, want all 4", fired)
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	if end := e.RunUntil(500); end != 500 {
		t.Fatalf("RunUntil on empty engine returned %v, want 500", end)
	}
	if e.Now() != 500 {
		t.Fatalf("Now = %v, want 500", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt the loop)", count)
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 after resuming", count)
	}
}

func TestNextEventAt(t *testing.T) {
	e := NewEngine()
	if e.NextEventAt() != MaxTime {
		t.Fatal("empty engine should report MaxTime")
	}
	tm := e.At(99, func() {})
	if e.NextEventAt() != 99 {
		t.Fatalf("NextEventAt = %v, want 99", e.NextEventAt())
	}
	tm.Stop()
	if e.NextEventAt() != MaxTime {
		t.Fatal("after canceling the only event, NextEventAt should be MaxTime")
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed())
	}
}

// TestEventOrderProperty checks, for random schedules, that execution order
// is exactly the (time, scheduling-sequence) sort of the input.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) > 512 {
			times = times[:512]
		}
		e := NewEngine()
		type key struct {
			at  Time
			seq int
		}
		var got []key
		for i, tt := range times {
			i, at := i, Time(tt)
			e.At(at, func() { got = append(got, key{at, i}) })
		}
		e.Run()
		if len(got) != len(times) {
			return false
		}
		want := make([]key, len(got))
		copy(want, got)
		sort.Slice(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		})
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestClockMonotoneProperty checks the clock never moves backwards across a
// random schedule, including nested scheduling.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		e := NewEngine()
		last := Time(-1)
		ok := true
		var observe func()
		observe = func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if rng.IntN(4) == 0 && e.Executed() < 1000 {
				e.After(Time(rng.IntN(100)), observe)
			}
		}
		for i := 0; i < 50; i++ {
			e.At(Time(rng.IntN(1000)), observe)
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(8)
	same := true
	a = NewRand(7)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// BenchmarkEngineSchedule measures At/After/Stop churn on the pooled event
// path: one re-armed value timer plus fire-and-forget events per iteration.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	var tm Timer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfter(Time(i%1000), fn)
		e.ResetAfter(&tm, Time(i%500+1), fn)
		h := e.After(Time(i%300), fn)
		h.Stop()
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}
