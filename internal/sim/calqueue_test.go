package sim

import (
	"testing"
)

// ---------------------------------------------------------------------------
// Differential harness: the calendar queue against the reference heap.
//
// A schedDriver applies a deterministic pseudo-random workload — schedules
// with delays spanning the same-timestamp FIFO, the current bucket, the
// ring, and the overflow horizon; Stops; ResetAts; engine Resets — and
// records every execution as (virtual time, event id). Two drivers seeded
// identically, one on the calendar queue and one on the reference heap,
// must produce byte-for-byte identical logs: both the times and the order.
// Any divergence in (time, seq) dispatch order desynchronizes the logs
// (and usually the RNG streams right after), so equivalence here is a
// strong property, not a spot check.
// ---------------------------------------------------------------------------

type execRecord struct {
	at Time
	id int
}

type schedDriver struct {
	t      *testing.T
	e      *Engine
	rng    *randStream
	timers []*Timer
	log    []execRecord
	nextID int
}

// randStream wraps the deterministic RNG so both drivers consume identical
// decision streams.
type randStream struct {
	r interface{ Int64N(int64) int64 }
}

func newRandStream(seed uint64) *randStream { return &randStream{r: NewRand(seed)} }

func (s *randStream) intN(n int) int { return int(s.r.Int64N(int64(n))) }

func newSchedDriver(t *testing.T, e *Engine, seed uint64) *schedDriver {
	return &schedDriver{t: t, e: e, rng: newRandStream(seed)}
}

// randDelay draws from a distribution that exercises every scheduler
// structure: zero delays (nowq), sub-bucket, ring-range, and far-future
// (overflow) timers.
func (d *schedDriver) randDelay() Time {
	switch d.rng.intN(6) {
	case 0:
		return 0
	case 1:
		return Time(d.rng.intN(50))
	case 2:
		return Time(d.rng.intN(1_000)) // within one default bucket
	case 3:
		return Time(d.rng.intN(200_000)) // a stretch of ring buckets
	case 4:
		return Time(d.rng.intN(2_000_000)) // around the ring horizon
	default:
		return Time(d.rng.intN(500_000_000)) // deep overflow (RTO-like)
	}
}

// spawn schedules a new event; with a handle half the time so it can later
// be stopped or re-armed.
func (d *schedDriver) spawn() {
	id := d.nextID
	d.nextID++
	at := d.e.Now() + d.randDelay()
	fire := func() { d.fire(id) }
	if d.rng.intN(2) == 0 {
		d.timers = append(d.timers, d.e.At(at, fire))
	} else {
		d.e.Schedule(at, fire)
	}
}

// stopRandom stops a random known timer (possibly already fired — the
// generation guard makes that a no-op, which is part of the contract).
func (d *schedDriver) stopRandom() {
	if len(d.timers) == 0 {
		return
	}
	d.timers[d.rng.intN(len(d.timers))].Stop()
}

// resetRandom re-arms a random known timer at a fresh delay.
func (d *schedDriver) resetRandom() {
	if len(d.timers) == 0 {
		return
	}
	id := d.nextID
	d.nextID++
	tm := d.timers[d.rng.intN(len(d.timers))]
	d.e.ResetAfter(tm, d.randDelay(), func() { d.fire(id) })
}

// fire logs the execution and sometimes mutates the schedule from inside
// the callback, the way transport code re-arms RTOs and forwards packets.
func (d *schedDriver) fire(id int) {
	d.log = append(d.log, execRecord{at: d.e.Now(), id: id})
	switch d.rng.intN(10) {
	case 0, 1, 2:
		d.spawn()
	case 3:
		d.spawn()
		d.spawn()
	case 4:
		d.stopRandom()
	case 5:
		d.resetRandom()
	}
}

// round runs one schedule-then-drain phase.
func (d *schedDriver) round(events int, chunk Time) {
	for i := 0; i < events; i++ {
		switch d.rng.intN(8) {
		case 0:
			d.stopRandom()
		case 1:
			d.resetRandom()
		default:
			d.spawn()
		}
	}
	d.e.RunUntil(d.e.Now() + chunk)
}

// resetEngine clears the engine and the driver's handle list, logging a
// marker so a missed reset shows up as a log mismatch.
func (d *schedDriver) resetEngine() {
	d.e.Reset()
	d.timers = d.timers[:0]
	d.log = append(d.log, execRecord{at: -1, id: -1})
}

// runEquivalence drives the calendar queue and the reference heap through
// the identical workload and requires identical execution logs.
func runEquivalence(t *testing.T, seed uint64, rounds, eventsPerRound int) {
	t.Helper()
	cal := newSchedDriver(t, NewEngine(), seed)
	ref := newSchedDriver(t, newHeapEngine(), seed)

	for r := 0; r < rounds; r++ {
		chunk := Time(1+r) * 300 * Microsecond
		cal.round(eventsPerRound, chunk)
		ref.round(eventsPerRound, chunk)
		if r == rounds/2 {
			// Mid-workload engine reuse: both engines reset and rebuild on
			// their warm free lists.
			cal.resetEngine()
			ref.resetEngine()
		}
	}
	// Drain completely so overflow-resident timers execute too.
	cal.e.Run()
	ref.e.Run()

	if cal.e.Pending() != 0 || ref.e.Pending() != 0 {
		t.Fatalf("undrained engines: calendar=%d reference=%d pending",
			cal.e.Pending(), ref.e.Pending())
	}
	if len(cal.log) != len(ref.log) {
		t.Fatalf("seed %d: executed %d events on calendar queue, %d on reference heap",
			seed, len(cal.log), len(ref.log))
	}
	for i := range cal.log {
		if cal.log[i] != ref.log[i] {
			t.Fatalf("seed %d: execution order diverges at event %d: calendar=(%v, id %d) reference=(%v, id %d)",
				seed, i, cal.log[i].at, cal.log[i].id, ref.log[i].at, ref.log[i].id)
		}
	}
	if cal.e.Scheduled() != ref.e.Scheduled() {
		t.Fatalf("seed %d: seq counters diverge: calendar=%d reference=%d",
			seed, cal.e.Scheduled(), ref.e.Scheduled())
	}
}

// TestSchedulerEquivalenceProperty is the randomized differential gate: the
// calendar queue must execute the exact (time, seq) order of the reference
// binary heap across many seeded workloads.
func TestSchedulerEquivalenceProperty(t *testing.T) {
	rounds, events := 10, 120
	if testing.Short() {
		rounds, events = 6, 60
	}
	for seed := uint64(1); seed <= 40; seed++ {
		runEquivalence(t, seed, rounds, events)
	}
}

// FuzzSchedulerEquivalence lets the fuzzer search for a seed whose workload
// breaks heap/calendar equivalence. The seed corpus doubles as a fixed
// regression suite under plain `go test`.
func FuzzSchedulerEquivalence(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 7, 42, 1 << 20, 1<<63 - 1} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		runEquivalence(t, seed, 6, 80)
	})
}

// ---------------------------------------------------------------------------
// SchedulerStats: geometry, overflow migration, and resizing.
// ---------------------------------------------------------------------------

func TestSchedulerStatsNowFastPathAndOverflow(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(0, func() { ran++ }) // at == now: FIFO fast path
	e.Schedule(time500us(), func() { ran++ })
	e.Schedule(2*Second, func() { ran++ }) // far beyond the ring horizon

	st := e.SchedulerStats()
	if st.BucketCount == 0 || st.BucketWidth == 0 {
		t.Fatalf("expected initialized geometry, got %+v", st)
	}
	if st.NowFastPath != 1 {
		t.Fatalf("NowFastPath = %d, want 1", st.NowFastPath)
	}
	if st.OverflowEvents != 1 {
		t.Fatalf("OverflowEvents = %d, want 1 (2s timer beyond the ring horizon): %+v",
			st.OverflowEvents, st)
	}

	e.Run()
	st = e.SchedulerStats()
	if ran != 3 {
		t.Fatalf("ran %d events, want 3", ran)
	}
	if st.OverflowMigrations < 1 {
		t.Fatalf("OverflowMigrations = %d, want >= 1 after draining the far timer", st.OverflowMigrations)
	}
	if st.CurrentEvents+st.RingEvents+st.OverflowEvents != 0 {
		t.Fatalf("drained engine still reports live events: %+v", st)
	}
}

func time500us() Time { return 500 * Microsecond }

func TestSchedulerStatsNarrowResize(t *testing.T) {
	e := NewEngine()
	// Overload one bucket far past the narrow threshold, then give the
	// window a reason to advance again so the pending halving applies. The
	// timestamps sit close enough together that no walk crosses the widen
	// threshold, isolating the narrowing path.
	at := 100 * Microsecond
	for i := 0; i < 4*calNarrowLoad; i++ {
		e.Schedule(at, func() {})
	}
	e.Schedule(200*Microsecond, func() {})

	before := e.SchedulerStats()
	e.Run()
	after := e.SchedulerStats()
	if after.Resizes == 0 {
		t.Fatalf("overloaded bucket did not trigger a resize: before=%+v after=%+v", before, after)
	}
	if after.BucketWidth >= before.BucketWidth {
		t.Fatalf("bucket width did not narrow: before=%v after=%v", before.BucketWidth, after.BucketWidth)
	}
}

func TestSchedulerStatsWidenResize(t *testing.T) {
	e := NewEngine()
	// Sparse ring: the walk between events crosses more than a quarter of
	// the ring's buckets, so the queue widens its buckets.
	e.Schedule(1*Microsecond, func() {})
	e.Schedule(800*Microsecond, func() {})
	before := e.SchedulerStats()
	e.Run()
	after := e.SchedulerStats()
	if after.Resizes == 0 {
		t.Fatalf("sparse ring did not trigger a widening resize: %+v", after)
	}
	if after.BucketWidth <= before.BucketWidth {
		t.Fatalf("bucket width did not widen: before=%v after=%v", before.BucketWidth, after.BucketWidth)
	}
}

// ---------------------------------------------------------------------------
// Engine.Reset and pooled reuse.
// ---------------------------------------------------------------------------

func TestResetClearsEngineState(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(10, func() { fired = true })
	e.Schedule(3*Second, func() { fired = true }) // overflow-resident
	tm := e.After(20, func() { fired = true })
	e.RunUntil(10)
	e.SetOnEvent(func(Time) {})

	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 || e.Executed() != 0 || e.Scheduled() != 0 {
		t.Fatalf("Reset left state: pending=%d now=%v executed=%d scheduled=%d",
			e.Pending(), e.Now(), e.Executed(), e.Scheduled())
	}
	if hits, misses := e.FreeListStats(); hits != 0 || misses != 0 {
		t.Fatalf("Reset left free-list counters: hits=%d misses=%d", hits, misses)
	}
	if e.onEvent != nil {
		t.Fatal("Reset left the onEvent observer installed")
	}
	if tm.Stop() {
		t.Fatal("pre-Reset timer handle stayed live across Reset")
	}
	if tm.Active() {
		t.Fatal("pre-Reset timer reports active after Reset")
	}

	fired = false
	e.Run()
	if fired {
		t.Fatal("events survived Reset")
	}
}

func TestResetReuseIsDeterministic(t *testing.T) {
	run := func(e *Engine) []Time {
		var log []Time
		var rearm Timer
		e.Schedule(5, func() { log = append(log, e.Now()) })
		e.ResetAfter(&rearm, 100, func() { log = append(log, e.Now()) })
		e.Schedule(1*Second, func() { log = append(log, e.Now()) }) // overflow
		e.At(40, func() { log = append(log, e.Now()) })
		e.Run()
		return log
	}

	e := NewEngine()
	first := run(e)
	e.Reset()
	second := run(e)
	if len(first) != len(second) {
		t.Fatalf("reused engine executed %d events, fresh ran %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("execution %d differs after reuse: fresh=%v reused=%v", i, first[i], second[i])
		}
	}
	// The second run must have been served from the warm free list.
	hits, _ := e.FreeListStats()
	if hits == 0 {
		t.Fatal("reused engine allocated every event fresh; free list was not kept warm")
	}
}

// ---------------------------------------------------------------------------
// Timer.Stop engine-reference hygiene (regression: a stopped handle used to
// keep its engine pointer, pinning a pooled engine through reuse).
// ---------------------------------------------------------------------------

func TestTimerStopClearsEngineReference(t *testing.T) {
	e := NewEngine()
	tm := e.After(10, func() {})
	if !tm.Stop() {
		t.Fatal("Stop on a live timer returned false")
	}
	if tm.engine != nil || tm.ev != nil {
		t.Fatal("Stop left references in the handle")
	}
	// A fired handle also sheds its references on Stop.
	tm2 := e.After(5, func() {})
	e.Run()
	if tm2.Stop() {
		t.Fatal("Stop on a fired timer returned true")
	}
	if tm2.engine != nil || tm2.ev != nil {
		t.Fatal("Stop on a fired timer left references in the handle")
	}
}

func TestTimerStopThenResetAtOnRecycledEngine(t *testing.T) {
	e := NewEngine()
	var tm Timer
	e.ResetAfter(&tm, 10, func() { t.Fatal("stopped event fired") })
	tm.Stop()

	e.Reset() // recycle the engine as the sweep pool does

	fired := false
	e.ResetAt(&tm, 7, func() { fired = true })
	if !tm.Active() {
		t.Fatal("re-armed timer not active on recycled engine")
	}
	if got := e.Run(); got != 7 {
		t.Fatalf("recycled engine ran to %v, want 7", got)
	}
	if !fired {
		t.Fatal("re-armed timer did not fire on recycled engine")
	}
}

// ---------------------------------------------------------------------------
// RunUntil clock semantics with empty and mid-run-drained queues.
// ---------------------------------------------------------------------------

func TestRunUntilEmptyQueueAdvancesToDeadline(t *testing.T) {
	e := NewEngine()
	if got := e.RunUntil(250 * Millisecond); got != 250*Millisecond {
		t.Fatalf("RunUntil on empty queue returned %v, want 250ms", got)
	}
	if e.Now() != 250*Millisecond {
		t.Fatalf("clock at %v, want 250ms", e.Now())
	}
}

func TestRunUntilDrainedMidRunAdvancesToDeadline(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() { at = e.Now() })
	if got := e.RunUntil(5000); got != 5000 {
		t.Fatalf("RunUntil returned %v, want 5000", got)
	}
	if at != 100 {
		t.Fatalf("event ran at %v, want 100", at)
	}
	if e.Now() != 5000 {
		t.Fatalf("clock at %v after draining mid-run, want deadline 5000", e.Now())
	}
}
