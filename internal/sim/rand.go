package sim

import "math/rand/v2"

// NewRand returns a deterministic pseudo-random source for the given seed.
// All stochastic components of incastlab draw from explicitly seeded sources
// so that every experiment is reproducible bit-for-bit.
func NewRand(seed uint64) *rand.Rand {
	// The second PCG word is a fixed odd constant so that distinct seeds
	// produce well-separated streams.
	return rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
}
