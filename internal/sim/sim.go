// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine models virtual time as int64 nanoseconds. Events are closures
// scheduled at absolute virtual times and executed in (time, sequence) order,
// where sequence is the order of scheduling; this makes runs fully
// deterministic: two events scheduled for the same instant fire in the order
// they were scheduled.
//
// The engine is single-goroutine by design. Network simulations are causally
// ordered graphs of tiny events (packet arrivals, timer expiries), and a
// single ordered event loop is both faster and easier to reason about than a
// concurrent one. Callers that want parallelism run independent Engine
// instances (one per experiment) on separate goroutines.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is a distinct type to prevent accidental mixing with wall
// -clock time.
type Time int64

// Common durations, expressed in the engine's nanosecond unit.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. It is useful as an
// "effectively never" deadline.
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to simulation time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Std converts a simulation time to a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(int64(t)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// event is a scheduled closure. seq breaks ties between events that share a
// timestamp so that scheduling order is execution order.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, maintained by eventHeap
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// executed counts events that have run, for diagnostics and benchmarks.
	executed uint64
}

// NewEngine returns an empty engine whose clock starts at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled, not-yet-executed events,
// including canceled events that have not been reaped yet.
func (e *Engine) Pending() int { return len(e.events) }

// Executed returns the number of events that have been run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Timer is a handle to a scheduled event that can be canceled or
// rescheduled. A nil Timer is inert: Stop and Active are safe no-ops.
type Timer struct {
	engine *Engine
	ev     *event
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.index < 0 {
		return false
	}
	t.ev.canceled = true
	heap.Remove(&t.engine.events, t.ev.index)
	return true
}

// Active reports whether the timer is still scheduled to fire.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && t.ev.index >= 0
}

// When returns the virtual time at which the timer fires, or MaxTime if the
// timer is not active.
func (t *Timer) When() Time {
	if !t.Active() {
		return MaxTime
	}
	return t.ev.at
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) panics: in a discrete-event model that is always a logic bug,
// and silently clamping it would hide causality violations.
func (e *Engine) At(at Time, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v which is before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{engine: e, ev: ev}
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Time, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Stop halts the run loop after the current event completes. Pending events
// remain queued; a subsequent Run or RunUntil resumes them.
func (e *Engine) Stop() { e.stopped = true }

// step pops and executes the earliest event. It reports false when the queue
// is empty.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It returns
// the virtual time of the last executed event.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (even if no event fired exactly then). Events after
// the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// peek returns the earliest non-canceled event without removing it, reaping
// canceled events it encounters at the top of the heap.
func (e *Engine) peek() *event {
	for len(e.events) > 0 {
		ev := e.events[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.events)
	}
	return nil
}

// NextEventAt returns the time of the next pending event, or MaxTime if the
// queue is empty.
func (e *Engine) NextEventAt() Time {
	ev := e.peek()
	if ev == nil {
		return MaxTime
	}
	return ev.at
}
