// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine models virtual time as int64 nanoseconds. Events are closures
// scheduled at absolute virtual times and executed in (time, sequence) order,
// where sequence is the order of scheduling; this makes runs fully
// deterministic: two events scheduled for the same instant fire in the order
// they were scheduled.
//
// The engine is single-goroutine by design. Network simulations are causally
// ordered graphs of tiny events (packet arrivals, timer expiries), and a
// single ordered event loop is both faster and easier to reason about than a
// concurrent one. Callers that want parallelism run independent Engine
// instances (one per experiment) on separate goroutines.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is a distinct type to prevent accidental mixing with wall
// -clock time.
type Time int64

// Common durations, expressed in the engine's nanosecond unit.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. It is useful as an
// "effectively never" deadline.
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to simulation time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Std converts a simulation time to a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(int64(t)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// event is a scheduled closure. seq breaks ties between events that share a
// timestamp so that scheduling order is execution order.
//
// Events are pooled: when an event fires or is stopped, the engine recycles
// the struct onto a free list and bumps gen. Timers remember the gen they
// were issued against, so a handle to a fired (and possibly reused) event
// degrades into a safe no-op instead of touching the new occupant.
//
// loc records which scheduler structure currently holds the event (see
// calqueue.go) and index its position there, so cancellation can unlink it
// eagerly wherever it lives.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // position within the structure named by loc; -1 when not queued
	loc   int8
	gen   uint64
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
//
// Events live in a bucketed calendar queue (see calqueue.go): O(1) appends
// into time buckets, a small heap over the bucket being drained, an
// overflow heap for far-future timers, and a FIFO fast path for events
// scheduled at exactly the current time. Execution order is identical to
// the classic binary heap's (time, seq) order; the heap survives as an
// internal reference implementation (refMode) that the differential tests
// run against the calendar queue.
//
// The engine keeps a free list of event structs: firing or stopping an event
// returns it to the list, so steady-state scheduling performs no heap
// allocation. Generation counters keep stale Timer handles safe across
// recycling.
type Engine struct {
	now     Time
	seq     uint64
	cq      calQueue
	stopped bool
	free    []*event

	// refMode routes all queue operations through events, the retained
	// binary-heap scheduler, instead of the calendar queue. Only the
	// differential and property tests construct refMode engines.
	refMode bool
	events  eventHeap

	// executed counts events that have run, for diagnostics and benchmarks.
	executed uint64

	// freeHits and freeMisses count event allocations served from the free
	// list versus fresh heap allocations — the free-list hit rate the
	// observability layer reports. Plain unconditional increments: cheaper
	// than any branch-to-skip would be.
	freeHits, freeMisses uint64

	// onEvent, if set, observes every event's timestamp immediately before
	// its closure runs. Installed by the invariant auditor to check clock
	// monotonicity; nil (the default) costs one branch per event.
	onEvent func(at Time)
}

// NewEngine returns an empty engine whose clock starts at zero.
func NewEngine() *Engine { return &Engine{} }

// newHeapEngine returns an engine running the reference binary-heap
// scheduler. It exists for the differential tests that prove the calendar
// queue executes identical (time, seq) orders.
func newHeapEngine() *Engine { return &Engine{refMode: true} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int {
	if e.refMode {
		return len(e.events)
	}
	return e.cq.n
}

// Executed returns the number of events that have been run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Scheduled returns the number of events ever scheduled (fired, pending,
// or canceled).
func (e *Engine) Scheduled() uint64 { return e.seq }

// FreeListStats reports how many event allocations were served from the
// engine's free list (hits) versus the heap (misses). hits/(hits+misses)
// is the steady-state zero-allocation rate of the event hot path.
func (e *Engine) FreeListStats() (hits, misses uint64) { return e.freeHits, e.freeMisses }

// SetOnEvent installs an observer called with each event's timestamp right
// before the event's closure executes (nil to remove). The observer must not
// mutate engine state; it exists for audit instrumentation.
func (e *Engine) SetOnEvent(fn func(at Time)) { e.onEvent = fn }

// newEvent takes an event from the free list (or allocates one) and
// initialises it for scheduling at the given time.
func (e *Engine) newEvent(at Time, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.freeHits++
	} else {
		ev = &event{}
		e.freeMisses++
	}
	ev.at = at
	ev.seq = e.seq
	e.seq++
	ev.fn = fn
	return ev
}

// recycle returns a dequeued event to the free list. Bumping gen invalidates
// every Timer handle that still points at this struct.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.index = -1
	ev.loc = locFree
	ev.gen++
	e.free = append(e.free, ev)
}

// Timer is a handle to a scheduled event that can be canceled or
// rescheduled. A nil or zero Timer is inert: Stop and Active are safe
// no-ops. Handles stay safe after their event fires — the underlying event
// struct may be recycled for a new event, and the generation check makes the
// stale handle degrade into a no-op rather than cancel the new occupant.
type Timer struct {
	engine *Engine
	ev     *event
	gen    uint64
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing. Calling Stop on a fired, already-stopped,
// nil, or zero timer returns false.
//
// Stop clears the handle completely, including its engine reference, so a
// stopped Timer never pins an engine across Engine.Reset or pooled reuse.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	if t.ev == nil || t.ev.gen != t.gen {
		t.ev = nil
		t.engine = nil
		return false
	}
	e := t.engine
	e.unlink(t.ev)
	e.recycle(t.ev)
	t.ev = nil
	t.engine = nil
	return true
}

// unlink removes a live event from whichever scheduler structure holds it.
func (e *Engine) unlink(ev *event) {
	if e.refMode {
		heap.Remove(&e.events, ev.index)
		return
	}
	e.cq.remove(ev)
}

// Active reports whether the timer is still scheduled to fire.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// When returns the virtual time at which the timer fires, or MaxTime if the
// timer is not active.
func (t *Timer) When() Time {
	if !t.Active() {
		return MaxTime
	}
	return t.ev.at
}

// schedule enqueues fn at absolute time at and returns the backing event.
// Scheduling in the past (before Now) panics: in a discrete-event model that
// is always a logic bug, and silently clamping it would hide causality
// violations.
func (e *Engine) schedule(at Time, fn func()) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v which is before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := e.newEvent(at, fn)
	if e.refMode {
		ev.loc = locRef
		heap.Push(&e.events, ev)
	} else {
		e.cq.add(ev, e.now)
	}
	return ev
}

// At schedules fn to run at absolute virtual time at and returns a
// cancellation handle. Use Schedule when the handle is not needed: it avoids
// the Timer allocation.
func (e *Engine) At(at Time, fn func()) *Timer {
	ev := e.schedule(at, fn)
	return &Timer{engine: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Time, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Schedule is At without the cancellation handle — the allocation-free path
// for fire-and-forget events.
func (e *Engine) Schedule(at Time, fn func()) { e.schedule(at, fn) }

// ScheduleAfter is After without the cancellation handle.
func (e *Engine) ScheduleAfter(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.schedule(e.now+delay, fn)
}

// ResetAt re-arms t to fire fn at absolute time at, canceling any pending
// fire first. It writes the handle in place, so a value-embedded Timer can be
// re-armed indefinitely without allocating.
func (e *Engine) ResetAt(t *Timer, at Time, fn func()) {
	t.Stop()
	ev := e.schedule(at, fn)
	t.engine = e
	t.ev = ev
	t.gen = ev.gen
}

// ResetAfter re-arms t to fire fn delay nanoseconds from now.
func (e *Engine) ResetAfter(t *Timer, delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.ResetAt(t, e.now+delay, fn)
}

// Stop halts the run loop after the current event completes. Pending events
// remain queued; a subsequent Run or RunUntil resumes them.
func (e *Engine) Stop() { e.stopped = true }

// popEvent removes and returns the earliest live event, or nil when the
// queue is empty.
func (e *Engine) popEvent() *event {
	if e.refMode {
		if len(e.events) == 0 {
			return nil
		}
		return heap.Pop(&e.events).(*event)
	}
	return e.cq.pop(e.now)
}

// step pops and executes the earliest event. It reports false when the queue
// is empty. The event is recycled before its closure runs, so a callback that
// stops or re-arms its own timer sees a stale (inert) handle rather than the
// queued event.
func (e *Engine) step() bool {
	ev := e.popEvent()
	if ev == nil {
		return false
	}
	e.now = ev.at
	e.executed++
	fn := ev.fn
	e.recycle(ev)
	if e.onEvent != nil {
		e.onEvent(e.now)
	}
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called. It returns
// the virtual time of the last executed event.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (even if no event fired exactly then). Events after
// the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		next := e.peek()
		if next == nil || next.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// peek returns the earliest pending event without removing it, or nil when
// the queue is empty. Stopped events are unlinked eagerly, so the head is
// always live.
func (e *Engine) peek() *event {
	if e.refMode {
		if len(e.events) == 0 {
			return nil
		}
		return e.events[0]
	}
	return e.cq.head(e.now)
}

// NextEventAt returns the time of the next pending event, or MaxTime if the
// queue is empty.
func (e *Engine) NextEventAt() Time {
	ev := e.peek()
	if ev == nil {
		return MaxTime
	}
	return ev.at
}

// Reset returns the engine to the state of a fresh engine while keeping its
// allocations warm: pending events are canceled and recycled, the clock and
// all counters return to zero, and any onEvent observer is removed — but
// the event free list, the calendar-queue bucket array, its learned bucket
// width, and slice capacities are retained. Timer handles issued before the
// Reset degrade into inert no-ops through their generation guard, exactly
// as handles to fired events do.
//
// Reset is the engine half of pooled reuse: sweep runners recycle one
// engine across consecutive simulation runs instead of re-growing the free
// list from nothing each time. Results are independent of pool warmth —
// reuse affects only where event structs come from, never event order.
func (e *Engine) Reset() {
	if e.refMode {
		for _, ev := range e.events {
			e.recycle(ev)
		}
		for i := range e.events {
			e.events[i] = nil
		}
		e.events = e.events[:0]
	} else {
		cq := &e.cq
		for _, ev := range cq.cur {
			e.recycle(ev)
		}
		for _, ev := range cq.nowq[cq.nowqHead:] {
			if ev != nil {
				e.recycle(ev)
			}
		}
		if cq.ringN > 0 {
			for i := range cq.buckets {
				for _, ev := range cq.buckets[i] {
					e.recycle(ev)
				}
			}
		}
		for _, ev := range cq.overflow {
			e.recycle(ev)
		}
		cq.reset()
	}
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.executed = 0
	e.freeHits, e.freeMisses = 0, 0
	e.onEvent = nil
}
