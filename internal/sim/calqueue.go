package sim

import "container/heap"

// This file implements the engine's bucketed calendar queue — the default
// event scheduler. The classic binary heap pays O(log n) pointer-chasing
// comparisons per push and pop; at incast degrees in the hundreds to
// thousands the heap holds tens of thousands of near-simultaneous events
// and those comparisons dominate scheduler time. The calendar queue splits
// the timeline into a ring of fixed-width buckets and keeps events sorted
// only within the small window currently being drained:
//
//   - nowq: a FIFO for events scheduled at exactly the current virtual
//     time. Causally-chained "fire now" events (packet forwarding chains)
//     append and pop here without touching any ordering structure; FIFO
//     order is (time, seq) order because seq is assignment order.
//   - cur: a small binary heap holding every pending event with at <
//     curEnd (the end of the current bucket window). All pops come from
//     cur or nowq.
//   - buckets: the ring. An event with curEnd <= at < curStart +
//     bucketCount*width lands in bucket (at>>shift)&mask as an unsorted
//     O(1) append. When the window reaches a bucket, its events move into
//     cur and are heapified once.
//   - overflow: a binary heap for events beyond the ring horizon — RTO
//     timers, burst starts, scenario phases. Events migrate from overflow
//     into cur when the window reaches their bucket. Cancellation is eager
//     everywhere (heap.Remove / swap-remove / tombstone), which matters
//     here: TCP re-arms its RTO via ResetAfter on nearly every ACK, and a
//     lazy overflow heap would fill with dead timers.
//
// Ordering correctness rests on one invariant: every event in the ring or
// overflow has at >= curEnd, and every event in cur or nowq has at <
// curEnd. The window only advances when cur and nowq are empty, so the
// global (time, seq) minimum always sits in cur or nowq, and comparing
// their heads is enough. The same-timestamp FIFO is correct because an
// event can only enter nowq while now equals its timestamp, and nowq
// drains completely before the clock advances — so any cur event sharing
// its timestamp was scheduled earlier (smaller seq) and wins the
// comparison.
//
// The bucket width adapts to event density, deterministically: all resize
// decisions are functions of virtual state (walked-empty-bucket streaks
// and bucket loads), never of wall time. A walk that crosses
// bucketCount/4 empty buckets doubles the width; a bucket that loads more
// than calNarrowLoad events into cur schedules a halving at the next
// window advance. Resizes re-place the ring and cur contents under the
// new width, restoring the invariant above.
const (
	calBuckets    = 1024 // ring size, fixed power of two
	calInitShift  = 10   // initial bucket width 2^10 ns ≈ 1 µs (~one MTU at 10 Gbps)
	calMinShift   = 7    // narrowest bucket: 128 ns
	calMaxShift   = 22   // widest bucket: ~4.2 ms
	calNarrowLoad = 128  // bucket load that triggers a width halving
	calWidenWalk  = calBuckets / 4
)

// Event locations, for eager cancellation.
const (
	locFree int8 = iota // recycled / executed / never scheduled
	locCur              // in the cur heap
	locRing             // in a ring bucket
	locNow              // in the same-timestamp FIFO
	locOver             // in the overflow heap
	locRef              // in the reference heap (refMode engines)
)

// calQueue is the calendar queue state embedded in Engine.
type calQueue struct {
	shift   uint
	mask    int
	buckets [][]*event
	ringN   int // live events across all ring buckets

	curStart Time // start of the current bucket window
	curIdx   int
	cur      eventHeap

	nowq     []*event // same-timestamp FIFO; canceled slots are nil
	nowqHead int

	overflow eventHeap

	n          int  // total live events in the queue
	wantNarrow bool // a halving is due at the next window advance

	scratch []*event // reused by rescale

	// Stats, reported via Engine.SchedulerStats.
	resizes    uint64
	migrations uint64
	nowFast    uint64
}

func (cq *calQueue) width() Time { return Time(1) << cq.shift }

func (cq *calQueue) init(now Time) {
	cq.shift = calInitShift
	cq.mask = calBuckets - 1
	cq.buckets = make([][]*event, calBuckets)
	cq.setWindow(now)
}

// setWindow anchors the current bucket window at the bucket containing t.
func (cq *calQueue) setWindow(t Time) {
	cq.curStart = t >> cq.shift << cq.shift
	cq.curIdx = int(uint64(t)>>cq.shift) & cq.mask
}

// add places a newly scheduled event. now is the engine clock.
func (cq *calQueue) add(ev *event, now Time) {
	if cq.buckets == nil {
		cq.init(now)
	}
	cq.n++
	if ev.at == now {
		ev.loc = locNow
		ev.index = len(cq.nowq)
		cq.nowq = append(cq.nowq, ev)
		cq.nowFast++
		return
	}
	cq.place(ev)
}

// place routes a future event (at > now) to cur, a ring bucket, or the
// overflow heap. All comparisons are written to survive timestamps near
// MaxTime without signed overflow.
func (cq *calQueue) place(ev *event) {
	if ev.at < cq.curStart {
		// The window advanced past this timestamp while peeking ahead;
		// the event still belongs to the pile currently being drained.
		ev.loc = locCur
		heap.Push(&cq.cur, ev)
		return
	}
	d := uint64(ev.at - cq.curStart)
	switch {
	case d < uint64(cq.width()):
		ev.loc = locCur
		heap.Push(&cq.cur, ev)
	case d < uint64(cq.width())<<uint(calBucketsLog):
		b := int(uint64(ev.at)>>cq.shift) & cq.mask
		ev.loc = locRing
		ev.index = len(cq.buckets[b])
		cq.buckets[b] = append(cq.buckets[b], ev)
		cq.ringN++
	default:
		ev.loc = locOver
		heap.Push(&cq.overflow, ev)
	}
}

const calBucketsLog = 10

// head returns the earliest live event without removing it, advancing the
// bucket window as needed. Returns nil when the queue is empty.
func (cq *calQueue) head(now Time) *event {
	for {
		for cq.nowqHead < len(cq.nowq) && cq.nowq[cq.nowqHead] == nil {
			cq.nowqHead++
		}
		var nq *event
		if cq.nowqHead < len(cq.nowq) {
			nq = cq.nowq[cq.nowqHead]
		}
		if len(cq.cur) > 0 {
			ct := cq.cur[0]
			if nq == nil || ct.at < nq.at || (ct.at == nq.at && ct.seq < nq.seq) {
				return ct
			}
		}
		if nq != nil {
			return nq
		}
		if cq.n == 0 {
			if len(cq.nowq) > 0 {
				cq.nowq = cq.nowq[:0]
				cq.nowqHead = 0
			}
			return nil
		}
		cq.advance(now)
	}
}

// pop removes and returns the earliest live event, or nil.
func (cq *calQueue) pop(now Time) *event {
	ev := cq.head(now)
	if ev == nil {
		return nil
	}
	switch ev.loc {
	case locCur:
		heap.Pop(&cq.cur)
	case locNow:
		cq.nowqHead = ev.index + 1
		if cq.nowqHead == len(cq.nowq) {
			cq.nowq = cq.nowq[:0]
			cq.nowqHead = 0
		}
	}
	cq.n--
	return ev
}

// remove eagerly unlinks a canceled event from whichever structure holds
// it. The caller guarantees the event is live in this queue.
func (cq *calQueue) remove(ev *event) {
	switch ev.loc {
	case locCur:
		heap.Remove(&cq.cur, ev.index)
	case locOver:
		heap.Remove(&cq.overflow, ev.index)
	case locRing:
		b := int(uint64(ev.at)>>cq.shift) & cq.mask
		s := cq.buckets[b]
		last := len(s) - 1
		moved := s[last]
		s[ev.index] = moved
		moved.index = ev.index
		s[last] = nil
		cq.buckets[b] = s[:last]
		cq.ringN--
	case locNow:
		cq.nowq[ev.index] = nil
	}
	cq.n--
}

// advance moves the window forward to the next populated bucket, applying
// any pending resize. Called only when cur and nowq are empty and live
// events remain in the ring or overflow.
func (cq *calQueue) advance(now Time) {
	if cq.wantNarrow && cq.shift > calMinShift {
		cq.wantNarrow = false
		cq.rescale(cq.shift-1, now)
		return
	}
	if cq.ringN == 0 {
		// Only far-future timers remain: jump straight to the earliest.
		cq.setWindow(cq.overflow[0].at)
		cq.loadBucket()
		return
	}
	w := cq.width()
	empty := 0
	for {
		cq.curIdx = (cq.curIdx + 1) & cq.mask
		cq.curStart += w
		if len(cq.buckets[cq.curIdx]) > 0 || cq.overflowDue() {
			cq.loadBucket()
			return
		}
		empty++
		if empty >= calWidenWalk && cq.shift < calMaxShift {
			// The ring is sparse at this width; double the bucket.
			cq.rescale(cq.shift+1, now)
			return
		}
	}
}

// overflowDue reports whether the overflow head falls inside the current
// bucket window.
func (cq *calQueue) overflowDue() bool {
	return len(cq.overflow) > 0 &&
		uint64(cq.overflow[0].at-cq.curStart) < uint64(cq.width())
}

// loadBucket drains the current ring bucket into cur, heapifies once, and
// pulls any overflow events that fall inside the window.
func (cq *calQueue) loadBucket() {
	b := cq.buckets[cq.curIdx]
	if len(b) > 0 {
		base := len(cq.cur)
		cq.cur = append(cq.cur, b...)
		for i := base; i < len(cq.cur); i++ {
			cq.cur[i].loc = locCur
			cq.cur[i].index = i
		}
		for j := range b {
			b[j] = nil
		}
		cq.buckets[cq.curIdx] = b[:0]
		cq.ringN -= len(b)
		heap.Init(&cq.cur)
		if len(b) > calNarrowLoad && cq.shift > calMinShift {
			cq.wantNarrow = true
		}
	}
	cq.migrateOverflow()
}

// migrateOverflow moves overflow events due inside the current window into
// cur. The subtraction form keeps the comparison overflow-safe: overflow
// events never precede curStart (the window never passes a live event).
func (cq *calQueue) migrateOverflow() {
	w := uint64(cq.width())
	for len(cq.overflow) > 0 && uint64(cq.overflow[0].at-cq.curStart) < w {
		ev := heap.Pop(&cq.overflow).(*event)
		ev.loc = locCur
		heap.Push(&cq.cur, ev)
		cq.migrations++
	}
}

// rescale changes the bucket width to 2^shift ns, re-anchoring the window
// at now and re-placing every ring and cur event under the new geometry.
// Overflow events that the wider window now covers migrate in; ring events
// beyond the narrower horizon demote to overflow.
func (cq *calQueue) rescale(shift uint, now Time) {
	cq.resizes++
	scratch := cq.scratch[:0]
	scratch = append(scratch, cq.cur...)
	for i := range cq.cur {
		cq.cur[i] = nil
	}
	cq.cur = cq.cur[:0]
	if cq.ringN > 0 {
		for i := range cq.buckets {
			b := cq.buckets[i]
			if len(b) == 0 {
				continue
			}
			scratch = append(scratch, b...)
			for j := range b {
				b[j] = nil
			}
			cq.buckets[i] = b[:0]
		}
	}
	cq.ringN = 0
	cq.shift = shift
	cq.setWindow(now)
	for _, ev := range scratch {
		cq.place(ev)
	}
	for i := range scratch {
		scratch[i] = nil
	}
	cq.scratch = scratch[:0]
	cq.migrateOverflow()
}

// reset recycles nothing (the engine owns recycling) but clears all queue
// state, keeping the bucket array, learned width, and slice capacities
// warm for reuse.
func (cq *calQueue) reset() {
	if cq.buckets == nil {
		return
	}
	for i := range cq.cur {
		cq.cur[i] = nil
	}
	cq.cur = cq.cur[:0]
	cq.nowq = cq.nowq[:0]
	cq.nowqHead = 0
	if cq.ringN > 0 {
		for i := range cq.buckets {
			b := cq.buckets[i]
			for j := range b {
				b[j] = nil
			}
			cq.buckets[i] = b[:0]
		}
	}
	cq.ringN = 0
	for i := range cq.overflow {
		cq.overflow[i] = nil
	}
	cq.overflow = cq.overflow[:0]
	cq.n = 0
	cq.wantNarrow = false
	cq.resizes, cq.migrations, cq.nowFast = 0, 0, 0
	cq.setWindow(0)
}

// SchedulerStats describes the calendar queue's geometry and traffic, in
// the spirit of FreeListStats: cheap counters the scheduler maintains
// anyway, exposed for tests and the observability layer.
type SchedulerStats struct {
	// BucketCount and BucketWidth give the ring geometry. BucketCount is
	// zero until the first event initializes the queue (and always zero on
	// reference-heap engines).
	BucketCount int
	BucketWidth Time
	// CurrentEvents, RingEvents, and OverflowEvents count live events in
	// the cur heap, the ring buckets, and the overflow heap.
	CurrentEvents, RingEvents, OverflowEvents int
	// Resizes counts bucket-width changes (halvings and doublings).
	Resizes uint64
	// OverflowMigrations counts events that moved from the overflow heap
	// into the current window.
	OverflowMigrations uint64
	// NowFastPath counts events that took the same-timestamp FIFO instead
	// of an ordering structure.
	NowFastPath uint64
}

// SchedulerStats reports the calendar queue's current geometry and
// counters. On a reference-heap engine it reports zeroes.
func (e *Engine) SchedulerStats() SchedulerStats {
	if e.refMode {
		return SchedulerStats{}
	}
	cq := &e.cq
	st := SchedulerStats{
		CurrentEvents:      len(cq.cur),
		RingEvents:         cq.ringN,
		OverflowEvents:     len(cq.overflow),
		Resizes:            cq.resizes,
		OverflowMigrations: cq.migrations,
		NowFastPath:        cq.nowFast,
	}
	if cq.buckets != nil {
		st.BucketCount = len(cq.buckets)
		st.BucketWidth = cq.width()
	}
	return st
}
