// Package workload drives incast traffic patterns over the simulated
// network: N senders with equal per-burst demand toward one receiver,
// repeated bursts on persistent connections, and jittered flow starts —
// the Section 4 experiment shape.
package workload

import (
	"fmt"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
)

// IncastConfig describes a repeated incast burst experiment.
type IncastConfig struct {
	// Flows is the incast degree N.
	Flows int
	// BytesPerFlow is the per-flow demand added at each burst start. For a
	// target burst duration D on a bottleneck of rate R, use R*D/8/N.
	BytesPerFlow int64
	// Bursts is how many bursts to run (the paper runs 11 and discards the
	// first as a slow-start transient).
	Bursts int
	// Interval is the start-to-start spacing of bursts.
	Interval sim.Time
	// JitterMax jitters each flow's start within a burst uniformly in
	// [0, JitterMax] to model variations in worker processing time
	// (paper: 0-100 us).
	JitterMax sim.Time
	// Seed drives the jitter RNG.
	Seed uint64
	// SenderConfig and ReceiverConfig tune the transport endpoints.
	SenderConfig   tcp.SenderConfig
	ReceiverConfig tcp.ReceiverConfig
	// Admitter optionally controls when each flow is released within a
	// burst (Section 5.2 wave scheduling); nil admits everyone at
	// start+jitter.
	Admitter Admitter
}

// BytesPerFlowFor returns the per-flow demand that fills a bottleneck of
// rate bps for the target duration across n flows, in whole MSS multiples
// (at least one segment). Using whole segments keeps per-flow demand equal
// and aligned, like the paper's equal-demand configuration.
func BytesPerFlowFor(bps int64, duration sim.Time, n int) int64 {
	total := bps / 8 * int64(duration) / 1_000_000_000
	per := total / int64(n)
	segs := per / netsim.MSS
	if segs < 1 {
		segs = 1
	}
	return segs * netsim.MSS
}

// DefaultIncastConfig returns the paper's Section 4 setup for n flows and a
// target burst duration: demand sized to the 10 Gbps bottleneck, 11 bursts,
// inter-burst gap of 5 ms, 0-100 us jitter.
func DefaultIncastConfig(n int, burstDuration sim.Time) IncastConfig {
	return IncastConfig{
		Flows:          n,
		BytesPerFlow:   BytesPerFlowFor(10*netsim.Gbps, burstDuration, n),
		Bursts:         11,
		Interval:       burstDuration + 5*sim.Millisecond,
		JitterMax:      100 * sim.Microsecond,
		Seed:           1,
		SenderConfig:   tcp.DefaultSenderConfig(),
		ReceiverConfig: tcp.DefaultReceiverConfig(),
	}
}

// AdmitContext is handed to an Admitter at each burst start.
type AdmitContext struct {
	// Eng is the simulation engine (for scheduling).
	Eng *sim.Engine
	// Burst is the burst index, from 0.
	Burst int
	// Start is the burst's nominal start time.
	Start sim.Time
	// Flows is the incast degree.
	Flows int
	// Admit releases flow i (adds its demand). Each flow must be admitted
	// exactly once per burst.
	Admit func(flow int)
}

// Admitter decides when each flow of a burst is released.
type Admitter interface {
	// BeginBurst is called at each burst's nominal start.
	BeginBurst(ctx AdmitContext)
	// FlowDone is called when a flow finishes its demand for the burst.
	FlowDone(burst, flow int)
}

// BurstRecord summarizes one burst of an incast run.
type BurstRecord struct {
	// Index is the burst number, from 0.
	Index int
	// Start is the nominal start time (before per-flow jitter).
	Start sim.Time
	// End is when the last flow finished its demand.
	End sim.Time
	// BCT is End - Start, the burst completion time.
	BCT sim.Time
}

// Incast wires an incast workload over a dumbbell topology: it builds the
// endpoints and delegates burst scheduling to a Group. Construct with
// NewIncast, optionally attach instrumentation, then run the engine.
type Incast struct {
	cfg IncastConfig
	net *netsim.Dumbbell

	group     *Group
	receivers []*tcp.Receiver
}

// NewIncast builds the topology and endpoints. netCfg.Senders must equal
// cfg.Flows. algFactory supplies a fresh congestion-control instance per
// flow.
func NewIncast(eng *sim.Engine, netCfg netsim.DumbbellConfig, cfg IncastConfig,
	algFactory func(flow int) cc.Algorithm) *Incast {
	return NewIncastWithPool(eng, netCfg, cfg, algFactory, nil)
}

// NewIncastWithPool is NewIncast with an injected packet pool (nil for a
// fresh one), letting sweep runners reuse a warm pool across runs.
func NewIncastWithPool(eng *sim.Engine, netCfg netsim.DumbbellConfig, cfg IncastConfig,
	algFactory func(flow int) cc.Algorithm, pool *netsim.PacketPool) *Incast {
	if cfg.Flows <= 0 {
		panic("workload: incast needs at least one flow")
	}
	if netCfg.Senders != cfg.Flows {
		panic(fmt.Sprintf("workload: topology has %d senders, config has %d flows",
			netCfg.Senders, cfg.Flows))
	}

	in := &Incast{
		cfg: cfg,
		net: netsim.NewDumbbellWithPool(eng, netCfg, pool),
	}

	recvHub := tcp.NewHub(in.net.Receiver)
	senders := make([]*tcp.Sender, cfg.Flows)
	in.receivers = make([]*tcp.Receiver, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		flow := netsim.FlowID(i + 1)
		hub := tcp.NewHub(in.net.Senders[i])
		senders[i] = tcp.NewSender(eng, hub, flow, in.net.Receiver.ID(),
			algFactory(i), cfg.SenderConfig)
		in.receivers[i] = tcp.NewReceiver(eng, recvHub, flow,
			in.net.Senders[i].ID(), cfg.ReceiverConfig)
	}

	in.group = NewGroup(eng, senders, GroupConfig{
		BytesPerFlow: cfg.BytesPerFlow,
		Bursts:       cfg.Bursts,
		Interval:     cfg.Interval,
		JitterMax:    cfg.JitterMax,
		Seed:         cfg.Seed,
		Admitter:     cfg.Admitter,
	})
	return in
}

// Network returns the underlying topology.
func (in *Incast) Network() *netsim.Dumbbell { return in.net }

// Senders returns the per-flow senders (for instrumentation).
func (in *Incast) Senders() []*tcp.Sender { return in.group.Senders() }

// Receivers returns the per-flow receivers.
func (in *Incast) Receivers() []*tcp.Receiver { return in.receivers }

// Config returns the workload configuration.
func (in *Incast) Config() IncastConfig { return in.cfg }

// Bursts returns per-burst records; valid after the run completes.
func (in *Incast) Bursts() []BurstRecord { return in.group.Bursts() }

// Done reports whether every burst completed.
func (in *Incast) Done() bool { return in.group.Done() }

// AggregateSenderStats sums transport counters across all flows.
func (in *Incast) AggregateSenderStats() tcp.SenderStats {
	return in.group.AggregateSenderStats()
}
