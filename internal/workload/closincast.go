package workload

import (
	"fmt"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
)

// Worker placement policies for a Clos incast: where the workers sit
// relative to the aggregator (which always occupies rack 0, slot 0).
const (
	// PlacementCrossRack spreads workers round-robin over the other racks —
	// the production shape: responses converge through the fabric and the
	// aggregator ToR's downlink.
	PlacementCrossRack = "cross-rack"
	// PlacementSameRack packs workers under the aggregator's own leaf, so
	// traffic never crosses a spine — the dumbbell-like control.
	PlacementSameRack = "same-rack"
)

// ClosIncastConfig describes a repeated incast burst over a Clos fabric.
// The embedded fields mirror IncastConfig; Workers replaces Flows and
// Placement chooses where they live.
type ClosIncastConfig struct {
	// Workers is the incast degree N — per aggregator when Aggregators > 1.
	Workers int
	// Placement is PlacementCrossRack (default when empty) or
	// PlacementSameRack.
	Placement string
	// Aggregators is the number of concurrent incasts sharing the fabric
	// (0 or 1 = the classic single aggregator at host 0). Aggregator k
	// receives at rack k, slot 0, each fanning in its own Workers flows,
	// so the spine layer carries A overlapping incasts.
	Aggregators int
	// BytesPerFlow is the per-flow demand added at each burst start.
	BytesPerFlow int64
	// Bursts, Interval, JitterMax, Seed: as IncastConfig.
	Bursts    int
	Interval  sim.Time
	JitterMax sim.Time
	Seed      uint64
	// SenderConfig and ReceiverConfig tune the transport endpoints.
	SenderConfig   tcp.SenderConfig
	ReceiverConfig tcp.ReceiverConfig
	// Admitter optionally controls flow release within bursts.
	Admitter Admitter
}

// ClosWorkerHosts returns the host IDs the workers occupy for a placement
// over the given fabric, in flow order, or an error when the fabric is too
// small. The aggregator is always host 0 (rack 0, slot 0).
//
// Cross-rack workers round-robin over racks 1..Racks-1 (worker i sits in
// rack 1+i%(Racks-1), slot i/(Racks-1)); same-rack workers fill rack 0's
// remaining slots.
func ClosWorkerHosts(cfg netsim.ClosConfig, workers int, placement string) ([]netsim.NodeID, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("workload: clos incast needs at least one worker (got %d)", workers)
	}
	ids := make([]netsim.NodeID, workers)
	switch placement {
	case PlacementCrossRack, "":
		remote := cfg.Racks - 1
		if cap := remote * cfg.HostsPerRack; workers > cap {
			return nil, fmt.Errorf(
				"workload: %d cross-rack workers exceed the %d hosts in racks 1..%d (%d racks x %d hosts/rack)",
				workers, cap, cfg.Racks-1, remote, cfg.HostsPerRack)
		}
		for i := 0; i < workers; i++ {
			ids[i] = cfg.HostID(1+i%remote, i/remote)
		}
	case PlacementSameRack:
		if cap := cfg.HostsPerRack - 1; workers > cap {
			return nil, fmt.Errorf(
				"workload: %d same-rack workers exceed the %d free slots under the aggregator's leaf (%d hosts/rack)",
				workers, cap, cfg.HostsPerRack)
		}
		for i := 0; i < workers; i++ {
			ids[i] = cfg.HostID(0, i+1)
		}
	default:
		return nil, fmt.Errorf("workload: unknown placement %q (want %q or %q)",
			placement, PlacementCrossRack, PlacementSameRack)
	}
	return ids, nil
}

// ClosFlowEndpoints returns the (src, dst) host pair of every flow in a
// Clos incast workload, in global flow order (aggregator-major: flow
// k*workers+i is worker i of aggregator k, carrying FlowID k*workers+i+1).
// This is the single source of truth both backends place flows from: the
// packet workload builds its senders from it and the fluid solver builds
// its queue paths from it, so ECMP hashes over identical (flow, src, dst)
// tuples.
//
// aggregators <= 1 reproduces ClosWorkerHosts exactly (aggregator at host
// 0). For A > 1, aggregator k sits at rack k slot 0; its same-rack workers
// fill rack k's remaining slots, while its cross-rack workers round-robin
// over the other racks starting at rack k+1, taking each rack's next free
// slot (slot 0 stays reserved for that rack's aggregator, if any).
func ClosFlowEndpoints(cfg netsim.ClosConfig, workers, aggregators int, placement string) (srcs, dsts []netsim.NodeID, err error) {
	if aggregators <= 1 {
		ids, err := ClosWorkerHosts(cfg, workers, placement)
		if err != nil {
			return nil, nil, err
		}
		return ids, make([]netsim.NodeID, workers), nil
	}
	if aggregators > cfg.Racks {
		return nil, nil, fmt.Errorf(
			"workload: %d aggregators exceed the %d racks (one aggregator per rack, at slot 0)",
			aggregators, cfg.Racks)
	}
	if workers <= 0 {
		return nil, nil, fmt.Errorf("workload: clos incast needs at least one worker per aggregator (got %d)", workers)
	}
	next := make([]int, cfg.Racks) // next free slot per rack
	for r := 0; r < aggregators; r++ {
		next[r] = 1 // slot 0 hosts aggregator r
	}
	srcs = make([]netsim.NodeID, 0, aggregators*workers)
	dsts = make([]netsim.NodeID, 0, aggregators*workers)
	for k := 0; k < aggregators; k++ {
		agg := cfg.HostID(k, 0)
		for i := 0; i < workers; i++ {
			var r int
			switch placement {
			case PlacementCrossRack, "":
				r = (k + 1 + i%(cfg.Racks-1)) % cfg.Racks
			case PlacementSameRack:
				r = k
			default:
				return nil, nil, fmt.Errorf("workload: unknown placement %q (want %q or %q)",
					placement, PlacementCrossRack, PlacementSameRack)
			}
			if next[r] >= cfg.HostsPerRack {
				return nil, nil, fmt.Errorf(
					"workload: rack %d full placing worker %d of aggregator %d (%d aggregators x %d workers, placement %q, %d hosts/rack)",
					r, i, k, aggregators, workers, placement, cfg.HostsPerRack)
			}
			srcs = append(srcs, cfg.HostID(r, next[r]))
			next[r]++
			dsts = append(dsts, agg)
		}
	}
	return srcs, dsts, nil
}

// ClosIncast wires an incast workload over a Clos fabric: the aggregator
// at host 0 and workers placed by policy, with burst scheduling delegated
// to a Group exactly as the dumbbell Incast does.
type ClosIncast struct {
	cfg ClosIncastConfig
	net *netsim.Clos

	workers   []netsim.NodeID
	group     *Group
	receivers []*tcp.Receiver
}

// NewClosIncast builds the fabric and endpoints.
func NewClosIncast(eng *sim.Engine, netCfg netsim.ClosConfig, cfg ClosIncastConfig,
	algFactory func(flow int) cc.Algorithm) *ClosIncast {
	return NewClosIncastWithPool(eng, netCfg, cfg, algFactory, nil)
}

// NewClosIncastWithPool is NewClosIncast with an injected packet pool (nil
// for a fresh one), letting sweep runners reuse a warm pool across runs.
func NewClosIncastWithPool(eng *sim.Engine, netCfg netsim.ClosConfig, cfg ClosIncastConfig,
	algFactory func(flow int) cc.Algorithm, pool *netsim.PacketPool) *ClosIncast {
	srcs, dsts, err := ClosFlowEndpoints(netCfg, cfg.Workers, cfg.Aggregators, cfg.Placement)
	if err != nil {
		panic(err.Error())
	}

	in := &ClosIncast{
		cfg:     cfg,
		net:     netsim.NewClosWithPool(eng, netCfg, pool),
		workers: srcs,
	}

	// One hub per aggregator host, built in aggregator order (the single-
	// aggregator case keeps the original hub-before-workers construction
	// order, so event scheduling — and goldens — are unchanged).
	aggs := max(cfg.Aggregators, 1)
	aggHubs := make(map[netsim.NodeID]*tcp.Hub, aggs)
	for k := 0; k < aggs; k++ {
		id := dsts[k*cfg.Workers]
		aggHubs[id] = tcp.NewHub(in.net.Hosts[id])
	}
	senders := make([]*tcp.Sender, len(srcs))
	in.receivers = make([]*tcp.Receiver, len(srcs))
	for f, id := range srcs {
		flow := netsim.FlowID(f + 1)
		hub := tcp.NewHub(in.net.Hosts[id])
		senders[f] = tcp.NewSender(eng, hub, flow, dsts[f],
			algFactory(f), cfg.SenderConfig)
		in.receivers[f] = tcp.NewReceiver(eng, aggHubs[dsts[f]], flow, id, cfg.ReceiverConfig)
	}

	in.group = NewGroup(eng, senders, GroupConfig{
		BytesPerFlow: cfg.BytesPerFlow,
		Bursts:       cfg.Bursts,
		Interval:     cfg.Interval,
		JitterMax:    cfg.JitterMax,
		Seed:         cfg.Seed,
		Admitter:     cfg.Admitter,
	})
	return in
}

// Network returns the underlying fabric.
func (in *ClosIncast) Network() *netsim.Clos { return in.net }

// Aggregator returns the receiving host (host 0, rack 0).
func (in *ClosIncast) Aggregator() *netsim.Host { return in.net.Hosts[0] }

// WorkerHosts returns the worker host IDs in flow order.
func (in *ClosIncast) WorkerHosts() []netsim.NodeID { return in.workers }

// Senders returns the per-flow senders (for instrumentation).
func (in *ClosIncast) Senders() []*tcp.Sender { return in.group.Senders() }

// Receivers returns the per-flow receivers at the aggregator.
func (in *ClosIncast) Receivers() []*tcp.Receiver { return in.receivers }

// Config returns the workload configuration.
func (in *ClosIncast) Config() ClosIncastConfig { return in.cfg }

// Bursts returns per-burst records; valid after the run completes.
func (in *ClosIncast) Bursts() []BurstRecord { return in.group.Bursts() }

// Done reports whether every burst completed.
func (in *ClosIncast) Done() bool { return in.group.Done() }

// AggregateSenderStats sums transport counters across all flows.
func (in *ClosIncast) AggregateSenderStats() tcp.SenderStats {
	return in.group.AggregateSenderStats()
}
