package workload

import (
	"fmt"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
)

// Worker placement policies for a Clos incast: where the workers sit
// relative to the aggregator (which always occupies rack 0, slot 0).
const (
	// PlacementCrossRack spreads workers round-robin over the other racks —
	// the production shape: responses converge through the fabric and the
	// aggregator ToR's downlink.
	PlacementCrossRack = "cross-rack"
	// PlacementSameRack packs workers under the aggregator's own leaf, so
	// traffic never crosses a spine — the dumbbell-like control.
	PlacementSameRack = "same-rack"
)

// ClosIncastConfig describes a repeated incast burst over a Clos fabric.
// The embedded fields mirror IncastConfig; Workers replaces Flows and
// Placement chooses where they live.
type ClosIncastConfig struct {
	// Workers is the incast degree N.
	Workers int
	// Placement is PlacementCrossRack (default when empty) or
	// PlacementSameRack.
	Placement string
	// BytesPerFlow is the per-flow demand added at each burst start.
	BytesPerFlow int64
	// Bursts, Interval, JitterMax, Seed: as IncastConfig.
	Bursts    int
	Interval  sim.Time
	JitterMax sim.Time
	Seed      uint64
	// SenderConfig and ReceiverConfig tune the transport endpoints.
	SenderConfig   tcp.SenderConfig
	ReceiverConfig tcp.ReceiverConfig
	// Admitter optionally controls flow release within bursts.
	Admitter Admitter
}

// ClosWorkerHosts returns the host IDs the workers occupy for a placement
// over the given fabric, in flow order, or an error when the fabric is too
// small. The aggregator is always host 0 (rack 0, slot 0).
//
// Cross-rack workers round-robin over racks 1..Racks-1 (worker i sits in
// rack 1+i%(Racks-1), slot i/(Racks-1)); same-rack workers fill rack 0's
// remaining slots.
func ClosWorkerHosts(cfg netsim.ClosConfig, workers int, placement string) ([]netsim.NodeID, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("workload: clos incast needs at least one worker (got %d)", workers)
	}
	ids := make([]netsim.NodeID, workers)
	switch placement {
	case PlacementCrossRack, "":
		remote := cfg.Racks - 1
		if cap := remote * cfg.HostsPerRack; workers > cap {
			return nil, fmt.Errorf(
				"workload: %d cross-rack workers exceed the %d hosts in racks 1..%d (%d racks x %d hosts/rack)",
				workers, cap, cfg.Racks-1, remote, cfg.HostsPerRack)
		}
		for i := 0; i < workers; i++ {
			ids[i] = cfg.HostID(1+i%remote, i/remote)
		}
	case PlacementSameRack:
		if cap := cfg.HostsPerRack - 1; workers > cap {
			return nil, fmt.Errorf(
				"workload: %d same-rack workers exceed the %d free slots under the aggregator's leaf (%d hosts/rack)",
				workers, cap, cfg.HostsPerRack)
		}
		for i := 0; i < workers; i++ {
			ids[i] = cfg.HostID(0, i+1)
		}
	default:
		return nil, fmt.Errorf("workload: unknown placement %q (want %q or %q)",
			placement, PlacementCrossRack, PlacementSameRack)
	}
	return ids, nil
}

// ClosIncast wires an incast workload over a Clos fabric: the aggregator
// at host 0 and workers placed by policy, with burst scheduling delegated
// to a Group exactly as the dumbbell Incast does.
type ClosIncast struct {
	cfg ClosIncastConfig
	net *netsim.Clos

	workers   []netsim.NodeID
	group     *Group
	receivers []*tcp.Receiver
}

// NewClosIncast builds the fabric and endpoints.
func NewClosIncast(eng *sim.Engine, netCfg netsim.ClosConfig, cfg ClosIncastConfig,
	algFactory func(flow int) cc.Algorithm) *ClosIncast {
	return NewClosIncastWithPool(eng, netCfg, cfg, algFactory, nil)
}

// NewClosIncastWithPool is NewClosIncast with an injected packet pool (nil
// for a fresh one), letting sweep runners reuse a warm pool across runs.
func NewClosIncastWithPool(eng *sim.Engine, netCfg netsim.ClosConfig, cfg ClosIncastConfig,
	algFactory func(flow int) cc.Algorithm, pool *netsim.PacketPool) *ClosIncast {
	workers, err := ClosWorkerHosts(netCfg, cfg.Workers, cfg.Placement)
	if err != nil {
		panic(err.Error())
	}

	in := &ClosIncast{
		cfg:     cfg,
		net:     netsim.NewClosWithPool(eng, netCfg, pool),
		workers: workers,
	}

	agg := in.net.Hosts[0]
	aggHub := tcp.NewHub(agg)
	senders := make([]*tcp.Sender, cfg.Workers)
	in.receivers = make([]*tcp.Receiver, cfg.Workers)
	for i, id := range workers {
		flow := netsim.FlowID(i + 1)
		hub := tcp.NewHub(in.net.Hosts[id])
		senders[i] = tcp.NewSender(eng, hub, flow, agg.ID(),
			algFactory(i), cfg.SenderConfig)
		in.receivers[i] = tcp.NewReceiver(eng, aggHub, flow, id, cfg.ReceiverConfig)
	}

	in.group = NewGroup(eng, senders, GroupConfig{
		BytesPerFlow: cfg.BytesPerFlow,
		Bursts:       cfg.Bursts,
		Interval:     cfg.Interval,
		JitterMax:    cfg.JitterMax,
		Seed:         cfg.Seed,
		Admitter:     cfg.Admitter,
	})
	return in
}

// Network returns the underlying fabric.
func (in *ClosIncast) Network() *netsim.Clos { return in.net }

// Aggregator returns the receiving host (host 0, rack 0).
func (in *ClosIncast) Aggregator() *netsim.Host { return in.net.Hosts[0] }

// WorkerHosts returns the worker host IDs in flow order.
func (in *ClosIncast) WorkerHosts() []netsim.NodeID { return in.workers }

// Senders returns the per-flow senders (for instrumentation).
func (in *ClosIncast) Senders() []*tcp.Sender { return in.group.Senders() }

// Receivers returns the per-flow receivers at the aggregator.
func (in *ClosIncast) Receivers() []*tcp.Receiver { return in.receivers }

// Config returns the workload configuration.
func (in *ClosIncast) Config() ClosIncastConfig { return in.cfg }

// Bursts returns per-burst records; valid after the run completes.
func (in *ClosIncast) Bursts() []BurstRecord { return in.group.Bursts() }

// Done reports whether every burst completed.
func (in *ClosIncast) Done() bool { return in.group.Done() }

// AggregateSenderStats sums transport counters across all flows.
func (in *ClosIncast) AggregateSenderStats() tcp.SenderStats {
	return in.group.AggregateSenderStats()
}
