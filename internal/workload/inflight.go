package workload

import (
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
	"incastlab/internal/tcp"
)

// InFlightSample is one cross-flow snapshot of per-flow in-flight data
// (bytes), over the flows that are active (in-flight > 0) at that instant.
// This is the quantity Figure 7 plots to expose straggler skew.
type InFlightSample struct {
	// At is the snapshot time.
	At sim.Time
	// Active is the number of flows with data in flight.
	Active int
	// Mean, P25, P50, P75, P95, Max summarize in-flight bytes across the
	// active flows; all zero when no flow is active.
	Mean, P25, P50, P75, P95, Max float64
}

// InFlightTrace is a sequence of snapshots.
type InFlightTrace struct {
	Samples []InFlightSample
}

// SampleInFlight schedules n periodic snapshots of the senders' in-flight
// distribution, starting at start. The trace fills in as the engine runs.
func SampleInFlight(eng *sim.Engine, senders []*tcp.Sender,
	start, interval sim.Time, n int) *InFlightTrace {
	tr := &InFlightTrace{Samples: make([]InFlightSample, n)}
	scratch := make([]float64, 0, len(senders))
	netsim.SamplePeriodically(eng, start, interval, n, func(i int) {
		scratch = scratch[:0]
		for _, s := range senders {
			if f := s.InFlight(); f > 0 {
				scratch = append(scratch, float64(f))
			}
		}
		smp := InFlightSample{At: eng.Now(), Active: len(scratch)}
		if len(scratch) > 0 {
			sum := stats.Summarize(scratch)
			smp.Mean, smp.P25, smp.P50 = sum.Mean, sum.P25, sum.P50
			smp.P75, smp.P95, smp.Max = sum.P75, sum.P95, sum.Max
		}
		tr.Samples[i] = smp
	})
	return tr
}

// MaxSkew returns the largest observed ratio of max to median in-flight
// data across all samples with at least minActive active flows — a scalar
// measure of the Figure 7 straggler effect.
func (tr *InFlightTrace) MaxSkew(minActive int) float64 {
	var worst float64
	for _, s := range tr.Samples {
		if s.Active >= minActive && s.P50 > 0 {
			if r := s.Max / s.P50; r > worst {
				worst = r
			}
		}
	}
	return worst
}
