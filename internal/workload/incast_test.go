package workload

import (
	"testing"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
)

func dctcpFactory(flow int) cc.Algorithm { return cc.NewDCTCP(cc.DefaultDCTCPConfig()) }

func TestBytesPerFlowFor(t *testing.T) {
	// 10 Gbps for 15 ms = 18.75 MB; across 100 flows = 187.5 KB, rounded
	// down to whole segments.
	got := BytesPerFlowFor(10*netsim.Gbps, 15*sim.Millisecond, 100)
	if got < 180_000 || got > 190_000 {
		t.Fatalf("bytes per flow = %d, want ~187500", got)
	}
	if got%netsim.MSS != 0 {
		t.Fatalf("demand %d not segment-aligned", got)
	}
	// Extreme degree still sends at least one segment.
	if got := BytesPerFlowFor(10*netsim.Gbps, sim.Millisecond, 1_000_000); got != netsim.MSS {
		t.Fatalf("minimum demand = %d, want 1 MSS", got)
	}
}

func runSmallIncast(t *testing.T, cfg IncastConfig) *Incast {
	t.Helper()
	eng := sim.NewEngine()
	in := NewIncast(eng, netsim.DefaultDumbbellConfig(cfg.Flows), cfg, dctcpFactory)
	eng.Run()
	if !in.Done() {
		t.Fatal("incast did not complete")
	}
	return in
}

func smallConfig() IncastConfig {
	cfg := DefaultIncastConfig(20, sim.Millisecond)
	cfg.Bursts = 3
	cfg.Interval = 3 * sim.Millisecond
	return cfg
}

func TestIncastCompletesAndConserves(t *testing.T) {
	cfg := smallConfig()
	in := runSmallIncast(t, cfg)

	// Conservation: every receiver got exactly bursts * perflow bytes.
	for i, r := range in.Receivers() {
		want := int64(cfg.Bursts) * cfg.BytesPerFlow
		if r.RcvNxt() != want {
			t.Fatalf("flow %d delivered %d bytes, want %d", i, r.RcvNxt(), want)
		}
	}
	for _, b := range in.Bursts() {
		if b.BCT <= 0 {
			t.Fatalf("burst %d has no completion: %+v", b.Index, b)
		}
		if b.End != b.Start+b.BCT {
			t.Fatalf("burst %d: inconsistent record %+v", b.Index, b)
		}
	}
}

func TestIncastBCTNearTarget(t *testing.T) {
	// 20 flows, 1 ms of bottleneck demand: steady-state BCT should be near
	// 1 ms and surely below the 3 ms interval (no burst overlap).
	in := runSmallIncast(t, smallConfig())
	for _, b := range in.Bursts()[1:] { // skip slow-start burst
		if b.BCT < 800*sim.Microsecond || b.BCT > 3*sim.Millisecond {
			t.Fatalf("burst %d BCT = %v, want ~1ms", b.Index, b.BCT)
		}
	}
}

func TestIncastDeterministicUnderSeed(t *testing.T) {
	run := func() []BurstRecord {
		eng := sim.NewEngine()
		cfg := smallConfig()
		in := NewIncast(eng, netsim.DefaultDumbbellConfig(cfg.Flows), cfg, dctcpFactory)
		eng.Run()
		return in.Bursts()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at burst %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestIncastSeedChangesJitter(t *testing.T) {
	run := func(seed uint64) sim.Time {
		eng := sim.NewEngine()
		cfg := smallConfig()
		cfg.Seed = seed
		in := NewIncast(eng, netsim.DefaultDumbbellConfig(cfg.Flows), cfg, dctcpFactory)
		eng.Run()
		return in.Bursts()[1].End
	}
	if run(1) == run(99) {
		t.Fatal("different seeds produced byte-identical schedules (suspicious)")
	}
}

func TestIncastECNActivity(t *testing.T) {
	// A 100-flow burst must push the queue past K and generate ECE echoes.
	cfg := DefaultIncastConfig(100, sim.Millisecond)
	cfg.Bursts = 2
	cfg.Interval = 3 * sim.Millisecond
	in := runSmallIncast(t, cfg)
	if in.AggregateSenderStats().ECEAcks == 0 {
		t.Fatal("100-flow incast produced no ECE feedback")
	}
	if in.Network().BottleneckQueue().Stats().PeakPackets <= 65 {
		t.Fatalf("peak queue %d did not exceed the ECN threshold",
			in.Network().BottleneckQueue().Stats().PeakPackets)
	}
}

func TestSampleInFlight(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	in := NewIncast(eng, netsim.DefaultDumbbellConfig(cfg.Flows), cfg, dctcpFactory)
	tr := SampleInFlight(eng, in.Senders(), 0, 100*sim.Microsecond, 90)
	eng.Run()

	var sawActive bool
	for _, s := range tr.Samples {
		if s.Active > 0 {
			sawActive = true
			if s.Max < s.P50 || s.P50 < s.P25 || s.Mean <= 0 {
				t.Fatalf("inconsistent sample: %+v", s)
			}
		} else if s.Mean != 0 || s.Max != 0 {
			t.Fatalf("idle sample should be zero: %+v", s)
		}
	}
	if !sawActive {
		t.Fatal("sampler never observed active flows")
	}
	if tr.MaxSkew(5) < 1 {
		t.Fatalf("skew = %v, want >= 1 when flows are active", tr.MaxSkew(5))
	}
}

func TestIncastConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	base := smallConfig()
	cases := []func(*IncastConfig){
		func(c *IncastConfig) { c.Flows = 0 },
		func(c *IncastConfig) { c.BytesPerFlow = 0 },
		func(c *IncastConfig) { c.Bursts = 0 },
		func(c *IncastConfig) { c.Interval = 0 },
	}
	for i, mod := range cases {
		cfg := base
		mod(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			n := cfg.Flows
			if n <= 0 {
				n = 1
			}
			NewIncast(eng, netsim.DefaultDumbbellConfig(n), cfg, dctcpFactory)
		}()
	}
	// Mismatched topology/flow count.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("sender-count mismatch did not panic")
			}
		}()
		NewIncast(eng, netsim.DefaultDumbbellConfig(3), base, dctcpFactory)
	}()
}

// countingAdmitter admits all flows immediately and records callbacks.
type countingAdmitter struct {
	begun    int
	done     int
	perBurst map[int]int
}

func (a *countingAdmitter) BeginBurst(ctx AdmitContext) {
	a.begun++
	for i := 0; i < ctx.Flows; i++ {
		ctx.Admit(i)
	}
}

func (a *countingAdmitter) FlowDone(burst, flow int) {
	a.done++
	if a.perBurst == nil {
		a.perBurst = make(map[int]int)
	}
	a.perBurst[burst]++
}

func TestAdmitterHooks(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	adm := &countingAdmitter{}
	cfg.Admitter = adm
	in := NewIncast(eng, netsim.DefaultDumbbellConfig(cfg.Flows), cfg, dctcpFactory)
	eng.Run()
	if !in.Done() {
		t.Fatal("admitted incast did not complete")
	}
	if adm.begun != cfg.Bursts {
		t.Fatalf("BeginBurst calls = %d, want %d", adm.begun, cfg.Bursts)
	}
	if adm.done != cfg.Bursts*cfg.Flows {
		t.Fatalf("FlowDone calls = %d, want %d", adm.done, cfg.Bursts*cfg.Flows)
	}
	for b := 0; b < cfg.Bursts; b++ {
		if adm.perBurst[b] != cfg.Flows {
			t.Fatalf("burst %d had %d completions", b, adm.perBurst[b])
		}
	}
}

// TestGroupStartOffset: a Group whose Start is offset schedules its bursts
// relative to that offset.
func TestGroupStartOffset(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	in := NewIncast(eng, netsim.DefaultDumbbellConfig(cfg.Flows), cfg, dctcpFactory)
	_ = in
	// Build a second group over a separate topology with offset start.
	eng2 := sim.NewEngine()
	in2 := NewIncast(eng2, netsim.DefaultDumbbellConfig(cfg.Flows), cfg, dctcpFactory)
	_ = in2
	// The offset behavior is covered directly via NewGroup below.
	eng3 := sim.NewEngine()
	net3 := netsim.DefaultDumbbellConfig(5)
	d := netsim.NewDumbbell(eng3, net3)
	rHub := tcp.NewHub(d.Receiver)
	senders := make([]*tcp.Sender, 5)
	for i := 0; i < 5; i++ {
		hub := tcp.NewHub(d.Senders[i])
		senders[i] = tcp.NewSender(eng3, hub, netsim.FlowID(i+1), d.Receiver.ID(),
			dctcpFactory(i), tcp.DefaultSenderConfig())
		tcp.NewReceiver(eng3, rHub, netsim.FlowID(i+1), d.Senders[i].ID(), tcp.DefaultReceiverConfig())
	}
	g := NewGroup(eng3, senders, GroupConfig{
		BytesPerFlow: 10 * netsim.MSS,
		Bursts:       2,
		Start:        5 * sim.Millisecond,
		Interval:     10 * sim.Millisecond,
		Seed:         1,
	})
	eng3.RunUntil(sim.Second)
	if !g.Done() {
		t.Fatal("offset group did not complete")
	}
	b := g.Bursts()
	if b[0].Start != 5*sim.Millisecond || b[1].Start != 15*sim.Millisecond {
		t.Fatalf("burst starts = %v, %v", b[0].Start, b[1].Start)
	}
	if b[0].End <= b[0].Start {
		t.Fatalf("burst 0 record inconsistent: %+v", b[0])
	}
}

// TestGroupBurstsCompleteInOrder: with non-overlapping bursts, completion
// times are strictly increasing.
func TestGroupBurstsCompleteInOrder(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	cfg.Bursts = 4
	in := NewIncast(eng, netsim.DefaultDumbbellConfig(cfg.Flows), cfg, dctcpFactory)
	eng.Run()
	prev := sim.Time(-1)
	for _, b := range in.Bursts() {
		if b.End <= prev {
			t.Fatalf("burst completions out of order: %+v", in.Bursts())
		}
		prev = b.End
	}
}
