package workload

import (
	"math/rand/v2"

	"incastlab/internal/sim"
	"incastlab/internal/tcp"
)

// GroupConfig drives repeated equal-demand bursts over an existing set of
// senders — the topology-independent core of an incast workload. Incast
// wraps it over a dumbbell; rack experiments run several Groups toward
// different receivers of one shared-buffer ToR.
type GroupConfig struct {
	// BytesPerFlow is each sender's demand per burst.
	BytesPerFlow int64
	// Bursts is the number of bursts.
	Bursts int
	// Start is the nominal start of burst 0.
	Start sim.Time
	// Interval is the burst start-to-start spacing.
	Interval sim.Time
	// JitterMax jitters each flow's start within a burst.
	JitterMax sim.Time
	// Seed drives the jitter RNG.
	Seed uint64
	// Admitter optionally schedules flow release within bursts.
	Admitter Admitter
}

// Group is the burst scheduler and completion tracker for one set of
// senders. Each sender must carry only this group's demand (completion is
// inferred from acknowledged bytes).
type Group struct {
	cfg     GroupConfig
	eng     *sim.Engine
	senders []*tcp.Sender
	rng     *rand.Rand

	completedBursts []int
	pending         []int
	bursts          []BurstRecord
}

// NewGroup schedules the bursts over senders. It installs each sender's
// OnDemandMet callback; senders must not be shared between groups.
func NewGroup(eng *sim.Engine, senders []*tcp.Sender, cfg GroupConfig) *Group {
	if len(senders) == 0 {
		panic("workload: group needs at least one sender")
	}
	if cfg.BytesPerFlow <= 0 {
		panic("workload: per-flow demand must be positive")
	}
	if cfg.Bursts <= 0 {
		panic("workload: need at least one burst")
	}
	if cfg.Interval <= 0 {
		panic("workload: burst interval must be positive")
	}
	if cfg.Start < 0 {
		panic("workload: start must be non-negative")
	}

	g := &Group{
		cfg:             cfg,
		eng:             eng,
		senders:         senders,
		rng:             sim.NewRand(cfg.Seed),
		completedBursts: make([]int, len(senders)),
		pending:         make([]int, cfg.Bursts),
		bursts:          make([]BurstRecord, cfg.Bursts),
	}
	for b := range g.pending {
		g.pending[b] = len(senders)
		g.bursts[b] = BurstRecord{Index: b, Start: cfg.Start + sim.Time(b)*cfg.Interval}
	}
	for i, s := range senders {
		i := i
		s.SetOnDemandMet(func(now sim.Time) { g.onFlowDone(i, now) })
	}
	g.schedule()
	return g
}

// schedule enqueues every burst start.
func (g *Group) schedule() {
	for b := 0; b < g.cfg.Bursts; b++ {
		b := b
		start := g.bursts[b].Start
		jitters := make([]sim.Time, len(g.senders))
		for i := range jitters {
			if g.cfg.JitterMax > 0 {
				jitters[i] = sim.Time(g.rng.Int64N(int64(g.cfg.JitterMax) + 1))
			}
		}
		admit := func(flow int) {
			at := start + jitters[flow]
			if now := g.eng.Now(); at < now {
				at = now
			}
			g.eng.Schedule(at, func() {
				g.senders[flow].AddDemand(g.cfg.BytesPerFlow)
			})
		}
		if g.cfg.Admitter != nil {
			g.eng.Schedule(start, func() {
				g.cfg.Admitter.BeginBurst(AdmitContext{
					Eng:   g.eng,
					Burst: b,
					Start: start,
					Flows: len(g.senders),
					Admit: admit,
				})
			})
			continue
		}
		for i := range g.senders {
			admit(i)
		}
	}
}

// onFlowDone accounts burst completions for flow i; one notification may
// clear several outstanding bursts for a slow flow.
func (g *Group) onFlowDone(i int, now sim.Time) {
	done := int(g.senders[i].Acked() / g.cfg.BytesPerFlow)
	for b := g.completedBursts[i]; b < done && b < g.cfg.Bursts; b++ {
		g.pending[b]--
		if g.cfg.Admitter != nil {
			g.cfg.Admitter.FlowDone(b, i)
		}
		if g.pending[b] == 0 {
			g.bursts[b].End = now
			g.bursts[b].BCT = now - g.bursts[b].Start
		}
	}
	g.completedBursts[i] = done
}

// Bursts returns per-burst records; valid after the run completes.
func (g *Group) Bursts() []BurstRecord { return g.bursts }

// Done reports whether every burst completed.
func (g *Group) Done() bool {
	for _, p := range g.pending {
		if p != 0 {
			return false
		}
	}
	return true
}

// Senders returns the group's senders.
func (g *Group) Senders() []*tcp.Sender { return g.senders }

// AggregateSenderStats sums transport counters across the group's flows.
func (g *Group) AggregateSenderStats() tcp.SenderStats {
	var agg tcp.SenderStats
	for _, s := range g.senders {
		st := s.Stats()
		agg.SentPackets += st.SentPackets
		agg.SentBytes += st.SentBytes
		agg.RetransmitPackets += st.RetransmitPackets
		agg.RetransmitBytes += st.RetransmitBytes
		agg.FastRetransmits += st.FastRetransmits
		agg.Timeouts += st.Timeouts
		agg.ECEAcks += st.ECEAcks
		agg.Acks += st.Acks
		agg.IncastNotifies += st.IncastNotifies
	}
	return agg
}
