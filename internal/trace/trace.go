// Package trace renders experiment results as CSV files, aligned text
// tables, and quick ASCII plots. Every figure and table the benchmark
// harness regenerates flows through this package.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Table is a rectangular result: a header plus string rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column names.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; it must match the header width.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("trace: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddFloats appends a row of formatted floats.
func (t *Table) AddFloats(vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = Float(v)
	}
	t.AddRow(cells...)
}

// WriteCSV emits the table as RFC 4180 CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to path, creating parent directories.
func (t *Table) SaveCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("trace: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// WriteText emits the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Text renders the aligned-text form as a string.
func (t *Table) Text() string {
	var b strings.Builder
	// strings.Builder writes never fail.
	_ = t.WriteText(&b)
	return b.String()
}

// Float formats a value compactly: integers without decimals, small values
// with enough precision to be meaningful.
func Float(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	case av >= 1:
		return strconv.FormatFloat(v, 'f', 3, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}
