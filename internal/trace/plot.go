package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve for an ASCII plot.
type Series struct {
	Name string
	X, Y []float64
}

// glyphs distinguish up to six overlaid series.
var glyphs = []rune{'*', '+', 'o', 'x', '#', '@'}

// Plot renders series as an ASCII scatter/line chart of the given
// character dimensions. It is intentionally simple: enough to eyeball the
// shape of a queue trace or CDF in a terminal, with the CSV files carrying
// the precise data.
func Plot(w io.Writer, title, xlabel, ylabel string, series []Series, width, height int) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("trace: plot area %dx%d too small", width, height)
	}
	if len(series) == 0 {
		return fmt.Errorf("trace: nothing to plot")
	}

	// Bounds are taken over finite points only: a NaN would poison the
	// min/max folds (and Inf would stretch the scale to nothing), and the
	// resulting NaN ranges turn into out-of-range grid indices below.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	empty := true
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("trace: series %q has %d xs but %d ys", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) > 0 {
			empty = false
		}
		for i := range s.X {
			if !finitePoint(s.X[i], s.Y[i]) {
				continue
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if empty {
		return fmt.Errorf("trace: all series empty")
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("trace: no finite points to plot")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if !finitePoint(s.X[i], s.Y[i]) {
				continue
			}
			c := int(float64(width-1) * (s.X[i] - xmin) / (xmax - xmin))
			r := height - 1 - int(float64(height-1)*(s.Y[i]-ymin)/(ymax-ymin))
			grid[r][c] = g
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", glyphs[i%len(glyphs)], s.Name)
	}
	if _, err := fmt.Fprintf(w, "[%s]  y: %s in [%s, %s]\n",
		strings.Join(legend, " "), ylabel, Float(ymin), Float(ymax)); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, " x: %s in [%s, %s]\n", xlabel, Float(xmin), Float(xmax))
	return err
}

// finitePoint reports whether both coordinates are plottable.
func finitePoint(x, y float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && !math.IsNaN(y) && !math.IsInf(y, 0)
}

// PlotString renders a plot into a string, swallowing size errors into the
// returned text (convenient for logs).
func PlotString(title, xlabel, ylabel string, series []Series, width, height int) string {
	var b strings.Builder
	if err := Plot(&b, title, xlabel, ylabel, series, width, height); err != nil {
		return fmt.Sprintf("(plot error: %v)", err)
	}
	return b.String()
}
