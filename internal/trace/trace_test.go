package trace

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableCSVAndText(t *testing.T) {
	tb := NewTable("service", "flows", "fraction")
	tb.AddRow("storage", "85", "0.45")
	tb.AddRow("video", "225", "0")

	var csvOut strings.Builder
	if err := tb.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	want := "service,flows,fraction\nstorage,85,0.45\nvideo,225,0\n"
	if csvOut.String() != want {
		t.Fatalf("csv = %q, want %q", csvOut.String(), want)
	}

	text := tb.Text()
	if !strings.Contains(text, "service  flows  fraction") {
		t.Fatalf("text header misaligned:\n%s", text)
	}
	if !strings.Contains(text, "-------") {
		t.Fatalf("text missing separator:\n%s", text)
	}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("text has %d lines, want 4:\n%s", len(lines), text)
	}
}

func TestTableAddFloats(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddFloats(1, 0.5)
	if tb.Rows[0][0] != "1" || tb.Rows[0][1] != "0.5" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestTableRowWidthPanics(t *testing.T) {
	tb := NewTable("a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestSaveCSVCreatesDirectories(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "out.csv")
	tb := NewTable("x")
	tb.AddRow("1")
	if err := tb.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "x\n1\n" {
		t.Fatalf("file = %q", data)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		1500:   "1500",
		123.45: "123.5",
		1.5:    "1.500",
		0.067:  "0.067",
	}
	for v, want := range cases {
		if got := Float(v); got != want {
			t.Errorf("Float(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPlotBasics(t *testing.T) {
	s := []Series{
		{Name: "queue", X: []float64{0, 1, 2, 3}, Y: []float64{0, 10, 5, 0}},
		{Name: "thresh", X: []float64{0, 3}, Y: []float64{6, 6}},
	}
	var b strings.Builder
	if err := Plot(&b, "Queue", "ms", "packets", s, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Queue") || !strings.Contains(out, "*=queue") || !strings.Contains(out, "+=thresh") {
		t.Fatalf("plot output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "x: ms in [0, 3]") {
		t.Fatalf("plot x range wrong:\n%s", out)
	}
	// 10 grid rows between header and footer.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "|") {
			rows++
		}
	}
	if rows != 10 {
		t.Fatalf("grid rows = %d, want 10", rows)
	}
}

func TestPlotErrors(t *testing.T) {
	var b strings.Builder
	if err := Plot(&b, "t", "x", "y", nil, 40, 10); err == nil {
		t.Fatal("empty series list should error")
	}
	if err := Plot(&b, "t", "x", "y", []Series{{Name: "a", X: []float64{1}, Y: nil}}, 40, 10); err == nil {
		t.Fatal("mismatched series should error")
	}
	if err := Plot(&b, "t", "x", "y", []Series{{Name: "a", X: []float64{1}, Y: []float64{1}}}, 5, 2); err == nil {
		t.Fatal("tiny plot area should error")
	}
}

func TestPlotEdgeCases(t *testing.T) {
	nan := math.NaN()
	var b strings.Builder

	// Series present but with zero points: a clean error, not a panic.
	empty := []Series{{Name: "a"}, {Name: "b"}}
	if err := Plot(&b, "t", "x", "y", empty, 40, 10); err == nil {
		t.Fatal("all-empty series should error")
	}

	// All-NaN y values would poison min/max bounds and turn the grid
	// indices into int(NaN); it must error cleanly instead.
	allNaN := []Series{{Name: "a", X: []float64{0, 1, 2}, Y: []float64{nan, nan, nan}}}
	if err := Plot(&b, "t", "x", "y", allNaN, 40, 10); err == nil {
		t.Fatal("all-NaN series should error")
	}
	if out := PlotString("t", "x", "y", allNaN, 40, 10); !strings.Contains(out, "plot error") {
		t.Fatalf("PlotString should surface the error, got:\n%s", out)
	}

	// Non-finite points mixed into a finite series are skipped: the plot
	// renders and its bounds come from the finite points only.
	mixed := []Series{{
		Name: "a",
		X:    []float64{0, 1, nan, 3, 4},
		Y:    []float64{0, 10, 5, math.Inf(1), 2},
	}}
	out := PlotString("t", "x", "y", mixed, 40, 10)
	if strings.Contains(out, "plot error") {
		t.Fatalf("mixed finite/NaN series failed: %s", out)
	}
	if !strings.Contains(out, "x: x in [0, 4]") {
		t.Fatalf("bounds should ignore non-finite points:\n%s", out)
	}
	if !strings.Contains(out, "y: y in [0, 10]") {
		t.Fatalf("y bounds should ignore non-finite points:\n%s", out)
	}

	// Zero (and negative) dimensions error rather than allocate or panic.
	one := []Series{{Name: "a", X: []float64{1}, Y: []float64{1}}}
	for _, dims := range [][2]int{{0, 0}, {0, 10}, {40, 0}, {-5, 10}} {
		if err := Plot(&b, "t", "x", "y", one, dims[0], dims[1]); err == nil {
			t.Fatalf("dimensions %v should error", dims)
		}
	}
}

func TestPlotConstantSeries(t *testing.T) {
	// Degenerate ranges (single point) must not divide by zero.
	s := []Series{{Name: "p", X: []float64{2}, Y: []float64{7}}}
	out := PlotString("t", "x", "y", s, 20, 5)
	if strings.Contains(out, "plot error") {
		t.Fatalf("constant series failed: %s", out)
	}
}
