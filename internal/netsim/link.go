package netsim

import (
	"incastlab/internal/sim"
)

// Link is a unidirectional point-to-point link: an egress queue, a
// transmitter that serializes at a fixed bandwidth, and a propagation delay
// to the destination device. Full-duplex links are modeled as two Links.
//
// The Link owns its egress queue: a device "sends on a port" by calling
// Send, which enqueues and, if the transmitter is idle, begins serialization.
// After serialization the packet propagates and is delivered to the
// destination device's Receive.
type Link struct {
	eng          *sim.Engine
	name         string
	bandwidthBps int64
	propDelay    sim.Time
	queue        *Queue
	dst          Device
	busy         bool

	// current is the packet being serialized; inflight[head:] are packets in
	// propagation, in delivery order. Because serialization is strictly
	// serial and propDelay is constant, delivery times are monotonic and the
	// engine's FIFO tie-break preserves push order — so one prebuilt closure
	// pair (txDoneFn, deliverFn) replaces the two per-packet closures.
	current   *Packet
	inflight  []*Packet
	head      int
	txDoneFn  func()
	deliverFn func()

	// pool, when set, recycles packets the egress queue tail-drops. Without
	// it a dropped pooled packet would be lost to the pool forever (it is
	// never delivered, so the terminal Host cannot recycle it).
	pool *PacketPool

	// txPackets and txBytes count packets that completed serialization.
	txPackets int64
	txBytes   int64
}

// LinkConfig configures a Link.
type LinkConfig struct {
	Name string
	// BandwidthBps is the line rate in bits per second.
	BandwidthBps int64
	// PropDelay is the one-way propagation delay.
	PropDelay sim.Time
	// Queue is the egress queue; required.
	Queue *Queue
	// Dst is the device at the far end; required.
	Dst Device
}

// NewLink builds a link from cfg.
func NewLink(eng *sim.Engine, cfg LinkConfig) *Link {
	if cfg.Queue == nil {
		panic("netsim: link requires an egress queue")
	}
	if cfg.Dst == nil {
		panic("netsim: link requires a destination device")
	}
	if cfg.BandwidthBps <= 0 {
		panic("netsim: link bandwidth must be positive")
	}
	if cfg.PropDelay < 0 {
		panic("netsim: link propagation delay must be non-negative")
	}
	l := &Link{
		eng:          eng,
		name:         cfg.Name,
		bandwidthBps: cfg.BandwidthBps,
		propDelay:    cfg.PropDelay,
		queue:        cfg.Queue,
		dst:          cfg.Dst,
	}
	l.txDoneFn = l.txDone
	l.deliverFn = l.deliver
	return l
}

// Name returns the link's label.
func (l *Link) Name() string { return l.name }

// Queue returns the link's egress queue (for instrumentation).
func (l *Link) Queue() *Queue { return l.queue }

// BandwidthBps returns the link's line rate.
func (l *Link) BandwidthBps() int64 { return l.bandwidthBps }

// PropDelay returns the link's one-way propagation delay.
func (l *Link) PropDelay() sim.Time { return l.propDelay }

// TxPackets returns the number of packets fully serialized onto the link.
func (l *Link) TxPackets() int64 { return l.txPackets }

// TxBytes returns the wire bytes fully serialized onto the link.
func (l *Link) TxBytes() int64 { return l.txBytes }

// SetPool attaches the topology's packet pool so that tail-dropped packets
// are recycled instead of leaking out of circulation.
func (l *Link) SetPool(pp *PacketPool) { l.pool = pp }

// InFlightPackets returns the number of packets currently on the link: the
// one being serialized (if any) plus those in propagation.
func (l *Link) InFlightPackets() int {
	n := len(l.inflight) - l.head
	if l.current != nil {
		n++
	}
	return n
}

// ForEachInFlight calls fn for every packet on the link, serializing packet
// first, then propagating packets in delivery order. Packets must not be
// mutated or retained.
func (l *Link) ForEachInFlight(fn func(p *Packet)) {
	if l.current != nil {
		fn(l.current)
	}
	for _, p := range l.inflight[l.head:] {
		fn(p)
	}
}

// Send enqueues p for transmission. If the queue rejects the packet it is
// dropped (the queue records the drop). If the transmitter is idle,
// serialization starts immediately.
func (l *Link) Send(p *Packet) {
	if !l.queue.Enqueue(l.eng.Now(), p) {
		// The drop ends this packet's life; it will never reach a Host, so
		// recycle it here. Safe with a nil pool or a foreign packet.
		l.pool.Put(p)
		return
	}
	if !l.busy {
		l.startTransmit()
	}
}

// startTransmit pulls the head packet and schedules its completion.
func (l *Link) startTransmit() {
	p := l.queue.Dequeue(l.eng.Now())
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.current = p
	l.eng.ScheduleAfter(SerializationDelay(p.WireBytes(), l.bandwidthBps), l.txDoneFn)
}

// txDone completes serialization of the current packet, hands it to
// propagation, and moves the transmitter on to the next queued packet.
func (l *Link) txDone() {
	p := l.current
	l.current = nil
	l.txPackets++
	l.txBytes += int64(p.WireBytes())
	l.inflight = append(l.inflight, p)
	l.eng.ScheduleAfter(l.propDelay, l.deliverFn)
	l.startTransmit()
}

// deliver hands the oldest in-flight packet to the destination device.
// Deliveries fire in push order (see the inflight field comment), so a FIFO
// pop always matches the firing event.
func (l *Link) deliver() {
	p := l.inflight[l.head]
	l.inflight[l.head] = nil
	l.head++
	if l.head == len(l.inflight) {
		l.inflight = l.inflight[:0]
		l.head = 0
	}
	l.dst.Receive(p)
}
