package netsim

import (
	"fmt"

	"incastlab/internal/sim"
)

// QueueStats aggregates what happened to a queue over its lifetime.
type QueueStats struct {
	// EnqueuedPackets and EnqueuedBytes count packets accepted into the
	// queue (bytes are IP bytes).
	EnqueuedPackets int64
	EnqueuedBytes   int64
	// DroppedPackets and DroppedBytes count tail drops.
	DroppedPackets int64
	DroppedBytes   int64
	// MarkedPackets counts packets that received a CE mark here.
	MarkedPackets int64
	// PeakPackets and PeakBytes are all-time high watermarks.
	PeakPackets int
	PeakBytes   int
}

// Queue is a FIFO with tail-drop and ECN threshold marking, accounted in IP
// bytes and packets. A Queue may additionally be bound to a SharedBuffer, in
// which case admission is also subject to the buffer's dynamic threshold —
// this models the "shared memory between ports" effect the paper blames for
// production losses that the dedicated-queue simulations do not show.
type Queue struct {
	name string

	// CapacityBytes and CapacityPackets bound occupancy; zero means
	// unlimited in that dimension.
	capacityBytes   int
	capacityPackets int

	// ecnThresholdPackets is the marking threshold K: an arriving ECT
	// packet is CE-marked when, after enqueue, occupancy exceeds K
	// packets. Zero disables marking.
	ecnThresholdPackets int
	// ecnAvgWeight, when positive, marks against a RED-style exponentially
	// weighted moving average of the occupancy instead of the
	// instantaneous depth. DCTCP (and this paper) deliberately use
	// instantaneous marking; the averaged option exists for the marking
	// -discipline ablation.
	ecnAvgWeight float64
	ecnAvgDepth  float64

	packets []*Packet
	bytes   int

	shared *SharedBuffer

	stats QueueStats

	// onChange, if set, observes every occupancy change with the current
	// time; used by experiment instrumentation.
	onChange func(now sim.Time, packets, bytes int)
	// onDrop, if set, observes tail drops.
	onDrop func(now sim.Time, p *Packet)
	// onEnqueue, if set, observes every accepted packet (after marking).
	// Unlike onChange it carries the packet itself, so flow-aware observers
	// (the incast notifier's recent-flow table) can see who is arriving.
	onEnqueue func(now sim.Time, p *Packet)

	// minuteWatermark tracks the per-interval high watermark the way
	// production ToRs export it; see WatermarkSeries in instrument.go.
	watermarkPackets int
}

// QueueConfig configures a Queue.
type QueueConfig struct {
	Name string
	// CapacityBytes limits total IP bytes queued (0 = unlimited).
	CapacityBytes int
	// CapacityPackets limits total packets queued (0 = unlimited).
	CapacityPackets int
	// ECNThresholdPackets is the marking threshold K in packets
	// (0 = no marking).
	ECNThresholdPackets int
	// ECNAverageWeight, when positive (e.g. 0.002 like classic RED), marks
	// against an EWMA of occupancy rather than the instantaneous depth.
	ECNAverageWeight float64
	// Shared optionally subjects this queue to a shared memory pool.
	Shared *SharedBuffer
}

// NewQueue builds a queue from cfg.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.ECNAverageWeight < 0 || cfg.ECNAverageWeight > 1 {
		panic("netsim: ECN average weight must be in [0,1]")
	}
	q := &Queue{
		name:                cfg.Name,
		capacityBytes:       cfg.CapacityBytes,
		capacityPackets:     cfg.CapacityPackets,
		ecnThresholdPackets: cfg.ECNThresholdPackets,
		ecnAvgWeight:        cfg.ECNAverageWeight,
		shared:              cfg.Shared,
	}
	if q.shared != nil {
		q.shared.register(q)
	}
	return q
}

// Name returns the queue's label.
func (q *Queue) Name() string { return q.name }

// LenPackets returns the current occupancy in packets.
func (q *Queue) LenPackets() int { return len(q.packets) }

// LenBytes returns the current occupancy in IP bytes.
func (q *Queue) LenBytes() int { return q.bytes }

// Stats returns a copy of the queue's counters.
func (q *Queue) Stats() QueueStats { return q.stats }

// CapacityPackets returns the packet-count bound (0 = unlimited).
func (q *Queue) CapacityPackets() int { return q.capacityPackets }

// CapacityBytes returns the IP-byte bound (0 = unlimited).
func (q *Queue) CapacityBytes() int { return q.capacityBytes }

// SharedBuffer returns the switch memory pool this queue draws from, or
// nil for a dedicated-buffer port.
func (q *Queue) SharedBuffer() *SharedBuffer { return q.shared }

// SetOnChange installs an occupancy observer (nil to remove).
func (q *Queue) SetOnChange(fn func(now sim.Time, packets, bytes int)) { q.onChange = fn }

// OnChange returns the installed occupancy observer, so a new observer can
// chain to the previous one instead of displacing it.
func (q *Queue) OnChange() func(now sim.Time, packets, bytes int) { return q.onChange }

// SetOnDrop installs a drop observer (nil to remove).
func (q *Queue) SetOnDrop(fn func(now sim.Time, p *Packet)) { q.onDrop = fn }

// OnDrop returns the installed drop observer, for chaining.
func (q *Queue) OnDrop() func(now sim.Time, p *Packet) { return q.onDrop }

// SetOnEnqueue installs an accepted-packet observer (nil to remove). The
// packet must not be mutated or retained.
func (q *Queue) SetOnEnqueue(fn func(now sim.Time, p *Packet)) { q.onEnqueue = fn }

// OnEnqueue returns the installed accepted-packet observer, for chaining.
func (q *Queue) OnEnqueue() func(now sim.Time, p *Packet) { return q.onEnqueue }

// ForEachPacket calls fn for every queued packet in FIFO order. The packets
// must not be mutated or retained; the auditor uses this to cross-check
// occupancy accounting and packet liveness.
func (q *Queue) ForEachPacket(fn func(p *Packet)) {
	for _, p := range q.packets {
		fn(p)
	}
}

// admissible reports whether p fits under the queue's own limits and, if
// bound, the shared buffer's dynamic threshold.
func (q *Queue) admissible(p *Packet) bool {
	if q.capacityPackets > 0 && len(q.packets)+1 > q.capacityPackets {
		return false
	}
	if q.capacityBytes > 0 && q.bytes+p.IPBytes() > q.capacityBytes {
		return false
	}
	if q.shared != nil && !q.shared.admissible(q, p.IPBytes()) {
		return false
	}
	return true
}

// Enqueue attempts to append p. It returns false (a tail drop) when the
// packet does not fit. On success it applies ECN marking.
func (q *Queue) Enqueue(now sim.Time, p *Packet) bool {
	if !q.admissible(p) {
		q.stats.DroppedPackets++
		q.stats.DroppedBytes += int64(p.IPBytes())
		if q.onDrop != nil {
			q.onDrop(now, p)
		}
		return false
	}
	q.packets = append(q.packets, p)
	q.bytes += p.IPBytes()
	if q.shared != nil {
		q.shared.grow(p.IPBytes())
	}
	q.stats.EnqueuedPackets++
	q.stats.EnqueuedBytes += int64(p.IPBytes())
	if len(q.packets) > q.stats.PeakPackets {
		q.stats.PeakPackets = len(q.packets)
	}
	if q.bytes > q.stats.PeakBytes {
		q.stats.PeakBytes = q.bytes
	}
	if len(q.packets) > q.watermarkPackets {
		q.watermarkPackets = len(q.packets)
	}
	q.updateAvgDepth()
	if q.ecnThresholdPackets > 0 && p.ECT && q.markingDepth() > float64(q.ecnThresholdPackets) {
		p.CE = true
		q.stats.MarkedPackets++
	}
	if q.onEnqueue != nil {
		q.onEnqueue(now, p)
	}
	if q.onChange != nil {
		q.onChange(now, len(q.packets), q.bytes)
	}
	return true
}

// updateAvgDepth folds the current occupancy into the RED-style EWMA. It
// runs on every enqueue and dequeue — not just ECT arrivals past the
// marking gate — so the average tracks the true occupancy and decays as
// the queue drains, the way RED's estimator does. (Sampling only inside
// the marking decision biased the average toward the high depths that
// reach it and froze it across drains.)
func (q *Queue) updateAvgDepth() {
	if q.ecnAvgWeight <= 0 {
		return
	}
	q.ecnAvgDepth = (1-q.ecnAvgWeight)*q.ecnAvgDepth + q.ecnAvgWeight*float64(len(q.packets))
}

// markingDepth returns the occupancy the ECN comparison uses: the
// instantaneous depth (DCTCP's choice), or the RED-style EWMA when
// configured. Read-only; the EWMA itself advances in updateAvgDepth.
func (q *Queue) markingDepth() float64 {
	if q.ecnAvgWeight <= 0 {
		return float64(len(q.packets))
	}
	return q.ecnAvgDepth
}

// Dequeue removes and returns the head packet, or nil if the queue is empty.
func (q *Queue) Dequeue(now sim.Time) *Packet {
	if len(q.packets) == 0 {
		return nil
	}
	p := q.packets[0]
	q.packets[0] = nil
	q.packets = q.packets[1:]
	// Reset the backing array occasionally so the slice does not leak.
	if len(q.packets) == 0 {
		q.packets = nil
	}
	q.bytes -= p.IPBytes()
	if q.shared != nil {
		q.shared.shrink(p.IPBytes())
	}
	q.updateAvgDepth()
	if q.onChange != nil {
		q.onChange(now, len(q.packets), q.bytes)
	}
	return p
}

// TakeWatermark returns the high watermark (in packets) since the last call
// and resets it to the current occupancy — the same "high watermark over the
// last interval" semantics production ToRs export.
func (q *Queue) TakeWatermark() int {
	w := q.watermarkPackets
	q.watermarkPackets = len(q.packets)
	return w
}

// SharedBuffer models switch packet memory shared among the queues of many
// ports, with a Dynamic Threshold (DT) admission policy: a queue may grow
// only while its occupancy is below alpha * (free shared memory). When other
// ports are busy, free memory shrinks and every queue's effective capacity
// drops — long before any queue reaches its dedicated limit.
type SharedBuffer struct {
	totalBytes int
	usedBytes  int
	// alpha is the DT factor; typical switch defaults are 0.5–8.
	alpha  float64
	queues []*Queue
	// externalBytes models occupancy from ports outside the simulated
	// topology (rack-level contention); see SetExternalBytes.
	externalBytes int
}

// NewSharedBuffer creates a pool of totalBytes with DT factor alpha.
func NewSharedBuffer(totalBytes int, alpha float64) *SharedBuffer {
	if totalBytes <= 0 {
		panic("netsim: shared buffer size must be positive")
	}
	if alpha <= 0 {
		panic("netsim: shared buffer alpha must be positive")
	}
	return &SharedBuffer{totalBytes: totalBytes, alpha: alpha}
}

func (b *SharedBuffer) register(q *Queue) { b.queues = append(b.queues, q) }

// SetExternalBytes declares bytes consumed by traffic to other ports that
// share this memory (e.g. simultaneous bursts to other hosts in the rack).
func (b *SharedBuffer) SetExternalBytes(n int) {
	if n < 0 {
		panic("netsim: external bytes must be non-negative")
	}
	b.externalBytes = n
}

// UsedBytes returns current pool usage including external contention.
func (b *SharedBuffer) UsedBytes() int { return b.usedBytes + b.externalBytes }

// FreeBytes returns remaining pool capacity, clamped at zero. The clamp
// matters: SetExternalBytes can push used+external past totalBytes
// (rack-contention scenarios oversubscribe the pool on purpose), and a
// negative free count would otherwise flow into the DT limit as a negative
// effective capacity. At or beyond saturation every queue's effective
// capacity is simply zero and nothing is admitted until the pool drains.
func (b *SharedBuffer) FreeBytes() int {
	f := b.totalBytes - b.UsedBytes()
	if f < 0 {
		return 0
	}
	return f
}

// admissible applies the DT test for adding n bytes to q.
func (b *SharedBuffer) admissible(q *Queue, n int) bool {
	free := b.FreeBytes()
	if n > free {
		return false
	}
	limit := b.alpha * float64(free)
	return float64(q.bytes+n) <= limit
}

func (b *SharedBuffer) grow(n int)   { b.usedBytes += n }
func (b *SharedBuffer) shrink(n int) { b.usedBytes -= n }

// String describes the pool state.
func (b *SharedBuffer) String() string {
	return fmt.Sprintf("shared buffer %d/%d bytes used (alpha=%.2g, %d queues)",
		b.UsedBytes(), b.totalBytes, b.alpha, len(b.queues))
}
