package netsim

import (
	"strings"
	"testing"

	"incastlab/internal/sim"
)

func TestTracerTapHost(t *testing.T) {
	eng := sim.NewEngine()
	var buf strings.Builder
	tr := NewTracer(eng, &buf)

	h := NewHost(eng, 0, "rx")
	h.Attach(PacketHandlerFunc(func(p *Packet) {}))
	observed := 0
	h.SetOnReceive(func(now sim.Time, p *Packet) { observed++ })
	tr.TapHost(h)

	eng.At(1500, func() { h.Receive(&Packet{Flow: 3, Src: 1, Dst: 0, Seq: 1460, Len: 1460}) })
	eng.Run()

	out := buf.String()
	if !strings.Contains(out, "recv  rx") || !strings.Contains(out, "flow=3") {
		t.Fatalf("trace missing pieces:\n%s", out)
	}
	if !strings.HasPrefix(out, "0.000001500") {
		t.Fatalf("timestamp wrong:\n%s", out)
	}
	if observed != 1 {
		t.Fatal("tracer must chain the previous OnReceive observer")
	}
	if tr.Lines() != 1 {
		t.Fatalf("lines = %d", tr.Lines())
	}
}

func TestTracerTapQueue(t *testing.T) {
	eng := sim.NewEngine()
	var buf strings.Builder
	tr := NewTracer(eng, &buf)
	tr.DepthQuantum = 2

	q := NewQueue(QueueConfig{CapacityPackets: 3})
	tr.TapQueue(q, "bneck")
	for i := 0; i < 5; i++ {
		q.Enqueue(0, dataPacket(1, 100))
	}
	out := buf.String()
	if strings.Count(out, "drop  bneck") != 2 {
		t.Fatalf("want 2 drop lines:\n%s", out)
	}
	// Depth lines at bucket changes: 1 pkt (bucket 0), 2 (bucket 1).
	if !strings.Contains(out, "depth=1pkts") || !strings.Contains(out, "depth=2pkts") {
		t.Fatalf("quantized depth lines missing:\n%s", out)
	}
	// Within-bucket change (2 -> 3) emits nothing extra.
	if strings.Contains(out, "depth=3pkts") {
		t.Fatalf("unquantized depth line leaked:\n%s", out)
	}
}

func TestTracerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil writer did not panic")
		}
	}()
	NewTracer(sim.NewEngine(), nil)
}
