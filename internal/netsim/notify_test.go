package netsim

import (
	"testing"

	"incastlab/internal/sim"
)

// TestIncastDetectorSlopeTripsWithinRTT drives the bottleneck queue with
// the canonical Fig-5 onset: a 10:1 fan-in over a 10 Gbps port, arrivals at
// the senders' aggregate line rate against the port's drain rate. The
// detector must fire within one base RTT of the first arrival — the whole
// point of switch-side detection is beating the mark-echo round trip.
func TestIncastDetectorSlopeTripsWithinRTT(t *testing.T) {
	eng := sim.NewEngine()
	q := NewQueue(QueueConfig{Name: "bottleneck"})
	d := NewIncastDetector(q, IncastDetectorConfig{}, nil)

	rtt := DefaultDumbbellConfig(100).BaseRTT()
	const (
		arrivalGap = 121 * sim.Nanosecond  // 10 hosts x 10G: one MTU every ~121ns
		drainGap   = 1211 * sim.Nanosecond // one 10G port: one MTU every ~1.2us
	)
	for i := 0; i < 400; i++ {
		at := sim.Time(i) * arrivalGap
		eng.Schedule(at, func() { q.Enqueue(eng.Now(), dataPacket(1, MTU-HeaderBytes)) })
	}
	for i := 1; i < 400; i++ {
		at := sim.Time(i) * drainGap
		eng.Schedule(at, func() { q.Dequeue(eng.Now()) })
	}
	eng.RunUntil(sim.Second)

	st := d.Stats()
	if st.Fired == 0 {
		t.Fatal("detector never fired on a 10:1 incast onset")
	}
	if st.FirstFired > rtt {
		t.Fatalf("first firing at %v, want within one base RTT (%v) of onset", st.FirstFired, rtt)
	}
	if st.SlopeTrips == 0 {
		t.Fatalf("expected a slope trip; stats = %+v", st)
	}
}

// TestIncastDetectorArrivalBurstTrip covers the fast-port signature: a
// queue that drains as fast as it fills never grows, but the arrival count
// in one window still reveals the synchronized onset.
func TestIncastDetectorArrivalBurstTrip(t *testing.T) {
	q := NewQueue(QueueConfig{})
	d := NewIncastDetector(q, IncastDetectorConfig{BurstArrivals: 8}, nil)
	for i := 0; i < 8; i++ {
		now := sim.Time(i) * 100 * sim.Nanosecond
		q.Enqueue(now, dataPacket(FlowID(i), 100))
		q.Dequeue(now) // depth returns to zero; no slope signal exists
	}
	st := d.Stats()
	if st.Fired != 1 || st.BurstTrips != 1 {
		t.Fatalf("stats = %+v, want exactly one arrival-burst firing", st)
	}
}

func TestIncastDetectorCooldown(t *testing.T) {
	q := NewQueue(QueueConfig{})
	fired := 0
	d := NewIncastDetector(q, IncastDetectorConfig{
		BurstArrivals: 2,
		Window:        sim.Microsecond,
		Cooldown:      50 * sim.Microsecond,
	}, func(now sim.Time) { fired++ })

	burst := func(start sim.Time) {
		for i := 0; i < 4; i++ {
			q.Enqueue(start+sim.Time(i)*10*sim.Nanosecond, dataPacket(FlowID(i), 100))
			q.Dequeue(start + sim.Time(i)*10*sim.Nanosecond)
		}
	}
	burst(0)                    // fires
	burst(10 * sim.Microsecond) // inside cooldown: suppressed
	burst(80 * sim.Microsecond) // past cooldown: fires again
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (cooldown gates the middle burst)", fired)
	}
	if d.Stats().Fired != 2 {
		t.Fatalf("stats.Fired = %d", d.Stats().Fired)
	}
}

// TestIncastDetectorDropTrips: a tail drop is a definitive overload signal
// and must fire regardless of slope or arrival counts.
func TestIncastDetectorDropTrips(t *testing.T) {
	q := NewQueue(QueueConfig{CapacityPackets: 1})
	var prevDropSeen bool
	q.SetOnDrop(func(now sim.Time, p *Packet) { prevDropSeen = true })
	d := NewIncastDetector(q, IncastDetectorConfig{}, nil)
	q.Enqueue(0, dataPacket(1, 100))
	q.Enqueue(0, dataPacket(2, 100)) // dropped
	if d.Stats().Fired != 1 {
		t.Fatalf("fired = %d, want 1 (drop trip)", d.Stats().Fired)
	}
	if !prevDropSeen {
		t.Fatal("detector must chain to the previously installed drop observer")
	}
}

// TestIncastNotifierQueuedFlows: with a zero horizon the notifier signals
// the distinct data flows currently queued, skipping ACKs and in-flight
// notifications.
func TestIncastNotifierQueuedFlows(t *testing.T) {
	eng := sim.NewEngine()
	net := NewDumbbell(eng, DefaultDumbbellConfig(4))
	q := net.BottleneckQueue()

	q.Enqueue(0, &Packet{Flow: 1, Src: 1, Dst: 0, Len: 100, ECT: true})
	q.Enqueue(0, &Packet{Flow: 1, Src: 1, Dst: 0, Len: 100, ECT: true}) // dup flow
	q.Enqueue(0, &Packet{Flow: 2, Src: 2, Dst: 0, Len: 100, ECT: true})
	q.Enqueue(0, &Packet{Flow: 3, Src: 3, Len: 0, IsAck: true})        // ACK: skipped
	q.Enqueue(0, &Packet{Flow: 4, Src: 4, Len: 0, IncastNotify: true}) // notify: skipped

	n := NewIncastNotifier(net.ReceiverToR, net.Pool, 0, q)
	n.Notify(0)
	if n.Sent() != 2 {
		t.Fatalf("sent = %d, want 2 (flows 1 and 2, deduped, control skipped)", n.Sent())
	}
}

// TestIncastNotifierFlowHorizon: with a horizon the notifier signals every
// flow seen recently even after the queue drained, and prunes entries older
// than the horizon.
func TestIncastNotifierFlowHorizon(t *testing.T) {
	eng := sim.NewEngine()
	net := NewDumbbell(eng, DefaultDumbbellConfig(4))
	q := net.BottleneckQueue()
	n := NewIncastNotifier(net.ReceiverToR, net.Pool, 100*sim.Microsecond, q)

	// Flow 1 passes through early, flow 2 recently; both drain fully.
	q.Enqueue(0, &Packet{Flow: 1, Src: 1, Dst: 0, Len: 100, ECT: true})
	q.Dequeue(0)
	q.Enqueue(150*sim.Microsecond, &Packet{Flow: 2, Src: 2, Dst: 0, Len: 100, ECT: true})
	q.Dequeue(150 * sim.Microsecond)

	// At t=200us flow 1 (seen at t=0) is beyond the 100us horizon.
	n.Notify(200 * sim.Microsecond)
	if n.Sent() != 1 {
		t.Fatalf("sent = %d, want 1 (only flow 2 within the horizon)", n.Sent())
	}
	// The stale entry was pruned; a fresh pass re-registers it.
	q.Enqueue(210*sim.Microsecond, &Packet{Flow: 1, Src: 1, Dst: 0, Len: 100, ECT: true})
	q.Dequeue(210 * sim.Microsecond)
	n.Notify(220 * sim.Microsecond)
	if n.Sent() != 3 {
		t.Fatalf("sent = %d, want 3 (both flows on the second firing)", n.Sent())
	}
}

// TestClosLeafCoordination: a leaf declares incast only when enough of its
// uplink ports trip within the coordination window, and then notifies the
// flows its recent-flow table holds.
func TestClosLeafCoordination(t *testing.T) {
	eng := sim.NewEngine()
	net := NewClos(eng, DefaultClosConfig(2, 4))
	coords := AttachClosIncastDetection(net, ClosDetectorConfig{MinPorts: 2})
	if len(coords) != 2 {
		t.Fatalf("got %d coordinators, want one per rack", len(coords))
	}
	c := coords[1]
	uplinks := net.Uplinks(1)
	if len(uplinks) != 2 {
		t.Fatalf("rack 1 has %d uplinks", len(uplinks))
	}

	// Overfill port 0 only: one hot port must not fire the leaf.
	for i := 0; i < 20; i++ {
		uplinks[0].Queue().Enqueue(sim.Time(i)*10*sim.Nanosecond,
			&Packet{Flow: FlowID(i), Src: net.Config.HostID(1, i%4), Dst: 0, Len: 100, ECT: true})
	}
	if st := c.Stats(); st.PortFirings != 1 || st.LeafFirings != 0 {
		t.Fatalf("after one hot port: %+v, want 1 port firing and no leaf firing", st)
	}

	// The second port trips within the coordination window: the leaf fires
	// and notifies every flow in its recent-flow table (both ports' flows).
	for i := 0; i < 20; i++ {
		uplinks[1].Queue().Enqueue(100*sim.Nanosecond+sim.Time(i)*10*sim.Nanosecond,
			&Packet{Flow: FlowID(100 + i), Src: net.Config.HostID(1, i%4), Dst: 0, Len: 100, ECT: true})
	}
	st := c.Stats()
	if st.LeafFirings != 1 {
		t.Fatalf("after two hot ports: %+v, want a coordinated leaf firing", st)
	}
	// The leaf fires mid-burst, at port 1's 17th arrival (slope trip): the
	// recent-flow table holds all 20 port-0 flows plus the 17 port-1 flows
	// seen so far.
	if st.NotificationsSent != 37 {
		t.Fatalf("notified %d flows, want 37 (everyone seen by firing time)", st.NotificationsSent)
	}
	if st.FirstFired == 0 {
		t.Fatal("first-fired time not recorded")
	}
	if coords[0].Stats().LeafFirings != 0 {
		t.Fatal("rack 0 saw no traffic and must stay silent")
	}
}

// TestQueueOnEnqueueObserver: the observer sees accepted packets (not
// drops) and chains like the other observers.
func TestQueueOnEnqueueObserver(t *testing.T) {
	q := NewQueue(QueueConfig{CapacityPackets: 2})
	var seen []FlowID
	q.SetOnEnqueue(func(now sim.Time, p *Packet) { seen = append(seen, p.Flow) })
	prev := q.OnEnqueue()
	var chained int
	q.SetOnEnqueue(func(now sim.Time, p *Packet) {
		chained++
		prev(now, p)
	})
	q.Enqueue(0, dataPacket(1, 10))
	q.Enqueue(0, dataPacket(2, 10))
	q.Enqueue(0, dataPacket(3, 10)) // dropped: not observed
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 || chained != 2 {
		t.Fatalf("seen = %v, chained = %d", seen, chained)
	}
}
