// Package netsim is a packet-level network simulation substrate: links with
// serialization and propagation delay, FIFO queues with tail drop and ECN
// threshold marking, switches with optional shared-buffer memory, and hosts
// that hand received packets to a transport layer.
//
// It plays the role NS3 plays in the paper's Section 4: a dumbbell topology
// of N senders feeding one receiver through two ToR switches, where the
// congested resource is the queue on the receiver ToR's downlink port.
//
// Conventions:
//   - Time is sim.Time (nanoseconds).
//   - Bandwidth is bits per second.
//   - Queue occupancy is accounted in IP bytes (header + payload), matching
//     how the paper counts "packets" of 1500 B against a 2 MB queue.
//   - Serialization uses on-the-wire bytes (IP bytes + Ethernet framing).
package netsim

// Bandwidth helpers, in bits per second.
const (
	Kbps int64 = 1_000
	Mbps int64 = 1_000_000
	Gbps int64 = 1_000_000_000
)

// Frame size constants. Payload is the TCP payload; the IP packet adds
// IP+TCP headers; the wire adds Ethernet header, FCS, preamble, and the
// inter-frame gap.
const (
	// MTU is the maximum IP packet size.
	MTU = 1500
	// HeaderBytes is the IPv4 + TCP header size without options.
	HeaderBytes = 40
	// MSS is the maximum TCP payload per packet.
	MSS = MTU - HeaderBytes
	// EthernetOverhead covers Ethernet header (14), FCS (4), preamble (8),
	// and inter-frame gap (12).
	EthernetOverhead = 38
)

// NodeID identifies a device in a topology. IDs are assigned by the
// topology builder and are unique within one simulation.
type NodeID int

// Device is anything that can terminate or forward packets.
type Device interface {
	// ID returns the device's node identifier.
	ID() NodeID
	// Name returns a human-readable label for traces and errors.
	Name() string
	// Receive is called when a packet arrives at the device, after the
	// link's serialization and propagation delays.
	Receive(p *Packet)
}
