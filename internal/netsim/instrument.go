package netsim

import (
	"incastlab/internal/sim"
	"incastlab/internal/stats"
)

// SamplePeriodically schedules n callbacks at fixed intervals starting at
// start. The callback receives the sample index; it runs inside the event
// loop so it can read any simulation state consistently.
func SamplePeriodically(eng *sim.Engine, start, interval sim.Time, n int, fn func(i int)) {
	if interval <= 0 {
		panic("netsim: sampling interval must be positive")
	}
	// One closure serves every sample: the events fire in scheduling order
	// (strictly increasing timestamps), so a running counter recovers the
	// sample index without capturing it n times.
	next := 0
	body := func() {
		fn(next)
		next++
	}
	for i := 0; i < n; i++ {
		eng.Schedule(start+sim.Time(i)*interval, body)
	}
}

// QueueDepthSeries samples a queue's occupancy in packets every interval,
// n times, starting at start. The returned series is filled in as the
// simulation runs; read it only after the engine has passed the last sample
// time.
func QueueDepthSeries(eng *sim.Engine, q *Queue, start, interval sim.Time, n int) *stats.Series {
	s := stats.NewSeries(int64(start), int64(interval), n)
	SamplePeriodically(eng, start, interval, n, func(i int) {
		s.Values[i] = float64(q.LenPackets())
	})
	return s
}

// QueueWatermarkSeries records the queue's high watermark (in packets) over
// each interval, mimicking the per-minute watermark counters production ToRs
// export. Each sample i covers (start+i*interval, start+(i+1)*interval].
func QueueWatermarkSeries(eng *sim.Engine, q *Queue, start, interval sim.Time, n int) *stats.Series {
	s := stats.NewSeries(int64(start), int64(interval), n)
	// Reset the watermark at the window start, then harvest at each
	// interval end. As in SamplePeriodically, one closure plus a counter
	// replaces a capture per sample.
	eng.Schedule(start, func() { q.TakeWatermark() })
	next := 0
	harvest := func() {
		s.Values[next] = float64(q.TakeWatermark())
		next++
	}
	for i := 0; i < n; i++ {
		eng.Schedule(start+sim.Time(i+1)*interval, harvest)
	}
	return s
}

// HostIngressRecorder taps a host's delivered packets into per-interval
// totals: bytes, ECN-marked (CE) bytes, retransmitted bytes, and the set of
// distinct flows seen per interval. This is the NIC-side view Millisampler
// samples in production.
type HostIngressRecorder struct {
	// Bytes, CEBytes, RetxBytes are per-interval IP byte totals.
	Bytes, CEBytes, RetxBytes *stats.Series
	// Flows is the count of distinct flows observed in each interval.
	Flows *stats.Series

	perInterval []map[FlowID]struct{}
}

// NewHostIngressRecorder attaches a recorder to h covering n intervals of
// the given width starting at start. It replaces any previous OnReceive tap.
func NewHostIngressRecorder(h *Host, start, interval sim.Time, n int) *HostIngressRecorder {
	r := &HostIngressRecorder{
		Bytes:       stats.NewSeries(int64(start), int64(interval), n),
		CEBytes:     stats.NewSeries(int64(start), int64(interval), n),
		RetxBytes:   stats.NewSeries(int64(start), int64(interval), n),
		Flows:       stats.NewSeries(int64(start), int64(interval), n),
		perInterval: make([]map[FlowID]struct{}, n),
	}
	h.SetOnReceive(func(now sim.Time, p *Packet) {
		if p.IsAck {
			return
		}
		i := r.Bytes.Index(int64(now))
		if i < 0 {
			return
		}
		b := float64(p.IPBytes())
		r.Bytes.Values[i] += b
		if p.CE {
			r.CEBytes.Values[i] += b
		}
		if p.Retransmit {
			r.RetxBytes.Values[i] += b
		}
		m := r.perInterval[i]
		if m == nil {
			m = make(map[FlowID]struct{})
			r.perInterval[i] = m
		}
		if _, ok := m[p.Flow]; !ok {
			m[p.Flow] = struct{}{}
			r.Flows.Values[i]++
		}
	})
	return r
}
