package netsim

import (
	"testing"
	"testing/quick"

	"incastlab/internal/sim"
)

// TestLinkFIFOProperty: packets sent on one link arrive in send order, for
// arbitrary sizes and send times.
func TestLinkFIFOProperty(t *testing.T) {
	f := func(sizes []uint16, gaps []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 200 {
			sizes = sizes[:200]
		}
		eng := sim.NewEngine()
		dst := &sink{id: 9, eng: eng}
		l := NewLink(eng, LinkConfig{
			BandwidthBps: 10 * Gbps,
			PropDelay:    1000,
			Queue:        NewQueue(QueueConfig{}),
			Dst:          dst,
		})
		at := sim.Time(0)
		for i, sz := range sizes {
			seq := int64(i)
			ln := int(sz)%MSS + 1
			if i < len(gaps) {
				at += sim.Time(gaps[i])
			}
			p := &Packet{Flow: 1, Seq: seq, Len: ln}
			eng.At(at, func() { l.Send(p) })
		}
		eng.Run()
		if len(dst.arrivals) != len(sizes) {
			return false
		}
		for i, a := range dst.arrivals {
			if a.p.Seq != int64(i) {
				return false
			}
			if i > 0 && a.at < dst.arrivals[i-1].at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSharedBufferAccountingProperty: pool usage equals the sum of member
// queue occupancies under arbitrary operations, and never goes negative.
func TestSharedBufferAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		pool := NewSharedBuffer(50*1500, 1)
		qs := []*Queue{
			NewQueue(QueueConfig{Shared: pool}),
			NewQueue(QueueConfig{Shared: pool}),
			NewQueue(QueueConfig{Shared: pool}),
		}
		for _, op := range ops {
			q := qs[int(op)%len(qs)]
			if op%2 == 0 {
				q.Enqueue(0, dataPacket(1, int(op)*7%MSS+1))
			} else {
				q.Dequeue(0)
			}
			sum := 0
			for _, qq := range qs {
				sum += qq.LenBytes()
			}
			if pool.UsedBytes() != sum || pool.FreeBytes() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestImpairmentConservationProperty: every packet is either dropped or
// delivered, exactly once.
func TestImpairmentConservationProperty(t *testing.T) {
	f := func(seed uint64, prob uint8, n uint8) bool {
		eng := sim.NewEngine()
		dst := &sink{id: 9, eng: eng}
		im := NewImpairment(eng, 8, dst, ImpairmentConfig{
			DropProbability: float64(prob) / 255,
			MaxExtraDelay:   500,
			Seed:            seed,
		})
		total := int(n) + 1
		for i := 0; i < total; i++ {
			im.Receive(dataPacket(FlowID(i), 100))
		}
		eng.Run()
		return im.Dropped()+im.Passed() == int64(total) &&
			len(dst.arrivals) == int(im.Passed())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
