package netsim

import (
	"testing"

	"incastlab/internal/sim"
)

// sink is a Device that records arrivals.
type sink struct {
	id       NodeID
	arrivals []arrival
	eng      *sim.Engine
}

type arrival struct {
	p  *Packet
	at sim.Time
}

func (s *sink) ID() NodeID   { return s.id }
func (s *sink) Name() string { return "sink" }
func (s *sink) Receive(p *Packet) {
	s.arrivals = append(s.arrivals, arrival{p, s.eng.Now()})
}

func TestSerializationDelay(t *testing.T) {
	// 1538 wire bytes at 10 Gbps = 1230.4 ns (integer-truncated).
	if d := SerializationDelay(1538, 10*Gbps); d != 1230 {
		t.Fatalf("delay = %v, want 1230ns", d)
	}
	if d := SerializationDelay(1538, 100*Gbps); d != 123 {
		t.Fatalf("delay = %v, want 123ns", d)
	}
}

func TestLinkDeliversWithSerializationAndPropagation(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 9, eng: eng}
	l := NewLink(eng, LinkConfig{
		Name:         "l",
		BandwidthBps: 10 * Gbps,
		PropDelay:    1000,
		Queue:        NewQueue(QueueConfig{}),
		Dst:          dst,
	})
	p := dataPacket(1, MSS) // 1500 IP bytes, 1538 wire bytes
	l.Send(p)
	eng.Run()
	if len(dst.arrivals) != 1 {
		t.Fatalf("arrivals = %d", len(dst.arrivals))
	}
	want := sim.Time(1230 + 1000)
	if dst.arrivals[0].at != want {
		t.Fatalf("arrival at %v, want %v", dst.arrivals[0].at, want)
	}
	if l.TxPackets() != 1 || l.TxBytes() != 1538 {
		t.Fatalf("tx stats = %d pkts %d bytes", l.TxPackets(), l.TxBytes())
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 9, eng: eng}
	l := NewLink(eng, LinkConfig{
		BandwidthBps: 10 * Gbps,
		PropDelay:    0,
		Queue:        NewQueue(QueueConfig{}),
		Dst:          dst,
	})
	for i := 0; i < 3; i++ {
		l.Send(dataPacket(FlowID(i), MSS))
	}
	eng.Run()
	if len(dst.arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(dst.arrivals))
	}
	// Back-to-back packets arrive one serialization apart.
	for i, a := range dst.arrivals {
		want := sim.Time(1230 * (i + 1))
		if a.at != want {
			t.Fatalf("packet %d arrived at %v, want %v", i, a.at, want)
		}
	}
}

func TestLinkThroughputMatchesBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 9, eng: eng}
	l := NewLink(eng, LinkConfig{
		BandwidthBps: 10 * Gbps,
		PropDelay:    0,
		Queue:        NewQueue(QueueConfig{}),
		Dst:          dst,
	})
	// Offer 1 ms of traffic at exactly line rate: 10 Gbps over 1538-byte
	// frames = ~812.7 frames/ms.
	n := 812
	for i := 0; i < n; i++ {
		l.Send(dataPacket(1, MSS))
	}
	end := eng.Run()
	wantEnd := sim.Time(n) * 1230
	if end != wantEnd {
		t.Fatalf("drained at %v, want %v", end, wantEnd)
	}
	if len(dst.arrivals) != n {
		t.Fatalf("delivered %d of %d", len(dst.arrivals), n)
	}
}

func TestLinkTransmitterRestartsAfterIdle(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 9, eng: eng}
	l := NewLink(eng, LinkConfig{
		BandwidthBps: 10 * Gbps,
		PropDelay:    0,
		Queue:        NewQueue(QueueConfig{}),
		Dst:          dst,
	})
	l.Send(dataPacket(1, 100))
	eng.Run()
	// Link idles; a later send must restart the transmitter.
	eng.After(5000, func() { l.Send(dataPacket(1, 100)) })
	eng.Run()
	if len(dst.arrivals) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(dst.arrivals))
	}
	if dst.arrivals[1].at <= dst.arrivals[0].at {
		t.Fatal("second arrival should be later")
	}
}

func TestLinkDropsWhenQueueFull(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 9, eng: eng}
	q := NewQueue(QueueConfig{CapacityPackets: 1})
	l := NewLink(eng, LinkConfig{
		BandwidthBps: 10 * Gbps,
		PropDelay:    0,
		Queue:        q,
		Dst:          dst,
	})
	// First send starts serializing immediately (leaves the queue); second
	// occupies the single slot; third drops.
	l.Send(dataPacket(1, MSS))
	l.Send(dataPacket(2, MSS))
	l.Send(dataPacket(3, MSS))
	eng.Run()
	if len(dst.arrivals) != 2 {
		t.Fatalf("delivered %d, want 2", len(dst.arrivals))
	}
	if q.Stats().DroppedPackets != 1 {
		t.Fatalf("drops = %d, want 1", q.Stats().DroppedPackets)
	}
}

func TestLinkConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 1, eng: eng}
	mustPanic := func(name string, cfg LinkConfig) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		NewLink(eng, cfg)
	}
	mustPanic("nil queue", LinkConfig{BandwidthBps: 1, Dst: dst})
	mustPanic("nil dst", LinkConfig{BandwidthBps: 1, Queue: NewQueue(QueueConfig{})})
	mustPanic("zero bw", LinkConfig{Queue: NewQueue(QueueConfig{}), Dst: dst})
	mustPanic("neg delay", LinkConfig{BandwidthBps: 1, PropDelay: -1, Queue: NewQueue(QueueConfig{}), Dst: dst})
}
