package netsim

import (
	"math/rand/v2"

	"incastlab/internal/sim"
)

// Impairment is a fault-injection device: it sits between a link and its
// true destination, dropping packets at random and optionally adding
// random extra latency. It is used by the test suite to validate transport
// robustness under arbitrary loss, and by experiments that need lossy
// paths the clean topology cannot produce.
type Impairment struct {
	id   NodeID
	eng  *sim.Engine
	dst  Device
	rng  *rand.Rand
	cfg  ImpairmentConfig
	drop int64
	pass int64

	// pool, when set, recycles the packets this device drops.
	pool *PacketPool
}

// ImpairmentConfig tunes an Impairment.
type ImpairmentConfig struct {
	// DropProbability drops each packet independently with this
	// probability (0..1).
	DropProbability float64
	// MaxExtraDelay adds a uniform random delay in [0, MaxExtraDelay] to
	// each surviving packet (0 disables). Note that reordering can result,
	// as on a real multi-path fabric.
	MaxExtraDelay sim.Time
	// DropAcks extends dropping to pure ACKs (default: data only, since
	// ACK loss is far rarer in practice and recovery paths differ).
	DropAcks bool
	// Seed drives the device's private RNG.
	Seed uint64
}

// NewImpairment creates the device. Wire it as the Dst of a link, and give
// it the true destination.
func NewImpairment(eng *sim.Engine, id NodeID, dst Device, cfg ImpairmentConfig) *Impairment {
	if dst == nil {
		panic("netsim: impairment needs a destination")
	}
	if cfg.DropProbability < 0 || cfg.DropProbability > 1 {
		panic("netsim: drop probability must be in [0,1]")
	}
	if cfg.MaxExtraDelay < 0 {
		panic("netsim: extra delay must be non-negative")
	}
	return &Impairment{id: id, eng: eng, dst: dst, rng: sim.NewRand(cfg.Seed), cfg: cfg}
}

// ID implements Device.
func (im *Impairment) ID() NodeID { return im.id }

// Name implements Device.
func (im *Impairment) Name() string { return "impairment" }

// SetPool attaches a packet pool so that injected drops are recycled
// instead of leaking out of circulation.
func (im *Impairment) SetPool(pp *PacketPool) { im.pool = pp }

// Dropped returns how many packets the device discarded.
func (im *Impairment) Dropped() int64 { return im.drop }

// Passed returns how many packets the device forwarded.
func (im *Impairment) Passed() int64 { return im.pass }

// Receive implements Device.
func (im *Impairment) Receive(p *Packet) {
	if (!p.IsAck || im.cfg.DropAcks) && im.cfg.DropProbability > 0 &&
		im.rng.Float64() < im.cfg.DropProbability {
		im.drop++
		im.pool.Put(p)
		return
	}
	im.pass++
	if im.cfg.MaxExtraDelay > 0 {
		delay := sim.Time(im.rng.Int64N(int64(im.cfg.MaxExtraDelay) + 1))
		im.eng.ScheduleAfter(delay, func() { im.dst.Receive(p) })
		return
	}
	im.dst.Receive(p)
}
