package netsim

import (
	"testing"

	"incastlab/internal/sim"
)

func TestRackDeliveryToBothReceivers(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRack(eng, DefaultRackConfig(4, 2))
	counts := make([]int, 2)
	for i, h := range r.Receivers {
		i := i
		h.Attach(PacketHandlerFunc(func(p *Packet) { counts[i]++ }))
	}
	for i, s := range r.Senders {
		dst := NodeID(i % 2)
		s.Send(&Packet{Flow: FlowID(i + 1), Src: s.ID(), Dst: dst, Len: MSS})
	}
	eng.Run()
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("deliveries = %v, want 2 each", counts)
	}
}

func TestRackReversePath(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRack(eng, DefaultRackConfig(3, 2))
	got := 0
	r.Senders[2].Attach(PacketHandlerFunc(func(p *Packet) { got++ }))
	r.Receivers[1].Send(&Packet{Flow: 9, Src: r.Receivers[1].ID(),
		Dst: r.Senders[2].ID(), IsAck: true})
	eng.Run()
	if got != 1 {
		t.Fatal("ACK did not reach the sender")
	}
}

func TestRackSharedBufferContention(t *testing.T) {
	// Two simultaneous bursts to the rack's two receivers compete for one
	// shared buffer; the same burst to one receiver alone fits.
	burstTo := func(twoGroups bool) (drops int64) {
		eng := sim.NewEngine()
		cfg := DefaultRackConfig(40, 2)
		cfg.SharedBufferBytes = 100 * 1500 // tight pool: 100 packets
		r := NewRack(eng, cfg)
		for i := range r.Receivers {
			r.Receivers[i].Attach(PacketHandlerFunc(func(p *Packet) {}))
		}
		for i, s := range r.Senders {
			dst := NodeID(0)
			if twoGroups {
				dst = NodeID(i % 2)
			}
			for j := 0; j < 10; j++ {
				s.Send(&Packet{Flow: FlowID(i + 1), Src: s.ID(), Dst: dst,
					Seq: int64(j * MSS), Len: MSS, ECT: true})
			}
		}
		eng.Run()
		for i := range r.Downlinks {
			drops += r.DownlinkQueue(i).Stats().DroppedPackets
		}
		return drops
	}
	// One group of 400 packets into a 100-packet pool overflows either
	// way; the point is that splitting across two ports does not double
	// the usable memory — DT keeps each port to a share of the one pool.
	solo, dual := burstTo(false), burstTo(true)
	if solo == 0 || dual == 0 {
		t.Fatalf("expected drops under the tight pool: solo=%d dual=%d", solo, dual)
	}
}

func TestRackValidation(t *testing.T) {
	eng := sim.NewEngine()
	mustPanic := func(name string, cfg RackConfig) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		NewRack(eng, cfg)
	}
	cfg := DefaultRackConfig(2, 2)
	cfg.Senders = 0
	mustPanic("no senders", cfg)
	cfg = DefaultRackConfig(2, 2)
	cfg.Receivers = 0
	mustPanic("no receivers", cfg)
	cfg = DefaultRackConfig(2, 2)
	cfg.SharedBufferBytes = 0
	mustPanic("no shared buffer", cfg)
}
