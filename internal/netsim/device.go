package netsim

import (
	"fmt"

	"incastlab/internal/sim"
)

// PacketHandler consumes packets delivered to a host, i.e. the host's
// transport layer.
type PacketHandler interface {
	HandlePacket(p *Packet)
}

// PacketHandlerFunc adapts a function to the PacketHandler interface.
type PacketHandlerFunc func(p *Packet)

// HandlePacket calls f(p).
func (f PacketHandlerFunc) HandlePacket(p *Packet) { f(p) }

// Host is an endpoint: it owns one uplink (its NIC) and hands packets
// addressed to it to an attached transport handler. Packets addressed
// elsewhere are forwarded out the uplink, so a Host can also source traffic.
type Host struct {
	id     NodeID
	name   string
	eng    *sim.Engine
	uplink *Link

	handler PacketHandler

	// pool, when set, supplies outbound packets (AllocPacket) and receives
	// delivered ones back after the transport handler returns.
	pool *PacketPool

	// rxPackets/rxBytes count packets delivered to this host (IP bytes).
	rxPackets int64
	rxBytes   int64

	// onReceive, if set, observes every delivered packet before the
	// transport handler; Millisampler instrumentation hooks in here.
	onReceive func(now sim.Time, p *Packet)
}

// NewHost creates a host. The uplink must be set with SetUplink before the
// host sends traffic.
func NewHost(eng *sim.Engine, id NodeID, name string) *Host {
	return &Host{id: id, name: name, eng: eng}
}

// ID implements Device.
func (h *Host) ID() NodeID { return h.id }

// Name implements Device.
func (h *Host) Name() string { return h.name }

// SetUplink attaches the host's NIC egress link.
func (h *Host) SetUplink(l *Link) { h.uplink = l }

// Uplink returns the host's NIC egress link.
func (h *Host) Uplink() *Link { return h.uplink }

// Attach installs the transport handler for packets addressed to this host.
// When the host has a packet pool, delivered packets are recycled as soon as
// HandlePacket returns, so handlers must not retain packet pointers.
func (h *Host) Attach(handler PacketHandler) { h.handler = handler }

// SetPool attaches a packet pool shared by the topology. Hosts without a
// pool allocate fresh packets and leave delivery to the garbage collector.
func (h *Host) SetPool(pp *PacketPool) { h.pool = pp }

// AllocPacket returns a zeroed packet for this host to send — from the pool
// when one is attached, freshly allocated otherwise.
func (h *Host) AllocPacket() *Packet {
	if h.pool == nil {
		return &Packet{}
	}
	return h.pool.Get()
}

// SetOnReceive installs a tap observing every delivered packet (nil to
// remove).
func (h *Host) SetOnReceive(fn func(now sim.Time, p *Packet)) { h.onReceive = fn }

// OnReceive returns the installed delivery tap, for chaining.
func (h *Host) OnReceive() func(now sim.Time, p *Packet) { return h.onReceive }

// RxPackets returns the count of packets delivered to this host.
func (h *Host) RxPackets() int64 { return h.rxPackets }

// RxBytes returns the IP bytes delivered to this host.
func (h *Host) RxBytes() int64 { return h.rxBytes }

// Send transmits p out the host's uplink.
func (h *Host) Send(p *Packet) {
	if h.uplink == nil {
		panic(fmt.Sprintf("netsim: host %q has no uplink", h.name))
	}
	h.uplink.Send(p)
}

// Receive implements Device. Packets for this host go to the transport
// handler; anything else is forwarded out the uplink.
func (h *Host) Receive(p *Packet) {
	if p.Dst != h.id {
		h.Send(p)
		return
	}
	h.rxPackets++
	h.rxBytes += int64(p.IPBytes())
	if h.onReceive != nil {
		h.onReceive(h.eng.Now(), p)
	}
	if h.handler != nil {
		h.handler.HandlePacket(p)
	}
	// Delivery is this packet's end of life; recycle pool-owned packets.
	h.pool.Put(p)
}

// Switch forwards packets to the output port (Link) chosen by a static
// destination-based routing table, with an optional ECMP fallback group
// for destinations without a static route (leaf uplinks toward the spines
// in a Clos fabric).
type Switch struct {
	id     NodeID
	name   string
	routes map[NodeID]*Link

	// ecmp is the equal-cost fallback group: destinations without a static
	// route hash over these links. Empty means no fallback.
	ecmp     []*Link
	ecmpSeed uint64

	// pool, when set, recycles packets dropped for lack of a route.
	pool *PacketPool

	// noRouteDrops counts packets for which no route existed.
	noRouteDrops int64
}

// NewSwitch creates an empty switch.
func NewSwitch(id NodeID, name string) *Switch {
	return &Switch{id: id, name: name, routes: make(map[NodeID]*Link)}
}

// ID implements Device.
func (s *Switch) ID() NodeID { return s.id }

// Name implements Device.
func (s *Switch) Name() string { return s.name }

// AddRoute directs packets destined to dst out the given link.
func (s *Switch) AddRoute(dst NodeID, l *Link) { s.routes[dst] = l }

// Route returns the link used for dst, or nil.
func (s *Switch) Route(dst NodeID) *Link { return s.routes[dst] }

// SetECMPGroup installs the equal-cost fallback: any packet whose
// destination has no static route is forwarded on links[ECMPIndex(seed,
// flow, src, dst, len(links))]. The hash is a pure function of the seed and
// the packet's flow key, so all packets of one flow (in one direction) take
// the same path and a rerun with the same seed reproduces every path choice
// exactly; changing the seed reshuffles flow placement like a rehashed
// production fabric.
func (s *Switch) SetECMPGroup(seed uint64, links []*Link) {
	s.ecmpSeed = seed
	s.ecmp = links
}

// ECMPGroup returns the installed fallback links (nil when unset).
func (s *Switch) ECMPGroup() []*Link { return s.ecmp }

// NoRouteDrops counts packets dropped for lack of a route.
func (s *Switch) NoRouteDrops() int64 { return s.noRouteDrops }

// SetPool attaches a packet pool so that no-route drops are recycled
// instead of leaking out of circulation.
func (s *Switch) SetPool(pp *PacketPool) { s.pool = pp }

// Receive implements Device: look up the output port and send, falling
// back to the ECMP group for destinations without a static route.
func (s *Switch) Receive(p *Packet) {
	l, ok := s.routes[p.Dst]
	if !ok {
		if len(s.ecmp) > 0 {
			s.ecmp[ECMPIndex(s.ecmpSeed, p.Flow, p.Src, p.Dst, len(s.ecmp))].Send(p)
			return
		}
		s.noRouteDrops++
		s.pool.Put(p)
		return
	}
	l.Send(p)
}

// ECMPIndex picks the equal-cost path for a flow: a deterministic
// splitmix64-style hash of (seed, flow, src, dst) reduced modulo n. It is
// exported so topologies and tests can predict path assignments without
// sending packets.
func ECMPIndex(seed uint64, flow FlowID, src, dst NodeID, n int) int {
	if n <= 1 {
		return 0
	}
	x := seed ^ (uint64(uint32(flow))<<32 | uint64(uint32(src)))
	x = ecmpMix(x)
	x = ecmpMix(x ^ uint64(uint32(dst)))
	return int(x % uint64(n))
}

// ecmpMix is the splitmix64 finalizer: a cheap, well-distributed bijection.
func ecmpMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
