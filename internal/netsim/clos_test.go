package netsim

import (
	"testing"

	"incastlab/internal/sim"
)

// TestDumbbellDefaultsGolden pins the dumbbell's derived constants exactly.
// BaseRTT and BDPBytes round serialization terms to the nearest unit
// (SerializationDelayNearest); these values feed DCTCP's cwnd floor and
// the ICTCP window sizing, so any drift would silently move Fig-5 mode
// boundaries. If this test fails, the rounding changed — check the quick
// CSV goldens before updating the numbers.
func TestDumbbellDefaultsGolden(t *testing.T) {
	cfg := DefaultDumbbellConfig(80)
	if got := cfg.BaseRTT(); got != 29993*sim.Nanosecond {
		t.Errorf("dumbbell BaseRTT = %v, want 29993ns", got)
	}
	if got := cfg.BDPBytes(); got != 37491 {
		t.Errorf("dumbbell BDPBytes = %d, want 37491", got)
	}
	// The flow count must not leak into path constants.
	if other := DefaultDumbbellConfig(500); other.BaseRTT() != cfg.BaseRTT() || other.BDPBytes() != cfg.BDPBytes() {
		t.Error("dumbbell RTT/BDP depend on the flow count")
	}
}

// TestClosDefaultsGolden pins the Clos fabric's derived constants: the
// cross-rack base RTT lands at the paper's ~30 us (two fabric hops at half
// the dumbbell's core propagation), the same-rack path is strictly
// shorter, and the BDP matches the cross-rack RTT at the 10G host rate.
func TestClosDefaultsGolden(t *testing.T) {
	cfg := DefaultClosConfig(8, 501)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.BaseRTT(true); got != 30122*sim.Nanosecond {
		t.Errorf("cross-rack BaseRTT = %v, want 30122ns", got)
	}
	if got := cfg.BaseRTT(false); got != 20864*sim.Nanosecond {
		t.Errorf("same-rack BaseRTT = %v, want 20864ns", got)
	}
	if got := cfg.BDPBytes(); got != 37653 {
		t.Errorf("BDPBytes = %d, want 37653", got)
	}
	if got := cfg.Oversubscription(); got != 25.05 {
		t.Errorf("oversubscription = %v, want 25.05 (501x10G over 2x100G)", got)
	}
	// Path constants are per-hop properties; fabric width must not move
	// them.
	small := DefaultClosConfig(2, 4)
	if small.BaseRTT(true) != cfg.BaseRTT(true) || small.BDPBytes() != cfg.BDPBytes() {
		t.Error("Clos RTT/BDP depend on fabric width")
	}
}

func TestClosConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ClosConfig)
	}{
		{"one rack", func(c *ClosConfig) { c.Racks = 1 }},
		{"zero hosts", func(c *ClosConfig) { c.HostsPerRack = 0 }},
		{"zero spines", func(c *ClosConfig) { c.Spines = 0 }},
		{"zero host rate", func(c *ClosConfig) { c.HostLinkBps = 0 }},
		{"negative spine rate", func(c *ClosConfig) { c.SpineLinkBps = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultClosConfig(2, 4)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
}

// TestClosNodeIDs pins the ID scheme the workload layer builds on: hosts
// first (rack-major), then leaves, then spines.
func TestClosNodeIDs(t *testing.T) {
	cfg := DefaultClosConfig(3, 5)
	if cfg.Hosts() != 15 {
		t.Fatalf("Hosts() = %d, want 15", cfg.Hosts())
	}
	for r := 0; r < cfg.Racks; r++ {
		for s := 0; s < cfg.HostsPerRack; s++ {
			id := cfg.HostID(r, s)
			if want := NodeID(r*5 + s); id != want {
				t.Fatalf("HostID(%d,%d) = %d, want %d", r, s, id, want)
			}
			if got := cfg.RackOf(id); got != r {
				t.Fatalf("RackOf(%d) = %d, want %d", id, got, r)
			}
		}
	}
}

// TestClosWiring checks the constructed fabric's shape: per-host NIC and
// downlink ports, per-rack uplinks to every spine, per-(spine,rack)
// downlinks, and the shared-buffer binding on leaf downlink ports only.
func TestClosWiring(t *testing.T) {
	cfg := DefaultClosConfig(3, 4)
	cfg.SharedBufferBytes = 500_000
	c := NewClos(sim.NewEngine(), cfg)

	if len(c.Hosts) != 12 || len(c.Leaves) != 3 || len(c.Spines) != 2 {
		t.Fatalf("fabric has %d hosts, %d leaves, %d spines", len(c.Hosts), len(c.Leaves), len(c.Spines))
	}
	// Links: per host one NIC uplink and one leaf downlink, per rack one
	// uplink per spine, per spine one downlink per rack.
	want := 2*12 + 3*2 + 2*3
	if got := len(c.AllLinks()); got != want {
		t.Fatalf("AllLinks() = %d links, want %d", got, want)
	}
	for r := 0; r < cfg.Racks; r++ {
		if c.Shared[r] == nil {
			t.Fatalf("rack %d has no shared buffer", r)
		}
		if got := len(c.Uplinks(r)); got != cfg.Spines {
			t.Fatalf("rack %d has %d uplinks, want %d", r, got, cfg.Spines)
		}
	}
	for id := NodeID(0); int(id) < cfg.Hosts(); id++ {
		q := c.DownlinkQueue(id)
		if q == nil {
			t.Fatalf("host %d has no downlink queue", id)
		}
		if q.SharedBuffer() != c.Shared[cfg.RackOf(id)] {
			t.Fatalf("host %d downlink not bound to its rack's shared buffer", id)
		}
	}
	// Without SharedBufferBytes the pools must be absent.
	plain := NewClos(sim.NewEngine(), DefaultClosConfig(2, 2))
	for r, sb := range plain.Shared {
		if sb != nil {
			t.Fatalf("rack %d grew a shared buffer without SharedBufferBytes", r)
		}
	}
}

// TestClosCrossRackDelivery pushes one data packet across the fabric and
// back: host (1,0) -> leaf 1 -> spine -> leaf 0 -> host (0,0). Delivery
// proves the static routes and the ECMP fallback compose into a working
// path.
func TestClosCrossRackDelivery(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultClosConfig(2, 2)
	c := NewClos(eng, cfg)

	src := cfg.HostID(1, 0)
	dst := cfg.HostID(0, 0)
	var rx int
	c.Hosts[dst].SetOnReceive(func(now sim.Time, p *Packet) {
		rx++
		if p.Src != src || p.Dst != dst {
			t.Errorf("delivered packet %v -> %v", p.Src, p.Dst)
		}
	})

	p := c.Pool.Get()
	p.Flow, p.Src, p.Dst, p.Len = 7, src, dst, MSS
	c.Hosts[src].Send(p)
	eng.Run()

	if rx != 1 {
		t.Fatalf("delivered %d packets, want 1", rx)
	}
	// The predicted uplink must be within the spine group.
	if idx := c.UplinkIndex(7, src, dst); idx < 0 || idx >= cfg.Spines {
		t.Fatalf("UplinkIndex = %d, want in [0,%d)", idx, cfg.Spines)
	}
}

// TestECMPIndexDeterministic pins the hash contract: pure in its inputs,
// uniform-ish across outputs, and seed-sensitive.
func TestECMPIndexDeterministic(t *testing.T) {
	const n = 4
	counts := make([]int, n)
	for f := FlowID(1); f <= 400; f++ {
		a := ECMPIndex(42, f, 1, 2, n)
		b := ECMPIndex(42, f, 1, 2, n)
		if a != b {
			t.Fatalf("flow %d: ECMPIndex not deterministic (%d vs %d)", f, a, b)
		}
		if a < 0 || a >= n {
			t.Fatalf("flow %d: index %d out of range", f, a)
		}
		counts[a]++
	}
	// 400 flows over 4 buckets: each bucket should see a reasonable share.
	for i, got := range counts {
		if got < 50 || got > 150 {
			t.Errorf("bucket %d got %d of 400 flows; hash is badly skewed", i, got)
		}
	}
}

// TestECMPSeedShiftsPlacement: different seeds must reshuffle flow
// placement (the scenario layer exposes ecmp_seed exactly so studies can
// sample collision patterns), while equal seeds reproduce it.
func TestECMPSeedShiftsPlacement(t *testing.T) {
	cfgA := DefaultClosConfig(4, 8)
	cfgA.ECMPSeed = 1
	cfgB := cfgA
	cfgB.ECMPSeed = 2
	a := NewClos(sim.NewEngine(), cfgA)
	b := NewClos(sim.NewEngine(), cfgB)
	a2 := NewClos(sim.NewEngine(), cfgA)

	moved := 0
	for f := FlowID(1); f <= 64; f++ {
		src := cfgA.HostID(1+int(f)%3, int(f)%8)
		dst := cfgA.HostID(0, 0)
		if a.UplinkIndex(f, src, dst) != a2.UplinkIndex(f, src, dst) {
			t.Fatalf("flow %d: same seed placed the flow differently", f)
		}
		if a.UplinkIndex(f, src, dst) != b.UplinkIndex(f, src, dst) {
			moved++
		}
	}
	// With 2 spines an independent re-hash moves ~half the flows; zero
	// movement means the seed is ignored.
	if moved == 0 {
		t.Fatal("changing ECMPSeed moved no flows")
	}
}
