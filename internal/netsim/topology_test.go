package netsim

import (
	"testing"

	"incastlab/internal/sim"
)

func TestPacketSizes(t *testing.T) {
	p := dataPacket(1, MSS)
	if p.IPBytes() != MTU {
		t.Fatalf("IPBytes = %d, want %d", p.IPBytes(), MTU)
	}
	if p.WireBytes() != MTU+EthernetOverhead {
		t.Fatalf("WireBytes = %d", p.WireBytes())
	}
	ack := &Packet{IsAck: true}
	if ack.IPBytes() != HeaderBytes {
		t.Fatalf("ACK IPBytes = %d", ack.IPBytes())
	}
}

func TestDefaultDumbbellRTTAndBDP(t *testing.T) {
	cfg := DefaultDumbbellConfig(10)
	rtt := cfg.BaseRTT()
	// The paper's target RTT is 30 us; the builder should land within 5%.
	if rtt < 28500*sim.Nanosecond || rtt > 31500*sim.Nanosecond {
		t.Fatalf("base RTT = %v, want ~30us", rtt)
	}
	bdp := cfg.BDPBytes()
	// 10 Gbps x 30 us = 37.5 KB.
	if bdp < 35000 || bdp > 40000 {
		t.Fatalf("BDP = %d bytes, want ~37500", bdp)
	}
}

func TestDumbbellEndToEndDelivery(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, DefaultDumbbellConfig(3))

	var got []*Packet
	d.Receiver.Attach(PacketHandlerFunc(func(p *Packet) { got = append(got, p) }))

	for i, s := range d.Senders {
		p := &Packet{Flow: FlowID(i), Src: s.ID(), Dst: d.Receiver.ID(), Len: MSS, Seq: 0, ECT: true}
		s.Send(p)
	}
	eng.Run()
	if len(got) != 3 {
		t.Fatalf("receiver got %d packets, want 3", len(got))
	}
	if d.Receiver.RxPackets() != 3 {
		t.Fatalf("rx counter = %d", d.Receiver.RxPackets())
	}
}

func TestDumbbellReversePathDelivery(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, DefaultDumbbellConfig(2))

	var got []*Packet
	d.Senders[1].Attach(PacketHandlerFunc(func(p *Packet) { got = append(got, p) }))

	ack := &Packet{Flow: 7, Src: d.Receiver.ID(), Dst: d.Senders[1].ID(), IsAck: true, AckNo: 100}
	d.Receiver.Send(ack)
	eng.Run()
	if len(got) != 1 || got[0].AckNo != 100 {
		t.Fatalf("sender did not get the ACK: %v", got)
	}
}

func TestDumbbellOneWayLatency(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultDumbbellConfig(1)
	d := NewDumbbell(eng, cfg)

	var at sim.Time
	d.Receiver.Attach(PacketHandlerFunc(func(p *Packet) { at = eng.Now() }))
	d.Senders[0].Send(&Packet{Flow: 1, Src: 1, Dst: 0, Len: MSS})
	eng.Run()

	// One-way: 3 serializations + 3 propagations for a full-size packet.
	want := SerializationDelay(MTU+EthernetOverhead, cfg.HostLinkBps)*2 +
		SerializationDelay(MTU+EthernetOverhead, cfg.CoreLinkBps) +
		2*cfg.HostPropDelay + cfg.CorePropDelay
	if at != want {
		t.Fatalf("one-way latency %v, want %v", at, want)
	}
}

func TestDumbbellBottleneckCongestion(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultDumbbellConfig(20)
	d := NewDumbbell(eng, cfg)
	d.Receiver.Attach(PacketHandlerFunc(func(p *Packet) {}))

	// Every sender blasts 10 full packets simultaneously: 200 packets
	// converge on a 10 Gbps downlink fed by a 100 Gbps core; the
	// bottleneck queue must build and mark above K.
	for i, s := range d.Senders {
		for j := 0; j < 10; j++ {
			s.Send(&Packet{Flow: FlowID(i), Src: s.ID(), Dst: 0, Len: MSS, Seq: int64(j * MSS), ECT: true})
		}
	}
	eng.Run()
	st := d.BottleneckQueue().Stats()
	if st.PeakPackets <= cfg.ECNThresholdPackets {
		t.Fatalf("peak queue %d should exceed ECN threshold %d", st.PeakPackets, cfg.ECNThresholdPackets)
	}
	if st.MarkedPackets == 0 {
		t.Fatal("expected CE marks during incast")
	}
	if d.Receiver.RxPackets() != 200 {
		t.Fatalf("rx = %d, want 200 (deep queue should not drop)", d.Receiver.RxPackets())
	}
}

func TestDumbbellSharedBufferCausesEarlierLoss(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultDumbbellConfig(20)
	cfg.SharedBufferBytes = 150 * 1500 // much smaller than the 1333-pkt limit
	cfg.SharedBufferAlpha = 1
	d := NewDumbbell(eng, cfg)
	d.Receiver.Attach(PacketHandlerFunc(func(p *Packet) {}))
	d.Shared.SetExternalBytes(100 * 1500) // rack-level contention

	for i, s := range d.Senders {
		for j := 0; j < 10; j++ {
			s.Send(&Packet{Flow: FlowID(i), Src: s.ID(), Dst: 0, Len: MSS, Seq: int64(j * MSS), ECT: true})
		}
	}
	eng.Run()
	if d.BottleneckQueue().Stats().DroppedPackets == 0 {
		t.Fatal("shared-buffer contention should cause drops well below the per-port limit")
	}
}

func TestSwitchNoRouteDrop(t *testing.T) {
	s := NewSwitch(5, "sw")
	s.Receive(&Packet{Dst: 99})
	if s.NoRouteDrops() != 1 {
		t.Fatalf("noRouteDrops = %d", s.NoRouteDrops())
	}
}

func TestSamplePeriodically(t *testing.T) {
	eng := sim.NewEngine()
	var times []sim.Time
	SamplePeriodically(eng, 100, 50, 4, func(i int) { times = append(times, eng.Now()) })
	eng.Run()
	want := []sim.Time{100, 150, 200, 250}
	if len(times) != 4 {
		t.Fatalf("samples = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestQueueDepthAndWatermarkSeries(t *testing.T) {
	eng := sim.NewEngine()
	q := NewQueue(QueueConfig{})
	depth := QueueDepthSeries(eng, q, 0, 100, 5)
	wm := QueueWatermarkSeries(eng, q, 0, 100, 5)

	eng.At(10, func() {
		for i := 0; i < 7; i++ {
			q.Enqueue(eng.Now(), dataPacket(1, 10))
		}
	})
	eng.At(50, func() {
		for i := 0; i < 5; i++ {
			q.Dequeue(eng.Now())
		}
	})
	eng.Run()

	if depth.Values[0] != 0 { // sampled at t=0, before enqueues
		t.Fatalf("depth[0] = %v", depth.Values[0])
	}
	if depth.Values[1] != 2 { // t=100: 7 in, 5 out
		t.Fatalf("depth[1] = %v", depth.Values[1])
	}
	if wm.Values[0] != 7 { // interval (0,100] saw the peak of 7
		t.Fatalf("wm[0] = %v", wm.Values[0])
	}
	if wm.Values[1] != 2 { // nothing new; watermark = standing occupancy
		t.Fatalf("wm[1] = %v", wm.Values[1])
	}
}

func TestHostIngressRecorder(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 0, "rx")
	h.Attach(PacketHandlerFunc(func(p *Packet) {}))
	rec := NewHostIngressRecorder(h, 0, sim.Millisecond, 2)

	deliver := func(at sim.Time, p *Packet) {
		eng.At(at, func() { h.Receive(p) })
	}
	deliver(100, &Packet{Flow: 1, Dst: 0, Len: 1000})
	deliver(200, &Packet{Flow: 2, Dst: 0, Len: 1000, CE: true})
	deliver(300, &Packet{Flow: 1, Dst: 0, Len: 1000, Retransmit: true})
	deliver(sim.Time(sim.Millisecond)+1, &Packet{Flow: 3, Dst: 0, Len: 500})
	deliver(400, &Packet{Flow: 9, Dst: 0, IsAck: true}) // ACKs not ingress data
	eng.Run()

	if rec.Bytes.Values[0] != 3*1040 {
		t.Fatalf("bytes[0] = %v", rec.Bytes.Values[0])
	}
	if rec.CEBytes.Values[0] != 1040 {
		t.Fatalf("ce[0] = %v", rec.CEBytes.Values[0])
	}
	if rec.RetxBytes.Values[0] != 1040 {
		t.Fatalf("retx[0] = %v", rec.RetxBytes.Values[0])
	}
	if rec.Flows.Values[0] != 2 { // flows 1 and 2
		t.Fatalf("flows[0] = %v", rec.Flows.Values[0])
	}
	if rec.Flows.Values[1] != 1 || rec.Bytes.Values[1] != 540 {
		t.Fatalf("interval 1: flows=%v bytes=%v", rec.Flows.Values[1], rec.Bytes.Values[1])
	}
}
