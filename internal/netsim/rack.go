package netsim

import (
	"fmt"

	"incastlab/internal/sim"
)

// RackConfig extends the dumbbell to several receivers under one ToR whose
// downlink ports share packet memory — the environment of the paper's
// Section 3.4 observation that "simultaneous burst events to other hosts on
// the same rack can consume shared switch memory and likely exacerbates a
// subset of incast bursts".
type RackConfig struct {
	// Senders is the number of sending hosts behind the sender-side ToR.
	Senders int
	// Receivers is the number of hosts on the receiver-side ToR.
	Receivers int
	// Link parameters, as in DumbbellConfig.
	HostLinkBps   int64
	CoreLinkBps   int64
	HostPropDelay sim.Time
	CorePropDelay sim.Time
	// Per-port queue limits and marking threshold.
	QueueCapacityPackets int
	QueueCapacityBytes   int
	ECNThresholdPackets  int
	// SharedBufferBytes pools the receiver-ToR downlink queues; it is the
	// point of this topology and must be positive.
	SharedBufferBytes int
	SharedBufferAlpha float64
}

// DefaultRackConfig returns the paper's parameters with r receivers
// sharing a 2 MB buffer pool (DT alpha 1).
func DefaultRackConfig(senders, receivers int) RackConfig {
	d := DefaultDumbbellConfig(senders)
	return RackConfig{
		Senders:              senders,
		Receivers:            receivers,
		HostLinkBps:          d.HostLinkBps,
		CoreLinkBps:          d.CoreLinkBps,
		HostPropDelay:        d.HostPropDelay,
		CorePropDelay:        d.CorePropDelay,
		QueueCapacityPackets: d.QueueCapacityPackets,
		QueueCapacityBytes:   d.QueueCapacityBytes,
		ECNThresholdPackets:  d.ECNThresholdPackets,
		SharedBufferBytes:    2 * 1000 * 1000,
		SharedBufferAlpha:    1,
	}
}

// Rack is the constructed multi-receiver topology.
//
// Node IDs: receivers are 0..R-1, senders R..R+N-1, then the two ToRs.
type Rack struct {
	Config      RackConfig
	Eng         *sim.Engine
	Receivers   []*Host
	Senders     []*Host
	SenderToR   *Switch
	ReceiverToR *Switch
	// Downlinks[i] serves Receivers[i]; its queue draws on Shared.
	Downlinks []*Link
	Uplink    *Link
	Shared    *SharedBuffer
	// Pool recycles packets across all hosts in the topology.
	Pool *PacketPool

	// links retains every link in the topology for audit enumeration.
	links []*Link
}

// DownlinkQueue returns receiver i's ToR port queue.
func (r *Rack) DownlinkQueue(i int) *Queue { return r.Downlinks[i].Queue() }

// AllLinks returns every link in the topology.
func (r *Rack) AllLinks() []*Link { return r.links }

// NewRack wires up the topology on eng.
func NewRack(eng *sim.Engine, cfg RackConfig) *Rack {
	if cfg.Senders <= 0 || cfg.Receivers <= 0 {
		panic("netsim: rack needs senders and receivers")
	}
	if cfg.SharedBufferBytes <= 0 {
		panic("netsim: rack requires a shared buffer (use Dumbbell for dedicated queues)")
	}
	if cfg.SharedBufferAlpha <= 0 {
		cfg.SharedBufferAlpha = 1
	}
	r := &Rack{Config: cfg, Eng: eng, Pool: NewPacketPool()}
	r.Shared = NewSharedBuffer(cfg.SharedBufferBytes, cfg.SharedBufferAlpha)
	r.SenderToR = NewSwitch(NodeID(cfg.Receivers+cfg.Senders), "tor-senders")
	r.SenderToR.SetPool(r.Pool)
	r.ReceiverToR = NewSwitch(NodeID(cfg.Receivers+cfg.Senders+1), "tor-receivers")
	r.ReceiverToR.SetPool(r.Pool)

	// Every link shares the topology pool (so drops recycle) and is
	// retained for audit enumeration.
	newLink := func(lc LinkConfig) *Link {
		l := NewLink(eng, lc)
		l.SetPool(r.Pool)
		r.links = append(r.links, l)
		return l
	}

	portQueue := func(name string, shared bool) *Queue {
		qc := QueueConfig{
			Name:                name,
			CapacityBytes:       cfg.QueueCapacityBytes,
			CapacityPackets:     cfg.QueueCapacityPackets,
			ECNThresholdPackets: cfg.ECNThresholdPackets,
		}
		if shared {
			qc.Shared = r.Shared
		}
		return NewQueue(qc)
	}

	// Receivers and their shared-memory downlinks.
	r.Receivers = make([]*Host, cfg.Receivers)
	r.Downlinks = make([]*Link, cfg.Receivers)
	for i := 0; i < cfg.Receivers; i++ {
		id := NodeID(i)
		h := NewHost(eng, id, fmt.Sprintf("receiver-%d", i))
		h.SetPool(r.Pool)
		down := newLink(LinkConfig{
			Name:         fmt.Sprintf("tor-receivers->receiver-%d", i),
			BandwidthBps: cfg.HostLinkBps,
			PropDelay:    cfg.HostPropDelay,
			Queue:        portQueue(fmt.Sprintf("downlink-%d", i), true),
			Dst:          h,
		})
		r.ReceiverToR.AddRoute(id, down)
		h.SetUplink(newLink(LinkConfig{
			Name:         fmt.Sprintf("receiver-%d->tor-receivers", i),
			BandwidthBps: cfg.HostLinkBps,
			PropDelay:    cfg.HostPropDelay,
			Queue:        NewQueue(QueueConfig{Name: fmt.Sprintf("receiver-%d-nic", i)}),
			Dst:          r.ReceiverToR,
		}))
		r.Receivers[i] = h
		r.Downlinks[i] = down
	}

	// Inter-ToR links.
	r.Uplink = newLink(LinkConfig{
		Name:         "tor-senders->tor-receivers",
		BandwidthBps: cfg.CoreLinkBps,
		PropDelay:    cfg.CorePropDelay,
		Queue:        portQueue("uplink", false),
		Dst:          r.ReceiverToR,
	})
	reverseCore := newLink(LinkConfig{
		Name:         "tor-receivers->tor-senders",
		BandwidthBps: cfg.CoreLinkBps,
		PropDelay:    cfg.CorePropDelay,
		Queue:        portQueue("core-reverse", false),
		Dst:          r.SenderToR,
	})
	for i := 0; i < cfg.Receivers; i++ {
		r.SenderToR.AddRoute(NodeID(i), r.Uplink)
	}

	// Senders.
	r.Senders = make([]*Host, cfg.Senders)
	for i := 0; i < cfg.Senders; i++ {
		id := NodeID(cfg.Receivers + i)
		h := NewHost(eng, id, fmt.Sprintf("sender-%d", i))
		h.SetPool(r.Pool)
		h.SetUplink(newLink(LinkConfig{
			Name:         fmt.Sprintf("sender-%d->tor-senders", i),
			BandwidthBps: cfg.HostLinkBps,
			PropDelay:    cfg.HostPropDelay,
			Queue:        NewQueue(QueueConfig{Name: fmt.Sprintf("sender-%d-nic", i)}),
			Dst:          r.SenderToR,
		}))
		down := newLink(LinkConfig{
			Name:         fmt.Sprintf("tor-senders->sender-%d", i),
			BandwidthBps: cfg.HostLinkBps,
			PropDelay:    cfg.HostPropDelay,
			Queue:        portQueue(fmt.Sprintf("tor-senders-port-%d", i), false),
			Dst:          h,
		})
		r.SenderToR.AddRoute(id, down)
		r.ReceiverToR.AddRoute(id, reverseCore)
		r.Senders[i] = h
	}
	return r
}
