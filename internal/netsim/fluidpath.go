package netsim

import (
	"fmt"

	"incastlab/internal/sim"
)

// This file is the backend-neutral path/queue model shared between the
// packet-level fabric builder (NewClos) and the flow-level fluid solver
// (internal/flowsim.RunNetwork). A FluidPaths value describes the data
// path of every flow in an incast as an ordered traversal of port queues
// — each with its own drain rate, ECN threshold, and buffer bound — built
// from the SAME ClosConfig and the SAME seeded ECMP hash the packet
// backend routes with, so both fidelities place every flow on the same
// spine and meet the same bottlenecks.

// FluidQueue is one switch port as a fluid backend sees it: a FIFO that
// drains at the link's effective packet rate, marks CE above the ECN
// threshold, and tail-drops past the buffer bound. Names match the packet
// topology's port-queue names so cross-backend diagnostics line up.
type FluidQueue struct {
	Name string
	// RateBps is the port's line rate; the fluid drain rate is the
	// effective IP-packet rate under the x1500/1538 wire-overhead
	// contract (see flowsim.EffectivePacketRate).
	RateBps int64
	// CapacityPackets bounds the queue; ECNThresholdPackets is K.
	CapacityPackets     int
	ECNThresholdPackets int
}

// FluidPaths is a queue network plus each flow's ordered traversal of it.
// Paths[i] lists queue indices from the source outward; Stage assigns
// every queue a topological level such that stages strictly increase
// along every path (the fluid step integrates queues in stage order, so
// volume forwarded out of one hop is visible to the next within the same
// step). BaseRTT[i] is flow i's uncongested round-trip; Bottleneck is the
// queue the run's headline statistics sample (the aggregator's leaf
// downlink port in an incast).
type FluidPaths struct {
	Queues     []FluidQueue
	Paths      [][]int32
	BaseRTT    []sim.Time
	Stage      []int
	Bottleneck int
}

// Validate checks the structural invariants RunNetwork relies on.
func (p *FluidPaths) Validate() error {
	if len(p.Queues) == 0 {
		return fmt.Errorf("netsim: fluid path set has no queues")
	}
	if len(p.Paths) != len(p.BaseRTT) {
		return fmt.Errorf("netsim: fluid path set has %d paths but %d base RTTs", len(p.Paths), len(p.BaseRTT))
	}
	if len(p.Stage) != len(p.Queues) {
		return fmt.Errorf("netsim: fluid path set has %d queues but %d stages", len(p.Queues), len(p.Stage))
	}
	if p.Bottleneck < 0 || p.Bottleneck >= len(p.Queues) {
		return fmt.Errorf("netsim: fluid bottleneck index %d outside the %d queues", p.Bottleneck, len(p.Queues))
	}
	for j, q := range p.Queues {
		if q.RateBps <= 0 || q.CapacityPackets <= 0 || q.ECNThresholdPackets <= 0 {
			return fmt.Errorf("netsim: fluid queue %d (%s) needs positive rate, capacity, and ECN threshold", j, q.Name)
		}
	}
	for i, path := range p.Paths {
		if len(path) == 0 {
			return fmt.Errorf("netsim: fluid flow %d has an empty path", i)
		}
		if p.BaseRTT[i] <= 0 {
			return fmt.Errorf("netsim: fluid flow %d has non-positive base RTT", i)
		}
		prev := -1
		for _, j := range path {
			if j < 0 || int(j) >= len(p.Queues) {
				return fmt.Errorf("netsim: fluid flow %d references queue %d outside the %d queues", i, j, len(p.Queues))
			}
			if s := p.Stage[j]; s <= prev {
				return fmt.Errorf("netsim: fluid flow %d path is not stage-monotonic at queue %d (%s)", i, j, p.Queues[j].Name)
			} else {
				prev = s
			}
		}
	}
	return nil
}

// PathClasses partitions the flows into path-equivalence classes: two
// flows are in one class iff they traverse the identical ordered queue
// list (which encodes the ECMP spine choice — same seed, same hash, same
// spine — so aggregating a class never blurs routing) with the identical
// base RTT. Returns a dense class ID per flow, assigned in first-appearance
// order (deterministic given the path set), and the class count. This is
// the partition flowsim's cohort aggregation keys on: within a class the
// workload layer already guarantees one CC law, one demand, and one
// release schedule, so the path is the only behavioral discriminant left.
func (p *FluidPaths) PathClasses() ([]int32, int) {
	type key struct {
		hops [4]int32
		n    int32
		rtt  sim.Time
	}
	classOf := make([]int32, len(p.Paths))
	byKey := make(map[key]int32)
	var byLong map[string]int32 // fallback for paths deeper than 4 hops
	next := int32(0)
	for i, path := range p.Paths {
		if len(path) <= 4 {
			k := key{n: int32(len(path)), rtt: p.BaseRTT[i]}
			copy(k.hops[:], path)
			id, ok := byKey[k]
			if !ok {
				id = next
				next++
				byKey[k] = id
			}
			classOf[i] = id
			continue
		}
		if byLong == nil {
			byLong = make(map[string]int32)
		}
		buf := make([]byte, 0, len(path)*4+8)
		for _, j := range path {
			buf = append(buf, byte(j), byte(j>>8), byte(j>>16), byte(j>>24))
		}
		r := p.BaseRTT[i]
		buf = append(buf, byte(r), byte(r>>8), byte(r>>16), byte(r>>24),
			byte(r>>32), byte(r>>40), byte(r>>48), byte(r>>56))
		id, ok := byLong[string(buf)]
		if !ok {
			id = next
			next++
			byLong[string(buf)] = id
		}
		classOf[i] = id
	}
	return classOf, int(next)
}

// newPortIndex returns an n-slot index with every slot unresolved (-1).
func newPortIndex(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// Stages returns the number of distinct topological levels (max stage + 1).
func (p *FluidPaths) Stages() int {
	max := 0
	for _, s := range p.Stage {
		if s > max {
			max = s
		}
	}
	return max + 1
}

// FluidPaths builds the queue network an incast's data packets traverse
// over this fabric: flow i runs from host srcs[i] to host dsts[i] with
// FlowID i+1, exactly as workload.ClosIncast numbers its senders. Queues
// appear on demand in first-use order:
//
//   - same-rack flows cross only the destination's leaf downlink port;
//   - cross-rack flows cross their source leaf's uplink to the spine
//     ECMPIndex picks for (seed, flow i+1, src, dst) — the identical hash
//     Switch.Receive applies — then that spine's downlink port into the
//     destination rack, then the destination's leaf downlink port.
//
// Host NIC queues are unbounded on the packet side (host-side drops would
// mask the fabric behavior under study) and are therefore omitted here;
// the fluid injection rate is capped at the host line rate instead. ACK
// paths carry negligible volume and are folded into BaseRTT. Stages are
// uplink=0, spine downlink=1, leaf downlink=2, so every path is
// stage-monotonic. The bottleneck is dsts[0]'s leaf port.
func (c ClosConfig) FluidPaths(srcs, dsts []NodeID) (*FluidPaths, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(srcs) == 0 || len(srcs) != len(dsts) {
		return nil, fmt.Errorf("netsim: fluid paths need matching src/dst lists (got %d/%d)", len(srcs), len(dsts))
	}
	p := &FluidPaths{
		Paths:      make([][]int32, len(srcs)),
		BaseRTT:    make([]sim.Time, len(srcs)),
		Bottleneck: -1,
	}
	// Port indices resolved positionally — downlink per destination host,
	// uplink per (source rack, spine), spine downlink per (spine,
	// destination rack) — so the per-flow hot loop never formats a key or
	// hashes a string. Queues still materialize in first-use order, which
	// keeps indices (and therefore results) identical to the map-keyed
	// builder this replaces.
	hosts := c.Hosts()
	downIdx := newPortIndex(hosts)
	upIdx := newPortIndex(c.Racks * c.Spines)
	sdIdx := newPortIndex(c.Spines * c.Racks)
	addQueue := func(name string, rateBps int64, stage int) int32 {
		j := int32(len(p.Queues))
		p.Queues = append(p.Queues, FluidQueue{
			Name:                name,
			RateBps:             rateBps,
			CapacityPackets:     c.QueueCapacityPackets,
			ECNThresholdPackets: c.ECNThresholdPackets,
		})
		p.Stage = append(p.Stage, stage)
		return j
	}
	// Every path is at most 3 hops, so one backing array (sliced with full
	// capacity bounds, so the sub-slices can never grow into each other)
	// serves the whole flow set: building a million-flow path set costs a
	// handful of allocations, not several per flow.
	hops := make([]int32, 0, 3*len(srcs))

	for i := range srcs {
		src, dst := srcs[i], dsts[i]
		if int(src) < 0 || int(src) >= hosts || int(dst) < 0 || int(dst) >= hosts {
			return nil, fmt.Errorf("netsim: fluid flow %d endpoints %d->%d outside the %d fabric hosts", i, src, dst, hosts)
		}
		if src == dst {
			return nil, fmt.Errorf("netsim: fluid flow %d sends host %d to itself", i, src)
		}
		srcRack, dstRack := c.RackOf(src), c.RackOf(dst)
		dstSlot := int(dst) - dstRack*c.HostsPerRack
		down := downIdx[dst]
		if down < 0 {
			down = addQueue(fmt.Sprintf("leaf-%d-port-%d", dstRack, dstSlot), c.HostLinkBps, 2)
			downIdx[dst] = down
		}
		if p.Bottleneck < 0 {
			p.Bottleneck = int(down)
		}
		start := len(hops)
		if srcRack == dstRack {
			hops = append(hops, down)
			p.Paths[i] = hops[start:len(hops):len(hops)]
			p.BaseRTT[i] = c.BaseRTT(false)
			continue
		}
		s := ECMPIndex(c.ECMPSeed, FlowID(i+1), src, dst, c.Spines)
		up := upIdx[srcRack*c.Spines+s]
		if up < 0 {
			up = addQueue(fmt.Sprintf("leaf-%d-uplink-%d", srcRack, s), c.SpineLinkBps, 0)
			upIdx[srcRack*c.Spines+s] = up
		}
		sd := sdIdx[s*c.Racks+dstRack]
		if sd < 0 {
			sd = addQueue(fmt.Sprintf("spine-%d-port-%d", s, dstRack), c.SpineLinkBps, 1)
			sdIdx[s*c.Racks+dstRack] = sd
		}
		hops = append(hops, up, sd, down)
		p.Paths[i] = hops[start:len(hops):len(hops)]
		p.BaseRTT[i] = c.BaseRTT(true)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
