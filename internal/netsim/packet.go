package netsim

import (
	"fmt"

	"incastlab/internal/sim"
)

// FlowID identifies one transport connection.
type FlowID int32

// Packet is a simulated TCP/IP packet. Packets are created by transport
// endpoints and mutated only by switches (the CE bit). A Packet carries just
// enough header state for congestion-control research: sequence and ACK
// numbers, the ECN codepoint, and bookkeeping for statistics.
type Packet struct {
	// Flow identifies the connection this packet belongs to.
	Flow FlowID
	// Src and Dst are the endpoints' node IDs.
	Src, Dst NodeID

	// Seq is the sequence number of the first payload byte (data packets).
	Seq int64
	// Len is the TCP payload length in bytes; zero for pure ACKs.
	Len int

	// IsAck marks a pure acknowledgment.
	IsAck bool
	// AckNo is the cumulative acknowledgment: all bytes < AckNo received.
	AckNo int64

	// ECT marks the packet as ECN-capable transport.
	ECT bool
	// CE is the Congestion Experienced mark, set by a congested switch.
	CE bool
	// ECE is the echo of CE from receiver back to sender, on ACKs.
	ECE bool
	// Wnd is the receiver's advertised window in bytes, carried on ACKs;
	// zero means "no limit advertised" (the common case in these
	// simulations — only receiver-driven schemes like ICTCP set it).
	Wnd int64

	// Retransmit marks a retransmitted data packet (statistics only; the
	// network treats it like any other data packet).
	Retransmit bool

	// IncastNotify marks a switch-originated explicit incast notification
	// (Pulser-style): a zero-payload control packet a congested switch
	// sends back to a flow's source, telling it to back off immediately
	// instead of waiting for marks or losses to echo around. The network
	// forwards it like any other packet.
	IncastNotify bool

	// SentAt is the virtual time the sender handed the packet to its NIC;
	// used for RTT measurement on the echoing ACK path.
	SentAt sim.Time
	// EchoSentAt is SentAt copied from the data packet into its ACK, so the
	// sender can measure RTT without per-packet sender state.
	EchoSentAt sim.Time

	// pooled marks packets allocated from a PacketPool. Only pooled packets
	// are recycled at delivery; hand-constructed packets (tests, ad-hoc
	// traffic) stay owned by their creator.
	pooled bool
}

// PacketPool recycles Packet structs within one simulation. The pool is
// intentionally not thread-safe: a pool belongs to a single engine, and
// engines are single-goroutine by design (parallelism runs one engine — and
// one pool — per goroutine).
//
// Lifecycle: endpoints allocate with Get, the packet traverses links and
// queues untouched, and the terminal Host recycles it with Put after its
// transport handler returns. Handlers must therefore not retain packet
// pointers past HandlePacket; they copy out the header fields they need.
type PacketPool struct {
	free []*Packet

	// gets and puts count lifecycle transitions; gets - puts is the number
	// of pool-owned packets currently live in the network. hits counts
	// gets served from the free list (the remainder allocated).
	gets, puts, hits int64

	observer PoolObserver
}

// PoolStats is a snapshot of a pool's lifecycle counters, for the
// observability layer: Hits/Gets is the recycling rate of the packet hot
// path (Misses = Gets - Hits are heap allocations).
type PoolStats struct {
	Gets, Puts, Hits, Misses int64
}

// PoolObserver observes packet lifecycle transitions on a PacketPool. The
// invariant auditor installs one to track live/free state independently of
// the pool's own bookkeeping, which lets it detect double-releases that the
// pooled flag would otherwise silently absorb.
type PoolObserver interface {
	// OnGet fires after a packet is taken from the pool.
	OnGet(p *Packet)
	// OnPut fires on every Put call, before the pool's own checks; pooled
	// reports whether the packet was pool-owned at the time of the call
	// (false for double-puts and foreign packets).
	OnPut(p *Packet, pooled bool)
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// SetObserver installs a lifecycle observer (nil to remove).
func (pp *PacketPool) SetObserver(o PoolObserver) { pp.observer = o }

// Reset prepares the pool for reuse by a new simulation: lifecycle
// counters return to zero and any observer is removed, while the free list
// — the expensive part — stays warm. Reset must only be called when no
// pool-owned packet is still in flight (Outstanding() == 0), i.e. after a
// drained run.
func (pp *PacketPool) Reset() {
	if pp.gets != pp.puts {
		panic("netsim: PacketPool.Reset with packets still outstanding")
	}
	pp.gets, pp.puts, pp.hits = 0, 0, 0
	pp.observer = nil
}

// Outstanding returns the number of packets taken from the pool and not yet
// returned — the pool-owned packets currently traversing the network.
func (pp *PacketPool) Outstanding() int64 { return pp.gets - pp.puts }

// Stats returns the pool's lifecycle counters. Safe on a nil pool.
func (pp *PacketPool) Stats() PoolStats {
	if pp == nil {
		return PoolStats{}
	}
	return PoolStats{Gets: pp.gets, Puts: pp.puts, Hits: pp.hits, Misses: pp.gets - pp.hits}
}

// Get returns a zeroed packet owned by the pool.
func (pp *PacketPool) Get() *Packet {
	var p *Packet
	if n := len(pp.free); n > 0 {
		p = pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		*p = Packet{}
		pp.hits++
	} else {
		p = &Packet{}
	}
	p.pooled = true
	pp.gets++
	if pp.observer != nil {
		pp.observer.OnGet(p)
	}
	return p
}

// Put returns a pool-owned packet to the free list. Packets that did not
// come from a pool are ignored, so callers can recycle unconditionally. Safe
// on a nil pool.
func (pp *PacketPool) Put(p *Packet) {
	if pp == nil || p == nil {
		return
	}
	if pp.observer != nil {
		pp.observer.OnPut(p, p.pooled)
	}
	if !p.pooled {
		return
	}
	p.pooled = false
	pp.puts++
	pp.free = append(pp.free, p)
}

// IPBytes returns the size of the packet as an IP datagram: headers plus
// payload. Queue occupancy is accounted in these bytes.
func (p *Packet) IPBytes() int { return HeaderBytes + p.Len }

// WireBytes returns the size occupied on an Ethernet link, including
// framing overhead; serialization delay is computed from these bytes.
func (p *Packet) WireBytes() int { return p.IPBytes() + EthernetOverhead }

// String renders a compact human-readable form for traces.
func (p *Packet) String() string {
	kind := "DATA"
	if p.IsAck {
		kind = "ACK"
	}
	marks := ""
	if p.CE {
		marks += " CE"
	}
	if p.ECE {
		marks += " ECE"
	}
	if p.Retransmit {
		marks += " RTX"
	}
	if p.IncastNotify {
		marks += " INOTIFY"
	}
	return fmt.Sprintf("%s flow=%d %d->%d seq=%d len=%d ack=%d%s",
		kind, p.Flow, p.Src, p.Dst, p.Seq, p.Len, p.AckNo, marks)
}

// SerializationDelay returns the time to clock wireBytes onto a link of the
// given bandwidth (bits per second).
func SerializationDelay(wireBytes int, bandwidthBps int64) sim.Time {
	if bandwidthBps <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	// ns = bytes*8 / (bits/s) * 1e9, computed to avoid overflow for
	// realistic sizes (bytes*8e9 fits int64 for bytes < ~1e9).
	return sim.Time(int64(wireBytes) * 8 * 1_000_000_000 / bandwidthBps)
}

// SerializationDelayNearest is SerializationDelay rounded to the nearest
// nanosecond instead of truncated. Per-packet link timing keeps the
// truncating form (it is pinned by goldens and the paper's 10/100 Gbps
// rates divide evenly enough that the choice is invisible), but derived
// constants — BaseRTT, BDP — use this form so that rates that do not
// divide 1e9 (40 Gbps, 3 Gbps, oversubscribed Clos uplinks) do not bias
// every derived threshold downward.
func SerializationDelayNearest(wireBytes int, bandwidthBps int64) sim.Time {
	if bandwidthBps <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	bits := int64(wireBytes) * 8 * 1_000_000_000
	return sim.Time((bits + bandwidthBps/2) / bandwidthBps)
}
