package netsim

import (
	"fmt"

	"incastlab/internal/sim"
)

// ClosConfig describes a two-tier leaf/spine fabric: Racks leaf switches
// with HostsPerRack hosts each, every leaf uplinked to every one of Spines
// spine switches. Cross-rack traffic hashes over the spine uplinks with
// deterministic seeded ECMP; each leaf's downlink ports can pool their
// packet memory in a per-ToR shared buffer. This is the environment the
// paper measures — aggregators and workers spread across racks behind a
// datacenter fabric — generalizing the single-bottleneck dumbbell of
// Section 4.
type ClosConfig struct {
	// Racks is the number of leaf (ToR) switches; at least 2.
	Racks int
	// HostsPerRack is the number of hosts under each leaf.
	HostsPerRack int
	// Spines is the number of spine switches every leaf uplinks to
	// (default 2).
	Spines int
	// HostLinkBps is the host-leaf line rate (default 10 Gbps).
	HostLinkBps int64
	// SpineLinkBps is the per-uplink leaf-spine line rate (default
	// 100 Gbps). Rack oversubscription is
	// HostsPerRack*HostLinkBps / (Spines*SpineLinkBps).
	SpineLinkBps int64
	// HostPropDelay is the one-way host-leaf propagation delay;
	// SpinePropDelay the one-way leaf-spine delay. The defaults keep the
	// cross-rack base RTT at the paper's ~30 us.
	HostPropDelay  sim.Time
	SpinePropDelay sim.Time
	// QueueCapacityPackets and QueueCapacityBytes bound every switch port
	// queue, as in DumbbellConfig.
	QueueCapacityPackets int
	QueueCapacityBytes   int
	// ECNThresholdPackets is the marking threshold K.
	ECNThresholdPackets int
	// ECNAverageWeight, when positive, switches marking to a RED-style
	// EWMA of occupancy.
	ECNAverageWeight float64
	// SharedBufferBytes, if positive, pools each leaf's downlink port
	// queues into a per-ToR shared memory of this size with DT factor
	// SharedBufferAlpha.
	SharedBufferBytes int
	SharedBufferAlpha float64
	// ECMPSeed drives the flow-hash that places cross-rack flows on spine
	// uplinks. Same seed, same paths; different seeds reshuffle placement.
	ECMPSeed uint64
}

// DefaultClosConfig returns a fabric with the paper's per-port parameters:
// 10 Gbps host links, two spines at 100 Gbps per uplink, 1333-packet
// (2 MB) port queues, K=65, and a cross-rack base RTT of ~30 us (the
// leaf-spine propagation is half the dumbbell's core so the two fabric
// hops sum to the same path delay).
func DefaultClosConfig(racks, hostsPerRack int) ClosConfig {
	return ClosConfig{
		Racks:                racks,
		HostsPerRack:         hostsPerRack,
		Spines:               2,
		HostLinkBps:          10 * Gbps,
		SpineLinkBps:         100 * Gbps,
		HostPropDelay:        4570 * sim.Nanosecond,
		SpinePropDelay:       2250 * sim.Nanosecond,
		QueueCapacityPackets: 1333,
		QueueCapacityBytes:   2 * 1000 * 1000,
		ECNThresholdPackets:  65,
	}
}

// Hosts returns the total host count.
func (c ClosConfig) Hosts() int { return c.Racks * c.HostsPerRack }

// RackOf returns the rack index of a host node ID.
func (c ClosConfig) RackOf(id NodeID) int { return int(id) / c.HostsPerRack }

// HostID returns the node ID of host slot within rack.
func (c ClosConfig) HostID(rack, slot int) NodeID {
	return NodeID(rack*c.HostsPerRack + slot)
}

// Oversubscription returns the rack uplink oversubscription factor:
// offered host bandwidth over aggregate uplink bandwidth.
func (c ClosConfig) Oversubscription() float64 {
	return float64(c.HostsPerRack) * float64(c.HostLinkBps) /
		(float64(c.Spines) * float64(c.SpineLinkBps))
}

// BaseRTT returns the no-queue round-trip time for a full-size data packet
// and its ACK between two hosts: across the fabric (crossRack true; host
// NIC, leaf uplink, spine downlink, leaf downlink) or under one leaf
// (crossRack false; host NIC, leaf downlink). Serialization terms round to
// the nearest nanosecond, matching DumbbellConfig.BaseRTT.
func (c ClosConfig) BaseRTT(crossRack bool) sim.Time {
	dataWire := MTU + EthernetOverhead
	ackWire := HeaderBytes + EthernetOverhead
	var rtt sim.Time
	// Host NIC out, leaf downlink in — both directions, data and ACK.
	rtt += 2 * SerializationDelayNearest(dataWire, c.HostLinkBps)
	rtt += 2 * SerializationDelayNearest(ackWire, c.HostLinkBps)
	rtt += 2 * 2 * c.HostPropDelay
	if crossRack {
		// Leaf->spine and spine->leaf, both directions.
		rtt += 2 * SerializationDelayNearest(dataWire, c.SpineLinkBps)
		rtt += 2 * SerializationDelayNearest(ackWire, c.SpineLinkBps)
		rtt += 2 * 2 * c.SpinePropDelay
	}
	return rtt
}

// BDPBytes returns the bandwidth-delay product of a host downlink over the
// cross-rack path, rounded to the nearest byte.
func (c ClosConfig) BDPBytes() int {
	return int((int64(c.BaseRTT(true))*c.HostLinkBps + 4_000_000_000) / 8_000_000_000)
}

// Validate rejects configurations the builder would panic on, with
// actionable errors for the scenario layer.
func (c ClosConfig) Validate() error {
	if c.Racks < 2 {
		return fmt.Errorf("netsim: a Clos fabric needs at least 2 racks (got %d); use the dumbbell for one", c.Racks)
	}
	if c.HostsPerRack < 1 {
		return fmt.Errorf("netsim: a Clos fabric needs at least 1 host per rack (got %d)", c.HostsPerRack)
	}
	if c.Spines < 1 {
		return fmt.Errorf("netsim: a Clos fabric needs at least 1 spine (got %d)", c.Spines)
	}
	if c.HostLinkBps <= 0 || c.SpineLinkBps <= 0 {
		return fmt.Errorf("netsim: Clos link rates must be positive (host %d bps, spine %d bps)",
			c.HostLinkBps, c.SpineLinkBps)
	}
	return nil
}

// Clos is the constructed fabric.
//
// Node IDs: host slot s of rack r is r*HostsPerRack+s (so hosts occupy
// 0..Racks*HostsPerRack-1), leaf r is Hosts()+r, spine s is
// Hosts()+Racks+s.
type Clos struct {
	Config ClosConfig
	Eng    *sim.Engine
	// Hosts is indexed by NodeID.
	Hosts  []*Host
	Leaves []*Switch
	Spines []*Switch
	// Shared holds each leaf's downlink buffer pool; entries are nil when
	// SharedBufferBytes is zero.
	Shared []*SharedBuffer
	// Pool recycles packets across the whole fabric.
	Pool *PacketPool

	// downlinks[id] is the leaf->host port serving host id.
	downlinks []*Link
	// uplinks[rack][spine] is the leaf->spine port.
	uplinks [][]*Link
	// spineDown[spine][rack] is the spine->leaf port.
	spineDown [][]*Link

	// links retains every link for audit enumeration.
	links []*Link
}

// Downlink returns the leaf port link serving host id — the per-host
// bottleneck an incast study samples.
func (c *Clos) Downlink(id NodeID) *Link { return c.downlinks[id] }

// DownlinkQueue returns host id's leaf port queue.
func (c *Clos) DownlinkQueue(id NodeID) *Queue { return c.downlinks[id].Queue() }

// Uplinks returns rack's leaf->spine ports, indexed by spine.
func (c *Clos) Uplinks(rack int) []*Link { return c.uplinks[rack] }

// SpineDownlink returns the spine->leaf port from spine s toward rack r —
// where ECMP hash collisions become visible as queueing in a cross-rack
// incast.
func (c *Clos) SpineDownlink(s, r int) *Link { return c.spineDown[s][r] }

// AllLinks returns every link in the fabric.
func (c *Clos) AllLinks() []*Link { return c.links }

// UplinkIndex predicts which spine uplink a cross-rack flow's data path
// takes out of its source leaf — the same hash Switch.Receive applies — so
// tests and collision analyses can enumerate path assignments without
// running traffic.
func (c *Clos) UplinkIndex(flow FlowID, src, dst NodeID) int {
	return ECMPIndex(c.Config.ECMPSeed, flow, src, dst, c.Config.Spines)
}

// NewClos wires up the fabric on eng.
func NewClos(eng *sim.Engine, cfg ClosConfig) *Clos {
	return NewClosWithPool(eng, cfg, nil)
}

// NewClosWithPool is NewClos with an injected packet pool (nil for a fresh
// one), letting sweep runners carry a warm free list across runs.
func NewClosWithPool(eng *sim.Engine, cfg ClosConfig, pool *PacketPool) *Clos {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if pool == nil {
		pool = NewPacketPool()
	}
	n := cfg.Hosts()
	c := &Clos{
		Config:    cfg,
		Eng:       eng,
		Pool:      pool,
		Hosts:     make([]*Host, n),
		Leaves:    make([]*Switch, cfg.Racks),
		Spines:    make([]*Switch, cfg.Spines),
		Shared:    make([]*SharedBuffer, cfg.Racks),
		downlinks: make([]*Link, n),
		uplinks:   make([][]*Link, cfg.Racks),
	}

	newLink := func(lc LinkConfig) *Link {
		l := NewLink(eng, lc)
		l.SetPool(c.Pool)
		c.links = append(c.links, l)
		return l
	}
	portQueue := func(name string, shared *SharedBuffer) *Queue {
		qc := QueueConfig{
			Name:                name,
			CapacityBytes:       cfg.QueueCapacityBytes,
			CapacityPackets:     cfg.QueueCapacityPackets,
			ECNThresholdPackets: cfg.ECNThresholdPackets,
			ECNAverageWeight:    cfg.ECNAverageWeight,
			Shared:              shared,
		}
		return NewQueue(qc)
	}

	for s := 0; s < cfg.Spines; s++ {
		sw := NewSwitch(NodeID(n+cfg.Racks+s), fmt.Sprintf("spine-%d", s))
		sw.SetPool(c.Pool)
		c.Spines[s] = sw
	}

	for r := 0; r < cfg.Racks; r++ {
		leaf := NewSwitch(NodeID(n+r), fmt.Sprintf("leaf-%d", r))
		leaf.SetPool(c.Pool)
		c.Leaves[r] = leaf
		if cfg.SharedBufferBytes > 0 {
			alpha := cfg.SharedBufferAlpha
			if alpha <= 0 {
				alpha = 1
			}
			c.Shared[r] = NewSharedBuffer(cfg.SharedBufferBytes, alpha)
		}

		// Hosts under this leaf: NIC uplink (unbounded, as in the
		// dumbbell: host-side drops would mask the ToR behavior under
		// study) and the leaf downlink port, pooled in the per-ToR shared
		// buffer when one is configured.
		for s := 0; s < cfg.HostsPerRack; s++ {
			id := cfg.HostID(r, s)
			h := NewHost(eng, id, fmt.Sprintf("host-%d-%d", r, s))
			h.SetPool(c.Pool)
			h.SetUplink(newLink(LinkConfig{
				Name:         fmt.Sprintf("host-%d-%d->leaf-%d", r, s, r),
				BandwidthBps: cfg.HostLinkBps,
				PropDelay:    cfg.HostPropDelay,
				Queue:        NewQueue(QueueConfig{Name: fmt.Sprintf("host-%d-%d-nic", r, s)}),
				Dst:          leaf,
			}))
			down := newLink(LinkConfig{
				Name:         fmt.Sprintf("leaf-%d->host-%d-%d", r, r, s),
				BandwidthBps: cfg.HostLinkBps,
				PropDelay:    cfg.HostPropDelay,
				Queue:        portQueue(fmt.Sprintf("leaf-%d-port-%d", r, s), c.Shared[r]),
				Dst:          h,
			})
			leaf.AddRoute(id, down)
			c.Hosts[id] = h
			c.downlinks[id] = down
		}

		// Uplinks to every spine; cross-rack destinations (no static route
		// on the leaf) hash over them.
		ups := make([]*Link, cfg.Spines)
		for s := 0; s < cfg.Spines; s++ {
			up := newLink(LinkConfig{
				Name:         fmt.Sprintf("leaf-%d->spine-%d", r, s),
				BandwidthBps: cfg.SpineLinkBps,
				PropDelay:    cfg.SpinePropDelay,
				Queue:        portQueue(fmt.Sprintf("leaf-%d-uplink-%d", r, s), nil),
				Dst:          c.Spines[s],
			})
			ups[s] = up
		}
		c.uplinks[r] = ups
		leaf.SetECMPGroup(cfg.ECMPSeed, ups)
	}

	// Spine downlinks: one port per (spine, rack), routing every host of
	// that rack.
	c.spineDown = make([][]*Link, cfg.Spines)
	for s, sw := range c.Spines {
		c.spineDown[s] = make([]*Link, cfg.Racks)
		for r := 0; r < cfg.Racks; r++ {
			down := newLink(LinkConfig{
				Name:         fmt.Sprintf("spine-%d->leaf-%d", s, r),
				BandwidthBps: cfg.SpineLinkBps,
				PropDelay:    cfg.SpinePropDelay,
				Queue:        portQueue(fmt.Sprintf("spine-%d-port-%d", s, r), nil),
				Dst:          c.Leaves[r],
			})
			for slot := 0; slot < cfg.HostsPerRack; slot++ {
				sw.AddRoute(cfg.HostID(r, slot), down)
			}
			c.spineDown[s][r] = down
		}
	}
	return c
}
