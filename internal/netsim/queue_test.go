package netsim

import (
	"testing"
	"testing/quick"

	"incastlab/internal/sim"
)

func dataPacket(flow FlowID, lenBytes int) *Packet {
	return &Packet{Flow: flow, Len: lenBytes, ECT: true}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(QueueConfig{Name: "q"})
	p1, p2 := dataPacket(1, 100), dataPacket(2, 200)
	if !q.Enqueue(0, p1) || !q.Enqueue(0, p2) {
		t.Fatal("enqueue failed on empty queue")
	}
	if q.LenPackets() != 2 {
		t.Fatalf("len = %d", q.LenPackets())
	}
	if q.LenBytes() != p1.IPBytes()+p2.IPBytes() {
		t.Fatalf("bytes = %d", q.LenBytes())
	}
	if got := q.Dequeue(0); got != p1 {
		t.Fatal("dequeue order wrong")
	}
	if got := q.Dequeue(0); got != p2 {
		t.Fatal("dequeue order wrong")
	}
	if q.Dequeue(0) != nil {
		t.Fatal("dequeue of empty queue should be nil")
	}
}

func TestQueuePacketCapacity(t *testing.T) {
	q := NewQueue(QueueConfig{CapacityPackets: 2})
	if !q.Enqueue(0, dataPacket(1, 10)) || !q.Enqueue(0, dataPacket(1, 10)) {
		t.Fatal("first two packets should fit")
	}
	if q.Enqueue(0, dataPacket(1, 10)) {
		t.Fatal("third packet should be dropped")
	}
	st := q.Stats()
	if st.DroppedPackets != 1 || st.EnqueuedPackets != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueByteCapacity(t *testing.T) {
	q := NewQueue(QueueConfig{CapacityBytes: 1500})
	big := dataPacket(1, 1460) // 1500 IP bytes
	if !q.Enqueue(0, big) {
		t.Fatal("first packet should fit exactly")
	}
	if q.Enqueue(0, dataPacket(1, 1)) {
		t.Fatal("queue full by bytes; enqueue should fail")
	}
	q.Dequeue(0)
	if !q.Enqueue(0, dataPacket(1, 1)) {
		t.Fatal("after dequeue there is room")
	}
}

func TestQueueECNMarking(t *testing.T) {
	q := NewQueue(QueueConfig{ECNThresholdPackets: 2})
	a, b, c := dataPacket(1, 10), dataPacket(1, 10), dataPacket(1, 10)
	q.Enqueue(0, a)
	q.Enqueue(0, b)
	if a.CE || b.CE {
		t.Fatal("packets at or below threshold should not be marked")
	}
	q.Enqueue(0, c)
	if !c.CE {
		t.Fatal("packet above threshold should be CE-marked")
	}
	if q.Stats().MarkedPackets != 1 {
		t.Fatalf("marked = %d", q.Stats().MarkedPackets)
	}
}

func TestQueueECNRequiresECT(t *testing.T) {
	q := NewQueue(QueueConfig{ECNThresholdPackets: 1})
	q.Enqueue(0, dataPacket(1, 10))
	notECT := &Packet{Flow: 1, Len: 10}
	q.Enqueue(0, notECT)
	if notECT.CE {
		t.Fatal("non-ECT packet must not be CE-marked")
	}
}

func TestQueueWatermark(t *testing.T) {
	q := NewQueue(QueueConfig{})
	for i := 0; i < 5; i++ {
		q.Enqueue(0, dataPacket(1, 10))
	}
	for i := 0; i < 3; i++ {
		q.Dequeue(0)
	}
	if w := q.TakeWatermark(); w != 5 {
		t.Fatalf("watermark = %d, want 5", w)
	}
	// After taking, the watermark restarts from current occupancy (2).
	if w := q.TakeWatermark(); w != 2 {
		t.Fatalf("watermark after reset = %d, want 2", w)
	}
}

func TestQueueObservers(t *testing.T) {
	q := NewQueue(QueueConfig{CapacityPackets: 1})
	var changes, drops int
	q.SetOnChange(func(now sim.Time, pkts, bytes int) { changes++ })
	q.SetOnDrop(func(now sim.Time, p *Packet) { drops++ })
	q.Enqueue(0, dataPacket(1, 10)) // change
	q.Enqueue(0, dataPacket(1, 10)) // drop
	q.Dequeue(0)                    // change
	if changes != 2 || drops != 1 {
		t.Fatalf("changes=%d drops=%d", changes, drops)
	}
}

// TestQueueConservationProperty: enqueued = dequeued + still-queued, and
// occupancy is never negative, under random operation sequences.
func TestQueueConservationProperty(t *testing.T) {
	f := func(ops []bool, capPkts uint8) bool {
		q := NewQueue(QueueConfig{CapacityPackets: int(capPkts)})
		var accepted, dequeued int64
		for _, enq := range ops {
			if enq {
				if q.Enqueue(0, dataPacket(1, 100)) {
					accepted++
				}
			} else if q.Dequeue(0) != nil {
				dequeued++
			}
			if q.LenPackets() < 0 || q.LenBytes() < 0 {
				return false
			}
			if capPkts > 0 && q.LenPackets() > int(capPkts) {
				return false
			}
		}
		return accepted == dequeued+int64(q.LenPackets()) &&
			q.Stats().EnqueuedPackets == accepted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedBufferDynamicThreshold(t *testing.T) {
	// Pool of 10 full packets, alpha 1: a queue may hold at most
	// alpha*free bytes.
	pool := NewSharedBuffer(10*1500, 1)
	q1 := NewQueue(QueueConfig{Name: "q1", Shared: pool})
	q2 := NewQueue(QueueConfig{Name: "q2", Shared: pool})

	// With alpha=1, a single queue can grow until its occupancy equals the
	// free space: occupancy <= (total-occupancy) => at most 5 packets.
	n := 0
	for q1.Enqueue(0, dataPacket(1, 1460)) {
		n++
		if n > 100 {
			t.Fatal("queue grew without bound")
		}
	}
	if n != 5 {
		t.Fatalf("DT admitted %d packets, want 5", n)
	}
	// The second queue sees less free memory and caps lower.
	m := 0
	for q2.Enqueue(0, dataPacket(2, 1460)) {
		m++
		if m > 100 {
			t.Fatal("queue grew without bound")
		}
	}
	if m >= n {
		t.Fatalf("second queue admitted %d >= first %d; DT should shrink", m, n)
	}
	// Draining q1 frees memory for q2 again.
	for q1.Dequeue(0) != nil {
	}
	if !q2.Enqueue(0, dataPacket(2, 1460)) {
		t.Fatal("after drain, q2 should have room")
	}
}

func TestSharedBufferExternalContention(t *testing.T) {
	pool := NewSharedBuffer(10*1500, 1)
	q := NewQueue(QueueConfig{Shared: pool})
	// Outside traffic consumes 80% of the pool.
	pool.SetExternalBytes(8 * 1500)
	n := 0
	for q.Enqueue(0, dataPacket(1, 1460)) {
		n++
	}
	if n != 1 {
		t.Fatalf("with heavy contention admitted %d packets, want 1", n)
	}
	if pool.FreeBytes() != 10*1500-8*1500-n*1500 {
		t.Fatalf("free = %d", pool.FreeBytes())
	}
}

func TestSharedBufferHardLimit(t *testing.T) {
	pool := NewSharedBuffer(1500, 100) // huge alpha; hard limit binds
	q := NewQueue(QueueConfig{Shared: pool})
	if !q.Enqueue(0, dataPacket(1, 1460)) {
		t.Fatal("first packet fits")
	}
	if q.Enqueue(0, dataPacket(1, 1460)) {
		t.Fatal("pool exhausted; must drop")
	}
}

func TestQueueEWMAMarkingLags(t *testing.T) {
	// Instantaneous marking fires on the first packet past the threshold;
	// EWMA marking needs the average to climb there first.
	inst := NewQueue(QueueConfig{ECNThresholdPackets: 2})
	avg := NewQueue(QueueConfig{ECNThresholdPackets: 2, ECNAverageWeight: 0.01})
	for i := 0; i < 10; i++ {
		inst.Enqueue(0, dataPacket(1, 10))
		avg.Enqueue(0, dataPacket(1, 10))
	}
	if inst.Stats().MarkedPackets == 0 {
		t.Fatal("instantaneous marking should fire within 10 packets")
	}
	if avg.Stats().MarkedPackets != 0 {
		t.Fatal("a w=0.01 EWMA cannot reach the threshold in 10 packets")
	}
	// A sustained standing queue eventually marks under EWMA too.
	for i := 0; i < 2000; i++ {
		avg.Enqueue(0, dataPacket(1, 10))
		avg.Dequeue(0)
	}
	if avg.Stats().MarkedPackets == 0 {
		t.Fatal("EWMA marking should engage for a standing queue")
	}
}

// TestQueueEWMATracksAllOccupancyChanges pins the estimator semantics: the
// EWMA advances on every enqueue and dequeue, like RED's, not only on ECT
// arrivals that reach the marking comparison. Sampling inside the marking
// gate biased the average toward high depths and froze it across drains.
func TestQueueEWMATracksAllOccupancyChanges(t *testing.T) {
	const w = 0.25
	q := NewQueue(QueueConfig{ECNThresholdPackets: 1000, ECNAverageWeight: w})
	want := 0.0
	step := func(depth int) {
		want = (1-w)*want + w*float64(depth)
		if q.ecnAvgDepth != want {
			t.Fatalf("at depth %d: avg = %v, want %v", depth, q.ecnAvgDepth, want)
		}
	}
	// Non-ECT arrivals never reach the marking comparison, yet they must
	// advance the estimator.
	for i := 1; i <= 8; i++ {
		q.Enqueue(0, &Packet{Flow: 1, Len: 100})
		step(i)
	}
	peak := q.ecnAvgDepth
	// Draining must decay the average, not freeze it at the peak.
	for i := 7; i >= 0; i-- {
		q.Dequeue(0)
		step(i)
	}
	if q.ecnAvgDepth >= peak {
		t.Fatalf("average did not decay on drain: %v (peak %v)", q.ecnAvgDepth, peak)
	}
}

func TestSharedBufferSaturationClamp(t *testing.T) {
	pool := NewSharedBuffer(10*1500, 2)
	q := NewQueue(QueueConfig{Shared: pool})
	if !q.Enqueue(0, dataPacket(1, 1460)) || !q.Enqueue(0, dataPacket(1, 1460)) {
		t.Fatal("uncontended pool should admit")
	}

	// External contention oversubscribes the pool past its total (the
	// rack-contention scenarios do this on purpose). Free must clamp at
	// zero, not go negative into the DT limit.
	pool.SetExternalBytes(12 * 1500)
	if pool.FreeBytes() != 0 {
		t.Fatalf("free = %d, want 0 when oversubscribed", pool.FreeBytes())
	}
	if q.Enqueue(0, dataPacket(1, 1460)) {
		t.Fatal("saturated pool must admit nothing")
	}

	// Exactly full behaves the same as oversubscribed.
	pool.SetExternalBytes(10*1500 - q.LenBytes())
	if pool.FreeBytes() != 0 {
		t.Fatalf("free = %d, want 0 when exactly full", pool.FreeBytes())
	}
	if q.Enqueue(0, dataPacket(1, 1460)) {
		t.Fatal("exactly-full pool must admit nothing")
	}

	// Saturation is not sticky: when contention clears, admission resumes.
	pool.SetExternalBytes(0)
	if pool.FreeBytes() != 10*1500-q.LenBytes() {
		t.Fatalf("free after recovery = %d", pool.FreeBytes())
	}
	if !q.Enqueue(0, dataPacket(1, 1460)) {
		t.Fatal("after contention clears, the queue should grow again")
	}
}

func TestQueueEWMAWeightValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("weight > 1 did not panic")
		}
	}()
	NewQueue(QueueConfig{ECNAverageWeight: 1.5})
}
