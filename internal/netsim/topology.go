package netsim

import (
	"fmt"

	"incastlab/internal/sim"
)

// DumbbellConfig describes the paper's Section 4 topology: N senders, each
// on a 10 Gbps link to a sender-side ToR, a 100 Gbps inter-ToR link, and a
// 10 Gbps downlink from the receiver-side ToR to the single receiver. The
// 10:1 oversubscription between downlink and inter-ToR link is what makes
// the incast potent.
type DumbbellConfig struct {
	// Senders is the number of sending hosts (the incast degree N).
	Senders int
	// HostLinkBps is the host-ToR line rate (default 10 Gbps).
	HostLinkBps int64
	// CoreLinkBps is the ToR-ToR line rate (default 100 Gbps).
	CoreLinkBps int64
	// HostPropDelay and CorePropDelay are one-way propagation delays,
	// chosen so the default base RTT is ~30 us.
	HostPropDelay sim.Time
	CorePropDelay sim.Time
	// QueueCapacityPackets and QueueCapacityBytes bound every switch port
	// queue (defaults: 1333 packets / 2 MB, the paper's deep queue).
	QueueCapacityPackets int
	QueueCapacityBytes   int
	// ECNThresholdPackets is the switch marking threshold K (default 65).
	ECNThresholdPackets int
	// ECNAverageWeight, when positive, switches marking to a RED-style
	// EWMA of occupancy (ablation only; the paper marks instantaneously).
	ECNAverageWeight float64
	// SharedBufferBytes, if positive, pools the receiver-ToR port queues
	// into a shared memory of this size with DT factor SharedBufferAlpha.
	SharedBufferBytes int
	SharedBufferAlpha float64
}

// DefaultDumbbellConfig returns the paper's simulation parameters for n
// senders: 10/100 Gbps links, ~30 us RTT, 2 MB (1333-packet) queues, ECN
// threshold 65 packets, no shared-buffer contention.
func DefaultDumbbellConfig(n int) DumbbellConfig {
	return DumbbellConfig{
		Senders:              n,
		HostLinkBps:          10 * Gbps,
		CoreLinkBps:          100 * Gbps,
		HostPropDelay:        4570 * sim.Nanosecond,
		CorePropDelay:        4500 * sim.Nanosecond,
		QueueCapacityPackets: 1333,
		QueueCapacityBytes:   2 * 1000 * 1000,
		ECNThresholdPackets:  65,
	}
}

// BaseRTT returns the no-queue round-trip time for a full-size data packet
// and its 40-byte ACK across the dumbbell. Per-hop serialization terms are
// rounded to the nearest nanosecond (not truncated): for the paper's
// 10/100 Gbps rates the two agree, but rates that do not divide 1e9 would
// otherwise shave up to a nanosecond per hop off every derived constant.
func (c DumbbellConfig) BaseRTT() sim.Time {
	dataWire := MTU + EthernetOverhead
	ackWire := HeaderBytes + EthernetOverhead
	var rtt sim.Time
	// Data path: host NIC, core link, receiver downlink.
	rtt += SerializationDelayNearest(dataWire, c.HostLinkBps)
	rtt += SerializationDelayNearest(dataWire, c.CoreLinkBps)
	rtt += SerializationDelayNearest(dataWire, c.HostLinkBps)
	// ACK path.
	rtt += SerializationDelayNearest(ackWire, c.HostLinkBps)
	rtt += SerializationDelayNearest(ackWire, c.CoreLinkBps)
	rtt += SerializationDelayNearest(ackWire, c.HostLinkBps)
	// Propagation, both ways.
	rtt += 2 * (2*c.HostPropDelay + c.CorePropDelay)
	return rtt
}

// BDPBytes returns the bandwidth-delay product of the bottleneck downlink,
// rounded to the nearest byte.
func (c DumbbellConfig) BDPBytes() int {
	return int((int64(c.BaseRTT())*c.HostLinkBps + 4_000_000_000) / 8_000_000_000)
}

// Dumbbell is the constructed topology.
type Dumbbell struct {
	Config   DumbbellConfig
	Eng      *sim.Engine
	Senders  []*Host
	Receiver *Host
	// SenderToR aggregates the senders; ReceiverToR owns the bottleneck.
	SenderToR   *Switch
	ReceiverToR *Switch
	// Bottleneck is the receiver-ToR downlink: the queue under study.
	Bottleneck *Link
	// Uplink is the sender-ToR to receiver-ToR link.
	Uplink *Link
	// Shared is the receiver-ToR shared buffer, nil unless configured.
	Shared *SharedBuffer
	// Pool recycles packets across all hosts in the topology.
	Pool *PacketPool

	// links retains every link in the topology (NIC uplinks, ToR ports, and
	// the inter-ToR pair) so that audits can enumerate all in-flight packets.
	links []*Link
}

// BottleneckQueue returns the queue of the receiver-ToR downlink port.
func (d *Dumbbell) BottleneckQueue() *Queue { return d.Bottleneck.Queue() }

// AllLinks returns every link in the topology.
func (d *Dumbbell) AllLinks() []*Link { return d.links }

// NewDumbbell wires up the topology on eng.
//
// Node IDs: receiver = 0, senders = 1..N, sender ToR = N+1,
// receiver ToR = N+2.
func NewDumbbell(eng *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	return NewDumbbellWithPool(eng, cfg, nil)
}

// NewDumbbellWithPool is NewDumbbell with an injected packet pool, so
// sweep runners can carry a warm free list across consecutive runs. A nil
// pool gets a fresh one. The pool must belong to the same goroutine as eng
// (pools, like engines, are single-goroutine by design).
func NewDumbbellWithPool(eng *sim.Engine, cfg DumbbellConfig, pool *PacketPool) *Dumbbell {
	if cfg.Senders <= 0 {
		panic("netsim: dumbbell needs at least one sender")
	}
	if pool == nil {
		pool = NewPacketPool()
	}
	d := &Dumbbell{Config: cfg, Eng: eng, Pool: pool}

	d.Receiver = NewHost(eng, 0, "receiver")
	d.Receiver.SetPool(d.Pool)
	d.SenderToR = NewSwitch(NodeID(cfg.Senders+1), "tor-senders")
	d.SenderToR.SetPool(d.Pool)
	d.ReceiverToR = NewSwitch(NodeID(cfg.Senders+2), "tor-receiver")
	d.ReceiverToR.SetPool(d.Pool)

	// Every link shares the topology pool (so drops recycle) and is
	// retained for audit enumeration.
	newLink := func(lc LinkConfig) *Link {
		l := NewLink(eng, lc)
		l.SetPool(d.Pool)
		d.links = append(d.links, l)
		return l
	}

	if cfg.SharedBufferBytes > 0 {
		alpha := cfg.SharedBufferAlpha
		if alpha <= 0 {
			alpha = 1
		}
		d.Shared = NewSharedBuffer(cfg.SharedBufferBytes, alpha)
	}

	portQueue := func(name string, shared bool) *Queue {
		qc := QueueConfig{
			Name:                name,
			CapacityBytes:       cfg.QueueCapacityBytes,
			CapacityPackets:     cfg.QueueCapacityPackets,
			ECNThresholdPackets: cfg.ECNThresholdPackets,
			ECNAverageWeight:    cfg.ECNAverageWeight,
		}
		if shared && d.Shared != nil {
			qc.Shared = d.Shared
		}
		return NewQueue(qc)
	}

	// Bottleneck: receiver ToR -> receiver, at host line rate. This is the
	// queue all figures study. It participates in the shared buffer.
	d.Bottleneck = newLink(LinkConfig{
		Name:         "tor-receiver->receiver",
		BandwidthBps: cfg.HostLinkBps,
		PropDelay:    cfg.HostPropDelay,
		Queue:        portQueue("bottleneck", true),
		Dst:          d.Receiver,
	})
	d.ReceiverToR.AddRoute(0, d.Bottleneck)

	// Inter-ToR links, both directions.
	d.Uplink = newLink(LinkConfig{
		Name:         "tor-senders->tor-receiver",
		BandwidthBps: cfg.CoreLinkBps,
		PropDelay:    cfg.CorePropDelay,
		Queue:        portQueue("uplink", false),
		Dst:          d.ReceiverToR,
	})
	d.SenderToR.AddRoute(0, d.Uplink)
	reverseCore := newLink(LinkConfig{
		Name:         "tor-receiver->tor-senders",
		BandwidthBps: cfg.CoreLinkBps,
		PropDelay:    cfg.CorePropDelay,
		Queue:        portQueue("core-reverse", true),
		Dst:          d.SenderToR,
	})

	// Receiver NIC: receiver -> receiver ToR (the ACK path).
	d.Receiver.SetUplink(newLink(LinkConfig{
		Name:         "receiver->tor-receiver",
		BandwidthBps: cfg.HostLinkBps,
		PropDelay:    cfg.HostPropDelay,
		// The host NIC queue is effectively unbounded: sender-side drops
		// would mask the ToR-queue behavior under study.
		Queue: NewQueue(QueueConfig{Name: "receiver-nic"}),
		Dst:   d.ReceiverToR,
	}))

	d.Senders = make([]*Host, cfg.Senders)
	for i := 0; i < cfg.Senders; i++ {
		id := NodeID(i + 1)
		h := NewHost(eng, id, fmt.Sprintf("sender-%d", i))
		h.SetPool(d.Pool)
		h.SetUplink(newLink(LinkConfig{
			Name:         fmt.Sprintf("sender-%d->tor-senders", i),
			BandwidthBps: cfg.HostLinkBps,
			PropDelay:    cfg.HostPropDelay,
			Queue:        NewQueue(QueueConfig{Name: fmt.Sprintf("sender-%d-nic", i)}),
			Dst:          d.SenderToR,
		}))
		// ToR port back down to this sender (ACK delivery).
		down := newLink(LinkConfig{
			Name:         fmt.Sprintf("tor-senders->sender-%d", i),
			BandwidthBps: cfg.HostLinkBps,
			PropDelay:    cfg.HostPropDelay,
			Queue:        portQueue(fmt.Sprintf("tor-senders-port-%d", i), false),
			Dst:          h,
		})
		d.SenderToR.AddRoute(id, down)
		d.ReceiverToR.AddRoute(id, reverseCore)
		d.Senders[i] = h
	}
	return d
}
