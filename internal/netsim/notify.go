package netsim

import "incastlab/internal/sim"

// This file implements switch-side incast detection and the explicit
// notification path (Pulser-style): a detector watches one queue for the
// onset signature of an incast — fast depth growth or an arrival burst —
// and, when it trips, the switch sends a zero-payload IncastNotify packet
// back to the source of every flow currently occupying the queue. Senders
// whose congestion control implements cc.IncastNotifiable react with an
// immediate multiplicative backoff, one reverse-path propagation delay
// after onset instead of a full mark-echo round trip.
//
// The Clos variant coordinates per-uplink-port detectors on each leaf:
// a leaf declares incast only when several of its spine-facing ports trip
// within a short window, which distinguishes a fan-in burst (synchronized
// onset across ports) from a single hot flow.

// IncastDetectorConfig tunes an IncastDetector. Zero fields take defaults
// sized for the paper's ~30us-RTT fabrics: with a 10:1 fan-in over a
// 10 Gbps bottleneck the queue grows ~7.5 packets/us at onset, so the
// default slope threshold trips in ~2us — well inside one RTT.
type IncastDetectorConfig struct {
	// Window is the observation window; growth and arrival counts reset
	// when it rolls. Default 5us.
	Window sim.Time
	// SlopePackets trips the detector when occupancy grows by this many
	// packets within one window. Default 16.
	SlopePackets int
	// BurstArrivals trips the detector when this many packets arrive
	// within one window, regardless of net growth — a source-side leaf
	// port at line rate sees synchronized onset as arrivals even before
	// a standing queue forms. Default 64.
	BurstArrivals int
	// Cooldown is the minimum time between firings. Default 50us.
	Cooldown sim.Time
}

func (c IncastDetectorConfig) withDefaults() IncastDetectorConfig {
	if c.Window <= 0 {
		c.Window = 5 * sim.Microsecond
	}
	if c.SlopePackets <= 0 {
		c.SlopePackets = 16
	}
	if c.BurstArrivals <= 0 {
		c.BurstArrivals = 64
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 50 * sim.Microsecond
	}
	return c
}

// IncastDetectorStats counts a detector's observations.
type IncastDetectorStats struct {
	// Fired counts detector firings (post-cooldown).
	Fired int64
	// SlopeTrips and BurstTrips break firings down by trigger; a drop
	// always trips, counted under SlopeTrips.
	SlopeTrips int64
	BurstTrips int64
	// FirstFired is the time of the first firing; valid when Fired > 0.
	FirstFired sim.Time
}

// IncastDetector watches one queue for incast onset. It chains onto the
// queue's OnChange/OnDrop observers (preserving any previously installed
// ones) and invokes its callback when the onset signature appears.
type IncastDetector struct {
	cfg     IncastDetectorConfig
	onFire  func(now sim.Time)
	stats   IncastDetectorStats
	started bool

	windowStart sim.Time
	startDepth  int
	arrivals    int
	prevDepth   int
	lastFired   sim.Time
	hasFired    bool
}

// NewIncastDetector attaches a detector to q. onFire runs on each firing
// (after cooldown gating); it may inject packets into the network but must
// not enqueue into q itself.
func NewIncastDetector(q *Queue, cfg IncastDetectorConfig, onFire func(now sim.Time)) *IncastDetector {
	d := &IncastDetector{cfg: cfg.withDefaults(), onFire: onFire}
	prevChange := q.OnChange()
	q.SetOnChange(func(now sim.Time, packets, bytes int) {
		d.observe(now, packets)
		if prevChange != nil {
			prevChange(now, packets, bytes)
		}
	})
	prevDrop := q.OnDrop()
	q.SetOnDrop(func(now sim.Time, p *Packet) {
		// A tail drop is a definitive overload signal: trip immediately.
		d.trip(now, &d.stats.SlopeTrips)
		if prevDrop != nil {
			prevDrop(now, p)
		}
	})
	return d
}

// Stats returns the detector's counters.
func (d *IncastDetector) Stats() IncastDetectorStats { return d.stats }

func (d *IncastDetector) observe(now sim.Time, depth int) {
	if !d.started || now-d.windowStart >= d.cfg.Window {
		d.started = true
		d.windowStart = now
		d.startDepth = depth
		d.arrivals = 0
	}
	if depth > d.prevDepth {
		d.arrivals++
	}
	if depth-d.startDepth >= d.cfg.SlopePackets {
		d.trip(now, &d.stats.SlopeTrips)
	} else if d.arrivals >= d.cfg.BurstArrivals {
		d.trip(now, &d.stats.BurstTrips)
	}
	d.prevDepth = depth
}

func (d *IncastDetector) trip(now sim.Time, trigger *int64) {
	if d.hasFired && now-d.lastFired < d.cfg.Cooldown {
		return
	}
	if d.stats.Fired == 0 {
		d.stats.FirstFired = now
	}
	d.hasFired = true
	d.lastFired = now
	d.stats.Fired++
	*trigger++
	if d.onFire != nil {
		d.onFire(now)
	}
}

// IncastNotifier turns detector firings into explicit notification packets:
// one zero-payload IncastNotify packet per distinct data flow, addressed to
// the flow's source and injected at sw (which routes it over the reverse
// path like any other packet).
//
// Who gets notified depends on the horizon. With a zero horizon the notifier
// signals the flows occupying the watched queues at firing time — right for
// a congested bottleneck port, where the standing queue holds the offenders.
// With a positive horizon it keeps a recent-flow table (fed by the queues'
// enqueue observers) and signals every flow seen within the horizon — right
// for a fast uplink port, which drains in microseconds and holds one or two
// packets even while an entire rack's fan-in streams through it.
type IncastNotifier struct {
	sw      *Switch
	pool    *PacketPool
	queues  []*Queue
	horizon sim.Time
	sent    int64

	// Recent-flow table (horizon > 0): src and last-seen time per flow, in
	// first-seen order. Pruned lazily at each firing.
	flows  map[FlowID]flowSeen
	recent []FlowID

	// scratch, reused across firings to keep the hot path allocation-free.
	seen  map[FlowID]NodeID
	order []FlowID
}

type flowSeen struct {
	src  NodeID
	last sim.Time
}

// NewIncastNotifier builds a notifier injecting at sw for flows passing
// through queues. Pool must be the topology's packet pool so notifications
// recycle like data packets. A positive horizon enables the recent-flow
// table and chains onto each queue's OnEnqueue observer; zero keeps the
// currently-queued semantics.
func NewIncastNotifier(sw *Switch, pool *PacketPool, horizon sim.Time, queues ...*Queue) *IncastNotifier {
	if pool == nil {
		panic("netsim: IncastNotifier needs the topology packet pool")
	}
	n := &IncastNotifier{sw: sw, pool: pool, queues: queues, horizon: horizon,
		seen: make(map[FlowID]NodeID)}
	if horizon > 0 {
		n.flows = make(map[FlowID]flowSeen)
		for _, q := range queues {
			prev := q.OnEnqueue()
			q.SetOnEnqueue(func(now sim.Time, p *Packet) {
				n.observe(now, p)
				if prev != nil {
					prev(now, p)
				}
			})
		}
	}
	return n
}

// Sent returns the number of notification packets injected so far.
func (n *IncastNotifier) Sent() int64 { return n.sent }

// observe records a data packet in the recent-flow table.
func (n *IncastNotifier) observe(now sim.Time, p *Packet) {
	if p.IsAck || p.IncastNotify {
		return
	}
	if _, ok := n.flows[p.Flow]; !ok {
		n.recent = append(n.recent, p.Flow)
	}
	n.flows[p.Flow] = flowSeen{src: p.Src, last: now}
}

// Notify sends one notification per distinct data flow — those queued right
// now (zero horizon) or those seen within the horizon — in deterministic
// FIFO/first-seen order. ACKs and notifications in flight are never
// signalled.
func (n *IncastNotifier) Notify(now sim.Time) {
	clear(n.seen)
	n.order = n.order[:0]
	if n.horizon > 0 {
		// Compact the recent-flow table in place, dropping stale entries.
		kept := n.recent[:0]
		for _, f := range n.recent {
			e := n.flows[f]
			if now-e.last > n.horizon {
				delete(n.flows, f)
				continue
			}
			kept = append(kept, f)
			n.seen[f] = e.src
			n.order = append(n.order, f)
		}
		for i := len(kept); i < len(n.recent); i++ {
			n.recent[i] = 0
		}
		n.recent = kept
	} else {
		for _, q := range n.queues {
			q.ForEachPacket(func(p *Packet) {
				if p.IsAck || p.IncastNotify {
					return
				}
				if _, ok := n.seen[p.Flow]; !ok {
					n.seen[p.Flow] = p.Src
					n.order = append(n.order, p.Flow)
				}
			})
		}
	}
	for _, f := range n.order {
		p := n.pool.Get()
		p.Flow = f
		p.Src = n.sw.ID()
		p.Dst = n.seen[f]
		p.IncastNotify = true
		p.SentAt = now
		n.sw.Receive(p)
		n.sent++
	}
}

// AttachIncastNotification wires a detector on q that, on firing, notifies
// the source of every flow queued in q via sw. This is the single-switch
// (dumbbell bottleneck) deployment; returns the detector and notifier for
// stats harvesting.
func AttachIncastNotification(sw *Switch, q *Queue, pool *PacketPool, cfg IncastDetectorConfig) (*IncastDetector, *IncastNotifier) {
	n := NewIncastNotifier(sw, pool, 0, q)
	d := NewIncastDetector(q, cfg, n.Notify)
	return d, n
}

// ClosDetectorConfig tunes distributed in-fabric detection on a Clos.
type ClosDetectorConfig struct {
	// Detector configures the per-uplink-port sub-detectors.
	Detector IncastDetectorConfig
	// MinPorts is how many of a leaf's uplink ports must trip within
	// CoordWindow before the leaf declares incast. Values above the spine
	// count are clamped. Default 2.
	MinPorts int
	// CoordWindow is how long a port trip stays "hot" for coordination.
	// Default 20us.
	CoordWindow sim.Time
	// Cooldown is the leaf-level minimum time between declarations.
	// Default: the sub-detector cooldown.
	Cooldown sim.Time
	// FlowHorizon is how long a flow stays in the leaf's recent-flow table
	// for notification targeting. Uplink ports drain in microseconds, so at
	// firing time the queues hold almost none of the rack's fan-in flows;
	// the table remembers everyone seen recently instead. Default 100us
	// (covers one jittered burst onset).
	FlowHorizon sim.Time
}

func (c ClosDetectorConfig) withDefaults(spines int) ClosDetectorConfig {
	c.Detector = c.Detector.withDefaults()
	if c.MinPorts <= 0 {
		c.MinPorts = 2
	}
	if c.MinPorts > spines {
		c.MinPorts = spines
	}
	if c.CoordWindow <= 0 {
		c.CoordWindow = 20 * sim.Microsecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Detector.Cooldown
	}
	if c.FlowHorizon <= 0 {
		c.FlowHorizon = 100 * sim.Microsecond
	}
	return c
}

// LeafIncastStats aggregates one leaf coordinator's counters.
type LeafIncastStats struct {
	// PortFirings sums sub-detector firings across the leaf's uplinks.
	PortFirings int64
	// LeafFirings counts coordinated leaf-level incast declarations.
	LeafFirings int64
	// NotificationsSent counts notification packets this leaf injected.
	NotificationsSent int64
	// FirstFired is the time of the first coordinated declaration; valid
	// when LeafFirings > 0.
	FirstFired sim.Time
}

// LeafIncastCoordinator aggregates per-uplink detectors on one leaf: the
// leaf declares incast when MinPorts distinct uplink ports trip within
// CoordWindow, then notifies the sources of every flow queued on any of
// its uplinks. Source-side leaves see a fan-in burst as synchronized onset
// across their spine-facing ports, so coordination fires before the
// aggregator's downlink queue saturates.
type LeafIncastCoordinator struct {
	cfg       ClosDetectorConfig
	rack      int
	detectors []*IncastDetector
	notifier  *IncastNotifier

	lastTrip   []sim.Time
	tripped    []bool
	lastFired  sim.Time
	hasFired   bool
	firings    int64
	firstFired sim.Time
}

// Rack returns the coordinator's rack index.
func (l *LeafIncastCoordinator) Rack() int { return l.rack }

// Stats returns the coordinator's aggregated counters.
func (l *LeafIncastCoordinator) Stats() LeafIncastStats {
	s := LeafIncastStats{LeafFirings: l.firings, NotificationsSent: l.notifier.Sent(),
		FirstFired: l.firstFired}
	for _, d := range l.detectors {
		s.PortFirings += d.Stats().Fired
	}
	return s
}

func (l *LeafIncastCoordinator) portTripped(port int, now sim.Time) {
	l.lastTrip[port] = now
	l.tripped[port] = true
	hot := 0
	for i := range l.tripped {
		if l.tripped[i] && now-l.lastTrip[i] <= l.cfg.CoordWindow {
			hot++
		}
	}
	if hot < l.cfg.MinPorts {
		return
	}
	if l.hasFired && now-l.lastFired < l.cfg.Cooldown {
		return
	}
	if l.firings == 0 {
		l.firstFired = now
	}
	l.hasFired = true
	l.lastFired = now
	l.firings++
	l.notifier.Notify(now)
}

// AttachClosIncastDetection installs a coordinator on every leaf of c. Each
// leaf watches its spine-facing uplink queues; on a coordinated firing it
// notifies the (same-rack) sources of the flows queued there, reaching them
// one hop away — the shortest control loop the fabric offers.
func AttachClosIncastDetection(c *Clos, cfg ClosDetectorConfig) []*LeafIncastCoordinator {
	cfg = cfg.withDefaults(c.Config.Spines)
	coords := make([]*LeafIncastCoordinator, c.Config.Racks)
	for r := 0; r < c.Config.Racks; r++ {
		uplinks := c.Uplinks(r)
		queues := make([]*Queue, len(uplinks))
		for i, ln := range uplinks {
			queues[i] = ln.Queue()
		}
		l := &LeafIncastCoordinator{
			cfg:      cfg,
			rack:     r,
			notifier: NewIncastNotifier(c.Leaves[r], c.Pool, cfg.FlowHorizon, queues...),
			lastTrip: make([]sim.Time, len(uplinks)),
			tripped:  make([]bool, len(uplinks)),
		}
		for i, q := range queues {
			port := i
			l.detectors = append(l.detectors, NewIncastDetector(q, cfg.Detector, func(now sim.Time) {
				l.portTripped(port, now)
			}))
		}
		coords[r] = l
	}
	return coords
}
