package netsim

import (
	"fmt"
	"io"
	"sync"

	"incastlab/internal/sim"
)

// Tracer writes one line per observed packet event, in the spirit of NS3's
// ASCII tracing — invaluable when debugging transport behavior. Attach it
// to the points of interest:
//
//	tr := netsim.NewTracer(eng, w)
//	tr.TapHost(receiver)           // "recv" lines
//	tr.TapQueue(q, "bottleneck")   // "enq"/"deq"-level depth + "drop" lines
//
// Lines look like:
//
//	0.000123456 recv  receiver  DATA flow=3 1->0 seq=1460 len=1460
//	0.000125000 drop  bottleneck DATA flow=9 9->0 seq=0 len=1460
//	0.000125100 queue bottleneck depth=67pkts 100500B
//
// Queue depth lines are emitted only when the depth crosses a multiple of
// DepthQuantum (default 32 packets), keeping the volume manageable.
type Tracer struct {
	eng *sim.Engine
	mu  sync.Mutex
	w   io.Writer

	// DepthQuantum controls queue-depth line granularity in packets.
	DepthQuantum int

	lines int64
	errs  int64
}

// NewTracer creates a tracer writing to w.
func NewTracer(eng *sim.Engine, w io.Writer) *Tracer {
	if w == nil {
		panic("netsim: tracer needs a writer")
	}
	return &Tracer{eng: eng, w: w, DepthQuantum: 32}
}

// Lines returns how many trace lines were written.
func (t *Tracer) Lines() int64 { return t.lines }

func (t *Tracer) emit(format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := fmt.Fprintf(t.w, format, args...); err != nil {
		t.errs++
		return
	}
	t.lines++
}

// TapHost logs every packet delivered to h. It chains with (replaces) any
// existing OnReceive observer, so install instrumentation taps first.
func (t *Tracer) TapHost(h *Host) {
	name := h.Name()
	prev := h.onReceive
	h.SetOnReceive(func(now sim.Time, p *Packet) {
		if prev != nil {
			prev(now, p)
		}
		t.emit("%.9f recv  %s %v\n", now.Seconds(), name, p)
	})
}

// TapQueue logs drops and quantized depth changes of q under the label.
func (t *Tracer) TapQueue(q *Queue, label string) {
	prevDrop := q.onDrop
	q.SetOnDrop(func(now sim.Time, p *Packet) {
		if prevDrop != nil {
			prevDrop(now, p)
		}
		t.emit("%.9f drop  %s %v\n", now.Seconds(), label, p)
	})
	prevChange := q.onChange
	lastBucket := -1
	quantum := t.DepthQuantum
	if quantum <= 0 {
		quantum = 1
	}
	q.SetOnChange(func(now sim.Time, pkts, bytes int) {
		if prevChange != nil {
			prevChange(now, pkts, bytes)
		}
		bucket := pkts / quantum
		if bucket != lastBucket {
			lastBucket = bucket
			t.emit("%.9f queue %s depth=%dpkts %dB\n", now.Seconds(), label, pkts, bytes)
		}
	})
}
