package netsim

import (
	"testing"

	"incastlab/internal/sim"
)

func TestImpairmentPassThrough(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 9, eng: eng}
	im := NewImpairment(eng, 8, dst, ImpairmentConfig{Seed: 1})
	for i := 0; i < 10; i++ {
		im.Receive(dataPacket(1, 100))
	}
	eng.Run()
	if len(dst.arrivals) != 10 || im.Dropped() != 0 || im.Passed() != 10 {
		t.Fatalf("pass-through broken: %d arrivals, %d dropped", len(dst.arrivals), im.Dropped())
	}
}

func TestImpairmentDropsAtConfiguredRate(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 9, eng: eng}
	im := NewImpairment(eng, 8, dst, ImpairmentConfig{DropProbability: 0.3, Seed: 7})
	const n = 10000
	for i := 0; i < n; i++ {
		im.Receive(dataPacket(1, 100))
	}
	eng.Run()
	rate := float64(im.Dropped()) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("drop rate = %v, want ~0.3", rate)
	}
	if im.Passed()+im.Dropped() != n {
		t.Fatal("accounting broken")
	}
}

func TestImpairmentSparesAcksByDefault(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 9, eng: eng}
	im := NewImpairment(eng, 8, dst, ImpairmentConfig{DropProbability: 1, Seed: 1})
	im.Receive(&Packet{IsAck: true})
	im.Receive(dataPacket(1, 100))
	eng.Run()
	if im.Dropped() != 1 || len(dst.arrivals) != 1 || !dst.arrivals[0].p.IsAck {
		t.Fatalf("ACK handling wrong: dropped=%d arrivals=%d", im.Dropped(), len(dst.arrivals))
	}
	// With DropAcks set, ACKs die too.
	im2 := NewImpairment(eng, 8, dst, ImpairmentConfig{DropProbability: 1, DropAcks: true, Seed: 1})
	im2.Receive(&Packet{IsAck: true})
	if im2.Dropped() != 1 {
		t.Fatal("DropAcks not honored")
	}
}

func TestImpairmentExtraDelay(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 9, eng: eng}
	im := NewImpairment(eng, 8, dst, ImpairmentConfig{MaxExtraDelay: 1000, Seed: 3})
	eng.At(100, func() {
		for i := 0; i < 50; i++ {
			im.Receive(dataPacket(FlowID(i), 100))
		}
	})
	eng.Run()
	if len(dst.arrivals) != 50 {
		t.Fatalf("arrivals = %d", len(dst.arrivals))
	}
	var spread bool
	for _, a := range dst.arrivals {
		if a.at < 100 || a.at > 1100 {
			t.Fatalf("arrival at %v outside delay window", a.at)
		}
		if a.at != dst.arrivals[0].at {
			spread = true
		}
	}
	if !spread {
		t.Fatal("extra delay did not spread arrivals")
	}
}

func TestImpairmentValidation(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 9, eng: eng}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil dst", func() { NewImpairment(eng, 1, nil, ImpairmentConfig{}) })
	mustPanic("bad prob", func() { NewImpairment(eng, 1, dst, ImpairmentConfig{DropProbability: 1.5}) })
	mustPanic("neg delay", func() { NewImpairment(eng, 1, dst, ImpairmentConfig{MaxExtraDelay: -1}) })
}
