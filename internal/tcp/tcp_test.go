package tcp

import (
	"testing"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

func TestRTTEstimator(t *testing.T) {
	var e rttEstimator
	min, max := 1*sim.Millisecond, 10*sim.Second
	if e.rto(min, max) != min {
		t.Fatal("pre-sample RTO should be the minimum")
	}
	e.sample(100 * sim.Microsecond)
	if e.srtt != 100*sim.Microsecond || e.rttvar != 50*sim.Microsecond {
		t.Fatalf("first sample: srtt=%v rttvar=%v", e.srtt, e.rttvar)
	}
	// Constant samples shrink rttvar toward zero; srtt stays put.
	for i := 0; i < 50; i++ {
		e.sample(100 * sim.Microsecond)
	}
	if e.srtt != 100*sim.Microsecond {
		t.Fatalf("srtt drifted to %v", e.srtt)
	}
	if e.rttvar > 2*sim.Microsecond {
		t.Fatalf("rttvar = %v, want near 0", e.rttvar)
	}
	if got := e.rto(min, max); got != min {
		t.Fatalf("rto = %v, want clamped to min", got)
	}
	if got := e.rto(0, max); got < 100*sim.Microsecond {
		t.Fatalf("unclamped rto = %v, want >= srtt", got)
	}
}

// buildLoop wires a single-flow connection across a default dumbbell and
// returns everything a test needs.
func buildLoop(t *testing.T, alg cc.Algorithm, scfg SenderConfig, rcfg ReceiverConfig) (
	*sim.Engine, *netsim.Dumbbell, *Sender, *Receiver) {
	t.Helper()
	eng := sim.NewEngine()
	d := netsim.NewDumbbell(eng, netsim.DefaultDumbbellConfig(1))
	sHub := NewHub(d.Senders[0])
	rHub := NewHub(d.Receiver)
	snd := NewSender(eng, sHub, 1, d.Receiver.ID(), alg, scfg)
	rcv := NewReceiver(eng, rHub, 1, d.Senders[0].ID(), rcfg)
	return eng, d, snd, rcv
}

func TestSingleFlowTransferCompletes(t *testing.T) {
	eng, _, snd, rcv := buildLoop(t, cc.NewDCTCP(cc.DefaultDCTCPConfig()),
		DefaultSenderConfig(), DefaultReceiverConfig())
	const total = 300 * 1000 // ~205 segments
	var doneAt sim.Time
	snd.SetOnDemandMet(func(now sim.Time) { doneAt = now })
	snd.AddDemand(total)
	eng.Run()

	if !snd.DemandMet() {
		t.Fatal("demand not met")
	}
	if rcv.RcvNxt() != total {
		t.Fatalf("receiver got %d bytes, want %d", rcv.RcvNxt(), total)
	}
	if doneAt == 0 {
		t.Fatal("completion callback did not fire")
	}
	// 300 KB at 10 Gbps is 240 us on the wire; with slow start from 10 MSS
	// and a 30 us RTT the transfer should finish well under 2 ms.
	if doneAt > 2*sim.Millisecond {
		t.Fatalf("transfer took %v, expected well under 2ms", doneAt)
	}
	if snd.Stats().RetransmitPackets != 0 {
		t.Fatalf("unexpected retransmissions: %+v", snd.Stats())
	}
	if snd.InFlight() != 0 {
		t.Fatalf("in-flight = %d after completion", snd.InFlight())
	}
}

func TestSenderRespectsWindow(t *testing.T) {
	// A fixed 2-MSS window must never allow more than 2 MSS in flight.
	alg := cc.NewReno(2 * netsim.MSS)
	eng, _, snd, _ := buildLoop(t, alg, DefaultSenderConfig(), DefaultReceiverConfig())
	// Reno in "congestion avoidance" with a huge ssthresh would grow; force
	// CA small growth by pre-halving. Easier: check only the first burst
	// before any ACK arrives.
	snd.AddDemand(100 * netsim.MSS)
	if snd.InFlight() > 2*netsim.MSS {
		t.Fatalf("in-flight %d exceeds the 2-MSS window before any ACKs", snd.InFlight())
	}
	eng.Run()
	if !snd.DemandMet() {
		t.Fatal("transfer stalled")
	}
}

func TestRTTMeasuredCloseToBaseRTT(t *testing.T) {
	eng, d, snd, _ := buildLoop(t, cc.NewDCTCP(cc.DefaultDCTCPConfig()),
		DefaultSenderConfig(), DefaultReceiverConfig())
	snd.AddDemand(10 * netsim.MSS)
	eng.Run()
	base := d.Config.BaseRTT()
	if !snd.est.hasSRTT {
		t.Fatal("no RTT samples taken")
	}
	if snd.est.srtt < base/2 || snd.est.srtt > 2*base {
		t.Fatalf("srtt = %v, base RTT = %v", snd.est.srtt, base)
	}
}

// dropper is a device that forwards packets to a link, dropping selected
// data packets exactly once each.
type dropper struct {
	id   netsim.NodeID
	out  *netsim.Link
	drop map[int64]bool // seq -> should drop (once)
}

func (d *dropper) ID() netsim.NodeID { return d.id }
func (d *dropper) Name() string      { return "dropper" }
func (d *dropper) Receive(p *netsim.Packet) {
	if !p.IsAck && !p.Retransmit && d.drop[p.Seq] {
		delete(d.drop, p.Seq)
		return
	}
	d.out.Send(p)
}

// buildLossyLoop wires sender -> dropper -> receiver with a direct reverse
// path, dropping the data segments whose sequence numbers are given.
func buildLossyLoop(dropSeqs ...int64) (*sim.Engine, *Sender, *Receiver) {
	eng := sim.NewEngine()
	sender := netsim.NewHost(eng, 1, "s")
	receiver := netsim.NewHost(eng, 2, "r")
	drp := &dropper{id: 3, drop: make(map[int64]bool)}
	for _, q := range dropSeqs {
		drp.drop[q] = true
	}
	mk := func(dst netsim.Device) *netsim.Link {
		return netsim.NewLink(eng, netsim.LinkConfig{
			BandwidthBps: 10 * netsim.Gbps,
			PropDelay:    5 * sim.Microsecond,
			Queue:        netsim.NewQueue(netsim.QueueConfig{}),
			Dst:          dst,
		})
	}
	sender.SetUplink(mk(drp))
	drp.out = mk(receiver)
	receiver.SetUplink(mk(sender))

	sHub := NewHub(sender)
	rHub := NewHub(receiver)
	scfg := DefaultSenderConfig()
	scfg.MinRTO = 10 * sim.Millisecond // keep timeout tests fast
	snd := NewSender(eng, sHub, 1, receiver.ID(), cc.NewReno(10*netsim.MSS), scfg)
	rcv := NewReceiver(eng, rHub, 1, sender.ID(), DefaultReceiverConfig())
	return eng, snd, rcv
}

func TestFastRetransmitRecoversSingleLoss(t *testing.T) {
	// Drop the 3rd segment; segments 4..N generate dup ACKs.
	eng, snd, rcv := buildLossyLoop(2 * netsim.MSS)
	const total = 20 * netsim.MSS
	snd.AddDemand(total)
	eng.Run()
	if rcv.RcvNxt() != total {
		t.Fatalf("receiver got %d, want %d", rcv.RcvNxt(), total)
	}
	st := snd.Stats()
	if st.FastRetransmits != 1 {
		t.Fatalf("fast retransmits = %d, want 1 (stats %+v)", st.FastRetransmits, st)
	}
	if st.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0: loss should be repaired by dup ACKs", st.Timeouts)
	}
	if st.RetransmitPackets != 1 {
		t.Fatalf("retransmit packets = %d, want exactly 1", st.RetransmitPackets)
	}
}

func TestNewRenoPartialAckRecoversMultipleLosses(t *testing.T) {
	// Drop two separate segments in one window: recovery proceeds via a
	// partial-ACK retransmission without waiting for a timeout.
	eng, snd, rcv := buildLossyLoop(2*netsim.MSS, 5*netsim.MSS)
	const total = 30 * netsim.MSS
	snd.AddDemand(total)
	eng.Run()
	if rcv.RcvNxt() != total {
		t.Fatalf("receiver got %d, want %d", rcv.RcvNxt(), total)
	}
	st := snd.Stats()
	if st.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0 (stats %+v)", st.Timeouts, st)
	}
	if st.RetransmitPackets != 2 {
		t.Fatalf("retransmits = %d, want 2", st.RetransmitPackets)
	}
}

func TestTimeoutRecoversTailLoss(t *testing.T) {
	// Drop the very last segment: no subsequent data means no dup ACKs, so
	// only the RTO can repair it.
	const total = 10 * netsim.MSS
	eng, snd, rcv := buildLossyLoop(int64(total - netsim.MSS))
	snd.AddDemand(total)
	eng.Run()
	if rcv.RcvNxt() != total {
		t.Fatalf("receiver got %d, want %d", rcv.RcvNxt(), total)
	}
	st := snd.Stats()
	if st.Timeouts < 1 {
		t.Fatalf("timeouts = %d, want >= 1", st.Timeouts)
	}
	if st.FastRetransmits != 0 {
		t.Fatalf("fast retransmits = %d, want 0", st.FastRetransmits)
	}
}

func TestTimeoutCollapsesWindowToOneMSS(t *testing.T) {
	const total = 10 * netsim.MSS
	eng, snd, _ := buildLossyLoop(int64(total - netsim.MSS))
	snd.AddDemand(total)
	rec := &recordingAlg{Algorithm: snd.Algorithm()}
	snd.alg = rec
	eng.Run()
	if len(rec.windowsAfterTimeout) == 0 {
		t.Fatal("no timeout occurred")
	}
	if rec.windowsAfterTimeout[0] != netsim.MSS {
		t.Fatalf("window after timeout = %d, want 1 MSS", rec.windowsAfterTimeout[0])
	}
}

// recordingAlg wraps an Algorithm and records the window right after each
// timeout reaction.
type recordingAlg struct {
	cc.Algorithm
	windowsAfterTimeout []int
}

func (r *recordingAlg) OnTimeout(now sim.Time) {
	r.Algorithm.OnTimeout(now)
	r.windowsAfterTimeout = append(r.windowsAfterTimeout, r.Window())
}

func TestECEFeedbackReachesCCA(t *testing.T) {
	// 30 flows with IW 10 into the 1333-packet bottleneck: queue exceeds
	// K=65, so some ACKs must carry ECE and DCTCP windows must shrink.
	eng := sim.NewEngine()
	d := netsim.NewDumbbell(eng, netsim.DefaultDumbbellConfig(30))
	rHub := NewHub(d.Receiver)
	var senders []*Sender
	for i, h := range d.Senders {
		flow := netsim.FlowID(i + 1)
		sHub := NewHub(h)
		snd := NewSender(eng, sHub, flow, d.Receiver.ID(),
			cc.NewDCTCP(cc.DefaultDCTCPConfig()), DefaultSenderConfig())
		NewReceiver(eng, rHub, flow, h.ID(), DefaultReceiverConfig())
		snd.AddDemand(100 * netsim.MSS)
		senders = append(senders, snd)
	}
	eng.Run()
	var ece int64
	for _, s := range senders {
		if !s.DemandMet() {
			t.Fatal("a flow stalled")
		}
		ece += s.Stats().ECEAcks
	}
	if ece == 0 {
		t.Fatal("no ECE echoes observed during a 30-flow incast")
	}
}

func TestReceiverReassemblyOutOfOrder(t *testing.T) {
	eng := sim.NewEngine()
	host := netsim.NewHost(eng, 2, "r")
	// The receiver sends ACKs out the host uplink; give it a sink.
	var acks []*netsim.Packet
	snk := &ackSink{id: 1}
	host.SetUplink(netsim.NewLink(eng, netsim.LinkConfig{
		BandwidthBps: netsim.Gbps,
		Queue:        netsim.NewQueue(netsim.QueueConfig{}),
		Dst:          snk,
	}))
	hub := NewHub(host)
	rcv := NewReceiver(eng, hub, 1, 1, DefaultReceiverConfig())

	seg := func(seq int64) *netsim.Packet {
		return &netsim.Packet{Flow: 1, Src: 1, Dst: 2, Seq: seq, Len: 100}
	}
	// Deliver 0, then 200 (gap), then 100 (fills the gap), then a duplicate.
	host.Receive(seg(0))
	host.Receive(seg(200))
	if rcv.RcvNxt() != 100 {
		t.Fatalf("rcvNxt = %d, want 100 (gap)", rcv.RcvNxt())
	}
	host.Receive(seg(100))
	if rcv.RcvNxt() != 300 {
		t.Fatalf("rcvNxt = %d, want 300 after gap fill", rcv.RcvNxt())
	}
	host.Receive(seg(0))
	if rcv.RcvNxt() != 300 {
		t.Fatalf("rcvNxt = %d, duplicate moved the cursor", rcv.RcvNxt())
	}
	eng.Run()
	acks = snk.acks
	if len(acks) != 4 {
		t.Fatalf("acks = %d, want 4 (one per data packet)", len(acks))
	}
	// The second ACK is a duplicate (AckNo still 100).
	if acks[1].AckNo != 100 || acks[2].AckNo != 300 {
		t.Fatalf("ack numbers: %d, %d", acks[1].AckNo, acks[2].AckNo)
	}
}

type ackSink struct {
	id   netsim.NodeID
	acks []*netsim.Packet
}

func (a *ackSink) ID() netsim.NodeID { return a.id }
func (a *ackSink) Name() string      { return "acksink" }
func (a *ackSink) Receive(p *netsim.Packet) {
	a.acks = append(a.acks, p)
}

func TestReceiverKarnRule(t *testing.T) {
	eng := sim.NewEngine()
	host := netsim.NewHost(eng, 2, "r")
	snk := &ackSink{id: 1}
	host.SetUplink(netsim.NewLink(eng, netsim.LinkConfig{
		BandwidthBps: netsim.Gbps,
		Queue:        netsim.NewQueue(netsim.QueueConfig{}),
		Dst:          snk,
	}))
	hub := NewHub(host)
	NewReceiver(eng, hub, 1, 1, DefaultReceiverConfig())
	host.Receive(&netsim.Packet{Flow: 1, Dst: 2, Seq: 0, Len: 10, Retransmit: true, SentAt: 42})
	eng.Run()
	if len(snk.acks) != 1 || snk.acks[0].EchoSentAt != -1 {
		t.Fatalf("retransmitted data must not carry an RTT echo: %+v", snk.acks)
	}
}

func TestDelayedAckCoalescing(t *testing.T) {
	eng := sim.NewEngine()
	host := netsim.NewHost(eng, 2, "r")
	snk := &ackSink{id: 1}
	host.SetUplink(netsim.NewLink(eng, netsim.LinkConfig{
		BandwidthBps: netsim.Gbps,
		Queue:        netsim.NewQueue(netsim.QueueConfig{}),
		Dst:          snk,
	}))
	hub := NewHub(host)
	cfg := ReceiverConfig{DelayedAcks: true, AckEvery: 2, AckTimeout: sim.Millisecond}
	NewReceiver(eng, hub, 1, 1, cfg)

	// Four unmarked packets delivered together coalesce into two ACKs.
	for i := int64(0); i < 4; i++ {
		p := &netsim.Packet{Flow: 1, Dst: 2, Seq: i * 100, Len: 100}
		eng.At(sim.Time(i), func() { host.Receive(p) })
	}
	eng.RunUntil(100 * sim.Microsecond)
	if len(snk.acks) != 2 {
		t.Fatalf("acks = %d, want 2 with AckEvery=2", len(snk.acks))
	}
}

func TestDelayedAckCEStateChangeForcesAck(t *testing.T) {
	eng := sim.NewEngine()
	host := netsim.NewHost(eng, 2, "r")
	snk := &ackSink{id: 1}
	host.SetUplink(netsim.NewLink(eng, netsim.LinkConfig{
		BandwidthBps: netsim.Gbps,
		Queue:        netsim.NewQueue(netsim.QueueConfig{}),
		Dst:          snk,
	}))
	hub := NewHub(host)
	cfg := ReceiverConfig{DelayedAcks: true, AckEvery: 100, AckTimeout: sim.Second}
	NewReceiver(eng, hub, 1, 1, cfg)

	// One unmarked packet, then a CE-marked one: the state change must
	// flush an ACK with ECE=false immediately.
	eng.At(0, func() { host.Receive(&netsim.Packet{Flow: 1, Dst: 2, Seq: 0, Len: 100}) })
	eng.At(1, func() { host.Receive(&netsim.Packet{Flow: 1, Dst: 2, Seq: 100, Len: 100, CE: true}) })
	eng.RunUntil(10 * sim.Microsecond)
	if len(snk.acks) != 1 {
		t.Fatalf("acks = %d, want 1 forced by CE state change", len(snk.acks))
	}
	if snk.acks[0].ECE {
		t.Fatal("flushed ACK must reflect the pre-change CE state (false)")
	}
}

func TestDelayedAckTimeoutFlushes(t *testing.T) {
	eng := sim.NewEngine()
	host := netsim.NewHost(eng, 2, "r")
	snk := &ackSink{id: 1}
	host.SetUplink(netsim.NewLink(eng, netsim.LinkConfig{
		BandwidthBps: netsim.Gbps,
		Queue:        netsim.NewQueue(netsim.QueueConfig{}),
		Dst:          snk,
	}))
	hub := NewHub(host)
	cfg := ReceiverConfig{DelayedAcks: true, AckEvery: 2, AckTimeout: 100 * sim.Microsecond}
	NewReceiver(eng, hub, 1, 1, cfg)
	eng.At(0, func() { host.Receive(&netsim.Packet{Flow: 1, Dst: 2, Seq: 0, Len: 100}) })
	eng.Run()
	if len(snk.acks) != 1 {
		t.Fatalf("acks = %d, want 1 flushed by the delayed-ACK timer", len(snk.acks))
	}
}

func TestAddDemandValidation(t *testing.T) {
	_, _, snd, _ := buildLoop(t, cc.NewReno(netsim.MSS), DefaultSenderConfig(), DefaultReceiverConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("AddDemand(0) did not panic")
		}
	}()
	snd.AddDemand(0)
}

func TestRepeatedDemandNotifications(t *testing.T) {
	eng, _, snd, _ := buildLoop(t, cc.NewDCTCP(cc.DefaultDCTCPConfig()),
		DefaultSenderConfig(), DefaultReceiverConfig())
	var dones []sim.Time
	snd.SetOnDemandMet(func(now sim.Time) { dones = append(dones, now) })
	snd.AddDemand(10 * netsim.MSS)
	eng.Run()
	snd.AddDemand(10 * netsim.MSS) // second burst on the persistent connection
	eng.Run()
	if len(dones) != 2 {
		t.Fatalf("completion notifications = %d, want 2", len(dones))
	}
	if dones[1] <= dones[0] {
		t.Fatal("second completion should be later")
	}
}

func TestHubIgnoresUnknownFlow(t *testing.T) {
	eng := sim.NewEngine()
	host := netsim.NewHost(eng, 1, "h")
	hub := NewHub(host)
	// Must not panic.
	hub.HandlePacket(&netsim.Packet{Flow: 99})
}

// BenchmarkSenderBurst measures the full sender->receiver->ACK round trip
// for repeated 64 KB bursts over the dumbbell: the packet-pool and
// re-armable-timer hot path.
func BenchmarkSenderBurst(b *testing.B) {
	eng := sim.NewEngine()
	d := netsim.NewDumbbell(eng, netsim.DefaultDumbbellConfig(1))
	sHub := NewHub(d.Senders[0])
	rHub := NewHub(d.Receiver)
	snd := NewSender(eng, sHub, 1, d.Receiver.ID(),
		cc.NewDCTCP(cc.DefaultDCTCPConfig()), DefaultSenderConfig())
	NewReceiver(eng, rHub, 1, d.Senders[0].ID(), DefaultReceiverConfig())

	const burstBytes = 64 * 1000
	b.ReportAllocs()
	b.SetBytes(burstBytes)
	for i := 0; i < b.N; i++ {
		snd.AddDemand(burstBytes)
		eng.Run()
	}
	if !snd.DemandMet() {
		b.Fatal("demand not met")
	}
}
