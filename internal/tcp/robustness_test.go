package tcp

import (
	"testing"
	"testing/quick"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// buildImpairedLoop wires sender -> impairment -> receiver with a clean
// reverse path, for loss-robustness tests.
func buildImpairedLoop(dropProb float64, extraDelay sim.Time, seed uint64,
	scfg SenderConfig) (*sim.Engine, *Sender, *Receiver) {
	eng := sim.NewEngine()
	sender := netsim.NewHost(eng, 1, "s")
	receiver := netsim.NewHost(eng, 2, "r")
	mk := func(dst netsim.Device) *netsim.Link {
		return netsim.NewLink(eng, netsim.LinkConfig{
			BandwidthBps: 10 * netsim.Gbps,
			PropDelay:    5 * sim.Microsecond,
			Queue:        netsim.NewQueue(netsim.QueueConfig{}),
			Dst:          dst,
		})
	}
	im := netsim.NewImpairment(eng, 3, receiver, netsim.ImpairmentConfig{
		DropProbability: dropProb,
		MaxExtraDelay:   extraDelay,
		Seed:            seed,
	})
	sender.SetUplink(mk(im))
	receiver.SetUplink(mk(sender))

	sHub := NewHub(sender)
	rHub := NewHub(receiver)
	snd := NewSender(eng, sHub, 1, receiver.ID(), cc.NewReno(10*netsim.MSS), scfg)
	rcv := NewReceiver(eng, rHub, 1, sender.ID(), DefaultReceiverConfig())
	return eng, snd, rcv
}

// TestReliabilityUnderRandomLoss: for arbitrary loss probabilities up to
// 30% and random reordering delay, the transport eventually delivers every
// byte exactly once — the core reliability invariant.
func TestReliabilityUnderRandomLoss(t *testing.T) {
	f := func(seed uint64, dropPct, delayUS uint8) bool {
		drop := float64(dropPct%31) / 100 // 0..0.30
		delay := sim.Time(delayUS%100) * sim.Microsecond
		scfg := DefaultSenderConfig()
		scfg.MinRTO = 5 * sim.Millisecond // keep the property test fast
		eng, snd, rcv := buildImpairedLoop(drop, delay, seed, scfg)
		const total = 40 * netsim.MSS
		snd.AddDemand(total)
		eng.RunUntil(20 * sim.Second)
		return snd.DemandMet() && rcv.RcvNxt() == total && snd.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHeavyLossEventuallyDelivers(t *testing.T) {
	scfg := DefaultSenderConfig()
	scfg.MinRTO = 5 * sim.Millisecond
	eng, snd, rcv := buildImpairedLoop(0.5, 0, 99, scfg)
	const total = 20 * netsim.MSS
	snd.AddDemand(total)
	eng.RunUntil(60 * sim.Second)
	if rcv.RcvNxt() != total {
		t.Fatalf("delivered %d of %d under 50%% loss", rcv.RcvNxt(), total)
	}
	if snd.Stats().RetransmitPackets == 0 {
		t.Fatal("50% loss without retransmissions is impossible")
	}
}

func TestReorderingDoesNotCorruptStream(t *testing.T) {
	// Pure reordering (no loss): spurious dup ACKs may trigger unnecessary
	// retransmissions, but the stream must stay correct.
	eng, snd, rcv := buildImpairedLoop(0, 50*sim.Microsecond, 5, DefaultSenderConfig())
	const total = 100 * netsim.MSS
	snd.AddDemand(total)
	eng.RunUntil(10 * sim.Second)
	if rcv.RcvNxt() != total {
		t.Fatalf("delivered %d of %d under reordering", rcv.RcvNxt(), total)
	}
}

func TestIdleRestartClampsWindow(t *testing.T) {
	eng := sim.NewEngine()
	d := netsim.NewDumbbell(eng, netsim.DefaultDumbbellConfig(1))
	sHub := NewHub(d.Senders[0])
	rHub := NewHub(d.Receiver)
	scfg := DefaultSenderConfig()
	scfg.RestartAfterIdle = true
	alg := cc.NewDCTCP(cc.DefaultDCTCPConfig())
	snd := NewSender(eng, sHub, 1, d.Receiver.ID(), alg, scfg)
	NewReceiver(eng, rHub, 1, d.Senders[0].ID(), DefaultReceiverConfig())

	// Grow the window well past the initial 10 MSS.
	snd.AddDemand(400 * netsim.MSS)
	eng.Run()
	grown := snd.Window()
	if grown <= 10*netsim.MSS {
		t.Fatalf("window did not grow: %d", grown)
	}

	// After an idle period longer than the RTO, new demand restarts.
	eng.RunUntil(eng.Now() + sim.Second)
	eng.At(eng.Now(), func() { snd.AddDemand(netsim.MSS) })
	eng.Run()
	if w := snd.Window(); w > 10*netsim.MSS+netsim.MSS {
		t.Fatalf("window after idle restart = %d, want <= ~10 MSS", w)
	}
}

func TestNoIdleRestartByDefault(t *testing.T) {
	// The paper's configuration: windows persist across idle gaps.
	eng := sim.NewEngine()
	d := netsim.NewDumbbell(eng, netsim.DefaultDumbbellConfig(1))
	sHub := NewHub(d.Senders[0])
	rHub := NewHub(d.Receiver)
	alg := cc.NewDCTCP(cc.DefaultDCTCPConfig())
	snd := NewSender(eng, sHub, 1, d.Receiver.ID(), alg, DefaultSenderConfig())
	NewReceiver(eng, rHub, 1, d.Senders[0].ID(), DefaultReceiverConfig())

	snd.AddDemand(400 * netsim.MSS)
	eng.Run()
	grown := snd.Window()
	eng.RunUntil(eng.Now() + sim.Second)
	eng.At(eng.Now(), func() { snd.AddDemand(netsim.MSS) })
	eng.Run()
	if w := snd.Window(); w < grown {
		t.Fatalf("window shrank across idle without RestartAfterIdle: %d -> %d", grown, w)
	}
}
