package tcp

import (
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// ICTCPConfig tunes the receiver-side incast controller.
type ICTCPConfig struct {
	// LineRateBps is the receiving NIC's rate (the resource being shared).
	LineRateBps int64
	// BaseRTT sizes the control slot (2 x RTT per the ICTCP paper).
	BaseRTT sim.Time
	// MinWindow is the per-connection receive window floor (ICTCP uses
	// 2 MSS).
	MinWindow int64
	// InitialWindow is each managed connection's starting window.
	InitialWindow int64
	// Gamma1 and Gamma2 are the increase/decrease thresholds on the
	// fraction of expected throughput a connection fails to achieve
	// (ICTCP: 0.1 and 0.5).
	Gamma1, Gamma2 float64
	// Headroom is the fraction of line rate ICTCP is willing to allocate
	// before it stops granting increases (ICTCP: 0.9).
	Headroom float64
	// DecreaseAfter is how many consecutive over-provisioned slots trigger
	// a window decrease (ICTCP: 3).
	DecreaseAfter int
}

// DefaultICTCPConfig returns the ICTCP paper's parameters for a NIC.
func DefaultICTCPConfig(lineRateBps int64, baseRTT sim.Time) ICTCPConfig {
	return ICTCPConfig{
		LineRateBps:   lineRateBps,
		BaseRTT:       baseRTT,
		MinWindow:     2 * netsim.MSS,
		InitialWindow: 2 * netsim.MSS,
		Gamma1:        0.1,
		Gamma2:        0.5,
		Headroom:      0.9,
		DecreaseAfter: 3,
	}
}

// ICTCP is a receiver-side incast congestion controller in the spirit of
// Wu et al. (CoNEXT 2010): the receiving host steers each connection's
// advertised receive window so that the sum of expected throughputs stays
// within the NIC's capacity. The paper under reproduction cites ICTCP as
// one of the O(50)-flow designs: because the window cannot drop below
// 2 MSS, N connections pin at least 2N packets in flight, and the scheme
// stops helping once N x 2 MSS exceeds the pipe — the same degenerate
// arithmetic DCTCP hits one MSS later.
type ICTCP struct {
	eng   *sim.Engine
	cfg   ICTCPConfig
	conns []*ictcpConn

	// slotFn is the control-slot callback, bound once at construction so
	// the periodic rescheduling allocates no closure per slot.
	slotFn func()
}

type ictcpConn struct {
	r        *Receiver
	wnd      int64
	lastRcv  int64
	overCnt  int
	measured float64 // bytes delivered in the last slot
}

// NewICTCP creates the controller and starts its control loop on eng.
func NewICTCP(eng *sim.Engine, cfg ICTCPConfig) *ICTCP {
	if cfg.LineRateBps <= 0 || cfg.BaseRTT <= 0 {
		panic("tcp: ictcp needs a line rate and base RTT")
	}
	if cfg.MinWindow < netsim.MSS {
		cfg.MinWindow = netsim.MSS
	}
	if cfg.InitialWindow < cfg.MinWindow {
		cfg.InitialWindow = cfg.MinWindow
	}
	if cfg.Gamma1 <= 0 || cfg.Gamma2 <= cfg.Gamma1 {
		panic("tcp: ictcp thresholds must satisfy 0 < gamma1 < gamma2")
	}
	if cfg.Headroom <= 0 || cfg.Headroom > 1 {
		panic("tcp: ictcp headroom must be in (0,1]")
	}
	if cfg.DecreaseAfter <= 0 {
		cfg.DecreaseAfter = 3
	}
	c := &ICTCP{eng: eng, cfg: cfg}
	c.slotFn = func() {
		c.adjust()
		c.scheduleSlot()
	}
	c.scheduleSlot()
	return c
}

// Manage registers a connection's receiver under the controller and sets
// its initial advertised window.
func (c *ICTCP) Manage(r *Receiver) {
	conn := &ictcpConn{r: r, wnd: c.cfg.InitialWindow, lastRcv: r.RcvNxt()}
	r.SetAdvertisedWindow(conn.wnd)
	c.conns = append(c.conns, conn)
}

// Window returns the current advertised window of managed connection i,
// for instrumentation.
func (c *ICTCP) Window(i int) int64 { return c.conns[i].wnd }

// slot length is 2 x RTT, the ICTCP control interval.
func (c *ICTCP) slot() sim.Time { return 2 * c.cfg.BaseRTT }

func (c *ICTCP) scheduleSlot() {
	c.eng.ScheduleAfter(c.slot(), c.slotFn)
}

// adjust runs one control slot: measure per-connection goodput, compute
// available bandwidth, and steer windows.
func (c *ICTCP) adjust() {
	slotSec := c.slot().Seconds()
	var totalBps float64
	for _, conn := range c.conns {
		delivered := conn.r.RcvNxt() - conn.lastRcv
		conn.lastRcv = conn.r.RcvNxt()
		conn.measured = float64(delivered)
		totalBps += float64(delivered) * 8 / slotSec
	}
	// Available bandwidth after headroom.
	availBps := c.cfg.Headroom*float64(c.cfg.LineRateBps) - totalBps
	rttSec := c.cfg.BaseRTT.Seconds()

	byteRate := float64(c.cfg.LineRateBps) / 8
	for _, conn := range c.conns {
		measuredBps := conn.measured * 8 / slotSec
		// Expected throughput of a window-limited connection over an
		// otherwise empty path: the window turns around once per RTT plus
		// its own serialization time at the line rate.
		turnaround := rttSec + float64(conn.wnd)/byteRate
		expectedBps := float64(conn.wnd) * 8 / turnaround
		if expectedBps <= 0 {
			continue
		}
		diff := (expectedBps - measuredBps) / expectedBps
		switch {
		case diff <= c.cfg.Gamma1:
			// The connection uses what it is given; grant more if the NIC
			// has spare capacity for the increment.
			incBps := float64(netsim.MSS) * 8 / rttSec
			if availBps >= incBps {
				conn.wnd += netsim.MSS
				conn.r.SetAdvertisedWindow(conn.wnd)
				availBps -= incBps
			}
			conn.overCnt = 0
		case diff >= c.cfg.Gamma2:
			// Persistently over-provisioned: shrink after DecreaseAfter
			// consecutive slots.
			conn.overCnt++
			if conn.overCnt >= c.cfg.DecreaseAfter {
				conn.overCnt = 0
				if conn.wnd-netsim.MSS >= c.cfg.MinWindow {
					conn.wnd -= netsim.MSS
					conn.r.SetAdvertisedWindow(conn.wnd)
				}
			}
		default:
			conn.overCnt = 0
		}
	}
}
