package tcp

import (
	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// SenderConfig tunes a Sender.
type SenderConfig struct {
	// MSS is the maximum segment size in bytes (default netsim.MSS).
	MSS int
	// MinRTO is the lower bound on the retransmission timeout. The default
	// 200 ms (the Linux default) is what makes the paper's Mode 3 burst
	// completion time land near 200 ms.
	MinRTO sim.Time
	// MaxRTO caps exponential RTO backoff (default 2 s).
	MaxRTO sim.Time
	// DupAckThreshold triggers fast retransmit (default 3).
	DupAckThreshold int
	// RestartAfterIdle applies RFC 2861-style congestion window validation:
	// when new demand arrives after the connection has been idle longer
	// than the current RTO, the window restarts from the initial window
	// (if the algorithm implements cc.IdleRestarter). The paper's
	// persistent connections do not restart, which is what lets straggler
	// windows survive between bursts (Section 4.3).
	RestartAfterIdle bool
}

// DefaultSenderConfig returns the defaults described above.
func DefaultSenderConfig() SenderConfig {
	return SenderConfig{
		MSS:             netsim.MSS,
		MinRTO:          200 * sim.Millisecond,
		MaxRTO:          2 * sim.Second,
		DupAckThreshold: 3,
	}
}

func (c *SenderConfig) fillDefaults() {
	d := DefaultSenderConfig()
	if c.MSS <= 0 {
		c.MSS = d.MSS
	}
	if c.MinRTO <= 0 {
		c.MinRTO = d.MinRTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = d.MaxRTO
	}
	if c.DupAckThreshold <= 0 {
		c.DupAckThreshold = d.DupAckThreshold
	}
}

// SenderStats counts transport events on one connection.
type SenderStats struct {
	// SentPackets and SentBytes include retransmissions.
	SentPackets int64
	SentBytes   int64
	// RetransmitPackets and RetransmitBytes count retransmissions only.
	RetransmitPackets int64
	RetransmitBytes   int64
	// FastRetransmits counts triple-dup-ACK recovery episodes.
	FastRetransmits int64
	// Timeouts counts RTO firings.
	Timeouts int64
	// ECEAcks counts ACKs that carried the ECN echo.
	ECEAcks int64
	// Acks counts cumulative ACKs that advanced snd.una.
	Acks int64
	// IncastNotifies counts switch-originated explicit incast
	// notifications delivered to this sender (whether or not the
	// congestion-control algorithm reacted to them).
	IncastNotifies int64
}

// Sender is the sending side of one connection: it transmits application
// demand as MSS-sized segments under the congestion window, and recovers
// losses via fast retransmit and timeouts.
type Sender struct {
	eng  *sim.Engine
	host *netsim.Host
	flow netsim.FlowID
	dst  netsim.NodeID
	alg  cc.Algorithm
	cfg  SenderConfig

	sndUna int64 // oldest unacknowledged byte
	sndNxt int64 // next byte to send
	demand int64 // cumulative bytes the application asked to send

	// highWater is the highest sndNxt ever reached; bytes below it that are
	// sent again are retransmissions.
	highWater int64

	dupAcks    int
	inRecovery bool
	recover    int64 // recovery ends when sndUna passes this point

	est        rttEstimator
	rto        sim.Time
	rtoBackoff int
	rtoTimer   sim.Timer
	rtoFn      func() // prebuilt s.onRTO, so re-arming allocates nothing

	// Pacing state: earliest time the next segment may leave.
	nextSendAt sim.Time
	paceTimer  sim.Timer
	paceFn     func() // prebuilt s.trySend

	stats SenderStats

	// onDemandMet fires when all requested bytes are acknowledged;
	// notifiedUpTo prevents duplicate notifications for the same level.
	onDemandMet  func(now sim.Time)
	notifiedUpTo int64

	// lastActive is the time of the last send or ACK, for idle restarts.
	lastActive sim.Time

	// peerWnd is the most recent advertised receive window (0 = none).
	peerWnd int64
}

// NewSender creates a sender for flow, registered on the hub of its host,
// addressing data to dst. The congestion-control algorithm is owned by the
// sender from here on.
func NewSender(eng *sim.Engine, hub *Hub, flow netsim.FlowID, dst netsim.NodeID,
	alg cc.Algorithm, cfg SenderConfig) *Sender {
	cfg.fillDefaults()
	s := &Sender{
		eng:  eng,
		host: hub.Host(),
		flow: flow,
		dst:  dst,
		alg:  alg,
		cfg:  cfg,
	}
	s.rto = cfg.MinRTO
	s.rtoFn = s.onRTO
	s.paceFn = s.trySend
	hub.Register(flow, s)
	return s
}

// Flow returns the sender's flow ID.
func (s *Sender) Flow() netsim.FlowID { return s.flow }

// Algorithm returns the congestion-control algorithm (for instrumentation).
func (s *Sender) Algorithm() cc.Algorithm { return s.alg }

// Stats returns a copy of the sender's counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// InFlight returns the bytes sent but not yet cumulatively acknowledged —
// the per-flow series Figure 7 plots.
func (s *Sender) InFlight() int64 { return s.sndNxt - s.sndUna }

// Window returns the current congestion window in bytes.
func (s *Sender) Window() int { return s.alg.Window() }

// Demand returns the cumulative bytes requested so far.
func (s *Sender) Demand() int64 { return s.demand }

// Acked returns the cumulative bytes acknowledged so far.
func (s *Sender) Acked() int64 { return s.sndUna }

// DemandMet reports whether everything requested has been acknowledged.
func (s *Sender) DemandMet() bool { return s.sndUna >= s.demand }

// SetOnDemandMet installs a callback invoked whenever the connection
// finishes delivering all requested bytes (once per demand level).
func (s *Sender) SetOnDemandMet(fn func(now sim.Time)) { s.onDemandMet = fn }

// AddDemand asks the sender to deliver n more bytes.
func (s *Sender) AddDemand(n int64) {
	if n <= 0 {
		panic("tcp: demand must be positive")
	}
	if s.cfg.RestartAfterIdle && s.sndUna == s.sndNxt {
		if idle := s.eng.Now() - s.lastActive; idle > s.rto {
			if ir, ok := s.alg.(cc.IdleRestarter); ok {
				ir.OnIdleRestart()
			}
		}
	}
	s.demand += n
	s.trySend()
}

// effectiveWindow is the congestion window plus duplicate-ACK allowances:
// limited transmit (RFC 3042) lets the first two dup ACKs release one new
// segment each, and during fast recovery each further dup ACK inflates the
// window by one MSS (classic Reno inflation), since a dup ACK signals a
// packet has left the network.
func (s *Sender) effectiveWindow() int64 {
	w := int64(s.alg.Window())
	if s.dupAcks > 0 {
		if s.inRecovery {
			w += int64(s.dupAcks) * int64(s.cfg.MSS)
		} else {
			lt := s.dupAcks
			if lt > 2 {
				lt = 2
			}
			w += int64(lt) * int64(s.cfg.MSS)
		}
	}
	// Flow control: never exceed the peer's advertised window.
	if s.peerWnd > 0 && w > s.peerWnd {
		w = s.peerWnd
	}
	return w
}

// trySend transmits as many segments as the window (and pacing) allow.
func (s *Sender) trySend() {
	for s.sndNxt < s.demand {
		segLen := int64(s.cfg.MSS)
		if rem := s.demand - s.sndNxt; rem < segLen {
			segLen = rem
		}
		inFlight := s.sndNxt - s.sndUna
		if inFlight > 0 && inFlight+segLen > s.effectiveWindow() {
			return
		}
		if gap := s.alg.PacingGap(); gap > 0 {
			now := s.eng.Now()
			if now < s.nextSendAt {
				s.armPaceTimer()
				return
			}
			s.nextSendAt = now + gap
		}
		s.sendSegment(s.sndNxt, int(segLen), s.sndNxt < s.highWater)
		s.sndNxt += segLen
		if s.sndNxt > s.highWater {
			s.highWater = s.sndNxt
		}
	}
}

// armPaceTimer schedules a send attempt at the pacing release time.
func (s *Sender) armPaceTimer() {
	if s.paceTimer.Active() && s.paceTimer.When() <= s.nextSendAt {
		return
	}
	s.eng.ResetAt(&s.paceTimer, s.nextSendAt, s.paceFn)
}

// sendSegment emits one data segment and manages the RTO timer.
func (s *Sender) sendSegment(seq int64, segLen int, retransmit bool) {
	p := s.host.AllocPacket()
	p.Flow = s.flow
	p.Src = s.host.ID()
	p.Dst = s.dst
	p.Seq = seq
	p.Len = segLen
	p.ECT = true
	p.Retransmit = retransmit
	p.SentAt = s.eng.Now()
	s.stats.SentPackets++
	s.stats.SentBytes += int64(segLen)
	if retransmit {
		s.stats.RetransmitPackets++
		s.stats.RetransmitBytes += int64(segLen)
	}
	s.host.Send(p)
	s.lastActive = s.eng.Now()
	if !s.rtoTimer.Active() {
		s.armRTO()
	}
}

// armRTO (re)schedules the retransmission timer rto from now.
func (s *Sender) armRTO() {
	s.eng.ResetAfter(&s.rtoTimer, s.rto, s.rtoFn)
}

// onRTO handles a retransmission timeout: collapse the window, rewind to
// the oldest unacknowledged byte (go-back-N), and back off the timer.
func (s *Sender) onRTO() {
	if s.sndUna >= s.sndNxt {
		return // everything got acknowledged in the meantime
	}
	s.stats.Timeouts++
	s.alg.OnTimeout(s.eng.Now())
	s.inRecovery = false
	s.dupAcks = 0
	s.sndNxt = s.sndUna
	s.rtoBackoff++
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.trySend()
}

// retransmitHead resends the segment at snd.una.
func (s *Sender) retransmitHead() {
	segLen := int64(s.cfg.MSS)
	if rem := s.demand - s.sndUna; rem < segLen {
		segLen = rem
	}
	if segLen <= 0 {
		return
	}
	s.sendSegment(s.sndUna, int(segLen), true)
	s.armRTO()
}

// HandlePacket implements netsim.PacketHandler: the sender consumes ACKs.
func (s *Sender) HandlePacket(p *netsim.Packet) {
	if p.IncastNotify {
		// Switch-originated explicit incast notification: hand it to the
		// algorithm out of band from the ACK clock. A shrinking window
		// never unblocks transmission, so there is nothing to (re)send.
		s.stats.IncastNotifies++
		if n, ok := s.alg.(cc.IncastNotifiable); ok {
			n.OnIncastNotification(s.eng.Now())
		}
		return
	}
	if !p.IsAck {
		return
	}
	now := s.eng.Now()
	if p.ECE {
		s.stats.ECEAcks++
	}
	if p.Wnd > 0 {
		s.peerWnd = p.Wnd
	}

	switch {
	case p.AckNo > s.sndUna:
		s.lastActive = now
		bytesAcked := p.AckNo - s.sndUna
		s.sndUna = p.AckNo
		if s.sndUna > s.sndNxt {
			// Should not happen; keep state consistent regardless.
			s.sndNxt = s.sndUna
		}
		s.dupAcks = 0
		s.stats.Acks++

		var rtt sim.Time
		if p.EchoSentAt >= 0 {
			rtt = now - p.EchoSentAt
			s.est.sample(rtt)
			s.rtoBackoff = 0
			s.rto = s.est.rto(s.cfg.MinRTO, s.cfg.MaxRTO)
		}

		if s.inRecovery {
			if s.sndUna >= s.recover {
				s.inRecovery = false
			} else {
				// Partial ACK: the next segment is lost too (NewReno).
				s.retransmitHead()
			}
		}

		s.alg.OnAck(cc.Ack{
			Now:        now,
			BytesAcked: int(bytesAcked),
			AckNo:      p.AckNo,
			SndNxt:     s.sndNxt,
			ECE:        p.ECE,
			RTT:        rtt,
		})

		if s.sndUna >= s.sndNxt {
			s.rtoTimer.Stop()
		} else {
			s.armRTO()
		}
		s.maybeNotifyDemandMet(now)
		s.trySend()

	case p.AckNo == s.sndUna && s.sndNxt > s.sndUna:
		// Duplicate ACK.
		s.dupAcks++
		if s.dupAcks == s.cfg.DupAckThreshold && !s.inRecovery {
			s.inRecovery = true
			s.recover = s.sndNxt
			s.stats.FastRetransmits++
			s.alg.OnLoss(now)
			s.retransmitHead()
		}
		// Limited transmit before recovery, window inflation during it.
		s.trySend()
	}
}

// maybeNotifyDemandMet fires the completion callback once per demand level.
func (s *Sender) maybeNotifyDemandMet(now sim.Time) {
	if s.onDemandMet == nil || s.demand == 0 {
		return
	}
	if s.sndUna >= s.demand && s.demand > s.notifiedUpTo {
		s.notifiedUpTo = s.demand
		s.onDemandMet(now)
	}
}
