package tcp

import (
	"testing"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

func TestAdvertisedWindowLimitsSender(t *testing.T) {
	eng, _, snd, rcv := buildLoopFor(t, cc.NewReno(100*netsim.MSS))
	rcv.SetAdvertisedWindow(2 * netsim.MSS)
	snd.AddDemand(50 * netsim.MSS)
	// Before any ACK returns, the sender is window-limited by cwnd only
	// (100 MSS) — it has not yet learned the peer's window — so cap the
	// first flight by checking after the first RTT.
	eng.RunUntil(5 * sim.Millisecond)
	// After the advertisement arrives, in-flight never exceeds 2 MSS.
	maxSeen := int64(0)
	for i := 0; i < 200; i++ {
		eng.RunUntil(eng.Now() + 50*sim.Microsecond)
		if f := snd.InFlight(); f > maxSeen && eng.Now() > 5*sim.Millisecond {
			maxSeen = f
		}
	}
	eng.Run()
	if maxSeen > 2*netsim.MSS {
		t.Fatalf("in-flight %d exceeded the 2-MSS advertised window", maxSeen)
	}
	if !snd.DemandMet() {
		t.Fatal("transfer stalled under flow control")
	}
}

// buildLoopFor is buildLoop with an explicit algorithm (helper for this
// file; buildLoop lives in tcp_test.go).
func buildLoopFor(t *testing.T, alg cc.Algorithm) (*sim.Engine, *netsim.Dumbbell, *Sender, *Receiver) {
	t.Helper()
	return buildLoop(t, alg, DefaultSenderConfig(), DefaultReceiverConfig())
}

func TestICTCPConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	mustPanic := func(name string, cfg ICTCPConfig) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		NewICTCP(eng, cfg)
	}
	base := DefaultICTCPConfig(10*netsim.Gbps, 30*sim.Microsecond)
	bad := base
	bad.LineRateBps = 0
	mustPanic("no rate", bad)
	bad = base
	bad.Gamma2 = bad.Gamma1
	mustPanic("gamma order", bad)
	bad = base
	bad.Headroom = 0
	mustPanic("headroom", bad)
}

// ictcpLoop builds an n-flow incast with Reno senders managed by an ICTCP
// receiver, returns after running demand through it.
func ictcpLoop(t *testing.T, n int, perFlow int64, useICTCP bool) (*netsim.Dumbbell, []*Sender) {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.DefaultDumbbellConfig(n)
	d := netsim.NewDumbbell(eng, net)
	rHub := NewHub(d.Receiver)
	var ctrl *ICTCP
	if useICTCP {
		ctrl = NewICTCP(eng, DefaultICTCPConfig(net.HostLinkBps, net.BaseRTT()))
	}
	senders := make([]*Sender, n)
	for i := 0; i < n; i++ {
		flow := netsim.FlowID(i + 1)
		sHub := NewHub(d.Senders[i])
		senders[i] = NewSender(eng, sHub, flow, d.Receiver.ID(),
			cc.NewReno(10*netsim.MSS), DefaultSenderConfig())
		rcv := NewReceiver(eng, rHub, flow, d.Senders[i].ID(), DefaultReceiverConfig())
		if ctrl != nil {
			ctrl.Manage(rcv)
		}
		senders[i].AddDemand(perFlow)
	}
	eng.RunUntil(30 * sim.Second)
	for i, s := range senders {
		if !s.DemandMet() {
			t.Fatalf("flow %d stalled (ictcp=%v)", i, useICTCP)
		}
	}
	return d, senders
}

func TestICTCPTamesModerateIncast(t *testing.T) {
	// 40 Reno flows, ~40 segments each: unmanaged Reno overruns the queue
	// and drops; ICTCP's receiver windows keep the incast lossless.
	const n, perFlow = 40, 200 * netsim.MSS
	plain, _ := ictcpLoop(t, n, perFlow, false)
	managed, _ := ictcpLoop(t, n, perFlow, true)

	plainDrops := plain.BottleneckQueue().Stats().DroppedPackets +
		plain.Uplink.Queue().Stats().DroppedPackets
	managedDrops := managed.BottleneckQueue().Stats().DroppedPackets +
		managed.Uplink.Queue().Stats().DroppedPackets
	if plainDrops == 0 {
		t.Fatal("baseline Reno incast should drop (otherwise the test is vacuous)")
	}
	if managedDrops >= plainDrops {
		t.Fatalf("ICTCP drops %d >= plain %d; receiver windows should help", managedDrops, plainDrops)
	}
	if managedPeak := managed.BottleneckQueue().Stats().PeakPackets; managedPeak > 400 {
		t.Fatalf("ICTCP peak queue %d, want a controlled queue", managedPeak)
	}
}

func TestICTCPMinWindowFloorAtScale(t *testing.T) {
	// The paper's point about O(50)-flow designs: at 400 flows, ICTCP's
	// 2-MSS floor pins >= 800 packets in flight, so the queue cannot be
	// kept small no matter what the controller does.
	const n = 400
	managed, _ := ictcpLoop(t, n, 6*netsim.MSS, true)
	peak := managed.BottleneckQueue().Stats().PeakPackets
	if peak < 400 {
		t.Fatalf("peak queue %d; the 2-MSS floor should force a deep queue at %d flows", peak, n)
	}
}

func TestICTCPWindowsRespondToDemand(t *testing.T) {
	// A single managed bulk flow should be granted window increases well
	// beyond the 2-MSS initial value.
	eng := sim.NewEngine()
	net := netsim.DefaultDumbbellConfig(1)
	d := netsim.NewDumbbell(eng, net)
	rHub := NewHub(d.Receiver)
	ctrl := NewICTCP(eng, DefaultICTCPConfig(net.HostLinkBps, net.BaseRTT()))
	sHub := NewHub(d.Senders[0])
	snd := NewSender(eng, sHub, 1, d.Receiver.ID(), cc.NewReno(10*netsim.MSS), DefaultSenderConfig())
	rcv := NewReceiver(eng, rHub, 1, d.Senders[0].ID(), DefaultReceiverConfig())
	ctrl.Manage(rcv)
	// Enough demand to stay busy well past the check point (43.8 MB is
	// ~35 ms at line rate).
	snd.AddDemand(30000 * netsim.MSS)
	eng.RunUntil(20 * sim.Millisecond)
	if w := ctrl.Window(0); w <= 4*netsim.MSS {
		t.Fatalf("window %d after sustained demand, want growth beyond 4 MSS", w)
	}
	if !snd.DemandMet() {
		eng.RunUntil(eng.Now() + sim.Second)
	}
	if !snd.DemandMet() {
		t.Fatal("bulk transfer under ICTCP stalled")
	}
}
