package tcp

import (
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// ReceiverConfig tunes a Receiver.
type ReceiverConfig struct {
	// DelayedAcks enables ACK coalescing with the DCTCP receiver state
	// machine. The paper disables delayed ACKs in all Section 4
	// simulations "because it exacerbates burstiness and masks the impact
	// of DCTCP's congestion control algorithm"; the option exists for the
	// delayed-ACK ablation.
	DelayedAcks bool
	// AckEvery is the coalescing factor when DelayedAcks is on (default 2).
	AckEvery int
	// AckTimeout bounds how long an ACK may be withheld (default 500 us).
	AckTimeout sim.Time
}

// DefaultReceiverConfig returns the paper's configuration: immediate ACKs.
func DefaultReceiverConfig() ReceiverConfig {
	return ReceiverConfig{DelayedAcks: false, AckEvery: 2, AckTimeout: 500 * sim.Microsecond}
}

// Receiver is the receiving side of one connection: it reassembles the byte
// stream, generates cumulative ACKs, and echoes congestion marks. In
// immediate-ACK mode every data packet triggers an ACK whose ECE equals the
// packet's CE bit. In delayed-ACK mode the DCTCP receiver state machine is
// used: ACKs coalesce up to AckEvery packets but an ACK is forced whenever
// the CE state of arriving packets changes, so the marking fraction remains
// accurately conveyed.
type Receiver struct {
	eng  *sim.Engine
	host *netsim.Host
	flow netsim.FlowID
	src  netsim.NodeID
	cfg  ReceiverConfig

	rcvNxt int64
	// ooo buffers out-of-order segments: seq -> length.
	ooo map[int64]int

	// Delayed-ACK state.
	pending     int      // data packets not yet acknowledged
	ceState     bool     // CE value of the packets covered by pending ACK
	pendingEcho sim.Time // echo timestamp for the pending ACK
	ackTimer    sim.Timer
	flushFn     func() // prebuilt r.flushAck, so re-arming allocates nothing

	// Statistics.
	dataPackets int64
	dataBytes   int64
	cePackets   int64
	acksSent    int64

	// onProgress, if set, observes every advance of the in-order cursor;
	// application layers use it to detect response completion.
	onProgress func(rcvNxt int64)

	// advertisedWnd, when positive, is carried on every ACK as the flow
	// control window; receiver-driven schemes (ICTCP) steer it.
	advertisedWnd int64
}

// NewReceiver creates a receiver for flow, registered on the hub of its
// host, sending ACKs back to src.
func NewReceiver(eng *sim.Engine, hub *Hub, flow netsim.FlowID, src netsim.NodeID,
	cfg ReceiverConfig) *Receiver {
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 2
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 500 * sim.Microsecond
	}
	r := &Receiver{
		eng:  eng,
		host: hub.Host(),
		flow: flow,
		src:  src,
		cfg:  cfg,
		ooo:  make(map[int64]int),
	}
	r.flushFn = r.flushAck
	hub.Register(flow, r)
	return r
}

// RcvNxt returns the next expected sequence number (bytes received in
// order so far).
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// SetOnProgress installs a callback invoked whenever in-order delivery
// advances, with the new cursor (nil to remove).
func (r *Receiver) SetOnProgress(fn func(rcvNxt int64)) { r.onProgress = fn }

// SetAdvertisedWindow sets the flow-control window carried on every ACK;
// zero or negative removes the advertisement (no limit).
func (r *Receiver) SetAdvertisedWindow(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	r.advertisedWnd = bytes
}

// AdvertisedWindow returns the current advertisement (0 = none).
func (r *Receiver) AdvertisedWindow() int64 { return r.advertisedWnd }

// DataPackets returns the count of data packets received (including
// duplicates).
func (r *Receiver) DataPackets() int64 { return r.dataPackets }

// DataBytes returns total payload bytes received (including duplicates).
func (r *Receiver) DataBytes() int64 { return r.dataBytes }

// CEPackets returns how many received data packets carried a CE mark.
func (r *Receiver) CEPackets() int64 { return r.cePackets }

// AcksSent returns the number of ACKs emitted.
func (r *Receiver) AcksSent() int64 { return r.acksSent }

// HandlePacket implements netsim.PacketHandler: the receiver consumes data.
func (r *Receiver) HandlePacket(p *netsim.Packet) {
	if p.IsAck {
		return
	}
	r.dataPackets++
	r.dataBytes += int64(p.Len)
	if p.CE {
		r.cePackets++
	}

	// Reassembly.
	switch {
	case p.Seq == r.rcvNxt:
		r.rcvNxt += int64(p.Len)
		for {
			l, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt += int64(l)
		}
		if r.onProgress != nil {
			r.onProgress(r.rcvNxt)
		}
	case p.Seq > r.rcvNxt:
		r.ooo[p.Seq] = p.Len
	}
	// Old or duplicate data: nothing to reassemble, but still ACK.

	echo := p.SentAt
	if p.Retransmit {
		// Karn's rule: never take RTT samples from retransmitted data.
		echo = -1
	}

	if !r.cfg.DelayedAcks {
		r.sendAck(p.CE, echo)
		return
	}
	r.delayedAck(p.CE, echo)
}

// delayedAck implements the DCTCP receiver state machine.
func (r *Receiver) delayedAck(ce bool, echo sim.Time) {
	if r.pending > 0 && ce != r.ceState {
		// CE state change: flush the pending ACK for the old state so the
		// sender sees an accurate marking boundary.
		r.flushAck()
	}
	r.ceState = ce
	r.pending++
	r.pendingEcho = echo
	if r.pending >= r.cfg.AckEvery {
		r.flushAck()
		return
	}
	if !r.ackTimer.Active() {
		r.eng.ResetAfter(&r.ackTimer, r.cfg.AckTimeout, r.flushFn)
	}
}

// flushAck emits the pending delayed ACK, if any.
func (r *Receiver) flushAck() {
	if r.pending == 0 {
		return
	}
	r.ackTimer.Stop()
	r.pending = 0
	r.sendAck(r.ceState, r.pendingEcho)
}

// sendAck emits a cumulative ACK with the ECN echo.
func (r *Receiver) sendAck(ece bool, echo sim.Time) {
	r.acksSent++
	p := r.host.AllocPacket()
	p.Flow = r.flow
	p.Src = r.host.ID()
	p.Dst = r.src
	p.IsAck = true
	p.AckNo = r.rcvNxt
	p.ECE = ece
	p.Wnd = r.advertisedWnd
	p.EchoSentAt = echo
	p.SentAt = r.eng.Now()
	r.host.Send(p)
}
