// Package tcp implements a reliable byte-stream transport over netsim with
// pluggable congestion control — the mechanisms the paper's Section 4
// studies: window-limited transmission, cumulative ACKs with ECN echo,
// triple-duplicate-ACK fast retransmit, retransmission timeouts with a
// minimum RTO, and persistent connections whose congestion state survives
// across bursts (the root of the Section 4.3 divergence).
//
// The transport deliberately omits what the paper's simulations omit:
// connection handshakes (connections are persistent and pre-established),
// SACK (loss recovery is NewReno-style on cumulative ACKs), and flow
// control (receive windows are never the constraint in these workloads).
package tcp

import (
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// Hub demultiplexes packets delivered to a host among per-flow endpoints.
// One Hub is attached per host; senders and receivers register themselves.
type Hub struct {
	host      *netsim.Host
	endpoints map[netsim.FlowID]netsim.PacketHandler
}

// NewHub creates a hub and attaches it to the host.
func NewHub(h *netsim.Host) *Hub {
	hub := &Hub{host: h, endpoints: make(map[netsim.FlowID]netsim.PacketHandler)}
	h.Attach(hub)
	return hub
}

// Host returns the host this hub serves.
func (h *Hub) Host() *netsim.Host { return h.host }

// Register directs packets of the given flow to handler.
func (h *Hub) Register(flow netsim.FlowID, handler netsim.PacketHandler) {
	h.endpoints[flow] = handler
}

// HandlePacket implements netsim.PacketHandler; unknown flows are dropped
// silently, as a real host would discard segments for closed ports.
func (h *Hub) HandlePacket(p *netsim.Packet) {
	if ep, ok := h.endpoints[p.Flow]; ok {
		ep.HandlePacket(p)
	}
}

// rttEstimator implements the standard SRTT/RTTVAR estimator (RFC 6298).
type rttEstimator struct {
	srtt    sim.Time
	rttvar  sim.Time
	hasSRTT bool
}

func (e *rttEstimator) sample(rtt sim.Time) {
	if !e.hasSRTT {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.hasSRTT = true
		return
	}
	dev := e.srtt - rtt
	if dev < 0 {
		dev = -dev
	}
	e.rttvar = (3*e.rttvar + dev) / 4
	e.srtt = (7*e.srtt + rtt) / 8
}

// rto returns the computed retransmission timeout bounded to [min, max].
func (e *rttEstimator) rto(min, max sim.Time) sim.Time {
	if !e.hasSRTT {
		return min
	}
	r := e.srtt + 4*e.rttvar
	if r < min {
		r = min
	}
	if r > max {
		r = max
	}
	return r
}
