// Package app models the application layer that *causes* incast: the
// partition/aggregate pattern of the paper's introduction, where "a
// coordinator server dispatches up to thousands of sub-tasks to worker
// servers and waits for their replies", and "the roughly synchronized
// responses from the many workers cause congestion in the coordinator's
// ToR switch".
//
// Unlike the workload package's open-loop burst driver, PartitionAggregate
// is a closed-loop application: request packets really travel from the
// coordinator to the workers, workers respond after a processing delay,
// and the query completes when every response has been fully delivered —
// so query completion time (QCT) is the service-level tail-latency metric
// the paper says incast damages.
package app

import (
	"fmt"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
	"incastlab/internal/tcp"
)

// requestFlowBase offsets request-flow IDs away from response flows.
const requestFlowBase netsim.FlowID = 1 << 20

// PartitionAggregateConfig describes a coordinator fan-out workload.
type PartitionAggregateConfig struct {
	// Workers is the fan-in degree.
	Workers int
	// ResponseBytes is each worker's reply size.
	ResponseBytes int64
	// ProcessingJitter delays each worker's reply uniformly in
	// [0, ProcessingJitter] after the request arrives — the paper's model
	// of variations in processing time.
	ProcessingJitter sim.Time
	// Queries is how many queries the coordinator issues.
	Queries int
	// ThinkTime separates a query's completion from the next dispatch
	// (closed loop).
	ThinkTime sim.Time
	// Seed drives the jitter RNG.
	Seed uint64
	// Sender and Receiver tune the transport.
	Sender   tcp.SenderConfig
	Receiver tcp.ReceiverConfig
}

// DefaultPartitionAggregateConfig returns a fan-out of n workers with
// 20 KB responses (a ~2 ms aggregate burst at 10 Gbps for 128 workers),
// 0-100 us processing jitter, and 1 ms think time.
func DefaultPartitionAggregateConfig(n int) PartitionAggregateConfig {
	return PartitionAggregateConfig{
		Workers:          n,
		ResponseBytes:    20_000,
		ProcessingJitter: 100 * sim.Microsecond,
		Queries:          10,
		ThinkTime:        sim.Millisecond,
		Seed:             1,
		Sender:           tcp.DefaultSenderConfig(),
		Receiver:         tcp.DefaultReceiverConfig(),
	}
}

// QueryRecord is one completed query.
type QueryRecord struct {
	// Index is the query number, from 0.
	Index int
	// Start is when the coordinator dispatched the requests.
	Start sim.Time
	// End is when the last response byte arrived in order.
	End sim.Time
	// QCT is End - Start.
	QCT sim.Time
}

// PartitionAggregate wires the closed-loop application over a dumbbell:
// the coordinator is the dumbbell's receiver host; workers are the
// senders. Construct it, run the engine, then read Queries().
type PartitionAggregate struct {
	cfg PartitionAggregateConfig
	eng *sim.Engine
	net *netsim.Dumbbell
	rng interface{ Int64N(int64) int64 }

	senders   []*tcp.Sender   // worker -> coordinator response streams
	receivers []*tcp.Receiver // coordinator-side response receivers

	// expected[w] is the response cursor worker w must reach for the
	// current query to count it delivered.
	expected []int64
	pending  int // responses outstanding in the current query

	current  int
	start    sim.Time
	records  []QueryRecord
	finished bool
}

// NewPartitionAggregate builds the application over eng. netCfg.Senders
// must equal cfg.Workers. algFactory supplies congestion control per
// worker flow.
func NewPartitionAggregate(eng *sim.Engine, netCfg netsim.DumbbellConfig,
	cfg PartitionAggregateConfig, algFactory func(worker int) cc.Algorithm) *PartitionAggregate {
	if cfg.Workers <= 0 {
		panic("app: need at least one worker")
	}
	if netCfg.Senders != cfg.Workers {
		panic(fmt.Sprintf("app: topology has %d senders, config has %d workers",
			netCfg.Senders, cfg.Workers))
	}
	if cfg.ResponseBytes <= 0 {
		panic("app: response size must be positive")
	}
	if cfg.Queries <= 0 {
		panic("app: need at least one query")
	}

	pa := &PartitionAggregate{
		cfg:      cfg,
		eng:      eng,
		net:      netsim.NewDumbbell(eng, netCfg),
		rng:      sim.NewRand(cfg.Seed),
		expected: make([]int64, cfg.Workers),
	}

	coordHub := tcp.NewHub(pa.net.Receiver)
	pa.senders = make([]*tcp.Sender, cfg.Workers)
	pa.receivers = make([]*tcp.Receiver, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		w := w
		worker := pa.net.Senders[w]
		respFlow := netsim.FlowID(w + 1)
		workerHub := tcp.NewHub(worker)
		pa.senders[w] = tcp.NewSender(eng, workerHub, respFlow,
			pa.net.Receiver.ID(), algFactory(w), cfg.Sender)
		pa.receivers[w] = tcp.NewReceiver(eng, coordHub, respFlow, worker.ID(), cfg.Receiver)
		pa.receivers[w].SetOnProgress(func(rcvNxt int64) { pa.onProgress(w, rcvNxt) })

		// The worker's request handler: a request packet triggers the
		// response after processing jitter.
		workerHub.Register(requestFlowBase+netsim.FlowID(w), netsim.PacketHandlerFunc(
			func(p *netsim.Packet) {
				if p.IsAck {
					return
				}
				delay := sim.Time(0)
				if cfg.ProcessingJitter > 0 {
					delay = sim.Time(pa.rng.Int64N(int64(cfg.ProcessingJitter) + 1))
				}
				eng.ScheduleAfter(delay, func() { pa.senders[w].AddDemand(cfg.ResponseBytes) })
			}))
	}

	eng.Schedule(0, pa.dispatch)
	return pa
}

// dispatch issues the next query: one small request packet per worker.
func (pa *PartitionAggregate) dispatch() {
	pa.start = pa.eng.Now()
	pa.pending = pa.cfg.Workers
	for w := 0; w < pa.cfg.Workers; w++ {
		pa.expected[w] += pa.cfg.ResponseBytes
		p := pa.net.Receiver.AllocPacket()
		p.Flow = requestFlowBase + netsim.FlowID(w)
		p.Src = pa.net.Receiver.ID()
		p.Dst = pa.net.Senders[w].ID()
		p.Len = 64 // small RPC request
		p.SentAt = pa.eng.Now()
		pa.net.Receiver.Send(p)
	}
}

// onProgress checks whether worker w's response stream reached the cursor
// for the current query, and closes out the query when all have.
func (pa *PartitionAggregate) onProgress(w int, rcvNxt int64) {
	if pa.finished || rcvNxt != pa.expected[w] {
		return
	}
	pa.pending--
	if pa.pending > 0 {
		return
	}
	now := pa.eng.Now()
	pa.records = append(pa.records, QueryRecord{
		Index: pa.current,
		Start: pa.start,
		End:   now,
		QCT:   now - pa.start,
	})
	pa.current++
	if pa.current >= pa.cfg.Queries {
		pa.finished = true
		return
	}
	pa.eng.ScheduleAfter(pa.cfg.ThinkTime, pa.dispatch)
}

// Network returns the underlying topology.
func (pa *PartitionAggregate) Network() *netsim.Dumbbell { return pa.net }

// Senders returns the worker response senders.
func (pa *PartitionAggregate) Senders() []*tcp.Sender { return pa.senders }

// Done reports whether all queries completed.
func (pa *PartitionAggregate) Done() bool { return pa.finished }

// Queries returns the completed query records.
func (pa *PartitionAggregate) Queries() []QueryRecord { return pa.records }

// QCTStats summarizes query completion times in milliseconds.
func (pa *PartitionAggregate) QCTStats() stats.Summary {
	vals := make([]float64, 0, len(pa.records))
	for _, r := range pa.records {
		vals = append(vals, r.QCT.Milliseconds())
	}
	return stats.Summarize(vals)
}
