package app

import (
	"testing"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

func dctcp(int) cc.Algorithm { return cc.NewDCTCP(cc.DefaultDCTCPConfig()) }

func runPA(t *testing.T, cfg PartitionAggregateConfig) *PartitionAggregate {
	t.Helper()
	eng := sim.NewEngine()
	pa := NewPartitionAggregate(eng, netsim.DefaultDumbbellConfig(cfg.Workers), cfg, dctcp)
	eng.RunUntil(30 * sim.Second)
	if !pa.Done() {
		t.Fatalf("only %d of %d queries completed", len(pa.Queries()), cfg.Queries)
	}
	return pa
}

func TestPartitionAggregateCompletes(t *testing.T) {
	cfg := DefaultPartitionAggregateConfig(20)
	cfg.Queries = 5
	pa := runPA(t, cfg)
	qs := pa.Queries()
	if len(qs) != 5 {
		t.Fatalf("queries = %d", len(qs))
	}
	for i, q := range qs {
		if q.Index != i {
			t.Fatalf("query order broken: %+v", q)
		}
		if q.QCT <= 0 || q.End != q.Start+q.QCT {
			t.Fatalf("inconsistent record %+v", q)
		}
		if i > 0 && q.Start < qs[i-1].End+cfg.ThinkTime {
			t.Fatalf("closed loop violated: query %d started before think time elapsed", i)
		}
	}
}

func TestPartitionAggregateQCTNearOptimal(t *testing.T) {
	// 20 workers x 20 KB = 400 KB over a 10 Gbps bottleneck ~ 320 us, plus
	// request delivery, jitter, and queueing: QCT should land well under
	// 2 ms per query in the healthy regime.
	cfg := DefaultPartitionAggregateConfig(20)
	cfg.Queries = 5
	pa := runPA(t, cfg)
	s := pa.QCTStats()
	if s.P50 > 2 {
		t.Fatalf("median QCT = %vms, want < 2ms", s.P50)
	}
	if s.Min*1000 < 300 {
		t.Fatalf("QCT %vms below the bandwidth bound (~0.32ms)", s.Min)
	}
}

func TestPartitionAggregateIncastCongestion(t *testing.T) {
	// 150 workers responding together must push the coordinator's ToR
	// queue past the marking threshold.
	cfg := DefaultPartitionAggregateConfig(150)
	cfg.Queries = 3
	pa := runPA(t, cfg)
	st := pa.Network().BottleneckQueue().Stats()
	if st.PeakPackets <= 65 {
		t.Fatalf("peak queue %d, want incast congestion above K", st.PeakPackets)
	}
	if st.MarkedPackets == 0 {
		t.Fatal("no CE marks during fan-in")
	}
}

func TestPartitionAggregateTailGrowsWithFanIn(t *testing.T) {
	qct := func(workers int) (p50, max float64) {
		cfg := DefaultPartitionAggregateConfig(workers)
		cfg.Queries = 5
		// Keep the aggregate response volume constant so only the degree
		// changes (the paper's fan-in framing).
		cfg.ResponseBytes = 4_000_000 / int64(workers)
		pa := runPA(t, cfg)
		s := pa.QCTStats()
		return s.P50, s.Max
	}
	smallP50, smallMax := qct(20)
	largeP50, largeMax := qct(400)
	// With total bytes fixed, the bandwidth bound is identical, so medians
	// stay comparable...
	if largeP50 > 3*smallP50 {
		t.Fatalf("median QCT blew up: %vms (20) vs %vms (400)", smallP50, largeP50)
	}
	// ...but the 400-worker fan-in overflows the queue when windows align,
	// and tail-loss recovery at 1-MSS windows waits for the RTO: the tail
	// explodes. This is the paper's "high tail latency that directly
	// impacts service-level performance".
	if largeMax < 10*smallMax {
		t.Fatalf("tail QCT should explode with fan-in: max %vms (20) vs %vms (400)",
			smallMax, largeMax)
	}
}

func TestPartitionAggregateDeterministic(t *testing.T) {
	run := func() []QueryRecord {
		eng := sim.NewEngine()
		cfg := DefaultPartitionAggregateConfig(15)
		cfg.Queries = 3
		pa := NewPartitionAggregate(eng, netsim.DefaultDumbbellConfig(15), cfg, dctcp)
		eng.RunUntil(5 * sim.Second)
		return pa.Queries()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay diverged")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPartitionAggregateValidation(t *testing.T) {
	eng := sim.NewEngine()
	mustPanic := func(name string, cfg PartitionAggregateConfig, senders int) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		NewPartitionAggregate(eng, netsim.DefaultDumbbellConfig(senders), cfg, dctcp)
	}
	base := DefaultPartitionAggregateConfig(2)
	bad := base
	bad.ResponseBytes = 0
	mustPanic("zero response", bad, 2)
	bad = base
	bad.Queries = 0
	mustPanic("zero queries", bad, 2)
	mustPanic("mismatched topology", base, 3)
}
