package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKeyIsStableAndPrefixSafe(t *testing.T) {
	if Key("a", "b") != Key("a", "b") {
		t.Fatal("Key is not deterministic")
	}
	// Length prefixing: concatenation boundaries must matter.
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal(`Key("ab","c") collides with Key("a","bc")`)
	}
	if Key("a") == Key("a", "") {
		t.Fatal("trailing empty part does not change the key")
	}
	k := Key("x")
	if len(k) != 64 || strings.ToLower(k) != k {
		t.Fatalf("Key = %q, want 64 lowercase hex chars", k)
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := Key("row")
	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("empty cache Get = ok=%v err=%v, want miss", ok, err)
	}
	cells := []string{"80", "same-rack", "92.327"}
	if err := c.Put(key, cells); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if len(got) != len(cells) {
		t.Fatalf("Get returned %d cells, want %d", len(got), len(cells))
	}
	for i := range cells {
		if got[i] != cells[i] {
			t.Fatalf("cell %d = %q, want %q", i, got[i], cells[i])
		}
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v, want 1 row", n, err)
	}
	// Rows fan out under a two-character prefix directory.
	if _, err := os.Stat(filepath.Join(c.Dir(), key[:2], key[2:]+".json")); err != nil {
		t.Fatalf("row file not at the fan-out path: %v", err)
	}
}

// TestCacheCorruptRowIsAnError: a half-written or mangled row must surface
// as an error naming the file, not silently recompute — masking corruption
// would defeat the byte-identical-resume guarantee.
func TestCacheCorruptRowIsAnError(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("bad")
	if err := c.Put(key, []string{"1"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.Dir(), key[:2], key[2:]+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := c.Get(key)
	if err == nil || ok {
		t.Fatalf("Get on corrupt row = ok=%v err=%v, want error", ok, err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("corrupt-row error %q does not name the file to delete", err)
	}
}

func TestCachePutOverwrites(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("k")
	if err := c.Put(key, []string{"old"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, []string{"new"}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok || got[0] != "new" {
		t.Fatalf("Get = %v ok=%v err=%v, want [new]", got, ok, err)
	}
	// Atomic writes must not leave temp droppings behind.
	entries, err := os.ReadDir(filepath.Join(c.Dir(), key[:2]))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".row-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
