// Package sweep is a content-addressed result cache for parameter
// studies: each sweep point's rendered result cells are stored under a
// key hashed from everything that determines them (code version,
// canonical spec, row index, seed, mode). A 10k-point study can then be
// sharded across processes, interrupted, and resumed — whoever computes a
// point first persists it, and a rerun assembles the full table from
// cached rows byte-identically to a cold run.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Key hashes the parts that determine one cached result into a stable
// content address (a hex SHA-256). Parts are length-prefixed so that
// ("ab","c") and ("a","bc") cannot collide.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a directory of cached sweep rows, one JSON file per key. It is
// safe for concurrent use by multiple processes: writes go through a
// temp-file rename, so readers never observe a partial row, and two
// workers racing on one key simply write identical content.
type Cache struct {
	dir string
}

// Open creates (if needed) and returns the cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a key to its row file. Keys are hex hashes, so no escaping is
// needed; a two-character fan-out keeps directories small at 10k+ rows.
func (c *Cache) path(key string) string {
	if len(key) < 3 {
		return filepath.Join(c.dir, key+".json")
	}
	return filepath.Join(c.dir, key[:2], key[2:]+".json")
}

// Get returns the cached cells for key, with ok=false on a miss. A
// malformed row file is an error, not a miss: silently recomputing over a
// half-written file would mask the corruption.
func (c *Cache) Get(key string) (cells []string, ok bool, err error) {
	b, err := os.ReadFile(c.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("sweep: read %s: %w", key, err)
	}
	if err := json.Unmarshal(b, &cells); err != nil {
		return nil, false, fmt.Errorf("sweep: row %s is corrupt (delete %s to recompute): %w",
			key, c.path(key), err)
	}
	return cells, true, nil
}

// Put stores the cells for key atomically (temp file + rename).
func (c *Cache) Put(key string, cells []string) error {
	b, err := json.Marshal(cells)
	if err != nil {
		return fmt.Errorf("sweep: encode %s: %w", key, err)
	}
	dst := c.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("sweep: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".row-*")
	if err != nil {
		return fmt.Errorf("sweep: put %s: %w", key, err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: put %s: %w", key, err)
	}
	return nil
}

// Len counts the cached rows (for progress reporting; walks the
// directory).
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
