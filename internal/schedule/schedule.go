// Package schedule implements the paper's Section 5.2 proposal: "divide, or
// schedule, a large incast into a series of smaller incasts where only a
// manageable number of flows are active at once. With fewer flows, each
// would operate in a healthier CWND regime."
//
// Wave is a receiver-driven admitter for workload.Incast: each burst's
// flows are released in waves of at most W concurrent flows; when a flow
// finishes its burst demand, the next queued flow is released. Wave
// composes with any congestion-control algorithm — per the paper it is an
// enhancement to TCP rather than a replacement.
package schedule

import (
	"incastlab/internal/workload"
)

// Wave admits at most Size flows of each burst concurrently.
type Wave struct {
	// Size is the per-wave concurrency limit W.
	Size int

	bursts map[int]*burstState
}

type burstState struct {
	admit    func(flow int)
	queue    []int // flows not yet admitted
	inFlight int
	done     map[int]bool
}

// NewWave creates a Wave admitter with the given concurrency limit.
func NewWave(size int) *Wave {
	if size <= 0 {
		panic("schedule: wave size must be positive")
	}
	return &Wave{Size: size, bursts: make(map[int]*burstState)}
}

// BeginBurst implements workload.Admitter: release the first wave and
// queue the rest.
func (w *Wave) BeginBurst(ctx workload.AdmitContext) {
	st := &burstState{admit: ctx.Admit, done: make(map[int]bool)}
	w.bursts[ctx.Burst] = st
	for i := 0; i < ctx.Flows; i++ {
		if st.inFlight < w.Size {
			st.inFlight++
			st.admit(i)
		} else {
			st.queue = append(st.queue, i)
		}
	}
}

// FlowDone implements workload.Admitter: a finished flow frees a slot for
// the next queued flow of the same burst.
func (w *Wave) FlowDone(burst, flow int) {
	st, ok := w.bursts[burst]
	if !ok || st.done[flow] {
		return
	}
	st.done[flow] = true
	st.inFlight--
	if len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		st.inFlight++
		st.admit(next)
	}
	if len(st.queue) == 0 && st.inFlight == 0 {
		delete(w.bursts, burst) // burst fully drained; free the state
	}
}

// Pending returns how many flows of the burst are still waiting for a
// slot; useful for tests and instrumentation.
func (w *Wave) Pending(burst int) int {
	if st, ok := w.bursts[burst]; ok {
		return len(st.queue)
	}
	return 0
}

var _ workload.Admitter = (*Wave)(nil)
