package schedule

import (
	"testing"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/workload"
)

// fakeCtx builds an AdmitContext whose Admit records the release order.
func fakeCtx(burst, flows int, released *[]int) workload.AdmitContext {
	return workload.AdmitContext{
		Burst: burst,
		Flows: flows,
		Admit: func(flow int) { *released = append(*released, flow) },
	}
}

func TestWaveReleasesInWaves(t *testing.T) {
	w := NewWave(3)
	var released []int
	w.BeginBurst(fakeCtx(0, 10, &released))
	if len(released) != 3 {
		t.Fatalf("initial wave = %v, want 3 flows", released)
	}
	if w.Pending(0) != 7 {
		t.Fatalf("pending = %d, want 7", w.Pending(0))
	}
	w.FlowDone(0, 0)
	if len(released) != 4 || released[3] != 3 {
		t.Fatalf("after one completion released = %v", released)
	}
	// Completing all releases everything exactly once.
	for f := 1; f < 10; f++ {
		w.FlowDone(0, f)
	}
	if len(released) != 10 {
		t.Fatalf("released %d flows, want 10", len(released))
	}
	seen := make(map[int]bool)
	for _, f := range released {
		if seen[f] {
			t.Fatalf("flow %d released twice", f)
		}
		seen[f] = true
	}
	if w.Pending(0) != 0 {
		t.Fatalf("pending = %d after drain", w.Pending(0))
	}
}

func TestWaveSmallerBurstThanWave(t *testing.T) {
	w := NewWave(100)
	var released []int
	w.BeginBurst(fakeCtx(0, 5, &released))
	if len(released) != 5 || w.Pending(0) != 0 {
		t.Fatalf("released = %v pending = %d", released, w.Pending(0))
	}
}

func TestWaveDuplicateFlowDoneIgnored(t *testing.T) {
	w := NewWave(1)
	var released []int
	w.BeginBurst(fakeCtx(0, 3, &released))
	w.FlowDone(0, 0)
	w.FlowDone(0, 0) // duplicate
	if len(released) != 2 {
		t.Fatalf("released = %v, duplicate FlowDone must not release twice", released)
	}
}

func TestWaveIndependentBursts(t *testing.T) {
	w := NewWave(2)
	var r0, r1 []int
	w.BeginBurst(fakeCtx(0, 4, &r0))
	w.BeginBurst(fakeCtx(1, 4, &r1))
	w.FlowDone(0, 0)
	if len(r0) != 3 || len(r1) != 2 {
		t.Fatalf("burst isolation broken: r0=%v r1=%v", r0, r1)
	}
}

func TestWaveValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWave(0) did not panic")
		}
	}()
	NewWave(0)
}

// TestWaveEndToEnd runs a full incast under wave scheduling and checks the
// Section 5.2 claim: concurrency stays bounded by W, the queue stays far
// below what the unscheduled incast builds, and everything completes.
func TestWaveEndToEnd(t *testing.T) {
	run := func(adm workload.Admitter) (peak int, bct sim.Time) {
		eng := sim.NewEngine()
		cfg := workload.DefaultIncastConfig(120, sim.Millisecond)
		cfg.Bursts = 3
		cfg.Interval = 20 * sim.Millisecond
		cfg.Admitter = adm
		in := workload.NewIncast(eng, netsim.DefaultDumbbellConfig(120), cfg,
			func(int) cc.Algorithm { return cc.NewDCTCP(cc.DefaultDCTCPConfig()) })
		eng.RunUntil(5 * sim.Second)
		if !in.Done() {
			t.Fatal("incast did not complete")
		}
		return in.Network().BottleneckQueue().Stats().PeakPackets, in.Bursts()[2].BCT
	}

	wavePeak, waveBCT := run(NewWave(20))
	plainPeak, _ := run(nil)

	if wavePeak >= plainPeak {
		t.Fatalf("wave peak queue %d >= unscheduled %d; scheduling should shrink the queue",
			wavePeak, plainPeak)
	}
	// The wave scheduler trades a little completion time for the smaller
	// queue; it must stay within the same order of magnitude.
	if waveBCT > 20*sim.Millisecond {
		t.Fatalf("wave BCT = %v, unreasonably slow", waveBCT)
	}
}
