package rackmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// cfgForTest: 8 Gbps drain = 1000 bytes per 1 us interval, 10 KB queue,
// threshold 10% = 1 KB. Small numbers keep arithmetic checkable by hand.
func cfgForTest() Config {
	return Config{
		LineRateBps:          8_000_000_000,
		QueueCapacityBytes:   10_000,
		ECNThresholdFraction: 0.1,
		RetxDelayIntervals:   1,
	}
}

const testIntervalNS = 1000 // 1 us

func TestUnderloadPassesThrough(t *testing.T) {
	offered := []float64{500, 800, 0, 300}
	r := Run(offered, testIntervalNS, cfgForTest())
	for i, o := range offered {
		if r.Delivered[i] != o {
			t.Fatalf("interval %d delivered %v, want %v", i, r.Delivered[i], o)
		}
		if r.ECNBytes[i] != 0 || r.DroppedBytes[i] != 0 || r.RetxBytes[i] != 0 {
			t.Fatalf("underload interval %d has congestion artifacts: %+v", i, r)
		}
	}
	if r.WatermarkFraction != 0 {
		t.Fatalf("watermark = %v, want 0", r.WatermarkFraction)
	}
}

func TestOverloadQueuesAndDrains(t *testing.T) {
	// 3000 bytes into a 1000-byte drain: 1000 delivered, 2000 queued.
	offered := []float64{3000, 0, 0, 0}
	r := Run(offered, testIntervalNS, cfgForTest())
	if r.Delivered[0] != 1000 {
		t.Fatalf("delivered[0] = %v", r.Delivered[0])
	}
	// The backlog drains at line rate over the next two intervals.
	if r.Delivered[1] != 1000 || r.Delivered[2] != 1000 || r.Delivered[3] != 0 {
		t.Fatalf("drain pattern = %v", r.Delivered)
	}
	if r.QueuePeakFraction[0] != 0.2 {
		t.Fatalf("peak[0] = %v, want 0.2 (2000/10000)", r.QueuePeakFraction[0])
	}
	if r.WatermarkFraction != 0.2 {
		t.Fatalf("watermark = %v", r.WatermarkFraction)
	}
}

func TestECNMarkingAboveThreshold(t *testing.T) {
	// Build a queue of 2000 (> 1 KB threshold): part of interval 0 and all
	// of the drain interval 1 are above threshold.
	offered := []float64{3000, 1000, 0}
	r := Run(offered, testIntervalNS, cfgForTest())
	if r.ECNBytes[0] <= 0 || r.ECNBytes[0] >= r.Delivered[0] {
		t.Fatalf("ecn[0] = %v of %v, want partial marking", r.ECNBytes[0], r.Delivered[0])
	}
	// Interval 1: queue goes 2000 -> 2000 (arrive 1000, drain 1000),
	// entirely above threshold: all delivered bytes marked.
	if r.ECNBytes[1] != r.Delivered[1] {
		t.Fatalf("ecn[1] = %v of %v, want full marking", r.ECNBytes[1], r.Delivered[1])
	}
}

func TestAllOrNothingMarkingForSharpBursts(t *testing.T) {
	// A sharp burst that blasts the queue far past the threshold within
	// one interval marks essentially everything - the Figure 1c behavior.
	offered := []float64{9000}
	r := Run(offered, testIntervalNS, cfgForTest())
	frac := r.ECNBytes[0] / r.Delivered[0]
	if frac < 0.85 {
		t.Fatalf("sharp burst marking fraction = %v, want near 1", frac)
	}
}

func TestOverflowDropsAndRetransmits(t *testing.T) {
	// 15000 bytes: drain 1000, queue cap 10000 -> 4000 dropped.
	offered := []float64{15000, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	r := Run(offered, testIntervalNS, cfgForTest())
	if r.DroppedBytes[0] != 4000 {
		t.Fatalf("dropped = %v, want 4000", r.DroppedBytes[0])
	}
	if r.QueuePeakFraction[0] != 1 {
		t.Fatalf("peak = %v, want 1 (overflow)", r.QueuePeakFraction[0])
	}
	// The 4000 dropped bytes re-arrive in interval 1 and are eventually
	// delivered flagged as retransmissions.
	var retx float64
	for _, v := range r.RetxBytes {
		retx += v
	}
	if math.Abs(retx-4000) > 1 {
		t.Fatalf("total retx delivered = %v, want ~4000", retx)
	}
	// Everything offered is eventually delivered exactly once.
	var delivered float64
	for _, v := range r.Delivered {
		delivered += v
	}
	if math.Abs(delivered-15000) > 1 {
		t.Fatalf("total delivered = %v, want 15000", delivered)
	}
}

func TestMarkFraction(t *testing.T) {
	cases := []struct {
		q0, q1, thresh, want float64
	}{
		{0, 500, 1000, 0},      // never crosses
		{2000, 3000, 1000, 1},  // always above
		{0, 2000, 1000, 0.5},   // crosses midway (rising)
		{2000, 0, 1000, 0.5},   // crosses midway (falling)
		{1000, 1000, 1000, 0},  // exactly at threshold: not above
		{500, 1500, 1000, 0.5}, // symmetric crossing
	}
	for _, c := range cases {
		if got := markFraction(c.q0, c.q1, c.thresh); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("markFraction(%v,%v,%v) = %v, want %v", c.q0, c.q1, c.thresh, got, c.want)
		}
	}
}

// TestConservationProperty: delivered + still-queued-at-end + dropped-but-
// never-redelivered equals offered, and all outputs stay within bounds.
func TestConservationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var total float64
		for _, v := range raw {
			total += float64(v)
		}
		// Give the queue enough idle tail to drain everything (drain is
		// 1000 bytes/interval), so conservation is checkable.
		tail := int(total/1000) + 60
		offered := make([]float64, len(raw)+tail)
		for i, v := range raw {
			offered[i] = float64(v)
		}
		cfg := cfgForTest()
		r := Run(offered, testIntervalNS, cfg)
		var delivered, dropped, retx float64
		for i := range offered {
			if r.Delivered[i] < 0 || r.ECNBytes[i] < 0 || r.RetxBytes[i] < 0 {
				return false
			}
			if r.ECNBytes[i] > r.Delivered[i]+1e-6 || r.RetxBytes[i] > r.Delivered[i]+1e-6 {
				return false
			}
			if r.QueuePeakFraction[i] < 0 || r.QueuePeakFraction[i] > 1 {
				return false
			}
			if r.Delivered[i] > 1000+1e-6 { // never above line rate
				return false
			}
			delivered += r.Delivered[i]
			dropped += r.DroppedBytes[i]
			retx += r.RetxBytes[i]
		}
		// Retransmissions are re-deliveries of dropped bytes; with the
		// generous tail of idle intervals everything drains, so delivered
		// = offered (drops are delivered later as retx, and retx bytes are
		// part of delivered).
		return math.Abs(delivered-total) < 1.0 && retx <= dropped+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LineRateBps: 0, QueueCapacityBytes: 1, ECNThresholdFraction: 0.1},
		{LineRateBps: 1, QueueCapacityBytes: 0, ECNThresholdFraction: 0.1},
		{LineRateBps: 1, QueueCapacityBytes: 1, ECNThresholdFraction: 0},
		{LineRateBps: 1, QueueCapacityBytes: 1, ECNThresholdFraction: 1},
	}
	for i, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			Run([]float64{1}, testIntervalNS, cfg)
		}()
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	// 25 Gbps over 1 ms = 3.125 MB drain; a 1 ms line-rate interval passes
	// through untouched.
	r := Run([]float64{3_125_000}, 1_000_000, cfg)
	if r.Delivered[0] != 3_125_000 || r.DroppedBytes[0] != 0 {
		t.Fatalf("line-rate interval mishandled: %+v", r)
	}
}

// TestMarkingMonotoneInLoad: scaling the offered load up never reduces the
// total ECN-marked volume — more congestion means more marking.
func TestMarkingMonotoneInLoad(t *testing.T) {
	base := []float64{500, 2500, 4000, 1200, 0, 0, 800, 3000, 0, 0}
	cfg := cfgForTest()
	prevMarked := -1.0
	for _, scale := range []float64{0.5, 1, 2, 4} {
		offered := make([]float64, len(base)+40)
		for i, v := range base {
			offered[i] = v * scale
		}
		r := Run(offered, testIntervalNS, cfg)
		var marked float64
		for _, v := range r.ECNBytes {
			marked += v
		}
		if marked < prevMarked {
			t.Fatalf("marking decreased when load scaled to %v: %v < %v", scale, marked, prevMarked)
		}
		prevMarked = marked
	}
}

// TestWatermarkIsMaxOfPeaks: the window watermark equals the maximum
// per-interval peak.
func TestWatermarkIsMaxOfPeaks(t *testing.T) {
	offered := []float64{3000, 9000, 500, 15000, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	r := Run(offered, testIntervalNS, cfgForTest())
	max := 0.0
	for _, v := range r.QueuePeakFraction {
		if v > max {
			max = v
		}
	}
	if r.WatermarkFraction != max {
		t.Fatalf("watermark %v != max peak %v", r.WatermarkFraction, max)
	}
}

// TestCapacityFractionsShrinkAdmission: the same offered load drops more
// under a contention window.
func TestCapacityFractionsShrinkAdmission(t *testing.T) {
	offered := make([]float64, 30)
	offered[0] = 9000 // builds an 8000-byte queue against a 10 KB capacity
	clean := Run(offered, testIntervalNS, cfgForTest())

	cfg := cfgForTest()
	cfg.CapacityFractions = make([]float64, 30)
	for i := range cfg.CapacityFractions {
		cfg.CapacityFractions[i] = 1
	}
	cfg.CapacityFractions[0] = 0.3 // 3 KB effective at the burst instant
	contended := Run(offered, testIntervalNS, cfg)

	var cleanDrops, contendedDrops float64
	for i := range offered {
		cleanDrops += clean.DroppedBytes[i]
		contendedDrops += contended.DroppedBytes[i]
	}
	if cleanDrops != 0 {
		t.Fatalf("clean run dropped %v", cleanDrops)
	}
	if contendedDrops == 0 {
		t.Fatal("contention window should cause drops")
	}
}

// TestStandingQueueSurvivesContention: shrinking capacity below the
// current occupancy must not truncate the standing queue, only block
// growth.
func TestStandingQueueSurvivesContention(t *testing.T) {
	cfg := cfgForTest()
	cfg.CapacityFractions = []float64{1, 0.1, 0.1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	offered := []float64{9000, 1000, 1000, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	r := Run(offered, testIntervalNS, cfg)
	// Interval 0 builds an 8000-byte queue; intervals 1-2 shrink capacity
	// to 1000 bytes. The standing queue keeps draining at line rate (1000
	// bytes/interval) and is never discarded wholesale.
	var delivered float64
	for _, v := range r.Delivered {
		delivered += v
	}
	var dropped float64
	for _, v := range r.DroppedBytes {
		dropped += v
	}
	if delivered+dropped != 11000 {
		t.Fatalf("conservation broken: delivered %v + dropped %v != 11000", delivered, dropped)
	}
	if delivered < 9000 {
		t.Fatalf("delivered %v; the standing queue should survive the contention window", delivered)
	}
}
