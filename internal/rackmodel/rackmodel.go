// Package rackmodel is a millisecond-granularity fluid model of a ToR
// downlink queue, used by the measurement-study synthesizer. It converts
// per-interval *offered* load (which, during an incast, exceeds the drain
// rate) into what a receiving host and its switch would observe: delivered
// bytes (capped at line rate), ECN-marked bytes (threshold crossing at 6.7%
// of queue capacity, as in the production deployment), dropped and then
// retransmitted bytes (queue overflow), per-interval queue peaks, and the
// minute-style high watermark.
//
// The model supports time-varying effective capacity: production ToRs share
// packet memory across ports, so simultaneous bursts to other hosts in the
// rack shrink the buffer available to this port (the paper's Section 3.4
// explanation for losses at modest queue depths).
//
// The paper's Section 3 analyses operate on exactly these per-millisecond
// quantities; packet-level detail (which Section 4's simulator provides) is
// unnecessary at this timescale.
package rackmodel

// Config parameterizes the queue model.
type Config struct {
	// LineRateBps is the downlink drain rate (the receiver NIC line rate).
	LineRateBps int64
	// QueueCapacityBytes is the nominal per-port queue capacity.
	QueueCapacityBytes float64
	// ECNThresholdFraction is the marking threshold as a fraction of
	// nominal capacity; the paper's deployment uses 6.7%.
	ECNThresholdFraction float64
	// RetxDelayIntervals delays the reappearance of dropped bytes as
	// retransmitted arrivals (default 1 interval: fast retransmit at
	// millisecond granularity).
	RetxDelayIntervals int
	// CapacityFractions, when non-nil, gives the per-interval effective
	// capacity as a fraction of nominal (rack-level shared-buffer
	// contention). Values must be in (0, 1]; missing intervals default
	// to 1.
	CapacityFractions []float64
}

// DefaultConfig returns a production-flavored configuration: 25 Gbps NIC,
// 3 MB effective queue, 6.7% marking threshold.
func DefaultConfig() Config {
	return Config{
		LineRateBps:          25_000_000_000,
		QueueCapacityBytes:   3_000_000,
		ECNThresholdFraction: 0.067,
		RetxDelayIntervals:   1,
	}
}

// Result holds the model outputs, one value per input interval.
type Result struct {
	// Delivered is the bytes handed to the host per interval (<= line
	// rate * interval).
	Delivered []float64
	// ECNBytes is the CE-marked portion of Delivered.
	ECNBytes []float64
	// RetxBytes is the retransmitted portion of Delivered.
	RetxBytes []float64
	// DroppedBytes is the overflow per interval.
	DroppedBytes []float64
	// QueuePeakFraction is the within-interval queue peak as a fraction of
	// nominal capacity (reaches the effective capacity fraction when the
	// queue overflows).
	QueuePeakFraction []float64
	// WatermarkFraction is the high watermark over the whole window, the
	// quantity production ToRs export per minute.
	WatermarkFraction float64
}

// Run evolves the queue over the offered series. offered[i] is the byte
// volume arriving at the ToR port during interval i; intervalNS is the
// interval width.
func Run(offered []float64, intervalNS int64, cfg Config) *Result {
	if cfg.LineRateBps <= 0 {
		panic("rackmodel: line rate must be positive")
	}
	if cfg.QueueCapacityBytes <= 0 {
		panic("rackmodel: queue capacity must be positive")
	}
	if cfg.ECNThresholdFraction <= 0 || cfg.ECNThresholdFraction >= 1 {
		panic("rackmodel: ECN threshold fraction must be in (0,1)")
	}
	if cfg.RetxDelayIntervals <= 0 {
		cfg.RetxDelayIntervals = 1
	}

	n := len(offered)
	r := &Result{
		Delivered:         make([]float64, n),
		ECNBytes:          make([]float64, n),
		RetxBytes:         make([]float64, n),
		DroppedBytes:      make([]float64, n),
		QueuePeakFraction: make([]float64, n),
	}

	drain := float64(cfg.LineRateBps) / 8 * float64(intervalNS) / 1e9
	nominal := cfg.QueueCapacityBytes
	thresh := cfg.ECNThresholdFraction * nominal

	// retxArrivals[i] is retransmitted volume scheduled to arrive in
	// interval i (beyond the input window it is silently discarded, like a
	// capture window closing).
	retxArrivals := make([]float64, n+cfg.RetxDelayIntervals+1)

	var q, qRetx float64
	for i := 0; i < n; i++ {
		arrive := offered[i] + retxArrivals[i]

		capEff := nominal
		if cfg.CapacityFractions != nil && i < len(cfg.CapacityFractions) {
			f := cfg.CapacityFractions[i]
			if f <= 0 || f > 1 {
				panic("rackmodel: capacity fractions must be in (0,1]")
			}
			capEff = f * nominal
		}
		// A standing queue built before contention shrank the buffer is
		// not truncated — it drains — but no growth beyond it is admitted.
		admitCap := capEff
		if q > admitCap {
			admitCap = q
		}

		q0 := q
		qEnd := q0 + arrive - drain
		if qEnd < 0 {
			qEnd = 0
		}
		peak := q0
		if qEnd > peak {
			peak = qEnd
		}
		var dropped float64
		if qEnd > admitCap {
			dropped = qEnd - admitCap
			qEnd = admitCap
			peak = admitCap
		}
		delivered := q0 + arrive - dropped - qEnd
		if delivered < 0 {
			delivered = 0 // numeric guard; cannot happen with exact math
		}

		// Retransmission composition: arriving retransmissions join the
		// queue; drops come from the arriving tail, deliveries mix the
		// queue proportionally. Any dropped byte re-enters later as a
		// retransmission.
		retxIn := retxArrivals[i]
		var droppedRetx float64
		if dropped > 0 && arrive > 0 {
			droppedRetx = dropped * (retxIn / arrive)
			if droppedRetx > retxIn {
				droppedRetx = retxIn
			}
		}
		retxPool := qRetx + retxIn - droppedRetx
		remaining := q0 + arrive - dropped // = delivered + qEnd
		var deliveredRetx float64
		if remaining > 0 {
			deliveredRetx = delivered * (retxPool / remaining)
		}
		if deliveredRetx > retxPool {
			deliveredRetx = retxPool
		}
		qRetx = retxPool - deliveredRetx

		// ECN marking: fraction of the interval during which the queue
		// exceeded the threshold, assuming linear queue evolution. During
		// that time, arriving (and hence delivered) traffic is marked.
		marked := markFraction(q0, q0+arrive-drain, thresh)

		r.Delivered[i] = delivered
		r.ECNBytes[i] = delivered * marked
		r.RetxBytes[i] = deliveredRetx
		r.DroppedBytes[i] = dropped
		r.QueuePeakFraction[i] = peak / nominal
		if r.QueuePeakFraction[i] > r.WatermarkFraction {
			r.WatermarkFraction = r.QueuePeakFraction[i]
		}
		if dropped > 0 {
			retxArrivals[i+cfg.RetxDelayIntervals] += dropped
		}
		q = qEnd
	}
	return r
}

// markFraction returns the fraction of an interval during which a linearly
// evolving queue (from q0 to q1, both uncapped and allowed negative for
// slope purposes, clamped at 0) exceeds thresh.
func markFraction(q0, q1, thresh float64) float64 {
	lo, hi := q0, q1
	if lo > hi {
		lo, hi = hi, lo
	}
	switch {
	case hi <= thresh:
		return 0
	case lo >= thresh:
		return 1
	default:
		// Crosses the threshold once; the time above it is proportional to
		// the distance above.
		return (hi - thresh) / (hi - lo)
	}
}
