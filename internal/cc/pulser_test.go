package cc

import (
	"testing"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// fixedWindow is a stub inner algorithm with a constant window, so Pulser's
// clamp arithmetic is observable in isolation.
type fixedWindow struct {
	w        int
	acks     int
	losses   int
	timeouts int
}

func (f *fixedWindow) Name() string           { return "fixed" }
func (f *fixedWindow) OnAck(a Ack)            { f.acks++ }
func (f *fixedWindow) OnLoss(now sim.Time)    { f.losses++ }
func (f *fixedWindow) OnTimeout(now sim.Time) { f.timeouts++ }
func (f *fixedWindow) Window() int            { return f.w }
func (f *fixedWindow) PacingGap() sim.Time    { return 0 }

func TestPulserBackoffHoldAndRelease(t *testing.T) {
	inner := &fixedWindow{w: 10 * netsim.MSS}
	p := NewPulser(inner, PulserConfig{}) // defaults: 0.5 backoff, 4-ACK hold, MSS release
	if p.Window() != 10*netsim.MSS {
		t.Fatalf("window before notification = %d", p.Window())
	}

	p.OnIncastNotification(0)
	if p.Window() != 5*netsim.MSS {
		t.Fatalf("window after notification = %d, want %d", p.Window(), 5*netsim.MSS)
	}
	if p.Notifications() != 1 {
		t.Fatalf("notifications = %d", p.Notifications())
	}

	// The clamp holds flat for HoldAcks ACKs...
	for i := 0; i < 4; i++ {
		p.OnAck(Ack{})
		if p.Window() != 5*netsim.MSS {
			t.Fatalf("window moved during hold (ack %d): %d", i+1, p.Window())
		}
	}
	// ...then releases one MSS per ACK...
	p.OnAck(Ack{})
	if p.Window() != 6*netsim.MSS {
		t.Fatalf("window after first release ack = %d, want %d", p.Window(), 6*netsim.MSS)
	}
	// ...and dissolves once it reaches the inner window.
	for i := 0; i < 10; i++ {
		p.OnAck(Ack{})
	}
	if p.Window() != 10*netsim.MSS {
		t.Fatalf("clamp did not dissolve: window = %d", p.Window())
	}
	if inner.acks != 15 {
		t.Fatalf("inner saw %d acks, want all 15", inner.acks)
	}
}

func TestPulserNotificationsCompound(t *testing.T) {
	inner := &fixedWindow{w: 16 * netsim.MSS}
	p := NewPulser(inner, PulserConfig{})
	p.OnIncastNotification(0)
	p.OnIncastNotification(0)
	if p.Window() != 4*netsim.MSS {
		t.Fatalf("two notifications should compound: window = %d, want %d",
			p.Window(), 4*netsim.MSS)
	}
	// Repeated notifications converge to the floor, never below.
	for i := 0; i < 10; i++ {
		p.OnIncastNotification(0)
	}
	if p.Window() != MinWindow {
		t.Fatalf("window = %d, want the MinWindow floor %d", p.Window(), MinWindow)
	}
}

func TestPulserTimeoutDropsClamp(t *testing.T) {
	inner := &fixedWindow{w: 10 * netsim.MSS}
	p := NewPulser(inner, PulserConfig{})
	p.OnIncastNotification(0)
	p.OnTimeout(0)
	if p.Window() != 10*netsim.MSS {
		t.Fatalf("timeout should drop the clamp: window = %d", p.Window())
	}
	if inner.timeouts != 1 {
		t.Fatalf("inner timeouts = %d", inner.timeouts)
	}
}

func TestPulserWrapsRealAlgorithms(t *testing.T) {
	p := NewPulser(NewDCTCP(DefaultDCTCPConfig()), PulserConfig{Backoff: 0.25})
	if p.Name() != "dctcp+pulser" {
		t.Fatalf("name = %q", p.Name())
	}
	base := p.Window()
	p.OnIncastNotification(0)
	want := base / 4
	if want < MinWindow {
		want = MinWindow
	}
	if p.Window() != want {
		t.Fatalf("window after 0.25 backoff = %d, want %d", p.Window(), want)
	}
	// The probe reports the clamped effective window.
	pr := p.Probe()
	if pr.CwndBytes != p.Window() || pr.CapBytes != p.Window() {
		t.Fatalf("probe = %+v, want cwnd and cap at %d", pr, p.Window())
	}
	// ECN marks still reach the inner algorithm (alpha moves).
	var notifiable IncastNotifiable = p
	_ = notifiable
}

func TestGuardrailForwardsIncastNotification(t *testing.T) {
	inner := NewPulser(&fixedWindow{w: 10 * netsim.MSS}, PulserConfig{})
	gr := NewGuardrail(inner, 1<<20, 1<<20)
	n, ok := interface{}(gr).(IncastNotifiable)
	if !ok {
		t.Fatal("guardrail must forward incast notifications")
	}
	n.OnIncastNotification(0)
	if inner.Notifications() != 1 {
		t.Fatalf("inner pulser notifications = %d, want 1", inner.Notifications())
	}
}
