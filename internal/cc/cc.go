// Package cc implements the congestion-control algorithms studied and
// discussed by the paper behind one pluggable interface:
//
//   - Reno: the classic AIMD loss-based baseline.
//   - DCTCP: ECN-fraction proportional backoff (the deployed algorithm the
//     paper diagnoses).
//   - Guardrail: DCTCP wrapped with the Section 5.1 proposal — a cap on
//     ramp-up sized from the predicted incast degree.
//   - Swift: a delay-based algorithm with sub-MSS windows realized by
//     pacing, modeling the Section 5.2 discussion of pacing modes.
//
// Windows are in bytes. Window-based algorithms never report less than one
// MSS (the paper's "degenerate point"); only the pacer can go below by
// stretching the time between packets.
package cc

import (
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// Ack describes one cumulative acknowledgment, as seen by the sender.
type Ack struct {
	// Now is the arrival time of the ACK.
	Now sim.Time
	// BytesAcked is how many new bytes this ACK cumulatively acknowledged.
	BytesAcked int
	// AckNo is the cumulative acknowledgment number after this ACK.
	AckNo int64
	// SndNxt is the sender's next-to-send sequence number, used by DCTCP to
	// delimit per-window observation rounds.
	SndNxt int64
	// ECE reports whether the ACK carried the ECN echo.
	ECE bool
	// RTT is the RTT sample carried by this ACK, or 0 if none (e.g. the
	// ACK acknowledges a retransmission).
	RTT sim.Time
}

// Algorithm is a congestion-control algorithm driven by ACK, loss, and
// timeout events from the transport.
type Algorithm interface {
	// Name identifies the algorithm in results and traces.
	Name() string
	// OnAck processes one cumulative ACK.
	OnAck(a Ack)
	// OnLoss reacts to a fast-retransmit loss detection (once per loss
	// recovery episode, not per lost packet).
	OnLoss(now sim.Time)
	// OnTimeout reacts to a retransmission timeout.
	OnTimeout(now sim.Time)
	// Window returns the congestion window in bytes: the amount of data the
	// sender may keep in flight.
	Window() int
	// PacingGap returns the minimum spacing between consecutive data
	// packets, or zero for pure window-based transmission.
	PacingGap() sim.Time
}

// MinWindow is the floor for window-based algorithms: one MSS. The paper
// calls the state where every flow sits at this floor the degenerate point.
const MinWindow = netsim.MSS

// MaxWindow is the sanity ceiling for congestion windows and ssthresh: the
// algorithms here initialize ssthresh to 1<<30 and only ever shrink it, so
// any value above this bound indicates state corruption.
const MaxWindow = 1 << 30

// Probe is a read-only snapshot of an algorithm's internal congestion state,
// exposed so the invariant auditor can check protocol bounds (cwnd and
// ssthresh within [MinWindow, MaxWindow], alpha within [0, 1]) without
// coupling the auditor to concrete types. Has* flags report which optional
// fields the algorithm populates.
type Probe struct {
	// CwndBytes is the effective congestion window, as Window() reports it.
	CwndBytes int
	// SsthreshBytes is the slow-start threshold (window-based algorithms).
	SsthreshBytes int
	HasSsthresh   bool
	// Alpha is DCTCP's congestion estimate in [0, 1].
	Alpha    float64
	HasAlpha bool
	// FractionalWindowBytes is the sub-MSS internal window of pacing
	// algorithms (Swift); must be positive and finite.
	FractionalWindowBytes float64
	HasFractionalWindow   bool
	// CapBytes is an outer clamp on the window (Guardrail); 0 = none.
	CapBytes int
}

// Inspectable is implemented by algorithms that expose a state Probe.
type Inspectable interface {
	Probe() Probe
}

// UpdateCounter is implemented by algorithms that count congestion-window
// updates (any assignment that changed cwnd: growth, proportional or
// multiplicative decrease, timeout collapse). The observability layer sums
// these across flows; the counters are plain int64 increments on the ACK
// path and never influence algorithm behavior.
type UpdateCounter interface {
	// CwndUpdates returns the number of window changes so far.
	CwndUpdates() int64
}

// IncastNotifiable is implemented by algorithms that react to explicit
// switch-originated incast notifications (netsim.Packet.IncastNotify).
// The transport delivers the signal out of band from the ACK clock: it can
// arrive mid-round, before any marked ACK of the burst has echoed back.
type IncastNotifiable interface {
	// OnIncastNotification reacts to one notification packet.
	OnIncastNotification(now sim.Time)
}

// IdleRestarter is implemented by algorithms that support RFC 2861-style
// congestion window validation: after an idle period the window collapses
// back to the initial window instead of trusting stale state. The paper's
// simulations deliberately do NOT restart — persistent connections carry
// their windows across bursts, which is what makes the Section 4.3
// straggler divergence possible.
type IdleRestarter interface {
	// OnIdleRestart clamps the window to the initial window.
	OnIdleRestart()
}

// Reno is a classic slow-start + AIMD algorithm (RFC 5681 flavored,
// simplified to what the simulations need). It ignores ECN echoes.
type Reno struct {
	cwnd     int
	ssthresh int
	initial  int
	updates  int64
}

// NewReno creates a Reno instance with the given initial window in bytes.
func NewReno(initialWindow int) *Reno {
	if initialWindow < MinWindow {
		initialWindow = MinWindow
	}
	return &Reno{cwnd: initialWindow, ssthresh: 1 << 30, initial: initialWindow}
}

// OnIdleRestart implements IdleRestarter.
func (r *Reno) OnIdleRestart() {
	if r.cwnd > r.initial {
		r.cwnd = r.initial
	}
}

// Name implements Algorithm.
func (r *Reno) Name() string { return "reno" }

// OnAck grows the window: exponentially in slow start, ~1 MSS/RTT after.
func (r *Reno) OnAck(a Ack) {
	before := r.cwnd
	if r.cwnd < r.ssthresh {
		r.cwnd += a.BytesAcked
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
	} else {
		r.cwnd += netsim.MSS * a.BytesAcked / r.cwnd
	}
	if r.cwnd != before {
		r.updates++
	}
}

// OnLoss halves the window (fast recovery).
func (r *Reno) OnLoss(now sim.Time) {
	r.ssthresh = maxInt(r.cwnd/2, MinWindow)
	r.cwnd = r.ssthresh
	r.updates++
}

// OnTimeout collapses to one segment and restarts slow start.
func (r *Reno) OnTimeout(now sim.Time) {
	r.ssthresh = maxInt(r.cwnd/2, MinWindow)
	r.cwnd = MinWindow
	r.updates++
}

// CwndUpdates implements UpdateCounter.
func (r *Reno) CwndUpdates() int64 { return r.updates }

// Window implements Algorithm.
func (r *Reno) Window() int { return r.cwnd }

// Probe implements Inspectable.
func (r *Reno) Probe() Probe {
	return Probe{CwndBytes: r.cwnd, SsthreshBytes: r.ssthresh, HasSsthresh: true}
}

// PacingGap implements Algorithm; Reno is purely window-based.
func (r *Reno) PacingGap() sim.Time { return 0 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
