package cc

import (
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// PulserConfig tunes the Pulser reaction. Zero fields take defaults.
type PulserConfig struct {
	// Backoff is the multiplicative factor applied to the effective window
	// on each notification, in (0, 1). Default 0.5.
	Backoff float64
	// HoldAcks is how many ACKs after a notification the clamp holds flat
	// before it starts releasing additively. Roughly the notification's
	// "quiet period" expressed in ACK-clock ticks. Default 4.
	HoldAcks int
	// ReleaseBytes is the additive per-ACK growth of the clamp once the
	// hold expires; the clamp dissolves when it reaches the inner window.
	// Default one MSS.
	ReleaseBytes int
}

func (c PulserConfig) withDefaults() PulserConfig {
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.5
	}
	if c.HoldAcks <= 0 {
		c.HoldAcks = 4
	}
	if c.ReleaseBytes <= 0 {
		c.ReleaseBytes = netsim.MSS
	}
	return c
}

// Pulser wraps another window-based algorithm with the explicit-notification
// reaction: on each switch-originated incast notification the effective
// window is multiplicatively cut, immediately, without waiting for the
// mark-echo round trip the inner algorithm's own backoff needs. The inner
// algorithm keeps evolving its state; Pulser clamps what it reports, holds
// the clamp for a few ACKs, then releases it additively until the inner
// window takes over again. Repeated notifications compound, so a sender
// that keeps overdriving the fabric converges to the minimum window.
//
// This reaction is deliberately distinct from per-ACK ECN processing: ECN
// marks feed the inner algorithm exactly as before; only notifications
// touch the clamp.
type Pulser struct {
	inner Algorithm
	cfg   PulserConfig

	// capBytes is the current clamp; non-positive means none.
	capBytes int
	// acksSinceNotify gates the additive release.
	acksSinceNotify int
	notifications   int64
}

// NewPulser wraps inner with the notification reaction.
func NewPulser(inner Algorithm, cfg PulserConfig) *Pulser {
	if inner == nil {
		panic("cc: pulser needs an inner algorithm")
	}
	return &Pulser{inner: inner, cfg: cfg.withDefaults()}
}

// Name implements Algorithm.
func (p *Pulser) Name() string { return p.inner.Name() + "+pulser" }

// Inner returns the wrapped algorithm.
func (p *Pulser) Inner() Algorithm { return p.inner }

// Notifications returns how many notifications this flow has reacted to.
func (p *Pulser) Notifications() int64 { return p.notifications }

// OnIncastNotification implements IncastNotifiable: multiplicative backoff
// of the effective window, compounding across notifications.
func (p *Pulser) OnIncastNotification(now sim.Time) {
	base := p.Window()
	clamp := int(p.cfg.Backoff * float64(base))
	if clamp < MinWindow {
		clamp = MinWindow
	}
	p.capBytes = clamp
	p.acksSinceNotify = 0
	p.notifications++
}

// OnAck forwards to the inner algorithm, then advances the clamp release.
func (p *Pulser) OnAck(a Ack) {
	p.inner.OnAck(a)
	if p.capBytes <= 0 {
		return
	}
	p.acksSinceNotify++
	if p.acksSinceNotify <= p.cfg.HoldAcks {
		return
	}
	p.capBytes += p.cfg.ReleaseBytes
	if p.capBytes >= p.inner.Window() {
		p.capBytes = 0
	}
}

// OnLoss forwards to the inner algorithm.
func (p *Pulser) OnLoss(now sim.Time) { p.inner.OnLoss(now) }

// OnTimeout forwards to the inner algorithm and drops the clamp: the inner
// collapse to MinWindow is already at or below anything the clamp holds.
func (p *Pulser) OnTimeout(now sim.Time) {
	p.inner.OnTimeout(now)
	p.capBytes = 0
}

// Window returns the inner window clamped by the notification backoff.
func (p *Pulser) Window() int {
	w := p.inner.Window()
	if p.capBytes > 0 && w > p.capBytes {
		return p.capBytes
	}
	return w
}

// PacingGap forwards to the inner algorithm.
func (p *Pulser) PacingGap() sim.Time { return p.inner.PacingGap() }

// Probe implements Inspectable: the inner probe with the effective window
// and clamp filled in. When the inner algorithm also carries a cap
// (guardrail), the tighter of the two is reported.
func (p *Pulser) Probe() Probe {
	var pr Probe
	if in, ok := p.inner.(Inspectable); ok {
		pr = in.Probe()
	}
	pr.CwndBytes = p.Window()
	if p.capBytes > 0 && (pr.CapBytes <= 0 || p.capBytes < pr.CapBytes) {
		pr.CapBytes = p.capBytes
	}
	return pr
}

// OnIdleRestart forwards to the inner algorithm when it supports restarts.
func (p *Pulser) OnIdleRestart() {
	if ir, ok := p.inner.(IdleRestarter); ok {
		ir.OnIdleRestart()
	}
}

// CwndUpdates forwards the inner algorithm's update count.
func (p *Pulser) CwndUpdates() int64 {
	if uc, ok := p.inner.(UpdateCounter); ok {
		return uc.CwndUpdates()
	}
	return 0
}
