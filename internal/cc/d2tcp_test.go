package cc

import (
	"testing"

	"incastlab/internal/netsim"
)

// markedWindowReduction drives one fully-marked window through the
// algorithm and returns the resulting window.
func markedWindowReduction(alg Algorithm, start int) int {
	alg.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: netsim.MSS, SndNxt: int64(start), ECE: true})
	return alg.Window()
}

func TestD2TCPNeutralMatchesDCTCP(t *testing.T) {
	// With d = 1 the penalty is alpha/2: identical to DCTCP.
	mk := func() (Algorithm, Algorithm) {
		dc := DCTCPConfig{InitialWindow: 16 * netsim.MSS, G: 1, InitialAlpha: 1}
		return NewDCTCP(dc), NewD2TCP(D2TCPConfig{DCTCP: dc, D: 1})
	}
	dctcp, d2 := mk()
	if a, b := markedWindowReduction(dctcp, 16*netsim.MSS), markedWindowReduction(d2, 16*netsim.MSS); a != b {
		t.Fatalf("neutral D2TCP reduced to %d, DCTCP to %d", b, a)
	}
}

func TestD2TCPDeadlineGammaCorrection(t *testing.T) {
	// p = alpha^d with alpha = 0.25: the tight flow (d=2) gets
	// p = 0.0625, the slack flow (d=0.5) gets p = 0.5 — tight deadlines
	// back off less and must retain the larger window.
	// A small gain keeps alpha near its 0.25 seed through the first
	// marked window (with G=1 the first window observation would snap
	// alpha straight to 1 and mask the correction).
	dc := DCTCPConfig{InitialWindow: 64 * netsim.MSS, G: 1.0 / 16, InitialAlpha: 0.25}
	tight := NewD2TCP(D2TCPConfig{DCTCP: dc, D: 2})
	slack := NewD2TCP(D2TCPConfig{DCTCP: dc, D: 0.5})
	wTight := markedWindowReduction(tight, 64*netsim.MSS)
	wSlack := markedWindowReduction(slack, 64*netsim.MSS)
	if wTight <= wSlack {
		t.Fatalf("tight-deadline window %d <= slack %d; tight flows must back off less",
			wTight, wSlack)
	}
}

func TestD2TCPFactorClamping(t *testing.T) {
	d2 := NewD2TCP(D2TCPConfig{DCTCP: DefaultDCTCPConfig(), D: 99})
	if d2.DeadlineFactor() != 2 {
		t.Fatalf("factor = %v, want clamped to 2", d2.DeadlineFactor())
	}
	d2.SetDeadlineFactor(0.01)
	if d2.DeadlineFactor() != 0.5 {
		t.Fatalf("factor = %v, want clamped to 0.5", d2.DeadlineFactor())
	}
	if NewD2TCP(D2TCPConfig{DCTCP: DefaultDCTCPConfig()}).DeadlineFactor() != 1 {
		t.Fatal("zero factor should default to neutral")
	}
}

func TestD2TCPDegeneratePoint(t *testing.T) {
	// Like DCTCP, persistent marking pins the window at one MSS.
	d2 := NewD2TCP(DefaultD2TCPConfig())
	var seq int64
	for i := 0; i < 100; i++ {
		seq += netsim.MSS
		d2.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: seq, SndNxt: seq + int64(d2.Window()), ECE: true})
	}
	if d2.Window() != MinWindow {
		t.Fatalf("window = %d, want degenerate point", d2.Window())
	}
	if d2.Name() != "d2tcp" {
		t.Fatalf("name = %q", d2.Name())
	}
}
