package cc

import (
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// SwiftConfig tunes the Swift-like delay-based algorithm.
type SwiftConfig struct {
	// TargetDelay is the end-to-end delay target; windows shrink when
	// measured RTT exceeds it.
	TargetDelay sim.Time
	// BaseRTT is the uncongested round-trip time, used to convert windows
	// to pacing gaps when the window is below one MSS.
	BaseRTT sim.Time
	// InitialWindow is the starting window in bytes.
	InitialWindow int
	// AI is the additive increase in bytes per RTT when below target.
	AI int
	// Beta is the maximum fractional multiplicative decrease per RTT.
	Beta float64
	// MinWindowBytes is the floor; Swift supports windows far below one
	// MSS (e.g. 0.01 packets) by pacing. Default MSS/100.
	MinWindowBytes float64
}

// DefaultSwiftConfig returns parameters scaled to the paper's dumbbell:
// target delay a few times base RTT, fair-share-friendly gains.
func DefaultSwiftConfig(baseRTT sim.Time) SwiftConfig {
	return SwiftConfig{
		TargetDelay:    baseRTT + baseRTT/2,
		BaseRTT:        baseRTT,
		InitialWindow:  10 * netsim.MSS,
		AI:             netsim.MSS,
		Beta:           0.8,
		MinWindowBytes: float64(netsim.MSS) / 100,
	}
}

// Swift is a delay-based algorithm in the spirit of Kumar et al. (SIGCOMM
// 2020): additive increase while RTT is below target, multiplicative
// decrease proportional to the excess delay otherwise. Its distinguishing
// feature for incast is operation *below* one packet per RTT: when the
// window shrinks under one MSS the sender keeps the window at one MSS but
// stretches the pacing gap so the average rate matches the fractional
// window — "sending one packet every several RTTs". The paper's Section 5.2
// explains why this only helps long incasts; the benchmarks reproduce that
// trade-off.
type Swift struct {
	cfg SwiftConfig
	// wnd is the fractional window in bytes.
	wnd float64
	// lastDecrease enforces at most one multiplicative decrease per RTT.
	lastDecrease sim.Time
	lastRTT      sim.Time
}

// NewSwift creates a Swift instance.
func NewSwift(cfg SwiftConfig) *Swift {
	if cfg.TargetDelay <= 0 || cfg.BaseRTT <= 0 {
		panic("cc: swift needs positive target delay and base RTT")
	}
	if cfg.InitialWindow < 1 {
		cfg.InitialWindow = netsim.MSS
	}
	if cfg.AI <= 0 {
		cfg.AI = netsim.MSS
	}
	if cfg.Beta <= 0 || cfg.Beta >= 1 {
		panic("cc: swift beta must be in (0, 1)")
	}
	if cfg.MinWindowBytes <= 0 {
		cfg.MinWindowBytes = float64(netsim.MSS) / 100
	}
	return &Swift{cfg: cfg, wnd: float64(cfg.InitialWindow), lastDecrease: -1 << 60}
}

// Name implements Algorithm.
func (s *Swift) Name() string { return "swift" }

// Config returns the configuration the instance runs with (after default
// filling), so other layers — e.g. internal/flowsim's reduced-form lowering
// — can mirror its parameters.
func (s *Swift) Config() SwiftConfig { return s.cfg }

// FractionalWindow returns the internal window in bytes, which may be less
// than one MSS.
func (s *Swift) FractionalWindow() float64 { return s.wnd }

// OnAck adjusts the window from the delay sample.
func (s *Swift) OnAck(a Ack) {
	if a.RTT <= 0 {
		return
	}
	s.lastRTT = a.RTT
	if a.RTT < s.cfg.TargetDelay {
		// Additive increase, spread across the ACKs of one window.
		inc := float64(s.cfg.AI) * float64(a.BytesAcked) / maxFloat(s.wnd, 1)
		s.wnd += inc
		return
	}
	// Multiplicative decrease scaled by how far beyond target we are, at
	// most once per RTT.
	if a.Now-s.lastDecrease < a.RTT {
		return
	}
	s.lastDecrease = a.Now
	excess := float64(a.RTT-s.cfg.TargetDelay) / float64(a.RTT)
	factor := 1 - s.cfg.Beta*excess
	if factor < 0.3 {
		factor = 0.3
	}
	s.wnd *= factor
	if s.wnd < s.cfg.MinWindowBytes {
		s.wnd = s.cfg.MinWindowBytes
	}
}

// OnLoss applies a strong decrease.
func (s *Swift) OnLoss(now sim.Time) {
	s.wnd *= 0.5
	if s.wnd < s.cfg.MinWindowBytes {
		s.wnd = s.cfg.MinWindowBytes
	}
}

// OnTimeout collapses to the minimum window.
func (s *Swift) OnTimeout(now sim.Time) { s.wnd = s.cfg.MinWindowBytes }

// Window reports the transmission window: at least one MSS (the transport
// sends whole segments); fractional windows are realized by PacingGap.
func (s *Swift) Window() int {
	if s.wnd < float64(netsim.MSS) {
		return netsim.MSS
	}
	return int(s.wnd)
}

// Probe implements Inspectable.
func (s *Swift) Probe() Probe {
	return Probe{
		CwndBytes:             s.Window(),
		FractionalWindowBytes: s.wnd,
		HasFractionalWindow:   true,
	}
}

// PacingGap stretches inter-packet spacing when the fractional window is
// below one MSS: one MSS every (MSS/wnd) RTTs.
func (s *Swift) PacingGap() sim.Time {
	if s.wnd >= float64(netsim.MSS) {
		return 0
	}
	rtt := s.lastRTT
	if rtt <= 0 {
		rtt = s.cfg.BaseRTT
	}
	gap := float64(rtt) * float64(netsim.MSS) / s.wnd
	return sim.Time(gap)
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
