package cc

import (
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// Guardrail wraps another window-based algorithm with the paper's
// Section 5.1 proposal: "simple guardrails that prevent TCP from ramping up
// excessively during incast". The cap is sized from a *prediction* of the
// incast degree (Section 3.3 shows per-service flow-count distributions are
// stable, hence predictable): with N flows expected to share a bottleneck
// whose queue should sit near the marking threshold K, each flow's fair
// share of in-flight data is (BDP + K) / N.
//
// The inner algorithm keeps evolving its own state; Guardrail clamps both
// the reported window and the inner ramp so that stragglers cannot
// "unlearn" the incast window between bursts (the Section 4.3 divergence).
type Guardrail struct {
	inner Algorithm

	// capBytes is the current clamp; non-positive means no clamp.
	capBytes int

	// bdpBytes and ecnThresholdBytes size the cap from predictions.
	bdpBytes          int
	ecnThresholdBytes int
}

// NewGuardrail wraps inner. Callers size the cap either directly with
// SetCap or from a predicted incast degree with Predict.
func NewGuardrail(inner Algorithm, bdpBytes, ecnThresholdBytes int) *Guardrail {
	if inner == nil {
		panic("cc: guardrail needs an inner algorithm")
	}
	if bdpBytes <= 0 || ecnThresholdBytes <= 0 {
		panic("cc: guardrail needs positive BDP and ECN threshold")
	}
	return &Guardrail{inner: inner, bdpBytes: bdpBytes, ecnThresholdBytes: ecnThresholdBytes}
}

// Name implements Algorithm.
func (g *Guardrail) Name() string { return g.inner.Name() + "+guardrail" }

// Inner returns the wrapped algorithm.
func (g *Guardrail) Inner() Algorithm { return g.inner }

// SetCap sets the clamp directly, in bytes. Values below one MSS clamp to
// one MSS (the transport cannot send less); non-positive removes the clamp.
func (g *Guardrail) SetCap(bytes int) {
	if bytes > 0 && bytes < MinWindow {
		bytes = MinWindow
	}
	g.capBytes = bytes
}

// Cap returns the current clamp in bytes (non-positive = none).
func (g *Guardrail) Cap() int { return g.capBytes }

// Predict sizes the cap for an expected incast of n flows: each flow gets
// its share of BDP plus the marking headroom. Predicting n <= 0 removes the
// cap (no incast expected).
func (g *Guardrail) Predict(n int) {
	if n <= 0 {
		g.capBytes = 0
		return
	}
	g.SetCap((g.bdpBytes + g.ecnThresholdBytes) / n)
}

// OnAck forwards to the inner algorithm.
func (g *Guardrail) OnAck(a Ack) { g.inner.OnAck(a) }

// OnLoss forwards to the inner algorithm.
func (g *Guardrail) OnLoss(now sim.Time) { g.inner.OnLoss(now) }

// OnTimeout forwards to the inner algorithm.
func (g *Guardrail) OnTimeout(now sim.Time) { g.inner.OnTimeout(now) }

// Window returns the inner window clamped to the cap.
func (g *Guardrail) Window() int {
	w := g.inner.Window()
	if g.capBytes > 0 && w > g.capBytes {
		return g.capBytes
	}
	return w
}

// Probe implements Inspectable: the inner algorithm's probe with the
// effective (clamped) window and the cap filled in.
func (g *Guardrail) Probe() Probe {
	var p Probe
	if in, ok := g.inner.(Inspectable); ok {
		p = in.Probe()
	}
	p.CwndBytes = g.Window()
	p.CapBytes = g.capBytes
	return p
}

// PacingGap stretches packet spacing when the cap is below one MSS's worth
// of fair share; with the MSS floor this is rarely needed, so it simply
// forwards to the inner algorithm.
func (g *Guardrail) PacingGap() sim.Time { return g.inner.PacingGap() }

// OnIncastNotification forwards to the inner algorithm when it reacts to
// explicit incast notifications.
func (g *Guardrail) OnIncastNotification(now sim.Time) {
	if in, ok := g.inner.(IncastNotifiable); ok {
		in.OnIncastNotification(now)
	}
}

// OnIdleRestart forwards to the inner algorithm when it supports restarts.
func (g *Guardrail) OnIdleRestart() {
	if ir, ok := g.inner.(IdleRestarter); ok {
		ir.OnIdleRestart()
	}
}

// CwndUpdates forwards the inner algorithm's update count (0 when the
// inner algorithm does not count).
func (g *Guardrail) CwndUpdates() int64 {
	if uc, ok := g.inner.(UpdateCounter); ok {
		return uc.CwndUpdates()
	}
	return 0
}

// FairShareCap returns the cap Guardrail would pick for n flows given the
// bottleneck parameters, exported for tests and planning tools.
func FairShareCap(bdpBytes, ecnThresholdBytes, n int) int {
	c := (bdpBytes + ecnThresholdBytes) / n
	if c < netsim.MSS {
		return netsim.MSS
	}
	return c
}
