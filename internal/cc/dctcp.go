package cc

import (
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// DCTCPConfig tunes the DCTCP algorithm.
type DCTCPConfig struct {
	// InitialWindow is the starting congestion window in bytes
	// (default 10 MSS, the Linux default).
	InitialWindow int
	// G is the EWMA gain for the congestion estimate alpha. The paper's
	// production deployment uses 1/16 (from Equation 15 of the DCTCP
	// paper); the original paper also discusses 1/2 and 1/4.
	G float64
	// InitialAlpha is the starting congestion estimate. Linux starts at 1
	// (conservative); 0 ramps faster. Default 1.
	InitialAlpha float64
}

// DefaultDCTCPConfig returns the paper's parameters: IW = 10 MSS, g = 1/16.
func DefaultDCTCPConfig() DCTCPConfig {
	return DCTCPConfig{
		InitialWindow: 10 * netsim.MSS,
		G:             1.0 / 16.0,
		InitialAlpha:  1,
	}
}

// DCTCP implements Data Center TCP: the sender estimates the fraction of
// ECN-marked bytes per window (alpha, an EWMA with gain g) and, once per
// window in which any mark was echoed, shrinks the congestion window
// proportionally: cwnd *= 1 - alpha/2. Slow start and additive increase are
// inherited from standard TCP. The window never drops below one MSS; with N
// flows all at the floor, total in-flight data is N packets, which is what
// breaks the algorithm at high incast degree (the paper's Mode 2).
type DCTCP struct {
	cfg      DCTCPConfig
	cwnd     int
	ssthresh int

	alpha float64

	// Per-observation-window accounting: the window ends when AckNo passes
	// nextSeq (one RTT of data), at which point alpha is updated.
	ackedBytes  int64
	markedBytes int64
	nextSeq     int64

	// reducedThisWindow ensures at most one multiplicative decrease per
	// window of data, mirroring TCP's once-per-RTT reaction.
	reducedThisWindow bool

	// penalty maps alpha to the multiplicative-decrease fraction. DCTCP
	// uses alpha/2; D2TCP substitutes the deadline-corrected
	// alpha^(1/d)/2 through this hook.
	penalty func(alpha float64) float64

	// updates counts congestion-window changes, for the observability
	// layer (UpdateCounter). Plain increments; never read by the algorithm.
	updates int64
}

// NewDCTCP creates a DCTCP instance.
func NewDCTCP(cfg DCTCPConfig) *DCTCP {
	if cfg.InitialWindow < MinWindow {
		cfg.InitialWindow = MinWindow
	}
	if cfg.G <= 0 || cfg.G > 1 {
		panic("cc: DCTCP g must be in (0, 1]")
	}
	if cfg.InitialAlpha < 0 || cfg.InitialAlpha > 1 {
		panic("cc: DCTCP initial alpha must be in [0, 1]")
	}
	return &DCTCP{
		cfg:      cfg,
		cwnd:     cfg.InitialWindow,
		ssthresh: 1 << 30,
		alpha:    cfg.InitialAlpha,
		penalty:  func(alpha float64) float64 { return alpha / 2 },
	}
}

// Name implements Algorithm.
func (d *DCTCP) Name() string { return "dctcp" }

// Config returns the configuration the instance runs with (after default
// filling), so other layers — e.g. internal/flowsim's reduced-form lowering
// — can mirror its parameters.
func (d *DCTCP) Config() DCTCPConfig { return d.cfg }

// Alpha returns the current congestion estimate, for instrumentation.
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck processes an ACK: account marked bytes, close out observation
// windows, apply at most one proportional decrease per window, and otherwise
// grow like standard TCP.
func (d *DCTCP) OnAck(a Ack) {
	d.ackedBytes += int64(a.BytesAcked)
	if a.ECE {
		d.markedBytes += int64(a.BytesAcked)
	}

	// End of an observation window: one window's worth of data has been
	// acknowledged. Update alpha from the observed marking fraction.
	if a.AckNo >= d.nextSeq {
		if d.ackedBytes > 0 {
			f := float64(d.markedBytes) / float64(d.ackedBytes)
			d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G*f
		}
		d.ackedBytes, d.markedBytes = 0, 0
		d.nextSeq = a.SndNxt
		d.reducedThisWindow = false
	}

	if a.ECE {
		if !d.reducedThisWindow {
			d.reducedThisWindow = true
			before := d.cwnd
			d.cwnd = int(float64(d.cwnd) * (1 - d.penalty(d.alpha)))
			if d.cwnd < MinWindow {
				d.cwnd = MinWindow
			}
			d.ssthresh = d.cwnd
			if d.cwnd != before {
				d.updates++
			}
		}
		// No growth on marked ACKs.
		return
	}

	before := d.cwnd
	if d.cwnd < d.ssthresh {
		d.cwnd += a.BytesAcked
		if d.cwnd > d.ssthresh {
			d.cwnd = d.ssthresh
		}
	} else {
		d.cwnd += netsim.MSS * a.BytesAcked / d.cwnd
	}
	if d.cwnd != before {
		d.updates++
	}
}

// OnLoss halves the window, as for standard TCP: DCTCP falls back to loss
// behavior when marking was not enough.
func (d *DCTCP) OnLoss(now sim.Time) {
	d.ssthresh = maxInt(d.cwnd/2, MinWindow)
	d.cwnd = d.ssthresh
	d.updates++
}

// OnTimeout collapses the window to one MSS.
func (d *DCTCP) OnTimeout(now sim.Time) {
	d.ssthresh = maxInt(d.cwnd/2, MinWindow)
	d.cwnd = MinWindow
	d.updates++
}

// CwndUpdates implements UpdateCounter.
func (d *DCTCP) CwndUpdates() int64 { return d.updates }

// Window implements Algorithm.
func (d *DCTCP) Window() int { return d.cwnd }

// Probe implements Inspectable.
func (d *DCTCP) Probe() Probe {
	return Probe{
		CwndBytes:     d.cwnd,
		SsthreshBytes: d.ssthresh,
		HasSsthresh:   true,
		Alpha:         d.alpha,
		HasAlpha:      true,
	}
}

// PacingGap implements Algorithm; DCTCP is window-based.
func (d *DCTCP) PacingGap() sim.Time { return 0 }

// OnIdleRestart implements IdleRestarter: clamp to the initial window.
func (d *DCTCP) OnIdleRestart() {
	if d.cwnd > d.cfg.InitialWindow {
		d.cwnd = d.cfg.InitialWindow
	}
}
