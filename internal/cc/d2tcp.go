package cc

import "math"

// D2TCPConfig tunes Deadline-Aware Datacenter TCP.
type D2TCPConfig struct {
	// DCTCP supplies the underlying congestion machinery.
	DCTCP DCTCPConfig
	// D is the deadline imminence factor: > 1 means the deadline is tight
	// (back off less), < 1 means slack (back off more). Vamanan et al.
	// bound it to [0.5, 2]; 0 means neutral (1).
	D float64
}

// DefaultD2TCPConfig returns the paper's DCTCP parameters with a neutral
// deadline factor (identical behavior to DCTCP).
func DefaultD2TCPConfig() D2TCPConfig {
	return D2TCPConfig{DCTCP: DefaultDCTCPConfig(), D: 1}
}

// D2TCP implements Deadline-Aware Datacenter TCP (Vamanan et al., SIGCOMM
// 2012), one of the O(50)-flow designs the paper cites: DCTCP's backoff is
// gamma-corrected by the flow's deadline imminence — penalty p = alpha^d,
// window *= (1 - p/2). With alpha in (0,1), a tight deadline (d > 1)
// yields p < alpha and hence a gentler backoff, while a slack flow
// (d < 1) yields ground sooner. Under deep incast it inherits DCTCP's
// 1-MSS floor and therefore the same degenerate point.
type D2TCP struct {
	*DCTCP
	d float64
}

// NewD2TCP creates a D2TCP instance.
func NewD2TCP(cfg D2TCPConfig) *D2TCP {
	t := &D2TCP{DCTCP: NewDCTCP(cfg.DCTCP)}
	t.setD(cfg.D)
	t.DCTCP.penalty = func(alpha float64) float64 {
		return math.Pow(alpha, t.d) / 2
	}
	return t
}

func (t *D2TCP) setD(d float64) {
	if d == 0 {
		d = 1
	}
	if d < 0.5 {
		d = 0.5
	}
	if d > 2 {
		d = 2
	}
	t.d = d
}

// Name implements Algorithm.
func (t *D2TCP) Name() string { return "d2tcp" }

// SetDeadlineFactor updates the imminence factor as the flow progresses
// (applications recompute it per RTT in the original design).
func (t *D2TCP) SetDeadlineFactor(d float64) { t.setD(d) }

// DeadlineFactor returns the current imminence factor.
func (t *D2TCP) DeadlineFactor() float64 { return t.d }

var (
	_ Algorithm     = (*D2TCP)(nil)
	_ IdleRestarter = (*D2TCP)(nil)
)
