package cc

import (
	"testing"
	"testing/quick"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// driveRandom feeds an arbitrary event stream into alg and reports whether
// the window invariant (>= MinWindow for window-based algorithms) held
// throughout.
func driveRandom(alg Algorithm, events []byte) bool {
	var seq int64
	now := sim.Time(0)
	for _, e := range events {
		now += sim.Time(e) * sim.Microsecond
		seq += netsim.MSS
		switch {
		case e < 170:
			alg.OnAck(Ack{
				Now:        now,
				BytesAcked: netsim.MSS,
				AckNo:      seq,
				SndNxt:     seq + int64(alg.Window()),
				ECE:        e%3 == 0,
				RTT:        sim.Time(10+int(e)) * sim.Microsecond,
			})
		case e < 220:
			alg.OnLoss(now)
		default:
			alg.OnTimeout(now)
		}
		if alg.Window() < MinWindow {
			return false
		}
		if alg.PacingGap() < 0 {
			return false
		}
	}
	return true
}

func TestRenoWindowBoundsProperty(t *testing.T) {
	f := func(events []byte) bool { return driveRandom(NewReno(10*netsim.MSS), events) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestD2TCPWindowBoundsProperty(t *testing.T) {
	f := func(events []byte, d uint8) bool {
		cfg := DefaultD2TCPConfig()
		cfg.D = 0.5 + float64(d)/170 // spans [0.5, 2]
		return driveRandom(NewD2TCP(cfg), events)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSwiftWindowBoundsProperty(t *testing.T) {
	f := func(events []byte) bool {
		alg := NewSwift(DefaultSwiftConfig(30 * sim.Microsecond))
		if !driveRandom(alg, events) {
			return false
		}
		// Swift's fractional window must respect its configured floor.
		return alg.FractionalWindow() >= DefaultSwiftConfig(30*sim.Microsecond).MinWindowBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGuardrailWindowBoundsProperty(t *testing.T) {
	f := func(events []byte, degree uint16) bool {
		g := NewGuardrail(NewDCTCP(DefaultDCTCPConfig()), 37500, 97500)
		g.Predict(int(degree))
		if !driveRandom(g, events) {
			return false
		}
		// The cap is always honored when set.
		if g.Cap() > 0 && g.Window() > g.Cap() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDCTCPAlphaMonotonicityProperty: with full marking alpha converges
// upward toward 1; with no marking it decays toward 0 — never overshooting
// either bound.
func TestDCTCPAlphaMonotonicityProperty(t *testing.T) {
	f := func(marked bool, windows uint8) bool {
		cfg := DefaultDCTCPConfig()
		cfg.InitialAlpha = 0.5
		d := NewDCTCP(cfg)
		var seq int64
		prev := d.Alpha()
		for w := 0; w < int(windows); w++ {
			seq += netsim.MSS
			d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: seq,
				SndNxt: seq + netsim.MSS, ECE: marked})
			a := d.Alpha()
			if a < 0 || a > 1 {
				return false
			}
			if marked && a < prev-1e-12 {
				return false
			}
			if !marked && a > prev+1e-12 {
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
