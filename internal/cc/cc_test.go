package cc

import (
	"math"
	"testing"
	"testing/quick"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

func ackOf(bytes int, ece bool, ackNo, sndNxt int64) Ack {
	return Ack{Now: 0, BytesAcked: bytes, AckNo: ackNo, SndNxt: sndNxt, ECE: ece, RTT: 30 * sim.Microsecond}
}

func TestRenoSlowStartDoubles(t *testing.T) {
	r := NewReno(10 * netsim.MSS)
	start := r.Window()
	// One window's worth of ACKs doubles the window in slow start.
	var acked int64
	for acked < int64(start) {
		r.OnAck(ackOf(netsim.MSS, false, acked+netsim.MSS, acked+2*int64(start)))
		acked += netsim.MSS
	}
	if r.Window() != 2*start {
		t.Fatalf("window = %d, want %d", r.Window(), 2*start)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno(10 * netsim.MSS)
	r.OnLoss(0) // ssthresh = 5 MSS, cwnd = 5 MSS: now in CA
	w := r.Window()
	// One full window of ACKs should add about one MSS.
	var acked int
	for acked < w {
		r.OnAck(ackOf(netsim.MSS, false, 0, 0))
		acked += netsim.MSS
	}
	grown := r.Window() - w
	if grown < netsim.MSS/2 || grown > 2*netsim.MSS {
		t.Fatalf("CA growth per RTT = %d bytes, want ~1 MSS", grown)
	}
}

func TestRenoLossHalves(t *testing.T) {
	r := NewReno(20 * netsim.MSS)
	r.OnLoss(0)
	if r.Window() != 10*netsim.MSS {
		t.Fatalf("window after loss = %d", r.Window())
	}
}

func TestRenoTimeoutCollapses(t *testing.T) {
	r := NewReno(20 * netsim.MSS)
	r.OnTimeout(0)
	if r.Window() != MinWindow {
		t.Fatalf("window after timeout = %d, want %d", r.Window(), MinWindow)
	}
}

func TestRenoNeverBelowMinWindow(t *testing.T) {
	r := NewReno(netsim.MSS)
	for i := 0; i < 10; i++ {
		r.OnLoss(0)
		r.OnTimeout(0)
	}
	if r.Window() < MinWindow {
		t.Fatalf("window = %d below floor", r.Window())
	}
}

func TestDCTCPAlphaConvergesToMarkingFraction(t *testing.T) {
	d := NewDCTCP(DCTCPConfig{InitialWindow: 10 * netsim.MSS, G: 1.0 / 16.0, InitialAlpha: 0})
	// Feed 200 observation windows with 50% marking.
	var seq int64
	for w := 0; w < 200; w++ {
		for i := 0; i < 10; i++ {
			ece := i < 5
			seq += netsim.MSS
			d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: seq, SndNxt: seq + 10*netsim.MSS, ECE: ece})
		}
	}
	if math.Abs(d.Alpha()-0.5) > 0.1 {
		t.Fatalf("alpha = %v, want ~0.5", d.Alpha())
	}
}

func TestDCTCPFullMarkingHalvesWindow(t *testing.T) {
	// With alpha == 1, an ECE-marked window halves cwnd (1 - 1/2).
	d := NewDCTCP(DCTCPConfig{InitialWindow: 16 * netsim.MSS, G: 1, InitialAlpha: 1})
	w := d.Window()
	d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: netsim.MSS, SndNxt: int64(w), ECE: true})
	if got := d.Window(); got != w/2 {
		t.Fatalf("window = %d, want %d", got, w/2)
	}
}

func TestDCTCPReducesOncePerWindow(t *testing.T) {
	d := NewDCTCP(DCTCPConfig{InitialWindow: 16 * netsim.MSS, G: 1, InitialAlpha: 1})
	w := d.Window()
	sndNxt := int64(w)
	// Several marked ACKs within the same window: only one reduction. Use
	// AckNo below sndNxt so no window boundary is crossed after the first.
	d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: netsim.MSS, SndNxt: sndNxt, ECE: true})
	after1 := d.Window()
	d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: 2 * netsim.MSS, SndNxt: sndNxt, ECE: true})
	d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: 3 * netsim.MSS, SndNxt: sndNxt, ECE: true})
	if d.Window() != after1 {
		t.Fatalf("window reduced more than once per window: %d -> %d", after1, d.Window())
	}
}

func TestDCTCPDegeneratePoint(t *testing.T) {
	// Persistent 100% marking drives the window to exactly one MSS and no
	// lower — the paper's degenerate point.
	d := NewDCTCP(DefaultDCTCPConfig())
	var seq int64
	for w := 0; w < 100; w++ {
		seq += netsim.MSS
		d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: seq, SndNxt: seq + int64(d.Window()), ECE: true})
	}
	if d.Window() != MinWindow {
		t.Fatalf("window = %d, want degenerate point %d", d.Window(), MinWindow)
	}
	// And it recovers when marking stops.
	for w := 0; w < 10; w++ {
		seq += netsim.MSS
		d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: seq, SndNxt: seq + int64(d.Window()), ECE: false})
	}
	if d.Window() <= MinWindow {
		t.Fatal("window should grow once marking stops")
	}
}

func TestDCTCPNoMarksGrowsLikeSlowStart(t *testing.T) {
	d := NewDCTCP(DCTCPConfig{InitialWindow: 2 * netsim.MSS, G: 1.0 / 16.0, InitialAlpha: 1})
	w := d.Window()
	var acked int64
	for acked < int64(w) {
		acked += netsim.MSS
		d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: acked, SndNxt: acked + int64(w), ECE: false})
	}
	if d.Window() != 2*w {
		t.Fatalf("window = %d, want doubled %d", d.Window(), 2*w)
	}
}

func TestDCTCPAlphaDecaysWithoutMarks(t *testing.T) {
	d := NewDCTCP(DCTCPConfig{InitialWindow: 10 * netsim.MSS, G: 1.0 / 4.0, InitialAlpha: 1})
	var seq int64
	for w := 0; w < 50; w++ {
		seq += netsim.MSS
		d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: seq, SndNxt: seq + netsim.MSS, ECE: false})
	}
	if d.Alpha() > 0.01 {
		t.Fatalf("alpha = %v, want ~0 after mark-free windows", d.Alpha())
	}
}

func TestDCTCPConfigValidation(t *testing.T) {
	for _, cfg := range []DCTCPConfig{
		{InitialWindow: netsim.MSS, G: 0},
		{InitialWindow: netsim.MSS, G: 1.5},
		{InitialWindow: netsim.MSS, G: 0.5, InitialAlpha: -0.1},
		{InitialWindow: netsim.MSS, G: 0.5, InitialAlpha: 1.1},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewDCTCP(cfg)
		}()
	}
}

// TestDCTCPWindowBoundsProperty: under arbitrary ACK sequences the window
// stays within [MinWindow, huge] and alpha within [0, 1].
func TestDCTCPWindowBoundsProperty(t *testing.T) {
	f := func(events []byte) bool {
		d := NewDCTCP(DefaultDCTCPConfig())
		var seq int64
		for _, e := range events {
			seq += netsim.MSS
			switch {
			case e < 128:
				d.OnAck(Ack{BytesAcked: netsim.MSS, AckNo: seq,
					SndNxt: seq + int64(d.Window()), ECE: e%2 == 0})
			case e < 192:
				d.OnLoss(0)
			default:
				d.OnTimeout(0)
			}
			if d.Window() < MinWindow {
				return false
			}
			if d.Alpha() < 0 || d.Alpha() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGuardrailClampsWindow(t *testing.T) {
	inner := NewDCTCP(DefaultDCTCPConfig())
	g := NewGuardrail(inner, 37500, 65*1500)
	if g.Window() != inner.Window() {
		t.Fatal("uncapped guardrail should pass through")
	}
	g.SetCap(2 * netsim.MSS)
	if g.Window() != 2*netsim.MSS {
		t.Fatalf("capped window = %d", g.Window())
	}
	g.SetCap(0)
	if g.Window() != inner.Window() {
		t.Fatal("removing the cap should restore pass-through")
	}
}

func TestGuardrailPredictSizesFairShare(t *testing.T) {
	bdp, k := 37500, 65*1500
	g := NewGuardrail(NewDCTCP(DefaultDCTCPConfig()), bdp, k)
	g.Predict(100)
	want := (bdp + k) / 100
	if want < netsim.MSS {
		want = netsim.MSS
	}
	if g.Cap() != want {
		t.Fatalf("cap = %d, want %d", g.Cap(), want)
	}
	g.Predict(0)
	if g.Cap() != 0 {
		t.Fatal("predicting no incast should remove the cap")
	}
}

func TestGuardrailCapFloorsAtMSS(t *testing.T) {
	g := NewGuardrail(NewDCTCP(DefaultDCTCPConfig()), 37500, 65*1500)
	g.Predict(100000) // absurd degree; share far below one MSS
	if g.Cap() != netsim.MSS {
		t.Fatalf("cap = %d, want MSS floor", g.Cap())
	}
}

func TestGuardrailForwardsEvents(t *testing.T) {
	inner := NewDCTCP(DefaultDCTCPConfig())
	g := NewGuardrail(inner, 37500, 65*1500)
	w := inner.Window()
	g.OnTimeout(0)
	if inner.Window() >= w {
		t.Fatal("OnTimeout was not forwarded")
	}
	if g.Name() != "dctcp+guardrail" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestFairShareCap(t *testing.T) {
	if c := FairShareCap(37500, 97500, 10); c != 13500 {
		t.Fatalf("cap = %d", c)
	}
	if c := FairShareCap(37500, 97500, 1000000); c != netsim.MSS {
		t.Fatalf("cap = %d, want MSS floor", c)
	}
}

func TestSwiftIncreasesBelowTarget(t *testing.T) {
	base := 30 * sim.Microsecond
	s := NewSwift(DefaultSwiftConfig(base))
	w := s.FractionalWindow()
	s.OnAck(Ack{Now: 0, BytesAcked: netsim.MSS, RTT: base})
	if s.FractionalWindow() <= w {
		t.Fatal("window should grow below target delay")
	}
}

func TestSwiftDecreasesAboveTarget(t *testing.T) {
	base := 30 * sim.Microsecond
	s := NewSwift(DefaultSwiftConfig(base))
	w := s.FractionalWindow()
	s.OnAck(Ack{Now: sim.Second, BytesAcked: netsim.MSS, RTT: 10 * base})
	if s.FractionalWindow() >= w {
		t.Fatal("window should shrink above target delay")
	}
}

func TestSwiftSubMSSPacing(t *testing.T) {
	base := 30 * sim.Microsecond
	s := NewSwift(DefaultSwiftConfig(base))
	// Drive the window far below one MSS with persistent congestion.
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		now += sim.Second
		s.OnAck(Ack{Now: now, BytesAcked: netsim.MSS, RTT: 20 * base})
	}
	if s.FractionalWindow() >= float64(netsim.MSS) {
		t.Fatalf("fractional window = %v, want < 1 MSS", s.FractionalWindow())
	}
	if s.Window() != netsim.MSS {
		t.Fatalf("transmission window = %d, want 1 MSS", s.Window())
	}
	gap := s.PacingGap()
	if gap <= 0 {
		t.Fatal("sub-MSS operation requires a pacing gap")
	}
	// The gap must stretch beyond one RTT: "one packet every several RTTs".
	if gap < 20*base {
		t.Fatalf("gap = %v, want at least one congested RTT", gap)
	}
}

func TestSwiftAtMostOneDecreasePerRTT(t *testing.T) {
	base := 30 * sim.Microsecond
	s := NewSwift(DefaultSwiftConfig(base))
	s.OnAck(Ack{Now: 1000, BytesAcked: netsim.MSS, RTT: 10 * base})
	w := s.FractionalWindow()
	// Immediately after, within the same RTT, no further decrease.
	s.OnAck(Ack{Now: 1001, BytesAcked: netsim.MSS, RTT: 10 * base})
	if s.FractionalWindow() != w {
		t.Fatal("swift decreased twice within one RTT")
	}
}

func TestSwiftRTTZeroIgnored(t *testing.T) {
	s := NewSwift(DefaultSwiftConfig(30 * sim.Microsecond))
	w := s.FractionalWindow()
	s.OnAck(Ack{BytesAcked: netsim.MSS, RTT: 0})
	if s.FractionalWindow() != w {
		t.Fatal("ACK without RTT sample should not move the window")
	}
}

func TestSwiftWindowFloor(t *testing.T) {
	cfg := DefaultSwiftConfig(30 * sim.Microsecond)
	s := NewSwift(cfg)
	for i := 0; i < 50; i++ {
		s.OnTimeout(0)
		s.OnLoss(0)
	}
	if s.FractionalWindow() < cfg.MinWindowBytes {
		t.Fatalf("window %v below floor %v", s.FractionalWindow(), cfg.MinWindowBytes)
	}
}
