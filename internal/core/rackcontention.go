package core

import (
	"fmt"
	"time"

	"incastlab/internal/audit"
	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
	"incastlab/internal/trace"
	"incastlab/internal/workload"
)

func init() {
	register(200, Experiment{
		Name: "ext_rack_contention", Kind: KindExtension, PaperRef: "Section 3.4 (rack-level contention)",
		Run: func(o Options) Result { return RackContention(o) },
	})
}

// RackContentionResult realizes the paper's Section 3.4 claim inside the
// packet simulator: "simultaneous burst events to other hosts on the same
// rack (i.e., rack-level contention) can consume shared switch memory and
// likely exacerbates a subset of incast bursts". A 500-flow incast that a
// port's dynamic-threshold share of the buffer absorbs when alone (the
// standing queue is N - BDP = 475 packets against a solo DT limit of 666)
// starts dropping — and timing out — once an identical incast hits the
// neighboring port of the same ToR, because the two ports' DT limits
// shrink to ~444 packets each.
type RackContentionResult struct {
	TableResult
	// Solo and Contended summarize the victim group's measured bursts
	// (burst 0 discarded).
	Solo, Contended rackGroupStats
}

type rackGroupStats struct {
	MeanBCT  sim.Time
	MaxBCT   sim.Time
	Timeouts int64
	Drops    int64
	PeakPkts int
}

// RackContention runs the experiment: the victim incast alone, then with a
// neighbor incast of the same shape to the rack's second receiver.
func RackContention(opt Options) *RackContentionResult {
	flows := 500
	bursts := 5
	if opt.Quick {
		flows = 400
		bursts = 3
	}
	groups := runParallel(opt.Workers, 2, func(i int) rackGroupStats {
		return runRackIncast(opt, flows, bursts, i == 1)
	})
	r := &RackContentionResult{Solo: groups[0], Contended: groups[1]}

	t := trace.NewTable("scenario", "mean_bct_ms", "max_bct_ms", "timeouts", "drops", "peak_queue_pkts")
	add := func(name string, s rackGroupStats) {
		t.AddRow(name, trace.Float(s.MeanBCT.Milliseconds()), trace.Float(s.MaxBCT.Milliseconds()),
			fmt.Sprint(s.Timeouts), fmt.Sprint(s.Drops), fmt.Sprint(s.PeakPkts))
	}
	add("victim_alone", r.Solo)
	add("victim_with_neighbor_incast", r.Contended)
	r.TableResult = TableResult{
		ExpName:   "ext_rack_contention",
		Artifacts: []Artifact{{File: "ext_rack_contention.csv", Table: t}},
		SummaryText: section("Extension: rack-level shared-buffer contention (packet-level)") + t.Text() +
			"\nThe same incast that the dynamic-threshold share of the buffer absorbs when\nalone loses packets once a neighbor port bursts simultaneously — Section 3.4.\n",
	}
	return r
}

// runRackIncast drives the victim group (flows senders to receiver 0) and,
// optionally, an identical neighbor group to receiver 1 from the same
// sender hosts, over one shared-buffer ToR.
func runRackIncast(opt Options, flows, bursts int, contended bool) rackGroupStats {
	const (
		duration = 15 * sim.Millisecond
		interval = 250 * sim.Millisecond
	)
	var wallStart time.Time
	if opt.Metrics != nil {
		wallStart = time.Now()
	}
	eng := sim.NewEngine()
	cfg := netsim.DefaultRackConfig(flows, 2)
	rack := netsim.NewRack(eng, cfg)

	// One hub per host: both groups' flows share the sender hosts.
	senderHubs := make([]*tcp.Hub, flows)
	for i := range senderHubs {
		senderHubs[i] = tcp.NewHub(rack.Senders[i])
	}

	mkGroup := func(receiver int, flowBase netsim.FlowID, seed uint64) *workload.Group {
		hub := tcp.NewHub(rack.Receivers[receiver])
		senders := make([]*tcp.Sender, flows)
		for i := 0; i < flows; i++ {
			flow := flowBase + netsim.FlowID(i)
			senders[i] = tcp.NewSender(eng, senderHubs[i], flow, rack.Receivers[receiver].ID(),
				cc.NewDCTCP(cc.DefaultDCTCPConfig()), tcp.DefaultSenderConfig())
			tcp.NewReceiver(eng, hub, flow, rack.Senders[i].ID(), tcp.DefaultReceiverConfig())
		}
		return workload.NewGroup(eng, senders, workload.GroupConfig{
			BytesPerFlow: workload.BytesPerFlowFor(cfg.HostLinkBps, duration, flows),
			Bursts:       bursts,
			Interval:     interval,
			JitterMax:    100 * sim.Microsecond,
			Seed:         seed,
		})
	}

	victim := mkGroup(0, 1, opt.seed())
	var neighbor *workload.Group
	if contended {
		neighbor = mkGroup(1, netsim.FlowID(flows+1), opt.seed()+7)
	}

	var auditor *audit.Auditor
	if opt.Audit {
		auditor = audit.New(eng, audit.Config{RequireDrained: true})
		auditor.WatchRack(rack)
		for _, s := range victim.Senders() {
			auditor.WatchSender(s)
		}
		if neighbor != nil {
			for _, s := range neighbor.Senders() {
				auditor.WatchSender(s)
			}
		}
		auditor.Start()
	}

	// Snapshot counters after the discarded first burst.
	var baseTimeouts, baseDrops int64
	q := rack.DownlinkQueue(0)
	eng.Schedule(interval, func() {
		baseTimeouts = victim.AggregateSenderStats().Timeouts
		baseDrops = q.Stats().DroppedPackets
	})

	eng.RunUntil(sim.Time(bursts)*interval + 20*sim.Second)
	if !victim.Done() || (neighbor != nil && !neighbor.Done()) {
		panic("core: rack contention experiment did not complete")
	}
	if auditor != nil {
		auditor.Finish()
		if err := auditor.Err(); err != nil {
			panic(fmt.Sprintf("core: rack contention experiment failed its invariant audit: %v", err))
		}
	}

	var st rackGroupStats
	n := 0
	for _, b := range victim.Bursts()[1:] {
		st.MeanBCT += b.BCT
		if b.BCT > st.MaxBCT {
			st.MaxBCT = b.BCT
		}
		n++
	}
	st.MeanBCT /= sim.Time(n)
	st.Timeouts = victim.AggregateSenderStats().Timeouts - baseTimeouts
	st.Drops = q.Stats().DroppedPackets - baseDrops
	st.PeakPkts = q.Stats().PeakPackets

	label := "solo"
	if contended {
		label = "contended"
	}
	harvestEngineRun(opt.Metrics, "ext_rack_contention", eng, wallStart,
		"scenario", label)
	return st
}
