package core

import (
	"fmt"
	"strings"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/trace"
	"incastlab/internal/workload"
)

func init() {
	register(240, Experiment{
		Name: "ext_distributed_detect", Kind: KindExtension,
		PaperRef: "Section 2 fabric + Distributed Incast Detection in DCNs",
		Run:      func(o Options) Result { return DistributedDetect(o) },
	})
}

// distDetectClos sizes the fabric: 8 racks x 72 hosts leaves 504 cross-rack
// worker slots for the N=500 operating point, with the default 2-spine,
// 100G-uplink geometry (so each source leaf offers up to 720G of host
// bandwidth into 200G of uplink — the onset surge the uplink detectors see).
func distDetectClos() netsim.ClosConfig {
	return netsim.DefaultClosConfig(8, 72)
}

// distDetectPlacements are the detection deployments under comparison: no
// detection, a single detector on the congested bottleneck port, and
// distributed per-leaf coordination across spine uplinks.
var distDetectPlacements = []string{"off", "bottleneck", "leaf"}

// distDetectConfig returns the notification config for a detection
// placement, or nil for "off". The leaf deployment uses arrival-burst
// thresholds sized for 100G uplink ports: such a port drains faster than a
// jittered onset arrives, so its queue never grows — the signature is the
// arrival surge (~85 packets per 20us window per port at N=500, vs ~24 at
// N=80), not depth.
func distDetectConfig(placement string) *NotificationConfig {
	switch placement {
	case "off":
		return nil
	case "bottleneck":
		return &NotificationConfig{}
	case "leaf":
		return &NotificationConfig{
			MinPorts:      2,
			Window:        20 * sim.Microsecond,
			BurstArrivals: 48,
		}
	}
	panic(fmt.Sprintf("core: unknown detection placement %q", placement))
}

// DistributedDetect runs one cold incast burst over a leaf/spine fabric —
// every worker opens with a fresh initial window, the onset the fabric
// actually has to detect — and compares where detection lives: on the
// aggregator's bottleneck port (which needs a standing queue to notice) vs
// distributed across every source leaf's spine-facing uplinks (which see
// the fan-in surge as synchronized arrival bursts and reach their rack's
// senders one hop away). Contrast with ext_pulser_modes, where repeated
// bursts give the bottleneck detector a sustained signal to act on.
func DistributedDetect(opt Options) *TableResult {
	flows := []int{80, 250, 500}

	type row struct {
		flows     int
		placement string
	}
	var rows []row
	var cfgs []SimConfig
	for _, n := range flows {
		for _, placement := range distDetectPlacements {
			clos := distDetectClos()
			cfg := SimConfig{
				Flows:         n,
				BurstDuration: 15 * sim.Millisecond,
				Bursts:        1,
				Seed:          opt.seed(),
				Audit:         opt.Audit,
				Clos:          &clos,
				Placement:     workload.PlacementCrossRack,
				Notification:  distDetectConfig(placement),
			}
			rows = append(rows, row{flows: n, placement: placement})
			cfgs = append(cfgs, opt.instrument("distributed_detect", cfg))
		}
	}
	results := runParallel(opt.Workers, len(cfgs), func(i int) *SimResult {
		return RunIncastSim(cfgs[i])
	})

	t := trace.NewTable("flows", "detect", "mode", "max_queue_pkts",
		"detect_latency_us", "mean_bct_ms", "max_bct_ms", "timeouts", "drops",
		"firings", "notifies")
	for i, r := range rows {
		m := results[i]
		latency := ""
		if m.DetectorFirstFire > 0 {
			latency = trace.Float(float64(m.DetectorFirstFire) / float64(sim.Microsecond))
		}
		t.AddRow(fmt.Sprint(r.flows), r.placement, mode(m),
			trace.Float(m.MaxQueue), latency,
			trace.Float(m.MeanBCT.Milliseconds()), trace.Float(m.MaxBCT.Milliseconds()),
			fmt.Sprint(m.Timeouts), fmt.Sprint(m.Drops),
			fmt.Sprint(m.DetectorFirings), fmt.Sprint(m.IncastNotifies))
	}

	var b strings.Builder
	b.WriteString(section("Extension: distributed in-fabric incast detection on a Clos"))
	b.WriteString(t.Text())
	b.WriteString("\nEach source leaf coordinates arrival-burst detectors across its 2 spine uplinks (min 2 ports within the coordination window) and notifies every same-rack flow seen within the horizon — one hop from the senders. Two things separate the placements. Discrimination: the bottleneck slope detector fires even on the healthy N=80 burst (an onset slope looks the same at any degree), while leaf coordination stays silent until the per-port arrival surge crosses the threshold on multiple uplinks at once. Knowledge: the bottleneck detector is fast only because it sits exactly on the congested port, which production operators do not know ahead of time; the leaves detect within one cross-rack RTT of onset from source-side signatures alone, anywhere in the fabric. Neither placement can recall initial windows already in flight, so a single cold burst's losses barely move — ext_pulser_modes shows the backoff paying off under sustained bursts.\n")

	return &TableResult{
		ExpName:     "ext_distributed_detect",
		Artifacts:   []Artifact{{File: "ext_distributed_detect.csv", Table: t}},
		SummaryText: b.String(),
	}
}
