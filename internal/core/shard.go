package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"incastlab/internal/scenario"
	"incastlab/internal/sweep"
	"incastlab/internal/trace"
)

// SimCodeVersion names the simulator's result-affecting code generation.
// It is baked into every sweep-cache key, so bumping it invalidates all
// cached rows at once. Bump it whenever a change alters simulation
// results (topology wiring, transport behavior, metric rendering) —
// goldens changing is the usual tell.
const SimCodeVersion = "incastlab-sim-v9"

// Shard selects the subset of sweep rows a process owns: row i belongs to
// shard Index of Count when i % Count == Index. The zero value (one shard
// owning everything) runs the whole sweep.
type Shard struct {
	Index, Count int
}

// normalize maps the zero value to 1-of-1.
func (s Shard) normalize() Shard {
	if s.Count <= 0 {
		return Shard{Index: 0, Count: 1}
	}
	return s
}

// owns reports whether row i falls to this shard.
func (s Shard) owns(i int) bool { return i%s.Count == s.Index }

// Validate rejects malformed shard selectors.
func (s Shard) Validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil // zero value: whole sweep
	}
	if s.Count < 1 {
		return fmt.Errorf("core: shard count must be at least 1 (got %d)", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("core: shard index %d out of range for %d shards", s.Index, s.Count)
	}
	return nil
}

// CacheStats summarizes one cached sweep pass.
type CacheStats struct {
	// Rows is the sweep's total row count.
	Rows int
	// Hits were served from the cache; Computed were simulated (and stored)
	// by this process; Skipped belong to other shards and were not yet
	// cached.
	Hits, Computed, Skipped int
}

func (s CacheStats) String() string {
	return fmt.Sprintf("%d rows, %d hits, %d computed, %d skipped",
		s.Rows, s.Hits, s.Computed, s.Skipped)
}

// ScenarioRowKey is the content address of one sweep row's rendered
// result cells: a hash of the code version, the canonical spec JSON, the
// row index, and every option that changes results (seed, quick mode,
// fidelity, aggregation). Worker count, audit mode, and metrics
// collection are excluded deliberately — results are bit-identical across
// those, and the cache must not fragment on them.
func ScenarioRowKey(opt Options, spec scenario.Spec, row int) string {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		// Specs are plain data; marshal cannot fail for a validated spec.
		panic(fmt.Sprintf("core: marshal spec %q: %v", spec.Name, err))
	}
	return sweep.Key(
		SimCodeVersion,
		string(specJSON),
		strconv.Itoa(row),
		strconv.FormatUint(opt.seed(), 10),
		strconv.FormatBool(opt.Quick),
		opt.Fidelity,
		opt.Aggregation,
	)
}

// RunScenarioCached is RunScenario backed by a content-addressed row
// cache and an optional shard selector. Rows already cached are reused
// (for any shard); rows this shard owns are simulated and stored; rows
// other shards own and have not computed yet are skipped. When every row
// is available the full table is assembled — entirely from rendered cells
// that went through the cache encoding, so a warm rerun is byte-identical
// to a cold one — and returned; while rows are still missing the table is
// nil and the stats say how far along the sweep is.
func RunScenarioCached(opt Options, spec scenario.Spec, cache *sweep.Cache, shard Shard) (*TableResult, CacheStats, error) {
	shard = shard.normalize()
	if err := shard.Validate(); err != nil {
		return nil, CacheStats{}, err
	}
	header, labels, cfgs, err := CompileScenario(opt, spec)
	if err != nil {
		return nil, CacheStats{}, err
	}

	stats := CacheStats{Rows: len(cfgs)}
	rows := make([][]string, len(cfgs))
	keys := make([]string, len(cfgs))
	var missed []int
	for i := range cfgs {
		keys[i] = ScenarioRowKey(opt, spec, i)
		cells, ok, err := cache.Get(keys[i])
		switch {
		case err != nil:
			return nil, stats, err
		case ok:
			rows[i] = cells
			stats.Hits++
		case shard.owns(i):
			missed = append(missed, i)
		default:
			stats.Skipped++
		}
	}

	if len(missed) > 0 {
		sub := make([]SimConfig, len(missed))
		for j, i := range missed {
			sub[j] = cfgs[i]
		}
		for j, m := range opt.runSims(spec.Name, sub) {
			i := missed[j]
			cells := ablationRow(m)
			if err := cache.Put(keys[i], cells); err != nil {
				return nil, stats, err
			}
			// Re-read through the cache so assembled output cannot depend
			// on whether a row was computed here or loaded — one encode/
			// decode path for every cell.
			cached, ok, err := cache.Get(keys[i])
			if err != nil {
				return nil, stats, err
			}
			if !ok {
				return nil, stats, fmt.Errorf("core: row %d vanished from the cache after Put", i)
			}
			rows[i] = cached
			stats.Computed++
		}
	}

	if stats.Hits+stats.Computed < stats.Rows {
		// Other shards still owe rows; no table yet.
		return nil, stats, nil
	}

	t := &trace.Table{Header: append(append([]string{}, header...), ablationHeader...)}
	for i := range rows {
		t.AddRow(append(append([]string{}, labels[i]...), rows[i]...)...)
	}
	title := spec.Title
	if title == "" {
		title = "Scenario: " + spec.Name
	}
	var b strings.Builder
	b.WriteString(section(title))
	b.WriteString(t.Text())
	if spec.Notes != "" {
		b.WriteString(spec.Notes)
		b.WriteString("\n")
	}
	return &TableResult{
		ExpName:     spec.Name,
		Artifacts:   []Artifact{{File: spec.Name + ".csv", Table: t}},
		SummaryText: b.String(),
	}, stats, nil
}
