package core

import (
	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// NotificationConfig enables the explicit incast-notification mechanism on
// a packet-level run: a switch-side detector (netsim.IncastDetector) on the
// bottleneck — or, on a Clos fabric with MinPorts > 0, coordinated per-leaf
// uplink detectors — plus a Pulser reaction (cc.Pulser) wrapped around
// every flow's congestion-control algorithm. Zero fields take defaults.
type NotificationConfig struct {
	// Detector thresholds; see netsim.IncastDetectorConfig.
	Window        sim.Time
	SlopePackets  int
	BurstArrivals int
	Cooldown      sim.Time

	// Backoff is the sender's multiplicative reaction factor in (0, 1);
	// HoldAcks is how long the backoff holds before releasing. See
	// cc.PulserConfig.
	Backoff  float64
	HoldAcks int

	// MinPorts > 0 selects distributed in-fabric detection on a Clos:
	// every leaf coordinates detectors across its spine-facing uplink
	// ports and declares incast when MinPorts of them trip within
	// CoordWindow, notifying every same-rack flow seen within FlowHorizon.
	// Zero (or a dumbbell topology) uses a single detector on the
	// bottleneck queue.
	MinPorts    int
	CoordWindow sim.Time
	FlowHorizon sim.Time
}

func (n *NotificationConfig) detector() netsim.IncastDetectorConfig {
	return netsim.IncastDetectorConfig{
		Window:        n.Window,
		SlopePackets:  n.SlopePackets,
		BurstArrivals: n.BurstArrivals,
		Cooldown:      n.Cooldown,
	}
}

func (n *NotificationConfig) pulser() cc.PulserConfig {
	return cc.PulserConfig{Backoff: n.Backoff, HoldAcks: n.HoldAcks}
}

func (n *NotificationConfig) closDetector() netsim.ClosDetectorConfig {
	return netsim.ClosDetectorConfig{
		Detector:    n.detector(),
		MinPorts:    n.MinPorts,
		CoordWindow: n.CoordWindow,
		FlowHorizon: n.FlowHorizon,
	}
}

// wrapNotificationAlg wraps cfg.Alg so every flow's algorithm carries the
// Pulser reaction. Must run after fill() (which supplies the default Alg)
// and before the workload builds senders.
func wrapNotificationAlg(cfg *SimConfig) {
	if cfg.Notification == nil {
		return
	}
	nc := cfg.Notification
	inner := cfg.Alg
	cfg.Alg = func(flow int) cc.Algorithm {
		return cc.NewPulser(inner(flow), nc.pulser())
	}
}

// detectorReadout exposes a run's switch-side detection state to the
// measurement probe: the cumulative firing count (windowed in the result)
// and the time of the first firing (zero until one happens — onset
// detection latency when the workload's first burst starts at t=0).
type detectorReadout struct {
	fired     func() int64
	firstFire func() sim.Time
}

// attachDumbbellNotification installs the single-switch detector on the
// dumbbell bottleneck: the receiver-side ToR watches its congested port and
// notifies over the reverse core path. Returns the detector readout for
// result reporting, or nil when notification is off.
func attachDumbbellNotification(cfg *SimConfig, net *netsim.Dumbbell) *detectorReadout {
	if cfg.Notification == nil {
		return nil
	}
	d, _ := netsim.AttachIncastNotification(net.ReceiverToR, net.BottleneckQueue(),
		net.Pool, cfg.Notification.detector())
	return &detectorReadout{
		fired: func() int64 { return d.Stats().Fired },
		firstFire: func() sim.Time {
			if st := d.Stats(); st.Fired > 0 {
				return st.FirstFired
			}
			return 0
		},
	}
}

// attachClosNotification installs detection on a Clos fabric: distributed
// per-leaf coordination when MinPorts > 0, otherwise a single detector on
// the aggregator's downlink port (notifying via its leaf, whose ECMP
// fallback routes cross-rack). Returns the detector readout, or nil when
// notification is off.
func attachClosNotification(cfg *SimConfig, net *netsim.Clos) *detectorReadout {
	if cfg.Notification == nil {
		return nil
	}
	if cfg.Notification.MinPorts > 0 {
		coords := netsim.AttachClosIncastDetection(net, cfg.Notification.closDetector())
		return &detectorReadout{
			fired: func() int64 {
				var fired int64
				for _, l := range coords {
					fired += l.Stats().LeafFirings
				}
				return fired
			},
			firstFire: func() sim.Time {
				var first sim.Time
				for _, l := range coords {
					st := l.Stats()
					if st.LeafFirings > 0 && (first == 0 || st.FirstFired < first) {
						first = st.FirstFired
					}
				}
				return first
			},
		}
	}
	d, _ := netsim.AttachIncastNotification(net.Leaves[0], net.DownlinkQueue(0),
		net.Pool, cfg.Notification.detector())
	return &detectorReadout{
		fired: func() int64 { return d.Stats().Fired },
		firstFire: func() sim.Time {
			if st := d.Stats(); st.Fired > 0 {
				return st.FirstFired
			}
			return 0
		},
	}
}
