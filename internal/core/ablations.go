package core

import (
	"fmt"
	"path/filepath"
	"strings"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/predict"
	"incastlab/internal/schedule"
	"incastlab/internal/sim"
	"incastlab/internal/trace"
)

// AblationResult is a compact table-plus-notes result shared by all
// ablation experiments.
type AblationResult struct {
	ExpName string
	Table   *trace.Table
	Notes   string
}

// Name implements Result.
func (r *AblationResult) Name() string { return r.ExpName }

// WriteFiles implements Result.
func (r *AblationResult) WriteFiles(dir string) error {
	return r.Table.SaveCSV(filepath.Join(dir, r.ExpName+".csv"))
}

// Summary implements Result.
func (r *AblationResult) Summary() string {
	var b strings.Builder
	b.WriteString(section("Ablation: " + r.ExpName))
	b.WriteString(r.Table.Text())
	if r.Notes != "" {
		b.WriteString(r.Notes)
		b.WriteString("\n")
	}
	return b.String()
}

// ablationRow renders a run's shared metric columns.
func ablationRow(m *SimResult) []string {
	return []string{
		trace.Float(avgBusyQueue(m)), trace.Float(m.MaxQueue), trace.Float(m.SpikePackets),
		trace.Float(m.MeanBCT.Milliseconds()),
		fmt.Sprint(m.Timeouts), fmt.Sprint(m.Drops),
		trace.Float(markRate(m)),
	}
}

// markRate returns the fraction of sent packets that were CE-marked.
func markRate(m *SimResult) float64 {
	if m.SentPackets == 0 {
		return 0
	}
	return float64(m.Marks) / float64(m.SentPackets)
}

var ablationHeader = []string{"queue_busy_avg_pkts", "queue_max_pkts", "spike_pkts",
	"mean_bct_ms", "timeouts", "drops", "mark_rate"}

// ablationBursts picks the burst count by Quick mode.
func ablationBursts(opt Options) int {
	if opt.Quick {
		return 4
	}
	return 11
}

// AblationG sweeps DCTCP's EWMA gain g in the healthy mode: small g reacts
// slowly (smoother but sluggish alpha), large g overreacts.
func AblationG(opt Options) *AblationResult {
	t := &trace.Table{Header: append([]string{"g"}, ablationHeader...)}
	gains := []float64{1.0 / 2, 1.0 / 4, 1.0 / 16, 1.0 / 64}
	var cfgs []SimConfig
	for _, g := range gains {
		g := g
		cfgs = append(cfgs, SimConfig{
			Flows:         80,
			BurstDuration: 15 * sim.Millisecond,
			Bursts:        ablationBursts(opt),
			Seed:          opt.seed(),
			Audit:         opt.Audit,
			Alg: func(int) cc.Algorithm {
				c := cc.DefaultDCTCPConfig()
				c.G = g
				return cc.NewDCTCP(c)
			},
		})
	}
	for i, m := range opt.runSims("ablation_g", cfgs) {
		t.AddRow(append([]string{trace.Float(gains[i])}, ablationRow(m)...)...)
	}
	return &AblationResult{
		ExpName: "ablation_g",
		Table:   t,
		Notes:   "The paper tunes g = 1/16 (Section 2); larger gains react faster but oscillate harder.",
	}
}

// AblationECNThreshold sweeps the switch marking threshold K: small K
// marks early (short queues, risk of underutilization with bursty hosts —
// why the production deployment uses a higher threshold than the DCTCP
// paper recommends), large K tolerates deep standing queues.
func AblationECNThreshold(opt Options) *AblationResult {
	t := &trace.Table{Header: append([]string{"ecn_threshold_pkts"}, ablationHeader...)}
	ks := []int{20, 65, 200}
	var cfgs []SimConfig
	for _, k := range ks {
		net := netsim.DefaultDumbbellConfig(80)
		net.ECNThresholdPackets = k
		cfgs = append(cfgs, SimConfig{
			Flows:         80,
			BurstDuration: 15 * sim.Millisecond,
			Bursts:        ablationBursts(opt),
			Net:           net,
			Seed:          opt.seed(),
			Audit:         opt.Audit,
		})
	}
	for i, m := range opt.runSims("ablation_ecn_threshold", cfgs) {
		t.AddRow(append([]string{fmt.Sprint(ks[i])}, ablationRow(m)...)...)
	}
	return &AblationResult{
		ExpName: "ablation_ecn_threshold",
		Table:   t,
		Notes:   "Queue depth tracks K: DCTCP parks the queue near the threshold it is given.",
	}
}

// AblationSharedBuffer compares the paper's dedicated 1333-packet queue
// against a shared switch buffer under rack-level contention at 1000
// flows: sharing shrinks the effective capacity and converts the lossless
// degenerate mode into the timeout mode (the paper's Section 3/4.1.1
// explanation for production losses at flow counts the dedicated-queue
// simulation survives).
func AblationSharedBuffer(opt Options) *AblationResult {
	t := &trace.Table{Header: append([]string{"buffer"}, ablationHeader...)}

	net := netsim.DefaultDumbbellConfig(1000)
	net.SharedBufferBytes = 2 * 1000 * 1000
	net.SharedBufferAlpha = 1
	cfgs := []SimConfig{
		{
			Flows:         1000,
			BurstDuration: 15 * sim.Millisecond,
			Bursts:        ablationBursts(opt),
			Seed:          opt.seed(),
			Audit:         opt.Audit,
		},
		{
			Flows:               1000,
			BurstDuration:       15 * sim.Millisecond,
			Bursts:              ablationBursts(opt),
			Net:                 net,
			ExternalBufferBytes: 700 * 1000,
			Seed:                opt.seed(),
			Audit:               opt.Audit,
		},
	}
	labels := []string{"dedicated_2MB", "shared_2MB_contended"}
	for i, m := range opt.runSims("ablation_shared_buffer", cfgs) {
		t.AddRow(append([]string{labels[i]}, ablationRow(m)...)...)
	}

	return &AblationResult{
		ExpName: "ablation_shared_buffer",
		Table:   t,
		Notes:   "Rack-level contention on shared memory causes loss at flow counts a dedicated queue absorbs.",
	}
}

// AblationDelayedACKs compares immediate ACKs (the paper's configuration)
// against delayed ACKs, which the paper disables "because it exacerbates
// burstiness and masks the impact of DCTCP's congestion control".
func AblationDelayedACKs(opt Options) *AblationResult {
	t := &trace.Table{Header: append([]string{"acks"}, ablationHeader...)}
	var cfgs []SimConfig
	var labels []string
	for _, delayed := range []bool{false, true} {
		cfg := SimConfig{
			Flows:         80,
			BurstDuration: 15 * sim.Millisecond,
			Bursts:        ablationBursts(opt),
			Seed:          opt.seed(),
			Audit:         opt.Audit,
		}
		label := "immediate"
		if delayed {
			cfg.Receiver.DelayedAcks = true
			cfg.Receiver.AckEvery = 2
			label = "delayed"
		}
		cfgs = append(cfgs, cfg)
		labels = append(labels, label)
	}
	for i, m := range opt.runSims("ablation_delayed_acks", cfgs) {
		t.AddRow(append([]string{labels[i]}, ablationRow(m)...)...)
	}
	return &AblationResult{
		ExpName: "ablation_delayed_acks",
		Table:   t,
		Notes:   "Coalesced ACKs release data in larger clumps, deepening the queue excursions.",
	}
}

// AblationGuardrail evaluates the Section 5 proposals: DCTCP alone, DCTCP
// clamped by the predicted-incast-degree guardrail (5.1), and DCTCP under
// receiver-driven wave scheduling (5.2), at a healthy and a degenerate
// flow count.
func AblationGuardrail(opt Options) *AblationResult {
	t := &trace.Table{Header: append([]string{"flows", "scheme"}, ablationHeader...)}
	var cfgs []SimConfig
	var labels [][]string
	for _, n := range []int{80, 500} {
		net := netsim.DefaultDumbbellConfig(n)
		bdp := net.BDPBytes()
		kBytes := net.ECNThresholdPackets * netsim.MTU

		// The predictor learns the service's incast degree from observed
		// bursts (Section 3.3 stability makes this meaningful); here it
		// observes the true degree with sampling noise. The predictor's RNG
		// draws happen here, before the fan-out, so the degree each scheme
		// sees does not depend on worker interleaving.
		pr := predict.New(predict.DefaultConfig())
		rng := sim.NewRand(opt.seed())
		for i := 0; i < 64; i++ {
			pr.Observe(n - 3 + rng.IntN(7))
		}
		degree := pr.PredictedDegree()

		schemes := []struct {
			name string
			cfg  SimConfig
		}{
			{"dctcp", SimConfig{}},
			{"dctcp+guardrail", SimConfig{Alg: func(int) cc.Algorithm {
				g := cc.NewGuardrail(cc.NewDCTCP(cc.DefaultDCTCPConfig()), bdp, kBytes)
				g.Predict(degree)
				return g
			}}},
			{"dctcp+wave64", SimConfig{Admitter: schedule.NewWave(64)}},
		}
		for _, s := range schemes {
			cfg := s.cfg
			cfg.Flows = n
			cfg.BurstDuration = 15 * sim.Millisecond
			cfg.Bursts = ablationBursts(opt)
			cfg.Seed = opt.seed()
			cfg.Audit = opt.Audit
			cfgs = append(cfgs, cfg)
			labels = append(labels, []string{fmt.Sprint(n), s.name})
		}
	}
	for i, m := range opt.runSims("ablation_guardrail", cfgs) {
		t.AddRow(append(labels[i], ablationRow(m)...)...)
	}
	return &AblationResult{
		ExpName: "ablation_guardrail",
		Table:   t,
		Notes: "Guardrails cap ramp-up at the predicted fair share, removing the straggler spike;\n" +
			"wave scheduling turns one large incast into a series of healthy small ones.",
	}
}

// AblationCCA compares congestion-control algorithms under the same
// healthy-mode incast: loss-based Reno (ECN-blind), DCTCP, and the
// delay-based Swift-like pacer.
func AblationCCA(opt Options) *AblationResult {
	t := &trace.Table{Header: append([]string{"cca"}, ablationHeader...)}
	net := netsim.DefaultDumbbellConfig(80)
	algs := []struct {
		name string
		mk   func(int) cc.Algorithm
	}{
		{"reno", func(int) cc.Algorithm { return cc.NewReno(10 * netsim.MSS) }},
		{"dctcp", nil},
		{"d2tcp-tight", func(int) cc.Algorithm {
			cfg := cc.DefaultD2TCPConfig()
			cfg.D = 2
			return cc.NewD2TCP(cfg)
		}},
		{"swift", func(int) cc.Algorithm {
			return cc.NewSwift(cc.DefaultSwiftConfig(net.BaseRTT()))
		}},
	}
	var cfgs []SimConfig
	for _, a := range algs {
		cfgs = append(cfgs, SimConfig{
			Flows:         80,
			BurstDuration: 15 * sim.Millisecond,
			Bursts:        ablationBursts(opt),
			Alg:           a.mk,
			Seed:          opt.seed(),
			Audit:         opt.Audit,
		})
	}
	for i, m := range opt.runSims("ablation_cca", cfgs) {
		t.AddRow(append([]string{algs[i].name}, ablationRow(m)...)...)
	}
	return &AblationResult{
		ExpName: "ablation_cca",
		Table:   t,
		Notes: "Reno ignores marks and fills the queue until it drops; DCTCP parks near K.\n" +
			"Swift's sub-MSS pacing keeps the steady queue shallow but, exactly as the paper's\n" +
			"Section 5.2 argues, infrequent probing starves it of feedback on millisecond bursts:\n" +
			"completion times blow up. Pacing helps long incasts, not these.",
	}
}

// AblationMinRTO validates the Mode 3 mechanism directly: with windows at
// one MSS, dup-ACK recovery is impossible and burst completion is bound by
// the minimum retransmission timeout. Sweeping min-RTO at a flow count in
// steady overflow should move the BCT nearly one-for-one.
func AblationMinRTO(opt Options) *AblationResult {
	t := &trace.Table{Header: append([]string{"min_rto_ms"}, ablationHeader...)}
	rtos := []sim.Time{10 * sim.Millisecond, 50 * sim.Millisecond, 200 * sim.Millisecond}
	var cfgs []SimConfig
	for _, rto := range rtos {
		cfg := SimConfig{
			Flows:         1400,
			BurstDuration: 15 * sim.Millisecond,
			Bursts:        ablationBursts(opt),
			Seed:          opt.seed(),
			Audit:         opt.Audit,
		}
		cfg.Sender.MinRTO = rto
		cfgs = append(cfgs, cfg)
	}
	for i, m := range opt.runSims("ablation_min_rto", cfgs) {
		t.AddRow(append([]string{trace.Float(rtos[i].Milliseconds())}, ablationRow(m)...)...)
	}
	return &AblationResult{
		ExpName: "ablation_min_rto",
		Table:   t,
		Notes:   "Mode 3 BCT tracks the minimum RTO: losses at 1-MSS windows are only ever repaired by timeouts.",
	}
}

// AblationIdleRestart contrasts the paper's persistent connections (window
// state carried across bursts — the precondition for Section 4.3's
// straggler divergence) with RFC 2861/5681 congestion window validation,
// which clamps an idle connection's window to min(IW, cwnd) before it
// transmits again. The result is a negative one worth having on paper:
// during incast, per-flow windows already sit at or below the initial
// window, so standards-track idle restarts change nothing — straggler
// divergence survives them. Taming it requires clamping *below* IW, which
// is exactly what the Section 5.1 guardrail does.
func AblationIdleRestart(opt Options) *AblationResult {
	t := &trace.Table{Header: append([]string{"windows"}, ablationHeader...)}
	var cfgs []SimConfig
	var labels []string
	for _, restart := range []bool{false, true} {
		cfg := SimConfig{
			Flows:         80,
			BurstDuration: 15 * sim.Millisecond,
			Bursts:        ablationBursts(opt),
			Seed:          opt.seed(),
			Audit:         opt.Audit,
		}
		label := "persistent"
		if restart {
			cfg.Sender.RestartAfterIdle = true
			label = "idle_restart"
		}
		cfgs = append(cfgs, cfg)
		labels = append(labels, label)
	}
	for i, m := range opt.runSims("ablation_idle_restart", cfgs) {
		t.AddRow(append([]string{labels[i]}, ablationRow(m)...)...)
	}
	return &AblationResult{
		ExpName: "ablation_idle_restart",
		Table:   t,
		Notes: "RFC 2861/5681 restarts clamp to min(IW, cwnd); incast windows are already below IW,\n" +
			"so idle restarts are a no-op here. Straggler divergence survives standards-track cwnd\n" +
			"validation — only a sub-IW clamp (the Section 5.1 guardrail) removes it.",
	}
}

// AblationReceiverWindow evaluates ICTCP, the receiver-driven scheme the
// paper groups with the O(50)-flow designs: the receiving host steers each
// connection's advertised window. At moderate degree it rescues ECN-blind
// Reno from overrunning the queue; at hundreds of flows its 2-MSS window
// floor pins 2N packets in flight and the scheme degenerates exactly like
// sender-side windows do — the paper's argument for why receiver windows
// alone do not scale to modern incast degrees.
func AblationReceiverWindow(opt Options) *AblationResult {
	t := &trace.Table{Header: append([]string{"flows", "scheme"}, ablationHeader...)}
	var cfgs []SimConfig
	var labels [][]string
	for _, n := range []int{40, 400} {
		for _, ictcp := range []bool{false, true} {
			cfg := SimConfig{
				Flows:         n,
				BurstDuration: 15 * sim.Millisecond,
				Bursts:        ablationBursts(opt),
				Seed:          opt.seed(),
				Audit:         opt.Audit,
				Alg:           func(int) cc.Algorithm { return cc.NewReno(10 * netsim.MSS) },
				EnableICTCP:   ictcp,
			}
			label := "reno"
			if ictcp {
				label = "reno+ictcp"
			}
			cfgs = append(cfgs, cfg)
			labels = append(labels, []string{fmt.Sprint(n), label})
		}
	}
	for i, m := range opt.runSims("ablation_receiver_window", cfgs) {
		t.AddRow(append(labels[i], ablationRow(m)...)...)
	}
	return &AblationResult{
		ExpName: "ablation_receiver_window",
		Table:   t,
		Notes: "ICTCP tames Reno's queue at 40 flows; at 400 flows the 2-MSS receive-window floor\n" +
			"pins 2N packets in flight and the receiver-driven scheme degenerates too.",
	}
}

// AblationMarkingDiscipline contrasts DCTCP's instantaneous-queue marking
// (what the paper's switches do) with classic RED-style averaged marking.
// The DCTCP paper argues instantaneous marking is essential for fast
// feedback; with an EWMA, millisecond bursts come and go faster than the
// average moves, so marking lags the congestion and the queue excursions
// deepen.
func AblationMarkingDiscipline(opt Options) *AblationResult {
	t := &trace.Table{Header: append([]string{"marking"}, ablationHeader...)}
	var cfgs []SimConfig
	var labels []string
	for _, w := range []float64{0, 0.002} {
		net := netsim.DefaultDumbbellConfig(80)
		net.ECNAverageWeight = w
		cfgs = append(cfgs, SimConfig{
			Flows:         80,
			BurstDuration: 15 * sim.Millisecond,
			Bursts:        ablationBursts(opt),
			Net:           net,
			Seed:          opt.seed(),
			Audit:         opt.Audit,
		})
		label := "instantaneous"
		if w > 0 {
			label = fmt.Sprintf("ewma_w=%g", w)
		}
		labels = append(labels, label)
	}
	for i, m := range opt.runSims("ablation_marking", cfgs) {
		t.AddRow(append([]string{labels[i]}, ablationRow(m)...)...)
	}
	return &AblationResult{
		ExpName: "ablation_marking",
		Table:   t,
		Notes:   "Averaged (RED-style) marking lags millisecond bursts; instantaneous marking is what keeps DCTCP responsive.",
	}
}
