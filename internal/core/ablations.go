package core

import (
	"fmt"

	"incastlab/internal/scenario"
	"incastlab/internal/trace"
)

// The ten ablations are declarative scenario specs compiled and run by the
// generic machinery in scenario.go — each one is pure data: a workload, an
// optional topology/CC/transport base, and one swept axis. The exported
// Ablation* functions below are thin wrappers kept for direct library use;
// cmd/figures reaches the same specs through the registry.

// ablationRow renders a run's shared metric columns.
func ablationRow(m *SimResult) []string {
	return []string{
		trace.Float(avgBusyQueue(m)), trace.Float(m.MaxQueue), trace.Float(m.SpikePackets),
		trace.Float(m.MeanBCT.Milliseconds()),
		fmt.Sprint(m.Timeouts), fmt.Sprint(m.Drops),
		trace.Float(markRate(m)),
	}
}

// markRate returns the fraction of sent packets that were CE-marked.
func markRate(m *SimResult) float64 {
	if m.SentPackets == 0 {
		return 0
	}
	return float64(m.Marks) / float64(m.SentPackets)
}

var ablationHeader = []string{"queue_busy_avg_pkts", "queue_max_pkts", "spike_pkts",
	"mean_bct_ms", "timeouts", "drops", "mark_rate"}

// ablationGSpec sweeps DCTCP's EWMA gain g in the healthy mode: small g
// reacts slowly (smoother but sluggish alpha), large g overreacts.
var ablationGSpec = scenario.Spec{
	Name:     "ablation_g",
	Title:    "Ablation: ablation_g",
	Notes:    "The paper tunes g = 1/16 (Section 2); larger gains react faster but oscillate harder.",
	Workload: scenario.Workload{Flows: 80},
	Sweep:    scenario.Sweep{Axis: "g", Values: scenario.Nums(1.0/2, 1.0/4, 1.0/16, 1.0/64)},
}

// ablationECNThresholdSpec sweeps the switch marking threshold K: small K
// marks early (short queues, risk of underutilization with bursty hosts —
// why the production deployment uses a higher threshold than the DCTCP
// paper recommends), large K tolerates deep standing queues.
var ablationECNThresholdSpec = scenario.Spec{
	Name:     "ablation_ecn_threshold",
	Title:    "Ablation: ablation_ecn_threshold",
	Notes:    "Queue depth tracks K: DCTCP parks the queue near the threshold it is given.",
	Workload: scenario.Workload{Flows: 80},
	Sweep:    scenario.Sweep{Axis: "ecn_threshold_pkts", Values: scenario.Nums(20, 65, 200)},
}

// ablationSharedBufferSpec compares the paper's dedicated 1333-packet queue
// against a shared switch buffer under rack-level contention at 1000
// flows: sharing shrinks the effective capacity and converts the lossless
// degenerate mode into the timeout mode (the paper's Section 3/4.1.1
// explanation for production losses at flow counts the dedicated-queue
// simulation survives).
var ablationSharedBufferSpec = scenario.Spec{
	Name:     "ablation_shared_buffer",
	Title:    "Ablation: ablation_shared_buffer",
	Notes:    "Rack-level contention on shared memory causes loss at flow counts a dedicated queue absorbs.",
	Workload: scenario.Workload{Flows: 1000},
	Topology: &scenario.Topology{
		SharedBufferBytes: 2 * 1000 * 1000,
		SharedBufferAlpha: 1,
		ContendBytes:      700 * 1000,
	},
	Sweep: scenario.Sweep{
		Axis:   "shared_buffer",
		Column: "buffer",
		Values: scenario.Flags(false, true),
		Labels: []string{"dedicated_2MB", "shared_2MB_contended"},
	},
}

// ablationDelayedACKsSpec compares immediate ACKs (the paper's
// configuration) against delayed ACKs, which the paper disables "because
// it exacerbates burstiness and masks the impact of DCTCP's congestion
// control".
var ablationDelayedACKsSpec = scenario.Spec{
	Name:     "ablation_delayed_acks",
	Title:    "Ablation: ablation_delayed_acks",
	Notes:    "Coalesced ACKs release data in larger clumps, deepening the queue excursions.",
	Workload: scenario.Workload{Flows: 80},
	Sweep: scenario.Sweep{
		Axis:   "delayed_acks",
		Column: "acks",
		Values: scenario.Flags(false, true),
		Labels: []string{"immediate", "delayed"},
	},
}

// ablationGuardrailSpec evaluates the Section 5 proposals: DCTCP alone,
// DCTCP clamped by the predicted-incast-degree guardrail (5.1), and DCTCP
// under receiver-driven wave scheduling (5.2), at a healthy and a
// degenerate flow count.
var ablationGuardrailSpec = scenario.Spec{
	Name:  "ablation_guardrail",
	Title: "Ablation: ablation_guardrail",
	Notes: "Guardrails cap ramp-up at the predicted fair share, removing the straggler spike;\n" +
		"wave scheduling turns one large incast into a series of healthy small ones.",
	Sweep: scenario.Sweep{
		Axis:   "scheme",
		Flows:  []int{80, 500},
		Values: scenario.Strs("dctcp", "dctcp+guardrail", "dctcp+wave64"),
	},
}

// ablationCCASpec compares congestion-control algorithms under the same
// healthy-mode incast: loss-based Reno (ECN-blind), DCTCP, and the
// delay-based Swift-like pacer.
var ablationCCASpec = scenario.Spec{
	Name:  "ablation_cca",
	Title: "Ablation: ablation_cca",
	Notes: "Reno ignores marks and fills the queue until it drops; DCTCP parks near K.\n" +
		"Swift's sub-MSS pacing keeps the steady queue shallow but, exactly as the paper's\n" +
		"Section 5.2 argues, infrequent probing starves it of feedback on millisecond bursts:\n" +
		"completion times blow up. Pacing helps long incasts, not these.",
	Workload: scenario.Workload{Flows: 80},
	Sweep: scenario.Sweep{
		Axis:   "cc",
		Column: "cca",
		Values: scenario.Strs("reno", "dctcp", "d2tcp-tight", "swift"),
	},
}

// ablationMinRTOSpec validates the Mode 3 mechanism directly: with windows
// at one MSS, dup-ACK recovery is impossible and burst completion is bound
// by the minimum retransmission timeout. Sweeping min-RTO at a flow count
// in steady overflow should move the BCT nearly one-for-one.
var ablationMinRTOSpec = scenario.Spec{
	Name:     "ablation_min_rto",
	Title:    "Ablation: ablation_min_rto",
	Notes:    "Mode 3 BCT tracks the minimum RTO: losses at 1-MSS windows are only ever repaired by timeouts.",
	Workload: scenario.Workload{Flows: 1400},
	Sweep:    scenario.Sweep{Axis: "min_rto_ms", Values: scenario.Nums(10, 50, 200)},
}

// ablationIdleRestartSpec contrasts the paper's persistent connections
// (window state carried across bursts — the precondition for Section 4.3's
// straggler divergence) with RFC 2861/5681 congestion window validation,
// which clamps an idle connection's window to min(IW, cwnd) before it
// transmits again. The result is a negative one worth having on paper:
// during incast, per-flow windows already sit at or below the initial
// window, so standards-track idle restarts change nothing — straggler
// divergence survives them. Taming it requires clamping *below* IW, which
// is exactly what the Section 5.1 guardrail does.
var ablationIdleRestartSpec = scenario.Spec{
	Name:  "ablation_idle_restart",
	Title: "Ablation: ablation_idle_restart",
	Notes: "RFC 2861/5681 restarts clamp to min(IW, cwnd); incast windows are already below IW,\n" +
		"so idle restarts are a no-op here. Straggler divergence survives standards-track cwnd\n" +
		"validation — only a sub-IW clamp (the Section 5.1 guardrail) removes it.",
	Workload: scenario.Workload{Flows: 80},
	Sweep: scenario.Sweep{
		Axis:   "idle_restart",
		Column: "windows",
		Values: scenario.Flags(false, true),
		Labels: []string{"persistent", "idle_restart"},
	},
}

// ablationReceiverWindowSpec evaluates ICTCP, the receiver-driven scheme
// the paper groups with the O(50)-flow designs: the receiving host steers
// each connection's advertised window. At moderate degree it rescues
// ECN-blind Reno from overrunning the queue; at hundreds of flows its
// 2-MSS window floor pins 2N packets in flight and the scheme degenerates
// exactly like sender-side windows do — the paper's argument for why
// receiver windows alone do not scale to modern incast degrees.
var ablationReceiverWindowSpec = scenario.Spec{
	Name:  "ablation_receiver_window",
	Title: "Ablation: ablation_receiver_window",
	Notes: "ICTCP tames Reno's queue at 40 flows; at 400 flows the 2-MSS receive-window floor\n" +
		"pins 2N packets in flight and the receiver-driven scheme degenerates too.",
	CC: &scenario.CC{Algorithm: "reno"},
	Sweep: scenario.Sweep{
		Axis:   "ictcp",
		Column: "scheme",
		Flows:  []int{40, 400},
		Values: scenario.Flags(false, true),
		Labels: []string{"reno", "reno+ictcp"},
	},
}

// ablationMarkingSpec contrasts DCTCP's instantaneous-queue marking (what
// the paper's switches do) with classic RED-style averaged marking. The
// DCTCP paper argues instantaneous marking is essential for fast feedback;
// with an EWMA, millisecond bursts come and go faster than the average
// moves, so marking lags the congestion and the queue excursions deepen.
var ablationMarkingSpec = scenario.Spec{
	Name:     "ablation_marking",
	Title:    "Ablation: ablation_marking",
	Notes:    "Averaged (RED-style) marking lags millisecond bursts; instantaneous marking is what keeps DCTCP responsive.",
	Workload: scenario.Workload{Flows: 80},
	Sweep: scenario.Sweep{
		Axis:   "marking_ewma",
		Column: "marking",
		Values: scenario.Nums(0, 0.002),
		Labels: []string{"instantaneous", "ewma_w=0.002"},
	},
}

// AblationSpecs returns the built-in ablation specs in presentation order —
// the same data the registry entries run, exposed so tools (and users
// looking for spec-file examples) can inspect or serialize them.
func AblationSpecs() []scenario.Spec {
	out := make([]scenario.Spec, len(ablations))
	for i, a := range ablations {
		out[i] = a.spec
	}
	return out
}

// ablations binds each spec to its registry metadata, in presentation
// order after the paper experiments.
var ablations = []struct {
	ref  string
	spec scenario.Spec
}{
	{"Section 2 (DCTCP gain g = 1/16)", ablationGSpec},
	{"Section 2 (marking threshold K)", ablationECNThresholdSpec},
	{"Sections 3, 4.1.1 (shared-buffer contention)", ablationSharedBufferSpec},
	{"Section 4 setup (delayed ACKs disabled)", ablationDelayedACKsSpec},
	{"Section 5 (guardrail, wave scheduling)", ablationGuardrailSpec},
	{"Section 5.2 (congestion-control alternatives)", ablationCCASpec},
	{"Section 4.2 (Mode 3 timeout floor)", ablationMinRTOSpec},
	{"Section 4.3 (persistent connections)", ablationIdleRestartSpec},
	{"Section 5.2 (receiver-driven windows)", ablationReceiverWindowSpec},
	{"Section 2 (instantaneous marking)", ablationMarkingSpec},
}

func init() {
	for i, a := range ablations {
		spec := a.spec
		register(90+10*i, Experiment{
			Name:     spec.Name,
			Kind:     KindAblation,
			PaperRef: a.ref,
			Run:      func(o Options) Result { return mustScenario(o, spec) },
		})
	}
}

// AblationG sweeps DCTCP's EWMA gain g; see ablationGSpec.
func AblationG(opt Options) *TableResult { return mustScenario(opt, ablationGSpec) }

// AblationECNThreshold sweeps the marking threshold K; see
// ablationECNThresholdSpec.
func AblationECNThreshold(opt Options) *TableResult {
	return mustScenario(opt, ablationECNThresholdSpec)
}

// AblationSharedBuffer compares dedicated and shared switch buffers; see
// ablationSharedBufferSpec.
func AblationSharedBuffer(opt Options) *TableResult {
	return mustScenario(opt, ablationSharedBufferSpec)
}

// AblationDelayedACKs compares immediate and coalesced ACKs; see
// ablationDelayedACKsSpec.
func AblationDelayedACKs(opt Options) *TableResult {
	return mustScenario(opt, ablationDelayedACKsSpec)
}

// AblationGuardrail evaluates the Section 5 proposals; see
// ablationGuardrailSpec.
func AblationGuardrail(opt Options) *TableResult {
	return mustScenario(opt, ablationGuardrailSpec)
}

// AblationCCA compares congestion-control algorithms; see ablationCCASpec.
func AblationCCA(opt Options) *TableResult { return mustScenario(opt, ablationCCASpec) }

// AblationMinRTO sweeps the minimum retransmission timeout; see
// ablationMinRTOSpec.
func AblationMinRTO(opt Options) *TableResult { return mustScenario(opt, ablationMinRTOSpec) }

// AblationIdleRestart contrasts persistent windows with RFC 2861 restarts;
// see ablationIdleRestartSpec.
func AblationIdleRestart(opt Options) *TableResult {
	return mustScenario(opt, ablationIdleRestartSpec)
}

// AblationReceiverWindow evaluates receiver-driven (ICTCP) windows; see
// ablationReceiverWindowSpec.
func AblationReceiverWindow(opt Options) *TableResult {
	return mustScenario(opt, ablationReceiverWindowSpec)
}

// AblationMarkingDiscipline contrasts instantaneous and EWMA marking; see
// ablationMarkingSpec.
func AblationMarkingDiscipline(opt Options) *TableResult {
	return mustScenario(opt, ablationMarkingSpec)
}
