package core

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a registered experiment.
type Kind string

// The four experiment kinds: paper tables, paper figures, parameter and
// design-choice ablations, and extensions beyond the paper.
const (
	KindTable     Kind = "table"
	KindFigure    Kind = "figure"
	KindAblation  Kind = "ablation"
	KindExtension Kind = "extension"
)

func (k Kind) valid() bool {
	switch k {
	case KindTable, KindFigure, KindAblation, KindExtension:
		return true
	}
	return false
}

// Experiment is one registry entry: the single source of truth that
// core.All, cmd/figures, cmd/incastsim, the facade, and the docs
// generator all drive off. Every experiment file self-registers its
// entries from init, so adding an experiment is one register call — no
// hand-maintained lists anywhere else.
type Experiment struct {
	// Name is the stable identifier; it must equal the Name() of the
	// Result the runner returns (the registry contract test enforces it).
	Name string
	// Kind classifies the experiment.
	Kind Kind
	// PaperRef cites what the experiment reproduces or extends.
	PaperRef string
	// Run executes the experiment.
	Run func(Options) Result

	// order fixes the presentation position; registration panics on
	// collisions, and the golden-list test locks the resulting sequence.
	order int
}

var registry []Experiment

// register adds an experiment at the given presentation position. Order
// values are spaced by ten so a future experiment can slot between two
// existing ones without renumbering.
func register(order int, e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic(fmt.Sprintf("core: experiment registration needs a name and a runner (got %+v)", e))
	}
	if !e.Kind.valid() {
		panic(fmt.Sprintf("core: experiment %q has invalid kind %q", e.Name, e.Kind))
	}
	if e.PaperRef == "" {
		panic(fmt.Sprintf("core: experiment %q needs a paper reference", e.Name))
	}
	for _, x := range registry {
		if x.Name == e.Name {
			panic(fmt.Sprintf("core: experiment %q registered twice", e.Name))
		}
		if x.order == order {
			panic(fmt.Sprintf("core: experiments %q and %q share order %d", x.Name, e.Name, order))
		}
	}
	e.order = order
	registry = append(registry, e)
	sort.SliceStable(registry, func(i, j int) bool { return registry[i].order < registry[j].order })
}

// Experiments returns every registered experiment in presentation order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ExperimentNames returns the registered names in presentation order.
func ExperimentNames() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// LookupExperiment finds a registry entry by name.
func LookupExperiment(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// RegistryMarkdown renders the registry as a Markdown table (name, kind,
// paper reference). EXPERIMENTS.md embeds its output between registry
// markers; `go run ./internal/core/regdoc` regenerates it, and a test
// keeps the embedded copy in sync.
func RegistryMarkdown() string {
	var b strings.Builder
	b.WriteString("| Experiment | Kind | Reproduces |\n")
	b.WriteString("|---|---|---|\n")
	for _, e := range registry {
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", e.Name, e.Kind, e.PaperRef)
	}
	return b.String()
}

// All runs every experiment — each paper table and figure plus every
// ablation and extension — and returns the results in presentation order.
// This is what cmd/figures executes.
func All(opt Options) []Result {
	out := make([]Result, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.Run(opt))
	}
	return out
}
