// Command regdoc prints the experiment-registry Markdown table embedded in
// EXPERIMENTS.md ("Experiment registry" section). Regenerate the block
// after registering a new experiment:
//
//	go run ./internal/core/regdoc
//
// and paste the output between the registry markers. The registry docs
// test fails until the embedded copy matches.
package main

import (
	"fmt"

	"incastlab/internal/core"
)

func main() {
	fmt.Print(core.RegistryMarkdown())
}
