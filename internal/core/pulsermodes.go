package core

import (
	"fmt"
	"strings"

	"incastlab/internal/cc"
	"incastlab/internal/sim"
	"incastlab/internal/trace"
)

func init() {
	register(230, Experiment{
		Name: "ext_pulser_modes", Kind: KindExtension,
		PaperRef: "Section 4.2 boundary + Pulser (explicit incast notification)",
		Run:      func(o Options) Result { return PulserModes(o) },
	})
}

// pulserSchemes are the congestion-control baselines the notification
// mechanism is layered onto: the deployed algorithm the paper diagnoses,
// its Section 5.1 guardrail variant, and a delay-based alternative.
var pulserSchemes = []string{"dctcp", "dctcp+guardrail", "swift"}

// PulserModes sweeps the Fig-5 fan-in axis across {DCTCP, guardrail,
// Swift}, each with and without explicit incast notification, asking the
// ROADMAP item 3 question: does a switch that detects incast onset and
// signals multiplicative backoff within an RTT erase the Mode-3 timeout
// regime? Each row reports the mode classification, BCT tail, and
// measured-window timeout/notification counts.
func PulserModes(opt Options) *TableResult {
	flows := []int{80, 100, 500, 1000, 1400}
	bursts := 6
	if opt.Quick {
		flows = []int{80, 500, 1400}
		bursts = 3
	}

	type row struct {
		flows  int
		scheme string
		notify bool
	}
	var rows []row
	var cfgs []SimConfig
	for _, n := range flows {
		for _, scheme := range pulserSchemes {
			for _, notify := range []bool{false, true} {
				cfg := SimConfig{
					Flows:         n,
					BurstDuration: 15 * sim.Millisecond,
					Bursts:        bursts,
					Seed:          opt.seed(),
					Audit:         opt.Audit,
				}
				cfg.Alg = pulserSchemeAlg(opt, scheme, n)
				if notify {
					cfg.Notification = &NotificationConfig{}
				}
				rows = append(rows, row{flows: n, scheme: scheme, notify: notify})
				cfgs = append(cfgs, opt.instrument("pulser_modes", cfg))
			}
		}
	}
	results := runParallel(opt.Workers, len(cfgs), func(i int) *SimResult {
		return RunIncastSim(cfgs[i])
	})

	t := trace.NewTable("flows", "scheme", "notify", "mode", "queue_busy_avg_pkts",
		"mean_bct_ms", "max_bct_ms", "timeouts", "drops", "detector_fired", "notifies")
	for i, r := range rows {
		m := results[i]
		t.AddRow(fmt.Sprint(r.flows), r.scheme, onOff(r.notify), mode(m),
			trace.Float(avgBusyQueue(m)), trace.Float(m.MeanBCT.Milliseconds()),
			trace.Float(m.MaxBCT.Milliseconds()), fmt.Sprint(m.Timeouts),
			fmt.Sprint(m.Drops), fmt.Sprint(m.DetectorFirings), fmt.Sprint(m.IncastNotifies))
	}

	var b strings.Builder
	b.WriteString(section("Extension: explicit incast notification across the mode boundary"))
	b.WriteString(t.Text())
	b.WriteString("\n")
	for _, scheme := range pulserSchemes {
		var m3off, m3on []int
		var toOff, toOn int64
		for i, r := range rows {
			if r.scheme != scheme {
				continue
			}
			if r.notify {
				toOn += results[i].Timeouts
				if strings.HasPrefix(mode(results[i]), "3") {
					m3on = append(m3on, r.flows)
				}
			} else {
				toOff += results[i].Timeouts
				if strings.HasPrefix(mode(results[i]), "3") {
					m3off = append(m3off, r.flows)
				}
			}
		}
		switch {
		case len(m3off) == 0:
			fmt.Fprintf(&b, "%s: no Mode-3 rows on this grid even without notification (timeouts %d -> %d with it)\n",
				scheme, toOff, toOn)
		case len(m3on) == 0:
			fmt.Fprintf(&b, "%s: notification eliminates the Mode-3 regime (was at N=%s; timeouts %d -> %d)\n",
				scheme, intList(m3off), toOff, toOn)
		default:
			fmt.Fprintf(&b, "%s: Mode 3 persists at N=%s (was N=%s); notification cuts timeouts %d -> %d but cannot shed load the fabric cannot carry\n",
				scheme, intList(m3on), intList(m3off), toOff, toOn)
		}
	}

	return &TableResult{
		ExpName:     "ext_pulser_modes",
		Artifacts:   []Artifact{{File: "ext_pulser_modes.csv", Table: t}},
		SummaryText: b.String(),
	}
}

// pulserSchemeAlg maps a scheme name to its per-flow algorithm factory (nil
// defers to the engine's DCTCP default). Notification wrapping happens
// inside the runner, so these are the bare baselines.
func pulserSchemeAlg(opt Options, scheme string, n int) func(int) cc.Algorithm {
	switch scheme {
	case "dctcp":
		return nil
	case "dctcp+guardrail":
		return guardrailAlg(opt, n, nil)
	case "swift":
		return ccByName("swift", nil, n, nil)
	}
	panic(fmt.Sprintf("core: unknown pulser scheme %q", scheme))
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func intList(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, ",")
}
