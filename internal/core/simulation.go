package core

import (
	"fmt"
	"strings"

	"incastlab/internal/flowsim"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
	"incastlab/internal/trace"
)

func init() {
	register(50, Experiment{
		Name: "fig5", Kind: KindFigure, PaperRef: "Figure 5",
		Run: func(o Options) Result { return Fig5Modes(o) },
	})
	register(60, Experiment{
		Name: "fig6", Kind: KindFigure, PaperRef: "Figure 6",
		Run: func(o Options) Result { return Fig6ShortBursts(o) },
	})
	register(70, Experiment{
		Name: "fig7", Kind: KindFigure, PaperRef: "Figure 7",
		Run: func(o Options) Result { return Fig7InFlight(o) },
	})
}

// Fig5Result reproduces Figure 5: the three DCTCP operating modes, as ToR
// queue length over time (averaged over the measured bursts).
//
// Mode boundaries in this simulator follow the paper's own arithmetic
// exactly: with marking threshold K packets and a BDP of ~25 packets,
// congestion control is healthy while N < K + BDP (= 90 here); between
// that and queue capacity + BDP (= 1358) every flow is pinned at the
// 1-MSS degenerate point with the queue standing at N - BDP; beyond it,
// steady-state overflow forces timeout-bound completion. The paper's
// empirical boundary sits slightly higher (~150 flows, with Mode 3
// appearing at 1000 via straggler spikes and shared-buffer contention);
// EXPERIMENTS.md discusses the shift. We therefore run the paper's
// labeled flow counts plus the two boundary-adjusted ones.
type Fig5Result struct {
	TableResult
	Modes []*SimResult
}

// Fig5Modes runs the operating-mode sweep: 15 ms bursts at increasing
// incast degrees.
func Fig5Modes(opt Options) *Fig5Result {
	flows := []int{80, 100, 500, 1000, 1400}
	bursts := 11
	if opt.Quick {
		flows = []int{80, 500, 1400}
		bursts = 4
	}
	r := &Fig5Result{}
	r.Modes = runParallel(opt.Workers, len(flows), func(i int) *SimResult {
		return RunIncastSim(opt.instrument("fig5", SimConfig{
			Flows:         flows[i],
			BurstDuration: 15 * sim.Millisecond,
			Bursts:        bursts,
			Seed:          opt.seed(),
			Audit:         opt.Audit,
		}))
	})

	summary := r.modesTable()
	artifacts := []Artifact{{File: "fig5_modes.csv", Table: summary}}
	for _, m := range r.Modes {
		artifacts = append(artifacts, Artifact{
			File:  fmt.Sprintf("fig5_queue_%dflows.csv", m.Flows),
			Table: queueCSV(m),
		})
	}
	r.TableResult = TableResult{
		ExpName:     "fig5",
		Artifacts:   artifacts,
		SummaryText: r.renderSummary(summary),
	}
	return r
}

// Mode classifies a run by the paper's taxonomy: timeouts mark Mode 3;
// otherwise a queue that regularly dips below the marking threshold is
// healthy (Mode 1), and one pinned above it is degenerate (Mode 2). The
// rule lives in internal/flowsim so both fidelities share one taxonomy.
func mode(s *SimResult) string {
	return flowsim.Classify(s.Timeouts, s.FracBelowK)
}

// avgBusyQueue averages the queue depth over samples where it is non-zero.
func avgBusyQueue(s *SimResult) float64 {
	var sum float64
	n := 0
	for _, v := range s.AvgQueue.Values {
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// modesTable renders the per-mode summary rows shared by Summary and CSV.
func (r *Fig5Result) modesTable() *trace.Table {
	t := trace.NewTable("flows", "mode", "queue_busy_avg_pkts", "queue_max_pkts",
		"spike_pkts", "mean_bct_ms", "max_bct_ms", "timeouts", "drops", "retx_pkts")
	for _, m := range r.Modes {
		t.AddRow(
			fmt.Sprint(m.Flows), mode(m),
			trace.Float(avgBusyQueue(m)), trace.Float(m.MaxQueue), trace.Float(m.SpikePackets),
			trace.Float(m.MeanBCT.Milliseconds()), trace.Float(m.MaxBCT.Milliseconds()),
			fmt.Sprint(m.Timeouts), fmt.Sprint(m.Drops), fmt.Sprint(m.RetransmitPackets),
		)
	}
	return t
}

// queueCSV renders a run's averaged queue trace.
func queueCSV(m *SimResult) *trace.Table {
	t := trace.NewTable("time_ms", "queue_pkts")
	for i, v := range m.AvgQueue.Values {
		t.AddFloats(float64(m.AvgQueue.TimeAt(i))/1e6, v)
	}
	return t
}

func (r *Fig5Result) renderSummary(t *trace.Table) string {
	var b strings.Builder
	b.WriteString(section("Figure 5: DCTCP operating modes (15 ms bursts, avg of measured bursts)"))
	b.WriteString(t.Text())
	for _, m := range r.Modes {
		b.WriteString("\n")
		b.WriteString(queuePlot(m, fmt.Sprintf("Queue depth, %d flows (K=%d, capacity=%d)",
			m.Flows, m.ECNThreshold, m.QueueCapacity)))
	}
	return b.String()
}

// queuePlot renders an ASCII queue-vs-time chart with the ECN threshold
// overlaid.
func queuePlot(m *SimResult, title string) string {
	n := len(m.AvgQueue.Values)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(m.AvgQueue.TimeAt(i)) / 1e6
	}
	thresh := trace.Series{Name: "K", X: []float64{xs[0], xs[n-1]},
		Y: []float64{float64(m.ECNThreshold), float64(m.ECNThreshold)}}
	queue := trace.Series{Name: "queue", X: xs, Y: m.AvgQueue.Values}
	return trace.PlotString(title, "ms since burst start", "packets",
		[]trace.Series{queue, thresh}, 72, 14)
}

// Fig6Result reproduces Figure 6: queue behavior during 2 ms bursts, the
// common case, at several incast degrees.
type Fig6Result struct {
	TableResult
	Runs []*SimResult
}

// Fig6ShortBursts runs the 2 ms sweep.
func Fig6ShortBursts(opt Options) *Fig6Result {
	flows := []int{50, 100, 200, 500}
	bursts := 11
	if opt.Quick {
		flows = []int{50, 200}
		bursts = 4
	}
	r := &Fig6Result{}
	r.Runs = runParallel(opt.Workers, len(flows), func(i int) *SimResult {
		return RunIncastSim(opt.instrument("fig6", SimConfig{
			Flows:          flows[i],
			BurstDuration:  2 * sim.Millisecond,
			Bursts:         bursts,
			SampleInterval: 50 * sim.Microsecond,
			SampleWindow:   6 * sim.Millisecond,
			Seed:           opt.seed(),
			Audit:          opt.Audit,
		}))
	})

	summary := r.runsTable()
	// One wide CSV with a queue column per flow count.
	header := []string{"time_ms"}
	for _, m := range r.Runs {
		header = append(header, fmt.Sprintf("queue_pkts_%dflows", m.Flows))
	}
	wide := &trace.Table{Header: header}
	n := len(r.Runs[0].AvgQueue.Values)
	for i := 0; i < n; i++ {
		row := []string{trace.Float(float64(r.Runs[0].AvgQueue.TimeAt(i)) / 1e6)}
		for _, m := range r.Runs {
			row = append(row, trace.Float(m.AvgQueue.Values[i]))
		}
		wide.AddRow(row...)
	}
	r.TableResult = TableResult{
		ExpName: "fig6",
		Artifacts: []Artifact{
			{File: "fig6_short_bursts.csv", Table: summary},
			{File: "fig6_queue_traces.csv", Table: wide},
		},
		SummaryText: section("Figure 6: 2 ms incast bursts (the common case)") + summary.Text() +
			"\nShort bursts are dominated by the initial window spike; there is no time\nfor the oscillatory steady state of 15 ms bursts to develop.\n",
	}
	return r
}

func (r *Fig6Result) runsTable() *trace.Table {
	t := trace.NewTable("flows", "queue_max_pkts", "spike_pkts", "queue_busy_avg_pkts",
		"mean_bct_ms", "timeouts", "drops")
	for _, m := range r.Runs {
		t.AddRow(fmt.Sprint(m.Flows), trace.Float(m.MaxQueue), trace.Float(m.SpikePackets),
			trace.Float(avgBusyQueue(m)), trace.Float(m.MeanBCT.Milliseconds()),
			fmt.Sprint(m.Timeouts), fmt.Sprint(m.Drops))
	}
	return t
}

// Fig7Result reproduces Figure 7: the per-flow in-flight distribution over
// a 15 ms burst in the healthy mode, exposing straggler skew and the
// end-of-burst ramp-up.
type Fig7Result struct {
	TableResult
	Run *SimResult
	// RampRatio compares the mean in-flight over the last quarter of the
	// burst to the mid-burst mean: > 1 means stragglers ramp at the end.
	RampRatio float64
	// MaxSkew is the largest max/median ratio across samples.
	MaxSkew float64
}

// Fig7InFlight runs the skew experiment. The paper uses 100 flows; in this
// simulator the healthy mode requires N < K + BDP = 90, so 80 flows keep
// the run inside Mode 1 (see Fig5Result's doc comment).
func Fig7InFlight(opt Options) *Fig7Result {
	bursts := 11
	if opt.Quick {
		bursts = 5
	}
	run := RunIncastSim(opt.instrument("fig7", SimConfig{
		Flows:          80,
		BurstDuration:  15 * sim.Millisecond,
		Bursts:         bursts,
		SampleInterval: 50 * sim.Microsecond,
		TrackInFlight:  true,
		Seed:           opt.seed(),
		Audit:          opt.Audit,
	}))
	r := &Fig7Result{Run: run, MaxSkew: run.InFlight.MaxSkew(10)}

	// Ramp: once most flows have finished (the burst tail), the remaining
	// stragglers claim the freed capacity and their in-flight data rises
	// above the typical (median) incast window of the full phase.
	var fullP50s, tailMeans []float64
	for _, s := range run.InFlight.Samples {
		switch {
		case s.Active >= run.Flows*9/10:
			fullP50s = append(fullP50s, s.P50)
		case s.Active > 0:
			tailMeans = append(tailMeans, s.Mean)
		}
	}
	if len(fullP50s) > 0 && len(tailMeans) > 0 {
		r.RampRatio = stats.Mean(tailMeans) / stats.Quantile(fullP50s, 0.5)
	}

	t := trace.NewTable("time_ms", "active_flows", "mean_bytes", "p25", "p50", "p75", "p95", "max")
	start := run.InFlight.Samples[0].At
	for _, s := range run.InFlight.Samples {
		t.AddFloats((s.At - start).Milliseconds(), float64(s.Active),
			s.Mean, s.P25, s.P50, s.P75, s.P95, s.Max)
	}
	r.TableResult = TableResult{
		ExpName:     "fig7",
		Artifacts:   []Artifact{{File: "fig7_inflight.csv", Table: t}},
		SummaryText: r.renderSummary(),
	}
	return r
}

func (r *Fig7Result) renderSummary() string {
	var b strings.Builder
	b.WriteString(section("Figure 7: per-flow in-flight data during a healthy-mode incast"))
	fmt.Fprintf(&b, "flows=%d  max/median skew=%.1fx  late-burst ramp=%.2fx mid-burst\n",
		r.Run.Flows, r.MaxSkew, r.RampRatio)
	b.WriteString("Stragglers ramp up at the end of the burst, 'unlearning' the incast\nwindow; the next burst starts with a queue spike of ")
	fmt.Fprintf(&b, "%.0f packets.\n", r.Run.SpikePackets)

	samples := r.Run.InFlight.Samples
	start := samples[0].At
	var xs, mean, p95, max []float64
	for _, s := range samples {
		if s.Active == 0 {
			continue
		}
		xs = append(xs, (s.At - start).Milliseconds())
		mean = append(mean, s.Mean)
		p95 = append(p95, s.P95)
		max = append(max, s.Max)
	}
	if len(xs) > 1 {
		b.WriteString(trace.PlotString("Per-flow in-flight bytes over the burst",
			"ms since burst start", "bytes", []trace.Series{
				{Name: "mean", X: xs, Y: mean},
				{Name: "p95", X: xs, Y: p95},
				{Name: "max", X: xs, Y: max},
			}, 72, 14))
	}
	return b.String()
}
