package core

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"incastlab/internal/netsim"
	"incastlab/internal/scenario"
	"incastlab/internal/sim"
	"incastlab/internal/trace"
)

// TestAblationSpecsContract: the ten built-in ablations are valid scenario
// specs, registered under their own names as ablations, and survive a JSON
// round trip unchanged (they are data, so they must be expressible as the
// files cmd/incastsim -scenario accepts).
func TestAblationSpecsContract(t *testing.T) {
	specs := AblationSpecs()
	if len(specs) != 10 {
		t.Fatalf("AblationSpecs returned %d specs, want 10", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		e, ok := LookupExperiment(s.Name)
		if !ok {
			t.Errorf("spec %q is not a registered experiment", s.Name)
			continue
		}
		if e.Kind != KindAblation {
			t.Errorf("%s: registered as %q, want %q", s.Name, e.Kind, KindAblation)
		}
		first, err := json.Marshal(s)
		if err != nil {
			t.Errorf("%s: marshal: %v", s.Name, err)
			continue
		}
		parsed, err := scenario.Parse(first)
		if err != nil {
			t.Errorf("%s: parse own JSON: %v", s.Name, err)
			continue
		}
		second, err := json.Marshal(parsed)
		if err != nil {
			t.Errorf("%s: re-marshal: %v", s.Name, err)
			continue
		}
		if string(first) != string(second) {
			t.Errorf("%s: JSON round trip is lossy:\n%s\n%s", s.Name, first, second)
		}
	}
}

// TestCompileAblationG pins the g-sweep lowering: fixed 80-flow incast, one
// config per gain, default labels rendered like the result table renders
// floats, quick/full burst counts.
func TestCompileAblationG(t *testing.T) {
	spec := AblationSpecs()[0]
	if spec.Name != "ablation_g" {
		t.Fatalf("AblationSpecs()[0] = %q, want ablation_g", spec.Name)
	}
	header, labels, cfgs, err := CompileScenario(Options{Seed: 1, Quick: true}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 1 || header[0] != "g" {
		t.Errorf("header = %v, want [g]", header)
	}
	if len(cfgs) != 4 {
		t.Fatalf("%d configs, want 4", len(cfgs))
	}
	for i, cfg := range cfgs {
		if cfg.Flows != 80 {
			t.Errorf("row %d: Flows = %d, want 80", i, cfg.Flows)
		}
		if cfg.Bursts != 4 {
			t.Errorf("row %d: quick Bursts = %d, want 4", i, cfg.Bursts)
		}
		if cfg.BurstDuration != 15*sim.Millisecond {
			t.Errorf("row %d: BurstDuration = %v, want 15ms", i, cfg.BurstDuration)
		}
		if cfg.Net != (netsim.DumbbellConfig{}) {
			t.Errorf("row %d: Net overridden without a topology in the spec", i)
		}
		if cfg.Alg == nil {
			t.Errorf("row %d: g sweep must override the algorithm factory", i)
		}
		g, _ := spec.Sweep.Values[i].Number()
		if want := trace.Float(g); labels[i][0] != want {
			t.Errorf("row %d: label %q, want %q", i, labels[i][0], want)
		}
	}
	_, _, full, err := CompileScenario(Options{Seed: 1}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if full[0].Bursts != 11 {
		t.Errorf("full Bursts = %d, want 11", full[0].Bursts)
	}
}

// TestCompileSharedBufferAxis pins the one axis that gates the topology per
// row: the dedicated row keeps the zero-value Net (engine defaults) and no
// external contention; the shared row gets the pooled buffer plus the
// spec's contention bytes.
func TestCompileSharedBufferAxis(t *testing.T) {
	var spec scenario.Spec
	for _, s := range AblationSpecs() {
		if s.Name == "ablation_shared_buffer" {
			spec = s
		}
	}
	header, labels, cfgs, err := CompileScenario(Options{Seed: 1}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if header[0] != "buffer" {
		t.Errorf("header = %v, want [buffer]", header)
	}
	if len(cfgs) != 2 {
		t.Fatalf("%d configs, want 2", len(cfgs))
	}
	if labels[0][0] != "dedicated_2MB" || labels[1][0] != "shared_2MB_contended" {
		t.Errorf("labels = %v", labels)
	}
	if cfgs[0].Net != (netsim.DumbbellConfig{}) || cfgs[0].ExternalBufferBytes != 0 {
		t.Errorf("dedicated row: Net/contention leaked in: %+v", cfgs[0].Net)
	}
	if cfgs[1].Net.SharedBufferBytes != 2_000_000 || cfgs[1].Net.SharedBufferAlpha != 1 {
		t.Errorf("shared row: buffer = %d bytes alpha %v, want 2000000/1",
			cfgs[1].Net.SharedBufferBytes, cfgs[1].Net.SharedBufferAlpha)
	}
	if cfgs[1].ExternalBufferBytes != 700_000 {
		t.Errorf("shared row: ExternalBufferBytes = %d, want 700000", cfgs[1].ExternalBufferBytes)
	}
}

// TestCompileCrossedSweep pins the flows-crossed enumeration used by the
// guardrail and receiver-window ablations: degrees outermost, one row per
// (degree, value), a leading flows column.
func TestCompileCrossedSweep(t *testing.T) {
	var spec scenario.Spec
	for _, s := range AblationSpecs() {
		if s.Name == "ablation_guardrail" {
			spec = s
		}
	}
	header, labels, cfgs, err := CompileScenario(Options{Seed: 1}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 2 || header[0] != "flows" || header[1] != "scheme" {
		t.Errorf("header = %v, want [flows scheme]", header)
	}
	wantFlows := []int{80, 80, 80, 500, 500, 500}
	if len(cfgs) != len(wantFlows) {
		t.Fatalf("%d configs, want %d", len(cfgs), len(wantFlows))
	}
	for i, cfg := range cfgs {
		if cfg.Flows != wantFlows[i] {
			t.Errorf("row %d: Flows = %d, want %d", i, cfg.Flows, wantFlows[i])
		}
	}
	// Row layout per degree: plain dctcp, guardrail, wave64.
	for base := 0; base < 6; base += 3 {
		if cfgs[base].Alg != nil || cfgs[base].Admitter != nil {
			t.Errorf("row %d (dctcp): want engine defaults", base)
		}
		if cfgs[base+1].Alg == nil {
			t.Errorf("row %d (guardrail): want a clamped algorithm factory", base+1)
		}
		if cfgs[base+2].Admitter == nil {
			t.Errorf("row %d (wave64): want a wave admitter", base+2)
		}
	}
	if labels[0][1] != "dctcp" || labels[1][1] != "dctcp+guardrail" || labels[2][1] != "dctcp+wave64" {
		t.Errorf("scheme labels = %v", labels)
	}
}

// TestCompileTransportAxes pins the delayed-ACK and min-RTO lowerings.
func TestCompileTransportAxes(t *testing.T) {
	byName := map[string]scenario.Spec{}
	for _, s := range AblationSpecs() {
		byName[s.Name] = s
	}

	_, _, acks, err := CompileScenario(Options{Seed: 1}, byName["ablation_delayed_acks"])
	if err != nil {
		t.Fatal(err)
	}
	if acks[0].Receiver.DelayedAcks {
		t.Error("immediate row: DelayedAcks set")
	}
	if !acks[1].Receiver.DelayedAcks || acks[1].Receiver.AckEvery != 2 {
		t.Errorf("delayed row: DelayedAcks=%v AckEvery=%d, want true/2",
			acks[1].Receiver.DelayedAcks, acks[1].Receiver.AckEvery)
	}

	_, _, rto, err := CompileScenario(Options{Seed: 1}, byName["ablation_min_rto"])
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{10 * sim.Millisecond, 50 * sim.Millisecond, 200 * sim.Millisecond}
	for i, cfg := range rto {
		if cfg.Sender.MinRTO != want[i] {
			t.Errorf("row %d: MinRTO = %v, want %v", i, cfg.Sender.MinRTO, want[i])
		}
		if cfg.Flows != 1400 {
			t.Errorf("row %d: Flows = %d, want 1400", i, cfg.Flows)
		}
	}
}

// TestExampleScenarios loads every shipped spec file, compiles it, and runs
// the cheapest one end to end — the same path `incastsim -scenario` takes.
func TestExampleScenarios(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("found %d example specs under examples/scenarios, want at least 2", len(files))
	}
	for _, f := range files {
		spec, err := scenario.Load(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		header, labels, cfgs, err := CompileScenario(Options{Seed: 1, Quick: true}, spec)
		if err != nil {
			t.Errorf("%s: compile: %v", f, err)
			continue
		}
		if len(cfgs) == 0 || len(labels) != len(cfgs) || len(header) == 0 {
			t.Errorf("%s: compiled to %d configs, %d labels", f, len(cfgs), len(labels))
		}
	}

	spec, err := scenario.Load("../../examples/scenarios/ml_periodic_bursts.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(Options{Seed: 1, Quick: true}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name() != "ml_periodic_bursts" {
		t.Errorf("result name = %q", res.Name())
	}
	tab := res.Table()
	if len(tab.Rows) != 3 {
		t.Errorf("ml_periodic_bursts: %d rows, want 3 (one per worker count)", len(tab.Rows))
	}
	if tab.Header[0] != "flows" {
		t.Errorf("ml_periodic_bursts: first column %q, want flows", tab.Header[0])
	}
}

// TestRunScenarioRejectsInvalid: the runner surfaces validation errors
// instead of panicking, so front ends can exit cleanly.
func TestRunScenarioRejectsInvalid(t *testing.T) {
	_, err := RunScenario(Options{}, scenario.Spec{Name: "bad"})
	if err == nil {
		t.Fatal("want an error for a spec with no sweep")
	}
}
