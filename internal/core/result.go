package core

import (
	"path/filepath"

	"incastlab/internal/trace"
)

// Artifact is one CSV file an experiment produces: a file name (relative
// to the output directory) and the table written into it.
type Artifact struct {
	File  string
	Table *trace.Table
}

// TableResult is the shared table-backed implementation of Result. Every
// experiment renders itself into one at construction time — a name, the
// CSV artifacts, and the finished text digest — so the Name, WriteFiles,
// and Summary plumbing lives here exactly once instead of being repeated
// per experiment. Typed results (Fig5Result, Fig3Result, ...) embed a
// TableResult and keep their structured fields alongside it.
type TableResult struct {
	// ExpName is the experiment identifier (e.g. "fig5"); it must equal
	// the name the experiment is registered under.
	ExpName string
	// Artifacts are the CSV files, written under the output directory in
	// order.
	Artifacts []Artifact
	// SummaryText is the rendered human-readable digest.
	SummaryText string
}

// Name implements Result.
func (r *TableResult) Name() string { return r.ExpName }

// WriteFiles implements Result: every artifact lands under dir.
func (r *TableResult) WriteFiles(dir string) error {
	for _, a := range r.Artifacts {
		if err := a.Table.SaveCSV(filepath.Join(dir, a.File)); err != nil {
			return err
		}
	}
	return nil
}

// Summary implements Result.
func (r *TableResult) Summary() string { return r.SummaryText }

// Table returns the primary (first) artifact's table, which is where
// single-table experiments such as the ablations keep their rows.
func (r *TableResult) Table() *trace.Table {
	if len(r.Artifacts) == 0 {
		return nil
	}
	return r.Artifacts[0].Table
}
