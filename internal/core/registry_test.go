package core

import (
	"os"
	"strings"
	"testing"
)

// TestRegistryContract pins the registry's static shape: every entry is
// complete, names are unique, and the kind census matches the paper's
// structure (1 table, 6 figure runners, 10 ablations, 8 extensions).
func TestRegistryContract(t *testing.T) {
	exps := Experiments()
	if len(exps) != 25 {
		t.Fatalf("registry has %d experiments, want 25", len(exps))
	}
	seen := map[string]bool{}
	kinds := map[Kind]int{}
	for _, e := range exps {
		if e.Name == "" {
			t.Error("registered experiment with empty name")
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Run == nil {
			t.Errorf("%s: nil Run", e.Name)
		}
		if e.PaperRef == "" {
			t.Errorf("%s: empty PaperRef", e.Name)
		}
		switch e.Kind {
		case KindTable, KindFigure, KindAblation, KindExtension:
		default:
			t.Errorf("%s: invalid kind %q", e.Name, e.Kind)
		}
		kinds[e.Kind]++
	}
	want := map[Kind]int{KindTable: 1, KindFigure: 6, KindAblation: 10, KindExtension: 8}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("kind %s: %d experiments, want %d", k, kinds[k], n)
		}
	}
}

// TestRegistryGoldenOrder pins the presentation order against the checked-in
// golden list (which the ci.sh gate also diffs against `figures -list`).
func TestRegistryGoldenOrder(t *testing.T) {
	b, err := os.ReadFile("testdata/registry_names.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	got := strings.Join(ExperimentNames(), "\n") + "\n"
	if got != string(b) {
		t.Errorf("registry order drifted from testdata/registry_names.golden:\n%s", got)
	}
}

func TestLookupExperiment(t *testing.T) {
	e, ok := LookupExperiment("fig5")
	if !ok || e.Name != "fig5" || e.Kind != KindFigure {
		t.Errorf("LookupExperiment(fig5) = %+v, %v", e, ok)
	}
	if _, ok := LookupExperiment("bogus"); ok {
		t.Error("LookupExperiment(bogus) = ok")
	}
}

// TestRegistryDocsInSync pins the generated table in EXPERIMENTS.md to
// the live registry. On failure: go run ./internal/core/regdoc and paste
// the output between the registry markers.
func TestRegistryDocsInSync(t *testing.T) {
	b, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("read EXPERIMENTS.md: %v", err)
	}
	doc := string(b)
	begin := strings.Index(doc, "<!-- registry:begin")
	end := strings.Index(doc, "<!-- registry:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("EXPERIMENTS.md lost its registry markers")
	}
	body := doc[begin:end]
	body = body[strings.Index(body, "\n")+1:]
	if body != RegistryMarkdown() {
		t.Errorf("EXPERIMENTS.md registry table is stale; regenerate with `go run ./internal/core/regdoc`:\nwant:\n%s\ngot:\n%s",
			RegistryMarkdown(), body)
	}
}

// TestAllMatchesRegistry checks the one remaining aggregate entry point
// against the registry it drives off.
func TestAllMatchesRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite")
	}
	names := ExperimentNames()
	results := All(Options{Seed: 1, Quick: true})
	if len(results) != len(names) {
		t.Fatalf("All returned %d results for %d registered experiments", len(results), len(names))
	}
	for i, r := range results {
		if r.Name() != names[i] {
			t.Errorf("All()[%d].Name() = %q, registry says %q", i, r.Name(), names[i])
		}
		if r.Summary() == "" {
			t.Errorf("%s: empty summary", names[i])
		}
	}
}
