package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelRunnerIndexing(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got := runParallel(workers, 33, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if out := runParallel(4, 0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("n=0 returned %d results", len(out))
	}
}

func TestParallelRunnerCallsEachOnce(t *testing.T) {
	const n = 100
	var calls [n]atomic.Int32
	runParallel(8, n, func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("fn(%d) called %d times", i, c)
		}
	}
}

func TestParallelSerialUsesNoGoroutines(t *testing.T) {
	// workers=1 is documented as the plain serial loop (debugger-friendly):
	// every call must run on the calling goroutine.
	before := runtime.NumGoroutine()
	runParallel(1, 50, func(i int) int {
		if g := runtime.NumGoroutine(); g > before {
			// Another test's goroutines may linger, so only fail when the
			// count grew during our serial run.
			t.Errorf("goroutines grew from %d to %d during serial run", before, g)
		}
		return i
	})
}

// TestParallelFig5Deterministic is the tentpole's core invariant: the sweep
// must produce byte-identical summaries with Workers=1 (serial) and
// Workers=GOMAXPROCS, and across repeated runs with the same seed.
func TestParallelFig5Deterministic(t *testing.T) {
	serial := Options{Seed: 1, Quick: true, Workers: 1}
	parallel := Options{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)}

	s1 := Fig5Modes(serial).Summary()
	p1 := Fig5Modes(parallel).Summary()
	if s1 != p1 {
		t.Fatal("Fig5Modes: parallel summary differs from serial")
	}
	p2 := Fig5Modes(parallel).Summary()
	if p1 != p2 {
		t.Fatal("Fig5Modes: repeated parallel runs differ for the same seed")
	}
}

// TestParallelAblationCCADeterministic covers the second sweep named by the
// determinism requirement, plus per-run CSV-level equality.
func TestParallelAblationCCADeterministic(t *testing.T) {
	serial := Options{Seed: 1, Quick: true, Workers: 1}
	parallel := Options{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)}

	s1 := AblationCCA(serial).Summary()
	p1 := AblationCCA(parallel).Summary()
	if s1 != p1 {
		t.Fatal("AblationCCA: parallel summary differs from serial")
	}
	p2 := AblationCCA(parallel).Summary()
	if p1 != p2 {
		t.Fatal("AblationCCA: repeated parallel runs differ for the same seed")
	}
}

// TestParallelAllExperimentsMatchSerial sweeps the registry: every
// registered experiment's summary must be identical under serial and
// parallel execution, and its result must answer to its registry name.
// This is the test the acceptance criteria call for; driving it off
// Experiments() means a newly registered experiment is covered for free.
func TestParallelAllExperimentsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			t.Parallel()
			serial := exp.Run(Options{Seed: 1, Quick: true, Workers: 1})
			if serial.Name() != exp.Name {
				t.Errorf("registered %q but Result.Name() = %q", exp.Name, serial.Name())
			}
			parallel := exp.Run(Options{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)})
			if serial.Summary() != parallel.Summary() {
				t.Errorf("%s: parallel summary differs from serial", exp.Name)
			}
		})
	}
}

// TestParallelRunIncastSims checks the exported fan-out helper against
// one-at-a-time RunIncastSim calls.
func TestParallelRunIncastSims(t *testing.T) {
	cfgs := make([]SimConfig, 3)
	for i := range cfgs {
		cfgs[i] = SimConfig{Flows: 40 + 20*i, Bursts: 2, Seed: 1}
	}
	batch := RunIncastSims(0, cfgs)
	for i, cfg := range cfgs {
		want := RunIncastSim(cfg)
		got := batch[i]
		if fmt.Sprintf("%+v", got.AvgQueue.Values) != fmt.Sprintf("%+v", want.AvgQueue.Values) ||
			got.MeanBCT != want.MeanBCT || got.MaxBCT != want.MaxBCT ||
			got.Timeouts != want.Timeouts || got.Drops != want.Drops ||
			got.SentPackets != want.SentPackets {
			t.Fatalf("cfg %d: batched result differs from serial RunIncastSim", i)
		}
	}
}
