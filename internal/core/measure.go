package core

import (
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
	"incastlab/internal/tcp"
	"incastlab/internal/workload"
)

// burstProbe is the measurement harness shared by the packet-level incast
// runners (dumbbell and Clos): per-burst queue-depth series on the
// bottleneck queue, a counter snapshot at the start of the measured window
// (so the discarded first burst does not pollute deltas), and the
// aggregation of both into a SimResult.
type burstProbe struct {
	cfg *SimConfig
	eng *sim.Engine
	q   *netsim.Queue

	samplesPerBurst int
	// first is the index of the first measured burst (1, unless the run has
	// a single burst).
	first       int
	burstSeries []*stats.Series

	base      tcp.SenderStats
	baseDrops int64
	baseMarks int64

	// det, when set, reads the switch-side incast detector; the firing
	// count is snapshotted with the other counters at the measured window's
	// start so the result reports a windowed delta. The first-fire time is
	// lifetime (onset detection happens in the first burst, warmup or not).
	det          *detectorReadout
	baseDetFired int64
}

// newBurstProbe schedules the per-burst sampling and the measured-window
// counter snapshot. aggregate must return the summed transport counters at
// call time; it is invoked once, inside the simulation, at the measured
// window's start.
func newBurstProbe(cfg *SimConfig, eng *sim.Engine, q *netsim.Queue,
	aggregate func() tcp.SenderStats) *burstProbe {
	p := &burstProbe{
		cfg:             cfg,
		eng:             eng,
		q:               q,
		samplesPerBurst: int(cfg.SampleWindow / cfg.SampleInterval),
		first:           1,
	}
	if cfg.Bursts == 1 {
		p.first = 0
	}
	measured := cfg.Bursts - p.first
	p.burstSeries = make([]*stats.Series, 0, measured)
	for b := p.first; b < cfg.Bursts; b++ {
		start := sim.Time(b) * cfg.Interval
		p.burstSeries = append(p.burstSeries,
			netsim.QueueDepthSeries(eng, q, start, cfg.SampleInterval, p.samplesPerBurst))
	}
	eng.Schedule(sim.Time(p.first)*cfg.Interval, func() {
		p.base = aggregate()
		st := q.Stats()
		p.baseDrops, p.baseMarks = st.DroppedPackets, st.MarkedPackets
		if p.det != nil {
			p.baseDetFired = p.det.fired()
		}
	})
	return p
}

// watchDetector registers the switch-side incast-detector readout (nil is
// accepted and ignored, for runs without notification). Call before the
// engine runs so the window-start snapshot sees it.
func (p *burstProbe) watchDetector(det *detectorReadout) { p.det = det }

// lastBurstStart returns the nominal start time of the final burst, where
// the in-flight trace samples.
func (p *burstProbe) lastBurstStart() sim.Time {
	return sim.Time(p.cfg.Bursts-1) * p.cfg.Interval
}

// finish folds the sampled series, burst records, and counter deltas into
// res. Call after the run completes.
func (p *burstProbe) finish(res *SimResult, bursts []workload.BurstRecord, agg tcp.SenderStats) {
	// Average the per-burst queue traces.
	avg := stats.NewSeries(0, int64(p.cfg.SampleInterval), p.samplesPerBurst)
	var busy, belowK int
	for _, s := range p.burstSeries {
		for i, v := range s.Values {
			avg.Values[i] += v
			if v > res.MaxQueue {
				res.MaxQueue = v
			}
			if v > 0 {
				busy++
				if v < float64(res.ECNThreshold) {
					belowK++
				}
			}
		}
	}
	if busy > 0 {
		res.FracBelowK = float64(belowK) / float64(busy)
	}
	avg.Scale(1 / float64(len(p.burstSeries)))
	res.AvgQueue = avg
	spikeSamples := int(2 * sim.Millisecond / p.cfg.SampleInterval)
	for i := 0; i < spikeSamples && i < len(avg.Values); i++ {
		if avg.Values[i] > res.SpikePackets {
			res.SpikePackets = avg.Values[i]
		}
	}

	var bctSum sim.Time
	n := 0
	for _, b := range bursts[p.first:] {
		bctSum += b.BCT
		if b.BCT > res.MaxBCT {
			res.MaxBCT = b.BCT
		}
		n++
	}
	res.MeanBCT = bctSum / sim.Time(n)

	res.Timeouts = agg.Timeouts - p.base.Timeouts
	res.FastRetransmits = agg.FastRetransmits - p.base.FastRetransmits
	res.RetransmitPackets = agg.RetransmitPackets - p.base.RetransmitPackets
	res.SentPackets = agg.SentPackets - p.base.SentPackets
	res.IncastNotifies = agg.IncastNotifies - p.base.IncastNotifies
	if p.det != nil {
		res.DetectorFirings = p.det.fired() - p.baseDetFired
		res.DetectorFirstFire = p.det.firstFire()
	}
	st := p.q.Stats()
	res.Drops = st.DroppedPackets - p.baseDrops
	res.Marks = st.MarkedPackets - p.baseMarks
}
