package core

import (
	"fmt"
	"strings"

	"incastlab/internal/millisampler"
	"incastlab/internal/services"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
	"incastlab/internal/trace"
)

func init() {
	register(10, Experiment{
		Name: "table1", Kind: KindTable, PaperRef: "Table 1",
		Run: func(o Options) Result { return Table1(o) },
	})
	register(20, Experiment{
		Name: "fig1", Kind: KindFigure, PaperRef: "Figure 1",
		Run: func(o Options) Result { return Fig1ExampleTrace(o) },
	})
	register(30, Experiment{
		Name: "fig2_fig4", Kind: KindFigure, PaperRef: "Figures 2 & 4",
		Run: func(o Options) Result { return Fig2And4BurstCharacterization(o) },
	})
	register(40, Experiment{
		Name: "fig3", Kind: KindFigure, PaperRef: "Figure 3",
		Run: func(o Options) Result { return Fig3Stability(o) },
	})
}

// Table1Result reproduces Table 1: the five example services.
type Table1Result struct {
	TableResult
	Services []services.Profile
}

// Table1 returns the service registry.
func Table1(opt Options) *Table1Result {
	r := &Table1Result{Services: services.All()}
	t := trace.NewTable("service", "description")
	for _, p := range r.Services {
		t.AddRow(p.Name, p.Description)
	}
	r.TableResult = TableResult{
		ExpName:     "table1",
		Artifacts:   []Artifact{{File: "table1_services.csv", Table: t}},
		SummaryText: section("Table 1: five example services") + t.Text(),
	}
	return r
}

// Fig1Result reproduces Figure 1: a two-second example trace from one
// "aggregator" host at 1 ms granularity — throughput, active flows,
// ECN-marked throughput, and retransmissions.
type Fig1Result struct {
	TableResult
	Trace  *millisampler.Trace
	Bursts []millisampler.Burst
	// MeanUtilization should land near the paper's 10.6%.
	MeanUtilization float64
}

// Fig1ExampleTrace generates and analyzes the example trace.
func Fig1ExampleTrace(opt Options) *Fig1Result {
	p, ok := services.ByName("aggregator")
	if !ok {
		panic("core: aggregator profile missing")
	}
	ms := 2000
	if opt.Quick {
		ms = 500
	}
	// Like the paper, the example is chosen to be illustrative: scan a few
	// hosts and prefer the first trace that exhibits a retransmission
	// burst (they strike fewer than 1% of bursts, so an arbitrary host
	// often shows none). The candidates generate in parallel; the pick —
	// lowest host with a retransmission burst, else host 0 — is positional,
	// so it matches the serial scan exactly.
	type candidate struct {
		tr     *millisampler.Trace
		bursts []millisampler.Burst
		retx   bool
	}
	cands := runParallel(opt.Workers, 20, func(host int) candidate {
		c := candidate{}
		c.tr = p.Generate(services.GenConfig{Seed: opt.seed(), Host: host, DurationMS: ms})
		c.bursts = millisampler.Detect(c.tr, millisampler.DefaultBurstThreshold)
		for _, b := range c.bursts {
			if b.RetxLineRateFraction > 0 {
				c.retx = true
				break
			}
		}
		return c
	})
	pick := cands[0]
	for _, c := range cands {
		if c.retx {
			pick = c
			break
		}
	}
	r := &Fig1Result{
		Trace:           pick.tr,
		Bursts:          pick.bursts,
		MeanUtilization: pick.tr.MeanUtilization(),
	}
	r.TableResult = TableResult{
		ExpName:     "fig1",
		Artifacts:   []Artifact{{File: "fig1_example_trace.csv", Table: r.seriesTable()}},
		SummaryText: r.renderSummary(),
	}
	return r
}

// seriesTable renders the four per-millisecond series.
func (r *Fig1Result) seriesTable() *trace.Table {
	t := trace.NewTable("time_ms", "throughput_util", "active_flows", "ecn_util", "retx_util")
	capacity := float64(r.Trace.LineRateBps) / 8 * float64(r.Trace.IntervalNS) / 1e9
	for i, s := range r.Trace.Samples {
		t.AddFloats(float64(i), s.Bytes/capacity, float64(s.Flows),
			s.ECNBytes/capacity, s.RetxBytes/capacity)
	}
	return t
}

func (r *Fig1Result) renderSummary() string {
	var b strings.Builder
	b.WriteString(section("Figure 1: example incast bursts at one aggregator host"))
	incasts := 0
	var maxFlows int
	var maxRetx float64
	for _, burst := range r.Bursts {
		if burst.IsIncast() {
			incasts++
		}
		if burst.PeakFlows > maxFlows {
			maxFlows = burst.PeakFlows
		}
		if burst.RetxLineRateFraction > maxRetx {
			maxRetx = burst.RetxLineRateFraction
		}
	}
	fmt.Fprintf(&b, "duration=%.1fs  mean utilization=%.1f%% (paper: 10.6%%)\n",
		r.Trace.DurationSeconds(), 100*r.MeanUtilization)
	fmt.Fprintf(&b, "bursts=%d (incasts: %d)  peak flows=%d  worst retransmit=%.1f%% of line rate (paper: up to 24%%)\n",
		len(r.Bursts), incasts, maxFlows, 100*maxRetx)

	n := len(r.Trace.Samples)
	xs := make([]float64, n)
	util := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		util[i] = r.Trace.Utilization(i)
	}
	b.WriteString(trace.PlotString("Ingress throughput (fraction of line rate)",
		"ms", "utilization", []trace.Series{{Name: "util", X: xs, Y: util}}, 72, 10))
	return b.String()
}

// ServiceReport pairs a service with its analyzed burst corpus.
type ServiceReport struct {
	Service string
	Report  *millisampler.Report
}

// Fig2And4Result reproduces Figures 2 and 4: per-service CDFs of burst
// frequency, duration, and flow count (Fig 2) and of queue watermark, ECN
// marking, and retransmissions (Fig 4), over the 20-host x 9-round corpus.
type Fig2And4Result struct {
	TableResult
	Reports []ServiceReport
}

// Fig2And4BurstCharacterization runs the measurement campaign for all five
// services.
func Fig2And4BurstCharacterization(opt Options) *Fig2And4Result {
	cfg := services.DefaultCollectConfig()
	cfg.Seed = opt.seed()
	if opt.Quick {
		cfg.Hosts = 4
		cfg.Rounds = 2
	}
	r := &Fig2And4Result{}
	profiles := services.All()
	r.Reports = runParallel(opt.Workers, len(profiles), func(i int) ServiceReport {
		return ServiceReport{
			Service: profiles[i].Name,
			Report:  millisampler.Analyze(services.Collect(profiles[i], cfg)),
		}
	})
	summary := r.summaryTable()
	artifacts := []Artifact{{File: "fig2_fig4_summary.csv", Table: summary}}
	metrics := []struct {
		file string
		get  func(*millisampler.Report) *stats.CDF
	}{
		{"fig2a_burst_frequency.csv", func(r *millisampler.Report) *stats.CDF { return r.BurstsPerSecond }},
		{"fig2b_burst_duration.csv", func(r *millisampler.Report) *stats.CDF { return r.DurationMS }},
		{"fig2c_burst_flows.csv", func(r *millisampler.Report) *stats.CDF { return r.Flows }},
		{"fig4a_queue_watermark.csv", func(r *millisampler.Report) *stats.CDF { return r.QueueWatermark }},
		{"fig4b_ecn_fraction.csv", func(r *millisampler.Report) *stats.CDF { return r.ECNFraction }},
		{"fig4c_retx_fraction.csv", func(r *millisampler.Report) *stats.CDF { return r.RetxFraction }},
	}
	const points = 200
	for _, m := range metrics {
		header := []string{"quantile"}
		for _, sr := range r.Reports {
			header = append(header, sr.Service)
		}
		t := &trace.Table{Header: header}
		for i := 0; i < points; i++ {
			q := float64(i) / float64(points-1)
			row := []string{trace.Float(q)}
			for _, sr := range r.Reports {
				row = append(row, trace.Float(m.get(sr.Report).Quantile(q)))
			}
			t.AddRow(row...)
		}
		artifacts = append(artifacts, Artifact{File: m.file, Table: t})
	}
	r.TableResult = TableResult{
		ExpName:   "fig2_fig4",
		Artifacts: artifacts,
		SummaryText: section("Figures 2 & 4: burst characteristics and network effects across services") +
			summary.Text(),
	}
	return r
}

func (r *Fig2And4Result) summaryTable() *trace.Table {
	t := trace.NewTable("service", "bursts", "incast_frac", "util",
		"freq_p50_per_s", "dur_p50_ms", "dur_p90_ms",
		"flows_p50", "flows_p99", "low_flow_frac",
		"wm_p50", "ecn_zero_frac", "ecn_p95", "retx_zero_frac", "retx_p999")
	for _, sr := range r.Reports {
		rep := sr.Report
		t.AddRow(sr.Service,
			fmt.Sprint(rep.Bursts), trace.Float(rep.IncastFraction()), trace.Float(rep.MeanUtilization),
			trace.Float(rep.BurstsPerSecond.Quantile(0.5)),
			trace.Float(rep.DurationMS.Quantile(0.5)), trace.Float(rep.DurationMS.Quantile(0.9)),
			trace.Float(rep.Flows.Quantile(0.5)), trace.Float(rep.Flows.Quantile(0.99)),
			trace.Float(rep.Flows.At(20)),
			trace.Float(rep.QueueWatermark.Quantile(0.5)),
			trace.Float(rep.ECNFraction.At(0)), trace.Float(rep.ECNFraction.Quantile(0.95)),
			trace.Float(rep.RetxFraction.At(0)), trace.Float(rep.RetxFraction.Quantile(0.999)))
	}
	return t
}

// Fig3Result reproduces Figure 3: stability of the incast degree over time
// (3a: per-service mean flow count per round over 18 h) and across hosts
// (3b: per-host mean and p99 for the aggregator).
type Fig3Result struct {
	TableResult
	// Services lists the service names in row order.
	Services []string
	// RoundHours gives each round's wall-clock offset in hours.
	RoundHours []float64
	// RoundMeans[s][r] is service s's mean per-burst flow count in round r,
	// averaged over hosts.
	RoundMeans [][]float64
	// HostMeans/HostP99s are per-host aggregator statistics over all
	// rounds (Fig 3b).
	HostMeans, HostP99s []float64
}

// Fig3Stability runs the 18-hour campaign: 2-second traces from 20 hosts
// every 10 minutes.
func Fig3Stability(opt Options) *Fig3Result {
	hosts, rounds, traceMS := 20, 108, 2000
	spacing := 600 * sim.Second
	if opt.Quick {
		hosts, rounds, traceMS = 4, 10, 1000
		spacing = 2 * 3600 * sim.Second // still spans the video mode switch
	}
	r := &Fig3Result{}

	// One job per service: each walks its rounds x hosts grid serially (the
	// per-host flow lists must accumulate in round order) and services fan
	// out across workers.
	type svcResult struct {
		means []float64
		// hostFlows is non-nil only for the aggregator, whose per-host
		// distributions feed Fig 3b.
		hostFlows [][]float64
	}
	profiles := services.All()
	results := runParallel(opt.Workers, len(profiles), func(si int) svcResult {
		p := profiles[si]
		res := svcResult{means: make([]float64, rounds)}
		if p.Name == "aggregator" {
			res.hostFlows = make([][]float64, hosts)
		}
		for round := 0; round < rounds; round++ {
			at := sim.Time(round) * spacing
			var roundMean stats.Online
			for h := 0; h < hosts; h++ {
				tr := p.Generate(services.GenConfig{
					Seed: opt.seed(), Host: h, At: at, DurationMS: traceMS,
				})
				bursts := millisampler.Detect(tr, millisampler.DefaultBurstThreshold)
				for _, bu := range bursts {
					roundMean.Add(float64(bu.PeakFlows))
					if res.hostFlows != nil {
						res.hostFlows[h] = append(res.hostFlows[h], float64(bu.PeakFlows))
					}
				}
			}
			res.means[round] = roundMean.Mean()
		}
		return res
	})
	aggHostFlows := make([][]float64, hosts)
	for i, p := range profiles {
		r.Services = append(r.Services, p.Name)
		r.RoundMeans = append(r.RoundMeans, results[i].means)
		if results[i].hostFlows != nil {
			aggHostFlows = results[i].hostFlows
		}
	}
	r.RoundHours = make([]float64, rounds)
	for i := range r.RoundHours {
		r.RoundHours[i] = (sim.Time(i) * spacing).Seconds() / 3600
	}
	for h := 0; h < hosts; h++ {
		sum := stats.Summarize(aggHostFlows[h])
		r.HostMeans = append(r.HostMeans, sum.Mean)
		r.HostP99s = append(r.HostP99s, sum.P99)
	}

	over := &trace.Table{Header: append([]string{"hour"}, r.Services...)}
	for round := range r.RoundHours {
		row := []string{trace.Float(r.RoundHours[round])}
		for s := range r.Services {
			row = append(row, trace.Float(r.RoundMeans[s][round]))
		}
		over.AddRow(row...)
	}
	hb := trace.NewTable("host", "mean_flows", "p99_flows")
	for h := range r.HostMeans {
		hb.AddFloats(float64(h), r.HostMeans[h], r.HostP99s[h])
	}
	r.TableResult = TableResult{
		ExpName: "fig3",
		Artifacts: []Artifact{
			{File: "fig3a_flows_over_time.csv", Table: over},
			{File: "fig3b_aggregator_hosts.csv", Table: hb},
		},
		SummaryText: r.renderSummary(),
	}
	return r
}

// StabilitySpread returns (max-min)/mean of service s's round means — the
// Figure 3a stability metric.
func (r *Fig3Result) StabilitySpread(service string) float64 {
	for i, name := range r.Services {
		if name != service {
			continue
		}
		sum := stats.Summarize(r.RoundMeans[i])
		if sum.Mean == 0 {
			return 0
		}
		return (sum.Max - sum.Min) / sum.Mean
	}
	return 0
}

func (r *Fig3Result) renderSummary() string {
	var b strings.Builder
	b.WriteString(section("Figure 3: incast degree is stable over time and across hosts"))
	t := trace.NewTable("service", "mean_flows", "spread_over_rounds")
	for i, name := range r.Services {
		sum := stats.Summarize(r.RoundMeans[i])
		t.AddRow(name, trace.Float(sum.Mean), trace.Float(r.StabilitySpread(name)))
	}
	b.WriteString(t.Text())

	var series []trace.Series
	for i, name := range r.Services {
		series = append(series, trace.Series{Name: name, X: r.RoundHours, Y: r.RoundMeans[i]})
	}
	b.WriteString(trace.PlotString("Mean flow count per round (Fig 3a)",
		"hours", "flows", series, 72, 14))

	hostSum := stats.Summarize(r.HostMeans)
	fmt.Fprintf(&b, "Aggregator per-host mean flows: %.0f..%.0f (spread %.0f%%); p99 range %.0f..%.0f\n",
		hostSum.Min, hostSum.Max, 100*(hostSum.Max-hostSum.Min)/hostSum.Mean,
		stats.Summarize(r.HostP99s).Min, stats.Summarize(r.HostP99s).Max)
	return b.String()
}
