package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"incastlab/internal/cc"
	"incastlab/internal/obs"
	"incastlab/internal/scenario"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
)

// TestFlowDispatchMatchesPacketModes is the seeded cross-backend
// regression gate at the core layer: the same SimConfig run at both
// fidelities must classify into the same paper mode at every quick Fig-5
// operating point, with burst completion times inside the differential
// tolerance contract (see DESIGN.md and internal/audit).
func TestFlowDispatchMatchesPacketModes(t *testing.T) {
	for _, n := range []int{80, 500, 1400} {
		base := SimConfig{Flows: n, Bursts: 4, Audit: true}
		packet := RunIncastSim(base)
		flowCfg := base
		flowCfg.Fidelity = FidelityFlow
		flow := RunIncastSim(flowCfg)

		if packet.Fidelity != FidelityPacket || flow.Fidelity != FidelityFlow {
			t.Fatalf("n=%d: fidelity stamps %q / %q", n, packet.Fidelity, flow.Fidelity)
		}
		if pm, fm := mode(packet), mode(flow); pm != fm {
			t.Errorf("n=%d: packet mode %q, flow mode %q", n, pm, fm)
		}
		if flow.AlgName != packet.AlgName {
			t.Errorf("n=%d: alg name %q vs %q", n, flow.AlgName, packet.AlgName)
		}
		pBCT, fBCT := float64(packet.MeanBCT), float64(flow.MeanBCT)
		if rel := math.Abs(fBCT-pBCT) / pBCT; rel > 0.35 {
			t.Errorf("n=%d: mean BCT diverges %.1f%%: packet %v, flow %v",
				n, 100*rel, packet.MeanBCT, flow.MeanBCT)
		}
	}
}

// TestFlowObsKeySetParity pins the harvest contract: a flow-level run
// publishes exactly the same metric identities as a packet-level run of
// the same config — counters with no fluid counterpart appear as explicit
// zeros rather than going absent, so dashboards never see a sparse key
// set.
func TestFlowObsKeySetParity(t *testing.T) {
	snapshot := func(fidelity string) *obs.Snapshot {
		reg := obs.NewRegistry()
		RunIncastSim(SimConfig{
			Flows: 60, BurstDuration: sim.Millisecond, Bursts: 3,
			Interval: 5 * sim.Millisecond,
			Metrics:  reg, Experiment: "parity", Fidelity: fidelity,
		})
		return reg.Snapshot()
	}
	identities := func(s *obs.Snapshot) []string {
		var ids []string
		label := func(labels map[string]string) string {
			keys := make([]string, 0, len(labels))
			for k := range labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var b strings.Builder
			for _, k := range keys {
				fmt.Fprintf(&b, ",%s=%s", k, labels[k])
			}
			return b.String()
		}
		for _, c := range s.Counters {
			ids = append(ids, "counter:"+c.Name+label(c.Labels))
		}
		for _, g := range s.Gauges {
			ids = append(ids, "gauge:"+g.Name+label(g.Labels))
		}
		for _, h := range s.Histograms {
			ids = append(ids, "histogram:"+h.Name+label(h.Labels))
		}
		sort.Strings(ids)
		return ids
	}
	packet := identities(snapshot(FidelityPacket))
	flow := identities(snapshot(FidelityFlow))
	if len(packet) == 0 {
		t.Fatal("packet snapshot is empty")
	}
	pset := make(map[string]bool, len(packet))
	for _, id := range packet {
		pset[id] = true
	}
	fset := make(map[string]bool, len(flow))
	for _, id := range flow {
		fset[id] = true
	}
	for _, id := range packet {
		if !fset[id] {
			t.Errorf("flow snapshot is missing %s", id)
		}
	}
	for _, id := range flow {
		if !pset[id] {
			t.Errorf("flow snapshot has extra %s", id)
		}
	}
}

// ccUnmappable is a congestion control with no flow-level reduced form.
type ccUnmappable struct{ *cc.Reno }

func (ccUnmappable) Name() string { return "unmappable" }

func TestFlowCompatible(t *testing.T) {
	if err := (SimConfig{Flows: 10}).FlowCompatible(); err != nil {
		t.Errorf("default config should be flow-compatible: %v", err)
	}
	cases := []struct {
		name string
		cfg  SimConfig
	}{
		{"ictcp", SimConfig{Flows: 10, EnableICTCP: true}},
		{"in-flight tracking", SimConfig{Flows: 10, TrackInFlight: true}},
		{"delayed acks", SimConfig{Flows: 10, Receiver: tcp.ReceiverConfig{DelayedAcks: true}}},
		{"idle restart", SimConfig{Flows: 10, Sender: tcp.SenderConfig{RestartAfterIdle: true}}},
		{"unmappable cc", SimConfig{Flows: 10, Alg: func(int) cc.Algorithm {
			return ccUnmappable{cc.NewReno(14600)}
		}}},
	}
	for _, tc := range cases {
		err := tc.cfg.FlowCompatible()
		if err == nil {
			t.Errorf("%s: config accepted as flow-compatible", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "packet") && !strings.Contains(err.Error(), "reduced form") {
			t.Errorf("%s: error does not point at the packet backend: %v", tc.name, err)
		}
	}
}

func TestUnknownFidelityPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unknown fidelity did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "fidelity") {
			t.Fatalf("panic does not name the fidelity: %v", r)
		}
	}()
	RunIncastSim(SimConfig{Flows: 10, Fidelity: "warp"})
}

// TestFlowAggregationNotificationRejected pins that cohort aggregation
// does not widen the fluid backend's feature envelope: a flow-fidelity
// run with switch-side incast notification still fails loudly, naming
// the blocking feature, regardless of the aggregation level.
func TestFlowAggregationNotificationRejected(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("flow fidelity with notification did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "notification") {
			t.Fatalf("panic does not name the blocking feature: %v", r)
		}
	}()
	RunIncastSim(SimConfig{
		Flows:        10,
		Fidelity:     FidelityFlow,
		Aggregation:  AggregationCohort,
		Notification: &NotificationConfig{},
	})
}

// TestPacketAggregationPanics: the aggregation knob shapes the fluid
// backend's flow population; requesting it on a packet-level run is a
// contradiction that must fail loudly, not be ignored.
func TestPacketAggregationPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("packet fidelity with aggregation did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "aggregation") {
			t.Fatalf("panic does not name the knob: %v", r)
		}
	}()
	RunIncastSim(SimConfig{Flows: 10, Aggregation: AggregationCohort})
}

// TestOptionsFidelityBestEffort pins the Options-level knob: compatible
// runs are lowered to the fluid backend, packet-only runs keep the packet
// backend silently, and explicit per-config choices are never overridden.
func TestOptionsFidelityBestEffort(t *testing.T) {
	o := Options{Fidelity: FidelityFlow}

	plain := o.instrument("t", SimConfig{Flows: 10})
	if plain.Fidelity != FidelityFlow {
		t.Errorf("compatible config not lowered: fidelity %q", plain.Fidelity)
	}
	ictcp := o.instrument("t", SimConfig{Flows: 10, EnableICTCP: true})
	if ictcp.Fidelity != "" {
		t.Errorf("ICTCP config lowered to %q; must keep the packet backend", ictcp.Fidelity)
	}
	explicit := o.instrument("t", SimConfig{Flows: 10, Fidelity: FidelityPacket})
	if explicit.Fidelity != FidelityPacket {
		t.Errorf("explicit packet request overridden to %q", explicit.Fidelity)
	}
	if err := (Options{Fidelity: "warp"}).Validate(); err == nil {
		t.Error("Options.Validate accepted unknown fidelity")
	}
}

// TestScenarioFlowFidelity pins compile-time behavior of the spec-level
// knob: rows inherit the fidelity, and an explicitly flow-level spec that
// needs packet-only machinery fails at compile time, naming the feature.
func TestScenarioFlowFidelity(t *testing.T) {
	spec := scenario.Spec{
		Name:     "flow_fid_test",
		Workload: scenario.Workload{Flows: 50},
		Sweep:    scenario.Sweep{Axis: "ecn_threshold_pkts", Values: scenario.Nums(20, 65)},
		Fidelity: "flow",
	}
	_, _, cfgs, err := CompileScenario(Options{}, spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for i, cfg := range cfgs {
		if cfg.Fidelity != FidelityFlow {
			t.Errorf("row %d fidelity %q, want flow", i, cfg.Fidelity)
		}
	}

	bad := spec
	bad.Transport = &scenario.Transport{ICTCP: true}
	if _, _, _, err := CompileScenario(Options{}, bad); err == nil {
		t.Error("flow-level spec with ICTCP compiled")
	} else if !strings.Contains(err.Error(), "ICTCP") {
		t.Errorf("compile error does not name the blocking feature: %v", err)
	}

	unknown := spec
	unknown.Fidelity = "warp"
	if _, _, _, err := CompileScenario(Options{}, unknown); err == nil {
		t.Error("unknown fidelity compiled")
	}
}
