package core

import (
	"bytes"
	"testing"

	"incastlab/internal/obs"
	"incastlab/internal/sim"
)

// TestInstrumentedSimMatchesUninstrumented verifies the observability
// layer's core promise: attaching a metrics registry changes nothing about
// the simulation (the mirror of the audit gate in audit_test.go).
func TestInstrumentedSimMatchesUninstrumented(t *testing.T) {
	run := func(reg *obs.Registry) *SimResult {
		return RunIncastSim(SimConfig{
			Flows: 30, BurstDuration: sim.Millisecond, Bursts: 3,
			Interval: 5 * sim.Millisecond, Seed: 42,
			Metrics: reg, Experiment: "test",
		})
	}
	plain, instrumented := run(nil), run(obs.NewRegistry())
	if plain.MeanBCT != instrumented.MeanBCT || plain.MaxBCT != instrumented.MaxBCT ||
		plain.MaxQueue != instrumented.MaxQueue || plain.Drops != instrumented.Drops ||
		plain.Marks != instrumented.Marks || plain.Timeouts != instrumented.Timeouts ||
		plain.SentPackets != instrumented.SentPackets {
		t.Fatalf("metrics changed results:\nplain:        %+v\ninstrumented: %+v",
			plain, instrumented)
	}
}

// deterministicSnapshotJSON runs the quick Fig-5 sweep with the given
// worker count and renders the deterministic (sim-domain) subset of the
// harvested metrics.
func deterministicSnapshotJSON(t *testing.T, workers int) []byte {
	t.Helper()
	reg := obs.NewRegistry()
	Fig5Modes(Options{Seed: 7, Quick: true, Workers: workers, Metrics: reg})
	var buf bytes.Buffer
	if err := reg.Snapshot().Deterministic().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestMetricsSnapshotSerialMatchesParallel verifies the registry's merge
// commutativity end to end: the deterministic snapshot of a parallel sweep
// is byte-identical to the serial one.
func TestMetricsSnapshotSerialMatchesParallel(t *testing.T) {
	serial := deterministicSnapshotJSON(t, 1)
	for _, workers := range []int{2, 0} {
		parallel := deterministicSnapshotJSON(t, workers)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("snapshot with workers=%d differs from serial:\nserial:\n%s\nparallel:\n%s",
				workers, serial, parallel)
		}
	}
	// Sanity: the snapshot actually contains the run telemetry.
	snap, err := obs.ParseSnapshot(serial)
	if err != nil {
		t.Fatalf("ParseSnapshot: %v", err)
	}
	want := map[string]bool{
		"runs": false, "sim_events_executed": false, "sim_time_ns": false,
		"net_queue_enqueued_packets": false, "net_pool_gets": false,
		"tcp_sent_packets": false, "cc_cwnd_updates": false,
	}
	for _, c := range snap.Counters {
		if _, ok := want[c.Name]; ok {
			want[c.Name] = true
			if c.Labels["experiment"] != "fig5" {
				t.Errorf("counter %s labeled %v, want experiment=fig5", c.Name, c.Labels)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("snapshot is missing counter %q", name)
		}
	}
}

// TestHarvestCoversEngineAndHistograms pins the per-run harvest content on
// a single ad-hoc run: event counts match the engine's own accounting and
// the final-cwnd/alpha/BCT histograms observe every flow and burst.
func TestHarvestCoversEngineAndHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	const flows, bursts = 30, 3
	RunIncastSim(SimConfig{
		Flows: flows, BurstDuration: sim.Millisecond, Bursts: bursts,
		Interval: 5 * sim.Millisecond, Seed: 42, Metrics: reg,
	})
	snap := reg.Snapshot()

	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] += c.Value
	}
	if counters["runs"] != 1 {
		t.Fatalf("runs = %d, want 1", counters["runs"])
	}
	if counters["sim_events_executed"] <= 0 ||
		counters["sim_events_scheduled"] < counters["sim_events_executed"] {
		t.Fatalf("implausible event counts: scheduled=%d executed=%d",
			counters["sim_events_scheduled"], counters["sim_events_executed"])
	}
	if counters["sim_time_ns"] <= 0 {
		t.Fatalf("sim_time_ns = %d, want > 0", counters["sim_time_ns"])
	}
	if got := counters["net_pool_gets"] - counters["net_pool_puts"]; got != 0 {
		t.Fatalf("pool gets-puts = %d after a drained run, want 0", got)
	}

	hists := map[string]int64{}
	for _, h := range snap.Histograms {
		hists[h.Name] += h.Count
	}
	if hists["cc_final_cwnd_bytes"] != flows {
		t.Errorf("cc_final_cwnd_bytes observed %d flows, want %d",
			hists["cc_final_cwnd_bytes"], flows)
	}
	if hists["cc_final_alpha"] != flows {
		t.Errorf("cc_final_alpha observed %d flows, want %d (DCTCP default)",
			hists["cc_final_alpha"], flows)
	}
	if hists["burst_bct_ms"] != bursts {
		t.Errorf("burst_bct_ms observed %d bursts, want %d", hists["burst_bct_ms"], bursts)
	}
}
