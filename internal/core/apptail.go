package core

import (
	"fmt"
	"time"

	"incastlab/internal/app"
	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
	"incastlab/internal/trace"
)

func init() {
	register(190, Experiment{
		Name: "ext_query_tail", Kind: KindExtension, PaperRef: "Section 1 (service-level impact)",
		Run: func(o Options) Result { return QueryTailLatency(o) },
	})
}

// QueryTailResult is an extension experiment beyond the paper's figures:
// it quantifies the paper's introduction claim that incast-induced loss
// "causes high tail latency that directly impacts service-level
// performance", using the closed-loop partition/aggregate application.
// The aggregate response volume is held constant while the fan-in degree
// grows, so the bandwidth bound is identical across rows; everything above
// it is incast damage.
type QueryTailResult struct {
	TableResult
	// Rows pairs each fan-in degree with its QCT summary (milliseconds).
	Degrees []int
	QCT     []stats.Summary
	// Timeouts per run, the mechanism behind the tail.
	Timeouts []int64
}

// QueryTailLatency sweeps the fan-in degree of a partition/aggregate
// application dispatching 4 MB queries.
func QueryTailLatency(opt Options) *QueryTailResult {
	degrees := []int{20, 80, 400, 1600}
	queries := 15
	if opt.Quick {
		degrees = []int{20, 400}
		queries = 6
	}
	r := &QueryTailResult{}
	type degreeResult struct {
		qct      stats.Summary
		timeouts int64
	}
	results := runParallel(opt.Workers, len(degrees), func(i int) degreeResult {
		n := degrees[i]
		var wallStart time.Time
		if opt.Metrics != nil {
			wallStart = time.Now()
		}
		eng := sim.NewEngine()
		cfg := app.DefaultPartitionAggregateConfig(n)
		cfg.Queries = queries
		cfg.Seed = opt.seed()
		cfg.ResponseBytes = 4_000_000 / int64(n)
		pa := app.NewPartitionAggregate(eng, netsim.DefaultDumbbellConfig(n), cfg,
			func(int) cc.Algorithm { return cc.NewDCTCP(cc.DefaultDCTCPConfig()) })
		eng.RunUntil(60 * sim.Second)
		if !pa.Done() {
			panic(fmt.Sprintf("core: %d-worker query sweep did not complete", n))
		}
		var timeouts int64
		for _, s := range pa.Senders() {
			timeouts += s.Stats().Timeouts
		}
		harvestEngineRun(opt.Metrics, "ext_query_tail", eng, wallStart,
			"workers", fmt.Sprint(n))
		return degreeResult{qct: pa.QCTStats(), timeouts: timeouts}
	})
	for i, n := range degrees {
		r.Degrees = append(r.Degrees, n)
		r.QCT = append(r.QCT, results[i].qct)
		r.Timeouts = append(r.Timeouts, results[i].timeouts)
	}

	t := trace.NewTable("workers", "qct_p50_ms", "qct_p99_ms", "qct_max_ms", "timeouts")
	for i, n := range r.Degrees {
		s := r.QCT[i]
		t.AddRow(fmt.Sprint(n), trace.Float(s.P50), trace.Float(s.P99), trace.Float(s.Max),
			fmt.Sprint(r.Timeouts[i]))
	}
	r.TableResult = TableResult{
		ExpName:   "ext_query_tail",
		Artifacts: []Artifact{{File: "ext_query_tail.csv", Table: t}},
		SummaryText: section("Extension: partition/aggregate query tail latency vs fan-in") + t.Text() +
			"\nEqual total bytes per query: the median stays at the bandwidth bound while\nthe tail explodes once the synchronized first windows overflow the ToR queue.\n",
	}
	return r
}
