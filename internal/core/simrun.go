package core

import (
	"fmt"
	"time"

	"incastlab/internal/audit"
	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/obs"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
	"incastlab/internal/tcp"
	"incastlab/internal/workload"
)

// SimConfig describes one packet-level incast simulation in the paper's
// Section 4 style: repeated equal-demand bursts over a dumbbell, with the
// first burst discarded as a slow-start transient.
type SimConfig struct {
	// Flows is the incast degree N.
	Flows int
	// BurstDuration is the target burst length (demand = bottleneck rate x
	// duration, split equally).
	BurstDuration sim.Time
	// Bursts is the total number of bursts (first one discarded).
	Bursts int
	// Interval is the burst start-to-start spacing. The paper's per-burst
	// semantics require it to exceed the minimum RTO so that one burst's
	// timeout recovery does not bleed into the next; see EXPERIMENTS.md.
	Interval sim.Time
	// JitterMax is the per-flow start jitter ceiling: each flow's release
	// within a burst is delayed uniformly in [0, JitterMax] (default
	// 100 us). Synchronized incasts at very large degree can lock their
	// retransmission timers together; widening the jitter is how a
	// scenario desynchronizes them, on either backend.
	JitterMax sim.Time
	// Net is the topology; zero value means the paper defaults for Flows.
	Net netsim.DumbbellConfig
	// Alg builds the congestion-control algorithm per flow; nil means
	// DCTCP with the paper's parameters.
	Alg func(flow int) cc.Algorithm
	// Sender/Receiver override transport tuning; zero values mean the
	// paper defaults (200 ms min RTO, immediate ACKs).
	Sender   tcp.SenderConfig
	Receiver tcp.ReceiverConfig
	// Admitter optionally schedules flow release within bursts.
	Admitter workload.Admitter
	// SampleInterval is the queue sampling granularity (default 100 us).
	SampleInterval sim.Time
	// SampleWindow is how long after each burst start to sample (default
	// burst duration + 5 ms).
	SampleWindow sim.Time
	// ExternalBufferBytes models rack-level contention when the topology
	// uses a shared buffer: bytes consumed by bursts to other hosts.
	ExternalBufferBytes int
	// EnableICTCP manages every flow's receive window with a receiver-side
	// ICTCP controller (pair it with a loss-based Alg such as Reno, as the
	// original scheme assumes no ECN).
	EnableICTCP bool
	// TrackInFlight additionally samples the per-flow in-flight
	// distribution over the measured window of the last burst (Figure 7).
	TrackInFlight bool
	// Audit runs the simulation in checked mode: an internal/audit Auditor
	// watches the whole dumbbell (conservation, queue bounds, clock,
	// cc protocol bounds, pool hygiene) and any violation panics with a
	// summary. Results are bit-identical to an unaudited run.
	Audit bool
	// Seed drives start jitter.
	Seed uint64
	// Metrics, when non-nil, receives the run's telemetry at the end of
	// the simulation (see internal/obs). Harvesting happens after the run
	// from counters the simulation maintains anyway, so results are
	// bit-identical with or without it.
	Metrics *obs.Registry
	// Experiment labels the harvested metrics with the experiment that
	// spawned the run; empty means "adhoc".
	Experiment string
	// Fidelity selects the simulation backend: FidelityPacket (the
	// default, also selected by "") runs the discrete-event packet
	// simulator; FidelityFlow runs the fluid fast path in
	// internal/flowsim. Flow-level runs reject packet-level-only features;
	// see FlowCompatible.
	Fidelity string
	// Aggregation selects how the flow-level backend represents the flow
	// population: AggregationPerFlow (one record per flow),
	// AggregationCohort (equivalence classes integrated as weighted
	// records, split lazily and exactly on divergence), or
	// AggregationAuto / "" (cohorts from flowsim's threshold up). It is a
	// FidelityFlow knob; setting it on a packet-level run panics.
	Aggregation string
	// Clos, when non-nil, runs the incast over a leaf/spine fabric instead
	// of the dumbbell: the aggregator in rack 0 and workers placed by
	// Placement. Net is ignored; queue/buffer tuning comes from the Clos
	// config itself. Both fidelities model the fabric: packet via
	// netsim.NewClos, flow via the multi-queue fluid solver over
	// ClosConfig.FluidPaths (same ECMP seed, same spine per flow).
	Clos *netsim.ClosConfig
	// Placement is where Clos workers sit relative to the aggregator:
	// workload.PlacementCrossRack (default) or workload.PlacementSameRack.
	Placement string
	// Aggregators is the number of concurrent Clos incasts sharing the
	// fabric (0 or 1 = the classic single aggregator at host 0); Flows is
	// the per-aggregator degree. See workload.ClosFlowEndpoints.
	Aggregators int
	// Notification, when non-nil, enables switch-side incast detection and
	// the explicit notification path (see NotificationConfig). Packet
	// fidelity only.
	Notification *NotificationConfig
}

// fill applies the paper defaults.
func (c *SimConfig) fill() {
	if c.Flows <= 0 {
		panic("core: simulation needs flows")
	}
	if c.BurstDuration <= 0 {
		c.BurstDuration = 15 * sim.Millisecond
	}
	if c.Bursts <= 0 {
		c.Bursts = 11
	}
	if c.Interval <= 0 {
		c.Interval = 250 * sim.Millisecond
	}
	if c.JitterMax <= 0 {
		c.JitterMax = 100 * sim.Microsecond
	}
	if c.Net.Senders == 0 {
		c.Net = netsim.DefaultDumbbellConfig(c.Flows)
	}
	if c.Alg == nil {
		c.Alg = func(int) cc.Algorithm { return cc.NewDCTCP(cc.DefaultDCTCPConfig()) }
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 100 * sim.Microsecond
	}
	if c.SampleWindow <= 0 {
		c.SampleWindow = c.BurstDuration + 5*sim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SimResult aggregates one simulation run over its measured bursts (all but
// the first).
type SimResult struct {
	Flows   int
	AlgName string
	// Fidelity records which backend produced the result (FidelityPacket
	// or FidelityFlow).
	Fidelity string

	// AvgQueue is the queue depth in packets, averaged element-wise across
	// measured bursts; time is relative to burst start.
	AvgQueue *stats.Series
	// MaxQueue is the highest sampled depth across measured bursts.
	MaxQueue float64
	// FracBelowK is the fraction of busy (non-empty) queue samples, taken
	// per burst before averaging, that sit below the ECN threshold — the
	// Mode 1 signature ("the queue often falls below the ECN threshold,
	// so DCTCP observes periods of no marking").
	FracBelowK float64
	// SpikePackets is the peak of AvgQueue within the first 2 ms of a
	// burst: the Section 4.3 straggler spike.
	SpikePackets float64

	// MeanBCT and MaxBCT summarize measured burst completion times.
	MeanBCT, MaxBCT sim.Time

	// Counters over the measured window (burst 1 onward).
	Timeouts, FastRetransmits, RetransmitPackets, Drops, Marks int64
	SentPackets                                                int64
	// IncastNotifies counts explicit incast notifications delivered to
	// senders and DetectorFirings counts switch-side detector (or, on a
	// Clos with distributed detection, leaf coordinator) firings — both
	// over the measured window, both zero when notification is off.
	IncastNotifies, DetectorFirings int64
	// DetectorFirstFire is the virtual time of the first detector firing
	// over the run's whole lifetime (the onset detection latency, since the
	// first burst starts at t=0); zero when it never fired.
	DetectorFirstFire sim.Time

	// InFlight is the Figure 7 trace over the last burst (nil unless
	// requested).
	InFlight *workload.InFlightTrace

	// Events is the number of simulator events the run executed and SimNow
	// is the virtual time it reached — together they give benchmarks an
	// events/sec figure. Neither is rendered into CSV artifacts.
	Events uint64
	SimNow sim.Time

	// QueueCapacity and ECNThreshold echo the topology, for rendering.
	QueueCapacity, ECNThreshold int
}

// RunIncastSim executes the simulation and gathers the per-burst-averaged
// queue trace and counters.
func RunIncastSim(cfg SimConfig) *SimResult {
	cfg.fill()
	switch cfg.Fidelity {
	case "", FidelityPacket:
		// The packet-level discrete-event path below.
		if cfg.Aggregation != "" {
			panic(fmt.Sprintf("core: aggregation %q is a fidelity-%q knob; the packet backend is per-packet by construction",
				cfg.Aggregation, FidelityFlow))
		}
	case FidelityFlow:
		return runFlowIncastSim(cfg)
	default:
		panic(fmt.Sprintf("core: unknown fidelity %q (valid: %q, %q)",
			cfg.Fidelity, FidelityPacket, FidelityFlow))
	}
	if cfg.Clos != nil {
		return runClosIncastSim(cfg)
	}
	// Wall time is only measured when it will be reported; the simulation
	// itself never reads it.
	var wallStart time.Time
	if cfg.Metrics != nil {
		wallStart = time.Now()
	}
	// Reuse a pooled engine + packet pool unless the run is instrumented
	// (see simpool.go for why metrics force a cold start).
	reuse := cfg.Metrics == nil
	res0 := acquireSimResources(reuse)
	eng := res0.eng

	wrapNotificationAlg(&cfg)
	wl := workload.IncastConfig{
		Flows:          cfg.Flows,
		BytesPerFlow:   workload.BytesPerFlowFor(cfg.Net.HostLinkBps, cfg.BurstDuration, cfg.Flows),
		Bursts:         cfg.Bursts,
		Interval:       cfg.Interval,
		JitterMax:      cfg.JitterMax,
		Seed:           cfg.Seed,
		SenderConfig:   cfg.Sender,
		ReceiverConfig: cfg.Receiver,
		Admitter:       cfg.Admitter,
	}
	in := workload.NewIncastWithPool(eng, cfg.Net, wl, cfg.Alg, res0.pool)
	if cfg.EnableICTCP {
		ctrl := tcp.NewICTCP(eng, tcp.DefaultICTCPConfig(cfg.Net.HostLinkBps, cfg.Net.BaseRTT()))
		for _, r := range in.Receivers() {
			ctrl.Manage(r)
		}
	}
	if cfg.ExternalBufferBytes > 0 {
		if in.Network().Shared == nil {
			panic("core: ExternalBufferBytes requires a shared-buffer topology")
		}
		in.Network().Shared.SetExternalBytes(cfg.ExternalBufferBytes)
	}

	var auditor *audit.Auditor
	if cfg.Audit {
		auditor = audit.New(eng, audit.Config{RequireDrained: true})
		auditor.WatchDumbbell(in.Network())
		for _, s := range in.Senders() {
			auditor.WatchSender(s)
		}
		auditor.Start()
	}

	res := &SimResult{
		Flows:         cfg.Flows,
		AlgName:       in.Senders()[0].Algorithm().Name(),
		Fidelity:      FidelityPacket,
		QueueCapacity: cfg.Net.QueueCapacityPackets,
		ECNThreshold:  cfg.Net.ECNThresholdPackets,
	}

	probe := newBurstProbe(&cfg, eng, in.Network().BottleneckQueue(),
		in.AggregateSenderStats)
	probe.watchDetector(attachDumbbellNotification(&cfg, in.Network()))

	if cfg.TrackInFlight {
		res.InFlight = workload.SampleInFlight(eng, in.Senders(),
			probe.lastBurstStart(), cfg.SampleInterval, probe.samplesPerBurst)
	}

	// Run until everything completes: the nominal end plus generous
	// recovery headroom for timeout-dominated modes.
	deadline := sim.Time(cfg.Bursts)*cfg.Interval + 10*sim.Second
	eng.RunUntil(deadline)
	if !in.Done() {
		panic(fmt.Sprintf("core: simulation with %d flows did not complete by %v", cfg.Flows, deadline))
	}
	if auditor != nil {
		auditor.Finish()
		if err := auditor.Err(); err != nil {
			panic(fmt.Sprintf("core: %d-flow simulation failed its invariant audit: %v", cfg.Flows, err))
		}
	}

	probe.finish(res, in.Bursts(), in.AggregateSenderStats())

	harvestIncastMetrics(&cfg, eng, in, wallStart)
	// Read the engine counters before release: Reset zeroes them.
	res.Events = eng.Executed()
	res.SimNow = eng.Now()
	releaseSimResources(res0, reuse)
	return res
}
