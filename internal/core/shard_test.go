package core

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"incastlab/internal/scenario"
	"incastlab/internal/sweep"
)

// closTestSpec is a small cross-rack sweep used by the cache and sharding
// tests: 2 placements x 2 degrees on a 3-rack fabric, quick bursts.
func closTestSpec() scenario.Spec {
	return scenario.Spec{
		Name: "clos_cache_test",
		Topology: &scenario.Topology{
			Clos: &scenario.Clos{Racks: 3, HostsPerRack: 9, Spines: 2, SpineLinkGbps: 100},
		},
		Workload: scenario.Workload{BurstMS: 2, QuickBursts: 2},
		Sweep: scenario.Sweep{
			Axis:   "placement",
			Values: scenario.Strs("same-rack", "cross-rack"),
			Flows:  []int{4, 8},
		},
	}
}

func tableCSV(t *testing.T, r *TableResult) string {
	t.Helper()
	if r == nil || len(r.Artifacts) != 1 {
		t.Fatal("expected one CSV artifact")
	}
	var b strings.Builder
	if err := r.Artifacts[0].Table.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestShardValidate(t *testing.T) {
	valid := []Shard{{}, {0, 1}, {0, 2}, {1, 2}, {7, 8}}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("%+v: %v", s, err)
		}
	}
	invalid := []Shard{{0, -1}, {1, 0}, {-1, 2}, {2, 2}, {5, 3}}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v: Validate accepted an invalid shard", s)
		}
	}
}

// TestScenarioRowKeyContract pins what the content address must and must
// not depend on. Workers, Audit, and Metrics are excluded because results
// are bit-identical across them (the obs and registry CI gates enforce
// that); fragmenting the cache on them would destroy cross-machine reuse.
func TestScenarioRowKeyContract(t *testing.T) {
	spec := closTestSpec()
	base := Options{Seed: 1, Quick: true, Workers: 1}
	key := ScenarioRowKey(base, spec, 0)
	if key != ScenarioRowKey(base, spec, 0) {
		t.Fatal("row key is not deterministic")
	}

	same := []Options{
		{Seed: 1, Quick: true, Workers: 8},
		{Seed: 1, Quick: true, Workers: 1, Audit: true},
	}
	for _, o := range same {
		if ScenarioRowKey(o, spec, 0) != key {
			t.Errorf("key depends on %+v; Workers/Audit must not fragment the cache", o)
		}
	}

	different := map[string]string{
		"row":      ScenarioRowKey(base, spec, 1),
		"seed":     ScenarioRowKey(Options{Seed: 2, Quick: true, Workers: 1}, spec, 0),
		"quick":    ScenarioRowKey(Options{Seed: 1, Quick: false, Workers: 1}, spec, 0),
		"fidelity": ScenarioRowKey(Options{Seed: 1, Quick: true, Workers: 1, Fidelity: FidelityFlow}, spec, 0),
		"aggregation": ScenarioRowKey(Options{Seed: 1, Quick: true, Workers: 1,
			Fidelity: FidelityFlow, Aggregation: AggregationCohort}, spec, 0),
	}
	for what, k := range different {
		if k == key {
			t.Errorf("key ignores %s; stale rows would be served across it", what)
		}
	}

	// Aggregation must fragment the cache on its own, not just via the
	// fidelity it requires: a cohort-solved row and a perflow-solved row
	// of the same flow-fidelity sweep are different results.
	flowOpt := Options{Seed: 1, Quick: true, Workers: 1, Fidelity: FidelityFlow}
	cohortOpt := flowOpt
	cohortOpt.Aggregation = AggregationCohort
	if ScenarioRowKey(flowOpt, spec, 0) == ScenarioRowKey(cohortOpt, spec, 0) {
		t.Error("key ignores Aggregation; perflow rows would be served for cohort runs")
	}

	other := closTestSpec()
	other.Sweep.Flows = []int{4, 16}
	if ScenarioRowKey(base, other, 0) == key {
		t.Error("key ignores the spec content")
	}
}

// TestScenarioCachedMatchesRunScenario: the cached runner's assembled
// table must be byte-identical to the plain runner's — cold, warm, and
// with the table rebuilt purely from cached rows.
func TestScenarioCachedMatchesRunScenario(t *testing.T) {
	opt := Options{Seed: 1, Quick: true, Workers: 1}
	spec := closTestSpec()

	plain, err := RunScenario(opt, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := tableCSV(t, plain)

	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, stats, err := RunScenarioCached(opt, spec, cache, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Computed != stats.Rows || stats.Hits != 0 {
		t.Fatalf("cold run stats = %s, want all computed", stats)
	}
	if got := tableCSV(t, cold); got != want {
		t.Errorf("cold cached CSV differs from RunScenario:\n%s\nvs\n%s", got, want)
	}

	warm, stats, err := RunScenarioCached(opt, spec, cache, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != stats.Rows || stats.Computed != 0 {
		t.Fatalf("warm run stats = %s, want all hits", stats)
	}
	if got := tableCSV(t, warm); got != want {
		t.Error("cache-resumed CSV differs from the cold run")
	}
	if warm.Summary() != plain.Summary() {
		t.Error("cache-resumed summary text differs from RunScenario")
	}
}

// TestParallelShardedCacheResume is the sharded runner's race-gate test:
// every shard runs in its own goroutine against one shared cache
// directory (as -shard-procs does with processes), each computes only its
// own rows, and the final assembly — all cache hits — must be
// byte-identical to an unsharded cold run. Runs under -race in ci.sh.
func TestParallelShardedCacheResume(t *testing.T) {
	opt := Options{Seed: 1, Quick: true, Workers: 1}
	spec := closTestSpec()

	want := tableCSV(t, mustScenario(opt, spec))

	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const shards = 2
	statsCh := make(chan CacheStats, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opt
			o.Workers = runtime.GOMAXPROCS(0)
			_, stats, err := RunScenarioCached(o, spec, cache, Shard{Index: i, Count: shards})
			if err != nil {
				t.Errorf("shard %d: %v", i, err)
				return
			}
			statsCh <- stats
		}(i)
	}
	wg.Wait()
	close(statsCh)
	computed := 0
	for s := range statsCh {
		computed += s.Computed
		if s.Computed == 0 {
			t.Error("a shard computed no rows; the split is degenerate")
		}
	}
	if computed != 4 {
		t.Fatalf("shards computed %d rows in total, want 4", computed)
	}

	final, stats, err := RunScenarioCached(opt, spec, cache, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != stats.Rows {
		t.Fatalf("assembly stats = %s, want all hits", stats)
	}
	if got := tableCSV(t, final); got != want {
		t.Errorf("sharded assembly differs from unsharded run:\n%s\nvs\n%s", got, want)
	}
}

// TestScenarioCachedShardSkipsForeignRows: a single shard of N leaves the
// other shards' rows uncomputed and reports no table yet.
func TestScenarioCachedShardSkipsForeignRows(t *testing.T) {
	opt := Options{Seed: 1, Quick: true, Workers: 1}
	spec := closTestSpec()
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := RunScenarioCached(opt, spec, cache, Shard{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Error("incomplete sweep returned a table")
	}
	if stats.Computed != 2 || stats.Skipped != 2 {
		t.Fatalf("stats = %s, want 2 computed, 2 skipped", stats)
	}
}
