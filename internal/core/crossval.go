package core

import (
	"fmt"
	"time"

	"incastlab/internal/audit"
	"incastlab/internal/cc"
	"incastlab/internal/millisampler"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
	"incastlab/internal/trace"
	"incastlab/internal/workload"
)

func init() {
	register(80, Experiment{
		Name: "crossval", Kind: KindExtension, PaperRef: "Sections 3 & 4 (methodology cross-check)",
		Run: func(o Options) Result { return CrossValidation(o) },
	})
}

// CrossValidationResult ties the paper's two methodologies together: it
// runs the Section 4 packet-level simulator on a production-like burst
// cadence and feeds the receiver NIC's packets through the Section 3
// Millisampler pipeline. The measured bursts must recover the ground-truth
// workload (frequency, duration, incast degree) — evidence that the
// measurement tooling and the simulator agree with each other.
type CrossValidationResult struct {
	TableResult
	// Ground truth from the workload generator.
	TrueFlows         int
	TrueBurstsPerSec  float64
	TrueBurstDuration sim.Time

	// Trace is the Millisampler view of the simulated receiver.
	Trace *millisampler.Trace
	// Report is the burst analysis over that trace.
	Report *millisampler.Report
}

// CrossValidation runs a 150-flow, 2 ms incast repeating 50 times per
// second (squarely inside the paper's Figure 2 ranges) for one simulated
// second and measures it with Millisampler.
//
// Unlike the sweep experiments, this is a single engine run with nothing to
// fan out, so Options.Workers has no effect here; it parallelizes with the
// other experiments at the cmd/figures level instead.
func CrossValidation(opt Options) *CrossValidationResult {
	const (
		flows    = 150
		interval = 20 * sim.Millisecond
		duration = 2 * sim.Millisecond
	)
	bursts := 50
	if opt.Quick {
		bursts = 15
	}

	var wallStart time.Time
	if opt.Metrics != nil {
		wallStart = time.Now()
	}
	eng := sim.NewEngine()
	net := netsim.DefaultDumbbellConfig(flows)
	wl := workload.IncastConfig{
		Flows:          flows,
		BytesPerFlow:   workload.BytesPerFlowFor(net.HostLinkBps, duration, flows),
		Bursts:         bursts,
		Interval:       interval,
		JitterMax:      100 * sim.Microsecond,
		Seed:           opt.seed(),
		SenderConfig:   tcp.DefaultSenderConfig(),
		ReceiverConfig: tcp.DefaultReceiverConfig(),
	}
	in := workload.NewIncast(eng, net, wl,
		func(int) cc.Algorithm { return cc.NewDCTCP(cc.DefaultDCTCPConfig()) })

	// Millisampler's production deployment: 1 ms bins at the receiver NIC.
	windowMS := int(sim.Time(bursts) * interval / sim.Millisecond)
	rec := netsim.NewHostIngressRecorder(in.Network().Receiver, 0, sim.Millisecond, windowMS)

	var auditor *audit.Auditor
	if opt.Audit {
		auditor = audit.New(eng, audit.Config{RequireDrained: true})
		auditor.WatchDumbbell(in.Network())
		for _, s := range in.Senders() {
			auditor.WatchSender(s)
		}
		auditor.Start()
	}

	eng.RunUntil(sim.Time(bursts)*interval + 5*sim.Second)
	if !in.Done() {
		panic("core: cross-validation incast did not complete")
	}
	if auditor != nil {
		auditor.Finish()
		if err := auditor.Err(); err != nil {
			panic(fmt.Sprintf("core: cross-validation failed its invariant audit: %v", err))
		}
	}

	harvestIncastRun(opt.Metrics, "crossval", flows, eng, in, wallStart)

	tr, err := millisampler.FromIngressRecorder(rec, net.HostLinkBps)
	if err != nil {
		// The recorder above is constructed with sim.Millisecond, so this
		// is unreachable short of a programming error.
		panic(fmt.Sprintf("core: cross-validation recorder: %v", err))
	}
	r := &CrossValidationResult{
		TrueFlows:         flows,
		TrueBurstsPerSec:  float64(sim.Second) / float64(interval),
		TrueBurstDuration: duration,
		Trace:             tr,
		Report:            millisampler.Analyze([]*millisampler.Trace{tr}),
	}

	cmp := r.comparisonTable()
	ts := trace.NewTable("time_ms", "util", "flows", "ecn_util")
	capacity := float64(r.Trace.LineRateBps) / 8 * float64(r.Trace.IntervalNS) / 1e9
	for i, s := range r.Trace.Samples {
		ts.AddFloats(float64(i), s.Bytes/capacity, float64(s.Flows), s.ECNBytes/capacity)
	}
	r.TableResult = TableResult{
		ExpName: "crossval",
		Artifacts: []Artifact{
			{File: "crossval.csv", Table: cmp},
			{File: "crossval_trace.csv", Table: ts},
		},
		SummaryText: section("Cross-validation: Millisampler over the packet simulator") + cmp.Text() +
			"\nThe Section 3 measurement pipeline, run over Section 4's simulated packets,\nrecovers the configured workload.\n",
	}
	return r
}

func (r *CrossValidationResult) comparisonTable() *trace.Table {
	t := trace.NewTable("metric", "workload_truth", "millisampler_measured")
	rep := r.Report
	t.AddRow("bursts_per_second", trace.Float(r.TrueBurstsPerSec),
		trace.Float(rep.BurstsPerSecond.Quantile(0.5)))
	t.AddRow("burst_duration_ms", trace.Float(r.TrueBurstDuration.Milliseconds()),
		trace.Float(rep.DurationMS.Quantile(0.5)))
	t.AddRow("incast_degree", fmt.Sprint(r.TrueFlows), trace.Float(rep.Flows.Quantile(0.5)))
	t.AddRow("incast_fraction", "1", trace.Float(rep.IncastFraction()))
	return t
}
