package core

import (
	"fmt"
	"strconv"
	"time"

	"incastlab/internal/audit"
	"incastlab/internal/obs"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
	"incastlab/internal/workload"
)

// runClosIncastSim is the packet-level incast runner over a leaf/spine
// fabric: the same burst schedule and measurement harness as the dumbbell
// path, with the aggregator's leaf downlink as the bottleneck under study.
// cfg.fill() has already applied defaults.
func runClosIncastSim(cfg SimConfig) *SimResult {
	var wallStart time.Time
	if cfg.Metrics != nil {
		wallStart = time.Now()
	}
	reuse := cfg.Metrics == nil
	res0 := acquireSimResources(reuse)
	eng := res0.eng

	wrapNotificationAlg(&cfg)
	closCfg := *cfg.Clos
	wl := workload.ClosIncastConfig{
		Workers:        cfg.Flows,
		Placement:      cfg.Placement,
		Aggregators:    cfg.Aggregators,
		BytesPerFlow:   workload.BytesPerFlowFor(closCfg.HostLinkBps, cfg.BurstDuration, cfg.Flows),
		Bursts:         cfg.Bursts,
		Interval:       cfg.Interval,
		JitterMax:      cfg.JitterMax,
		Seed:           cfg.Seed,
		SenderConfig:   cfg.Sender,
		ReceiverConfig: cfg.Receiver,
		Admitter:       cfg.Admitter,
	}
	in := workload.NewClosIncastWithPool(eng, closCfg, wl, cfg.Alg, res0.pool)
	if cfg.EnableICTCP {
		ctrl := tcp.NewICTCP(eng, tcp.DefaultICTCPConfig(closCfg.HostLinkBps, closCfg.BaseRTT(true)))
		for _, r := range in.Receivers() {
			ctrl.Manage(r)
		}
	}
	if cfg.ExternalBufferBytes > 0 {
		shared := in.Network().Shared[0]
		if shared == nil {
			panic("core: ExternalBufferBytes requires a shared-buffer topology")
		}
		shared.SetExternalBytes(cfg.ExternalBufferBytes)
	}

	var auditor *audit.Auditor
	if cfg.Audit {
		auditor = audit.New(eng, audit.Config{RequireDrained: true})
		auditor.WatchClos(in.Network())
		for _, s := range in.Senders() {
			auditor.WatchSender(s)
		}
		auditor.Start()
	}

	res := &SimResult{
		Flows:         cfg.Flows,
		AlgName:       in.Senders()[0].Algorithm().Name(),
		Fidelity:      FidelityPacket,
		QueueCapacity: closCfg.QueueCapacityPackets,
		ECNThreshold:  closCfg.ECNThresholdPackets,
	}

	// The bottleneck under study is the aggregator's leaf downlink port.
	probe := newBurstProbe(&cfg, eng, in.Network().DownlinkQueue(0),
		in.AggregateSenderStats)
	probe.watchDetector(attachClosNotification(&cfg, in.Network()))

	if cfg.TrackInFlight {
		res.InFlight = workload.SampleInFlight(eng, in.Senders(),
			probe.lastBurstStart(), cfg.SampleInterval, probe.samplesPerBurst)
	}

	deadline := sim.Time(cfg.Bursts)*cfg.Interval + 10*sim.Second
	eng.RunUntil(deadline)
	if !in.Done() {
		panic(fmt.Sprintf("core: clos simulation with %d workers did not complete by %v",
			cfg.Flows, deadline))
	}
	if auditor != nil {
		auditor.Finish()
		if err := auditor.Err(); err != nil {
			panic(fmt.Sprintf("core: %d-worker clos simulation failed its invariant audit: %v",
				cfg.Flows, err))
		}
	}

	probe.finish(res, in.Bursts(), in.AggregateSenderStats())

	harvestClosIncastMetrics(&cfg, eng, in, wallStart)
	res.Events = eng.Executed()
	res.SimNow = eng.Now()
	releaseSimResources(res0, reuse)
	return res
}

// harvestClosIncastMetrics publishes a finished fabric run's telemetry:
// engine counters, the aggregator's bottleneck port, its leaf's spine
// uplinks (where ECMP collisions appear), pool, senders, and the BCT
// histogram — mirroring harvestIncastRun for the dumbbell.
func harvestClosIncastMetrics(cfg *SimConfig, eng *sim.Engine, in *workload.ClosIncast,
	wallStart time.Time) {
	reg := cfg.Metrics
	if reg == nil {
		return
	}
	experiment := cfg.Experiment
	if experiment == "" {
		experiment = "adhoc"
	}
	placement := in.Config().Placement
	if placement == "" {
		placement = workload.PlacementCrossRack
	}
	c := reg.Collector("experiment", experiment,
		"flows", strconv.Itoa(cfg.Flows), "placement", placement)
	defer c.Close()

	c.Counter("runs").Inc()
	harvestEngine(c, eng)

	net := in.Network()
	bottleneck := net.Downlink(0)
	harvestQueue(c, "bottleneck", bottleneck.Queue())
	active := sim.Time(in.Config().Bursts) * in.Config().Interval
	if now := eng.Now(); now < active {
		active = now
	}
	harvestLink(c, "bottleneck", bottleneck, active)
	// The fabric convergence points: each spine's downlink into the
	// aggregator's rack, where ECMP collisions appear as queueing.
	for s := 0; s < net.Config.Spines; s++ {
		down := net.SpineDownlink(s, 0)
		port := "spine-" + strconv.Itoa(s) + "-in"
		harvestQueue(c, port, down.Queue())
		harvestLink(c, port, down, active)
	}
	harvestPool(c, net.Pool)
	harvestSenders(c, in.Senders())
	harvestCohorts(c, 0, 0, 0)

	bct := c.Histogram("burst_bct_ms", bctBuckets)
	for _, b := range in.Bursts() {
		bct.Observe(b.BCT.Milliseconds())
	}

	if !wallStart.IsZero() {
		c.Gauge("wall_run_seconds", obs.MergeSum).Set(time.Since(wallStart).Seconds())
	}
}
