package core

import (
	"fmt"
	"strconv"
	"time"

	"incastlab/internal/cc"
	"incastlab/internal/flowsim"
	"incastlab/internal/netsim"
	"incastlab/internal/obs"
	"incastlab/internal/sim"
	"incastlab/internal/workload"
)

// The fidelity knob selects the simulation backend behind RunIncastSim:
// packet-level discrete events (internal/netsim, the default) or the
// flow-level fluid fast path (internal/flowsim). Both backends share
// SimConfig, SimResult, the obs metric schema, and the mode taxonomy, so
// everything above this layer — experiments, scenarios, CLIs — is
// backend-agnostic.
const (
	FidelityPacket = "packet"
	FidelityFlow   = "flow"
)

// KnownFidelity reports whether name selects a backend ("" means packet).
func KnownFidelity(name string) bool {
	return name == "" || name == FidelityPacket || name == FidelityFlow
}

// The aggregation knob selects how the flow-level backend represents the
// flow population: per-flow records, cohort-aggregated equivalence
// classes, or the automatic policy (cohorts from flowsim's threshold up).
// It only means something at FidelityFlow — the packet backend is
// per-packet by construction.
const (
	AggregationAuto    = flowsim.AggregationAuto
	AggregationCohort  = flowsim.AggregationCohort
	AggregationPerFlow = flowsim.AggregationPerFlow
)

// KnownAggregation reports whether name selects a flow-aggregation level
// ("" means auto).
func KnownAggregation(name string) bool { return flowsim.KnownAggregation(name) }

// FlowCompatible reports whether the configuration can run on the
// flow-level backend; the error names the first packet-level-only feature.
// The fluid engine models incast demand over a queue network — the
// dumbbell's single bottleneck or a Clos fabric's per-port queues, each
// with threshold marking and tail drops, reduced-form congestion laws, RTO
// stalls — but not receiver-side control, shared switch memory, ACK
// shaping, or per-packet traces.
func (c SimConfig) FlowCompatible() error {
	cfg := c
	cfg.fill()
	var feature string
	switch {
	case cfg.Notification != nil:
		// The notification path is literally packets: detector firings
		// keyed to per-packet queue dynamics and zero-payload control
		// packets racing the data they react to.
		feature = "switch-side incast notification"
	case cfg.Admitter != nil:
		feature = "wave/admission scheduling"
	case cfg.EnableICTCP:
		feature = "ICTCP receive-window control"
	case cfg.ExternalBufferBytes > 0:
		feature = "external shared-buffer contention"
	case cfg.TrackInFlight:
		feature = "per-flow in-flight tracking"
	case cfg.Clos != nil && cfg.Clos.SharedBufferBytes > 0:
		feature = "shared switch buffering"
	case cfg.Clos != nil && cfg.Clos.ECNAverageWeight > 0:
		feature = "EWMA-averaged ECN marking"
	case cfg.Clos == nil && cfg.Net.SharedBufferBytes > 0:
		feature = "shared switch buffering"
	case cfg.Clos == nil && cfg.Net.ECNAverageWeight > 0:
		feature = "EWMA-averaged ECN marking"
	case cfg.Receiver.DelayedAcks:
		feature = "delayed ACKs"
	case cfg.Sender.RestartAfterIdle:
		feature = "idle-restart window validation"
	}
	if feature != "" {
		return fmt.Errorf("core: %s is packet-level only and cannot run at fidelity %q; use fidelity %q",
			feature, FidelityFlow, FidelityPacket)
	}
	if _, err := flowCC(cfg.Alg(0), flowBaseRTT(&cfg)); err != nil {
		return err
	}
	if cfg.Clos != nil {
		if _, _, err := workload.ClosFlowEndpoints(*cfg.Clos, cfg.Flows, cfg.Aggregators, cfg.Placement); err != nil {
			return err
		}
	}
	return nil
}

// flowBaseRTT is the uncongested round-trip the reduced congestion laws
// are parameterized against: the fabric RTT for the configured placement
// on a Clos, the dumbbell's otherwise.
func flowBaseRTT(cfg *SimConfig) sim.Time {
	if cfg.Clos != nil {
		return cfg.Clos.BaseRTT(cfg.Placement != workload.PlacementSameRack)
	}
	return cfg.Net.BaseRTT()
}

// flowCC lowers a packet-level congestion-control instance into flowsim's
// reduced form, mirroring its parameters (windows converted from bytes to
// MSS packets).
func flowCC(alg cc.Algorithm, baseRTT sim.Time) (flowsim.CCConfig, error) {
	mss := float64(netsim.MSS)
	switch a := alg.(type) {
	case *cc.Guardrail:
		inner, err := flowCC(a.Inner(), baseRTT)
		if err != nil {
			return flowsim.CCConfig{}, err
		}
		if capBytes := a.Cap(); capBytes > 0 {
			inner.CapPkts = float64(capBytes) / mss
		}
		inner.Name = a.Name()
		return inner, nil
	case *cc.D2TCP:
		dc := a.Config()
		return flowsim.CCConfig{
			Kind:              flowsim.KindDCTCP,
			Name:              a.Name(),
			InitialWindowPkts: float64(dc.InitialWindow) / mss,
			G:                 dc.G,
			InitialAlpha:      dc.InitialAlpha,
			DeadlineFactor:    a.DeadlineFactor(),
		}, nil
	case *cc.DCTCP:
		dc := a.Config()
		return flowsim.CCConfig{
			Kind:              flowsim.KindDCTCP,
			Name:              a.Name(),
			InitialWindowPkts: float64(dc.InitialWindow) / mss,
			G:                 dc.G,
			InitialAlpha:      dc.InitialAlpha,
		}, nil
	case *cc.Swift:
		sc := a.Config()
		return flowsim.CCConfig{
			Kind:              flowsim.KindSwift,
			Name:              a.Name(),
			InitialWindowPkts: float64(sc.InitialWindow) / mss,
			TargetDelay:       sc.TargetDelay,
			AIPkts:            float64(sc.AI) / mss,
			Beta:              sc.Beta,
			MinWindowPkts:     sc.MinWindowBytes / mss,
		}, nil
	case *cc.Reno:
		return flowsim.CCConfig{
			Kind:              flowsim.KindReno,
			Name:              a.Name(),
			InitialWindowPkts: float64(a.Probe().CwndBytes) / mss,
		}, nil
	}
	return flowsim.CCConfig{}, fmt.Errorf("core: congestion control %q has no flow-level reduced form", alg.Name())
}

// runFlowIncastSim executes a filled SimConfig on the fluid backend and
// shapes the outcome into the shared SimResult. Incompatible configurations
// panic, like the packet path's own invalid-input handling; callers that
// want a soft answer check FlowCompatible first.
func runFlowIncastSim(cfg SimConfig) *SimResult {
	var wallStart time.Time
	if cfg.Metrics != nil {
		wallStart = time.Now()
	}
	if err := cfg.FlowCompatible(); err != nil {
		panic(err.Error())
	}
	ccCfg, err := flowCC(cfg.Alg(0), flowBaseRTT(&cfg))
	if err != nil {
		panic(err.Error())
	}
	var fres *flowsim.Result
	if cfg.Clos != nil {
		closCfg := *cfg.Clos
		srcs, dsts, err := workload.ClosFlowEndpoints(closCfg, cfg.Flows, cfg.Aggregators, cfg.Placement)
		if err != nil {
			panic(err.Error())
		}
		net, err := closCfg.FluidPaths(srcs, dsts)
		if err != nil {
			panic(err.Error())
		}
		fres, err = flowsim.RunNetwork(flowsim.NetworkConfig{
			Config: flowsim.Config{
				Flows: len(srcs),
				// Per-flow demand is sized against the per-aggregator degree,
				// exactly as the packet workload's BytesPerFlow.
				SegmentsPerFlow: workload.BytesPerFlowFor(closCfg.HostLinkBps, cfg.BurstDuration, cfg.Flows) / netsim.MSS,
				Bursts:          cfg.Bursts,
				Interval:        cfg.Interval,
				JitterMax:       cfg.JitterMax,
				Seed:            cfg.Seed,
				LineRateBps:     closCfg.HostLinkBps,
				CoreRateBps:     closCfg.SpineLinkBps,
				MinRTO:          cfg.Sender.MinRTO,
				MaxRTO:          cfg.Sender.MaxRTO,
				DupAckPackets:   float64(cfg.Sender.DupAckThreshold),
				CC:              ccCfg,
				SampleInterval:  cfg.SampleInterval,
				SampleWindow:    cfg.SampleWindow,
				Check:           cfg.Audit,
				Aggregation:     cfg.Aggregation,
			},
			Net: net,
		})
		if err != nil {
			panic(fmt.Sprintf("core: flow-level clos simulation with %d flows: %v", len(srcs), err))
		}
	} else {
		fres, err = flowsim.Run(flowsim.Config{
			Flows:                cfg.Flows,
			SegmentsPerFlow:      workload.BytesPerFlowFor(cfg.Net.HostLinkBps, cfg.BurstDuration, cfg.Flows) / netsim.MSS,
			Bursts:               cfg.Bursts,
			Interval:             cfg.Interval,
			JitterMax:            cfg.JitterMax,
			Seed:                 cfg.Seed,
			LineRateBps:          cfg.Net.HostLinkBps,
			CoreRateBps:          cfg.Net.CoreLinkBps,
			QueueCapacityPackets: cfg.Net.QueueCapacityPackets,
			ECNThresholdPackets:  cfg.Net.ECNThresholdPackets,
			BaseRTT:              cfg.Net.BaseRTT(),
			MinRTO:               cfg.Sender.MinRTO,
			MaxRTO:               cfg.Sender.MaxRTO,
			DupAckPackets:        float64(cfg.Sender.DupAckThreshold),
			CC:                   ccCfg,
			SampleInterval:       cfg.SampleInterval,
			SampleWindow:         cfg.SampleWindow,
			Check:                cfg.Audit,
			Aggregation:          cfg.Aggregation,
		})
		if err != nil {
			panic(fmt.Sprintf("core: flow-level simulation with %d flows: %v", cfg.Flows, err))
		}
	}

	res := &SimResult{
		Fidelity:          FidelityFlow,
		Flows:             cfg.Flows,
		AlgName:           fres.AlgName,
		AvgQueue:          fres.AvgQueue,
		MaxQueue:          fres.MaxQueue,
		FracBelowK:        fres.FracBelowK,
		SpikePackets:      fres.SpikePackets,
		MeanBCT:           fres.MeanBCT,
		MaxBCT:            fres.MaxBCT,
		Timeouts:          fres.Timeouts,
		FastRetransmits:   fres.FastRetransmits,
		RetransmitPackets: fres.RetransmitPackets,
		Drops:             fres.Drops,
		Marks:             fres.Marks,
		SentPackets:       fres.SentPackets,
		Events:            fres.Steps,
		SimNow:            fres.SimNow,
		QueueCapacity:     fres.QueueCapacity,
		ECNThreshold:      fres.ECNThreshold,
	}
	harvestFlowRun(&cfg, fres, wallStart)
	return res
}

// harvestFlowRun publishes a flow-level run's telemetry under the same
// metric schema as the packet harvest, so dashboards and snapshot tooling
// see one key set regardless of fidelity. Counters with no fluid
// counterpart — free-list, calendar-queue scheduler, packet pool, the
// uplink port — report explicit zeros rather than going absent.
func harvestFlowRun(cfg *SimConfig, r *flowsim.Result, wallStart time.Time) {
	reg := cfg.Metrics
	if reg == nil {
		return
	}
	experiment := cfg.Experiment
	if experiment == "" {
		experiment = "adhoc"
	}
	labels := []string{"experiment", experiment, "flows", strconv.Itoa(cfg.Flows)}
	if cfg.Clos != nil {
		// Mirror the packet-side fabric harvest's placement label so both
		// fidelities publish the same key set for Clos experiments.
		placement := cfg.Placement
		if placement == "" {
			placement = workload.PlacementCrossRack
		}
		labels = append(labels, "placement", placement)
	}
	c := reg.Collector(labels...)
	defer c.Close()

	c.Counter("runs").Inc()
	// One fluid step is the flow-level analogue of one executed event.
	c.Counter("sim_events_scheduled").Add(int64(r.Steps))
	c.Counter("sim_events_executed").Add(int64(r.Steps))
	c.Counter("sim_freelist_hits").Add(0)
	c.Counter("sim_freelist_misses").Add(0)
	c.Counter("sim_time_ns").Add(int64(r.SimNow))
	c.Counter("sim_sched_resizes").Add(0)
	c.Counter("sim_sched_overflow_migrations").Add(0)
	c.Counter("sim_sched_now_fastpath").Add(0)

	admitted := r.SentPackets - r.Drops
	if admitted < 0 {
		admitted = 0
	}
	c.Counter("net_queue_enqueued_packets", "port", "bottleneck").Add(admitted)
	c.Counter("net_queue_enqueued_bytes", "port", "bottleneck").Add(admitted * netsim.MTU)
	c.Counter("net_queue_dropped_packets", "port", "bottleneck").Add(r.Drops)
	c.Counter("net_queue_dropped_bytes", "port", "bottleneck").Add(r.Drops * netsim.MTU)
	c.Counter("net_queue_marked_packets", "port", "bottleneck").Add(r.Marks)
	c.Gauge("net_queue_peak_packets", obs.MergeMax, "port", "bottleneck").Set(r.MaxQueue)
	c.Gauge("net_queue_peak_bytes", obs.MergeMax, "port", "bottleneck").Set(r.MaxQueue * netsim.MTU)
	for _, m := range []string{"net_queue_enqueued_packets", "net_queue_enqueued_bytes",
		"net_queue_dropped_packets", "net_queue_dropped_bytes", "net_queue_marked_packets"} {
		c.Counter(m, "port", "uplink").Add(0)
	}
	c.Gauge("net_queue_peak_packets", obs.MergeMax, "port", "uplink").Set(0)
	c.Gauge("net_queue_peak_bytes", obs.MergeMax, "port", "uplink").Set(0)

	wire := int64(netsim.MTU + netsim.EthernetOverhead)
	c.Counter("net_link_tx_packets", "port", "bottleneck").Add(r.DeliveredPackets)
	c.Counter("net_link_tx_bytes", "port", "bottleneck").Add(r.DeliveredPackets * wire)
	active := sim.Time(cfg.Bursts) * cfg.Interval
	if r.SimNow < active {
		active = r.SimNow
	}
	hostBps := cfg.Net.HostLinkBps
	if cfg.Clos != nil {
		hostBps = cfg.Clos.HostLinkBps
	}
	if secs := active.Seconds(); secs > 0 && hostBps > 0 {
		util := float64(r.DeliveredPackets*wire) * 8 / (float64(hostBps) * secs)
		c.Gauge("net_link_utilization", obs.MergeMax, "port", "bottleneck").Set(util)
	}
	c.Counter("net_link_tx_packets", "port", "uplink").Add(0)
	c.Counter("net_link_tx_bytes", "port", "uplink").Add(0)
	c.Gauge("net_link_utilization", obs.MergeMax, "port", "uplink").Set(0)

	for _, m := range []string{"net_pool_gets", "net_pool_puts", "net_pool_hits", "net_pool_misses"} {
		c.Counter(m).Add(0)
	}
	c.Gauge("net_pool_outstanding_end", obs.MergeMax).Set(0)

	c.Counter("tcp_sent_packets").Add(r.SentPackets)
	c.Counter("tcp_sent_bytes").Add(r.SentPackets * netsim.MSS)
	c.Counter("tcp_retransmit_packets").Add(r.RetransmitPackets)
	c.Counter("tcp_fast_retransmits").Add(r.FastRetransmits)
	c.Counter("tcp_timeouts").Add(r.Timeouts)
	// The fluid model has no discrete ACKs; one delivered packet stands in
	// for one ACK, and the marked volume for ECE echoes.
	c.Counter("tcp_acks").Add(r.DeliveredPackets)
	c.Counter("tcp_ece_acks").Add(r.Marks)
	// The fluid backend has no per-packet control plane, so explicit
	// incast notification never runs there (scenario validation rejects
	// the combination); publish the zero so the key set stays dense.
	c.Counter("tcp_incast_notifies").Add(0)
	c.Counter("cc_cwnd_updates").Add(r.CwndUpdates)
	harvestCohorts(c, r.Cohorts, r.CohortSplits, r.PeakCohortWeight)

	cwnd := c.Histogram("cc_final_cwnd_bytes", cwndBuckets)
	for _, w := range r.FinalCwndPkts {
		cwnd.Observe(w * float64(netsim.MSS))
	}
	alpha := c.Histogram("cc_final_alpha", alphaBuckets)
	for _, a := range r.FinalAlphas {
		alpha.Observe(a)
	}
	bct := c.Histogram("burst_bct_ms", bctBuckets)
	for _, b := range r.BCTs {
		bct.Observe(b.Milliseconds())
	}

	if !wallStart.IsZero() {
		c.Gauge("wall_run_seconds", obs.MergeSum).Set(time.Since(wallStart).Seconds())
	}
}
