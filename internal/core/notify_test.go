package core

import (
	"runtime"
	"testing"

	"incastlab/internal/netsim"
	"incastlab/internal/scenario"
	"incastlab/internal/sim"
	"incastlab/internal/sweep"
	"incastlab/internal/workload"
)

// TestDumbbellDetectorFiresWithinOneRTT pins the mechanism's latency claim:
// the bottleneck-side detector sees the onset of the first burst no later
// than the start jitter (100 us) plus one base RTT, i.e. before a mark-echo
// round trip could have informed any sender.
func TestDumbbellDetectorFiresWithinOneRTT(t *testing.T) {
	res := RunIncastSim(SimConfig{
		Flows: 80, BurstDuration: sim.Millisecond, Bursts: 1,
		Interval: 5 * sim.Millisecond, Seed: 1,
		Notification: &NotificationConfig{},
	})
	if res.DetectorFirings == 0 || res.IncastNotifies == 0 {
		t.Fatalf("mechanism inert: firings=%d notifies=%d",
			res.DetectorFirings, res.IncastNotifies)
	}
	bound := 100*sim.Microsecond + netsim.DefaultDumbbellConfig(80).BaseRTT()
	if res.DetectorFirstFire == 0 || res.DetectorFirstFire > bound {
		t.Fatalf("first firing at %v, want within jitter + one RTT (%v)",
			res.DetectorFirstFire, bound)
	}
	if res.AlgName != "dctcp+pulser" {
		t.Fatalf("alg = %q, want the pulser wrap", res.AlgName)
	}
}

// TestAuditedNotificationMatchesUnaudited extends the checked-mode promise
// to notification runs: detector firings, notification packets, and the
// Pulser reaction all survive the invariant audit bit-identically. The
// audit itself also proves the zero-payload notification packets respect
// conservation and pool hygiene.
func TestAuditedNotificationMatchesUnaudited(t *testing.T) {
	run := func(audited bool) *SimResult {
		return RunIncastSim(SimConfig{
			Flows: 80, BurstDuration: sim.Millisecond, Bursts: 2,
			Interval: 5 * sim.Millisecond, Seed: 42, Audit: audited,
			Notification: &NotificationConfig{Backoff: 0.25},
		})
	}
	plain, audited := run(false), run(true)
	if plain.MeanBCT != audited.MeanBCT || plain.MaxBCT != audited.MaxBCT ||
		plain.Drops != audited.Drops || plain.Timeouts != audited.Timeouts ||
		plain.IncastNotifies != audited.IncastNotifies ||
		plain.DetectorFirings != audited.DetectorFirings ||
		plain.DetectorFirstFire != audited.DetectorFirstFire {
		t.Fatalf("audit changed a notification run:\nplain:   %+v\naudited: %+v", plain, audited)
	}
}

// TestAuditedClosDistributedDetection runs leaf-coordinated detection on a
// small fabric in checked mode: the cross-leaf notification path (leaf ->
// same-rack hosts) must leave every conservation and pool invariant intact,
// and the run must match its unaudited twin.
func TestAuditedClosDistributedDetection(t *testing.T) {
	run := func(audited bool) *SimResult {
		clos := netsim.DefaultClosConfig(3, 30)
		return RunIncastSim(SimConfig{
			Flows: 40, BurstDuration: sim.Millisecond, Bursts: 1,
			Interval: 5 * sim.Millisecond, Seed: 2, Audit: audited,
			Clos: &clos, Placement: workload.PlacementCrossRack,
			Notification: &NotificationConfig{
				MinPorts: 2, Window: 20 * sim.Microsecond, BurstArrivals: 10,
			},
		})
	}
	plain, audited := run(false), run(true)
	if plain.DetectorFirings == 0 || plain.IncastNotifies == 0 {
		t.Fatalf("leaf coordination inert: firings=%d notifies=%d",
			plain.DetectorFirings, plain.IncastNotifies)
	}
	if plain.MeanBCT != audited.MeanBCT || plain.Drops != audited.Drops ||
		plain.Timeouts != audited.Timeouts ||
		plain.IncastNotifies != audited.IncastNotifies ||
		plain.DetectorFirings != audited.DetectorFirings ||
		plain.DetectorFirstFire != audited.DetectorFirstFire {
		t.Fatalf("audit changed a Clos detection run:\nplain:   %+v\naudited: %+v", plain, audited)
	}
}

// notifyTestSpec sweeps the notification toggle at two incast degrees: the
// smallest scenario that exercises detector state, Pulser wrapping, and the
// "notification" axis through the declarative path.
func notifyTestSpec() scenario.Spec {
	return scenario.Spec{
		Name: "notify_cache_test",
		// A single burst, so the cold-start onset (the only one that trips
		// the detector at these degrees) falls inside the measured window.
		Workload:     scenario.Workload{BurstMS: 2, QuickBursts: 1},
		Notification: &scenario.Notification{Backoff: 0.5},
		Sweep: scenario.Sweep{
			Axis:   "notification",
			Values: scenario.Flags(false, true),
			Labels: []string{"off", "on"},
			Flows:  []int{20, 60},
		},
	}
}

// TestNotificationScenarioDeterministic: a notification sweep must be
// byte-identical between the serial and parallel runners, and a cache
// resume must reproduce the cold run exactly. Detector and Pulser state is
// per-run; nothing may leak through the pooled engines or the row cache.
func TestNotificationScenarioDeterministic(t *testing.T) {
	spec := notifyTestSpec()
	serial := tableCSV(t, mustScenario(Options{Seed: 1, Quick: true, Workers: 1}, spec))
	parallel := tableCSV(t, mustScenario(Options{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)}, spec))
	if serial != parallel {
		t.Error("notification sweep differs between serial and parallel runners")
	}

	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 1, Quick: true, Workers: 1}
	cold, stats, err := RunScenarioCached(opt, spec, cache, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Computed != stats.Rows {
		t.Fatalf("cold stats = %s, want all computed", stats)
	}
	if got := tableCSV(t, cold); got != serial {
		t.Error("cached cold run differs from RunScenario")
	}
	warm, stats, err := RunScenarioCached(opt, spec, cache, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != stats.Rows {
		t.Fatalf("warm stats = %s, want all hits", stats)
	}
	if got := tableCSV(t, warm); got != serial {
		t.Error("cache-resumed run differs from the cold run")
	}
}

// TestNotificationTogglesBehavior: the "notification" axis must actually
// change the simulation — the off row runs bare DCTCP (no firings, no
// notifies), the on row wraps the Pulser and reports detector activity.
func TestNotificationTogglesBehavior(t *testing.T) {
	opt := Options{Seed: 1, Quick: true}
	spec := notifyTestSpec()
	_, labels, cfgs, err := CompileScenario(opt, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("compiled %d rows, want 4", len(cfgs))
	}
	for i, cfg := range cfgs {
		on := labels[i][1] == "on"
		if (cfg.Notification != nil) != on {
			t.Errorf("row %v: Notification=%v, want armed=%v", labels[i], cfg.Notification, on)
		}
	}
	res := RunIncastSim(cfgs[3]) // 60 flows, notification on
	if res.DetectorFirings == 0 || res.IncastNotifies == 0 {
		t.Errorf("on row shows no mechanism activity: %+v", res)
	}
	off := RunIncastSim(cfgs[2]) // 60 flows, notification off
	if off.DetectorFirings != 0 || off.IncastNotifies != 0 || off.DetectorFirstFire != 0 {
		t.Errorf("off row leaked detector state: %+v", off)
	}
}
