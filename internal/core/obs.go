package core

import (
	"strconv"
	"time"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/obs"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
	"incastlab/internal/workload"
)

// Bucket layouts for the run-level histograms, fixed at package level so
// every run of every experiment shares one layout per metric name
// (mismatched bounds on one metric identity panic at merge time).
var (
	// cwndBuckets covers final congestion windows from one MSS (the
	// degenerate point) up through multi-megabyte windows.
	cwndBuckets = obs.ExpBuckets(float64(netsim.MSS), 2, 12)
	// alphaBuckets covers DCTCP's congestion estimate in [0, 1].
	alphaBuckets = obs.LinearBuckets(0.05, 0.05, 20)
	// bctBuckets covers burst completion times from 1 ms to ~8 s.
	bctBuckets = obs.ExpBuckets(1, 2, 14)
)

// instrument stamps the options' metrics registry, the experiment name,
// and (best-effort) the requested fidelity into a simulation config, so
// runners can thread observability through with one call.
func (o Options) instrument(experiment string, cfg SimConfig) SimConfig {
	cfg.Metrics = o.Metrics
	cfg.Experiment = experiment
	o.applyFidelity(&cfg)
	return cfg
}

// applyFidelity lowers a run to the flow-level backend when the options ask
// for it and the configuration supports it. Options.Fidelity is
// best-effort — experiments mix runs that the fluid model covers with runs
// that need packet-level machinery (ICTCP, shared buffers, waves), so
// incompatible configs silently keep the packet backend. Explicit per-run
// requests (cfg.Fidelity already set) are never overridden; those fail
// loudly inside RunIncastSim if unsupported.
func (o Options) applyFidelity(cfg *SimConfig) {
	if cfg.Fidelity == FidelityFlow {
		// Explicit flow-level run (spec- or caller-chosen): the options'
		// aggregation level still applies unless the config picked its own.
		if cfg.Aggregation == "" {
			cfg.Aggregation = o.Aggregation
		}
		return
	}
	if o.Fidelity != FidelityFlow || cfg.Fidelity != "" {
		return
	}
	if cfg.FlowCompatible() == nil {
		cfg.Fidelity = FidelityFlow
		if cfg.Aggregation == "" {
			cfg.Aggregation = o.Aggregation
		}
	}
}

// runSims stamps the options' observability into every config and fans the
// runs out. Experiment runners use it so each experiment's metrics carry
// its name without per-site boilerplate.
func (o Options) runSims(experiment string, cfgs []SimConfig) []*SimResult {
	for i := range cfgs {
		cfgs[i].Metrics = o.Metrics
		cfgs[i].Experiment = experiment
		o.applyFidelity(&cfgs[i])
	}
	return RunIncastSims(o.Workers, cfgs)
}

// harvestIncastMetrics publishes one finished simulation's telemetry into
// cfg.Metrics. Everything is read after the run from counters the
// simulation maintains anyway, so instrumented runs are bit-identical to
// uninstrumented ones; the collector merge is commutative, so snapshots
// are identical across serial and parallel schedules too.
func harvestIncastMetrics(cfg *SimConfig, eng *sim.Engine, in *workload.Incast, wallStart time.Time) {
	harvestIncastRun(cfg.Metrics, cfg.Experiment, cfg.Flows, eng, in, wallStart)
}

// harvestIncastRun is the shared harvest for any incast-over-dumbbell run,
// including experiments (cross-validation) that drive their own engine
// rather than going through RunIncastSim.
func harvestIncastRun(reg *obs.Registry, experiment string, flows int,
	eng *sim.Engine, in *workload.Incast, wallStart time.Time) {
	if reg == nil {
		return
	}
	if experiment == "" {
		experiment = "adhoc"
	}
	c := reg.Collector("experiment", experiment, "flows", strconv.Itoa(flows))
	defer c.Close()

	c.Counter("runs").Inc()
	harvestEngine(c, eng)

	net := in.Network()
	harvestQueue(c, "bottleneck", net.BottleneckQueue())
	harvestQueue(c, "uplink", net.Uplink.Queue())
	// Utilization is taken over the workload's nominal active window
	// (bursts x interval), not eng.Now(): the run deadline includes many
	// idle seconds of timeout-recovery headroom that would dilute it.
	active := sim.Time(in.Config().Bursts) * in.Config().Interval
	if now := eng.Now(); now < active {
		active = now
	}
	harvestLink(c, "bottleneck", net.Bottleneck, active)
	harvestLink(c, "uplink", net.Uplink, active)
	harvestPool(c, net.Pool)
	harvestSenders(c, in.Senders())
	harvestCohorts(c, 0, 0, 0)

	bct := c.Histogram("burst_bct_ms", bctBuckets)
	for _, b := range in.Bursts() {
		bct.Observe(b.BCT.Milliseconds())
	}

	// Wall-clock duration lives in the wall_ domain: excluded from the
	// deterministic snapshot subset, summed across runs.
	if !wallStart.IsZero() {
		c.Gauge("wall_run_seconds", obs.MergeSum).Set(time.Since(wallStart).Seconds())
	}
}

// harvestEngineRun records just the engine counters and wall time, for
// experiments whose topology is not the standard incast dumbbell (rack
// contention, partition/aggregate). labels are extra base-label pairs.
func harvestEngineRun(reg *obs.Registry, experiment string, eng *sim.Engine,
	wallStart time.Time, labels ...string) {
	if reg == nil {
		return
	}
	c := reg.Collector(append([]string{"experiment", experiment}, labels...)...)
	defer c.Close()
	c.Counter("runs").Inc()
	harvestEngine(c, eng)
	if !wallStart.IsZero() {
		c.Gauge("wall_run_seconds", obs.MergeSum).Set(time.Since(wallStart).Seconds())
	}
}

// harvestEngine records the event-loop counters: totals, free-list hit
// rate, and how far virtual time advanced.
func harvestEngine(c *obs.Collector, eng *sim.Engine) {
	c.Counter("sim_events_scheduled").Add(int64(eng.Scheduled()))
	c.Counter("sim_events_executed").Add(int64(eng.Executed()))
	hits, misses := eng.FreeListStats()
	c.Counter("sim_freelist_hits").Add(int64(hits))
	c.Counter("sim_freelist_misses").Add(int64(misses))
	c.Counter("sim_time_ns").Add(int64(eng.Now()))
	// Calendar-queue internals. These counters are functions of the virtual
	// schedule alone (bucket loads and walk lengths), so they are as
	// deterministic as the event order itself. Instrumented runs always use
	// fresh engines (see simpool.go), so no state leaks in from pooling.
	st := eng.SchedulerStats()
	c.Counter("sim_sched_resizes").Add(int64(st.Resizes))
	c.Counter("sim_sched_overflow_migrations").Add(int64(st.OverflowMigrations))
	c.Counter("sim_sched_now_fastpath").Add(int64(st.NowFastPath))
}

// harvestQueue records one port's lifetime queue statistics.
func harvestQueue(c *obs.Collector, port string, q *netsim.Queue) {
	st := q.Stats()
	c.Counter("net_queue_enqueued_packets", "port", port).Add(st.EnqueuedPackets)
	c.Counter("net_queue_enqueued_bytes", "port", port).Add(st.EnqueuedBytes)
	c.Counter("net_queue_dropped_packets", "port", port).Add(st.DroppedPackets)
	c.Counter("net_queue_dropped_bytes", "port", port).Add(st.DroppedBytes)
	c.Counter("net_queue_marked_packets", "port", port).Add(st.MarkedPackets)
	c.Gauge("net_queue_peak_packets", obs.MergeMax, "port", port).Set(float64(st.PeakPackets))
	c.Gauge("net_queue_peak_bytes", obs.MergeMax, "port", port).Set(float64(st.PeakBytes))
}

// harvestLink records a link's transmit totals and its achieved
// utilization (wire bits sent over line rate x the active virtual-time
// window — a sim-time quantity, hence deterministic).
func harvestLink(c *obs.Collector, port string, l *netsim.Link, active sim.Time) {
	c.Counter("net_link_tx_packets", "port", port).Add(l.TxPackets())
	c.Counter("net_link_tx_bytes", "port", port).Add(l.TxBytes())
	if secs := active.Seconds(); secs > 0 {
		util := float64(l.TxBytes()) * 8 / (float64(l.BandwidthBps()) * secs)
		c.Gauge("net_link_utilization", obs.MergeMax, "port", port).Set(util)
	}
}

// harvestPool records the packet pool's recycling counters. Outstanding
// should be zero after a drained run; exporting it as a max-gauge makes a
// leak visible across a whole sweep.
func harvestPool(c *obs.Collector, pp *netsim.PacketPool) {
	ps := pp.Stats()
	c.Counter("net_pool_gets").Add(ps.Gets)
	c.Counter("net_pool_puts").Add(ps.Puts)
	c.Counter("net_pool_hits").Add(ps.Hits)
	c.Counter("net_pool_misses").Add(ps.Misses)
	c.Gauge("net_pool_outstanding_end", obs.MergeMax).Set(float64(pp.Outstanding()))
}

// harvestSenders records transport aggregates and the congestion-control
// end state: total window updates plus final-cwnd and final-alpha
// distributions over the flows.
func harvestSenders(c *obs.Collector, senders []*tcp.Sender) {
	var agg tcp.SenderStats
	var updates int64
	cwnd := c.Histogram("cc_final_cwnd_bytes", cwndBuckets)
	alpha := c.Histogram("cc_final_alpha", alphaBuckets)
	for _, s := range senders {
		st := s.Stats()
		agg.SentPackets += st.SentPackets
		agg.SentBytes += st.SentBytes
		agg.RetransmitPackets += st.RetransmitPackets
		agg.FastRetransmits += st.FastRetransmits
		agg.Timeouts += st.Timeouts
		agg.Acks += st.Acks
		agg.ECEAcks += st.ECEAcks
		agg.IncastNotifies += st.IncastNotifies

		alg := s.Algorithm()
		if uc, ok := alg.(cc.UpdateCounter); ok {
			updates += uc.CwndUpdates()
		}
		if insp, ok := alg.(cc.Inspectable); ok {
			p := insp.Probe()
			cwnd.Observe(float64(p.CwndBytes))
			if p.HasAlpha {
				alpha.Observe(p.Alpha)
			}
		}
	}
	c.Counter("tcp_sent_packets").Add(agg.SentPackets)
	c.Counter("tcp_sent_bytes").Add(agg.SentBytes)
	c.Counter("tcp_retransmit_packets").Add(agg.RetransmitPackets)
	c.Counter("tcp_fast_retransmits").Add(agg.FastRetransmits)
	c.Counter("tcp_timeouts").Add(agg.Timeouts)
	c.Counter("tcp_acks").Add(agg.Acks)
	c.Counter("tcp_ece_acks").Add(agg.ECEAcks)
	c.Counter("tcp_incast_notifies").Add(agg.IncastNotifies)
	c.Counter("cc_cwnd_updates").Add(updates)
}

// harvestCohorts records the flow-level backend's aggregation telemetry:
// how many cohort records the solver integrated, how many lazy exact
// splits divergence forced, and the heaviest single record. Packet-level
// harvests publish explicit zeros (the packet backend is per-packet by
// construction), keeping the key set dense across fidelities.
func harvestCohorts(c *obs.Collector, cohorts int, splits int64, peakWeight float64) {
	c.Gauge("flowsim_cohorts", obs.MergeSum).Set(float64(cohorts))
	c.Counter("flowsim_cohort_splits").Add(splits)
	c.Gauge("flowsim_cohort_peak_weight", obs.MergeMax).Set(peakWeight)
}
