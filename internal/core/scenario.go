package core

import (
	"fmt"
	"strconv"
	"strings"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/predict"
	"incastlab/internal/scenario"
	"incastlab/internal/schedule"
	"incastlab/internal/sim"
	"incastlab/internal/trace"
)

// This file lowers declarative scenario.Specs into packet-level SimConfigs
// and runs them through the shared sweep loop. The ten built-in ablations
// are specs compiled here (see ablations.go), and `incastsim -scenario`
// feeds user-written spec files through the same path, so a scenario
// behaves identically whether it ships with the repo or arrives as JSON.

// CompileScenario lowers a spec into one SimConfig per sweep row, plus the
// axis columns that label each row: header holds the axis column names and
// labels[i] the row's values for them. The spec is validated first, so a
// spec that passes scenario.Validate always compiles.
func CompileScenario(opt Options, spec scenario.Spec) (header []string, labels [][]string, cfgs []SimConfig, err error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, nil, err
	}

	column := spec.Sweep.Column
	if column == "" {
		column = spec.Sweep.Axis
	}

	switch {
	case spec.Sweep.Axis == "flows":
		header = []string{column}
		for i, v := range spec.Sweep.Values {
			f, _ := v.Number()
			cfgs = append(cfgs, compileRow(opt, spec, int(f), v))
			labels = append(labels, []string{axisLabel(spec.Sweep, i, v)})
		}
	case len(spec.Sweep.Flows) > 0:
		// Crossed sweep: incast degrees outermost, axis values inner.
		header = []string{"flows", column}
		for _, n := range spec.Sweep.Flows {
			for i, v := range spec.Sweep.Values {
				cfgs = append(cfgs, compileRow(opt, spec, n, v))
				labels = append(labels, []string{strconv.Itoa(n), axisLabel(spec.Sweep, i, v)})
			}
		}
	default:
		header = []string{column}
		for i, v := range spec.Sweep.Values {
			cfgs = append(cfgs, compileRow(opt, spec, spec.Workload.Flows, v))
			labels = append(labels, []string{axisLabel(spec.Sweep, i, v)})
		}
	}

	// An explicit flow-level request must hold for every compiled row —
	// fail at compile time with the offending row named, not mid-sweep.
	if spec.Fidelity == FidelityFlow {
		for i, cfg := range cfgs {
			if err := cfg.FlowCompatible(); err != nil {
				return nil, nil, nil, fmt.Errorf("scenario %q row %d (%s): %w",
					spec.Name, i, strings.Join(labels[i], "/"), err)
			}
		}
	}
	return header, labels, cfgs, nil
}

// axisLabel renders a sweep value for its table column.
func axisLabel(sw scenario.Sweep, i int, v scenario.Value) string {
	if len(sw.Labels) > 0 {
		return sw.Labels[i]
	}
	if f, ok := v.Number(); ok {
		return trace.Float(f)
	}
	return v.String()
}

// compileRow builds the SimConfig for one sweep row: workload and
// transport bases first, then the topology (gated for the shared-buffer
// axis), then the swept value on top.
func compileRow(opt Options, spec scenario.Spec, n int, v scenario.Value) SimConfig {
	cfg := SimConfig{
		Flows:         n,
		BurstDuration: msTime(spec.Workload.BurstMS, 15),
		Bursts:        scenarioBursts(opt, spec.Workload),
		Seed:          opt.seed(),
		Audit:         opt.Audit,
		Fidelity:      spec.Fidelity,
		Aggregation:   spec.Aggregation,
	}
	if spec.Workload.IntervalMS > 0 {
		cfg.Interval = msTime(spec.Workload.IntervalMS, 0)
	}
	if spec.Workload.JitterUS > 0 {
		cfg.JitterMax = sim.Time(spec.Workload.JitterUS * float64(sim.Microsecond))
	}
	if tr := spec.Transport; tr != nil {
		if tr.MinRTOMS > 0 {
			cfg.Sender.MinRTO = msTime(tr.MinRTOMS, 0)
		}
		if tr.DelayedAcks {
			cfg.Receiver.DelayedAcks = true
			cfg.Receiver.AckEvery = ackEvery(tr.AckEvery)
		}
		if tr.IdleRestart {
			cfg.Sender.RestartAfterIdle = true
		}
		if tr.ICTCP {
			cfg.EnableICTCP = true
		}
	}

	// The shared-buffer axis toggles the topology's pooled memory per row;
	// every other axis sees the full topology on every row.
	shared := true
	if spec.Sweep.Axis == "shared_buffer" {
		shared, _ = v.Bool()
	}
	if net, overridden := scenarioNet(n, spec.Topology, shared); overridden {
		cfg.Net = net
		if shared && spec.Topology.ContendBytes > 0 {
			cfg.ExternalBufferBytes = spec.Topology.ContendBytes
		}
	}

	cfg.Alg = scenarioAlg(spec.CC, n, spec.Topology)

	switch spec.Sweep.Axis {
	case "flows", "shared_buffer":
		// Fully handled above.
	case "g":
		g, _ := v.Number()
		cfg.Alg = func(int) cc.Algorithm {
			c := cc.DefaultDCTCPConfig()
			c.G = g
			return cc.NewDCTCP(c)
		}
	case "ecn_threshold_pkts":
		k, _ := v.Number()
		net, _ := scenarioNet(n, spec.Topology, true)
		net.ECNThresholdPackets = int(k)
		cfg.Net = net
	case "min_rto_ms":
		ms, _ := v.Number()
		cfg.Sender.MinRTO = msTime(ms, 0)
	case "marking_ewma":
		w, _ := v.Number()
		net, _ := scenarioNet(n, spec.Topology, true)
		net.ECNAverageWeight = w
		cfg.Net = net
	case "delayed_acks":
		if on, _ := v.Bool(); on {
			cfg.Receiver.DelayedAcks = true
			ae := 0
			if spec.Transport != nil {
				ae = spec.Transport.AckEvery
			}
			cfg.Receiver.AckEvery = ackEvery(ae)
		}
	case "idle_restart":
		if on, _ := v.Bool(); on {
			cfg.Sender.RestartAfterIdle = true
		}
	case "ictcp":
		on, _ := v.Bool()
		cfg.EnableICTCP = on
	case "cc":
		name, _ := v.Str()
		cfg.Alg = ccByName(name, spec.CC, n, spec.Topology)
	case "scheme":
		name, _ := v.Str()
		switch {
		case name == "dctcp+guardrail":
			cfg.Alg = guardrailAlg(opt, n, spec.Topology)
		case scenario.WaveSize(name) > 0:
			cfg.Admitter = schedule.NewWave(scenario.WaveSize(name))
		}
	case "placement":
		name, _ := v.Str()
		cfg.Placement = name
	case "aggregators":
		a, _ := v.Number()
		cfg.Aggregators = int(a)
	case "notification":
		// Handled below with the spec's notification block.
	}

	// The notification block arms the mechanism; the "notification" axis
	// toggles it per row (other axes see it on every row).
	if spec.Notification != nil {
		on := true
		if spec.Sweep.Axis == "notification" {
			on, _ = v.Bool()
		}
		if on {
			cfg.Notification = scenarioNotification(spec.Notification)
		}
	}

	// A clos block lifts the row onto the fabric. This happens after the
	// axis switch so per-row dumbbell mutations (ECN threshold, EWMA
	// weight, shared-buffer toggles) carry over into the fabric's ports.
	if spec.Topology != nil && spec.Topology.Clos != nil {
		scenarioClos(opt, spec, n, v, &cfg)
	}
	return cfg
}

// scenarioClos converts a row's compiled dumbbell parameters plus the
// spec's clos block into a fabric config on cfg. The dumbbell fields act
// as the "per-port" source of truth — host rate, queue bounds, marking,
// per-leaf shared buffer — and the clos block supplies the fabric shape.
func scenarioClos(opt Options, spec scenario.Spec, n int, v scenario.Value, cfg *SimConfig) {
	cb := spec.Topology.Clos
	net := cfg.Net
	if net.Senders == 0 {
		// No axis or override touched the dumbbell; materialize the row's
		// effective parameters (shared-buffer gating included).
		shared := true
		if spec.Sweep.Axis == "shared_buffer" {
			shared, _ = v.Bool()
		}
		net, _ = scenarioNet(n, spec.Topology, shared)
	}

	cc := netsim.DefaultClosConfig(cb.Racks, cb.HostsPerRack)
	cc.HostLinkBps = net.HostLinkBps
	cc.QueueCapacityPackets = net.QueueCapacityPackets
	cc.QueueCapacityBytes = net.QueueCapacityBytes
	cc.ECNThresholdPackets = net.ECNThresholdPackets
	cc.ECNAverageWeight = net.ECNAverageWeight
	cc.SharedBufferBytes = net.SharedBufferBytes
	cc.SharedBufferAlpha = net.SharedBufferAlpha
	if cb.Spines > 0 {
		cc.Spines = cb.Spines
	}
	switch {
	case cb.SpineLinkGbps > 0:
		cc.SpineLinkBps = int64(cb.SpineLinkGbps * float64(netsim.Gbps))
	case cb.Oversubscription > 0:
		// offered / (spines * uplink) = F  =>  uplink = offered / (spines*F).
		offered := float64(cb.HostsPerRack) * float64(cc.HostLinkBps)
		cc.SpineLinkBps = int64(offered/(float64(cc.Spines)*cb.Oversubscription) + 0.5)
	}
	cc.ECMPSeed = cb.ECMPSeed
	if cc.ECMPSeed == 0 {
		// Tie ECMP placement to the run seed, so -seed reshuffles paths the
		// way a production fabric rehash would.
		cc.ECMPSeed = opt.seed()
	}

	cfg.Clos = &cc
	if cfg.Placement == "" {
		cfg.Placement = cb.Placement
	}
	if cfg.Aggregators == 0 {
		cfg.Aggregators = cb.Aggregators
	}
}

// scenarioNotification lowers a spec's notification block; zero fields stay
// zero here and pick up their defaults inside netsim/cc.
func scenarioNotification(n *scenario.Notification) *NotificationConfig {
	return &NotificationConfig{
		Window:        usTime(n.WindowUS),
		SlopePackets:  n.SlopePackets,
		BurstArrivals: n.BurstArrivals,
		Cooldown:      usTime(n.CooldownUS),
		Backoff:       n.Backoff,
		HoldAcks:      n.HoldAcks,
		MinPorts:      n.MinPorts,
		CoordWindow:   usTime(n.CoordWindowUS),
		FlowHorizon:   usTime(n.FlowHorizonUS),
	}
}

// usTime converts fractional microseconds to simulation time (0 stays 0).
func usTime(us float64) sim.Time {
	return sim.Time(us * float64(sim.Microsecond))
}

// scenarioNet builds a row's dumbbell: the paper defaults for n senders
// with the spec's overrides applied. shared gates the pooled-buffer fields
// so the "shared_buffer" axis can toggle them per row. overridden reports
// whether any override landed — when false the caller leaves SimConfig.Net
// as its zero value, exactly like a hand-written config with no topology.
func scenarioNet(n int, topo *scenario.Topology, shared bool) (net netsim.DumbbellConfig, overridden bool) {
	net = netsim.DefaultDumbbellConfig(n)
	if topo == nil {
		return net, false
	}
	if topo.HostLinkGbps > 0 {
		net.HostLinkBps = int64(topo.HostLinkGbps * float64(netsim.Gbps))
		overridden = true
	}
	if topo.CoreLinkGbps > 0 {
		net.CoreLinkBps = int64(topo.CoreLinkGbps * float64(netsim.Gbps))
		overridden = true
	}
	if topo.QueuePackets > 0 {
		net.QueueCapacityPackets = topo.QueuePackets
		net.QueueCapacityBytes = topo.QueuePackets * netsim.MTU
		overridden = true
	}
	if topo.ECNThresholdPackets > 0 {
		net.ECNThresholdPackets = topo.ECNThresholdPackets
		overridden = true
	}
	if shared && topo.SharedBufferBytes > 0 {
		net.SharedBufferBytes = topo.SharedBufferBytes
		net.SharedBufferAlpha = topo.SharedBufferAlpha
		if net.SharedBufferAlpha == 0 {
			net.SharedBufferAlpha = 1
		}
		overridden = true
	}
	return net, overridden
}

// scenarioAlg builds the spec's base congestion-control factory; nil means
// the engine default (DCTCP with the paper's parameters).
func scenarioAlg(c *scenario.CC, n int, topo *scenario.Topology) func(int) cc.Algorithm {
	if c == nil {
		return nil
	}
	name := c.Algorithm
	if name == "" {
		name = "dctcp"
	}
	return ccByName(name, c, n, topo)
}

// ccByName maps a scenario CC name to an algorithm factory. nil (for plain
// DCTCP with no overrides) defers to the engine default, matching a
// hand-written SimConfig that leaves Alg unset.
func ccByName(name string, c *scenario.CC, n int, topo *scenario.Topology) func(int) cc.Algorithm {
	var g float64
	var iw int
	if c != nil {
		g = c.G
		iw = c.InitialWindowPkts
	}
	switch name {
	case "dctcp":
		if g == 0 {
			return nil
		}
		return func(int) cc.Algorithm {
			dc := cc.DefaultDCTCPConfig()
			dc.G = g
			return cc.NewDCTCP(dc)
		}
	case "reno":
		if iw == 0 {
			iw = 10
		}
		window := iw * netsim.MSS
		return func(int) cc.Algorithm { return cc.NewReno(window) }
	case "d2tcp":
		return func(int) cc.Algorithm { return cc.NewD2TCP(cc.DefaultD2TCPConfig()) }
	case "d2tcp-tight":
		return func(int) cc.Algorithm {
			dcfg := cc.DefaultD2TCPConfig()
			dcfg.D = 2
			return cc.NewD2TCP(dcfg)
		}
	case "swift":
		net, _ := scenarioNet(n, topo, true)
		rtt := net.BaseRTT()
		return func(int) cc.Algorithm { return cc.NewSwift(cc.DefaultSwiftConfig(rtt)) }
	}
	// Unreachable after Validate; fail loudly rather than silently fall
	// back to the default algorithm.
	panic(fmt.Sprintf("core: unknown congestion-control name %q", name))
}

// guardrailAlg builds the Section 5.1 predicted-degree clamp for an incast
// of n flows. The predictor learns the service's incast degree from
// observed bursts (Section 3.3 stability makes this meaningful); here it
// observes the true degree with sampling noise. The predictor's RNG draws
// happen at compile time, before the fan-out, so the degree each row sees
// does not depend on worker interleaving.
func guardrailAlg(opt Options, n int, topo *scenario.Topology) func(int) cc.Algorithm {
	net, _ := scenarioNet(n, topo, true)
	bdp := net.BDPBytes()
	kBytes := net.ECNThresholdPackets * netsim.MTU
	pr := predict.New(predict.DefaultConfig())
	rng := sim.NewRand(opt.seed())
	for i := 0; i < 64; i++ {
		pr.Observe(n - 3 + rng.IntN(7))
	}
	degree := pr.PredictedDegree()
	return func(int) cc.Algorithm {
		g := cc.NewGuardrail(cc.NewDCTCP(cc.DefaultDCTCPConfig()), bdp, kBytes)
		g.Predict(degree)
		return g
	}
}

// msTime converts fractional milliseconds to simulation time, falling back
// to def when the spec omits the field.
func msTime(ms, def float64) sim.Time {
	if ms <= 0 {
		ms = def
	}
	return sim.Time(ms * float64(sim.Millisecond))
}

// ackEvery applies the delayed-ACK coalescing default.
func ackEvery(n int) int {
	if n <= 0 {
		return 2
	}
	return n
}

// scenarioBursts picks the burst count by Quick mode, honoring the spec's
// overrides.
func scenarioBursts(opt Options, w scenario.Workload) int {
	if opt.Quick {
		if w.QuickBursts > 0 {
			return w.QuickBursts
		}
		return 4
	}
	if w.Bursts > 0 {
		return w.Bursts
	}
	return 11
}

// RunScenario compiles and runs a declarative scenario: one packet-level
// simulation per sweep row, rendered into the shared metric table (queue
// occupancy, spike, burst completion time, timeouts, drops, mark rate).
func RunScenario(opt Options, spec scenario.Spec) (*TableResult, error) {
	header, labels, cfgs, err := CompileScenario(opt, spec)
	if err != nil {
		return nil, err
	}
	t := &trace.Table{Header: append(append([]string{}, header...), ablationHeader...)}
	for i, m := range opt.runSims(spec.Name, cfgs) {
		t.AddRow(append(append([]string{}, labels[i]...), ablationRow(m)...)...)
	}
	title := spec.Title
	if title == "" {
		title = "Scenario: " + spec.Name
	}
	var b strings.Builder
	b.WriteString(section(title))
	b.WriteString(t.Text())
	if spec.Notes != "" {
		b.WriteString(spec.Notes)
		b.WriteString("\n")
	}
	return &TableResult{
		ExpName:     spec.Name,
		Artifacts:   []Artifact{{File: spec.Name + ".csv", Table: t}},
		SummaryText: b.String(),
	}, nil
}

// mustScenario runs a built-in spec. The built-ins are covered by the
// registry contract tests, so a compile failure here is a programming
// error, not an input error.
func mustScenario(opt Options, spec scenario.Spec) *TableResult {
	r, err := RunScenario(opt, spec)
	if err != nil {
		panic(fmt.Sprintf("core: built-in scenario %q: %v", spec.Name, err))
	}
	return r
}
