// Package core is incastlab's experiment engine: it regenerates every table
// and figure of "Understanding Incast Bursts in Modern Datacenters"
// (IMC 2024) from the library's substrates, plus the ablations DESIGN.md
// calls out. Each experiment returns a structured result that can render
// itself as CSV files (for plotting) and as human-readable text.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Table1           – the five services
//	Fig1ExampleTrace – 2 s example trace of one aggregator host
//	Fig2And4         – burst frequency/duration/flows + queue/ECN/retx CDFs
//	Fig3Stability    – flow-count stability over hours and across hosts
//	Fig5Modes        – DCTCP operating modes (queue vs time)
//	Fig6ShortBursts  – 2 ms bursts at several incast degrees
//	Fig7InFlight     – per-flow in-flight skew and straggler ramp-up
//	Ablation*        – parameter and design-choice studies
package core

import (
	"fmt"
	"strings"

	"incastlab/internal/obs"
)

// Options configures every experiment runner.
type Options struct {
	// Seed drives all randomness; 0 means 1.
	Seed uint64
	// Quick shrinks corpus sizes and burst counts so the full suite runs
	// in seconds (used by tests); published numbers use Quick=false.
	Quick bool
	// Workers bounds the goroutines used to fan out independent runs
	// within an experiment: 0 means GOMAXPROCS, 1 forces the serial path
	// (useful for debugging). Negative values are invalid; reject them with
	// ValidateWorkers before running. Results are identical either way —
	// every run is an isolated engine seeded from Seed, and results are
	// collected by index.
	Workers int
	// Audit attaches the internal/audit invariant auditor to every
	// packet-level simulation: byte/packet conservation, queue bounds,
	// clock monotonicity, congestion-window protocol bounds, and packet
	// -pool hygiene are checked throughout the run, and any violation
	// panics with a summary. Results are bit-identical to unaudited runs;
	// the cost is a modest slowdown.
	Audit bool
	// Metrics, when non-nil, collects run telemetry (engine, queue, link,
	// pool, transport, and congestion-control counters) from every
	// packet-level simulation the experiment spawns. Metrics are harvested
	// after each run from counters the simulation maintains anyway, so
	// instrumented results are bit-identical to uninstrumented ones, and
	// the registry's merge is commutative, so snapshots are identical
	// across serial and parallel schedules.
	Metrics *obs.Registry
	// Fidelity, when set to FidelityFlow, runs each simulation the
	// experiment spawns on the flow-level fluid backend where the
	// configuration supports it; runs that need packet-level-only features
	// (ICTCP, shared buffers, admission waves, ...) keep the packet
	// backend. Empty or FidelityPacket means packet-level everywhere.
	Fidelity string
	// Aggregation selects how flow-level runs represent the flow
	// population: AggregationPerFlow, AggregationCohort, or
	// AggregationAuto (also ""). It only applies to runs that actually
	// lower to the fluid backend and requires Fidelity == FidelityFlow
	// when set.
	Aggregation string
}

// Validate rejects option values that would otherwise fail deep inside an
// experiment run.
func (o Options) Validate() error {
	if !KnownFidelity(o.Fidelity) {
		return fmt.Errorf("core: unknown fidelity %q (valid: %q, %q)",
			o.Fidelity, FidelityPacket, FidelityFlow)
	}
	if !KnownAggregation(o.Aggregation) {
		return fmt.Errorf("core: unknown aggregation %q (valid: %q, %q, %q)",
			o.Aggregation, AggregationAuto, AggregationCohort, AggregationPerFlow)
	}
	if o.Aggregation != "" && o.Fidelity != FidelityFlow {
		return fmt.Errorf("core: aggregation %q requires fidelity %q (the packet backend is per-packet by construction)",
			o.Aggregation, FidelityFlow)
	}
	return ValidateWorkers(o.Workers)
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Result is implemented by every experiment result: it can write its CSV
// artifacts into a directory and summarize itself as text.
type Result interface {
	// Name returns the experiment identifier (e.g. "fig5").
	Name() string
	// WriteFiles writes the result's CSV artifacts under dir.
	WriteFiles(dir string) error
	// Summary renders a human-readable digest.
	Summary() string
}

// section formats a summary heading.
func section(title string) string {
	return fmt.Sprintf("%s\n%s\n", title, strings.Repeat("=", len(title)))
}
