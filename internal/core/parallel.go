package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ValidateWorkers rejects worker counts the runner does not define: only
// 0 (= GOMAXPROCS) and positive bounds are meaningful. Front ends call this
// before building experiments so a typo'd "-workers -4" fails with a clear
// error instead of silently selecting a fallback.
func ValidateWorkers(workers int) error {
	if workers < 0 {
		return fmt.Errorf("workers must be >= 0 (0 means all cores, 1 forces serial); got %d", workers)
	}
	return nil
}

// runParallel evaluates fn(0), ..., fn(n-1) across up to workers goroutines
// and returns the results indexed by input, so the output is identical to a
// serial loop regardless of execution interleaving. Each fn call must be
// independent of the others: experiment sweeps qualify because every run
// builds its own sim.Engine and derives randomness from the configured seed,
// never from shared state.
//
// workers == 0 selects GOMAXPROCS; workers == 1 runs the plain serial loop
// (no goroutines), which is the debugging mode the Workers option documents.
// Negative counts are a caller bug — front ends validate with
// ValidateWorkers — so they panic rather than being silently reinterpreted.
func runParallel[R any](workers, n int, fn func(i int) R) []R {
	if err := ValidateWorkers(workers); err != nil {
		panic("core: " + err.Error())
	}
	out := make([]R, n)
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// RunIncastSims runs one incast simulation per config, fanned across the
// given number of workers (0 = GOMAXPROCS, 1 = serial). Results are indexed
// like cfgs and bit-identical to running RunIncastSim serially.
func RunIncastSims(workers int, cfgs []SimConfig) []*SimResult {
	return runParallel(workers, len(cfgs), func(i int) *SimResult {
		return RunIncastSim(cfgs[i])
	})
}
