package core

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"incastlab/internal/sim"
)

var quick = Options{Seed: 1, Quick: true}

func TestTable1(t *testing.T) {
	r := Table1(quick)
	if len(r.Services) != 5 {
		t.Fatalf("services = %d", len(r.Services))
	}
	if !strings.Contains(r.Summary(), "aggregator") {
		t.Fatal("summary missing services")
	}
}

func TestFig1ExampleTrace(t *testing.T) {
	r := Fig1ExampleTrace(Options{Seed: 1}) // full 2 s for stable stats
	// Paper: mean utilization 10.6%, bursty at line rate.
	if r.MeanUtilization < 0.04 || r.MeanUtilization > 0.30 {
		t.Fatalf("utilization = %v, want ~0.1", r.MeanUtilization)
	}
	if len(r.Bursts) < 20 {
		t.Fatalf("bursts = %d, want tens per 2s trace", len(r.Bursts))
	}
	incasts, big := 0, 0
	for _, b := range r.Bursts {
		if b.IsIncast() {
			incasts++
		}
		if b.PeakFlows >= 200 {
			big++
		}
	}
	if incasts*2 < len(r.Bursts) {
		t.Fatalf("only %d of %d bursts are incasts", incasts, len(r.Bursts))
	}
	// Paper Fig 1b: flow counts jump to 200 or more.
	if big == 0 {
		t.Fatal("no burst reached 200 flows")
	}
}

func TestFig2And4(t *testing.T) {
	r := Fig2And4BurstCharacterization(quick)
	if len(r.Reports) != 5 {
		t.Fatalf("reports = %d", len(r.Reports))
	}
	for _, sr := range r.Reports {
		if sr.Report.Bursts < 50 {
			t.Fatalf("%s: only %d bursts", sr.Service, sr.Report.Bursts)
		}
		if p99 := sr.Report.Flows.Quantile(0.99); p99 < 80 {
			t.Fatalf("%s: flows p99 = %v", sr.Service, p99)
		}
	}
}

func TestFig3StabilityAndVideoModes(t *testing.T) {
	r := Fig3Stability(quick)
	if len(r.Services) != 5 || len(r.RoundMeans) != 5 {
		t.Fatalf("shape: %d services, %d rows", len(r.Services), len(r.RoundMeans))
	}
	// Aggregator stays stable over rounds (Fig 3a).
	if s := r.StabilitySpread("aggregator"); s > 0.5 {
		t.Fatalf("aggregator spread = %v, want stable", s)
	}
	// Video's two operating modes make it the least stable service.
	if sv, sa := r.StabilitySpread("video"), r.StabilitySpread("messaging"); sv <= sa {
		t.Fatalf("video spread %v should exceed messaging %v (mode switching)", sv, sa)
	}
	// Hosts look alike (Fig 3b).
	var min, max float64
	for i, m := range r.HostMeans {
		if i == 0 || m < min {
			min = m
		}
		if i == 0 || m > max {
			max = m
		}
	}
	if (max-min)/max > 0.4 {
		t.Fatalf("host means %v..%v too spread", min, max)
	}
}

func TestFig5ModesShape(t *testing.T) {
	r := Fig5Modes(quick) // flows 80, 500, 1400
	byFlows := map[int]*SimResult{}
	for _, m := range r.Modes {
		byFlows[m.Flows] = m
	}

	m1 := byFlows[80]
	// Mode 1: healthy — queue parks near K, completion near the 15 ms
	// optimum, no timeouts.
	if m1.Timeouts != 0 {
		t.Fatalf("mode 1 timeouts = %d", m1.Timeouts)
	}
	if q := avgBusyQueue(m1); q < 30 || q > 130 {
		t.Fatalf("mode 1 busy queue = %v, want near K=65", q)
	}
	if m1.MeanBCT > 18*sim.Millisecond {
		t.Fatalf("mode 1 BCT = %v, want ~15ms", m1.MeanBCT)
	}

	m2 := byFlows[500]
	// Mode 2: degenerate point — queue stands at N - BDP (~475), still no
	// timeouts in the measured bursts, BCT near optimal.
	if m2.Timeouts != 0 || m2.Drops != 0 {
		t.Fatalf("mode 2 timeouts=%d drops=%d, want none", m2.Timeouts, m2.Drops)
	}
	if q := avgBusyQueue(m2); q < 400 || q > 550 {
		t.Fatalf("mode 2 busy queue = %v, want ~475 (N - BDP)", q)
	}
	if m2.MeanBCT > 18*sim.Millisecond {
		t.Fatalf("mode 2 BCT = %v, want ~15ms", m2.MeanBCT)
	}

	m3 := byFlows[1400]
	// Mode 3: timeouts — overflow drops every burst, completion bound by
	// the 200 ms minimum RTO.
	if m3.Timeouts == 0 || m3.Drops == 0 {
		t.Fatalf("mode 3 timeouts=%d drops=%d, want both > 0", m3.Timeouts, m3.Drops)
	}
	if m3.MeanBCT < 100*sim.Millisecond {
		t.Fatalf("mode 3 BCT = %v, want RTO-bound (~200ms)", m3.MeanBCT)
	}
	if m3.MaxQueue < float64(m3.QueueCapacity)-5 {
		t.Fatalf("mode 3 max queue = %v, want overflow at %d", m3.MaxQueue, m3.QueueCapacity)
	}

	// Mode labels agree.
	if mode(m1) != "1 (healthy)" || mode(m2) != "2 (degenerate)" || !strings.HasPrefix(mode(m3), "3") {
		t.Fatalf("modes misclassified: %s / %s / %s", mode(m1), mode(m2), mode(m3))
	}
}

func TestFig6ShortBurstsShape(t *testing.T) {
	r := Fig6ShortBursts(quick) // flows 50, 200
	if len(r.Runs) != 2 {
		t.Fatalf("runs = %d", len(r.Runs))
	}
	small, large := r.Runs[0], r.Runs[1]
	// Deeper incast, deeper spike.
	if large.MaxQueue <= small.MaxQueue {
		t.Fatalf("max queue should grow with flows: %v vs %v", small.MaxQueue, large.MaxQueue)
	}
	// 2 ms bursts complete fast and are spike-dominated: the maximum is
	// reached within the first 2 ms.
	for _, m := range r.Runs {
		if m.MeanBCT > 5*sim.Millisecond {
			t.Fatalf("%d flows: BCT = %v, want ~2ms", m.Flows, m.MeanBCT)
		}
		if m.SpikePackets < 0.8*m.AvgQueue.Max() {
			t.Fatalf("%d flows: spike %v not dominant vs averaged max %v",
				m.Flows, m.SpikePackets, m.AvgQueue.Max())
		}
	}
}

func TestFig7InFlightSkew(t *testing.T) {
	r := Fig7InFlight(quick)
	// Paper: p95/p100 transmit several times the median; the average
	// rises at the end of the burst as stragglers ramp.
	if r.MaxSkew < 1.5 {
		t.Fatalf("skew = %v, want > 1.5x", r.MaxSkew)
	}
	if r.RampRatio < 1.1 {
		t.Fatalf("ramp ratio = %v, want end-of-burst ramp-up", r.RampRatio)
	}
}

func TestAblationECNThresholdMonotone(t *testing.T) {
	r := AblationECNThreshold(quick)
	if len(r.Table().Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Table().Rows))
	}
	// Busy-queue depth should increase with K (column 1).
	prev := -1.0
	for _, row := range r.Table().Rows {
		v := parseFloat(t, row[1])
		if v <= prev {
			t.Fatalf("queue depth not increasing with K: %v", r.Table().Rows)
		}
		prev = v
	}
}

func TestAblationGuardrailShrinksSpike(t *testing.T) {
	r := AblationGuardrail(quick)
	// Rows come in groups of three per flow count: dctcp, guardrail, wave.
	byScheme := map[string][]string{}
	for _, row := range r.Table().Rows {
		if row[0] == "80" {
			byScheme[row[1]] = row
		}
	}
	base := parseFloat(t, byScheme["dctcp"][4]) // spike_pkts column
	guard := parseFloat(t, byScheme["dctcp+guardrail"][4])
	wave := parseFloat(t, byScheme["dctcp+wave64"][4])
	if guard >= base {
		t.Fatalf("guardrail spike %v >= dctcp %v", guard, base)
	}
	if wave > base*1.5 {
		t.Fatalf("wave spike %v much worse than dctcp %v", wave, base)
	}
}

func TestAblationCCAContrast(t *testing.T) {
	r := AblationCCA(quick)
	byName := map[string][]string{}
	for _, row := range r.Table().Rows {
		byName[row[0]] = row
	}
	renoMax := parseFloat(t, byName["reno"][2])
	dctcpMax := parseFloat(t, byName["dctcp"][2])
	// Reno ignores ECN and drives the queue far deeper than DCTCP.
	if renoMax <= 2*dctcpMax {
		t.Fatalf("reno max queue %v should dwarf dctcp %v", renoMax, dctcpMax)
	}
}

func TestAblationSharedBufferCausesTimeouts(t *testing.T) {
	if testing.Short() {
		t.Skip("two 1000-flow simulations")
	}
	r := AblationSharedBuffer(quick)
	dedicated, shared := r.Table().Rows[0], r.Table().Rows[1]
	if parseFloat(t, dedicated[5]) != 0 { // timeouts
		t.Fatalf("dedicated buffer should absorb 1000 flows: %v", dedicated)
	}
	if parseFloat(t, shared[5]) == 0 {
		t.Fatalf("contended shared buffer should cause timeouts: %v", shared)
	}
}

func TestAblationDelayedACKsDeepenQueue(t *testing.T) {
	r := AblationDelayedACKs(quick)
	imm := parseFloat(t, r.Table().Rows[0][2])     // queue_max
	delayed := parseFloat(t, r.Table().Rows[1][2]) // queue_max
	if delayed < imm {
		t.Fatalf("delayed ACKs max queue %v < immediate %v; coalescing should deepen bursts", delayed, imm)
	}
}

func TestAblationGRuns(t *testing.T) {
	r := AblationG(quick)
	if len(r.Table().Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Table().Rows))
	}
	for _, row := range r.Table().Rows {
		if parseFloat(t, row[5]) != 0 { // timeouts
			t.Fatalf("g sweep should stay in healthy mode: %v", row)
		}
	}
}

func TestResultsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	results := []Result{
		Table1(quick),
		Fig1ExampleTrace(quick),
		AblationG(quick),
	}
	for _, r := range results {
		if err := r.WriteFiles(dir); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if r.Summary() == "" {
			t.Fatalf("%s: empty summary", r.Name())
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected CSV files, got %v", entries)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".csv" {
			t.Fatalf("unexpected artifact %s", e.Name())
		}
	}
}

func TestSimResultDeterminism(t *testing.T) {
	run := func() *SimResult {
		return RunIncastSim(SimConfig{
			Flows: 30, BurstDuration: sim.Millisecond, Bursts: 3,
			Interval: 5 * sim.Millisecond, Seed: 42,
		})
	}
	a, b := run(), run()
	if a.MeanBCT != b.MeanBCT || a.MaxQueue != b.MaxQueue || a.Drops != b.Drops {
		t.Fatal("identical configs diverged")
	}
	for i := range a.AvgQueue.Values {
		if a.AvgQueue.Values[i] != b.AvgQueue.Values[i] {
			t.Fatalf("queue trace diverged at %d", i)
		}
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestCrossValidationRecoversWorkload(t *testing.T) {
	r := CrossValidation(quick)
	rep := r.Report
	// Millisampler must recover the configured burst cadence: 50/s, ~2 ms,
	// ~150 flows, all incasts.
	f := rep.BurstsPerSecond.Quantile(0.5)
	if f < 0.7*r.TrueBurstsPerSec || f > 1.3*r.TrueBurstsPerSec {
		t.Fatalf("measured frequency %v, truth %v", f, r.TrueBurstsPerSec)
	}
	d := rep.DurationMS.Quantile(0.5)
	if d < 1 || d > 4 {
		t.Fatalf("measured duration %v ms, truth 2 ms", d)
	}
	flows := rep.Flows.Quantile(0.5)
	if flows < 0.8*float64(r.TrueFlows) || flows > 1.05*float64(r.TrueFlows) {
		t.Fatalf("measured degree %v, truth %d", flows, r.TrueFlows)
	}
	if rep.IncastFraction() != 1 {
		t.Fatalf("incast fraction %v, want 1", rep.IncastFraction())
	}
	if err := r.WriteFiles(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestAblationMinRTOBCTTracksRTO(t *testing.T) {
	if testing.Short() {
		t.Skip("three 1400-flow simulations")
	}
	r := AblationMinRTO(quick)
	if len(r.Table().Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Table().Rows))
	}
	// BCT (column 4) must increase with min RTO, roughly one-for-one.
	var prevRTO, prevBCT float64
	for i, row := range r.Table().Rows {
		rto := parseFloat(t, row[0])
		bct := parseFloat(t, row[4])
		if bct < rto {
			t.Fatalf("BCT %v ms below the %v ms min RTO", bct, rto)
		}
		if i > 0 && bct <= prevBCT {
			t.Fatalf("BCT not increasing with min RTO: %v", r.Table().Rows)
		}
		prevRTO, prevBCT = rto, bct
	}
	_ = prevRTO
}

func TestAblationIdleRestartIsNoOpDuringIncast(t *testing.T) {
	r := AblationIdleRestart(quick)
	persistent := parseFloat(t, r.Table().Rows[0][3]) // spike_pkts
	restart := parseFloat(t, r.Table().Rows[1][3])
	// RFC 2861/5681 restarts clamp to min(IW, cwnd); incast windows are
	// already below IW, so the straggler spike must be unchanged — the
	// negative result that motivates the sub-IW guardrail.
	if restart < 0.8*persistent || restart > 1.2*persistent {
		t.Fatalf("idle restart changed the spike (%v vs %v); expected a no-op during incast",
			restart, persistent)
	}
}

func TestRackContentionDegradesVictim(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-hundred-flow rack simulations")
	}
	r := RackContention(quick)
	if r.Solo.Drops != 0 || r.Solo.Timeouts != 0 {
		t.Fatalf("victim alone should be lossless: %+v", r.Solo)
	}
	if r.Contended.Drops == 0 || r.Contended.Timeouts == 0 {
		t.Fatalf("neighbor incast should cause loss: %+v", r.Contended)
	}
	if r.Contended.MeanBCT < 4*r.Solo.MeanBCT {
		t.Fatalf("contended BCT %v should dwarf solo %v", r.Contended.MeanBCT, r.Solo.MeanBCT)
	}
	if err := r.WriteFiles(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestAblationReceiverWindowShape(t *testing.T) {
	r := AblationReceiverWindow(quick)
	rows := map[string][]string{}
	for _, row := range r.Table().Rows {
		rows[row[0]+"/"+row[1]] = row
	}
	// At 40 flows, ICTCP must cut Reno's queue excursions.
	renoMax := parseFloat(t, rows["40/reno"][3])
	ictcpMax := parseFloat(t, rows["40/reno+ictcp"][3])
	if ictcpMax >= renoMax {
		t.Fatalf("ictcp max queue %v >= reno %v at 40 flows", ictcpMax, renoMax)
	}
	// At 400 flows the 2-MSS floor pins ~2N packets: queue stays deep.
	deep := parseFloat(t, rows["400/reno+ictcp"][2]) // busy-avg
	if deep < 300 {
		t.Fatalf("ictcp busy queue %v at 400 flows; the window floor should pin ~2N packets", deep)
	}
}

func TestModeBoundaryClassification(t *testing.T) {
	r := ModeBoundary(quick) // flows 60, 95, 1420
	want := map[int]string{60: "1", 95: "2", 1420: "3"}
	for i, n := range r.Flows {
		if !strings.HasPrefix(r.Modes[i], want[n]) {
			t.Fatalf("%d flows classified %q, want mode %s*", n, r.Modes[i], want[n])
		}
	}
	if r.HealthyToDegenerate != 95 || r.DegenerateToTimeout != 1420 {
		t.Fatalf("boundaries = %d, %d (quick grid: want 95 and 1420)",
			r.HealthyToDegenerate, r.DegenerateToTimeout)
	}
}

// TestAllExperimentsQuick runs the entire experiment registry in quick
// mode and validates the Result contract: unique names, non-empty
// summaries, and CSV artifacts on disk.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	dir := t.TempDir()
	seen := map[string]bool{}
	for _, r := range All(quick) {
		name := r.Name()
		if name == "" || seen[name] {
			t.Fatalf("experiment name %q empty or duplicated", name)
		}
		seen[name] = true
		if r.Summary() == "" {
			t.Fatalf("%s: empty summary", name)
		}
		if err := r.WriteFiles(dir); err != nil {
			t.Fatalf("%s: WriteFiles: %v", name, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < len(seen) {
		t.Fatalf("only %d artifacts for %d experiments", len(entries), len(seen))
	}
}

func TestAblationMarkingDisciplineDeepensQueue(t *testing.T) {
	r := AblationMarkingDiscipline(quick)
	inst := parseFloat(t, r.Table().Rows[0][3]) // queue_max
	ewma := parseFloat(t, r.Table().Rows[1][3])
	if ewma <= inst {
		t.Fatalf("EWMA marking max queue %v <= instantaneous %v; lagging feedback should deepen excursions",
			ewma, inst)
	}
}
