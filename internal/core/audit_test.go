package core

import (
	"strings"
	"testing"

	"incastlab/internal/sim"
)

// TestAuditedSimMatchesUnaudited verifies the checked mode's core promise:
// attaching the invariant auditor changes nothing about the simulation.
func TestAuditedSimMatchesUnaudited(t *testing.T) {
	run := func(audited bool) *SimResult {
		return RunIncastSim(SimConfig{
			Flows: 30, BurstDuration: sim.Millisecond, Bursts: 3,
			Interval: 5 * sim.Millisecond, Seed: 42, Audit: audited,
		})
	}
	plain, audited := run(false), run(true)
	if plain.MeanBCT != audited.MeanBCT || plain.MaxBCT != audited.MaxBCT ||
		plain.MaxQueue != audited.MaxQueue || plain.Drops != audited.Drops ||
		plain.Marks != audited.Marks || plain.Timeouts != audited.Timeouts ||
		plain.SentPackets != audited.SentPackets {
		t.Fatalf("audit changed results:\nplain:   %+v\naudited: %+v", plain, audited)
	}
}

// TestAuditedExperiments runs the packet-level experiments in checked mode.
// Any invariant violation panics inside the runner, so passing means zero
// violations across every simulated figure, including the timeout-dominated
// Mode 3 runs and the shared-buffer rack experiment.
func TestAuditedExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("audited experiment sweep is not short")
	}
	opt := Options{Seed: 1, Quick: true, Audit: true}
	experiments := []struct {
		name string
		run  func()
	}{
		{"fig5", func() { Fig5Modes(opt) }},
		{"fig6", func() { Fig6ShortBursts(opt) }},
		{"fig7", func() { Fig7InFlight(opt) }},
		{"crossval", func() { CrossValidation(opt) }},
		{"rack_contention", func() { RackContention(opt) }},
	}
	for _, exp := range experiments {
		exp := exp
		t.Run(exp.name, func(t *testing.T) {
			t.Parallel()
			exp.run()
		})
	}
}

// TestValidateWorkers is the satellite table test: negative worker counts
// are rejected with a clear error everywhere they can enter, before any
// goroutine fan-out happens.
func TestValidateWorkers(t *testing.T) {
	cases := []struct {
		workers int
		wantErr bool
	}{
		{-100, true},
		{-1, true},
		{0, false},
		{1, false},
		{8, false},
		{1 << 20, false},
	}
	for _, c := range cases {
		err := ValidateWorkers(c.workers)
		if (err != nil) != c.wantErr {
			t.Errorf("ValidateWorkers(%d) = %v, wantErr=%v", c.workers, err, c.wantErr)
		}
		if err != nil && !strings.Contains(err.Error(), "workers must be >= 0") {
			t.Errorf("ValidateWorkers(%d) error %q lacks guidance", c.workers, err)
		}
		optErr := Options{Workers: c.workers}.Validate()
		if (optErr != nil) != c.wantErr {
			t.Errorf("Options{Workers: %d}.Validate() = %v, wantErr=%v", c.workers, optErr, c.wantErr)
		}
	}
}

// TestRunParallelRejectsNegativeWorkers pins the fail-fast behavior behind
// the front-end validation: internal misuse panics instead of silently
// reinterpreting a negative count as "all cores".
func TestRunParallelRejectsNegativeWorkers(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("runParallel(-2, ...) did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "workers must be >= 0") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	runParallel(-2, 3, func(i int) int { return i })
}
