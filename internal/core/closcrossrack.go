package core

import (
	"incastlab/internal/scenario"
)

func init() {
	register(220, Experiment{
		Name: "ext_clos_crossrack", Kind: KindExtension,
		PaperRef: "Sections 2 & 4.2 (aggregators and workers span racks; mode boundaries)",
		Run:      func(o Options) Result { return ClosCrossRack(o) },
	})
}

// closCrossRackSpec compares same-rack and cross-rack worker placement on
// a leaf/spine fabric at two Fig-5 operating points: N=80 (the
// healthy/degenerate boundary region) and N=500 (deep in Mode 2). The
// paper measures production services whose aggregators and workers span
// racks (Section 2); the dumbbell collapses that fabric into one link.
// Here the same incast runs both ways: workers packed under the
// aggregator's own ToR (no spine crossing, the dumbbell-like control) vs
// spread over the other racks with responses ECMP-hashed across two
// spines. The rack is sized so both placements fit the largest degree
// (501 hosts per rack: the aggregator plus 500 same-rack worker slots).
func closCrossRackSpec() scenario.Spec {
	return scenario.Spec{
		Name:  "ext_clos_crossrack",
		Title: "Extension: same-rack vs cross-rack incast on a Clos fabric",
		Topology: &scenario.Topology{
			Clos: &scenario.Clos{
				Racks:         8,
				HostsPerRack:  501,
				Spines:        2,
				SpineLinkGbps: 100,
			},
		},
		Sweep: scenario.Sweep{
			Axis:   "placement",
			Values: scenario.Strs("same-rack", "cross-rack"),
			Flows:  []int{80, 500},
		},
		Notes: "Both placements share the 10G aggregator downlink as the terminal bottleneck, so the Fig-5 mode signatures (busy-average queue, mark rate, timeouts) should land close together; the cross-rack rows additionally traverse two ECMP-hashed spine hops, which shows up as a longer base RTT and any collision-induced spread.\n",
	}
}

// ClosCrossRack runs the fabric placement comparison.
func ClosCrossRack(opt Options) *TableResult {
	return mustScenario(opt, closCrossRackSpec())
}
