package core

import (
	"encoding/json"
	"runtime"
	"testing"

	"incastlab/internal/scenario"
	"incastlab/internal/sweep"
)

// TestSharedBufferPoolReuse is the pooled-reuse regression for shared
// buffers: the shared-buffer ablation must produce byte-identical CSVs on
// a cold process and again after the engine/packet-pool bundles have been
// recycled through other sweeps. SharedBuffer DT state (usedBytes,
// externalBytes, registered queues) lives in per-run objects built fresh
// by each topology constructor — only the engine and packet free lists are
// pooled — so occupancy cannot carry over; this test pins that invariant
// so a future "optimize: pool the topology too" change cannot silently
// leak occupancy across sweep points.
func TestSharedBufferPoolReuse(t *testing.T) {
	opt := Options{Seed: 1, Quick: true, Workers: 1}
	first := tableCSV(t, AblationSharedBuffer(opt))

	// Dirty the pool: interleave other sweeps (different topology sizes,
	// shared buffers on and off) so recycled bundles saw foreign runs.
	AblationG(opt)
	mustScenario(opt, closTestSpec())

	second := tableCSV(t, AblationSharedBuffer(opt))
	if first != second {
		t.Errorf("shared-buffer sweep is not reproducible across pooled engine reuse:\n%s\nvs\n%s",
			first, second)
	}
}

// TestParallelClosDeterministic: the Clos cross-rack sweep — ECMP path
// hashing included — must be byte-identical between the serial runner and
// the full worker pool, and across repeated runs. Runs under -race in
// ci.sh; together with TestParallelShardedCacheResume this pins "same
// seed + spec => identical path assignments serial vs parallel and across
// cache hits".
func TestParallelClosDeterministic(t *testing.T) {
	spec := closTestSpec()
	serial := tableCSV(t, mustScenario(Options{Seed: 1, Quick: true, Workers: 1}, spec))
	parallel := tableCSV(t, mustScenario(Options{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)}, spec))
	if serial != parallel {
		t.Error("Clos sweep differs between serial and parallel runners")
	}
	again := tableCSV(t, mustScenario(Options{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)}, spec))
	if parallel != again {
		t.Error("repeated parallel Clos runs differ for the same seed")
	}
}

// TestClosECMPSeedChangesResults: a different ecmp_seed reshuffles
// cross-rack flow placement, which must show up in the sweep output
// (collision pattern, hence queue/BCT cells). Same-rack rows never cross
// the spines, so only the cross-rack rows may move.
func TestClosECMPSeedChangesResults(t *testing.T) {
	opt := Options{Seed: 1, Quick: true, Workers: 1}
	a := closTestSpec()
	a.Topology.Clos.ECMPSeed = 1
	b := closTestSpec()
	b.Topology.Clos.ECMPSeed = 99

	ca := tableCSV(t, mustScenario(opt, a))
	cb := tableCSV(t, mustScenario(opt, b))
	if ca == cb {
		t.Error("changing topology.clos.ecmp_seed left every sweep cell unchanged")
	}
}

// TestClosCrossRackSpecContract: the registered experiment's spec is
// valid, registered as an extension, and expressible as the JSON the
// -scenario CLI accepts (round-trips losslessly), like the ablation specs.
func TestClosCrossRackSpecContract(t *testing.T) {
	s := closCrossRackSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	e, ok := LookupExperiment(s.Name)
	if !ok {
		t.Fatalf("%q is not a registered experiment", s.Name)
	}
	if e.Kind != KindExtension {
		t.Errorf("%s registered as %q, want %q", s.Name, e.Kind, KindExtension)
	}
	roundTripSpec(t, s)
}

func roundTripSpec(t *testing.T, s scenario.Spec) {
	t.Helper()
	first, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("%s: marshal: %v", s.Name, err)
	}
	parsed, err := scenario.Parse(first)
	if err != nil {
		t.Fatalf("%s: parse own JSON: %v", s.Name, err)
	}
	second, err := json.Marshal(parsed)
	if err != nil {
		t.Fatalf("%s: re-marshal: %v", s.Name, err)
	}
	if string(first) != string(second) {
		t.Errorf("%s: JSON round trip is lossy:\n%s\n%s", s.Name, first, second)
	}
}

// closFlowTestSpec is closTestSpec at flow fidelity with an aggregators
// axis: every row runs the multi-queue fluid solver over the fabric.
func closFlowTestSpec() scenario.Spec {
	return scenario.Spec{
		Name: "clos_flow_test",
		Topology: &scenario.Topology{
			Clos: &scenario.Clos{Racks: 3, HostsPerRack: 9, Spines: 2, SpineLinkGbps: 100},
		},
		Workload: scenario.Workload{BurstMS: 2, QuickBursts: 2},
		Sweep: scenario.Sweep{
			Axis:   "aggregators",
			Values: scenario.Nums(1, 3),
			Flows:  []int{4, 8},
		},
		Fidelity: "flow",
	}
}

// TestParallelClosFlowDeterministic: Clos sweeps at fidelity "flow" —
// ECMP spine assignment and the multi-queue fluid integration — must be
// byte-identical between the serial runner, the full worker pool, and a
// cache-hit replay. Runs under -race in ci.sh: any shared mutable state
// between concurrent fluid runs shows up here.
func TestParallelClosFlowDeterministic(t *testing.T) {
	spec := closFlowTestSpec()
	serial := tableCSV(t, mustScenario(Options{Seed: 1, Quick: true, Workers: 1}, spec))
	parallel := tableCSV(t, mustScenario(Options{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)}, spec))
	if serial != parallel {
		t.Error("flow-fidelity Clos sweep differs between serial and parallel runners")
	}

	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)}
	if _, _, err := RunScenarioCached(opt, spec, cache, Shard{}); err != nil {
		t.Fatal(err)
	}
	warm, stats, err := RunScenarioCached(opt, spec, cache, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != stats.Rows || stats.Computed != 0 {
		t.Fatalf("warm run stats = %s, want all hits", stats)
	}
	if got := tableCSV(t, warm); got != serial {
		t.Error("cache-hit replay of the flow-fidelity Clos sweep differs from the serial run")
	}
}

// TestParallelCohortDeterministic: the same fabric sweep solved with
// cohort aggregation forced on must also be byte-identical between the
// serial runner, the full worker pool, and a cache-hit replay. Runs
// under -race in ci.sh: the cohort solver's split bookkeeping is all
// per-run state, and this pins that no scratch leaks across concurrent
// runs.
func TestParallelCohortDeterministic(t *testing.T) {
	spec := closFlowTestSpec()
	spec.Name = "clos_cohort_test"
	spec.Aggregation = AggregationCohort
	spec.Sweep.Flows = []int{16, 48}
	// 3 aggregators x 48 cross-rack workers lands 49 hosts in a rack.
	spec.Topology.Clos.HostsPerRack = 64

	serial := tableCSV(t, mustScenario(Options{Seed: 1, Quick: true, Workers: 1}, spec))
	parallel := tableCSV(t, mustScenario(Options{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)}, spec))
	if serial != parallel {
		t.Error("cohort-aggregated Clos sweep differs between serial and parallel runners")
	}

	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)}
	if _, _, err := RunScenarioCached(opt, spec, cache, Shard{}); err != nil {
		t.Fatal(err)
	}
	warm, stats, err := RunScenarioCached(opt, spec, cache, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != stats.Rows || stats.Computed != 0 {
		t.Fatalf("warm run stats = %s, want all hits", stats)
	}
	if got := tableCSV(t, warm); got != serial {
		t.Error("cache-hit replay of the cohort-aggregated Clos sweep differs from the serial run")
	}
}
