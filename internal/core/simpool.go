package core

import (
	"sync"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// simResources bundles the per-run substrate a simulation re-grows from
// scratch when built cold: the engine (with its event free list and
// calendar-queue bucket array) and the packet pool's free list. Sweep
// runners burn most of their allocation budget here, and consecutive sweep
// points (the ten ablation specs, ModeBoundary's degree sweep, Fig 5's
// flow sweep) need exactly the same substrate — so RunIncastSim recycles
// it through a process-wide sync.Pool.
//
// Correctness: results are independent of pool warmth. Reuse changes only
// where event and packet structs are allocated from, never the (time, seq)
// event order or any simulated quantity; the registry gate (byte-identical
// quick CSVs) holds with the pool on. Each acquired bundle is owned by
// exactly one goroutine until released, preserving the engines-are-
// single-goroutine design under parallel sweeps.
//
// Instrumented runs (cfg.Metrics != nil) bypass the pool: the obs layer
// reports free-list and packet-pool hit rates, which are part of the
// deterministic snapshot subset the CI obs gate compares across serial and
// parallel runs — warm-start counters would differ run to run. A fresh
// engine keeps those metrics deterministic.
type simResources struct {
	eng  *sim.Engine
	pool *netsim.PacketPool
}

var simResourcePool = sync.Pool{
	New: func() any {
		return &simResources{eng: sim.NewEngine(), pool: netsim.NewPacketPool()}
	},
}

// acquireSimResources returns an engine and packet pool for one run. When
// reuse is false (instrumented runs), both are fresh and releaseSimResources
// will discard them.
func acquireSimResources(reuse bool) *simResources {
	if !reuse {
		return &simResources{eng: sim.NewEngine(), pool: netsim.NewPacketPool()}
	}
	return simResourcePool.Get().(*simResources)
}

// releaseSimResources resets the bundle and returns it to the pool. Only
// call it after a fully drained, non-panicked run: Reset assumes no
// packets are outstanding and no callbacks will fire later.
func releaseSimResources(r *simResources, reuse bool) {
	if !reuse {
		return
	}
	r.eng.Reset()
	r.pool.Reset()
	simResourcePool.Put(r)
}
