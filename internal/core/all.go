package core

// All runs every experiment — each paper table and figure plus every
// ablation — and returns the results in presentation order. This is what
// cmd/figures executes.
func All(opt Options) []Result {
	return []Result{
		Table1(opt),
		Fig1ExampleTrace(opt),
		Fig2And4BurstCharacterization(opt),
		Fig3Stability(opt),
		Fig5Modes(opt),
		Fig6ShortBursts(opt),
		Fig7InFlight(opt),
		CrossValidation(opt),
		AblationG(opt),
		AblationECNThreshold(opt),
		AblationSharedBuffer(opt),
		AblationDelayedACKs(opt),
		AblationGuardrail(opt),
		AblationCCA(opt),
		AblationMinRTO(opt),
		AblationIdleRestart(opt),
		AblationReceiverWindow(opt),
		AblationMarkingDiscipline(opt),
		QueryTailLatency(opt),
		RackContention(opt),
		ModeBoundary(opt),
	}
}
