package core

import (
	"incastlab/internal/scenario"
)

func init() {
	register(250, Experiment{
		Name: "ext_clos_multiagg", Kind: KindExtension,
		PaperRef: "Section 2 (many concurrent partition-aggregate jobs share one fabric)",
		Run:      func(o Options) Result { return ClosMultiAgg(o) },
	})
}

// closMultiAggSpec sweeps the number of concurrent incasts sharing one
// leaf/spine fabric. The paper's production clusters run many
// partition-aggregate jobs at once (Section 2); the single-aggregator
// experiments isolate one job's dynamics, so this grid asks what the
// fabric adds when 1, 2, or 4 aggregators — one per rack, at slot 0 —
// fire simultaneously, each fanning its workers over the other racks.
// Each aggregator's 10G downlink stays a private terminal bottleneck, but
// the leaf uplinks and ECMP-hashed spine ports are shared, so collisions
// between jobs surface as cross-job BCT spread at the higher degrees.
func closMultiAggSpec() scenario.Spec {
	return scenario.Spec{
		Name:  "ext_clos_multiagg",
		Title: "Extension: concurrent incasts sharing a Clos fabric",
		Topology: &scenario.Topology{
			Clos: &scenario.Clos{
				Racks:         8,
				HostsPerRack:  501,
				Spines:        2,
				SpineLinkGbps: 100,
			},
		},
		Sweep: scenario.Sweep{
			Axis:   "aggregators",
			Values: scenario.Nums(1, 2, 4),
			Flows:  []int{80, 500},
		},
		Notes: "Rows report the first aggregator's downlink (the probed queue); with per-job downlinks private, the Fig-5 single-job signatures should survive nearly unchanged until the shared uplink/spine stages congest — the interesting deviation is any mode flip or BCT inflation appearing only at aggregators > 1.\n",
	}
}

// ClosMultiAgg runs the concurrent-incast fabric sweep.
func ClosMultiAgg(opt Options) *TableResult {
	return mustScenario(opt, closMultiAggSpec())
}
