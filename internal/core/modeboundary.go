package core

import (
	"fmt"
	"strings"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/trace"
)

func init() {
	register(210, Experiment{
		Name: "ext_mode_boundary", Kind: KindExtension, PaperRef: "Section 4.2 (mode boundaries)",
		Run: func(o Options) Result { return ModeBoundary(o) },
	})
}

// ModeBoundaryResult sweeps the incast degree and classifies each run into
// the paper's three operating modes, locating the two regime boundaries
// empirically. The paper's own arithmetic predicts them exactly:
//
//   - healthy -> degenerate at N = K + BDP (~90 flows here: beyond that,
//     N windows of 1 MSS keep the queue above the marking threshold), and
//   - degenerate -> timeouts at N = capacity + BDP (~1358: beyond that,
//     even 1-MSS windows overflow the queue in steady state).
type ModeBoundaryResult struct {
	TableResult
	Flows []int
	Modes []string
	// Runs holds the underlying results, aligned with Flows.
	Runs []*SimResult
	// HealthyToDegenerate and DegenerateToTimeout are the first swept
	// degrees at which the classification changes (0 if never observed).
	HealthyToDegenerate, DegenerateToTimeout int
}

// ModeBoundary runs the sweep. The grid is dense around the predicted
// boundaries and sparse in between.
func ModeBoundary(opt Options) *ModeBoundaryResult {
	flows := []int{40, 60, 80, 85, 90, 95, 110, 200, 800, 1300, 1360, 1380, 1420}
	bursts := 6
	if opt.Quick {
		flows = []int{60, 95, 1420}
		bursts = 3
	}
	r := &ModeBoundaryResult{}
	// The runs are independent; only the boundary classification below
	// carries state across grid points, so it stays a serial pass.
	r.Runs = runParallel(opt.Workers, len(flows), func(i int) *SimResult {
		return RunIncastSim(opt.instrument("mode_boundary", SimConfig{
			Flows:         flows[i],
			BurstDuration: 15 * sim.Millisecond,
			Bursts:        bursts,
			Seed:          opt.seed(),
			Audit:         opt.Audit,
		}))
	})
	prev := ""
	for i, n := range flows {
		label := mode(r.Runs[i])
		r.Flows = append(r.Flows, n)
		r.Modes = append(r.Modes, label)
		if prev != "" && label != prev {
			switch {
			case strings.HasPrefix(label, "2") && r.HealthyToDegenerate == 0:
				r.HealthyToDegenerate = n
			case strings.HasPrefix(label, "3") && r.DegenerateToTimeout == 0:
				r.DegenerateToTimeout = n
			}
		}
		prev = label
	}

	t := trace.NewTable("flows", "mode", "queue_busy_avg_pkts", "frac_below_k",
		"mean_bct_ms", "timeouts")
	for i, n := range r.Flows {
		m := r.Runs[i]
		t.AddRow(fmt.Sprint(n), r.Modes[i], trace.Float(avgBusyQueue(m)),
			trace.Float(m.FracBelowK), trace.Float(m.MeanBCT.Milliseconds()),
			fmt.Sprint(m.Timeouts))
	}
	r.TableResult = TableResult{
		ExpName:     "ext_mode_boundary",
		Artifacts:   []Artifact{{File: "ext_mode_boundary.csv", Table: t}},
		SummaryText: r.renderSummary(t),
	}
	return r
}

func (r *ModeBoundaryResult) renderSummary(t *trace.Table) string {
	var b strings.Builder
	b.WriteString(section("Extension: locating the operating-mode boundaries"))
	b.WriteString(t.Text())
	net := netsim.DefaultDumbbellConfig(1)
	bdpPkts := net.BDPBytes() / netsim.MTU
	fmt.Fprintf(&b, "\npredicted: healthy->degenerate at K+BDP = %d+%d = %d flows; measured at %d\n",
		net.ECNThresholdPackets, bdpPkts, net.ECNThresholdPackets+bdpPkts, r.HealthyToDegenerate)
	fmt.Fprintf(&b, "predicted: degenerate->timeouts at capacity+BDP = %d+%d = %d flows; measured at %d\n",
		net.QueueCapacityPackets, bdpPkts, net.QueueCapacityPackets+bdpPkts, r.DegenerateToTimeout)
	return b.String()
}
