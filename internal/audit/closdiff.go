package audit

import (
	"fmt"

	"incastlab/internal/cc"
	"incastlab/internal/flowsim"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
	"incastlab/internal/workload"
)

// ClosDiffConfig parameterizes the fabric closed-loop differential gate:
// the same repeated-burst DCTCP incast over a leaf/spine Clos run through
// the packet-level simulator (workload + netsim, the reference) and
// through the multi-queue fluid solver (flowsim.RunNetwork), point by
// point across the incast degrees. Both sides place flows through
// workload.ClosFlowEndpoints and hash ECMP with the same seed, so every
// flow meets the same queues in both backends.
//
// The tolerance contract is the dumbbell gate's (see IncastDiffConfig):
// mode classification exact, mean BCT within MeanBCTTol relative, max BCT
// within MaxBCTTol relative, peak bottleneck queue within PeakQueueTol of
// capacity.
type ClosDiffConfig struct {
	// Racks and HostsPerRack shape the fabric (defaults 8 and 501, the
	// ext_clos_crossrack geometry: every degree fits both placements).
	Racks, HostsPerRack int
	// Placement is workload.PlacementCrossRack (default) or
	// workload.PlacementSameRack.
	Placement string
	// Aggregators is the concurrent incast count (0 or 1 = single).
	Aggregators int
	// Flows lists the per-aggregator incast degrees to gate (defaults to
	// 80 and 500 — the fabric experiments' Mode 1 and Mode 2 points).
	Flows []int
	// BurstDuration, Bursts, Interval shape the workload (defaults 15 ms,
	// 4 bursts with the first discarded, 250 ms spacing).
	BurstDuration sim.Time
	Bursts        int
	Interval      sim.Time
	// Seed drives start jitter and the ECMP hash on both sides.
	Seed uint64

	// Tolerances; zero values take the documented defaults (0.35, 0.50,
	// 0.15 — pinned like the PR 6 dumbbell gate).
	MeanBCTTol   float64
	MaxBCTTol    float64
	PeakQueueTol float64

	// Audit additionally runs both sides in checked mode.
	Audit bool
}

func (c *ClosDiffConfig) fill() {
	if c.Racks <= 0 {
		c.Racks = 8
	}
	if c.HostsPerRack <= 0 {
		c.HostsPerRack = 501
	}
	if len(c.Flows) == 0 {
		c.Flows = []int{80, 500}
	}
	if c.BurstDuration <= 0 {
		c.BurstDuration = 15 * sim.Millisecond
	}
	if c.Bursts <= 0 {
		c.Bursts = 4
	}
	if c.Interval <= 0 {
		c.Interval = 250 * sim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MeanBCTTol <= 0 {
		c.MeanBCTTol = 0.35
	}
	if c.MaxBCTTol <= 0 {
		c.MaxBCTTol = 0.50
	}
	if c.PeakQueueTol <= 0 {
		c.PeakQueueTol = 0.15
	}
}

// clos materializes the fabric both sides run on.
func (c ClosDiffConfig) clos() netsim.ClosConfig {
	cfg := netsim.DefaultClosConfig(c.Racks, c.HostsPerRack)
	cfg.ECMPSeed = c.Seed
	return cfg
}

// RunClosDiff runs the fabric closed-loop differential gate. The returned
// error is non-nil when any point breaches the tolerance contract; the
// result always carries every point for reporting.
func RunClosDiff(cfg ClosDiffConfig) (*IncastDiffResult, error) {
	cfg.fill()
	closCfg := cfg.clos()
	res := &IncastDiffResult{}
	breach := func(format string, args ...any) {
		res.Breaches = append(res.Breaches, fmt.Sprintf(format, args...))
	}

	for _, n := range cfg.Flows {
		pkt, err := runPacketClosIncast(cfg, closCfg, n)
		if err != nil {
			return nil, fmt.Errorf("audit: clos packet side at %d flows: %w", n, err)
		}
		flow, err := runFlowClosIncast(cfg, closCfg, n)
		if err != nil {
			return nil, fmt.Errorf("audit: clos flow side at %d flows: %w", n, err)
		}

		capPkts := float64(flow.QueueCapacity)
		p := IncastDiffPoint{
			Flows:           n,
			PacketMode:      flowsim.Classify(pkt.timeouts, pkt.fracBelowK),
			FlowMode:        flowsim.Classify(flow.Timeouts, flow.FracBelowK),
			PacketMeanBCT:   pkt.meanBCT,
			FlowMeanBCT:     flow.MeanBCT,
			PacketMaxBCT:    pkt.maxBCT,
			FlowMaxBCT:      flow.MaxBCT,
			PacketPeakQueue: pkt.maxQueue / capPkts,
			FlowPeakQueue:   flow.MaxQueue / capPkts,
			PacketTimeouts:  pkt.timeouts,
			FlowTimeouts:    flow.Timeouts,
		}
		res.Points = append(res.Points, p)

		if p.PacketMode != p.FlowMode {
			breach("n=%d: mode classification diverges: packet %q vs flow %q (timeouts %d/%d, fracBelowK %.3f/%.3f)",
				n, p.PacketMode, p.FlowMode, p.PacketTimeouts, p.FlowTimeouts, pkt.fracBelowK, flow.FracBelowK)
		}
		if rel := relDiff(float64(p.FlowMeanBCT), float64(p.PacketMeanBCT)); rel > cfg.MeanBCTTol {
			breach("n=%d: mean BCT: packet %v vs flow %v (rel diff %.3f > tol %.3f)",
				n, p.PacketMeanBCT, p.FlowMeanBCT, rel, cfg.MeanBCTTol)
		}
		if rel := relDiff(float64(p.FlowMaxBCT), float64(p.PacketMaxBCT)); rel > cfg.MaxBCTTol {
			breach("n=%d: max BCT: packet %v vs flow %v (rel diff %.3f > tol %.3f)",
				n, p.PacketMaxBCT, p.FlowMaxBCT, rel, cfg.MaxBCTTol)
		}
		if d := absDiff(p.PacketPeakQueue, p.FlowPeakQueue); d > cfg.PeakQueueTol {
			breach("n=%d: peak queue: packet %.3f vs flow %.3f of capacity (diff %.3f > tol %.3f)",
				n, p.PacketPeakQueue, p.FlowPeakQueue, d, cfg.PeakQueueTol)
		}
	}

	if len(res.Breaches) > 0 {
		msg := fmt.Sprintf("audit: clos packet<->flow closed-loop differential check failed with %d breach(es)", len(res.Breaches))
		for _, b := range res.Breaches {
			msg += "\n  " + b
		}
		return res, fmt.Errorf("%s", msg)
	}
	return res, nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// runFlowClosIncast is the fluid side: endpoints from ClosFlowEndpoints,
// queue paths from ClosConfig.FluidPaths, solved by flowsim.RunNetwork.
func runFlowClosIncast(cfg ClosDiffConfig, closCfg netsim.ClosConfig, n int) (*flowsim.Result, error) {
	srcs, dsts, err := workload.ClosFlowEndpoints(closCfg, n, cfg.Aggregators, cfg.Placement)
	if err != nil {
		return nil, err
	}
	net, err := closCfg.FluidPaths(srcs, dsts)
	if err != nil {
		return nil, err
	}
	return flowsim.RunNetwork(flowsim.NetworkConfig{
		Config: flowsim.Config{
			Flows:           len(srcs),
			SegmentsPerFlow: workload.BytesPerFlowFor(closCfg.HostLinkBps, cfg.BurstDuration, n) / netsim.MSS,
			Bursts:          cfg.Bursts,
			Interval:        cfg.Interval,
			Seed:            cfg.Seed,
			LineRateBps:     closCfg.HostLinkBps,
			CoreRateBps:     closCfg.SpineLinkBps,
			Check:           cfg.Audit,
		},
		Net: net,
	})
}

// runPacketClosIncast runs the reference DCTCP incast on workload + netsim
// over the fabric, measuring identically to the dumbbell gate's packet
// side: discarded first burst, 100 us queue samples on the aggregator's
// leaf downlink over burst duration + 5 ms, counters diffed from the
// measured window's start.
func runPacketClosIncast(cfg ClosDiffConfig, closCfg netsim.ClosConfig, n int) (*packetIncastOutcome, error) {
	eng := sim.NewEngine()
	wl := workload.ClosIncastConfig{
		Workers:      n,
		Placement:    cfg.Placement,
		Aggregators:  cfg.Aggregators,
		BytesPerFlow: workload.BytesPerFlowFor(closCfg.HostLinkBps, cfg.BurstDuration, n),
		Bursts:       cfg.Bursts,
		Interval:     cfg.Interval,
		JitterMax:    100 * sim.Microsecond,
		Seed:         cfg.Seed,
	}
	in := workload.NewClosIncast(eng, closCfg, wl, func(int) cc.Algorithm {
		return cc.NewDCTCP(cc.DefaultDCTCPConfig())
	})

	var auditor *Auditor
	if cfg.Audit {
		auditor = New(eng, Config{RequireDrained: true})
		auditor.WatchClos(in.Network())
		for _, s := range in.Senders() {
			auditor.WatchSender(s)
		}
		auditor.Start()
	}

	q := in.Network().DownlinkQueue(0)
	sampleInterval := 100 * sim.Microsecond
	samples := int((cfg.BurstDuration + 5*sim.Millisecond) / sampleInterval)
	first := 1
	if cfg.Bursts == 1 {
		first = 0
	}
	var burstSeries []*stats.Series
	for b := first; b < cfg.Bursts; b++ {
		start := sim.Time(b) * cfg.Interval
		burstSeries = append(burstSeries,
			netsim.QueueDepthSeries(eng, q, start, sampleInterval, samples))
	}

	var baseTimeouts int64
	eng.Schedule(sim.Time(first)*cfg.Interval, func() {
		baseTimeouts = in.AggregateSenderStats().Timeouts
	})

	deadline := sim.Time(cfg.Bursts)*cfg.Interval + 10*sim.Second
	eng.RunUntil(deadline)
	if !in.Done() {
		return nil, fmt.Errorf("clos incast with %d workers did not complete by %v", n, deadline)
	}
	if auditor != nil {
		auditor.Finish()
		if err := auditor.Err(); err != nil {
			return nil, fmt.Errorf("invariant audit: %w", err)
		}
	}

	out := &packetIncastOutcome{}
	var busy, belowK int
	for _, bs := range burstSeries {
		for _, v := range bs.Values {
			if v > out.maxQueue {
				out.maxQueue = v
			}
			if v > 0 {
				busy++
				if v < float64(closCfg.ECNThresholdPackets) {
					belowK++
				}
			}
		}
	}
	if busy > 0 {
		out.fracBelowK = float64(belowK) / float64(busy)
	}

	var bctSum sim.Time
	measured := 0
	for _, b := range in.Bursts()[first:] {
		bctSum += b.BCT
		if b.BCT > out.maxBCT {
			out.maxBCT = b.BCT
		}
		measured++
	}
	out.meanBCT = bctSum / sim.Time(measured)
	out.timeouts = in.AggregateSenderStats().Timeouts - baseTimeouts
	return out, nil
}
