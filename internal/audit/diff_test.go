package audit

import (
	"math"
	"testing"
)

// TestDifferentialGate is the standing three-way cross-validation gate
// ci.sh runs: rackmodel and flowsim must both agree with netsim on the
// canonical trace within the documented tolerances, with the invariant
// auditor clean on the simulator side.
func TestDifferentialGate(t *testing.T) {
	res, err := RunDiff(DefaultDiffConfig())
	if err != nil {
		t.Fatalf("differential check failed:\n%v", err)
	}
	if res.AuditViolations != 0 {
		t.Fatalf("auditor found %d violations on the differential run", res.AuditViolations)
	}

	// The canonical trace overloads the port without overflowing the
	// queue: all sides must mark, none must drop.
	if res.SimMarkFraction == 0 {
		t.Error("simulator marked nothing; the trace should push past the ECN threshold")
	}
	if res.ModelMarkFraction == 0 {
		t.Error("model marked nothing; the trace should push past the ECN threshold")
	}
	if res.FlowMarkFraction == 0 {
		t.Error("flowsim marked nothing; the trace should push past the ECN threshold")
	}
	if res.Flow.DroppedBytes != 0 {
		t.Errorf("flowsim dropped %.0f bytes; the canonical trace must not overflow", res.Flow.DroppedBytes)
	}
	if res.SimDroppedBytes != 0 {
		t.Errorf("simulator dropped %.0f bytes; the canonical trace must not overflow", res.SimDroppedBytes)
	}
	var modelDropped float64
	for _, d := range res.Model.DroppedBytes {
		modelDropped += d
	}
	if modelDropped != 0 {
		t.Errorf("model dropped %.0f bytes; the canonical trace must not overflow", modelDropped)
	}

	// Peak watermark must be substantial (the 1.3× overload builds a
	// standing queue around half the 1333-packet port).
	if res.SimPeakWatermark < 0.2 {
		t.Errorf("sim peak watermark %.4f implausibly low", res.SimPeakWatermark)
	}
}

// TestDifferentialConservation cross-foots the harness's own accounting:
// everything offered is delivered (the trace drains fully), on both sides.
func TestDifferentialConservation(t *testing.T) {
	res, err := RunDiff(DefaultDiffConfig())
	if err != nil {
		t.Fatalf("differential check failed:\n%v", err)
	}
	var offered, simDel, modelDel, flowDel float64
	for i := range res.Offered {
		offered += res.Offered[i]
		simDel += res.SimDelivered[i]
		modelDel += res.Model.Delivered[i]
		flowDel += res.Flow.Delivered[i]
	}
	if simDel != offered {
		t.Errorf("sim delivered %.0f of %.0f offered bytes (trace should fully drain)", simDel, offered)
	}
	if math.Abs(modelDel-offered) > 1 {
		t.Errorf("model delivered %.0f of %.0f offered bytes (trace should fully drain)", modelDel, offered)
	}
	if math.Abs(flowDel-offered) > 1 {
		t.Errorf("flowsim delivered %.0f of %.0f offered bytes (trace should fully drain)", flowDel, offered)
	}
}

// TestDifferentialDetectsDivergence sanity-checks the comparator itself: a
// mis-stated model rate (the raw line rate, without the ×1500/1538 wire
// correction the contract requires) must trip watermark tolerances on an
// overload trace, proving the gate can fail.
func TestDifferentialDetectsDivergence(t *testing.T) {
	cfg := DefaultDiffConfig()
	// Impossibly tight tolerances: any discretization noise trips them.
	cfg.DeliveredAggTol = 1e-12
	cfg.WatermarkIntervalTol = 1e-12
	cfg.WatermarkPeakTol = 1e-12
	cfg.ECNAggTol = 1e-12
	cfg.ECNIntervalTol = 1e-12
	if _, err := RunDiff(cfg); err == nil {
		t.Fatal("near-zero tolerances should breach; the comparator cannot fail")
	}
}

func TestDiffRejectsBadOfferedFractions(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		cfg := DefaultDiffConfig()
		cfg.OfferedFractions = []float64{0.5, bad}
		if _, err := RunDiff(cfg); err == nil {
			t.Errorf("offered fraction %v should be rejected", bad)
		}
	}
}
