package audit

import (
	"fmt"

	"incastlab/internal/flowsim"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/workload"
)

// CohortDiffConfig parameterizes the aggregation differential gate: the
// same fluid incast solved twice, once with one record per flow
// ("perflow", the reference — bit-identical to the pre-cohort solver) and
// once with cohort aggregation ("cohort", the scale path), point by point
// across the incast degrees and across both topologies the fluid engine
// serves (the paper dumbbell and the leaf/spine Clos fabric).
//
// Unlike the packet<->flow gates, both sides here share one physical
// model, so the contract is tight:
//
//   - Mode classification (flowsim.Classify) must match EXACTLY — cohort
//     aggregation exists so million-flow mode maps cost one run, and a
//     mode flip between representations would poison every such map.
//   - Mean BCT within MeanBCTTol relative (default 0.15). Cohorts
//     integrate a bucketed release schedule (at most cohortBuckets jitter
//     offsets per class instead of one per flow), which shifts burst
//     tails by at most a fraction of the jitter window.
//   - Max BCT within MaxBCTTol relative (default 0.25) — the single
//     worst retry wave is the statistic most sensitive to bucketing.
//   - Peak queue within PeakQueueTol of capacity (default 0.10
//     absolute): both representations must agree whether the queue
//     grazes K, rides near capacity, or overflows.
type CohortDiffConfig struct {
	// Flows lists the dumbbell incast degrees to gate (defaults to the
	// quick Fig-5 operating points: 80, 500, 1400 — one per paper mode).
	Flows []int
	// ClosFlows lists the per-aggregator degrees for the fabric points
	// (defaults to 80 and 500 on the 8x501 ext_clos_crossrack geometry).
	ClosFlows []int
	// Racks and HostsPerRack shape the fabric points (defaults 8, 501).
	Racks, HostsPerRack int
	// BurstDuration, Bursts, Interval shape the workload (defaults 15 ms,
	// 4 bursts with the first discarded, 250 ms spacing).
	BurstDuration sim.Time
	Bursts        int
	Interval      sim.Time
	// Seed drives start jitter and the ECMP hash on both sides.
	Seed uint64

	// Tolerances; zero values take the documented defaults (0.15, 0.25,
	// 0.10).
	MeanBCTTol   float64
	MaxBCTTol    float64
	PeakQueueTol float64

	// Audit additionally runs both sides with per-step conservation
	// checks.
	Audit bool
}

func (c *CohortDiffConfig) fill() {
	if len(c.Flows) == 0 {
		c.Flows = []int{80, 500, 1400}
	}
	if len(c.ClosFlows) == 0 {
		c.ClosFlows = []int{80, 500}
	}
	if c.Racks <= 0 {
		c.Racks = 8
	}
	if c.HostsPerRack <= 0 {
		c.HostsPerRack = 501
	}
	if c.BurstDuration <= 0 {
		c.BurstDuration = 15 * sim.Millisecond
	}
	if c.Bursts <= 0 {
		c.Bursts = 4
	}
	if c.Interval <= 0 {
		c.Interval = 250 * sim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MeanBCTTol <= 0 {
		c.MeanBCTTol = 0.15
	}
	if c.MaxBCTTol <= 0 {
		c.MaxBCTTol = 0.25
	}
	if c.PeakQueueTol <= 0 {
		c.PeakQueueTol = 0.10
	}
}

// CohortDiffPoint carries one operating point's two-representation
// outcome. PerFlow* is the reference side, Cohort* the aggregated side.
type CohortDiffPoint struct {
	// Topology is "dumbbell" or "clos".
	Topology string
	Flows    int

	PerFlowMode, CohortMode       string
	PerFlowMeanBCT, CohortMeanBCT sim.Time
	PerFlowMaxBCT, CohortMaxBCT   sim.Time
	// Peak queue as a fraction of capacity.
	PerFlowPeakQueue, CohortPeakQueue float64
	PerFlowTimeouts, CohortTimeouts   int64

	// Cohorts and Splits report how much the aggregated side compressed:
	// record count at solve time and lazy exact splits forced by
	// divergence.
	Cohorts int
	Splits  int64
}

// CohortDiffResult aggregates the gate across all operating points.
type CohortDiffResult struct {
	Points []CohortDiffPoint
	// Breaches lists every tolerance violation, empty on agreement.
	Breaches []string
}

// RunCohortDiff runs the aggregation differential gate. The returned
// error is non-nil when any point breaches the tolerance contract; the
// result always carries every point for reporting.
func RunCohortDiff(cfg CohortDiffConfig) (*CohortDiffResult, error) {
	cfg.fill()
	res := &CohortDiffResult{}
	breach := func(format string, args ...any) {
		res.Breaches = append(res.Breaches, fmt.Sprintf(format, args...))
	}

	run := func(topology string, n int, solve func(agg string) (*flowsim.Result, error)) error {
		per, err := solve(flowsim.AggregationPerFlow)
		if err != nil {
			return fmt.Errorf("audit: %s perflow side at %d flows: %w", topology, n, err)
		}
		coh, err := solve(flowsim.AggregationCohort)
		if err != nil {
			return fmt.Errorf("audit: %s cohort side at %d flows: %w", topology, n, err)
		}

		capPkts := float64(per.QueueCapacity)
		p := CohortDiffPoint{
			Topology:         topology,
			Flows:            n,
			PerFlowMode:      flowsim.Classify(per.Timeouts, per.FracBelowK),
			CohortMode:       flowsim.Classify(coh.Timeouts, coh.FracBelowK),
			PerFlowMeanBCT:   per.MeanBCT,
			CohortMeanBCT:    coh.MeanBCT,
			PerFlowMaxBCT:    per.MaxBCT,
			CohortMaxBCT:     coh.MaxBCT,
			PerFlowPeakQueue: per.MaxQueue / capPkts,
			CohortPeakQueue:  coh.MaxQueue / capPkts,
			PerFlowTimeouts:  per.Timeouts,
			CohortTimeouts:   coh.Timeouts,
			Cohorts:          coh.Cohorts,
			Splits:           coh.CohortSplits,
		}
		res.Points = append(res.Points, p)

		// Compression is workload-dependent (sparse fabrics can put every
		// flow in its own path x jitter-bucket class), but the record count
		// can never exceed the member count.
		if p.Cohorts > n {
			breach("%s n=%d: cohort side has more records than flows: %d",
				topology, n, p.Cohorts)
		}
		if p.PerFlowMode != p.CohortMode {
			breach("%s n=%d: mode classification diverges: perflow %q vs cohort %q (timeouts %d/%d, fracBelowK %.3f/%.3f)",
				topology, n, p.PerFlowMode, p.CohortMode, p.PerFlowTimeouts, p.CohortTimeouts, per.FracBelowK, coh.FracBelowK)
		}
		if rel := relDiff(float64(p.CohortMeanBCT), float64(p.PerFlowMeanBCT)); rel > cfg.MeanBCTTol {
			breach("%s n=%d: mean BCT: perflow %v vs cohort %v (rel diff %.3f > tol %.3f)",
				topology, n, p.PerFlowMeanBCT, p.CohortMeanBCT, rel, cfg.MeanBCTTol)
		}
		if rel := relDiff(float64(p.CohortMaxBCT), float64(p.PerFlowMaxBCT)); rel > cfg.MaxBCTTol {
			breach("%s n=%d: max BCT: perflow %v vs cohort %v (rel diff %.3f > tol %.3f)",
				topology, n, p.PerFlowMaxBCT, p.CohortMaxBCT, rel, cfg.MaxBCTTol)
		}
		if d := absDiff(p.PerFlowPeakQueue, p.CohortPeakQueue); d > cfg.PeakQueueTol {
			breach("%s n=%d: peak queue: perflow %.3f vs cohort %.3f of capacity (diff %.3f > tol %.3f)",
				topology, n, p.PerFlowPeakQueue, p.CohortPeakQueue, d, cfg.PeakQueueTol)
		}
		return nil
	}

	for _, n := range cfg.Flows {
		n := n
		err := run("dumbbell", n, func(agg string) (*flowsim.Result, error) {
			return flowsim.Run(flowsim.Config{
				Flows:           n,
				SegmentsPerFlow: workload.BytesPerFlowFor(10*netsim.Gbps, cfg.BurstDuration, n) / netsim.MSS,
				Bursts:          cfg.Bursts,
				Interval:        cfg.Interval,
				Seed:            cfg.Seed,
				Aggregation:     agg,
				Check:           cfg.Audit,
			})
		})
		if err != nil {
			return nil, err
		}
	}

	closCfg := netsim.DefaultClosConfig(cfg.Racks, cfg.HostsPerRack)
	closCfg.ECMPSeed = cfg.Seed
	for _, n := range cfg.ClosFlows {
		n := n
		srcs, dsts, err := workload.ClosFlowEndpoints(closCfg, n, 1, workload.PlacementCrossRack)
		if err != nil {
			return nil, fmt.Errorf("audit: clos endpoints at %d flows: %w", n, err)
		}
		net, err := closCfg.FluidPaths(srcs, dsts)
		if err != nil {
			return nil, fmt.Errorf("audit: clos paths at %d flows: %w", n, err)
		}
		err = run("clos", n, func(agg string) (*flowsim.Result, error) {
			return flowsim.RunNetwork(flowsim.NetworkConfig{
				Config: flowsim.Config{
					Flows:           len(srcs),
					SegmentsPerFlow: workload.BytesPerFlowFor(closCfg.HostLinkBps, cfg.BurstDuration, n) / netsim.MSS,
					Bursts:          cfg.Bursts,
					Interval:        cfg.Interval,
					Seed:            cfg.Seed,
					LineRateBps:     closCfg.HostLinkBps,
					CoreRateBps:     closCfg.SpineLinkBps,
					Aggregation:     agg,
					Check:           cfg.Audit,
				},
				Net: net,
			})
		})
		if err != nil {
			return nil, err
		}
	}

	if len(res.Breaches) > 0 {
		msg := fmt.Sprintf("audit: cohort<->perflow aggregation differential check failed with %d breach(es)", len(res.Breaches))
		for _, b := range res.Breaches {
			msg += "\n  " + b
		}
		return res, fmt.Errorf("%s", msg)
	}
	return res, nil
}
