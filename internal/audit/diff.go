package audit

import (
	"fmt"
	"math"

	"incastlab/internal/flowsim"
	"incastlab/internal/netsim"
	"incastlab/internal/rackmodel"
	"incastlab/internal/sim"
)

// DiffConfig parameterizes the three-way differential cross-check: one
// offered-load trace driven through the analytic fluid model
// (internal/rackmodel), the flow-level fast-path queue
// (internal/flowsim), and the packet-level simulator (internal/netsim).
// The packet simulator is the reference; both reduced models must agree
// with it within the stated tolerances, each under the same per-metric
// contract.
//
// Rate-accounting contract: rackmodel thinks in a single byte currency,
// while netsim serializes WireBytes (IP bytes + 38 B Ethernet framing) but
// accounts queues and deliveries in IP bytes. The harness bridges the two
// by running the model at the effective IP-byte drain rate,
//
//	LineRateBps × MTU / (MTU + EthernetOverhead)  (= ×1500/1538),
//
// and expressing every offered/delivered volume in IP bytes. Without this
// correction the model drains ~2.5% faster than the simulator and the
// watermark curves diverge mechanically.
type DiffConfig struct {
	// OfferedFractions is the load trace: interval i offers
	// OfferedFractions[i] × (effective drain) bytes, injected as uniformly
	// spaced MTU packets. Values above 1 build queue; trailing zeros let it
	// drain.
	OfferedFractions []float64
	// Interval is the model interval and sim injection window (default 1 ms,
	// the millisampler granularity).
	Interval sim.Time
	// LineRateBps is the bottleneck line rate (default 10 Gbps).
	LineRateBps int64
	// QueueCapacityPackets is the bottleneck queue capacity (default 1333,
	// the 2 MB ToR port).
	QueueCapacityPackets int
	// ECNThresholdPackets is the marking threshold K (default 65).
	ECNThresholdPackets int

	// Tolerances; zero values take the defaults stated on each field.

	// DeliveredAggTol bounds |sim − model| total delivered bytes, relative
	// to the model total (default 0.02).
	DeliveredAggTol float64
	// ECNAggTol bounds the absolute difference of aggregate mark fractions
	// (marked delivered / delivered) between sim and model (default 0.05).
	ECNAggTol float64
	// ECNIntervalTol bounds the per-interval absolute mark-fraction
	// difference (default 0.5 — deliberately loose: the model marks
	// delivery in the interval the queue is over threshold, while the
	// simulator marks at enqueue and delivers a standing-queue delay
	// later, skewing marked bytes by up to one interval at load edges).
	ECNIntervalTol float64
	// WatermarkIntervalTol bounds the per-interval absolute difference of
	// queue-watermark fractions of capacity (default 0.1).
	WatermarkIntervalTol float64
	// WatermarkPeakTol bounds the absolute difference of whole-trace peak
	// watermark fractions (default 0.05).
	WatermarkPeakTol float64
	// DropTol bounds |sim − model| total dropped bytes relative to total
	// offered bytes (default 0.02).
	DropTol float64

	// Audit attaches an invariant Auditor to the simulator side and fails
	// the diff on any violation.
	Audit bool
}

// DefaultDiffConfig returns the canonical gate trace: ramp to moderate
// load, hold near saturation, overload past line rate (builds a standing
// queue and sustains ECN marking without drops), then back off and fully
// drain over trailing idle intervals.
func DefaultDiffConfig() DiffConfig {
	return DiffConfig{
		OfferedFractions: []float64{
			0.2, 0.2, 0.2,
			0.6, 0.6, 0.6,
			0.95, 0.95,
			1.3, 1.3, 1.3,
			0.8, 0.8,
			0.4, 0.4, 0.4,
			0.1, 0.1,
			0, 0, 0, 0,
		},
		Interval:             sim.Millisecond,
		LineRateBps:          10 * netsim.Gbps,
		QueueCapacityPackets: netsim.DefaultDumbbellConfig(1).QueueCapacityPackets,
		ECNThresholdPackets:  netsim.DefaultDumbbellConfig(1).ECNThresholdPackets,
		Audit:                true,
	}
}

func (c *DiffConfig) fill() {
	if len(c.OfferedFractions) == 0 {
		c.OfferedFractions = DefaultDiffConfig().OfferedFractions
	}
	if c.Interval <= 0 {
		c.Interval = sim.Millisecond
	}
	if c.LineRateBps <= 0 {
		c.LineRateBps = 10 * netsim.Gbps
	}
	if c.QueueCapacityPackets <= 0 {
		c.QueueCapacityPackets = netsim.DefaultDumbbellConfig(1).QueueCapacityPackets
	}
	if c.ECNThresholdPackets <= 0 {
		c.ECNThresholdPackets = netsim.DefaultDumbbellConfig(1).ECNThresholdPackets
	}
	if c.DeliveredAggTol <= 0 {
		c.DeliveredAggTol = 0.02
	}
	if c.ECNAggTol <= 0 {
		c.ECNAggTol = 0.05
	}
	if c.ECNIntervalTol <= 0 {
		c.ECNIntervalTol = 0.5
	}
	if c.WatermarkIntervalTol <= 0 {
		c.WatermarkIntervalTol = 0.1
	}
	if c.WatermarkPeakTol <= 0 {
		c.WatermarkPeakTol = 0.05
	}
	if c.DropTol <= 0 {
		c.DropTol = 0.02
	}
}

// DiffResult carries both sides' curves and the tolerance verdicts.
type DiffResult struct {
	// Offered is the per-interval offered volume in IP bytes (identical
	// input to both sides).
	Offered []float64

	// Sim-side per-interval measurements (IP bytes; watermark as fraction
	// of queue capacity).
	SimDelivered []float64
	SimECNBytes  []float64
	SimWatermark []float64
	// SimDroppedBytes is the whole-run tail-drop volume in IP bytes.
	SimDroppedBytes float64

	// Model-side outputs under the effective-rate correction.
	Model *rackmodel.Result
	// Flow-side outputs from the flowsim open-loop queue trace (same
	// units as the sim side).
	Flow *flowsim.TraceResult

	// Aggregate mark fractions (marked delivered / delivered).
	SimMarkFraction   float64
	ModelMarkFraction float64
	FlowMarkFraction  float64
	// Peak watermark fractions over the whole trace.
	SimPeakWatermark   float64
	ModelPeakWatermark float64
	FlowPeakWatermark  float64

	// Breaches lists every tolerance violation, empty on agreement.
	Breaches []string

	// AuditViolations is the simulator-side invariant violation count when
	// DiffConfig.Audit was set.
	AuditViolations int
}

// RunDiff drives the configured offered-load trace through rackmodel,
// flowsim, and netsim and compares both reduced models against the packet
// simulator. The returned error is non-nil when any tolerance is breached
// or (with cfg.Audit) the invariant auditor found violations; the
// DiffResult always carries the full curves for reporting.
func RunDiff(cfg DiffConfig) (*DiffResult, error) {
	cfg.fill()
	n := len(cfg.OfferedFractions)

	// Effective IP-byte drain per interval: the link serializes
	// MTU+overhead wire bytes per MTU-sized packet.
	effRateBps := float64(cfg.LineRateBps) * float64(netsim.MTU) / float64(netsim.MTU+netsim.EthernetOverhead)
	intervalSec := float64(cfg.Interval) / float64(sim.Second)
	drainPkts := effRateBps / 8 * intervalSec / float64(netsim.MTU)

	offered := make([]float64, n)
	counts := make([]int, n)
	for i, f := range cfg.OfferedFractions {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("audit: offered fraction %v at interval %d must be finite and non-negative", f, i)
		}
		counts[i] = int(math.Round(f * drainPkts))
		offered[i] = float64(counts[i]) * float64(netsim.MTU)
	}

	// --- Simulator side: pool → link → sink host, MTU packets uniformly
	// spaced within each interval.
	eng := sim.NewEngine()
	pool := netsim.NewPacketPool()
	sink := netsim.NewHost(eng, 0, "sink")
	sink.SetPool(pool)
	queue := netsim.NewQueue(netsim.QueueConfig{
		Name:                "diff-bottleneck",
		CapacityPackets:     cfg.QueueCapacityPackets,
		ECNThresholdPackets: cfg.ECNThresholdPackets,
	})
	link := netsim.NewLink(eng, netsim.LinkConfig{
		Name:         "diff-bottleneck",
		BandwidthBps: cfg.LineRateBps,
		Queue:        queue,
		Dst:          sink,
	})
	link.SetPool(pool)

	res := &DiffResult{
		Offered:      offered,
		SimDelivered: make([]float64, n),
		SimECNBytes:  make([]float64, n),
		SimWatermark: make([]float64, n),
	}
	sink.SetOnReceive(func(now sim.Time, p *netsim.Packet) {
		i := int(now / cfg.Interval)
		if i >= n {
			i = n - 1
		}
		res.SimDelivered[i] += float64(p.IPBytes())
		if p.CE {
			res.SimECNBytes[i] += float64(p.IPBytes())
		}
	})
	watermarks := netsim.QueueWatermarkSeries(eng, queue, 0, cfg.Interval, n)

	for i, cnt := range counts {
		if cnt == 0 {
			continue
		}
		gap := cfg.Interval / sim.Time(cnt)
		for j := 0; j < cnt; j++ {
			at := sim.Time(i)*cfg.Interval + sim.Time(j)*gap
			eng.Schedule(at, func() {
				p := pool.Get()
				p.Flow = 1
				p.Src = 1
				p.Dst = 0
				p.Len = netsim.MTU - netsim.HeaderBytes
				p.ECT = true
				link.Send(p)
			})
		}
	}

	var auditor *Auditor
	if cfg.Audit {
		auditor = New(eng, Config{Interval: cfg.Interval, RequireDrained: true})
		auditor.WatchLink(link)
		auditor.WatchHost(sink)
		auditor.WatchPool(pool)
		auditor.SetClosedWorld(true)
		auditor.Start()
	}

	// One extra interval of margin lets in-flight stragglers land before
	// the clamp bucket would otherwise absorb them.
	eng.RunUntil(sim.Time(n+1) * cfg.Interval)
	if auditor != nil {
		auditor.Finish()
		res.AuditViolations = auditor.Total()
	}
	res.SimDroppedBytes = float64(queue.Stats().DroppedBytes)

	capPkts := float64(cfg.QueueCapacityPackets)
	for i := 0; i < n; i++ {
		res.SimWatermark[i] = watermarks.Values[i] / capPkts
		if res.SimWatermark[i] > res.SimPeakWatermark {
			res.SimPeakWatermark = res.SimWatermark[i]
		}
	}

	// --- Model side, at the effective IP-byte rate.
	res.Model = rackmodel.Run(offered, int64(cfg.Interval), rackmodel.Config{
		LineRateBps:          int64(effRateBps),
		QueueCapacityBytes:   capPkts * float64(netsim.MTU),
		ECNThresholdFraction: float64(cfg.ECNThresholdPackets) / capPkts,
		RetxDelayIntervals:   1,
	})
	res.ModelPeakWatermark = res.Model.WatermarkFraction

	// --- Flow side: the flowsim open-loop queue trace, sharing the
	// closed-loop engine's serve/mark/overflow arithmetic.
	flowTrace, ferr := flowsim.RunTrace(flowsim.TraceConfig{
		OfferedPackets:       counts,
		Interval:             cfg.Interval,
		LineRateBps:          cfg.LineRateBps,
		QueueCapacityPackets: cfg.QueueCapacityPackets,
		ECNThresholdPackets:  cfg.ECNThresholdPackets,
	})
	if ferr != nil {
		return nil, fmt.Errorf("audit: flowsim trace: %w", ferr)
	}
	res.Flow = flowTrace
	res.FlowPeakWatermark = flowTrace.PeakWatermark

	// --- Compare both reduced models against the packet simulator, each
	// under the same per-metric tolerance contract.
	breach := func(format string, args ...any) {
		res.Breaches = append(res.Breaches, fmt.Sprintf(format, args...))
	}

	var simTotal, simECN, totalOffered float64
	for i := 0; i < n; i++ {
		simTotal += res.SimDelivered[i]
		simECN += res.SimECNBytes[i]
		totalOffered += offered[i]
	}
	if simTotal > 0 {
		res.SimMarkFraction = simECN / simTotal
	}

	// compareSide checks one reduced model's curves against the simulator.
	// It returns the model's aggregate mark fraction for reporting.
	compareSide := func(name string, delivered, ecn, watermark []float64, droppedBytes, peakWatermark float64) float64 {
		var total, ecnTotal float64
		for i := 0; i < n; i++ {
			total += delivered[i]
			ecnTotal += ecn[i]
		}
		if total > 0 {
			if rel := math.Abs(simTotal-total) / total; rel > cfg.DeliveredAggTol {
				breach("aggregate delivered: sim %.0f vs %s %.0f bytes (rel diff %.4f > tol %.4f)",
					simTotal, name, total, rel, cfg.DeliveredAggTol)
			}
		}
		var markFrac float64
		if total > 0 {
			markFrac = ecnTotal / total
		}
		if d := math.Abs(res.SimMarkFraction - markFrac); d > cfg.ECNAggTol {
			breach("aggregate ECN mark fraction: sim %.4f vs %s %.4f (diff %.4f > tol %.4f)",
				res.SimMarkFraction, name, markFrac, d, cfg.ECNAggTol)
		}
		for i := 0; i < n; i++ {
			var simF, sideF float64
			if res.SimDelivered[i] > 0 {
				simF = res.SimECNBytes[i] / res.SimDelivered[i]
			}
			if delivered[i] > 0 {
				sideF = ecn[i] / delivered[i]
			}
			if d := math.Abs(simF - sideF); d > cfg.ECNIntervalTol {
				breach("interval %d ECN mark fraction: sim %.4f vs %s %.4f (diff %.4f > tol %.4f)",
					i, simF, name, sideF, d, cfg.ECNIntervalTol)
			}
			if d := math.Abs(res.SimWatermark[i] - watermark[i]); d > cfg.WatermarkIntervalTol {
				breach("interval %d queue watermark: sim %.4f vs %s %.4f of capacity (diff %.4f > tol %.4f)",
					i, res.SimWatermark[i], name, watermark[i], d, cfg.WatermarkIntervalTol)
			}
		}
		if d := math.Abs(res.SimPeakWatermark - peakWatermark); d > cfg.WatermarkPeakTol {
			breach("peak queue watermark: sim %.4f vs %s %.4f of capacity (diff %.4f > tol %.4f)",
				res.SimPeakWatermark, name, peakWatermark, d, cfg.WatermarkPeakTol)
		}
		if totalOffered > 0 {
			if rel := math.Abs(res.SimDroppedBytes-droppedBytes) / totalOffered; rel > cfg.DropTol {
				breach("dropped bytes: sim %.0f vs %s %.0f (rel to offered %.4f > tol %.4f)",
					res.SimDroppedBytes, name, droppedBytes, rel, cfg.DropTol)
			}
		}
		return markFrac
	}

	var modelDropped float64
	for i := 0; i < n; i++ {
		modelDropped += res.Model.DroppedBytes[i]
	}
	res.ModelMarkFraction = compareSide("rackmodel",
		res.Model.Delivered, res.Model.ECNBytes, res.Model.QueuePeakFraction,
		modelDropped, res.ModelPeakWatermark)
	res.FlowMarkFraction = compareSide("flowsim",
		flowTrace.Delivered, flowTrace.ECNBytes, flowTrace.Watermark,
		flowTrace.DroppedBytes, res.FlowPeakWatermark)

	var err error
	switch {
	case res.AuditViolations > 0 && auditor != nil:
		err = fmt.Errorf("audit: differential run had %d invariant violation(s): %w", res.AuditViolations, auditor.Err())
	case len(res.Breaches) > 0:
		msg := fmt.Sprintf("audit: rackmodel/flowsim/netsim differential check failed with %d breach(es)", len(res.Breaches))
		for _, b := range res.Breaches {
			msg += "\n  " + b
		}
		err = fmt.Errorf("%s", msg)
	}
	return res, err
}
