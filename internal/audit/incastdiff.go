package audit

import (
	"fmt"
	"math"

	"incastlab/internal/cc"
	"incastlab/internal/flowsim"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
	"incastlab/internal/workload"
)

// IncastDiffConfig parameterizes the closed-loop differential gate: the
// same repeated-burst DCTCP incast run through the packet-level simulator
// (workload + netsim, the reference) and through the flow-level fluid
// engine (internal/flowsim), point by point across the incast degrees.
//
// Tolerance contract, per operating point:
//
//   - Mode classification (flowsim.Classify over timeouts and the
//     below-threshold busy fraction) must match EXACTLY — the fast path
//     exists to answer "which mode is this configuration in" at scale, so
//     a mode flip is a hard failure, not a tolerance question.
//   - Mean BCT agrees within MeanBCTTol relative (default 0.35). The
//     fluid engine has no per-packet serialization jitter, so completion
//     times drift a few tens of percent in timeout-dominated runs where a
//     single RTO boundary moves whole-burst totals.
//   - Max BCT agrees within MaxBCTTol relative (default 0.50) — the
//     noisiest statistic, set by the single worst retry wave.
//   - Peak queue agrees within PeakQueueTol of capacity (default 0.15
//     absolute): both backends must agree whether the queue grazes K,
//     rides near capacity, or overflows.
type IncastDiffConfig struct {
	// Flows lists the incast degrees to gate (defaults to the quick Fig-5
	// operating points: 80, 500, 1400 — one per paper mode).
	Flows []int
	// BurstDuration, Bursts, Interval shape the workload (defaults 15 ms,
	// 4 bursts with the first discarded, 250 ms spacing).
	BurstDuration sim.Time
	Bursts        int
	Interval      sim.Time
	// Seed drives start jitter on both sides.
	Seed uint64

	// MeanBCTTol and MaxBCTTol are relative tolerances on burst completion
	// times; PeakQueueTol is an absolute tolerance on the peak queue as a
	// fraction of capacity. Zero values take the documented defaults.
	MeanBCTTol   float64
	MaxBCTTol    float64
	PeakQueueTol float64

	// Audit additionally runs both sides in checked mode (the packet
	// auditor and flowsim's per-step conservation checks).
	Audit bool
}

func (c *IncastDiffConfig) fill() {
	if len(c.Flows) == 0 {
		c.Flows = []int{80, 500, 1400}
	}
	if c.BurstDuration <= 0 {
		c.BurstDuration = 15 * sim.Millisecond
	}
	if c.Bursts <= 0 {
		c.Bursts = 4
	}
	if c.Interval <= 0 {
		c.Interval = 250 * sim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MeanBCTTol <= 0 {
		c.MeanBCTTol = 0.35
	}
	if c.MaxBCTTol <= 0 {
		c.MaxBCTTol = 0.50
	}
	if c.PeakQueueTol <= 0 {
		c.PeakQueueTol = 0.15
	}
}

// IncastDiffPoint carries one operating point's two-sided outcome.
type IncastDiffPoint struct {
	Flows int

	// Modes under flowsim.Classify.
	PacketMode, FlowMode string

	// Headline statistics from each side.
	PacketMeanBCT, FlowMeanBCT sim.Time
	PacketMaxBCT, FlowMaxBCT   sim.Time
	// Peak queue as a fraction of capacity.
	PacketPeakQueue, FlowPeakQueue float64
	PacketTimeouts, FlowTimeouts   int64
}

// IncastDiffResult aggregates the gate across all operating points.
type IncastDiffResult struct {
	Points []IncastDiffPoint
	// Breaches lists every tolerance violation, empty on agreement.
	Breaches []string
}

// RunIncastDiff runs the closed-loop differential gate. The returned error
// is non-nil when any point breaches the tolerance contract; the result
// always carries every point for reporting.
func RunIncastDiff(cfg IncastDiffConfig) (*IncastDiffResult, error) {
	cfg.fill()
	res := &IncastDiffResult{}
	breach := func(format string, args ...any) {
		res.Breaches = append(res.Breaches, fmt.Sprintf(format, args...))
	}

	for _, n := range cfg.Flows {
		pkt, err := runPacketIncast(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("audit: packet side at %d flows: %w", n, err)
		}
		flow, err := flowsim.Run(flowsim.Config{
			Flows:           n,
			SegmentsPerFlow: workload.BytesPerFlowFor(10*netsim.Gbps, cfg.BurstDuration, n) / netsim.MSS,
			Bursts:          cfg.Bursts,
			Interval:        cfg.Interval,
			Seed:            cfg.Seed,
			Check:           cfg.Audit,
		})
		if err != nil {
			return nil, fmt.Errorf("audit: flow side at %d flows: %w", n, err)
		}

		capPkts := float64(flow.QueueCapacity)
		p := IncastDiffPoint{
			Flows:           n,
			PacketMode:      flowsim.Classify(pkt.timeouts, pkt.fracBelowK),
			FlowMode:        flowsim.Classify(flow.Timeouts, flow.FracBelowK),
			PacketMeanBCT:   pkt.meanBCT,
			FlowMeanBCT:     flow.MeanBCT,
			PacketMaxBCT:    pkt.maxBCT,
			FlowMaxBCT:      flow.MaxBCT,
			PacketPeakQueue: pkt.maxQueue / capPkts,
			FlowPeakQueue:   flow.MaxQueue / capPkts,
			PacketTimeouts:  pkt.timeouts,
			FlowTimeouts:    flow.Timeouts,
		}
		res.Points = append(res.Points, p)

		if p.PacketMode != p.FlowMode {
			breach("n=%d: mode classification diverges: packet %q vs flow %q (timeouts %d/%d, fracBelowK %.3f/%.3f)",
				n, p.PacketMode, p.FlowMode, p.PacketTimeouts, p.FlowTimeouts, pkt.fracBelowK, flow.FracBelowK)
		}
		if rel := relDiff(float64(p.FlowMeanBCT), float64(p.PacketMeanBCT)); rel > cfg.MeanBCTTol {
			breach("n=%d: mean BCT: packet %v vs flow %v (rel diff %.3f > tol %.3f)",
				n, p.PacketMeanBCT, p.FlowMeanBCT, rel, cfg.MeanBCTTol)
		}
		if rel := relDiff(float64(p.FlowMaxBCT), float64(p.PacketMaxBCT)); rel > cfg.MaxBCTTol {
			breach("n=%d: max BCT: packet %v vs flow %v (rel diff %.3f > tol %.3f)",
				n, p.PacketMaxBCT, p.FlowMaxBCT, rel, cfg.MaxBCTTol)
		}
		if d := math.Abs(p.PacketPeakQueue - p.FlowPeakQueue); d > cfg.PeakQueueTol {
			breach("n=%d: peak queue: packet %.3f vs flow %.3f of capacity (diff %.3f > tol %.3f)",
				n, p.PacketPeakQueue, p.FlowPeakQueue, d, cfg.PeakQueueTol)
		}
	}

	if len(res.Breaches) > 0 {
		msg := fmt.Sprintf("audit: flowsim/netsim closed-loop differential check failed with %d breach(es)", len(res.Breaches))
		for _, b := range res.Breaches {
			msg += "\n  " + b
		}
		return res, fmt.Errorf("%s", msg)
	}
	return res, nil
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / b
}

// packetIncastOutcome is the packet side's headline statistics, measured
// the same way internal/core measures them (first burst discarded,
// per-burst queue sampling at 100 us).
type packetIncastOutcome struct {
	meanBCT, maxBCT sim.Time
	maxQueue        float64
	fracBelowK      float64
	timeouts        int64
}

// runPacketIncast runs the reference DCTCP incast directly on workload +
// netsim. It intentionally does not go through internal/core (core imports
// audit), but measures identically: discarded first burst, 100 us queue
// samples over burst duration + 5 ms, counters diffed from the measured
// window's start.
func runPacketIncast(cfg IncastDiffConfig, n int) (*packetIncastOutcome, error) {
	eng := sim.NewEngine()
	net := netsim.DefaultDumbbellConfig(n)
	wl := workload.IncastConfig{
		Flows:        n,
		BytesPerFlow: workload.BytesPerFlowFor(net.HostLinkBps, cfg.BurstDuration, n),
		Bursts:       cfg.Bursts,
		Interval:     cfg.Interval,
		JitterMax:    100 * sim.Microsecond,
		Seed:         cfg.Seed,
	}
	in := workload.NewIncast(eng, net, wl, func(int) cc.Algorithm {
		return cc.NewDCTCP(cc.DefaultDCTCPConfig())
	})

	var auditor *Auditor
	if cfg.Audit {
		auditor = New(eng, Config{RequireDrained: true})
		auditor.WatchDumbbell(in.Network())
		for _, s := range in.Senders() {
			auditor.WatchSender(s)
		}
		auditor.Start()
	}

	q := in.Network().BottleneckQueue()
	sampleInterval := 100 * sim.Microsecond
	samples := int((cfg.BurstDuration + 5*sim.Millisecond) / sampleInterval)
	first := 1
	if cfg.Bursts == 1 {
		first = 0
	}
	var burstSeries []*stats.Series
	for b := first; b < cfg.Bursts; b++ {
		start := sim.Time(b) * cfg.Interval
		burstSeries = append(burstSeries,
			netsim.QueueDepthSeries(eng, q, start, sampleInterval, samples))
	}

	var baseTimeouts int64
	eng.Schedule(sim.Time(first)*cfg.Interval, func() {
		baseTimeouts = in.AggregateSenderStats().Timeouts
	})

	deadline := sim.Time(cfg.Bursts)*cfg.Interval + 10*sim.Second
	eng.RunUntil(deadline)
	if !in.Done() {
		return nil, fmt.Errorf("incast with %d flows did not complete by %v", n, deadline)
	}
	if auditor != nil {
		auditor.Finish()
		if err := auditor.Err(); err != nil {
			return nil, fmt.Errorf("invariant audit: %w", err)
		}
	}

	out := &packetIncastOutcome{}
	var busy, belowK int
	for _, bs := range burstSeries {
		for _, v := range bs.Values {
			if v > out.maxQueue {
				out.maxQueue = v
			}
			if v > 0 {
				busy++
				if v < float64(net.ECNThresholdPackets) {
					belowK++
				}
			}
		}
	}
	if busy > 0 {
		out.fracBelowK = float64(belowK) / float64(busy)
	}

	var bctSum sim.Time
	measured := 0
	for _, b := range in.Bursts()[first:] {
		bctSum += b.BCT
		if b.BCT > out.maxBCT {
			out.maxBCT = b.BCT
		}
		measured++
	}
	out.meanBCT = bctSum / sim.Time(measured)
	out.timeouts = in.AggregateSenderStats().Timeouts - baseTimeouts
	return out, nil
}
