package audit

import (
	"strings"
	"testing"
)

// TestCohortDifferentialGate is the aggregation gate at the quick Fig-5
// dumbbell points (80, 500, 1400 — one per paper mode) plus the
// ext_clos_crossrack fabric points (80, 500), cohort vs perflow, with
// both sides' conservation checks on. Any tolerance breach is a failure
// with the full breach list in the error; a mode flip between flow
// representations is always a breach.
func TestCohortDifferentialGate(t *testing.T) {
	res, err := RunCohortDiff(CohortDiffConfig{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("gate covered %d points, want 5 (3 dumbbell + 2 clos)", len(res.Points))
	}
	wantModes := map[int]string{80: "1 (healthy)", 500: "2 (degenerate)", 1400: "3 (timeouts)"}
	for _, p := range res.Points {
		if want := wantModes[p.Flows]; p.PerFlowMode != want || p.CohortMode != want {
			t.Errorf("%s n=%d: modes perflow %q / cohort %q, want %q on both sides",
				p.Topology, p.Flows, p.PerFlowMode, p.CohortMode, want)
		}
		if p.Cohorts <= 0 {
			t.Errorf("%s n=%d: cohort side reports %d cohorts", p.Topology, p.Flows, p.Cohorts)
		}
		// The dense dumbbell point is where aggregation pays: 1400 flows
		// share one queue path, so the record count is bounded by the
		// jitter buckets plus divergence splits — far below the degree.
		if p.Topology == "dumbbell" && p.Flows == 1400 && p.Cohorts >= p.Flows/4 {
			t.Errorf("dumbbell n=1400: weak compression: %d cohorts (splits %d)", p.Cohorts, p.Splits)
		}
	}
}

// TestCohortDiffReportsBreaches pins the breach formatting: tolerances so
// tight agreement is impossible must produce an error naming the
// topology, the degree, and the statistic.
func TestCohortDiffReportsBreaches(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, err := RunCohortDiff(CohortDiffConfig{
		Flows:      []int{1400},
		ClosFlows:  []int{80},
		MeanBCTTol: 1e-12,
		MaxBCTTol:  1e-12,
	})
	if err == nil {
		t.Fatal("near-zero tolerances produced no breach")
	}
	for _, want := range []string{"n=1400", "mean BCT"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("breach report missing %q: %v", want, err)
		}
	}
}
