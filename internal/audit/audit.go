// Package audit is incastlab's runtime invariant auditor: a checked mode
// for the packet-level simulator that enforces, per event and per audit
// interval, the bookkeeping identities the paper's conclusions depend on:
//
//   - event-clock monotonicity (virtual time never runs backwards);
//   - queue occupancy within [0, capacity] in both packets and bytes, on
//     every occupancy change;
//   - byte conservation across the topology: every payload byte a sender
//     transmitted is delivered, queued, in flight, or dropped — nothing
//     appears or vanishes;
//   - packet conservation: pool-owned packets outstanding equal packets
//     residing in queues and on links;
//   - packet-pool hygiene: no packet is referenced after release and no
//     packet is released twice (use-after-free/double-free detection for
//     the free lists the zero-alloc hot path introduced);
//   - congestion-control protocol bounds for every cc variant: windows in
//     [MinWindow, MaxWindow], ssthresh sane, DCTCP's alpha in [0, 1],
//     Guardrail's clamp respected, pacing gaps non-negative.
//
// The auditor attaches to an engine and the objects to watch, then runs a
// periodic, read-only sweep inside the event loop. Audited runs produce
// bit-identical results to unaudited runs: the sweep never mutates
// simulation state, only observes it.
//
// The companion differential harness (diff.go) drives one offered-load
// trace through both internal/rackmodel (analytic fluid model) and
// internal/netsim (packet level) and asserts the two agree within stated
// tolerances; ci.sh runs it as a standing cross-validation gate.
package audit

import (
	"fmt"
	"math"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
)

// Config tunes an Auditor.
type Config struct {
	// Interval is the spacing of periodic invariant sweeps (default 1 ms).
	Interval sim.Time
	// MaxViolations bounds the recorded violation details; further
	// violations are counted but not stored (default 32).
	MaxViolations int
	// RequireDrained extends Finish with end-state checks: every watched
	// queue empty, every link idle, and zero pool-owned packets
	// outstanding. Enable it when the workload is known to complete before
	// Finish is called (the experiment runners do).
	RequireDrained bool
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = sim.Millisecond
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 32
	}
}

// Violation is one recorded invariant breach.
type Violation struct {
	// At is the virtual time of detection.
	At sim.Time
	// Rule names the invariant: "clock", "queue", "conservation", "pool",
	// "cc", "sender", "drained".
	Rule string
	// Detail is a human-readable description.
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.At, v.Rule, v.Detail)
}

// packet lifecycle states tracked independently of the pool's own flag.
const (
	pktLive = iota + 1
	pktFree
)

// Auditor watches one engine and a set of simulation objects. Zero
// violations after a run is the checked-mode pass criterion.
type Auditor struct {
	eng *sim.Engine
	cfg Config

	queues  []*netsim.Queue
	links   []*netsim.Link
	hosts   []*netsim.Host
	senders []*tcp.Sender
	algs    []watchedAlg
	pool    *netsim.PacketPool

	// closed declares the watched set a closed world: every packet in the
	// network comes from the watched pool and every endpoint/queue/link is
	// watched, so the conservation identities must hold exactly.
	closed bool

	// pktState shadows the pool's live/free bookkeeping so that double
	// releases (which the pool's own flag silently absorbs) are detected.
	pktState map[*netsim.Packet]int8

	violations []Violation
	total      int

	lastEventAt sim.Time
	events      uint64
	sweeps      int
	started     bool
	sweepFn     func()
}

type watchedAlg struct {
	name string
	alg  cc.Algorithm
}

// New creates an auditor bound to eng. Call Watch* methods to register
// objects, then Start before running the engine and Finish after.
func New(eng *sim.Engine, cfg Config) *Auditor {
	cfg.fill()
	return &Auditor{
		eng:      eng,
		cfg:      cfg,
		pktState: make(map[*netsim.Packet]int8),
	}
}

// violatef records one violation, keeping details up to MaxViolations.
func (a *Auditor) violatef(rule, format string, args ...any) {
	a.total++
	if len(a.violations) < a.cfg.MaxViolations {
		a.violations = append(a.violations, Violation{
			At:     a.eng.Now(),
			Rule:   rule,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// Violations returns the recorded violation details (capped at
// Config.MaxViolations; Total reports the full count).
func (a *Auditor) Violations() []Violation { return a.violations }

// Total returns the number of violations detected, including ones whose
// details were dropped by the cap.
func (a *Auditor) Total() int { return a.total }

// Sweeps returns how many periodic sweeps have run.
func (a *Auditor) Sweeps() int { return a.sweeps }

// EventsObserved returns how many engine events the clock check saw.
func (a *Auditor) EventsObserved() uint64 { return a.events }

// Err returns nil when no invariant was violated, else an error summarizing
// the violations.
func (a *Auditor) Err() error {
	if a.total == 0 {
		return nil
	}
	msg := fmt.Sprintf("audit: %d invariant violation(s)", a.total)
	for _, v := range a.violations {
		msg += "\n  " + v.String()
	}
	if a.total > len(a.violations) {
		msg += fmt.Sprintf("\n  ... and %d more", a.total-len(a.violations))
	}
	return fmt.Errorf("%s", msg)
}

// WatchQueue registers q for per-change occupancy-bound checks and sweep
// -time consistency checks. The existing occupancy observer, if any, keeps
// firing (the auditor chains to it).
func (a *Auditor) WatchQueue(q *netsim.Queue) {
	a.queues = append(a.queues, q)
	prev := q.OnChange()
	q.SetOnChange(func(now sim.Time, packets, bytes int) {
		if prev != nil {
			prev(now, packets, bytes)
		}
		a.checkOccupancy(q, packets, bytes)
	})
}

// WatchLink registers l (and its egress queue) for in-flight enumeration in
// the conservation and liveness sweeps.
func (a *Auditor) WatchLink(l *netsim.Link) {
	a.links = append(a.links, l)
	a.WatchQueue(l.Queue())
}

// WatchHost registers h as a delivery endpoint for byte conservation.
func (a *Auditor) WatchHost(h *netsim.Host) {
	a.hosts = append(a.hosts, h)
}

// WatchSender registers a transport sender: its counters feed the byte
// -conservation identity and its congestion-control algorithm is bound
// -checked every sweep.
func (a *Auditor) WatchSender(s *tcp.Sender) {
	a.senders = append(a.senders, s)
	a.WatchAlgorithm(fmt.Sprintf("flow-%d", s.Flow()), s.Algorithm())
}

// WatchAlgorithm registers a congestion-control instance for protocol-bound
// checks under the given label.
func (a *Auditor) WatchAlgorithm(name string, alg cc.Algorithm) {
	a.algs = append(a.algs, watchedAlg{name: name, alg: alg})
}

// WatchPool registers the packet pool for lifecycle tracking. One pool per
// auditor: the conservation identity relates a single pool to the watched
// queues and links.
func (a *Auditor) WatchPool(pp *netsim.PacketPool) {
	if a.pool != nil {
		panic("audit: auditor already watches a pool")
	}
	a.pool = pp
	pp.SetObserver(a)
}

// SetClosedWorld declares that the watched objects form the complete
// network: every packet comes from the watched pool and every queue, link,
// and endpoint is registered. Conservation identities are only enforced in
// a closed world (a partial watch cannot account for all bytes).
func (a *Auditor) SetClosedWorld(closed bool) { a.closed = closed }

// WatchDumbbell registers the whole dumbbell — every link (with its queue),
// every host, and the packet pool — and declares the world closed.
func (a *Auditor) WatchDumbbell(d *netsim.Dumbbell) {
	for _, l := range d.AllLinks() {
		a.WatchLink(l)
	}
	a.WatchHost(d.Receiver)
	for _, h := range d.Senders {
		a.WatchHost(h)
	}
	a.WatchPool(d.Pool)
	a.SetClosedWorld(true)
}

// WatchRack registers the whole rack topology and declares the world
// closed.
func (a *Auditor) WatchRack(r *netsim.Rack) {
	for _, l := range r.AllLinks() {
		a.WatchLink(l)
	}
	for _, h := range r.Receivers {
		a.WatchHost(h)
	}
	for _, h := range r.Senders {
		a.WatchHost(h)
	}
	a.WatchPool(r.Pool)
	a.SetClosedWorld(true)
}

// WatchClos registers the whole leaf/spine fabric — every link of every
// switch tier, every host, and the packet pool — and declares the world
// closed, so conservation holds per-switch across the fabric, not just at
// one bottleneck.
func (a *Auditor) WatchClos(c *netsim.Clos) {
	for _, l := range c.AllLinks() {
		a.WatchLink(l)
	}
	for _, h := range c.Hosts {
		a.WatchHost(h)
	}
	a.WatchPool(c.Pool)
	a.SetClosedWorld(true)
}

// OnGet implements netsim.PoolObserver: a packet leaving the pool must not
// still be live somewhere.
func (a *Auditor) OnGet(p *netsim.Packet) {
	if a.pktState[p] == pktLive {
		a.violatef("pool", "pool handed out a packet that is still live (%s)", p)
	}
	a.pktState[p] = pktLive
}

// OnPut implements netsim.PoolObserver. A Put of a packet the pool no
// longer owns is a double release when the auditor has seen that packet
// before; foreign (never-pooled) packets are ignored.
func (a *Auditor) OnPut(p *netsim.Packet, pooled bool) {
	if pooled {
		a.pktState[p] = pktFree
		return
	}
	if a.pktState[p] == pktFree {
		a.violatef("pool", "double release of packet (%s)", p)
	}
}

// Start installs the per-event clock check and schedules the periodic
// sweep. Call it after registering watches and before running the engine.
func (a *Auditor) Start() {
	if a.started {
		return
	}
	a.started = true
	a.lastEventAt = a.eng.Now()
	a.eng.SetOnEvent(a.onEvent)
	a.sweepFn = a.sweep
	a.eng.ScheduleAfter(a.cfg.Interval, a.sweepFn)
}

// onEvent checks clock monotonicity on every engine event.
func (a *Auditor) onEvent(at sim.Time) {
	a.events++
	if at < a.lastEventAt {
		a.violatef("clock", "event at %v runs after event at %v", at, a.lastEventAt)
	}
	a.lastEventAt = at
}

// sweep runs the interval checks and re-arms itself while the simulation
// still has events. The chain ends when the event queue drains, so engines
// run with Engine.Run (which stops on an empty queue) still terminate.
func (a *Auditor) sweep() {
	a.runChecks()
	if a.eng.Pending() > 0 {
		a.eng.ScheduleAfter(a.cfg.Interval, a.sweepFn)
	}
}

// Finish runs one final sweep at the current time and, when configured,
// the end-state drained checks. Call it after the engine run completes,
// then consult Err.
func (a *Auditor) Finish() {
	a.runChecks()
	if a.cfg.RequireDrained {
		a.checkDrained()
	}
}

// runChecks performs one full read-only audit of the watched objects.
func (a *Auditor) runChecks() {
	a.sweeps++
	now := a.eng.Now()
	if now < a.lastEventAt {
		a.violatef("clock", "sweep time %v before last event %v", now, a.lastEventAt)
	}

	// Walk queues and links once, accumulating payload bytes and packet
	// counts for conservation while checking liveness and accounting.
	var queuedPayload, inflightPayload int64
	var residingPackets int64
	for _, q := range a.queues {
		a.checkOccupancy(q, q.LenPackets(), q.LenBytes())
		var bytes int64
		n := 0
		q.ForEachPacket(func(p *netsim.Packet) {
			a.checkLive(p, "queued in "+q.Name())
			bytes += int64(p.IPBytes())
			queuedPayload += int64(p.Len)
			n++
		})
		if n != q.LenPackets() || bytes != int64(q.LenBytes()) {
			a.violatef("queue", "queue %q accounting mismatch: contents %d pkts/%d bytes, counters %d pkts/%d bytes",
				q.Name(), n, bytes, q.LenPackets(), q.LenBytes())
		}
		residingPackets += int64(n)
	}
	for _, l := range a.links {
		n := 0
		l.ForEachInFlight(func(p *netsim.Packet) {
			a.checkLive(p, "in flight on "+l.Name())
			inflightPayload += int64(p.Len)
			n++
		})
		if n != l.InFlightPackets() {
			a.violatef("conservation", "link %q in-flight accounting mismatch: walked %d, counter %d",
				l.Name(), n, l.InFlightPackets())
		}
		residingPackets += int64(n)
	}

	if a.closed {
		a.checkConservation(queuedPayload, inflightPayload, residingPackets)
	}
	a.checkSenders()
	a.checkAlgorithms()
}

// checkOccupancy enforces queue occupancy bounds.
func (a *Auditor) checkOccupancy(q *netsim.Queue, packets, bytes int) {
	if packets < 0 || bytes < 0 {
		a.violatef("queue", "queue %q negative occupancy: %d pkts / %d bytes", q.Name(), packets, bytes)
	}
	if cap := q.CapacityPackets(); cap > 0 && packets > cap {
		a.violatef("queue", "queue %q occupancy %d pkts exceeds capacity %d", q.Name(), packets, cap)
	}
	if cap := q.CapacityBytes(); cap > 0 && bytes > cap {
		a.violatef("queue", "queue %q occupancy %d bytes exceeds capacity %d", q.Name(), bytes, cap)
	}
}

// checkLive flags packets referenced by the network after being released to
// the pool.
func (a *Auditor) checkLive(p *netsim.Packet, where string) {
	if a.pktState[p] == pktFree {
		a.violatef("pool", "packet referenced after release: %s (%s)", where, p)
	}
}

// checkConservation enforces the closed-world identities at the current
// event boundary:
//
//	packets: pool outstanding == packets residing in queues and on links
//	payload: sent == delivered + queued + in flight + dropped
//
// All terms are exact integers; the identities hold at every event boundary
// because transmission counters and packet movements update within the same
// event.
func (a *Auditor) checkConservation(queuedPayload, inflightPayload, residingPackets int64) {
	if a.pool != nil {
		if out := a.pool.Outstanding(); out != residingPackets {
			a.violatef("conservation", "pool outstanding %d packets but %d residing in queues/links", out, residingPackets)
		}
	}
	if len(a.senders) == 0 || len(a.hosts) == 0 {
		return
	}
	var sent int64
	for _, s := range a.senders {
		sent += s.Stats().SentBytes
	}
	var delivered int64
	for _, h := range a.hosts {
		delivered += h.RxBytes() - int64(netsim.HeaderBytes)*h.RxPackets()
	}
	var dropped int64
	for _, q := range a.queues {
		st := q.Stats()
		dropped += st.DroppedBytes - int64(netsim.HeaderBytes)*st.DroppedPackets
	}
	if accounted := delivered + queuedPayload + inflightPayload + dropped; accounted != sent {
		a.violatef("conservation",
			"payload bytes not conserved: sent %d != delivered %d + queued %d + in-flight %d + dropped %d (= %d, off by %d)",
			sent, delivered, queuedPayload, inflightPayload, dropped, accounted, sent-accounted)
	}
}

// checkSenders enforces transport sequence-space sanity.
func (a *Auditor) checkSenders() {
	for _, s := range a.senders {
		if s.InFlight() < 0 {
			a.violatef("sender", "flow %d negative in-flight %d", s.Flow(), s.InFlight())
		}
		if acked := s.Acked(); acked < 0 || acked > s.Demand() {
			a.violatef("sender", "flow %d acked %d outside [0, demand %d]", s.Flow(), acked, s.Demand())
		}
	}
}

// checkAlgorithms enforces congestion-control protocol bounds.
func (a *Auditor) checkAlgorithms() {
	for _, wa := range a.algs {
		w := wa.alg.Window()
		if w < cc.MinWindow || w > cc.MaxWindow {
			a.violatef("cc", "%s (%s) window %d outside [%d, %d]",
				wa.name, wa.alg.Name(), w, cc.MinWindow, cc.MaxWindow)
		}
		if gap := wa.alg.PacingGap(); gap < 0 {
			a.violatef("cc", "%s (%s) negative pacing gap %v", wa.name, wa.alg.Name(), gap)
		}
		in, ok := wa.alg.(cc.Inspectable)
		if !ok {
			continue
		}
		p := in.Probe()
		if p.HasSsthresh && (p.SsthreshBytes < cc.MinWindow || p.SsthreshBytes > cc.MaxWindow) {
			a.violatef("cc", "%s (%s) ssthresh %d outside [%d, %d]",
				wa.name, wa.alg.Name(), p.SsthreshBytes, cc.MinWindow, cc.MaxWindow)
		}
		if p.HasAlpha && (math.IsNaN(p.Alpha) || p.Alpha < 0 || p.Alpha > 1) {
			a.violatef("cc", "%s (%s) alpha %v outside [0, 1]", wa.name, wa.alg.Name(), p.Alpha)
		}
		if p.HasFractionalWindow &&
			(math.IsNaN(p.FractionalWindowBytes) || math.IsInf(p.FractionalWindowBytes, 0) ||
				p.FractionalWindowBytes <= 0) {
			a.violatef("cc", "%s (%s) fractional window %v not positive and finite",
				wa.name, wa.alg.Name(), p.FractionalWindowBytes)
		}
		if p.CapBytes > 0 && w > p.CapBytes {
			a.violatef("cc", "%s (%s) window %d exceeds clamp %d", wa.name, wa.alg.Name(), w, p.CapBytes)
		}
	}
}

// checkDrained asserts the end state of a completed workload: empty queues,
// idle links, and no pool-owned packets outstanding. This is the check that
// catches dropped-packet leaks deterministically — a leaked packet shows up
// as nonzero outstanding after everything else drained.
func (a *Auditor) checkDrained() {
	for _, q := range a.queues {
		if q.LenPackets() != 0 || q.LenBytes() != 0 {
			a.violatef("drained", "queue %q not empty at finish: %d pkts / %d bytes",
				q.Name(), q.LenPackets(), q.LenBytes())
		}
	}
	for _, l := range a.links {
		if l.InFlightPackets() != 0 {
			a.violatef("drained", "link %q still has %d packets in flight at finish",
				l.Name(), l.InFlightPackets())
		}
	}
	if a.pool != nil {
		if out := a.pool.Outstanding(); out != 0 {
			a.violatef("drained", "%d pool-owned packets still outstanding at finish (leak)", out)
		}
	}
}
