package audit

import (
	"strings"
	"testing"
)

// TestIncastDifferentialGate is the standing closed-loop cross-validation
// gate ci.sh runs: the quick Fig-5 operating points (one per paper mode)
// run through both the packet simulator and the flow-level fluid engine,
// with mode classification required to match exactly and completion
// times/peak queues within the documented tolerance contract. Both sides
// run fully checked (invariant auditor / per-step conservation).
func TestIncastDifferentialGate(t *testing.T) {
	res, err := RunIncastDiff(IncastDiffConfig{Audit: true})
	for _, p := range res.Points {
		t.Logf("n=%d: packet[%s meanBCT=%v peakQ=%.3f] flow[%s meanBCT=%v peakQ=%.3f]",
			p.Flows, p.PacketMode, p.PacketMeanBCT, p.PacketPeakQueue,
			p.FlowMode, p.FlowMeanBCT, p.FlowPeakQueue)
	}
	if err != nil {
		t.Fatalf("closed-loop differential check failed:\n%v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("expected 3 operating points, got %d", len(res.Points))
	}
	// The gate must actually exercise all three modes.
	wantModes := []string{"1 (healthy)", "2 (degenerate)", "3 (timeouts)"}
	for i, p := range res.Points {
		if p.PacketMode != wantModes[i] {
			t.Errorf("point %d (n=%d): packet mode %q, want %q — the gate no longer spans the taxonomy",
				i, p.Flows, p.PacketMode, wantModes[i])
		}
	}
}

// TestIncastDiffDetectsDivergence sanity-checks the closed-loop comparator:
// impossibly tight tolerances must breach, proving the gate can fail.
func TestIncastDiffDetectsDivergence(t *testing.T) {
	_, err := RunIncastDiff(IncastDiffConfig{
		Flows:        []int{80},
		MeanBCTTol:   1e-12,
		MaxBCTTol:    1e-12,
		PeakQueueTol: 1e-12,
	})
	if err == nil {
		t.Fatal("near-zero tolerances should breach; the comparator cannot fail")
	}
	if !strings.Contains(err.Error(), "BCT") {
		t.Errorf("breach message does not name the offending metric: %v", err)
	}
}
