package audit

import (
	"strings"
	"testing"
)

// TestClosDifferentialGate is the fabric closed-loop gate at the
// ext_clos_crossrack operating points: cross-rack placement on the 8-rack,
// 501-host fabric at N=80 (Mode 1) and N=500 (Mode 2), packet vs flow,
// with both sides' invariant checking on. Any tolerance breach is a
// failure with the full breach list in the error.
func TestClosDifferentialGate(t *testing.T) {
	res, err := RunClosDiff(ClosDiffConfig{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("gate covered %d points, want 2", len(res.Points))
	}
	wantModes := map[int]string{80: "1 (healthy)", 500: "2 (degenerate)"}
	for _, p := range res.Points {
		if want := wantModes[p.Flows]; p.PacketMode != want || p.FlowMode != want {
			t.Errorf("n=%d: modes packet %q / flow %q, want %q on both sides",
				p.Flows, p.PacketMode, p.FlowMode, want)
		}
	}
}

// TestClosDifferentialGateSameRack pins the placement control: same-rack
// workers never cross a spine, so the fluid side collapses to the trivial
// one-queue instance and must still track the packet fabric.
func TestClosDifferentialGateSameRack(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := RunClosDiff(ClosDiffConfig{
		Placement: "same-rack",
		Flows:     []int{80},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestClosDifferentialGateMultiAggregator runs two concurrent incasts over
// the fabric — aggregators at racks 0 and 1, workers interleaved over the
// remaining racks — and holds packet vs flow to the same contract.
func TestClosDifferentialGateMultiAggregator(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := RunClosDiff(ClosDiffConfig{
		Aggregators: 2,
		Flows:       []int{80},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestClosDiffReportsBreaches forces a breach with an absurd tolerance
// floor by shrinking the fabric until modes flip... instead, simplest: a
// negative check that the breach formatting machinery reports the flows
// degree. Run an operating point with tolerances so tight agreement is
// impossible, and require the error to name the degree and the statistic.
func TestClosDiffReportsBreaches(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, err := RunClosDiff(ClosDiffConfig{
		Flows:      []int{80},
		MeanBCTTol: 1e-9,
		MaxBCTTol:  1e-9,
	})
	if err == nil {
		t.Fatal("near-zero tolerances produced no breach")
	}
	if !strings.Contains(err.Error(), "n=80") || !strings.Contains(err.Error(), "mean BCT") {
		t.Errorf("breach report missing context: %v", err)
	}
}
