package audit

import (
	"strings"
	"testing"

	"incastlab/internal/cc"
	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/tcp"
	"incastlab/internal/workload"
)

// runAuditedIncast drives a small incast workload end to end with a full
// -coverage auditor attached and returns the auditor.
func runAuditedIncast(t *testing.T, flows, bursts int) *Auditor {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.DefaultDumbbellConfig(flows)
	wl := workload.IncastConfig{
		Flows:          flows,
		BytesPerFlow:   workload.BytesPerFlowFor(net.HostLinkBps, 2*sim.Millisecond, flows),
		Bursts:         bursts,
		Interval:       10 * sim.Millisecond,
		JitterMax:      100 * sim.Microsecond,
		Seed:           1,
		SenderConfig:   tcp.DefaultSenderConfig(),
		ReceiverConfig: tcp.DefaultReceiverConfig(),
	}
	in := workload.NewIncast(eng, net, wl,
		func(int) cc.Algorithm { return cc.NewDCTCP(cc.DefaultDCTCPConfig()) })

	a := New(eng, Config{RequireDrained: true})
	a.WatchDumbbell(in.Network())
	for _, s := range in.Senders() {
		a.WatchSender(s)
	}
	a.Start()

	eng.RunUntil(sim.Time(bursts)*wl.Interval + 5*sim.Second)
	if !in.Done() {
		t.Fatal("incast did not complete")
	}
	a.Finish()
	return a
}

func TestCleanIncastRunHasZeroViolations(t *testing.T) {
	a := runAuditedIncast(t, 20, 3)
	if err := a.Err(); err != nil {
		t.Fatalf("clean run produced violations:\n%v", err)
	}
	if a.Sweeps() < 10 {
		t.Errorf("expected many sweeps over a 30 ms run, got %d", a.Sweeps())
	}
	if a.EventsObserved() == 0 {
		t.Error("clock observer saw no events")
	}
}

func TestAuditedRunIsBitIdenticalToUnaudited(t *testing.T) {
	run := func(audit bool) netsim.QueueStats {
		eng := sim.NewEngine()
		net := netsim.DefaultDumbbellConfig(10)
		wl := workload.IncastConfig{
			Flows:          10,
			BytesPerFlow:   workload.BytesPerFlowFor(net.HostLinkBps, 1*sim.Millisecond, 10),
			Bursts:         2,
			Interval:       5 * sim.Millisecond,
			JitterMax:      100 * sim.Microsecond,
			Seed:           7,
			SenderConfig:   tcp.DefaultSenderConfig(),
			ReceiverConfig: tcp.DefaultReceiverConfig(),
		}
		in := workload.NewIncast(eng, net, wl,
			func(int) cc.Algorithm { return cc.NewDCTCP(cc.DefaultDCTCPConfig()) })
		var a *Auditor
		if audit {
			a = New(eng, Config{RequireDrained: true})
			a.WatchDumbbell(in.Network())
			for _, s := range in.Senders() {
				a.WatchSender(s)
			}
			a.Start()
		}
		eng.RunUntil(2*5*sim.Millisecond + 5*sim.Second)
		if !in.Done() {
			t.Fatal("incast did not complete")
		}
		if a != nil {
			a.Finish()
			if err := a.Err(); err != nil {
				t.Fatalf("audited run produced violations:\n%v", err)
			}
		}
		return in.Network().BottleneckQueue().Stats()
	}
	if plain, audited := run(false), run(true); plain != audited {
		t.Fatalf("audit observer changed the simulation:\nplain:   %+v\naudited: %+v", plain, audited)
	}
}

func TestDetectsDoubleRelease(t *testing.T) {
	eng := sim.NewEngine()
	pool := netsim.NewPacketPool()
	a := New(eng, Config{})
	a.WatchPool(pool)

	p := pool.Get()
	pool.Put(p)
	pool.Put(p) // double release

	if a.Total() != 1 {
		t.Fatalf("violations = %d, want 1", a.Total())
	}
	if v := a.Violations()[0]; v.Rule != "pool" || !strings.Contains(v.Detail, "double release") {
		t.Fatalf("unexpected violation: %v", v)
	}
}

func TestDetectsUseAfterRelease(t *testing.T) {
	eng := sim.NewEngine()
	pool := netsim.NewPacketPool()
	sink := netsim.NewHost(eng, 0, "sink")
	q := netsim.NewQueue(netsim.QueueConfig{Name: "q"})
	_ = netsim.NewLink(eng, netsim.LinkConfig{
		Name: "l", BandwidthBps: netsim.Gbps, Queue: q, Dst: sink,
	})

	a := New(eng, Config{})
	a.WatchQueue(q)
	a.WatchPool(pool)
	a.Start()

	p := pool.Get()
	p.Dst = 0
	p.Len = 100
	q.Enqueue(0, p)
	pool.Put(p) // released while still queued

	a.Finish()
	found := false
	for _, v := range a.Violations() {
		if v.Rule == "pool" && strings.Contains(v.Detail, "referenced after release") {
			found = true
		}
	}
	if !found {
		t.Fatalf("use-after-release not detected; violations: %v", a.Violations())
	}
}

func TestDetectsConservationBreach(t *testing.T) {
	eng := sim.NewEngine()
	pool := netsim.NewPacketPool()
	sink := netsim.NewHost(eng, 0, "sink")
	sink.SetPool(pool)
	q := netsim.NewQueue(netsim.QueueConfig{Name: "q"})
	l := netsim.NewLink(eng, netsim.LinkConfig{
		Name: "l", BandwidthBps: netsim.Gbps, Queue: q, Dst: sink,
	})
	l.SetPool(pool)

	a := New(eng, Config{})
	a.WatchLink(l)
	a.WatchHost(sink)
	a.WatchPool(pool)
	a.SetClosedWorld(true)
	a.Start()

	// A pool packet that never enters the network: outstanding != residing.
	leaked := pool.Get()
	_ = leaked

	a.Finish()
	found := false
	for _, v := range a.Violations() {
		if v.Rule == "conservation" && strings.Contains(v.Detail, "outstanding") {
			found = true
		}
	}
	if !found {
		t.Fatalf("conservation breach not detected; violations: %v", a.Violations())
	}
}

// brokenAlg reports an out-of-bounds window and a negative pacing gap.
type brokenAlg struct{}

func (brokenAlg) Name() string        { return "broken" }
func (brokenAlg) OnAck(cc.Ack)        {}
func (brokenAlg) OnLoss(sim.Time)     {}
func (brokenAlg) OnTimeout(sim.Time)  {}
func (brokenAlg) Window() int         { return 0 }
func (brokenAlg) PacingGap() sim.Time { return -1 }

func TestDetectsProtocolBoundViolations(t *testing.T) {
	eng := sim.NewEngine()
	a := New(eng, Config{})
	a.WatchAlgorithm("broken", brokenAlg{})
	a.Finish()
	if a.Total() != 2 {
		t.Fatalf("violations = %d, want 2 (window + pacing gap); got: %v", a.Total(), a.Violations())
	}
	for _, v := range a.Violations() {
		if v.Rule != "cc" {
			t.Errorf("unexpected rule %q: %v", v.Rule, v)
		}
	}
}

func TestHealthyAlgorithmsPassBoundChecks(t *testing.T) {
	eng := sim.NewEngine()
	a := New(eng, Config{})
	baseRTT := 30 * sim.Microsecond
	dctcp := cc.NewDCTCP(cc.DefaultDCTCPConfig())
	a.WatchAlgorithm("reno", cc.NewReno(10*netsim.MSS))
	a.WatchAlgorithm("dctcp", cc.NewDCTCP(cc.DefaultDCTCPConfig()))
	a.WatchAlgorithm("swift", cc.NewSwift(cc.DefaultSwiftConfig(baseRTT)))
	a.WatchAlgorithm("guardrail", cc.NewGuardrail(dctcp, 40*netsim.MSS, 65*netsim.MTU))
	a.Finish()
	if err := a.Err(); err != nil {
		t.Fatalf("healthy algorithms flagged:\n%v", err)
	}
}

func TestDetectsDrainFailure(t *testing.T) {
	eng := sim.NewEngine()
	pool := netsim.NewPacketPool()
	q := netsim.NewQueue(netsim.QueueConfig{Name: "q"})
	a := New(eng, Config{RequireDrained: true})
	a.WatchQueue(q)
	a.WatchPool(pool)
	a.Start()

	p := pool.Get()
	p.Len = 100
	q.Enqueue(0, p)

	a.Finish()
	found := false
	for _, v := range a.Violations() {
		if v.Rule == "drained" {
			found = true
		}
	}
	if !found {
		t.Fatalf("undrained queue not detected; violations: %v", a.Violations())
	}
}

func TestViolationCapKeepsCounting(t *testing.T) {
	eng := sim.NewEngine()
	a := New(eng, Config{MaxViolations: 2})
	for i := 0; i < 5; i++ {
		a.violatef("cc", "synthetic %d", i)
	}
	if a.Total() != 5 {
		t.Fatalf("Total = %d, want 5", a.Total())
	}
	if len(a.Violations()) != 2 {
		t.Fatalf("recorded = %d, want 2", len(a.Violations()))
	}
	if err := a.Err(); err == nil || !strings.Contains(err.Error(), "and 3 more") {
		t.Fatalf("Err should mention the dropped violations, got: %v", err)
	}
}
