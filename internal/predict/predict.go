// Package predict implements the paper's Section 3.3 observation as a
// usable component: "for each service, the flow count distribution in an
// incast is stable, and therefore predictable, both over time and across
// the hosts in the service. Therefore, rather than reacting to incast
// bursts as in TCP congestion control, hosts could predict the scale of
// congestion and adjust their rates proactively."
//
// A Predictor ingests per-burst flow counts (e.g. from Millisampler) and
// produces the expected incast degree for upcoming bursts — the paper
// highlights the p99 as "the worst-case incast that a service can expect".
// The prediction feeds cc.Guardrail (Section 5.1) and schedule.Wave
// (Section 5.2).
package predict

import (
	"math"

	"incastlab/internal/stats"
)

// Config tunes a Predictor.
type Config struct {
	// WindowBursts is how many recent bursts the quantile estimate uses.
	WindowBursts int
	// MinObservations gates predictions until enough bursts are seen.
	MinObservations int
	// Quantile is the predicted operating point (0.99 in the paper's
	// worst-case framing).
	Quantile float64
	// Gain is the EWMA gain for the trend estimates.
	Gain float64
}

// DefaultConfig returns a window of 512 bursts, p99 prediction, and a
// 1/16 EWMA gain.
func DefaultConfig() Config {
	return Config{WindowBursts: 512, MinObservations: 32, Quantile: 0.99, Gain: 1.0 / 16.0}
}

// Predictor tracks the per-burst incast degree distribution of one service
// endpoint.
type Predictor struct {
	cfg Config

	// ring holds the last WindowBursts flow counts.
	ring []float64
	next int
	n    int

	// ewmaMean tracks the long-run mean for stability checks.
	ewmaMean float64
	// ewmaVar tracks the EWMA of squared deviation from ewmaMean.
	ewmaVar float64
	seeded  bool
}

// New creates a Predictor.
func New(cfg Config) *Predictor {
	if cfg.WindowBursts <= 0 {
		panic("predict: window must be positive")
	}
	if cfg.MinObservations <= 0 {
		cfg.MinObservations = 1
	}
	if cfg.Quantile <= 0 || cfg.Quantile > 1 {
		panic("predict: quantile must be in (0,1]")
	}
	if cfg.Gain <= 0 || cfg.Gain > 1 {
		panic("predict: gain must be in (0,1]")
	}
	return &Predictor{cfg: cfg, ring: make([]float64, cfg.WindowBursts)}
}

// Observe ingests one burst's flow count.
func (p *Predictor) Observe(flows int) {
	v := float64(flows)
	p.ring[p.next] = v
	p.next = (p.next + 1) % len(p.ring)
	if p.n < len(p.ring) {
		p.n++
	}
	if !p.seeded {
		p.ewmaMean = v
		p.seeded = true
		return
	}
	d := v - p.ewmaMean
	p.ewmaMean += p.cfg.Gain * d
	p.ewmaVar = (1-p.cfg.Gain)*p.ewmaVar + p.cfg.Gain*d*d
}

// N returns the number of bursts observed (capped at the window size).
func (p *Predictor) N() int { return p.n }

// Ready reports whether enough bursts were observed to predict.
func (p *Predictor) Ready() bool { return p.n >= p.cfg.MinObservations }

// Mean returns the EWMA mean flow count.
func (p *Predictor) Mean() float64 { return p.ewmaMean }

// window returns the active observations.
func (p *Predictor) window() []float64 {
	w := make([]float64, p.n)
	copy(w, p.ring[:p.n])
	return w
}

// PredictedDegree returns the predicted incast degree for the next burst:
// the configured quantile over the observation window, rounded up. Returns
// 0 when not Ready (no prediction — callers should leave guardrails off).
func (p *Predictor) PredictedDegree() int {
	if !p.Ready() {
		return 0
	}
	return int(math.Ceil(stats.Quantile(p.window(), p.cfg.Quantile)))
}

// Stability returns the coefficient of variation of the EWMA-tracked flow
// count (sqrt(var)/mean); the paper's Figure 3 services sit well below 1.
// Returns +Inf before any observation.
func (p *Predictor) Stability() float64 {
	if !p.seeded || p.ewmaMean == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(p.ewmaVar) / p.ewmaMean
}

// Summary returns descriptive statistics over the observation window.
func (p *Predictor) Summary() stats.Summary {
	return stats.Summarize(p.window())
}
