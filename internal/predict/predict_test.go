package predict

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPredictorNotReadyUntilMinObservations(t *testing.T) {
	p := New(Config{WindowBursts: 100, MinObservations: 10, Quantile: 0.99, Gain: 0.1})
	for i := 0; i < 9; i++ {
		p.Observe(100)
		if p.Ready() {
			t.Fatalf("ready after %d observations, want 10", i+1)
		}
		if p.PredictedDegree() != 0 {
			t.Fatal("prediction before ready should be 0")
		}
	}
	p.Observe(100)
	if !p.Ready() {
		t.Fatal("not ready after 10 observations")
	}
	if p.PredictedDegree() != 100 {
		t.Fatalf("prediction = %d, want 100", p.PredictedDegree())
	}
}

func TestPredictorTracksQuantile(t *testing.T) {
	p := New(DefaultConfig())
	// 99 bursts of 100 flows, 1 of 400: p99 lands near the tail.
	for i := 0; i < 99; i++ {
		p.Observe(100)
	}
	p.Observe(400)
	d := p.PredictedDegree()
	if d < 100 || d > 400 {
		t.Fatalf("prediction = %d, want within [100, 400]", d)
	}
	if d == 100 {
		t.Fatal("p99 should be pulled up by the 400-flow tail")
	}
}

func TestPredictorSlidingWindow(t *testing.T) {
	p := New(Config{WindowBursts: 10, MinObservations: 5, Quantile: 0.5, Gain: 0.5})
	for i := 0; i < 10; i++ {
		p.Observe(50)
	}
	// The service shifts operating mode; the window forgets the old one.
	for i := 0; i < 10; i++ {
		p.Observe(300)
	}
	if d := p.PredictedDegree(); d != 300 {
		t.Fatalf("prediction after mode shift = %d, want 300", d)
	}
	if p.N() != 10 {
		t.Fatalf("window n = %d, want 10", p.N())
	}
}

func TestPredictorMeanEWMA(t *testing.T) {
	p := New(Config{WindowBursts: 100, MinObservations: 1, Quantile: 0.9, Gain: 0.5})
	p.Observe(100)
	if p.Mean() != 100 {
		t.Fatalf("mean seeded to %v", p.Mean())
	}
	p.Observe(200)
	if p.Mean() != 150 {
		t.Fatalf("mean after EWMA = %v, want 150", p.Mean())
	}
}

func TestPredictorStability(t *testing.T) {
	p := New(DefaultConfig())
	if !math.IsInf(p.Stability(), 1) {
		t.Fatal("empty predictor should report infinite instability")
	}
	for i := 0; i < 200; i++ {
		p.Observe(150)
	}
	if s := p.Stability(); s > 0.05 {
		t.Fatalf("constant stream stability = %v, want ~0", s)
	}
	q := New(DefaultConfig())
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			q.Observe(10)
		} else {
			q.Observe(500)
		}
	}
	if q.Stability() < 0.5 {
		t.Fatalf("alternating stream stability = %v, want high", q.Stability())
	}
}

func TestPredictorSummary(t *testing.T) {
	p := New(DefaultConfig())
	for i := 1; i <= 100; i++ {
		p.Observe(i)
	}
	s := p.Summary()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{WindowBursts: 0, Quantile: 0.5, Gain: 0.5},
		{WindowBursts: 1, Quantile: 0, Gain: 0.5},
		{WindowBursts: 1, Quantile: 1.5, Gain: 0.5},
		{WindowBursts: 1, Quantile: 0.5, Gain: 0},
	}
	for i, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

// TestPredictionBoundsProperty: the prediction always lies within the
// observed min..max of the current window.
func TestPredictionBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		p := New(Config{WindowBursts: 64, MinObservations: 1, Quantile: 0.99, Gain: 0.25})
		for _, v := range raw {
			p.Observe(int(v))
		}
		s := p.Summary()
		d := float64(p.PredictedDegree())
		return d >= s.Min && d <= s.Max+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
