package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function over a finite sample.
// The paper's Figures 2 and 4 are collections of per-service CDFs where each
// sample is one burst.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from values. The input is copied; NaN values are
// dropped (they have no order, and sorting them would corrupt the binary
// searches At and Quantile rely on).
func NewCDF(values []float64) *CDF {
	s := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples at or below x. At(NaN) is
// NaN: no sample is ordered against NaN.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 || math.IsNaN(x) {
		return math.NaN()
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the sample (inverse CDF). q must be a
// number in [0, 1]; NaN panics like any other out-of-range argument (the
// comparisons below would otherwise silently wave it through, since every
// comparison against NaN is false).
func (c *CDF) Quantile(q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(c.sorted, q)
}

// Min returns the smallest sample, or NaN if empty.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample, or NaN if empty.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Point is one (x, cumulative fraction) point of a rendered CDF curve.
type Point struct {
	X float64
	F float64
}

// Points renders the CDF as n evenly spaced quantile points suitable for
// plotting, from q=0 to q=1 inclusive. n must be at least 2.
func (c *CDF) Points(n int) []Point {
	if n < 2 {
		panic("stats: CDF.Points needs n >= 2")
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts[i] = Point{X: c.Quantile(q), F: q}
	}
	return pts
}

// Histogram counts samples in equal-width bins over [lo, hi). Samples
// outside the range are clamped into the first or last bin, which matches
// how the paper's axes saturate. NaN samples are counted separately rather
// than binned: float-to-int conversion of NaN is implementation-defined in
// Go, so without the guard a NaN would land in an arbitrary bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
	nans   int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample. NaN samples are tallied in NaNs, not in any bin.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.nans++
		return
	}
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of samples recorded into bins (NaNs excluded).
func (h *Histogram) Total() int { return h.total }

// NaNs returns the number of NaN samples rejected by Add.
func (h *Histogram) NaNs() int { return h.nans }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
