// Package stats provides the small statistical toolkit the incast analyses
// are built on: percentile estimation, empirical CDFs, histograms, online
// moments, and fixed-interval time series.
//
// Everything here is deterministic and allocation-conscious; the measurement
// pipeline calls into this package once per burst and once per millisecond
// sample.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics the paper reports for burst
// populations: mean and selected percentiles.
type Summary struct {
	Count int
	Mean  float64
	Min   float64
	P25   float64
	P50   float64
	P75   float64
	P90   float64
	P95   float64
	P99   float64
	Max   float64
}

// Summarize computes a Summary of values. It copies and sorts the input;
// the caller's slice is not modified. An empty input yields a zero Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		Count: len(s),
		Mean:  sum / float64(len(s)),
		Min:   s[0],
		P25:   quantileSorted(s, 0.25),
		P50:   quantileSorted(s, 0.50),
		P75:   quantileSorted(s, 0.75),
		P90:   quantileSorted(s, 0.90),
		P95:   quantileSorted(s, 0.95),
		P99:   quantileSorted(s, 0.99),
		Max:   s[len(s)-1],
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between closest ranks. It copies and sorts the input.
// It returns NaN for an empty input and panics if q is outside [0, 1].
func Quantile(values []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(values) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted interpolates the q-quantile of an ascending slice.
func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of values, or NaN for an empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Online accumulates mean and variance in one pass (Welford's algorithm).
// The zero value is an empty accumulator.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean, or NaN if empty.
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Var returns the sample variance, or NaN if fewer than two observations.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// Stddev returns the sample standard deviation.
func (o *Online) Stddev() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation, or NaN if empty.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

// Max returns the largest observation, or NaN if empty.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}
