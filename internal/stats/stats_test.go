package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestSummarizeBasics(t *testing.T) {
	vals := []float64{4, 1, 3, 2, 5}
	s := Summarize(vals)
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	// Input must not be mutated.
	if vals[0] != 4 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 {
		t.Fatalf("empty summary count = %d", s.Count)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	vals := []float64{0, 10}
	if q := Quantile(vals, 0.5); !almostEqual(q, 5) {
		t.Fatalf("median of {0,10} = %v, want 5", q)
	}
	if q := Quantile(vals, 0.25); !almostEqual(q, 2.5) {
		t.Fatalf("q25 of {0,10} = %v, want 2.5", q)
	}
	if q := Quantile([]float64{7}, 0.99); q != 7 {
		t.Fatalf("quantile of singleton = %v, want 7", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty should be NaN")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(1.5) did not panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Fatalf("mean = %v, want 4", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("mean of empty should be NaN")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var o Online
	for _, v := range vals {
		o.Add(v)
	}
	if o.N() != len(vals) {
		t.Fatalf("N = %d", o.N())
	}
	if !almostEqual(o.Mean(), Mean(vals)) {
		t.Fatalf("online mean %v != batch %v", o.Mean(), Mean(vals))
	}
	// Batch variance for comparison.
	m := Mean(vals)
	var ss float64
	for _, v := range vals {
		ss += (v - m) * (v - m)
	}
	want := ss / float64(len(vals)-1)
	if !almostEqual(o.Var(), want) {
		t.Fatalf("online var %v != batch %v", o.Var(), want)
	}
	if o.Min() != 1 || o.Max() != 9 {
		t.Fatalf("min/max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if !math.IsNaN(o.Mean()) || !math.IsNaN(o.Var()) || !math.IsNaN(o.Min()) || !math.IsNaN(o.Max()) {
		t.Fatal("empty Online should report NaN everywhere")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almostEqual(got, cse.want) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		c := NewCDF(vals)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			x := c.Quantile(q)
			if x < prev {
				return false
			}
			prev = x
		}
		return c.Quantile(0) == c.Min() && c.Quantile(1) == c.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCDFRoundTripProperty: for every sample x, At(x) >= the fraction of
// samples strictly below x, and quantiles land inside [min, max].
func TestCDFRoundTripProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		c := NewCDF(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for i, x := range sorted {
			f := c.At(x)
			if f < float64(i+1)/float64(len(sorted))-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[0].F != 0 {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[4].X != 4 || pts[4].F != 1 {
		t.Fatalf("last point %+v", pts[4])
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	// -1, 0, 1.9 clamp/fall into bin 0; 2 in bin 1; 9.9, 10, 100 in bin 4.
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[4] != 3 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if !almostEqual(h.BinCenter(0), 1) {
		t.Fatalf("bin center = %v", h.BinCenter(0))
	}
	if !almostEqual(h.Fraction(4), 3.0/7.0) {
		t.Fatalf("fraction = %v", h.Fraction(4))
	}
}

func TestSeriesIndexing(t *testing.T) {
	s := NewSeries(1000, 100, 10) // covers [1000, 2000)
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Index(999) != -1 || s.Index(2000) != -1 {
		t.Fatal("out-of-range times should index -1")
	}
	if s.Index(1000) != 0 || s.Index(1099) != 0 || s.Index(1100) != 1 {
		t.Fatal("interval indexing wrong")
	}
	if s.TimeAt(3) != 1300 {
		t.Fatalf("TimeAt(3) = %d", s.TimeAt(3))
	}
}

func TestSeriesAddMax(t *testing.T) {
	s := NewSeries(0, 10, 3)
	s.AddAt(5, 2)
	s.AddAt(7, 3)
	s.AddAt(25, 1)
	s.AddAt(100, 99) // dropped
	if s.Values[0] != 5 || s.Values[2] != 1 {
		t.Fatalf("values = %v", s.Values)
	}
	s.MaxAt(15, 7)
	s.MaxAt(16, 4) // lower, ignored
	if s.Values[1] != 7 {
		t.Fatalf("watermark = %v", s.Values[1])
	}
	if s.Sum() != 13 {
		t.Fatalf("sum = %v", s.Sum())
	}
	if s.Max() != 7 {
		t.Fatalf("max = %v", s.Max())
	}
	s.Scale(2)
	if s.Values[1] != 14 {
		t.Fatalf("scale failed: %v", s.Values)
	}
}

func TestSpansAbove(t *testing.T) {
	s := NewSeries(0, 1, 10)
	copy(s.Values, []float64{0, 5, 6, 0, 7, 0, 0, 8, 9, 10})
	spans := s.SpansAbove(4)
	want := []Span{{1, 2}, {4, 4}, {7, 9}}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v", spans)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("spans = %v, want %v", spans, want)
		}
	}
	if spans[2].Len() != 3 {
		t.Fatalf("span len = %d", spans[2].Len())
	}
	vals := s.Slice(spans[0])
	if len(vals) != 2 || vals[0] != 5 {
		t.Fatalf("slice = %v", vals)
	}
}

func TestSpansAboveEdges(t *testing.T) {
	s := NewSeries(0, 1, 3)
	copy(s.Values, []float64{9, 9, 9})
	spans := s.SpansAbove(1)
	if len(spans) != 1 || spans[0] != (Span{0, 2}) {
		t.Fatalf("all-above spans = %v", spans)
	}
	if got := s.SpansAbove(100); len(got) != 0 {
		t.Fatalf("none-above spans = %v", got)
	}
}

// TestSpansAboveProperty: spans exactly cover the above-threshold samples,
// are disjoint, ordered, and separated by at-or-below samples.
func TestSpansAboveProperty(t *testing.T) {
	f := func(vals []float64, thresh float64) bool {
		if math.IsNaN(thresh) {
			return true
		}
		s := NewSeries(0, 1, len(vals))
		copy(s.Values, vals)
		spans := s.SpansAbove(thresh)
		covered := make([]bool, len(vals))
		prevEnd := -2
		for _, sp := range spans {
			if sp.Start > sp.End || sp.Start <= prevEnd {
				return false
			}
			prevEnd = sp.End
			for i := sp.Start; i <= sp.End; i++ {
				covered[i] = true
			}
		}
		for i, v := range vals {
			above := v > thresh
			if above != covered[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFDropsNaNInputs(t *testing.T) {
	c := NewCDF([]float64{3, math.NaN(), 1, math.NaN(), 2})
	if c.N() != 3 {
		t.Fatalf("N = %d, want 3 (NaNs dropped)", c.N())
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("median = %v, want 2", got)
	}
	if got := c.At(2); got != 2.0/3 {
		t.Errorf("At(2) = %v, want 2/3", got)
	}
}

func TestCDFAtNaNIsNaN(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	if got := c.At(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("At(NaN) = %v, want NaN", got)
	}
}

func TestCDFQuantilePanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(NaN) did not panic")
		}
	}()
	NewCDF([]float64{1, 2, 3}).Quantile(math.NaN())
}

func TestHistogramRejectsNaN(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(math.NaN())
	h.Add(2)
	h.Add(math.NaN())
	if h.Total() != 1 {
		t.Fatalf("Total = %d, want 1", h.Total())
	}
	if h.NaNs() != 2 {
		t.Fatalf("NaNs = %d, want 2", h.NaNs())
	}
	if h.Counts[0] != 0 || h.Counts[1] != 1 {
		t.Fatalf("counts = %v: NaN leaked into a bin", h.Counts)
	}
	if got := h.Fraction(1); got != 1 {
		t.Fatalf("Fraction(1) = %v, want 1 (NaNs must not dilute fractions)", got)
	}
}
