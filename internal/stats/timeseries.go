package stats

import "fmt"

// Series is a fixed-interval time series: sample i covers the half-open
// interval [Start + i*Interval, Start + (i+1)*Interval) in nanoseconds.
// Millisampler traces and simulated queue-depth traces are both Series.
type Series struct {
	// StartNS is the virtual time of the first sample's interval start.
	StartNS int64
	// IntervalNS is the width of each sample interval (1 ms for
	// Millisampler traces, finer for queue traces).
	IntervalNS int64
	// Values holds one sample per interval.
	Values []float64
}

// NewSeries allocates a series of n zero samples.
func NewSeries(startNS, intervalNS int64, n int) *Series {
	if intervalNS <= 0 {
		panic("stats: series interval must be positive")
	}
	return &Series{StartNS: startNS, IntervalNS: intervalNS, Values: make([]float64, n)}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the interval start time of sample i in nanoseconds.
func (s *Series) TimeAt(i int) int64 { return s.StartNS + int64(i)*s.IntervalNS }

// Index returns the sample index covering time tNS, or -1 if out of range.
func (s *Series) Index(tNS int64) int {
	if tNS < s.StartNS {
		return -1
	}
	i := int((tNS - s.StartNS) / s.IntervalNS)
	if i >= len(s.Values) {
		return -1
	}
	return i
}

// AddAt accumulates v into the sample covering time tNS. Out-of-range times
// are dropped; a trace window is a fixed observation interval and events
// outside it are simply not observed (exactly like a real capture).
func (s *Series) AddAt(tNS int64, v float64) {
	if i := s.Index(tNS); i >= 0 {
		s.Values[i] += v
	}
}

// MaxAt records v into the sample covering tNS if it exceeds the current
// value — a per-interval high watermark.
func (s *Series) MaxAt(tNS int64, v float64) {
	if i := s.Index(tNS); i >= 0 && v > s.Values[i] {
		s.Values[i] = v
	}
}

// Scale multiplies every sample by f, in place, and returns the series.
func (s *Series) Scale(f float64) *Series {
	for i := range s.Values {
		s.Values[i] *= f
	}
	return s
}

// Mean returns the mean of all samples.
func (s *Series) Mean() float64 { return Mean(s.Values) }

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	var m float64
	for i, v := range s.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all samples.
func (s *Series) Sum() float64 {
	var t float64
	for _, v := range s.Values {
		t += v
	}
	return t
}

// Span is a contiguous run of sample indexes [Start, End] (inclusive).
type Span struct {
	Start, End int
}

// Len returns the number of samples in the span.
func (sp Span) Len() int { return sp.End - sp.Start + 1 }

// SpansAbove returns the maximal contiguous runs of samples where the value
// is strictly greater than threshold. This is the burst-extraction primitive:
// the paper defines a burst as a contiguous span of 1 ms intervals whose
// ingress rate exceeds 50% of line rate.
func (s *Series) SpansAbove(threshold float64) []Span {
	var spans []Span
	in := false
	var start int
	for i, v := range s.Values {
		if v > threshold {
			if !in {
				in = true
				start = i
			}
		} else if in {
			in = false
			spans = append(spans, Span{Start: start, End: i - 1})
		}
	}
	if in {
		spans = append(spans, Span{Start: start, End: len(s.Values) - 1})
	}
	return spans
}

// Slice returns the sample values covered by sp.
func (s *Series) Slice(sp Span) []float64 {
	if sp.Start < 0 || sp.End >= len(s.Values) || sp.Start > sp.End {
		panic(fmt.Sprintf("stats: span %+v out of range for series of %d", sp, len(s.Values)))
	}
	return s.Values[sp.Start : sp.End+1]
}
