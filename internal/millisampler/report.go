package millisampler

import (
	"incastlab/internal/stats"
)

// Report aggregates burst statistics over a corpus of traces (e.g. 20 hosts
// x 9 collections for one service). Each CDF's samples correspond to the
// paper's figures: one sample per trace for frequency, one per burst for
// everything else.
type Report struct {
	// Traces and Bursts count the corpus size.
	Traces int
	Bursts int
	// Incasts counts bursts with more than 25 flows.
	Incasts int

	// MeanUtilization is the average link utilization across traces.
	MeanUtilization float64

	// BurstsPerSecond has one sample per trace (Figure 2a).
	BurstsPerSecond *stats.CDF
	// DurationMS has one sample per burst (Figure 2b).
	DurationMS *stats.CDF
	// Flows has one sample per burst: peak active flows (Figure 2c).
	Flows *stats.CDF
	// QueueWatermark has one sample per burst: attributed switch watermark
	// as a fraction of capacity (Figure 4a).
	QueueWatermark *stats.CDF
	// ECNFraction has one sample per burst (Figure 4b).
	ECNFraction *stats.CDF
	// RetxFraction has one sample per burst: retransmitted volume as a
	// fraction of line rate over the burst (Figure 4c).
	RetxFraction *stats.CDF
}

// Analyze detects bursts in every trace (at the paper's 50% threshold) and
// builds the aggregate report.
func Analyze(traces []*Trace) *Report {
	r := &Report{Traces: len(traces)}
	var perTraceFreq, durations, flows, wm, ecn, retx []float64
	var utilSum float64
	for _, t := range traces {
		bursts := Detect(t, DefaultBurstThreshold)
		perTraceFreq = append(perTraceFreq, float64(len(bursts))/t.DurationSeconds())
		utilSum += t.MeanUtilization()
		for _, b := range bursts {
			r.Bursts++
			if b.IsIncast() {
				r.Incasts++
			}
			durations = append(durations, b.DurationMS)
			flows = append(flows, float64(b.PeakFlows))
			wm = append(wm, b.QueueWatermarkFraction)
			ecn = append(ecn, b.ECNFraction)
			retx = append(retx, b.RetxLineRateFraction)
		}
	}
	if len(traces) > 0 {
		r.MeanUtilization = utilSum / float64(len(traces))
	}
	r.BurstsPerSecond = stats.NewCDF(perTraceFreq)
	r.DurationMS = stats.NewCDF(durations)
	r.Flows = stats.NewCDF(flows)
	r.QueueWatermark = stats.NewCDF(wm)
	r.ECNFraction = stats.NewCDF(ecn)
	r.RetxFraction = stats.NewCDF(retx)
	return r
}

// IncastFraction returns the fraction of bursts that are incasts.
func (r *Report) IncastFraction() float64 {
	if r.Bursts == 0 {
		return 0
	}
	return float64(r.Incasts) / float64(r.Bursts)
}

// FlowStats summarizes per-burst flow counts of a single trace: the
// building block of the Figure 3 stability analysis (mean and p99 flow
// count per collection round / per host).
func FlowStats(t *Trace) stats.Summary {
	bursts := Detect(t, DefaultBurstThreshold)
	vals := make([]float64, 0, len(bursts))
	for _, b := range bursts {
		vals = append(vals, float64(b.PeakFlows))
	}
	return stats.Summarize(vals)
}
