// Package millisampler reimplements the analysis pipeline of Millisampler,
// the host-side measurement tool the paper uses (an eBPF tc filter in
// production; here a pure-Go consumer of per-millisecond samples): ingress
// throughput, active flow counts, ECN-marked bytes, and retransmitted bytes
// at 1 ms granularity, burst detection, and per-burst statistics.
//
// The paper's burst definition (Section 3.1): a burst is any contiguous time
// span where the average aggregate ingress rate, measured at the receiver at
// 1 ms intervals, exceeds 50% of the NIC line rate. An incast is a burst
// with more than 25 active flows (Section 3.3).
package millisampler

import (
	"fmt"

	"incastlab/internal/stats"
)

// DefaultBurstThreshold is the utilization above which an interval belongs
// to a burst: 50% of line rate.
const DefaultBurstThreshold = 0.5

// IncastFlowThreshold is the paper's definition of incast: more than 25
// concurrent flows in a burst.
const IncastFlowThreshold = 25

// Sample is one measurement interval (1 ms in the paper).
type Sample struct {
	// Bytes is the ingress volume delivered to the host in the interval.
	Bytes float64
	// Flows is the number of distinct flows observed in the interval.
	Flows int
	// ECNBytes is the portion of Bytes carried by CE-marked packets.
	ECNBytes float64
	// RetxBytes is the portion of Bytes identified as retransmissions.
	RetxBytes float64
}

// Trace is a fixed-interval sequence of samples from one host, annotated
// with the NIC line rate needed to compute utilization, plus the ToR queue
// watermark covering the trace window. Production switches export queue
// occupancy only as a high watermark over the last minute, so a single
// watermark is attributed to every burst in the window (Section 3.4).
type Trace struct {
	// IntervalNS is the sample width in nanoseconds (1 ms in the paper).
	IntervalNS int64
	// LineRateBps is the NIC line rate in bits per second.
	LineRateBps int64
	// Samples holds the measurement intervals.
	Samples []Sample
	// QueueWatermarkFraction is the switch queue high watermark over the
	// trace window, as a fraction of queue capacity; NaN-free, zero when
	// unknown.
	QueueWatermarkFraction float64
}

// NewTrace allocates a zeroed trace of n samples.
func NewTrace(intervalNS int64, lineRateBps int64, n int) *Trace {
	if intervalNS <= 0 {
		panic("millisampler: interval must be positive")
	}
	if lineRateBps <= 0 {
		panic("millisampler: line rate must be positive")
	}
	return &Trace{IntervalNS: intervalNS, LineRateBps: lineRateBps, Samples: make([]Sample, n)}
}

// capacityBytes returns the bytes one interval can carry at line rate.
func (t *Trace) capacityBytes() float64 {
	return float64(t.LineRateBps) / 8 * float64(t.IntervalNS) / 1e9
}

// Utilization returns sample i's ingress rate as a fraction of line rate.
func (t *Trace) Utilization(i int) float64 {
	return t.Samples[i].Bytes / t.capacityBytes()
}

// MeanUtilization returns the average utilization across the whole trace —
// the paper's Figure 1 reports 10.6% for the example trace.
func (t *Trace) MeanUtilization() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	var sum float64
	for i := range t.Samples {
		sum += t.Utilization(i)
	}
	return sum / float64(len(t.Samples))
}

// DurationSeconds returns the trace's covered time in seconds.
func (t *Trace) DurationSeconds() float64 {
	return float64(int64(len(t.Samples))*t.IntervalNS) / 1e9
}

// Burst is one detected burst with the paper's per-burst metrics.
type Burst struct {
	// Start and End are inclusive sample indexes.
	Start, End int
	// DurationMS is the burst length in milliseconds (>= 1 at 1 ms
	// sampling; sub-millisecond bursts are not detectable, as the paper
	// notes).
	DurationMS float64
	// Bytes is the total ingress volume of the burst.
	Bytes float64
	// PeakFlows is the largest per-interval active flow count in the burst
	// (flow counts are per 1 ms interval; across a multi-ms burst more
	// flows may have been active at non-overlapping times).
	PeakFlows int
	// ECNFraction is the fraction of burst bytes that were CE-marked.
	ECNFraction float64
	// RetxLineRateFraction is retransmitted volume as a fraction of what
	// the NIC line rate could carry over the burst duration — the paper's
	// Figure 4c metric.
	RetxLineRateFraction float64
	// QueueWatermarkFraction is the switch watermark attributed to this
	// burst (see Trace.QueueWatermarkFraction).
	QueueWatermarkFraction float64
}

// IsIncast reports whether the burst qualifies as an incast (more than 25
// flows).
func (b Burst) IsIncast() bool { return b.PeakFlows > IncastFlowThreshold }

// String renders a one-line description.
func (b Burst) String() string {
	return fmt.Sprintf("burst[%d..%d] %.0fms flows=%d ecn=%.1f%% retx=%.2f%%",
		b.Start, b.End, b.DurationMS, b.PeakFlows, 100*b.ECNFraction, 100*b.RetxLineRateFraction)
}

// Detect extracts bursts from the trace: maximal contiguous spans of
// intervals whose utilization exceeds threshold (use
// DefaultBurstThreshold for the paper's definition).
func Detect(t *Trace, threshold float64) []Burst {
	if threshold <= 0 || threshold >= 1 {
		panic("millisampler: burst threshold must be in (0,1)")
	}
	capacity := t.capacityBytes()
	util := stats.NewSeries(0, t.IntervalNS, len(t.Samples))
	for i := range t.Samples {
		util.Values[i] = t.Samples[i].Bytes
	}
	spans := util.SpansAbove(threshold * capacity)
	bursts := make([]Burst, 0, len(spans))
	for _, sp := range spans {
		b := Burst{
			Start:                  sp.Start,
			End:                    sp.End,
			DurationMS:             float64(sp.Len()) * float64(t.IntervalNS) / 1e6,
			QueueWatermarkFraction: t.QueueWatermarkFraction,
		}
		var ecn, retx float64
		for i := sp.Start; i <= sp.End; i++ {
			s := t.Samples[i]
			b.Bytes += s.Bytes
			ecn += s.ECNBytes
			retx += s.RetxBytes
			if s.Flows > b.PeakFlows {
				b.PeakFlows = s.Flows
			}
		}
		if b.Bytes > 0 {
			b.ECNFraction = ecn / b.Bytes
		}
		b.RetxLineRateFraction = retx / (capacity * float64(sp.Len()))
		bursts = append(bursts, b)
	}
	return bursts
}
