package millisampler

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
)

// Traces are persisted as CSV with a leading metadata comment so that a
// collection campaign can be archived and re-analyzed later (production
// Millisampler works the same way: collect now, analyze offline).
//
// Format:
//
//	# millisampler interval_ns=<n> line_rate_bps=<n> watermark_frac=<f>
//	bytes,flows,ecn_bytes,retx_bytes
//	<one row per sample>

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# millisampler interval_ns=%d line_rate_bps=%d watermark_frac=%g\n",
		t.IntervalNS, t.LineRateBps, t.QueueWatermarkFraction); err != nil {
		return fmt.Errorf("millisampler: write header: %w", err)
	}
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"bytes", "flows", "ecn_bytes", "retx_bytes"}); err != nil {
		return err
	}
	for _, s := range t.Samples {
		err := cw.Write([]string{
			strconv.FormatFloat(s.Bytes, 'g', -1, 64),
			strconv.Itoa(s.Flows),
			strconv.FormatFloat(s.ECNBytes, 'g', -1, 64),
			strconv.FormatFloat(s.RetxBytes, 'g', -1, 64),
		})
		if err != nil {
			return fmt.Errorf("millisampler: write sample: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// Save writes the trace to path, creating parent directories.
func (t *Trace) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("millisampler: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("millisampler: create %s: %w", path, err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Read parses a trace previously written by Write. Untrusted input never
// panics: the header's interval and line rate must be positive (NewTrace
// would otherwise panic), the watermark must be a finite fraction >= 0,
// every row must carry exactly four fields, and every sample value must be
// finite and non-negative.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("millisampler: read header: %w", err)
	}
	var intervalNS, lineRate int64
	var wm float64
	if _, err := fmt.Sscanf(header, "# millisampler interval_ns=%d line_rate_bps=%d watermark_frac=%g",
		&intervalNS, &lineRate, &wm); err != nil {
		return nil, fmt.Errorf("millisampler: bad header %q: %w", header, err)
	}
	if intervalNS <= 0 {
		return nil, fmt.Errorf("millisampler: header interval_ns=%d must be positive", intervalNS)
	}
	if lineRate <= 0 {
		return nil, fmt.Errorf("millisampler: header line_rate_bps=%d must be positive", lineRate)
	}
	if math.IsNaN(wm) || math.IsInf(wm, 0) || wm < 0 {
		return nil, fmt.Errorf("millisampler: header watermark_frac=%g must be finite and >= 0", wm)
	}
	cr := csv.NewReader(br)
	// Enforce the four-column shape on every row, including the first: a
	// truncated record is an error, never a short slice we index into.
	cr.FieldsPerRecord = 4
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("millisampler: read samples: %w", err)
	}
	if len(rows) == 0 || rows[0][0] != "bytes" {
		return nil, fmt.Errorf("millisampler: missing column header")
	}
	field := func(row []string, col int, name string, rowIdx int) (float64, error) {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			return 0, fmt.Errorf("millisampler: row %d %s: %w", rowIdx, name, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return 0, fmt.Errorf("millisampler: row %d %s=%g must be finite and >= 0", rowIdx, name, v)
		}
		return v, nil
	}
	t := NewTrace(intervalNS, lineRate, len(rows)-1)
	t.QueueWatermarkFraction = wm
	for i, row := range rows[1:] {
		s := &t.Samples[i]
		if s.Bytes, err = field(row, 0, "bytes", i); err != nil {
			return nil, err
		}
		if s.Flows, err = strconv.Atoi(row[1]); err != nil {
			return nil, fmt.Errorf("millisampler: row %d flows: %w", i, err)
		}
		if s.Flows < 0 {
			return nil, fmt.Errorf("millisampler: row %d flows=%d must be >= 0", i, s.Flows)
		}
		if s.ECNBytes, err = field(row, 2, "ecn", i); err != nil {
			return nil, err
		}
		if s.RetxBytes, err = field(row, 3, "retx", i); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Load reads a trace from a file written by Save.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("millisampler: open %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
