package millisampler

import (
	"math"
	"testing"
	"testing/quick"
)

// testTrace builds a trace at 1 ms intervals on a 8 Gbps NIC: capacity
// 1,000,000 bytes per interval, so utilizations are easy to write.
func testTrace(utils []float64) *Trace {
	t := NewTrace(1_000_000, 8_000_000_000, len(utils))
	for i, u := range utils {
		t.Samples[i].Bytes = u * 1_000_000
	}
	return t
}

func TestUtilization(t *testing.T) {
	tr := testTrace([]float64{0.25, 1.0})
	if got := tr.Utilization(0); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("util = %v", got)
	}
	if got := tr.MeanUtilization(); math.Abs(got-0.625) > 1e-9 {
		t.Fatalf("mean util = %v", got)
	}
	if got := tr.DurationSeconds(); math.Abs(got-0.002) > 1e-12 {
		t.Fatalf("duration = %v", got)
	}
}

func TestDetectBasic(t *testing.T) {
	tr := testTrace([]float64{0.1, 0.9, 0.95, 0.2, 0.8, 0.1})
	bursts := Detect(tr, DefaultBurstThreshold)
	if len(bursts) != 2 {
		t.Fatalf("bursts = %v", bursts)
	}
	if bursts[0].Start != 1 || bursts[0].End != 2 || bursts[0].DurationMS != 2 {
		t.Fatalf("first burst = %+v", bursts[0])
	}
	if bursts[1].Start != 4 || bursts[1].End != 4 || bursts[1].DurationMS != 1 {
		t.Fatalf("second burst = %+v", bursts[1])
	}
}

func TestDetectExactlyAtThresholdExcluded(t *testing.T) {
	tr := testTrace([]float64{0.5, 0.51})
	bursts := Detect(tr, 0.5)
	if len(bursts) != 1 || bursts[0].Start != 1 {
		t.Fatalf("bursts = %v; exactly-50%% intervals are not bursts", bursts)
	}
}

func TestBurstMetrics(t *testing.T) {
	tr := testTrace([]float64{0.9, 0.9})
	tr.QueueWatermarkFraction = 0.7
	tr.Samples[0].Flows = 100
	tr.Samples[1].Flows = 260
	tr.Samples[0].ECNBytes = 450_000 // half of sample 0
	tr.Samples[1].RetxBytes = 200_000
	bursts := Detect(tr, 0.5)
	if len(bursts) != 1 {
		t.Fatalf("bursts = %v", bursts)
	}
	b := bursts[0]
	if b.PeakFlows != 260 {
		t.Fatalf("peak flows = %d", b.PeakFlows)
	}
	if !b.IsIncast() {
		t.Fatal("260 flows should be an incast")
	}
	if math.Abs(b.ECNFraction-0.25) > 1e-9 { // 450k of 1.8M
		t.Fatalf("ecn fraction = %v", b.ECNFraction)
	}
	// Retx as fraction of line rate over 2 ms: 200k / 2M.
	if math.Abs(b.RetxLineRateFraction-0.1) > 1e-9 {
		t.Fatalf("retx fraction = %v", b.RetxLineRateFraction)
	}
	if b.QueueWatermarkFraction != 0.7 {
		t.Fatalf("watermark = %v", b.QueueWatermarkFraction)
	}
	if b.Bytes != 1_800_000 {
		t.Fatalf("bytes = %v", b.Bytes)
	}
}

func TestIsIncastThreshold(t *testing.T) {
	if (Burst{PeakFlows: 25}).IsIncast() {
		t.Fatal("exactly 25 flows is not an incast (threshold is 'more than 25')")
	}
	if !(Burst{PeakFlows: 26}).IsIncast() {
		t.Fatal("26 flows is an incast")
	}
}

func TestDetectValidation(t *testing.T) {
	tr := testTrace([]float64{1})
	for _, th := range []float64{0, 1, -0.5, 2} {
		th := th
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("threshold %v did not panic", th)
				}
			}()
			Detect(tr, th)
		}()
	}
}

func TestNewTraceValidation(t *testing.T) {
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewTrace(0, 1, 1) })
	mustPanic(func() { NewTrace(1, 0, 1) })
}

// TestDetectCoverageProperty: every above-threshold interval is inside
// exactly one burst, bursts are ordered and separated.
func TestDetectCoverageProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		utils := make([]float64, len(raw))
		for i, v := range raw {
			utils[i] = float64(v) / 255
		}
		tr := testTrace(utils)
		bursts := Detect(tr, 0.5)
		covered := make([]bool, len(utils))
		prevEnd := -2
		for _, b := range bursts {
			if b.Start > b.End || b.Start <= prevEnd+1 && prevEnd >= 0 && b.Start <= prevEnd {
				return false
			}
			if b.Start <= prevEnd {
				return false
			}
			prevEnd = b.End
			for i := b.Start; i <= b.End; i++ {
				covered[i] = true
			}
			if b.DurationMS != float64(b.End-b.Start+1) {
				return false
			}
		}
		for i, u := range utils {
			if (u > 0.5) != covered[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeAggregates(t *testing.T) {
	t1 := testTrace([]float64{0.9, 0.1, 0.9, 0.9}) // two bursts
	t1.Samples[0].Flows = 30
	t1.Samples[2].Flows = 10
	t1.QueueWatermarkFraction = 0.5
	t2 := testTrace([]float64{0.1, 0.1, 0.1, 0.1}) // no bursts
	rep := Analyze([]*Trace{t1, t2})
	if rep.Traces != 2 || rep.Bursts != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Incasts != 1 {
		t.Fatalf("incasts = %d", rep.Incasts)
	}
	if rep.IncastFraction() != 0.5 {
		t.Fatalf("incast fraction = %v", rep.IncastFraction())
	}
	// Frequencies: t1 has 2 bursts over 4 ms = 500/s; t2 has 0.
	if rep.BurstsPerSecond.Max() != 500 || rep.BurstsPerSecond.Min() != 0 {
		t.Fatalf("freq CDF min/max = %v/%v", rep.BurstsPerSecond.Min(), rep.BurstsPerSecond.Max())
	}
	if rep.Flows.Max() != 30 {
		t.Fatalf("flows max = %v", rep.Flows.Max())
	}
	if rep.QueueWatermark.Min() != 0.5 {
		t.Fatalf("watermark min = %v", rep.QueueWatermark.Min())
	}
}

func TestFlowStats(t *testing.T) {
	tr := testTrace([]float64{0.9, 0.1, 0.9})
	tr.Samples[0].Flows = 100
	tr.Samples[2].Flows = 200
	s := FlowStats(tr)
	if s.Count != 2 || s.Mean != 150 || s.Max != 200 {
		t.Fatalf("flow stats = %+v", s)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil)
	if rep.Traces != 0 || rep.Bursts != 0 || rep.IncastFraction() != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
}

func TestBurstString(t *testing.T) {
	b := Burst{Start: 1, End: 2, DurationMS: 2, PeakFlows: 100, ECNFraction: 0.5, RetxLineRateFraction: 0.01}
	if b.String() == "" {
		t.Fatal("empty string")
	}
}

// Burst-boundary contract: Start and End are inclusive sample indexes, a
// burst may begin at sample 0 or end at the final sample (or both), and a
// one-interval burst at 1 ms sampling has DurationMS exactly 1.

func TestDetectBurstAtTraceStart(t *testing.T) {
	tr := testTrace([]float64{0.9, 0.8, 0.1})
	bursts := Detect(tr, DefaultBurstThreshold)
	if len(bursts) != 1 {
		t.Fatalf("bursts = %v", bursts)
	}
	b := bursts[0]
	if b.Start != 0 || b.End != 1 {
		t.Fatalf("burst span = [%d..%d], want [0..1]", b.Start, b.End)
	}
	if b.DurationMS != 2 {
		t.Fatalf("duration = %v ms, want 2", b.DurationMS)
	}
}

func TestDetectBurstAtTraceEnd(t *testing.T) {
	tr := testTrace([]float64{0.1, 0.2, 0.95})
	bursts := Detect(tr, DefaultBurstThreshold)
	if len(bursts) != 1 {
		t.Fatalf("bursts = %v", bursts)
	}
	b := bursts[0]
	if b.Start != 2 || b.End != 2 {
		t.Fatalf("burst span = [%d..%d], want [2..2] (End inclusive, final sample)", b.Start, b.End)
	}
	if b.DurationMS != 1 {
		t.Fatalf("single-interval burst duration = %v ms, want exactly 1", b.DurationMS)
	}
	if b.Bytes != 950_000 {
		t.Fatalf("bytes = %v: End must be included in the accumulation", b.Bytes)
	}
}

func TestDetectWholeTraceBurst(t *testing.T) {
	tr := testTrace([]float64{0.9, 0.95, 0.9, 0.85})
	tr.Samples[3].Flows = 80
	bursts := Detect(tr, DefaultBurstThreshold)
	if len(bursts) != 1 {
		t.Fatalf("bursts = %v", bursts)
	}
	b := bursts[0]
	if b.Start != 0 || b.End != len(tr.Samples)-1 {
		t.Fatalf("burst span = [%d..%d], want [0..%d]", b.Start, b.End, len(tr.Samples)-1)
	}
	if b.DurationMS != 4 {
		t.Fatalf("duration = %v ms, want 4", b.DurationMS)
	}
	if b.PeakFlows != 80 {
		t.Fatalf("peak flows = %d: final sample must be scanned", b.PeakFlows)
	}
}

func TestDetectSingleSampleTrace(t *testing.T) {
	bursts := Detect(testTrace([]float64{0.9}), DefaultBurstThreshold)
	if len(bursts) != 1 || bursts[0].Start != 0 || bursts[0].End != 0 {
		t.Fatalf("bursts = %v, want one [0..0] burst", bursts)
	}
	if bursts[0].DurationMS != 1 {
		t.Fatalf("duration = %v ms, want 1 (minimum at 1 ms sampling)", bursts[0].DurationMS)
	}
	if len(Detect(testTrace([]float64{0.1}), DefaultBurstThreshold)) != 0 {
		t.Fatal("idle single-sample trace must have no bursts")
	}
}

// TestDetectMinimumDurationProperty: at 1 ms sampling every detected burst
// lasts at least 1 ms, DurationMS always equals the inclusive span length,
// and spans never escape the trace.
func TestDetectMinimumDurationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		utils := make([]float64, len(raw))
		for i, v := range raw {
			utils[i] = float64(v) / 255
		}
		for _, b := range Detect(testTrace(utils), 0.5) {
			if b.DurationMS < 1 {
				return false
			}
			if b.DurationMS != float64(b.End-b.Start+1) {
				return false
			}
			if b.Start < 0 || b.End >= len(utils) || b.Start > b.End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
