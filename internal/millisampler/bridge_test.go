package millisampler

import (
	"testing"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

func TestFromIngressRecorder(t *testing.T) {
	eng := sim.NewEngine()
	h := netsim.NewHost(eng, 0, "rx")
	h.Attach(netsim.PacketHandlerFunc(func(p *netsim.Packet) {}))
	rec := netsim.NewHostIngressRecorder(h, 0, sim.Millisecond, 3)

	deliver := func(at sim.Time, p *netsim.Packet) {
		eng.At(at, func() { h.Receive(p) })
	}
	// Interval 0: two flows, one CE-marked packet.
	deliver(100, &netsim.Packet{Flow: 1, Dst: 0, Len: 1000})
	deliver(200, &netsim.Packet{Flow: 2, Dst: 0, Len: 1000, CE: true})
	// Interval 1: one retransmission.
	deliver(sim.Millisecond+5, &netsim.Packet{Flow: 1, Dst: 0, Len: 500, Retransmit: true})
	eng.Run()

	tr, err := FromIngressRecorder(rec, 10*netsim.Gbps)
	if err != nil {
		t.Fatalf("FromIngressRecorder: %v", err)
	}
	if tr.IntervalNS != int64(sim.Millisecond) || tr.LineRateBps != 10*netsim.Gbps {
		t.Fatalf("trace metadata wrong: %+v", tr)
	}
	if len(tr.Samples) != 3 {
		t.Fatalf("samples = %d", len(tr.Samples))
	}
	s0 := tr.Samples[0]
	if s0.Bytes != 2*1040 || s0.Flows != 2 || s0.ECNBytes != 1040 || s0.RetxBytes != 0 {
		t.Fatalf("sample 0 = %+v", s0)
	}
	s1 := tr.Samples[1]
	if s1.Bytes != 540 || s1.Flows != 1 || s1.RetxBytes != 540 {
		t.Fatalf("sample 1 = %+v", s1)
	}
	if tr.Samples[2].Bytes != 0 {
		t.Fatalf("sample 2 should be empty")
	}
}

// TestFromIngressRecorderRejectsWrongInterval pins the interval check: a
// recorder not sampling at the 1 ms Millisampler bin must be rejected, not
// silently converted into a trace with wrong burst semantics.
func TestFromIngressRecorderRejectsWrongInterval(t *testing.T) {
	eng := sim.NewEngine()
	h := netsim.NewHost(eng, 0, "rx")
	h.Attach(netsim.PacketHandlerFunc(func(p *netsim.Packet) {}))
	rec := netsim.NewHostIngressRecorder(h, 0, 100*sim.Microsecond, 3)
	eng.Run()

	tr, err := FromIngressRecorder(rec, 10*netsim.Gbps)
	if err == nil {
		t.Fatalf("FromIngressRecorder accepted a 100us recorder: %+v", tr)
	}
	if tr != nil {
		t.Fatalf("error path returned a non-nil trace: %+v", tr)
	}
}
