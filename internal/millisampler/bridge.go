package millisampler

import (
	"incastlab/internal/netsim"
)

// FromIngressRecorder converts a packet-simulator host recorder into a
// Millisampler trace, so the Section 3 measurement pipeline can run
// unchanged over Section 4's simulated packets — the cross-validation path
// between the paper's two methodologies.
//
// The recorder must have been created with the Millisampler interval
// (1 ms) for the trace to carry the paper's semantics, but any interval is
// accepted. lineRateBps is the simulated host's NIC rate.
func FromIngressRecorder(rec *netsim.HostIngressRecorder, lineRateBps int64) *Trace {
	n := rec.Bytes.Len()
	t := NewTrace(rec.Bytes.IntervalNS, lineRateBps, n)
	for i := 0; i < n; i++ {
		t.Samples[i] = Sample{
			Bytes:     rec.Bytes.Values[i],
			Flows:     int(rec.Flows.Values[i]),
			ECNBytes:  rec.CEBytes.Values[i],
			RetxBytes: rec.RetxBytes.Values[i],
		}
	}
	return t
}
