package millisampler

import (
	"fmt"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// FromIngressRecorder converts a packet-simulator host recorder into a
// Millisampler trace, so the Section 3 measurement pipeline can run
// unchanged over Section 4's simulated packets — the cross-validation path
// between the paper's two methodologies.
//
// The recorder must have been created with the Millisampler interval
// (1 ms): the burst detector and per-burst statistics all assume
// millisecond bins, so a recorder at any other granularity would silently
// produce wrong durations and frequencies. lineRateBps is the simulated
// host's NIC rate.
func FromIngressRecorder(rec *netsim.HostIngressRecorder, lineRateBps int64) (*Trace, error) {
	if rec.Bytes.IntervalNS != int64(sim.Millisecond) {
		return nil, fmt.Errorf(
			"millisampler: recorder interval %dns is not the 1ms Millisampler bin; burst durations and frequencies would be wrong",
			rec.Bytes.IntervalNS)
	}
	n := rec.Bytes.Len()
	t := NewTrace(rec.Bytes.IntervalNS, lineRateBps, n)
	for i := 0; i < n; i++ {
		t.Samples[i] = Sample{
			Bytes:     rec.Bytes.Values[i],
			Flows:     int(rec.Flows.Values[i]),
			ECNBytes:  rec.CEBytes.Values[i],
			RetxBytes: rec.RetxBytes.Values[i],
		}
	}
	return t, nil
}
