package millisampler

import (
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := NewTrace(1_000_000, 25_000_000_000, 3)
	orig.QueueWatermarkFraction = 0.42
	orig.Samples[0] = Sample{Bytes: 3_125_000, Flows: 150, ECNBytes: 1_000_000, RetxBytes: 0}
	orig.Samples[1] = Sample{Bytes: 12.5, Flows: 1, ECNBytes: 0.25, RetxBytes: 12.25}
	// Samples[2] stays zero.

	var buf strings.Builder
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.IntervalNS != orig.IntervalNS || got.LineRateBps != orig.LineRateBps ||
		got.QueueWatermarkFraction != orig.QueueWatermarkFraction {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if len(got.Samples) != 3 {
		t.Fatalf("samples = %d", len(got.Samples))
	}
	for i := range orig.Samples {
		if got.Samples[i] != orig.Samples[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got.Samples[i], orig.Samples[i])
		}
	}
}

func TestTraceSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "trace.csv")
	orig := NewTrace(1_000_000, 10_000_000_000, 2)
	orig.Samples[0].Bytes = 100
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples[0].Bytes != 100 || len(got.Samples) != 2 {
		t.Fatalf("loaded = %+v", got.Samples)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a header\nbytes,flows,ecn_bytes,retx_bytes\n",
		"# millisampler interval_ns=1 line_rate_bps=1 watermark_frac=0\nwrong,header,row,x\n1,2,3,4\n",
		"# millisampler interval_ns=1 line_rate_bps=1 watermark_frac=0\nbytes,flows,ecn_bytes,retx_bytes\nnotanumber,2,3,4\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

// TestPersistenceProperty: analysis results survive the round trip, for
// arbitrary sample contents.
func TestPersistenceProperty(t *testing.T) {
	f := func(vals []uint32, flows []uint8) bool {
		n := len(vals)
		if n == 0 || n > 200 {
			return true
		}
		tr := NewTrace(1_000_000, 8_000_000_000, n)
		for i, v := range vals {
			tr.Samples[i].Bytes = float64(v)
			if i < len(flows) {
				tr.Samples[i].Flows = int(flows[i])
			}
			tr.Samples[i].ECNBytes = float64(v) / 3
		}
		var buf strings.Builder
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(buf.String()))
		if err != nil {
			return false
		}
		a := Detect(tr, 0.5)
		b := Detect(got, 0.5)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReadRejectsMalformedHeaders: header fields that would make NewTrace
// panic, or poison downstream analysis with non-finite values, are errors.
func TestReadRejectsMalformedHeaders(t *testing.T) {
	body := "bytes,flows,ecn_bytes,retx_bytes\n1,2,3,4\n"
	cases := map[string]string{
		"zero interval":      "# millisampler interval_ns=0 line_rate_bps=1 watermark_frac=0\n" + body,
		"negative interval":  "# millisampler interval_ns=-5 line_rate_bps=1 watermark_frac=0\n" + body,
		"zero line rate":     "# millisampler interval_ns=1 line_rate_bps=0 watermark_frac=0\n" + body,
		"negative line rate": "# millisampler interval_ns=1 line_rate_bps=-1 watermark_frac=0\n" + body,
		"NaN watermark":      "# millisampler interval_ns=1 line_rate_bps=1 watermark_frac=NaN\n" + body,
		"Inf watermark":      "# millisampler interval_ns=1 line_rate_bps=1 watermark_frac=+Inf\n" + body,
		"negative watermark": "# millisampler interval_ns=1 line_rate_bps=1 watermark_frac=-0.5\n" + body,
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReadRejectsMalformedRows: truncated or over-long records, non-finite
// sample values, and negative counters all error instead of panicking or
// producing a silently corrupt trace.
func TestReadRejectsMalformedRows(t *testing.T) {
	header := "# millisampler interval_ns=1000000 line_rate_bps=8000000000 watermark_frac=0.1\n" +
		"bytes,flows,ecn_bytes,retx_bytes\n"
	cases := map[string]string{
		"truncated row":       header + "100,2\n",
		"extra column":        header + "100,2,3,4,5\n",
		"truncated mid-field": header + "100,2,3,4\n200,1\n",
		"NaN bytes":           header + "NaN,2,3,4\n",
		"Inf ecn":             header + "100,2,+Inf,4\n",
		"negative retx":       header + "100,2,3,-4\n",
		"negative bytes":      header + "-100,2,3,4\n",
		"negative flows":      header + "100,-2,3,4\n",
		"float flows":         header + "100,2.5,3,4\n",
	}
	for name, input := range cases {
		got, err := Read(strings.NewReader(input))
		if err == nil {
			t.Errorf("%s: accepted as %+v", name, got)
		}
	}
}

// TestReadNeverPanics: arbitrary byte soup through Read either parses or
// errors; it must never panic. Mutations of a valid serialized trace probe
// the interesting paths (header intact, rows mangled).
func TestReadNeverPanics(t *testing.T) {
	valid := func() string {
		tr := NewTrace(1_000_000, 8_000_000_000, 4)
		tr.Samples[1] = Sample{Bytes: 900_000, Flows: 40, ECNBytes: 100_000, RetxBytes: 50}
		var buf strings.Builder
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	f := func(cut uint16, junk []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Read panicked: %v", r)
			}
		}()
		pos := int(cut) % (len(valid) + 1)
		mangled := valid[:pos] + string(junk) + valid[pos:]
		_, _ = Read(strings.NewReader(mangled))
		_, _ = Read(strings.NewReader(string(junk)))
		_, _ = Read(strings.NewReader(valid[:pos]))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripPreservesValidTraces: Write then Read is the identity on any
// trace with finite non-negative samples — the hardened validation must not
// reject values Write legitimately produces.
func TestRoundTripPreservesValidTraces(t *testing.T) {
	f := func(vals []uint32, wm uint8) bool {
		n := len(vals)
		if n == 0 || n > 100 {
			return true
		}
		tr := NewTrace(250_000, 25_000_000_000, n)
		tr.QueueWatermarkFraction = float64(wm) / 255
		for i, v := range vals {
			tr.Samples[i].Bytes = float64(v) / 7
			tr.Samples[i].Flows = int(v % 997)
			tr.Samples[i].ECNBytes = float64(v) / 13
			tr.Samples[i].RetxBytes = float64(v) / 31
		}
		var buf strings.Builder
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Logf("round trip rejected: %v", err)
			return false
		}
		if got.IntervalNS != tr.IntervalNS || got.LineRateBps != tr.LineRateBps ||
			got.QueueWatermarkFraction != tr.QueueWatermarkFraction || len(got.Samples) != n {
			return false
		}
		for i := range tr.Samples {
			if got.Samples[i] != tr.Samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
