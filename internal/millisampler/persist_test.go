package millisampler

import (
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := NewTrace(1_000_000, 25_000_000_000, 3)
	orig.QueueWatermarkFraction = 0.42
	orig.Samples[0] = Sample{Bytes: 3_125_000, Flows: 150, ECNBytes: 1_000_000, RetxBytes: 0}
	orig.Samples[1] = Sample{Bytes: 12.5, Flows: 1, ECNBytes: 0.25, RetxBytes: 12.25}
	// Samples[2] stays zero.

	var buf strings.Builder
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.IntervalNS != orig.IntervalNS || got.LineRateBps != orig.LineRateBps ||
		got.QueueWatermarkFraction != orig.QueueWatermarkFraction {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if len(got.Samples) != 3 {
		t.Fatalf("samples = %d", len(got.Samples))
	}
	for i := range orig.Samples {
		if got.Samples[i] != orig.Samples[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got.Samples[i], orig.Samples[i])
		}
	}
}

func TestTraceSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "trace.csv")
	orig := NewTrace(1_000_000, 10_000_000_000, 2)
	orig.Samples[0].Bytes = 100
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples[0].Bytes != 100 || len(got.Samples) != 2 {
		t.Fatalf("loaded = %+v", got.Samples)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a header\nbytes,flows,ecn_bytes,retx_bytes\n",
		"# millisampler interval_ns=1 line_rate_bps=1 watermark_frac=0\nwrong,header,row,x\n1,2,3,4\n",
		"# millisampler interval_ns=1 line_rate_bps=1 watermark_frac=0\nbytes,flows,ecn_bytes,retx_bytes\nnotanumber,2,3,4\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

// TestPersistenceProperty: analysis results survive the round trip, for
// arbitrary sample contents.
func TestPersistenceProperty(t *testing.T) {
	f := func(vals []uint32, flows []uint8) bool {
		n := len(vals)
		if n == 0 || n > 200 {
			return true
		}
		tr := NewTrace(1_000_000, 8_000_000_000, n)
		for i, v := range vals {
			tr.Samples[i].Bytes = float64(v)
			if i < len(flows) {
				tr.Samples[i].Flows = int(flows[i])
			}
			tr.Samples[i].ECNBytes = float64(v) / 3
		}
		var buf strings.Builder
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(buf.String()))
		if err != nil {
			return false
		}
		a := Detect(tr, 0.5)
		b := Detect(got, 0.5)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
