package obs

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety pins the disabled-registry contract: a nil registry hands
// out nil collectors whose handles are all no-ops — the one-branch hot
// path the simulator relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Collector("experiment", "none")
	if c != nil {
		t.Fatal("nil registry produced a non-nil collector")
	}
	c.Counter("x").Inc()
	c.Counter("x").Add(5)
	c.Gauge("g", MergeMax).Set(3)
	c.Histogram("h", []float64{1, 2}).Observe(1.5)
	c.Close()
	r.AddCounter("y", 2)
	r.SetGauge("z", MergeSum, 1)
	if n := r.CountMetrics(); n != 0 {
		t.Fatalf("nil registry reports %d metrics", n)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot has counters: %+v", s.Counters)
	}

	// Nil handles directly.
	var cnt *Counter
	cnt.Add(1)
	if cnt.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
}

// TestMergeModes checks each gauge fold.
func TestMergeModes(t *testing.T) {
	r := NewRegistry()
	for _, v := range []float64{3, 1, 2} {
		c := r.Collector()
		c.Gauge("sum", MergeSum).Set(v)
		c.Gauge("max", MergeMax).Set(v)
		c.Gauge("min", MergeMin).Set(v)
		c.Close()
	}
	s := r.Snapshot()
	got := map[string]float64{}
	for _, g := range s.Gauges {
		got[g.Name] = g.Value
	}
	if got["sum"] != 6 || got["max"] != 3 || got["min"] != 1 {
		t.Fatalf("gauge folds wrong: %v", got)
	}
}

// TestHistogramBuckets checks bucket assignment including boundaries and
// overflow.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	c := r.Collector()
	h := c.Histogram("h", []float64{10, 20, 30})
	for _, v := range []float64{5, 10, 10.5, 20, 25, 31, 1e9} {
		h.Observe(v)
	}
	c.Close()
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(s.Histograms))
	}
	hv := s.Histograms[0]
	// 5,10 -> (<=10); 10.5,20 -> (<=20); 25 -> (<=30); 31,1e9 -> overflow.
	want := []int64{2, 2, 1, 2}
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hv.Counts[i], w, hv.Counts)
		}
	}
	if hv.Count != 7 {
		t.Fatalf("count = %d", hv.Count)
	}
}

// TestParallelMergeDeterminism is the serial==parallel contract: merging
// the same per-run collectors in any order and from any number of
// goroutines yields byte-identical snapshots.
func TestParallelMergeDeterminism(t *testing.T) {
	build := func(workers int) []byte {
		r := NewRegistry()
		var wg sync.WaitGroup
		runs := 24
		sem := make(chan struct{}, workers)
		for i := 0; i < runs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				// Deterministic per-run content, random scheduling.
				time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
				c := r.Collector("experiment", "det", "run", fmt.Sprint(i%4))
				c.Counter("events").Add(int64(100 + i))
				c.Gauge("peak", MergeMax).Set(float64(i * 7 % 13))
				c.Histogram("lat", []float64{1, 10, 100}).Observe(float64(i))
				c.Close()
			}(i)
		}
		wg.Wait()
		var b bytes.Buffer
		if err := r.Snapshot().WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	serial := build(1)
	for _, w := range []int{2, 8} {
		if got := build(w); !bytes.Equal(serial, got) {
			t.Fatalf("snapshot differs between 1 and %d workers:\n%s\nvs\n%s", w, serial, got)
		}
	}
}

// TestSnapshotRoundTrip pins the stable-JSON promise: write, parse,
// re-write must be byte-identical, and the parsed snapshot validates.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Collector("experiment", "fig5", "flows", "80")
	c.Counter("sim_events_executed").Add(12345)
	c.Counter("net_queue_drops").Add(0)
	c.Gauge("net_queue_peak_pkts", MergeMax).Set(81)
	c.Histogram("cc_final_cwnd_bytes", ExpBuckets(1460, 2, 8)).Observe(1460)
	c.Close()
	r.SetGauge("wall_run_seconds", MergeSum, 1.25)

	var b1 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	s, err := ParseSnapshot(b1.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var b2 bytes.Buffer
	if err := s.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", b1.String(), b2.String())
	}

	// Deterministic() strips the wall-clock domain.
	det := s.Deterministic()
	for _, g := range det.Gauges {
		if strings.HasPrefix(g.Name, "wall_") {
			t.Fatalf("wall metric %s survived Deterministic()", g.Name)
		}
	}
	if len(det.Gauges) != 1 {
		t.Fatalf("deterministic gauges = %d, want 1", len(det.Gauges))
	}
}

// TestParseSnapshotRejectsCorruption checks the validator actually
// validates.
func TestParseSnapshotRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"bad mode":        `{"counters":[],"gauges":[{"name":"g","mode":"median","value":1}],"histograms":[]}`,
		"count mismatch":  `{"counters":[],"gauges":[],"histograms":[{"name":"h","bounds":[1],"counts":[1,2],"count":5,"sum":0}]}`,
		"negative bucket": `{"counters":[],"gauges":[],"histograms":[{"name":"h","bounds":[1],"counts":[-1,1],"count":0,"sum":0}]}`,
		"shape mismatch":  `{"counters":[],"gauges":[],"histograms":[{"name":"h","bounds":[1,2],"counts":[1],"count":1,"sum":0}]}`,
		"unsorted": `{"counters":[{"name":"b","value":1},{"name":"a","value":1}],` +
			`"gauges":[],"histograms":[]}`,
	}
	for name, blob := range cases {
		if _, err := ParseSnapshot([]byte(blob)); err == nil {
			t.Errorf("%s: ParseSnapshot accepted corrupt input", name)
		}
	}
}

// TestSummaryRendersEveryKind sanity-checks the human table.
func TestSummaryRendersEveryKind(t *testing.T) {
	r := NewRegistry()
	c := r.Collector("experiment", "fig5")
	c.Counter("sim_events_executed").Add(10)
	c.Gauge("net_queue_peak_pkts", MergeMax).Set(81)
	h := c.Histogram("lat_ms", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 9))
	}
	c.Close()
	out := r.Snapshot().Summary()
	for _, want := range []string{"sim_events_executed", "net_queue_peak_pkts", "lat_ms", "experiment=fig5", "n=100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	empty := NewRegistry().Snapshot().Summary()
	if !strings.Contains(empty, "(empty)") {
		t.Fatalf("empty summary: %q", empty)
	}
}

// TestLabelValidation pins the identity-character constraints.
func TestLabelValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range [][]string{
		{"only-key"},
		{"k", "a=b"},
		{"k", "a,b"},
		{"", "v"},
		{"k", ""},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("labels %q accepted", bad)
				}
			}()
			r.Collector(bad...)
		}()
	}
}

// TestKindAndBucketConflicts pins the fail-fast behavior on misuse.
func TestKindAndBucketConflicts(t *testing.T) {
	r := NewRegistry()
	c := r.Collector()
	c.Counter("m")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict accepted")
			}
		}()
		c.Gauge("m", MergeMax)
	}()
	c.Histogram("h", []float64{1, 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bucket conflict accepted")
			}
		}()
		c.Histogram("h", []float64{1, 2, 3})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("descending bounds accepted")
			}
		}()
		c.Histogram("h2", []float64{3, 1})
	}()
}

// TestProfilerServes starts the pprof endpoint on an ephemeral port and
// fetches the index, plus checks MemStats sampling lands in the registry.
func TestProfilerServes(t *testing.T) {
	r := NewRegistry()
	p, err := StartProfiler("127.0.0.1:0", r, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	resp, err := http.Get("http://" + p.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof index: status %d, body %.80q", resp.StatusCode, body)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if hasGauge(r, "mem_heap_alloc_bytes") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("MemStats sampler never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func hasGauge(r *Registry, name string) bool {
	for _, g := range r.Snapshot().Gauges {
		if g.Name == name {
			return true
		}
	}
	return false
}

// TestBucketHelpers covers the bounds constructors.
func TestBucketHelpers(t *testing.T) {
	e := ExpBuckets(1, 2, 4)
	if fmt.Sprint(e) != "[1 2 4 8]" {
		t.Fatalf("ExpBuckets = %v", e)
	}
	l := LinearBuckets(0, 5, 3)
	if fmt.Sprint(l) != "[0 5 10]" {
		t.Fatalf("LinearBuckets = %v", l)
	}
}
