package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Snapshot is a stable, serializable view of a registry: metrics sorted by
// canonical identity, labels exploded into maps for consumers. The JSON
// encoding is deterministic (slices are pre-sorted and Go marshals map
// keys in sorted order), so byte-level comparison of two snapshots is
// meaningful.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Mode   string            `json:"mode"`
	Value  float64           `json:"value"`
}

// HistogramValue is one histogram in a snapshot. Counts has one entry per
// bound plus a final overflow bucket.
type HistogramValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Bounds []float64         `json:"bounds"`
	Counts []int64           `json:"counts"`
	Count  int64             `json:"count"`
	Sum    float64           `json:"sum"`
}

// Snapshot captures the registry's current state. On a nil registry it
// returns an empty (but valid, serializable) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   []CounterValue{},
		Gauges:     []GaugeValue{},
		Histograms: []HistogramValue{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.sortedMetrics() {
		labels := parseLabels(m.labels)
		switch m.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterValue{Name: m.name, Labels: labels, Value: m.counter.n})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugeValue{Name: m.name, Labels: labels, Mode: m.gauge.mode.String(), Value: m.gauge.v})
		case kindHistogram:
			s.Histograms = append(s.Histograms, HistogramValue{
				Name:   m.name,
				Labels: labels,
				Bounds: append([]float64(nil), m.hist.bounds...),
				Counts: append([]int64(nil), m.hist.counts...),
				Count:  m.hist.count,
				Sum:    m.hist.sum,
			})
		}
	}
	return s
}

// parseLabels splits "k=v,k2=v2" back into a map (nil when empty).
func parseLabels(s string) map[string]string {
	if s == "" {
		return nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			panic(fmt.Sprintf("obs: malformed label pair %q", pair))
		}
		out[k] = v
	}
	return out
}

// WallPrefixes are the metric-name prefixes that live in the wall-clock
// domain: values that legitimately differ between two runs of the same
// seed (elapsed time, memory). Deterministic() strips them.
var WallPrefixes = []string{"wall_", "mem_"}

// isWallDomain reports whether a metric name is wall-clock-domain.
func isWallDomain(name string) bool {
	for _, p := range WallPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Deterministic returns a copy of the snapshot with wall-clock-domain
// metrics removed. Two instrumented runs of the same seed — serial or
// parallel — must produce byte-identical Deterministic snapshots; that is
// the property the CI obs gate enforces.
func (s *Snapshot) Deterministic() *Snapshot {
	out := &Snapshot{
		Counters:   []CounterValue{},
		Gauges:     []GaugeValue{},
		Histograms: []HistogramValue{},
	}
	for _, c := range s.Counters {
		if !isWallDomain(c.Name) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if !isWallDomain(g.Name) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if !isWallDomain(h.Name) {
			out.Histograms = append(out.Histograms, h)
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteFile dumps the snapshot to path ("-" means stdout), creating or
// truncating the file and propagating close errors (a full disk must not
// produce a silently truncated snapshot).
func (s *Snapshot) WriteFile(path string) error {
	if path == "-" {
		return s.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseSnapshot decodes a snapshot produced by WriteJSON, validating its
// shape: modes must parse, histogram counts must match bounds, and
// entries must be in canonical order.
func ParseSnapshot(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("obs: snapshot does not parse: %w", err)
	}
	for _, g := range s.Gauges {
		if _, err := parseMergeMode(g.Mode); err != nil {
			return nil, fmt.Errorf("obs: gauge %s: %w", g.Name, err)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return nil, fmt.Errorf("obs: histogram %s has %d counts for %d bounds (want bounds+1)",
				h.Name, len(h.Counts), len(h.Bounds))
		}
		var total int64
		for _, c := range h.Counts {
			if c < 0 {
				return nil, fmt.Errorf("obs: histogram %s has negative bucket count", h.Name)
			}
			total += c
		}
		if total != h.Count {
			return nil, fmt.Errorf("obs: histogram %s bucket counts sum to %d, count says %d",
				h.Name, total, h.Count)
		}
	}
	if !sort.SliceIsSorted(s.Counters, func(i, j int) bool {
		return counterLess(s.Counters[i], s.Counters[j])
	}) {
		return nil, fmt.Errorf("obs: snapshot counters not in canonical order")
	}
	return &s, nil
}

func counterLess(a, b CounterValue) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return labelKey(a.Labels) < labelKey(b.Labels)
}

// labelKey renders a label map deterministically for ordering checks.
func labelKey(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(',')
	}
	return b.String()
}

// Summary renders the snapshot as a human-readable table: counters first,
// then gauges, then histograms with count/mean and an approximate p50/p99
// read off the bucket CDF.
func (s *Snapshot) Summary() string {
	var b strings.Builder
	b.WriteString("metrics snapshot\n")
	b.WriteString("================\n")
	if len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0 {
		b.WriteString("(empty)\n")
		return b.String()
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-58s %14d\n", displayName(c.Name, c.Labels), c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-58s %14.6g  (%s)\n", displayName(g.Name, g.Labels), g.Value, g.Mode)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&b, "  %-58s n=%-8d mean=%-12.6g p50≈%-12.6g p99≈%.6g\n",
				displayName(h.Name, h.Labels), h.Count, mean,
				h.quantile(0.50), h.quantile(0.99))
		}
	}
	return b.String()
}

// displayName renders "name{k=v,...}" with sorted label keys.
func displayName(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

// quantile returns the upper bound of the bucket containing the q-th
// observation — a coarse but honest read of a fixed-bucket histogram. The
// overflow bucket reports as +Inf would be unhelpful, so it reports the
// last finite bound (a lower bound on the true quantile).
func (h *HistogramValue) quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen > target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Bounds[len(h.Bounds)-1]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}
