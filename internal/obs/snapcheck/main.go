// Command snapcheck validates metrics snapshots written by -metrics, for
// use in CI:
//
//	snapcheck FILE            parse + structural validation, print a digest
//	snapcheck -diff A B       additionally require the two snapshots'
//	                          deterministic subsets to be byte-identical
//	snapcheck -require name FILE
//	                          fail unless a metric with that name exists
//
// Exit code 0 means the checks passed; anything else is a failure with a
// diagnostic on stderr.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"incastlab/internal/obs"
)

func main() {
	diff := flag.Bool("diff", false, "compare two snapshots' deterministic subsets byte-for-byte")
	require := flag.String("require", "", "comma-separated metric names that must be present")
	flag.Parse()

	if err := run(*diff, *require, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "snapcheck: %v\n", err)
		os.Exit(1)
	}
}

func run(diff bool, require string, args []string) error {
	if diff {
		if len(args) != 2 {
			return fmt.Errorf("-diff needs exactly two snapshot files")
		}
		a, err := load(args[0])
		if err != nil {
			return err
		}
		b, err := load(args[1])
		if err != nil {
			return err
		}
		var ab, bb bytes.Buffer
		if err := a.Deterministic().WriteJSON(&ab); err != nil {
			return err
		}
		if err := b.Deterministic().WriteJSON(&bb); err != nil {
			return err
		}
		if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
			return fmt.Errorf("deterministic metrics differ between %s and %s", args[0], args[1])
		}
		fmt.Printf("deterministic metrics identical: %s == %s\n", args[0], args[1])
		return nil
	}

	if len(args) != 1 {
		return fmt.Errorf("need exactly one snapshot file (or -diff A B)")
	}
	s, err := load(args[0])
	if err != nil {
		return err
	}
	if require != "" {
		have := map[string]bool{}
		for _, c := range s.Counters {
			have[c.Name] = true
		}
		for _, g := range s.Gauges {
			have[g.Name] = true
		}
		for _, h := range s.Histograms {
			have[h.Name] = true
		}
		for _, name := range strings.Split(require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && !have[name] {
				return fmt.Errorf("%s: required metric %q missing", args[0], name)
			}
		}
	}
	fmt.Printf("%s: ok (%d counters, %d gauges, %d histograms)\n",
		args[0], len(s.Counters), len(s.Gauges), len(s.Histograms))
	return nil
}

func load(path string) (*obs.Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := obs.ParseSnapshot(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
