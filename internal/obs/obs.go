// Package obs is incastlab's observability layer: a zero-dependency,
// allocation-conscious metrics registry for the simulator and its
// experiment runners.
//
// The design follows the engine's concurrency model. Simulations are
// single-goroutine; experiment sweeps fan independent runs across a worker
// pool (internal/core/parallel.go). Metrics therefore flow through two
// stages:
//
//   - a Collector is single-goroutine and lock-free: each run creates one,
//     updates plain struct fields through Counter/Gauge/Histogram handles,
//     and merges it into the shared Registry exactly once (Close);
//   - the Registry is shared and mutex-guarded, and only ever sees whole
//     collectors. Every merge operation is commutative (counters add,
//     max-gauges fold by max, histograms add bucket-wise), so the merged
//     totals are identical whether runs executed serially or in parallel —
//     the same serial==parallel contract the experiment results obey.
//
// Instrumentation is nil-safe end to end: a nil *Registry produces nil
// Collectors, and every handle method on a nil receiver is a single-branch
// no-op. Code can therefore keep its instrumentation points unconditionally
// and pay one predictable branch when observability is off.
//
// Metric naming: names are snake_case; label keys and values must not
// contain '=', ',', '{', or '}' (they are rendered into a canonical
// "name{k=v,...}" identity). Metrics whose name starts with "wall_" or
// "mem_" live in the wall-clock domain: they are excluded from
// Snapshot.Deterministic, which is what determinism gates compare.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MergeMode defines how two observations of the same gauge combine, both
// within one collector and across collectors at merge time. All modes are
// commutative and associative, which is what keeps parallel runs'
// snapshots identical to serial ones.
type MergeMode uint8

const (
	// MergeSum accumulates values (e.g. per-run wall seconds).
	MergeSum MergeMode = iota
	// MergeMax keeps the largest observation (e.g. peak queue depth).
	MergeMax
	// MergeMin keeps the smallest observation.
	MergeMin
)

// String names the mode for snapshots.
func (m MergeMode) String() string {
	switch m {
	case MergeSum:
		return "sum"
	case MergeMax:
		return "max"
	case MergeMin:
		return "min"
	}
	return fmt.Sprintf("mode(%d)", m)
}

func parseMergeMode(s string) (MergeMode, error) {
	switch s {
	case "sum":
		return MergeSum, nil
	case "max":
		return MergeMax, nil
	case "min":
		return MergeMin, nil
	}
	return 0, fmt.Errorf("obs: unknown gauge merge mode %q", s)
}

// kind discriminates the metric variants inside the registry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// metric is one named, labeled series in either a collector (unlocked) or
// the registry (under the registry mutex).
type metric struct {
	id     string // canonical "name{k=v,...}"
	name   string
	labels string // "k=v,k2=v2" in caller order
	kind   kind

	// Counter state.
	counter Counter

	// Gauge state.
	gauge Gauge

	// Histogram state.
	hist Histogram
}

// Counter is a monotonically increasing integer. The zero value is usable;
// a nil handle is a no-op.
type Counter struct {
	n int64
}

// Add increments the counter by n. Nil-safe: one branch when disabled.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n += n
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a float64 with an explicit merge mode. The zero value merges as
// MergeSum; a nil handle is a no-op.
type Gauge struct {
	v    float64
	set  bool
	mode MergeMode
}

// Set folds v into the gauge under its merge mode: sum-gauges accumulate,
// max-gauges keep the largest value, min-gauges the smallest. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	if !g.set {
		g.v, g.set = v, true
		return
	}
	switch g.mode {
	case MergeSum:
		g.v += v
	case MergeMax:
		if v > g.v {
			g.v = v
		}
	case MergeMin:
		if v < g.v {
			g.v = v
		}
	}
}

// Value returns the folded value (0 on nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// merge folds another gauge's state in, using this gauge's mode.
func (g *Gauge) merge(o Gauge) {
	if o.set {
		g.Set(o.v)
	}
}

// Histogram counts observations into fixed buckets. Bounds are ascending
// upper bounds; an observation lands in the first bucket whose bound is
// >= v, or in the implicit overflow bucket. The zero value is unusable —
// histograms come from Collector.Histogram, which fixes the bounds — but a
// nil handle is a no-op.
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is overflow
	count  int64
	sum    float64
}

// Observe records v. Nil-safe: one branch when disabled.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	// Linear scan: bucket lists here are short (≤ ~20) and the branch
	// predictor does well on skewed observations; binary search costs more
	// below ~30 buckets.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// merge adds another histogram's buckets in. Bounds must match: the same
// metric identity must always be created with the same buckets, anything
// else is a programming error worth failing loudly on.
func (h *Histogram) merge(id string, o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic(fmt.Sprintf("obs: histogram %s merged with mismatched bucket count (%d vs %d)",
			id, len(h.bounds), len(o.bounds)))
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			panic(fmt.Sprintf("obs: histogram %s merged with mismatched bound %d (%g vs %g)",
				id, i, b, o.bounds[i]))
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
}

// ExpBuckets returns n ascending bounds starting at start and multiplying
// by factor: a decades-style scale for quantities spanning orders of
// magnitude (bytes, nanoseconds).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n ascending bounds start, start+step, ...
func LinearBuckets(start, step float64, n int) []float64 {
	if step <= 0 || n <= 0 {
		panic("obs: LinearBuckets needs step > 0, n > 0")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*step
	}
	return b
}

// Registry is the shared, thread-safe sink that collectors merge into. The
// zero value is not usable; a nil *Registry disables observability (its
// methods return nil collectors whose handles are no-ops).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Collector opens a single-goroutine collection scope whose metrics all
// carry the given base labels (alternating key, value). Returns nil — and
// thereby disables all downstream instrumentation — when the registry is
// nil. Close the collector to publish its metrics.
func (r *Registry) Collector(baseLabels ...string) *Collector {
	if r == nil {
		return nil
	}
	return &Collector{
		reg:     r,
		base:    renderPairs(baseLabels),
		metrics: make(map[string]*metric),
	}
}

// merge folds a collector's metrics in under the lock. Insertion order
// does not matter: every fold operation is commutative.
func (r *Registry) merge(c *Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, m := range c.metrics {
		dst, ok := r.metrics[id]
		if !ok {
			// First sighting: move the collector's metric in wholesale. The
			// collector is discarded after Close, so ownership transfer is
			// safe and avoids copying histogram buckets.
			r.metrics[id] = m
			continue
		}
		if dst.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %s registered as two different kinds", id))
		}
		switch m.kind {
		case kindCounter:
			dst.counter.n += m.counter.n
		case kindGauge:
			dst.gauge.merge(m.gauge)
		case kindHistogram:
			dst.hist.merge(id, &m.hist)
		}
	}
}

// CountMetrics returns the number of distinct metric identities recorded
// so far (0 on nil).
func (r *Registry) CountMetrics() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}

// AddCounter is a registry-level convenience for callers outside a
// simulation run (e.g. a cmd recording per-experiment totals). Nil-safe.
func (r *Registry) AddCounter(name string, n int64, labels ...string) {
	if r == nil {
		return
	}
	c := r.Collector()
	c.Counter(name, labels...).Add(n)
	c.Close()
}

// SetGauge is the gauge counterpart of AddCounter. Nil-safe.
func (r *Registry) SetGauge(name string, mode MergeMode, v float64, labels ...string) {
	if r == nil {
		return
	}
	c := r.Collector()
	c.Gauge(name, mode, labels...).Set(v)
	c.Close()
}

// Collector accumulates metrics for one run on one goroutine, without
// locks. Handles returned by Counter/Gauge/Histogram stay valid until
// Close, which publishes everything into the registry. A nil collector
// returns nil handles, so instrumentation costs one branch when disabled.
type Collector struct {
	reg     *Registry
	base    []string // rendered "k=v" pairs
	metrics map[string]*metric
	closed  bool
}

// lookup finds or creates the metric for (name, labels) of kind k. The
// identity's labels are sorted by key, so the same logical metric has one
// canonical id regardless of the order call sites list labels in.
func (c *Collector) lookup(name string, k kind, labels []string) *metric {
	if c.closed {
		panic("obs: collector used after Close")
	}
	pairs := append(append([]string(nil), c.base...), renderPairs(labels)...)
	sort.Strings(pairs)
	ls := strings.Join(pairs, ",")
	id := name
	if ls != "" {
		id = name + "{" + ls + "}"
	}
	m, ok := c.metrics[id]
	if !ok {
		m = &metric{id: id, name: name, labels: ls, kind: k}
		c.metrics[id] = m
	} else if m.kind != k {
		panic(fmt.Sprintf("obs: metric %s requested as two different kinds", id))
	}
	return m
}

// Counter returns the counter handle for name+labels. Nil-safe.
func (c *Collector) Counter(name string, labels ...string) *Counter {
	if c == nil {
		return nil
	}
	return &c.lookup(name, kindCounter, labels).counter
}

// Gauge returns the gauge handle for name+labels with the given merge
// mode. The mode is fixed at first creation; requesting an existing gauge
// with a different mode panics (two modes on one identity cannot merge
// deterministically). Nil-safe.
func (c *Collector) Gauge(name string, mode MergeMode, labels ...string) *Gauge {
	if c == nil {
		return nil
	}
	m := c.lookup(name, kindGauge, labels)
	if m.gauge.set && m.gauge.mode != mode {
		panic(fmt.Sprintf("obs: gauge %s requested with conflicting merge modes", m.id))
	}
	m.gauge.mode = mode
	return &m.gauge
}

// Histogram returns the histogram handle for name+labels over the given
// ascending bucket bounds. Bounds are fixed at first creation and must
// match on every subsequent request for the same identity. Nil-safe.
func (c *Collector) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if c == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
		}
	}
	m := c.lookup(name, kindHistogram, labels)
	if m.hist.bounds == nil {
		m.hist.bounds = append([]float64(nil), bounds...)
		m.hist.counts = make([]int64, len(bounds)+1)
	} else if len(m.hist.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %s requested with conflicting bucket bounds", m.id))
	}
	return &m.hist
}

// Close publishes the collector's metrics into the registry. Further use
// of the collector or its handles panics. Nil-safe and idempotent.
func (c *Collector) Close() {
	if c == nil || c.closed {
		return
	}
	c.closed = true
	c.reg.merge(c)
	c.metrics = nil
}

// renderPairs turns alternating key/value tokens into "k=v" pairs,
// validating the character constraints that keep the identity parseable.
func renderPairs(kv []string) []string {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	out := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		validateLabelToken(kv[i])
		validateLabelToken(kv[i+1])
		out = append(out, kv[i]+"="+kv[i+1])
	}
	return out
}

func validateLabelToken(s string) {
	if s == "" || strings.ContainsAny(s, "=,{}") {
		panic(fmt.Sprintf("obs: label token %q must be non-empty and free of '=', ',', '{', '}'", s))
	}
}

// sortedMetrics returns the registry's metrics in canonical snapshot
// order: by name, then by label string with a terminating comma — the
// terminator makes "a=2" sort before "a=2,b=1" (prefix first), matching
// how ParseSnapshot validates ordering.
func (r *Registry) sortedMetrics() []*metric {
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels+"," < out[j].labels+","
	})
	return out
}
