package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// Profiler is a running profiling endpoint plus an optional periodic
// runtime.MemStats sampler. It exists for long experiment sweeps: attach
// it with -pprof on cmd/figures or cmd/incastsim, point `go tool pprof`
// at the address, and read the sampled memory highs out of the metrics
// snapshot afterwards (mem_* gauges, wall-clock domain).
type Profiler struct {
	srv  *http.Server
	addr string
	done chan struct{}
	tick *time.Ticker
	reg  *Registry
	once sync.Once
}

// StartProfiler serves net/http/pprof on addr (e.g. "localhost:6060").
// When reg is non-nil and interval > 0 it also samples runtime.MemStats
// into mem_* gauges every interval. Returns an error if the address
// cannot be listened on.
func StartProfiler(addr string, reg *Registry, interval time.Duration) (*Profiler, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	p := &Profiler{
		srv:  &http.Server{Handler: mux},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go p.srv.Serve(ln)

	if reg != nil && interval > 0 {
		p.reg = reg
		p.tick = time.NewTicker(interval)
		go func() {
			for {
				select {
				case <-p.done:
					return
				case <-p.tick.C:
					SampleMemStats(reg)
				}
			}
		}()
	}
	return p, nil
}

// Addr returns the bound address (useful when addr had port 0).
func (p *Profiler) Addr() string { return p.addr }

// Stop shuts the endpoint and the sampler down, recording one final
// MemStats sample so even runs shorter than the sampling interval export
// mem_* gauges. Nil-safe and idempotent, so callers can Stop explicitly
// before snapshotting while also deferring it for early exits.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		close(p.done)
		if p.tick != nil {
			p.tick.Stop()
			SampleMemStats(p.reg)
		}
		p.srv.Close()
	})
}

// SampleMemStats records one runtime.MemStats observation into reg as
// mem_* gauges. All metrics are wall-clock-domain (excluded from
// deterministic snapshots): memory behavior legitimately differs between
// runs of the same seed. Highs fold by max, totals by max too (they are
// monotone within one process, so the last sample wins through max
// without needing a "latest" mode). Nil-safe.
func SampleMemStats(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c := reg.Collector()
	c.Gauge("mem_heap_alloc_bytes", MergeMax).Set(float64(ms.HeapAlloc))
	c.Gauge("mem_heap_sys_bytes", MergeMax).Set(float64(ms.HeapSys))
	c.Gauge("mem_total_alloc_bytes", MergeMax).Set(float64(ms.TotalAlloc))
	c.Gauge("mem_mallocs", MergeMax).Set(float64(ms.Mallocs))
	c.Gauge("mem_num_gc", MergeMax).Set(float64(ms.NumGC))
	c.Gauge("mem_gc_pause_total_ns", MergeMax).Set(float64(ms.PauseTotalNs))
	c.Gauge("mem_goroutines", MergeMax).Set(float64(runtime.NumGoroutine()))
	c.Close()
}
