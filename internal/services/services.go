// Package services models the five production services of the paper's
// Table 1 as calibrated stochastic workload generators. Each profile emits
// per-host, per-millisecond *offered* load and active-flow counts; the
// rackmodel queue then derives what Millisampler would measure at the host
// NIC (delivered bytes, ECN marks, retransmissions) and what the ToR would
// export (queue watermarks).
//
// The profiles are calibrated to the distributions the paper reports:
// burst frequency (Fig 2a), duration (Fig 2b), per-burst flow counts with
// service-specific bimodality (Fig 2c), queue watermarks (Fig 4a), marking
// rates (Fig 4b), retransmission volumes (Fig 4c), hour-scale stability
// with video's two operating modes (Fig 3a), and host-to-host stability
// (Fig 3b). Production data is proprietary; these generators reproduce the
// published shape of that data so that the full measurement pipeline can be
// exercised end to end.
package services

import (
	"math"
	"math/rand/v2"
	"sync"

	"incastlab/internal/millisampler"
	"incastlab/internal/rackmodel"
	"incastlab/internal/sim"
)

// genBuffers holds the per-host scratch slices Generate fills for every
// trace (offered load, flow counts, contention fractions). They are
// recycled through a sync.Pool across Generate calls — traces for a full
// figure cover thousands of host-hours, and a fresh slice per host is the
// dominant allocation otherwise. Every slice is fully overwritten before
// use, so no zeroing is needed on reuse; rackmodel.Run only reads its
// inputs, so the buffers are free again as soon as Generate returns.
type genBuffers struct {
	offered []float64
	flows   []int
	fracs   []float64
}

// grow returns s resized to n elements, reallocating only when the
// capacity is short. Contents are unspecified; callers overwrite fully.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

var genBufferPool = sync.Pool{New: func() any { return new(genBuffers) }}

// Profile describes one service's traffic behavior.
type Profile struct {
	// Name and Description correspond to Table 1.
	Name        string
	Description string

	// NICLineRateBps is the host NIC rate (production hosts: 25-100 Gbps).
	NICLineRateBps int64

	// BurstsPerSec is the mean burst arrival rate (Poisson).
	BurstsPerSec float64
	// DurationP is the geometric parameter for burst duration in ms:
	// P(d) = DurationP * (1-DurationP)^(d-1), capped at DurationCapMS.
	DurationP     float64
	DurationCapMS int

	// Flow-count mixture: with probability LowModeFrac the burst is a
	// low-flow task (uniform in [LowFlowsMin, LowFlowsMax]); otherwise the
	// count is lognormal with the given median and sigma (of log), capped.
	LowModeFrac float64
	LowFlowsMin int
	LowFlowsMax int
	FlowMedian  float64
	FlowSigma   float64
	FlowCap     int
	// ModeMedians, when non-zero, alternate the lognormal median between
	// two operating points with the given period — the "video" service's
	// scheduler spooling workers up and down.
	ModeMedians [2]float64
	ModePeriod  sim.Time

	// Queue-impact distribution: each burst's offered overshoot targets a
	// peak queue occupancy that is lognormal with median PeakMedianFrac
	// (fraction of queue capacity) and sigma PeakSigma. Peaks above 1
	// overflow the queue and produce retransmissions.
	PeakMedianFrac float64
	PeakSigma      float64
	// FrontLoad is the fraction of a burst's overshoot offered in its
	// first millisecond; the rest is spread across the burst. High values
	// (partition-aggregate fan-ins arriving together) push the queue over
	// the marking threshold immediately, marking nearly the whole burst;
	// low values ramp the queue so only the burst's tail is marked.
	FrontLoad float64

	// Rack-level contention: simultaneous bursts to other hosts in the
	// rack consume shared switch memory, shrinking this port's effective
	// buffer (paper Section 3.4). Windows arrive at ContentionPerSec, last
	// ContentionMeanMS on average, and scale capacity by a uniform draw
	// from [ContentionMinFrac, ContentionMaxFrac].
	ContentionPerSec  float64
	ContentionMeanMS  float64
	ContentionMinFrac float64
	ContentionMaxFrac float64

	// BaseUtil is the inter-burst background utilization.
	BaseUtil float64
	// BackgroundFlows is the mean number of background flows.
	BackgroundFlows int

	// Rack parameterizes the ToR downlink queue for this service's hosts.
	Rack rackmodel.Config
}

// table1 returns the five calibrated profiles.
func table1() []Profile {
	base := rackmodel.DefaultConfig()
	return []Profile{
		{
			Name:            "storage",
			Description:     "Distributed key-value store",
			NICLineRateBps:  base.LineRateBps,
			BurstsPerSec:    35,
			DurationP:       0.45,
			DurationCapMS:   20,
			LowModeFrac:     0.45, // the paper's low-flow "checkpointing" cliff
			LowFlowsMin:     4,
			LowFlowsMax:     18,
			FlowMedian:      85,
			FlowSigma:       0.55,
			FlowCap:         450,
			PeakMedianFrac:  0.055,
			PeakSigma:       0.95,
			FrontLoad:       0.10,
			BaseUtil:        0.015,
			BackgroundFlows: 4,
			Rack:            base,
		},
		{
			Name:            "aggregator",
			Description:     "Collects content to display on a page",
			NICLineRateBps:  base.LineRateBps,
			BurstsPerSec:    50,
			DurationP:       0.50,
			DurationCapMS:   20,
			LowModeFrac:     0.12,
			LowFlowsMin:     3,
			LowFlowsMax:     15,
			FlowMedian:      150,
			FlowSigma:       0.45,
			FlowCap:         500,
			PeakMedianFrac:  0.080, // particularly high queuing (Fig 4a)
			PeakSigma:       1.00,
			FrontLoad:       0.85,
			BaseUtil:        0.02,
			BackgroundFlows: 6,
			Rack:            base,
		},
		{
			Name:            "indexer",
			Description:     "Indexing service for recommendations",
			NICLineRateBps:  base.LineRateBps,
			BurstsPerSec:    20,
			DurationP:       0.38,
			DurationCapMS:   20,
			FlowMedian:      60,
			FlowSigma:       0.50,
			FlowCap:         300,
			PeakMedianFrac:  0.045,
			PeakSigma:       0.95,
			FrontLoad:       0.10,
			BaseUtil:        0.01,
			BackgroundFlows: 3,
			Rack:            base,
		},
		{
			Name:            "messaging",
			Description:     "Distributed real-time messaging system",
			NICLineRateBps:  base.LineRateBps,
			BurstsPerSec:    100,
			DurationP:       0.65,
			DurationCapMS:   12,
			FlowMedian:      40,
			FlowSigma:       0.45,
			FlowCap:         200,
			PeakMedianFrac:  0.040,
			PeakSigma:       0.90,
			FrontLoad:       0.15,
			BaseUtil:        0.015,
			BackgroundFlows: 5,
			Rack:            base,
		},
		{
			Name:            "video",
			Description:     "Video analytics service",
			NICLineRateBps:  base.LineRateBps,
			BurstsPerSec:    45,
			DurationP:       0.42,
			DurationCapMS:   20,
			FlowMedian:      225,
			FlowSigma:       0.30,
			FlowCap:         600,
			ModeMedians:     [2]float64{225, 275},
			ModePeriod:      3 * sim.Time(3600) * sim.Second, // ~3 h per mode
			PeakMedianFrac:  0.075,                           // high marking, like aggregator (Fig 4b)
			PeakSigma:       1.00,
			FrontLoad:       0.80,
			BaseUtil:        0.02,
			BackgroundFlows: 8,
			Rack:            base,
		},
	}
}

// All returns the five services of Table 1, in the paper's order.
func All() []Profile { return table1() }

// ByName returns the profile with the given name, or false.
func ByName(name string) (Profile, bool) {
	for _, p := range table1() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// GenConfig addresses one trace collection: which host, at what wall-clock
// offset (for the video mode switch and multi-round stability studies), for
// how long, under which base seed.
type GenConfig struct {
	// Seed is the experiment-wide base seed.
	Seed uint64
	// Host identifies the sampled host (0..19 in the paper's collections);
	// hosts get stable, slightly different flow scales.
	Host int
	// At is the wall-clock time of the collection start; rounds 10 minutes
	// apart over 18 hours reproduce Figure 3.
	At sim.Time
	// DurationMS is the trace length in milliseconds (2000 in the paper).
	DurationMS int
}

// subSeed derives a deterministic per-(service,host,round) seed.
func subSeed(p *Profile, gc GenConfig) uint64 {
	h := gc.Seed
	mix := func(v uint64) {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	for _, c := range []byte(p.Name) {
		mix(uint64(c))
	}
	mix(uint64(gc.Host) + 1)
	mix(uint64(gc.At) + 1)
	return h
}

// hostScale returns a stable per-host multiplier on flow counts (~N(1,3%)),
// so hosts of one service look similar but not identical (Fig 3b). The
// profile name is mixed into the seed so that host k of one service does
// not share its multiplier with host k of every other service.
func hostScale(p *Profile, seed uint64, host int) float64 {
	h := seed ^ (uint64(host)+1)*0x517cc1b727220a95
	for _, c := range []byte(p.Name) {
		h ^= uint64(c) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	rng := sim.NewRand(h)
	return 1 + 0.03*rng.NormFloat64()
}

// flowMedianAt returns the lognormal median in effect at wall-clock time t
// (implements the video service's two operating modes).
func (p *Profile) flowMedianAt(t sim.Time) float64 {
	if p.ModeMedians[0] == 0 || p.ModePeriod <= 0 {
		return p.FlowMedian
	}
	phase := (int64(t) / int64(p.ModePeriod)) % 2
	return p.ModeMedians[phase]
}

// drawDuration samples a burst duration in whole milliseconds.
func (p *Profile) drawDuration(rng *rand.Rand) int {
	d := 1
	for rng.Float64() > p.DurationP && d < p.DurationCapMS {
		d++
	}
	return d
}

// drawFlows samples a per-burst flow count at wall-clock time t.
func (p *Profile) drawFlows(rng *rand.Rand, t sim.Time, scale float64) int {
	if p.LowModeFrac > 0 && rng.Float64() < p.LowModeFrac {
		return p.LowFlowsMin + rng.IntN(p.LowFlowsMax-p.LowFlowsMin+1)
	}
	median := p.flowMedianAt(t) * scale
	f := int(math.Round(median * math.Exp(p.FlowSigma*rng.NormFloat64())))
	if f < 1 {
		f = 1
	}
	if p.FlowCap > 0 && f > p.FlowCap {
		f = p.FlowCap
	}
	return f
}

// drawPeak samples a burst's target queue peak fraction. The draw is
// capped at 1.25x capacity: beyond that, real senders have backed off
// (congestion control stops delivering the overshoot). The cap bounds the
// worst-case drop volume near what the paper reports (~24% of line rate).
func (p *Profile) drawPeak(rng *rand.Rand) float64 {
	peak := p.PeakMedianFrac * math.Exp(p.PeakSigma*rng.NormFloat64())
	if peak > 1.25 {
		peak = 1.25
	}
	return peak
}

// Generate synthesizes one Millisampler trace for the host and time given
// by gc: offered load is constructed burst by burst, pushed through the
// rackmodel queue, and assembled into measured samples.
func (p Profile) Generate(gc GenConfig) *millisampler.Trace {
	if gc.DurationMS <= 0 {
		panic("services: trace duration must be positive")
	}
	rng := sim.NewRand(subSeed(&p, gc))
	scale := hostScale(&p, gc.Seed, gc.Host)
	n := gc.DurationMS
	intervalNS := int64(sim.Millisecond)
	capacityPerMS := float64(p.NICLineRateBps) / 8 / 1000

	buf := genBufferPool.Get().(*genBuffers)
	defer genBufferPool.Put(buf)
	buf.offered = grow(buf.offered, n)
	buf.flows = grow(buf.flows, n)
	offered := buf.offered
	flows := buf.flows

	// Background load and flows.
	for i := 0; i < n; i++ {
		offered[i] = p.BaseUtil * capacityPerMS * (0.5 + rng.Float64())
		flows[i] = poisson(rng, float64(p.BackgroundFlows))
	}

	// Bursts: Poisson arrivals; each burst offers line rate for its
	// duration plus a front-loaded overshoot that builds the target queue
	// peak. Overlapping bursts are pushed back, like queued work.
	meanGapMS := 1000 / p.BurstsPerSec
	at := exponential(rng, meanGapMS)
	for at < float64(n) {
		start := int(at)
		d := p.drawDuration(rng)
		f := p.drawFlows(rng, gc.At, scale)
		peak := p.drawPeak(rng)

		overshoot := peak * p.Rack.QueueCapacityBytes
		for j := 0; j < d && start+j < n; j++ {
			idx := start + j
			offered[idx] += capacityPerMS * 0.99
			if j == 0 {
				offered[idx] += overshoot * p.FrontLoad
			}
			offered[idx] += overshoot * (1 - p.FrontLoad) / float64(d)
			fj := float64(f) * (0.95 + 0.1*rng.Float64())
			if int(fj) > flows[idx] {
				flows[idx] = int(fj)
			}
		}
		// The queue built by the overshoot drains at line rate after the
		// offered burst ends, extending the measured burst; keep the flow
		// count attributed to those spill-over intervals.
		spill := int(math.Ceil(overshoot / capacityPerMS))
		for j := 0; j < spill && start+d+j < n; j++ {
			idx := start + d + j
			if f > flows[idx] {
				flows[idx] = f
			}
		}
		// Bursts are distinct events: leave at least the spill-over plus
		// two quiet milliseconds before the next one, so detected bursts
		// do not merge into artifact mega-bursts.
		next := at + exponential(rng, meanGapMS)
		if min := at + float64(d+spill+2); next < min {
			next = min
		}
		at = next
	}

	// Rack-level shared-buffer contention windows.
	rackCfg := p.Rack
	if p.ContentionPerSec > 0 {
		buf.fracs = grow(buf.fracs, n)
		fr := buf.fracs
		for i := range fr {
			fr[i] = 1
		}
		cAt := exponential(rng, 1000/p.ContentionPerSec)
		for cAt < float64(n) {
			d := 1 + int(exponential(rng, p.ContentionMeanMS))
			f := p.ContentionMinFrac + rng.Float64()*(p.ContentionMaxFrac-p.ContentionMinFrac)
			for j := 0; j < d && int(cAt)+j < n; j++ {
				if f < fr[int(cAt)+j] {
					fr[int(cAt)+j] = f
				}
			}
			cAt += float64(d) + exponential(rng, 1000/p.ContentionPerSec)
		}
		rackCfg.CapacityFractions = fr
	}

	res := rackmodel.Run(offered, intervalNS, rackCfg)

	tr := millisampler.NewTrace(intervalNS, p.NICLineRateBps, n)
	tr.QueueWatermarkFraction = res.WatermarkFraction
	for i := 0; i < n; i++ {
		tr.Samples[i] = millisampler.Sample{
			Bytes:     res.Delivered[i],
			Flows:     flows[i],
			ECNBytes:  res.ECNBytes[i],
			RetxBytes: res.RetxBytes[i],
		}
	}
	return tr
}

// poisson draws from a Poisson distribution with the given mean (Knuth's
// method; means here are tiny).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// exponential draws an exponential inter-arrival with the given mean.
func exponential(rng *rand.Rand, mean float64) float64 {
	return -mean * math.Log(1-rng.Float64())
}
