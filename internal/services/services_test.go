package services

import (
	"testing"

	"incastlab/internal/millisampler"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
)

func TestTable1HasFiveServices(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("services = %d, want 5", len(all))
	}
	want := []string{"storage", "aggregator", "indexer", "messaging", "video"}
	for i, name := range want {
		if all[i].Name != name {
			t.Fatalf("service %d = %q, want %q", i, all[i].Name, name)
		}
		if all[i].Description == "" {
			t.Fatalf("service %q has no description", name)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("video")
	if !ok || p.Name != "video" {
		t.Fatalf("ByName(video) = %+v, %v", p, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName should fail for unknown service")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("aggregator")
	gc := GenConfig{Seed: 7, Host: 3, At: sim.Second, DurationMS: 500}
	a, b := p.Generate(gc), p.Generate(gc)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs under identical config", i)
		}
	}
	gc.Host = 4
	c := p.Generate(gc)
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different hosts produced identical traces")
	}
}

// TestHostScalePerService pins the hostScale regression: the per-host flow
// multiplier must depend on the service profile (two services' host-k
// multipliers differ) while staying deterministic for one profile.
func TestHostScalePerService(t *testing.T) {
	storage, _ := ByName("storage")
	video, _ := ByName("video")
	const seed, host = 7, 3
	if a, b := hostScale(&storage, seed, host), hostScale(&storage, seed, host); a != b {
		t.Fatalf("hostScale not deterministic: %v vs %v", a, b)
	}
	if a, b := hostScale(&storage, seed, host), hostScale(&video, seed, host); a == b {
		t.Fatalf("hostScale ignores the profile: storage and video both got %v", a)
	}
	// Different hosts of one service still differ from each other.
	if a, b := hostScale(&storage, seed, 3), hostScale(&storage, seed, 4); a == b {
		t.Fatalf("hostScale ignores the host: hosts 3 and 4 both got %v", a)
	}
}

// corpusFor caches nothing; small corpora keep tests quick.
func corpusFor(t *testing.T, name string, hosts, rounds int) *millisampler.Report {
	t.Helper()
	p, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown service %q", name)
	}
	cfg := DefaultCollectConfig()
	cfg.Hosts = hosts
	cfg.Rounds = rounds
	return millisampler.Analyze(Collect(p, cfg))
}

func TestCalibrationBurstFrequencyAndDuration(t *testing.T) {
	for _, p := range All() {
		rep := corpusFor(t, p.Name, 5, 2)
		f := rep.BurstsPerSecond.Quantile(0.5)
		// Paper Fig 2a: tens to ~200 bursts per second.
		if f < 10 || f > 250 {
			t.Errorf("%s: burst frequency p50 = %v, want 10..250", p.Name, f)
		}
		// Paper Fig 2b: bursts last 1-20 ms, most 1-2 ms.
		if max := rep.DurationMS.Max(); max > 25 {
			t.Errorf("%s: max duration %v ms, want <= ~20", p.Name, max)
		}
		if short := rep.DurationMS.At(2); short < 0.4 {
			t.Errorf("%s: only %.2f of bursts are 1-2 ms, want >= 0.4", p.Name, short)
		}
	}
}

func TestCalibrationUtilizationIsLow(t *testing.T) {
	// Paper Fig 1a: overall utilization ~10% despite line-rate bursts.
	for _, p := range All() {
		rep := corpusFor(t, p.Name, 4, 2)
		if rep.MeanUtilization > 0.30 || rep.MeanUtilization < 0.02 {
			t.Errorf("%s: mean utilization = %v, want low (~0.05-0.2)", p.Name, rep.MeanUtilization)
		}
	}
}

func TestCalibrationFlowCounts(t *testing.T) {
	for _, p := range All() {
		rep := corpusFor(t, p.Name, 5, 2)
		p99 := rep.Flows.Quantile(0.99)
		// Paper Fig 2c: p99 reaches 100-500+ flows depending on service.
		if p99 < 80 || p99 > 650 {
			t.Errorf("%s: flows p99 = %v, want 80..650", p.Name, p99)
		}
		// The majority of bursts are incasts for every service except
		// storage, whose low-flow mode is ~45%.
		if frac := rep.IncastFraction(); frac < 0.5 {
			t.Errorf("%s: incast fraction = %v, want >= 0.5", p.Name, frac)
		}
	}
}

func TestCalibrationBimodalCliffs(t *testing.T) {
	// Paper Fig 2c: storage and aggregator show a low-flow cliff where
	// 10-45% of bursts have fewer than 20 flows.
	storage := corpusFor(t, "storage", 5, 2)
	if low := storage.Flows.At(20); low < 0.3 || low > 0.6 {
		t.Errorf("storage: low-flow fraction = %v, want ~0.45", low)
	}
	agg := corpusFor(t, "aggregator", 5, 2)
	if low := agg.Flows.At(20); low < 0.05 || low > 0.3 {
		t.Errorf("aggregator: low-flow fraction = %v, want ~0.12", low)
	}
	indexer := corpusFor(t, "indexer", 5, 2)
	if low := indexer.Flows.At(20); low > 0.1 {
		t.Errorf("indexer: low-flow fraction = %v, want near 0", low)
	}
}

func TestCalibrationECNMarking(t *testing.T) {
	// Paper Fig 4b: ~50% of bursts see no marking at all; aggregator and
	// video mark heavily (p90 > 60%).
	for _, name := range []string{"aggregator", "video"} {
		rep := corpusFor(t, name, 5, 2)
		if zero := rep.ECNFraction.At(0); zero < 0.15 || zero > 0.6 {
			t.Errorf("%s: zero-marking fraction = %v", name, zero)
		}
		if p90 := rep.ECNFraction.Quantile(0.9); p90 < 0.6 {
			t.Errorf("%s: ECN p90 = %v, want > 0.6", name, p90)
		}
	}
	for _, name := range []string{"storage", "indexer", "messaging"} {
		rep := corpusFor(t, name, 5, 2)
		if zero := rep.ECNFraction.At(0); zero < 0.35 {
			t.Errorf("%s: zero-marking fraction = %v, want >= 0.35", name, zero)
		}
	}
}

func TestCalibrationRetransmissionsRareButLarge(t *testing.T) {
	// Paper Fig 4c: at most ~5% of bursts see retransmissions; the tail
	// reaches several percent of line rate.
	for _, p := range All() {
		rep := corpusFor(t, p.Name, 8, 3)
		if zero := rep.RetxFraction.At(0); zero < 0.95 {
			t.Errorf("%s: %.3f of bursts retransmit-free, want >= 0.95", p.Name, zero)
		}
		if max := rep.RetxFraction.Max(); max > 0.30 {
			t.Errorf("%s: max retx fraction = %v, want <= ~0.25", p.Name, max)
		}
	}
}

func TestCalibrationQueueWatermarks(t *testing.T) {
	// Paper Fig 4a: the median burst is attributed a watermark of
	// 20-100% of queue capacity.
	for _, p := range All() {
		rep := corpusFor(t, p.Name, 5, 2)
		wm := rep.QueueWatermark.Quantile(0.5)
		if wm < 0.15 || wm > 1.0 {
			t.Errorf("%s: watermark p50 = %v, want 0.2..1.0", p.Name, wm)
		}
	}
}

func TestVideoModeSwitch(t *testing.T) {
	// Paper Fig 3a: video alternates between ~225 and ~275 mean flows.
	p, _ := ByName("video")
	meanFlowsAt := func(at sim.Time) float64 {
		var all []float64
		for h := 0; h < 6; h++ {
			tr := p.Generate(GenConfig{Seed: 1, Host: h, At: at, DurationMS: 2000})
			s := millisampler.FlowStats(tr)
			all = append(all, s.Mean)
		}
		return stats.Mean(all)
	}
	m0 := meanFlowsAt(0)
	m1 := meanFlowsAt(p.ModePeriod + sim.Second)
	if m1-m0 < 20 {
		t.Fatalf("video modes: %v vs %v, want a ~50-flow shift", m0, m1)
	}
	// And back again after a full period pair.
	m2 := meanFlowsAt(2*p.ModePeriod + sim.Second)
	if m2-m0 > 25 || m0-m2 > 25 {
		t.Fatalf("video mode did not return: %v vs %v", m0, m2)
	}
}

func TestStabilityAcrossHostsAndTime(t *testing.T) {
	// Paper Fig 3: per-service mean flow counts are stable across hosts
	// and across rounds.
	p, _ := ByName("aggregator")
	var hostMeans []float64
	for h := 0; h < 8; h++ {
		tr := p.Generate(GenConfig{Seed: 1, Host: h, At: 0, DurationMS: 2000})
		hostMeans = append(hostMeans, millisampler.FlowStats(tr).Mean)
	}
	sum := stats.Summarize(hostMeans)
	if spread := (sum.Max - sum.Min) / sum.Mean; spread > 0.5 {
		t.Fatalf("host-to-host mean flow spread = %v, want stable (< 0.5)", spread)
	}

	var roundMeans []float64
	for r := 0; r < 6; r++ {
		tr := p.Generate(GenConfig{Seed: 1, Host: 0, At: sim.Time(r) * 600 * sim.Second, DurationMS: 2000})
		roundMeans = append(roundMeans, millisampler.FlowStats(tr).Mean)
	}
	sum = stats.Summarize(roundMeans)
	if spread := (sum.Max - sum.Min) / sum.Mean; spread > 0.5 {
		t.Fatalf("round-to-round mean flow spread = %v, want stable", spread)
	}
}

func TestCollectShapes(t *testing.T) {
	p, _ := ByName("indexer")
	cfg := CollectConfig{Seed: 1, Hosts: 3, Rounds: 2, RoundSpacing: sim.Second, TraceMS: 100}
	traces := Collect(p, cfg)
	if len(traces) != 6 {
		t.Fatalf("traces = %d, want 6", len(traces))
	}
	round := CollectRound(p, cfg, 1)
	if len(round) != 3 {
		t.Fatalf("round traces = %d, want 3", len(round))
	}
	// CollectRound(1) must equal the second half of Collect.
	for h := 0; h < 3; h++ {
		a, b := traces[3+h], round[h]
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				t.Fatalf("CollectRound mismatch at host %d sample %d", h, i)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	p, _ := ByName("storage")
	defer func() {
		if recover() == nil {
			t.Fatal("zero duration did not panic")
		}
	}()
	p.Generate(GenConfig{DurationMS: 0})
}
