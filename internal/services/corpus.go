package services

import (
	"incastlab/internal/millisampler"
	"incastlab/internal/sim"
)

// CollectConfig describes a measurement campaign over one service, matching
// the paper's methodology: "we collect a two-second trace (measured at 1 ms
// granularity) from 20 hosts in each service, nine times throughout a day"
// (Fig 2/4) and "20 hosts for two seconds at 10 minute intervals over 18
// hours" (Fig 3).
type CollectConfig struct {
	// Seed is the campaign-wide base seed.
	Seed uint64
	// Hosts is how many hosts to sample (20 in the paper).
	Hosts int
	// Rounds is how many collection rounds to run.
	Rounds int
	// RoundSpacing is the wall-clock gap between rounds.
	RoundSpacing sim.Time
	// StartAt is the wall-clock time of round 0.
	StartAt sim.Time
	// TraceMS is the per-trace duration in milliseconds (2000 in the
	// paper).
	TraceMS int
}

// DefaultCollectConfig returns the paper's Figure 2/4 campaign: 20 hosts,
// 9 rounds spread over a day, 2-second traces.
func DefaultCollectConfig() CollectConfig {
	return CollectConfig{
		Seed:         1,
		Hosts:        20,
		Rounds:       9,
		RoundSpacing: sim.Time(8) * 900 * sim.Second, // 2 h between rounds
		TraceMS:      2000,
	}
}

// Collect generates the full corpus of traces for one service.
func Collect(p Profile, cfg CollectConfig) []*millisampler.Trace {
	if cfg.Hosts <= 0 || cfg.Rounds <= 0 {
		panic("services: campaign needs at least one host and round")
	}
	traces := make([]*millisampler.Trace, 0, cfg.Hosts*cfg.Rounds)
	for r := 0; r < cfg.Rounds; r++ {
		at := cfg.StartAt + sim.Time(r)*cfg.RoundSpacing
		for h := 0; h < cfg.Hosts; h++ {
			traces = append(traces, p.Generate(GenConfig{
				Seed:       cfg.Seed,
				Host:       h,
				At:         at,
				DurationMS: cfg.TraceMS,
			}))
		}
	}
	return traces
}

// CollectRound generates one round's traces (all hosts at one time).
func CollectRound(p Profile, cfg CollectConfig, round int) []*millisampler.Trace {
	traces := make([]*millisampler.Trace, 0, cfg.Hosts)
	at := cfg.StartAt + sim.Time(round)*cfg.RoundSpacing
	for h := 0; h < cfg.Hosts; h++ {
		traces = append(traces, p.Generate(GenConfig{
			Seed:       cfg.Seed,
			Host:       h,
			At:         at,
			DurationMS: cfg.TraceMS,
		}))
	}
	return traces
}
