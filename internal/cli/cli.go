// Package cli factors the flag plumbing shared by incastlab's commands
// (cmd/figures, cmd/incastsim): worker-count validation, the optional
// metrics registry, and the optional pprof profiler, so each command
// declares the flags once and gets identical semantics.
package cli

import (
	"flag"
	"fmt"
	"os"
	"time"

	"incastlab/internal/core"
	"incastlab/internal/obs"
)

// Common holds the flag values every incastlab command shares.
type Common struct {
	// Workers bounds the goroutines per experiment sweep.
	Workers int
	// Audit runs every packet-level simulation in checked mode.
	Audit bool
	// MetricsPath is where the JSON metrics snapshot lands ("-" = stdout);
	// empty disables metrics collection unless PprofAddr is set.
	MetricsPath string
	// PprofAddr serves net/http/pprof when non-empty.
	PprofAddr string
	// Fidelity selects the simulation backend ("packet" or "flow"; empty
	// means packet-level).
	Fidelity string
	// Aggregation selects the fluid backend's flow representation
	// ("auto", "cohort", or "perflow"; empty means auto). Requires
	// -fidelity flow.
	Aggregation string

	metrics *obs.Registry
	prof    *obs.Profiler
}

// Register declares the shared flags on fs and returns the struct their
// values land in. Call Setup after fs.Parse.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Workers, "workers", 0, "worker goroutines per experiment sweep (0 = GOMAXPROCS, 1 = serial)")
	fs.BoolVar(&c.Audit, "audit", false, "run simulations in checked mode: enforce invariants (conservation, queue bounds, cc protocol bounds) on every packet-level run")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write a JSON metrics snapshot of all runs to this file (\"-\" for stdout)")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) and sample memory statistics")
	fs.StringVar(&c.Fidelity, "fidelity", "", "simulation backend: \"packet\" (default, discrete-event) or \"flow\" (fluid fast path; rejects packet-level-only features)")
	fs.StringVar(&c.Aggregation, "aggregation", "", "fluid flow representation: \"auto\" (default; cohorts above the size threshold), \"cohort\", or \"perflow\"; requires -fidelity flow")
	return c
}

// Setup validates the parsed flag values and starts whatever machinery
// they request: the metrics registry (for -metrics or -pprof) and the
// pprof profiler. Call Close — usually deferred — afterwards.
func (c *Common) Setup() error {
	if err := core.ValidateWorkers(c.Workers); err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	if !core.KnownFidelity(c.Fidelity) {
		return fmt.Errorf("-fidelity: unknown backend %q (valid: %q, %q)",
			c.Fidelity, core.FidelityPacket, core.FidelityFlow)
	}
	if !core.KnownAggregation(c.Aggregation) {
		return fmt.Errorf("-aggregation: unknown level %q (valid: %q, %q, %q)",
			c.Aggregation, core.AggregationAuto, core.AggregationCohort, core.AggregationPerFlow)
	}
	if c.Aggregation != "" && c.Fidelity != core.FidelityFlow {
		return fmt.Errorf("-aggregation %q shapes the fluid backend's flow population; it requires -fidelity %q",
			c.Aggregation, core.FidelityFlow)
	}
	if c.MetricsPath != "" || c.PprofAddr != "" {
		c.metrics = obs.NewRegistry()
	}
	if c.PprofAddr != "" {
		prof, err := obs.StartProfiler(c.PprofAddr, c.metrics, time.Second)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		c.prof = prof
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", prof.Addr())
	}
	return nil
}

// Metrics returns the run telemetry registry — nil unless -metrics or
// -pprof asked for one (a nil registry disables instrumentation).
func (c *Common) Metrics() *obs.Registry { return c.metrics }

// Close stops the profiler if one is running. Idempotent.
func (c *Common) Close() {
	if c.prof != nil {
		c.prof.Stop()
	}
}

// WriteMetrics finishes the metrics pipeline: it stops the profiler first
// (so the final MemStats sample lands in the file) and writes the snapshot
// where -metrics pointed. No-op when -metrics was not given. printSummary
// additionally prints the human-readable metrics digest before writing.
func (c *Common) WriteMetrics(printSummary bool) error {
	if c.MetricsPath == "" {
		return nil
	}
	c.Close()
	snap := c.metrics.Snapshot()
	if printSummary {
		fmt.Println()
		fmt.Print(snap.Summary())
	}
	if err := snap.WriteFile(c.MetricsPath); err != nil {
		return fmt.Errorf("-metrics: %w", err)
	}
	if c.MetricsPath != "-" {
		fmt.Printf("metrics snapshot written to %s\n", c.MetricsPath)
	}
	return nil
}
