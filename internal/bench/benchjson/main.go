// Command benchjson converts `go test -bench` output into a structured
// JSON artifact, for use in CI:
//
//	go test -bench ... -benchmem . | benchjson -label current -out BENCH_PR5.json
//
// The output file holds one section per label (typically "baseline" and
// "current"); an existing file is merged so the two sections can be written
// by separate runs — the baseline before a change, the current numbers
// after. Within a section each benchmark records ns/op, B/op, allocs/op,
// and any extra ReportMetric units (e.g. events/s).
//
// Exit code 0 means output was written; anything else is a failure with a
// diagnostic on stderr.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// result is one benchmark's measurements.
type result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"b_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// section is one labeled measurement campaign.
type section struct {
	Commit     string            `json:"commit,omitempty"`
	Go         string            `json:"go,omitempty"`
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-P  N  value unit [value unit ...]`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+(\S.*)$`)

func main() {
	label := flag.String("label", "current", "section to write (e.g. baseline, current)")
	out := flag.String("out", "", "JSON file to create or merge into (required)")
	commit := flag.String("commit", "", "commit hash to record in the section")
	note := flag.String("note", "", "free-form note to record in the section")
	flag.Parse()

	if err := run(*label, *out, *commit, *note, os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(label, out, commit, note string, in io.Reader) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	benches, err := parse(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}

	doc := map[string]*section{}
	if prev, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(prev, &doc); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	sec := doc[label]
	if sec == nil {
		sec = &section{Benchmarks: map[string]result{}}
		doc[label] = sec
	} else if sec.Benchmarks == nil {
		sec.Benchmarks = map[string]result{}
	}
	sec.Go = runtime.Version()
	if commit != "" {
		sec.Commit = commit
	}
	if note != "" {
		sec.Note = note
	}
	for name, r := range benches {
		sec.Benchmarks[name] = r
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: wrote %d benchmarks into section %q\n", out, len(benches), label)
	return nil
}

// parse extracts benchmark result lines from go test output, ignoring
// everything else (experiment summaries, PASS/ok trailers).
func parse(in io.Reader) (map[string]result, error) {
	benches := map[string]result{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			continue
		}
		r := result{Iterations: iters}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", m[1], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
		// Repeated runs of one benchmark (-count>1) keep the fastest, the
		// usual best-of reading that discounts scheduler noise.
		if prev, ok := benches[m[1]]; !ok || r.NsPerOp < prev.NsPerOp {
			benches[m[1]] = r
		}
	}
	return benches, sc.Err()
}
