package flowsim

// Cohort aggregation: the incast workloads this package exists for are
// massively symmetric — hundreds to thousands of flows sharing one CC law,
// one demand size, one base RTT, and (per ECMP spine choice) one ordered
// queue path. Integrating each such equivalence class as ONE weighted
// record makes step cost proportional to the number of distinct behaviors
// instead of the number of flows, which is what turns "million-flow" from
// a sharded grid into a single run.
//
// A cohort is a contiguous span of member flow IDs plus the per-member
// fluid state every member shares (unsent demand, backlog, window,
// controller). Aggregate quantities — queue arrivals, sent/dropped volume,
// timeout counters — scale by the member count; per-member quantities
// (window headroom, the duplicate-ACK test, RTO backoff) never do. Members
// of one class are split into jitter buckets at formation (each bucket
// draws one start jitter per burst, approximating the per-flow jitter
// spread), and cohorts split lazily and exactly at runtime when a tail
// drop bites only part of a cohort — the single event that can make
// members diverge, since every other reaction (marking, round closes, RTO
// parking, completion) applies to all members identically.
//
// The "perflow" aggregation level is the degenerate instance: every flow
// its own cohort, weight 1, through the SAME code path. Multiplications by
// a weight of 1.0 are IEEE-exact and the iteration and RNG-draw orders are
// identical, so per-flow runs are byte-for-byte what the pre-cohort engine
// produced (TestCohortSingletonByteIdentity pins it).

// Aggregation levels for Config.Aggregation.
const (
	// AggregationAuto (or empty) picks cohorts for large incasts and
	// per-flow integration below AutoCohortMinFlows, where exactness is
	// cheap and the historical per-flow results stay bit-stable.
	AggregationAuto = "auto"
	// AggregationCohort forces cohort aggregation regardless of size.
	AggregationCohort = "cohort"
	// AggregationPerFlow forces one flow per cohort (the exact engine).
	AggregationPerFlow = "perflow"
)

// AutoCohortMinFlows is the incast degree at which "auto" switches from
// per-flow to cohort integration. Below it the per-flow engine is already
// fast and its results are pinned by goldens; above it symmetry pays.
const AutoCohortMinFlows = 4096

// KnownAggregation reports whether name selects an aggregation level
// ("" means auto).
func KnownAggregation(name string) bool {
	switch name {
	case "", AggregationAuto, AggregationCohort, AggregationPerFlow:
		return true
	}
	return false
}

// cohortEnabled resolves the knob against the incast degree.
func (c *Config) cohortEnabled() bool {
	switch c.Aggregation {
	case AggregationCohort:
		return true
	case AggregationPerFlow:
		return false
	default:
		return c.Flows >= AutoCohortMinFlows
	}
}

// defaultCohortBuckets is the number of start-jitter buckets each
// equivalence class is split into at formation. Each bucket draws one
// uniform jitter per burst, so a class's release ramp is approximated in
// this many quanta — plenty for the mode taxonomy, whose discriminants
// (standing queue vs K, timeout onset) integrate over whole bursts.
const defaultCohortBuckets = 32

// cohortPlan maps cohorts to their member flows: cohort c owns the member
// IDs perm[off[c] : off[c]+cnt[c]]. Splits carve contiguous sub-spans, so
// the permutation is built once. For per-flow runs the plan is the
// identity: perm[i] = i, one member each.
type cohortPlan struct {
	perm []int32
	off  []int32
	cnt  []int32
}

func (p *cohortPlan) cohorts() int { return len(p.off) }

// singletonPlan is the per-flow identity plan.
func singletonPlan(n int) cohortPlan {
	p := cohortPlan{
		perm: make([]int32, n),
		off:  make([]int32, n),
		cnt:  make([]int32, n),
	}
	for i := range p.perm {
		p.perm[i] = int32(i)
		p.off[i] = int32(i)
		p.cnt[i] = 1
	}
	return p
}

// classPlan groups flows by equivalence class and splits each class into
// at most `buckets` near-equal contiguous jitter buckets. classOf[i] is
// flow i's class ID (dense, assigned in first-appearance order, which
// keeps cohort order deterministic); nClasses is the ID count. Members of
// a class keep ascending flow-ID order, and cohorts are emitted class by
// class, so forcing buckets >= class size degenerates to the identity
// plan exactly.
func classPlan(classOf []int32, nClasses, buckets int) cohortPlan {
	n := len(classOf)
	size := make([]int32, nClasses)
	for _, c := range classOf {
		size[c]++
	}
	// Class start offsets into perm, then fill members in flow order.
	start := make([]int32, nClasses)
	var acc int32
	for c, s := range size {
		start[c] = acc
		acc += s
	}
	p := cohortPlan{perm: make([]int32, n)}
	fill := append([]int32(nil), start...)
	for i, c := range classOf {
		p.perm[fill[c]] = int32(i)
		fill[c]++
	}
	for c := 0; c < nClasses; c++ {
		s := int(size[c])
		if s == 0 {
			continue
		}
		b := buckets
		if b > s {
			b = s
		}
		base, rem := s/b, s%b
		off := start[c]
		for k := 0; k < b; k++ {
			cnt := base
			if k < rem {
				cnt++
			}
			p.off = append(p.off, off)
			p.cnt = append(p.cnt, int32(cnt))
			off += int32(cnt)
		}
	}
	return p
}

// buildPlan resolves the aggregation knob into a plan. classOf/nClasses
// describe path equivalence (nil/1 for the single-queue dumbbell, where
// every flow shares the one bottleneck, one RTT, and one CC law);
// cfg.cohortBuckets, a test-only knob, overrides the bucket count.
func buildPlan(cfg *Config, classOf []int32, nClasses int) cohortPlan {
	if !cfg.cohortEnabled() {
		return singletonPlan(cfg.Flows)
	}
	buckets := cfg.cohortBuckets
	if buckets <= 0 {
		buckets = defaultCohortBuckets
	}
	if classOf == nil {
		classOf = make([]int32, cfg.Flows)
		nClasses = 1
	}
	return classPlan(classOf, nClasses, buckets)
}
