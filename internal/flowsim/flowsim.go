// Package flowsim is the flow-level fast path: a fluid approximation of
// the incast dumbbell that advances in adaptive per-interval steps instead
// of per-packet events. Flows carry residual demand in packets and send at
// a cwnd-derived rate w/RTT; the bottleneck queue, ECN marking, and tail
// drops evolve analytically per step; reduced-form DCTCP/Reno/Swift laws
// (plus the Guardrail cap and D2TCP's deadline exponent) update once per
// RTT round; and RTO timeouts are modeled as flow stalls with exponential
// backoff so Mode-3 (timeout-dominated) incasts are representable.
//
// Rate contract: like internal/audit/diff.go, the queue drains at the
// effective IP-byte rate LineRateBps x MTU/(MTU+EthernetOverhead)
// (= x1500/1538) because the wire serializes 38 B of Ethernet framing per
// MTU packet that queue accounting never sees. One flowsim "packet" is one
// MSS of payload occupying one MTU-sized queue slot, exactly as in
// internal/netsim.
//
// The engine trades packet-level microstructure for speed: it reproduces
// the paper's mode classification, standing-queue levels, and BCT scale at
// a small fraction of the event simulator's cost (see BENCH_PR6.json), and
// internal/audit's three-way differential harness pins the agreement.
package flowsim

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
)

// Config describes one fluid incast run. The shape mirrors the packet
// simulator's core.SimConfig so the core layer can lower one into the
// other; zero values take the paper defaults.
type Config struct {
	// Flows is the incast degree N.
	Flows int
	// SegmentsPerFlow is the per-flow, per-burst demand in MSS segments
	// (= queue packets). Use workload.BytesPerFlowFor(...)/netsim.MSS to
	// match the packet simulator's demand sizing.
	SegmentsPerFlow int64
	// Bursts is the total burst count; the first is discarded from
	// measurements as a slow-start transient (unless it is the only one).
	Bursts int
	// Interval is the burst start-to-start spacing (default 250 ms).
	Interval sim.Time
	// JitterMax jitters each flow's start within a burst uniformly in
	// [0, JitterMax] (default 100 us).
	JitterMax sim.Time
	// Seed drives the jitter RNG (default 1).
	Seed uint64

	// LineRateBps is the bottleneck (and host NIC) line rate (default
	// 10 Gbps); CoreRateBps caps aggregate arrivals (default 100 Gbps).
	LineRateBps int64
	CoreRateBps int64
	// QueueCapacityPackets and ECNThresholdPackets describe the bottleneck
	// port (defaults 1333 and 65, the paper's 2 MB queue and K).
	QueueCapacityPackets int
	ECNThresholdPackets  int
	// BaseRTT is the uncongested round-trip time (default the paper
	// dumbbell's ~30 us).
	BaseRTT sim.Time
	// MinRTO and MaxRTO bound the stall length after a timeout-class loss;
	// consecutive timeouts back off exponentially between them (defaults
	// 200 ms and 2 s, the transport defaults).
	MinRTO, MaxRTO sim.Time
	// DupAckPackets is the in-flight volume below which a loss cannot
	// gather enough duplicate ACKs for fast retransmit and becomes a
	// stall instead (default 3, the dup-ACK threshold).
	DupAckPackets float64

	// CC parameterizes the per-flow reduced-form controller.
	CC CCConfig

	// Aggregation selects how flows are integrated: "perflow" (one record
	// per flow, the exact engine), "cohort" (equivalence classes of
	// identical flows integrate as weighted records; see cohort.go), or
	// "auto"/"" (cohorts from AutoCohortMinFlows up).
	Aggregation string

	// cohortBuckets overrides the per-class jitter bucket count (tests
	// only; 0 means defaultCohortBuckets).
	cohortBuckets int

	// SampleInterval and SampleWindow control queue sampling per burst
	// (defaults 100 us and demand drain time + 5 ms, capped at Interval),
	// mirroring the packet simulator's series.
	SampleInterval sim.Time
	SampleWindow   sim.Time

	// MinStep and MaxStep bound the adaptive fluid step, which tracks
	// RTT/stepDiv (defaults 2 us and 2 ms).
	MinStep, MaxStep sim.Time
	// Horizon is the recovery headroom past the nominal end before the run
	// is declared stuck (default 60 s: synchronized RTO retry waves at
	// high N legitimately take seconds).
	Horizon sim.Time

	// Check enables per-step invariant checking (queue bounds, per-flow
	// volume conservation); violations surface as errors. The closing
	// conservation check always runs.
	Check bool
}

func (c *Config) fill() error {
	if c.Flows <= 0 {
		return fmt.Errorf("flowsim: config needs at least one flow")
	}
	if c.SegmentsPerFlow <= 0 {
		return fmt.Errorf("flowsim: config needs positive per-flow demand")
	}
	if c.Bursts <= 0 {
		c.Bursts = 11
	}
	if c.Interval <= 0 {
		c.Interval = 250 * sim.Millisecond
	}
	if c.JitterMax < 0 {
		return fmt.Errorf("flowsim: jitter must be non-negative")
	}
	if c.JitterMax == 0 {
		c.JitterMax = 100 * sim.Microsecond
	}
	if c.JitterMax >= c.Interval {
		return fmt.Errorf("flowsim: jitter %v must stay below the burst interval %v", c.JitterMax, c.Interval)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LineRateBps <= 0 {
		c.LineRateBps = 10 * netsim.Gbps
	}
	if c.CoreRateBps <= 0 {
		c.CoreRateBps = 100 * netsim.Gbps
	}
	if c.QueueCapacityPackets <= 0 {
		c.QueueCapacityPackets = netsim.DefaultDumbbellConfig(1).QueueCapacityPackets
	}
	if c.ECNThresholdPackets <= 0 {
		c.ECNThresholdPackets = netsim.DefaultDumbbellConfig(1).ECNThresholdPackets
	}
	if c.BaseRTT <= 0 {
		c.BaseRTT = netsim.DefaultDumbbellConfig(1).BaseRTT()
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 2 * sim.Second
	}
	if c.MaxRTO < c.MinRTO {
		c.MaxRTO = c.MinRTO
	}
	if c.DupAckPackets <= 0 {
		c.DupAckPackets = 3
	}
	if !KnownAggregation(c.Aggregation) {
		return fmt.Errorf("flowsim: unknown aggregation %q (valid: %q, %q, %q)",
			c.Aggregation, AggregationAuto, AggregationCohort, AggregationPerFlow)
	}
	c.CC.fill(c.BaseRTT)
	if c.SampleInterval <= 0 {
		c.SampleInterval = 100 * sim.Microsecond
	}
	if c.SampleWindow <= 0 {
		drainSec := float64(c.SegmentsPerFlow) * float64(c.Flows) / EffectivePacketRate(c.LineRateBps)
		c.SampleWindow = sim.Time(drainSec*1e9) + 5*sim.Millisecond
	}
	// A single monotonically advancing sample cursor requires windows not
	// to overlap the next burst's.
	if c.SampleWindow > c.Interval {
		c.SampleWindow = c.Interval
	}
	if c.MinStep <= 0 {
		c.MinStep = 2 * sim.Microsecond
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 2 * sim.Millisecond
	}
	if c.MaxStep < c.MinStep {
		c.MaxStep = c.MinStep
	}
	if c.Horizon <= 0 {
		c.Horizon = 60 * sim.Second
	}
	return nil
}

// Result aggregates a fluid run over its measured bursts, mirroring the
// packet simulator's core.SimResult fields so the core layer renders both
// through one path.
type Result struct {
	Flows   int
	AlgName string

	// AvgQueue is the queue depth in packets averaged element-wise across
	// measured bursts; time is relative to burst start.
	AvgQueue *stats.Series
	// MaxQueue is the highest sampled depth across measured bursts.
	MaxQueue float64
	// FracBelowK is the fraction of busy (non-empty) samples below the ECN
	// threshold, per burst before averaging (the Mode-1 signature).
	FracBelowK float64
	// SpikePackets is the peak of AvgQueue within the first 2 ms.
	SpikePackets float64

	// MeanBCT and MaxBCT summarize measured burst completion times; BCTs
	// carries every measured burst for quantile work.
	MeanBCT, MaxBCT sim.Time
	BCTs            []sim.Time

	// Counters over the measured window (after the discarded first burst).
	Timeouts, FastRetransmits, RetransmitPackets, Drops, Marks int64
	SentPackets                                                int64
	// DeliveredPackets is the measured-window goodput in packets.
	DeliveredPackets int64

	// CwndUpdates counts controller updates across all flows (whole run),
	// feeding the same obs metric as the packet algorithms.
	CwndUpdates int64
	// FinalCwndPkts holds each flow's effective window at the end of the
	// run; FinalAlphas holds the DCTCP-family congestion estimates (empty
	// for other laws). Both feed the obs end-state histograms.
	FinalCwndPkts []float64
	FinalAlphas   []float64

	// Steps is the number of fluid steps executed and SimNow the virtual
	// time reached — the flow-level analogue of events/SimNow.
	Steps  uint64
	SimNow sim.Time

	// Cohorts is the number of weighted flow records the run ended with
	// (== Flows for per-flow integration), CohortSplits the number of
	// records created mid-run by partial tail drops, and PeakCohortWeight
	// the largest member count any record carried — together they report
	// how much symmetry the run exploited.
	Cohorts          int
	CohortSplits     int64
	PeakCohortWeight float64

	// QueueCapacity and ECNThreshold echo the configuration.
	QueueCapacity, ECNThreshold int
}

// ModeFracBelowK is the busy-sample fraction below K separating healthy
// (Mode 1) from degenerate (Mode 2) runs, shared with internal/core so
// both fidelities label the paper's operating modes identically.
const ModeFracBelowK = 0.10

// Classify maps run outcomes onto the paper's three operating modes:
// timeouts mean Mode 3; a queue that never meaningfully falls below the
// marking threshold means Mode 2; otherwise the run is healthy.
func Classify(timeouts int64, fracBelowK float64) string {
	switch {
	case timeouts > 0:
		return "3 (timeouts)"
	case fracBelowK < ModeFracBelowK:
		return "2 (degenerate)"
	default:
		return "1 (healthy)"
	}
}

// EffectivePacketRate returns the IP-packet drain rate of a link in
// packets/second under the x1500/1538 wire-overhead contract.
func EffectivePacketRate(bps int64) float64 {
	return float64(bps) / 8 / float64(netsim.MTU+netsim.EthernetOverhead)
}

// flowState is the per-flow cold state: everything the per-step hot loops
// do not touch on every iteration. The hot per-flow quantities (unsent,
// backlog, ackPipe, cached window, stall deadline) live in parallel arrays
// on the engine so each fluid step streams a few dense float64 slices
// instead of striding through a large struct per flow.
type flowState struct {
	ctrl controller

	// lastRelease orders tail-drop victims: the latest-released arrivals
	// are the ones at the back of the queue when it overflows.
	lastRelease sim.Time

	// backoff doubles the RTO up to MaxRTO across consecutive stalls.
	backoff int

	// roundEnd ends a time-based (Swift) observation round one RTT after
	// it began; lastLoss rate-limits fast-retransmit reactions to one per
	// RTT. The volume-based round tallies live in the engine's hot array.
	roundEnd sim.Time
	lastLoss sim.Time

	active bool
}

// hotFlow is the per-flow state the per-step passes touch, packed so one
// flow costs one bounds check and a cache line or two: unsent is
// released-but-not-yet-admitted demand in packets (retransmissions return
// here); backlog is the flow's share of the bottleneck queue; ackPipe is
// delivered-but-not-yet-acked volume still occupying the window; win
// caches ctrl.window(), refreshed after every controller update; roundDel
// and roundMark tally delivered and marked volume this observation round,
// with reduced latching the once-per-round mark cut; arr and deliv are
// pass-1 scratch (this step's admitted offer and delivery); stallT is the
// RTO wake deadline (zero when not stalled).
type hotFlow struct {
	unsent    float64
	backlog   float64
	ackPipe   float64
	win       float64
	roundDel  float64
	roundMark float64
	arr       float64
	deliv     float64
	stallT    sim.Time
	reduced   bool
}

type release struct {
	at   sim.Time
	flow int32
}

// lzEvent is a pending lazy-set threshold crossing: flow i needs touching
// once the drain coordinate decays to g. stamp invalidates entries whose
// flow has been touched since they were pushed.
type lzEvent struct {
	g     float64
	flow  int32
	stamp uint32
}

const volEps = 1e-9

// stepDiv divides the current RTT to get the adaptive step: the
// controllers react at round (RTT) cadence, so a handful of steps per
// round resolves the control loop; finer steps only sharpen sub-round
// queue microstructure the mode statistics do not depend on. Near the ECN
// threshold the below-K busy fraction (the Mode-1/Mode-2 discriminant)
// does depend on the oscillation around K, so steps stay at RTT/stepDiv
// there; once the queue is pegged deep above K (beyond stepDeepK times
// the threshold) marking is saturated and a full-RTT step (stepDivDeep)
// loses nothing the taxonomy can see.
const (
	stepDiv     = 1.5
	stepDivDeep = 1.0
	stepDeepK   = 4.0
)

// finishCrumb is the residual backlog (packets) below which a flow with no
// remaining demand is considered done and its crumb handed to the orphan
// bucket. A whole burst leaves at most Flows x finishCrumb packets — under
// two wire bytes per flow — to the aggregate, while sparing tens of
// per-flow steps of multiplicative decay from ~1 packet down to volEps.
const finishCrumb = 1e-3

// Run executes the fluid simulation. It returns an error when the
// configuration is invalid, the run fails to complete within the horizon,
// or (with cfg.Check) an invariant is violated.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	// The dumbbell has a single path and uniform CC/demand/RTT, so every
	// flow is in one equivalence class; only jitter buckets partition it.
	e := newEngine(cfg, buildPlan(&cfg, nil, 1))
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.finish()
}

type engine struct {
	cfg   Config
	flows []flowState

	// Cohort bookkeeping: record i represents mCnt[i] identical flows (the
	// member IDs perm[mOff[i]:mOff[i]+mCnt[i]]). All per-record state in
	// flows/hot is PER MEMBER; aggregate couplings scale by the count.
	// lineNext threads each original record's split descendants into a
	// lineage chain (-1 terminated) so release entries — built once, per
	// original record — reach every descendant. Per-flow runs are the
	// degenerate instance: every count 1, every chain a single node.
	perm       []int32
	mOff, mCnt []int32
	lineNext   []int32
	// releasedFlows counts flow releases by weight (== relPtr when every
	// record is a singleton); completion targets compare against it.
	releasedFlows float64
	cohorts0      int
	splitsMade    int64
	peakW         float64

	// Static rates (packets/second) and conversions.
	drain    float64 // bottleneck effective drain
	coreRate float64 // aggregate arrival cap
	baseSec  float64
	capPkts  float64
	kPkts    float64
	segs     float64
	crumbEps float64 // residual volume tolerance from per-flow epsilons

	now sim.Time
	q   float64

	// orphan is queue volume no longer attributed to a live flow: the
	// residual backlog of flows parked on an RTO (their in-flight packets
	// keep draining while the sender is silent) and sub-packet crumbs of
	// finished flows. Folding it into one bucket lets those flows leave
	// the active list immediately instead of being iterated every step
	// while their share decays toward zero. Always q >= orphan.
	orphan float64

	// Releases: every burst's per-flow start, globally time-sorted.
	releases []release
	relPtr   int

	// stalled holds flow indices parked on an RTO; nextWake caches the
	// earliest wake time.
	stalled  []int32
	nextWake sim.Time

	// activeList holds flow indices with sendable or queued volume.
	activeList []int32

	// hot packs everything the per-step passes touch into one record per
	// flow (see hotFlow), so an iteration costs one bounds check and one
	// or two cache lines instead of a strided load per parallel array.
	hot []hotFlow

	// timeRounds is true when the law closes rounds on elapsed RTT (Swift)
	// instead of delivered volume; uniform across flows, hoisted out of
	// the hot loop.
	timeRounds bool

	// Lazy drain set for spent flows (demand sent, backlog draining).
	// Pro-rata service means every backlog not touched by an arrival
	// evolves identically: one step with service fraction s scales all of
	// them by (1-s). lzG accumulates that product (the epoch's drain
	// coordinate), so a flow parked at coordinate gRef holds
	// backlog[i] * lzG/gRef right now and has delivered
	// backlog[i] * (gRef-lzG)/gRef since parking — without being iterated.
	// lzM is the matching mark integral (sum of per-step coordinate drops
	// weighted by the step's mark fraction), giving exact mark attribution
	// on the same terms. A parked flow's only live deadline — the finish
	// crumb — is a threshold crossing of lzG, kept in a max-heap and fired
	// as the coordinate decays past it; the controller rounds that elapse
	// meanwhile are batch-replayed on touch (see touchLazy). Per-step cost
	// is O(crossings), not O(parked flows). Stamps invalidate stale heap
	// entries. Volume-round laws only (Swift's time-based rounds stay
	// eager).
	lzG, lzM   float64
	gRef, mRef []float64
	lazy       []bool
	lzStamp    []uint32
	lzCount    int
	lzHeap     []lzEvent

	// Completion tracking: cumDelivered crosses burst targets in order.
	cumDelivered float64
	burstsDone   int
	bcts         []sim.Time

	// Counters (floats during the run, rounded at the end). The base
	// values snapshot at the start of the measured window, mirroring the
	// packet runner's approach.
	timeouts, fastRetx, retxPkts, drops, marks, sent float64
	baseTimeouts, baseFastRetx, baseRetxPkts         float64
	baseDrops, baseMarks, baseSent, baseDelivered    float64
	baseTaken                                        bool

	steps uint64

	smp sampler
}

func newEngine(cfg Config, plan cohortPlan) *engine {
	n := cfg.Flows
	m := plan.cohorts()
	e := &engine{
		cfg:        cfg,
		flows:      make([]flowState, m),
		perm:       plan.perm,
		mOff:       plan.off,
		mCnt:       plan.cnt,
		lineNext:   make([]int32, m),
		cohorts0:   m,
		drain:      EffectivePacketRate(cfg.LineRateBps),
		coreRate:   EffectivePacketRate(cfg.CoreRateBps),
		baseSec:    float64(cfg.BaseRTT) / 1e9,
		capPkts:    float64(cfg.QueueCapacityPackets),
		kPkts:      float64(cfg.ECNThresholdPackets),
		segs:       float64(cfg.SegmentsPerFlow),
		crumbEps:   float64(n)*volEps*4 + 1e-9,
		nextWake:   math.MaxInt64,
		hot:        make([]hotFlow, m),
		timeRounds: cfg.CC.Kind == KindSwift,

		lzG:     1,
		gRef:    make([]float64, m),
		mRef:    make([]float64, m),
		lazy:    make([]bool, m),
		lzStamp: make([]uint32, m),
	}
	for i := range e.flows {
		e.flows[i].ctrl = newController(cfg.CC)
		e.flows[i].lastLoss = math.MinInt64 / 2
		e.hot[i].win = e.flows[i].ctrl.window()
		e.lineNext[i] = -1
		if w := float64(e.mCnt[i]); w > e.peakW {
			e.peakW = w
		}
	}
	e.releases = buildReleases(cfg, m)

	first := 1
	if cfg.Bursts == 1 {
		first = 0
	}
	e.smp = newSampler(cfg, first)
	return e
}

// buildReleases expands the burst schedule into every unit's per-burst
// start, globally time-sorted — a unit is one release record: a flow in
// per-flow runs, a cohort (one jitter draw standing for all its members)
// in aggregated runs, so per-flow runs draw the identical jitter sequence
// the pre-cohort engine did. Each burst is sorted by (at, unit) ascending
// so dropTail's newest-first walk over this slice visits equal-time
// releases in descending unit order, matching the documented tail-drop
// victim order. Sorting packed at<<unitBits|unit keys through slices.Sort
// beats a comparator-closure sort ~3x; release times stay far below the
// 2^(63-unitBits) ns (~2.4 h of simulated time) packing headroom. Shared
// between the single-queue and network engines so both draw the identical
// jitter sequence from one seed.
func buildReleases(cfg Config, nUnits int) []release {
	const unitBits = 20
	if nUnits >= 1<<unitBits {
		panic(fmt.Sprintf("flowsim: %d release units exceeds the release-key packing limit %d (aggregate into cohorts to go bigger)", nUnits, 1<<unitBits))
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	releases := make([]release, 0, nUnits*cfg.Bursts)
	keys := make([]uint64, nUnits)
	for b := 0; b < cfg.Bursts; b++ {
		start := sim.Time(b) * cfg.Interval
		for i := 0; i < nUnits; i++ {
			j := sim.Time(rng.Int63n(int64(cfg.JitterMax) + 1))
			keys[i] = uint64(start+j)<<unitBits | uint64(i)
		}
		slices.Sort(keys)
		for _, k := range keys {
			releases = append(releases, release{at: sim.Time(k >> unitBits), flow: int32(k & (1<<unitBits - 1))})
		}
	}
	return releases
}

func (e *engine) activate(i int32) {
	if !e.flows[i].active {
		e.flows[i].active = true
		e.activeList = append(e.activeList, i)
	}
}

// run advances fluid steps until all demand is delivered or the horizon
// expires.
func (e *engine) run() error {
	cfg := e.cfg
	deadline := sim.Time(cfg.Bursts)*cfg.Interval + cfg.Horizon
	measuredStart := e.smp.measuredStart()
	totalDemand := float64(cfg.Flows) * e.segs * float64(cfg.Bursts)

	for e.now < deadline {
		// Release pending flow starts. Each record covers its unit's whole
		// lineage: the original record plus any split-off descendants.
		for e.relPtr < len(e.releases) && e.releases[e.relPtr].at <= e.now {
			r := e.releases[e.relPtr]
			for ci := r.flow; ci >= 0; ci = e.lineNext[ci] {
				e.hot[ci].unsent += e.segs
				e.flows[ci].lastRelease = r.at
				e.releasedFlows += float64(e.mCnt[ci])
				if e.lazy[ci] {
					// New demand turns a parked drainer back into a sender:
					// materialize and re-dispose (eager or blocked-lazy).
					e.touchLazy(ci, e.baseSec+e.q/e.drain)
				} else if e.hot[ci].stallT <= e.now {
					e.activate(ci)
				}
			}
			e.relPtr++
		}
		// Snapshot counters when the measured window opens.
		if !e.baseTaken && e.now >= measuredStart {
			e.baseTaken = true
			e.baseTimeouts, e.baseFastRetx, e.baseRetxPkts = e.timeouts, e.fastRetx, e.retxPkts
			e.baseDrops, e.baseMarks, e.baseSent = e.drops, e.marks, e.sent
			e.baseDelivered = e.cumDelivered
		}
		if e.relPtr == len(e.releases) && e.cumDelivered >= totalDemand-e.crumbEps-1e-6 &&
			e.q <= e.crumbEps && len(e.activeList) == 0 && len(e.stalled) == 0 && e.lzCount == 0 {
			return nil
		}

		// Wake stalled flows that are due.
		if len(e.stalled) > 0 && e.nextWake <= e.now {
			e.wakeDue()
			continue
		}

		// Next hard boundary: burst release, RTO wake, or the opening of
		// the measured window.
		next := deadline
		if e.relPtr < len(e.releases) && e.releases[e.relPtr].at < next {
			next = e.releases[e.relPtr].at
		}
		if len(e.stalled) > 0 && e.nextWake < next {
			next = e.nextWake
		}
		if !e.baseTaken && measuredStart > e.now && measuredStart < next {
			next = measuredStart
		}

		if len(e.activeList) == 0 && e.lzCount == 0 && e.q <= e.crumbEps {
			// Fully idle: fold residual crumbs and jump to the next event.
			e.q = 0
			e.orphan = 0
			if next <= e.now {
				return fmt.Errorf("flowsim: stuck at %v with no runnable flows", e.now)
			}
			e.smp.advance(next, 0)
			e.now = next
			continue
		}

		// Adaptive step: a fraction of the current RTT, clamped, snapped
		// to the next boundary; full-RTT steps once the queue is pegged
		// deep above the ECN threshold (see stepDiv).
		rttSec := e.baseSec + e.q/e.drain
		div := float64(stepDiv)
		if e.q > stepDeepK*e.kPkts {
			div = stepDivDeep
		}
		dt := sim.Time(rttSec / div * 1e9)
		if dt < cfg.MinStep {
			dt = cfg.MinStep
		}
		if dt > cfg.MaxStep {
			dt = cfg.MaxStep
		}
		// Snap to the boundary, but never below MinStep: boundaries are
		// honored at MinStep resolution. Chasing each of a burst's jittered
		// release instants exactly would mean one sub-microsecond step per
		// flow; landing up to MinStep late batches releases instead, and the
		// release loop processes everything due regardless.
		if e.now+dt > next && next-e.now >= cfg.MinStep {
			dt = next - e.now
		}
		if err := e.step(dt, rttSec); err != nil {
			return err
		}
	}
	return fmt.Errorf("flowsim: %d-flow run did not complete by %v (delivered %.0f of %.0f packets)",
		cfg.Flows, deadline, e.cumDelivered, totalDemand)
}

// step advances the fluid state by dt.
func (e *engine) step(dt sim.Time, rttSec float64) error {
	e.steps++
	stepEnd := e.now + dt
	dtSec := float64(dt) / 1e9
	rttTime := sim.Time(rttSec * 1e9)

	// Serve the existing queue content first: deliveries free window
	// headroom for this step's arrivals, and arrivals admitted now are
	// served from the next step on (one-step latency << RTT/3).
	q0 := e.q
	served := e.drain * dtSec
	if served > q0 {
		served = q0
	}
	// The orphan bucket drains pro rata like any other backlog.
	if served > 0 && e.orphan > 0 {
		o := served * e.orphan / q0
		if o > e.orphan {
			o = e.orphan
		}
		e.orphan -= o
	}
	ackDecay := dtSec / (e.baseSec / 2)
	if ackDecay > 1 {
		ackDecay = 1
	}
	// Hoist the per-flow divides: pro-rata service is a common factor, and
	// the per-window pacing rate is w/RTT capped at the line rate, i.e.
	// min(w*paceDt, drain*dtSec) packets this step.
	var sFrac float64
	if served > 0 && q0 > 0 {
		sFrac = served / q0
	}
	paceDt := dtSec / rttSec
	maxSend := e.drain * dtSec

	// Pass 1: deliveries, window bookkeeping, arrival offers.
	var totalArr float64
	for _, i := range e.activeList {
		h := &e.hot[i]
		b := h.backlog
		p := h.ackPipe
		var d float64
		if sFrac > 0 && b > 0 {
			d = b * sFrac
			if d > b {
				d = b
			}
			b -= d
			h.backlog = b
			p += d
		}
		h.deliv = d
		p -= p * ackDecay
		h.ackPipe = p

		var a float64
		if h.unsent > volEps && h.stallT <= e.now {
			w := h.win
			a = w * paceDt
			if a > maxSend {
				a = maxSend // host NIC line rate
			}
			if head := w - b - p; a > head {
				a = head
			}
			if a > h.unsent {
				a = h.unsent
			}
			if a < 0 {
				a = 0
			}
		}
		h.arr = a
		totalArr += a * float64(e.mCnt[i])
	}

	// Aggregate arrival cap: the core link serializes at CoreRateBps.
	if maxArr := e.coreRate * dtSec; totalArr > maxArr {
		scale := maxArr / totalArr
		for _, i := range e.activeList {
			e.hot[i].arr *= scale
		}
		totalArr = maxArr
	}

	// Mark fraction over the step, rackmodel-style: linear queue evolution
	// along the net slope, threshold-crossing time pro-rated. Deliveries
	// during the above-threshold portion carry marks — which reach senders
	// with the ACK path's negligible delay, so reactions land this step.
	markNow := markFraction(q0, q0+totalArr-e.drain*dtSec, e.kPkts)

	// Overflow beyond capacity tail-drops the latest-released arrivals
	// (the packets at the back of the FIFO), concentrating loss on
	// stragglers exactly as real tail-drop does.
	overflow := q0 - served + totalArr - e.capPkts
	if overflow > 0 {
		totalArr -= e.dropTail(overflow, stepEnd, rttTime)
	}

	e.q = q0 - served + totalArr
	if e.q < 0 {
		e.q = 0
	}
	e.cumDelivered += served
	e.marks += served * markNow

	// Advance the lazy set's drain coordinate by this step's service
	// fraction before pass 2, so flows parking below anchor against the
	// end-of-step coordinate (their backlogs already reflect this step's
	// deliveries). Crossings fire after pass 2, in lazyFire.
	e.lazyShift(q0, served, markNow)

	// Pass 2: admit arrivals, attribute marks, apply cuts, close rounds.
	// The common case touches only the dense per-flow arrays; the flowState
	// struct (controller and cold fields) is loaded only on round events.
	keep := e.activeList[:0]
	for _, i := range e.activeList {
		h := &e.hot[i]
		w := float64(e.mCnt[i])
		a := h.arr
		d := h.deliv
		h.arr, h.deliv = 0, 0
		if a > 0 {
			u := h.unsent - a
			if u < 0 {
				u = 0
			}
			h.unsent = u
			h.backlog += a
			e.sent += a * w
		}
		if d > 0 {
			h.roundDel += d
			if markNow > 0 {
				h.roundMark += d * markNow
				if !h.reduced {
					h.reduced = true
					f := &e.flows[i]
					f.ctrl.onMarkCut()
					h.win = f.ctrl.window()
				}
			}
		}
		if h.stallT <= e.now {
			// Close the observation round: the DCTCP family closes after
			// one window of data is delivered (packet DCTCP's nextSeq
			// semantics); Swift closes once per RTT.
			var closes bool
			if e.timeRounds {
				f := &e.flows[i]
				if f.roundEnd == 0 {
					f.roundEnd = stepEnd + rttTime
				} else if stepEnd >= f.roundEnd {
					closes = true
					f.roundEnd = stepEnd + rttTime
				}
			} else {
				closes = h.roundDel >= h.win
			}
			if closes {
				if h.roundDel > 0 {
					f := &e.flows[i]
					f.ctrl.onRoundEnd(h.roundDel, h.roundMark, rttSec)
					h.win = f.ctrl.window()
					f.backoff = 0
				}
				h.roundDel, h.roundMark = 0, 0
				h.reduced = false
			}
		} else {
			// Parked on an RTO: the in-queue residue keeps draining (as
			// orphan volume) but the silent sender has nothing to react to
			// before the wake — MinRTO dwarfs a full-queue drain time — so
			// the stall list owns the flow from here.
			e.orphan += h.backlog * w
			h.backlog = 0
			h.ackPipe = 0
			e.flows[i].active = false
			continue
		}
		if h.unsent <= volEps && h.backlog <= finishCrumb {
			// Done: orphan the sub-packet crumb instead of stepping the
			// flow until multiplicative draining grinds it below volEps.
			e.orphan += h.backlog * w
			h.backlog = 0
			h.ackPipe = 0
			e.flows[i].active = false
			continue
		}
		if e.tryLazy(i) {
			continue
		}
		keep = append(keep, i)
	}
	e.activeList = keep

	e.lazyFire(rttSec)
	e.recordCompletions(served, dt, stepEnd)
	e.smp.advance(stepEnd, e.q)
	e.now = stepEnd

	if e.cfg.Check {
		if e.q < -1e-6 || e.q > e.capPkts+1e-6 {
			return fmt.Errorf("flowsim: queue %.6f outside [0, %.0f] at %v", e.q, e.capPkts, e.now)
		}
		if e.steps%4096 == 0 {
			if err := e.checkConservation(); err != nil {
				return err
			}
		}
	}
	return nil
}

// dropTail removes overflow volume from this step's arrivals, latest
// release first, applying the per-victim loss reaction: too little left in
// flight for duplicate ACKs means a timeout stall with exponential RTO
// backoff; otherwise a fast-retransmit halving, at most once per RTT.
// Dropped volume stays in the victims' unsent pools (it was never
// subtracted), modeling retransmission. Returns the volume dropped.
//
// Victims are found by walking the processed releases newest-first: the
// slice is already time-sorted (ties by ascending unit index), so the
// reverse walk yields exactly the (lastRelease desc, unit desc) victim
// order without sorting per step. An entry counts only when it is its
// unit's latest release and the unit offered arrivals this step; split
// descendants share their lineage's release entry and are visited newest
// sub-cohort first. A cohort whose whole weight is consumed reacts in
// place; the cohort the overflow runs out inside splits exactly into
// unaffected / partially-hit / fully-hit sub-cohorts (splitDrop), so
// aggregation never blurs who lost what — and since that terminal split
// exhausts the overflow, each dropTail call splits at most one cohort.
func (e *engine) dropTail(overflow float64, stepEnd, rttTime sim.Time) float64 {
	remaining := overflow
	var dropped float64
	for ri := e.relPtr - 1; ri >= 0 && remaining > volEps; ri-- {
		rel := e.releases[ri]
		for i := rel.flow; i >= 0 && remaining > volEps; i = e.lineNext[i] {
			if e.hot[i].arr <= 0 || e.flows[i].lastRelease != rel.at {
				continue
			}
			w := float64(e.mCnt[i])
			avail := e.hot[i].arr * w
			d := avail
			if d > remaining {
				d = remaining
			}
			if d >= avail {
				// The whole cohort's offer is consumed: every member is a
				// full victim and the record reacts in place.
				e.hot[i].arr -= e.hot[i].arr
				remaining -= d
				dropped += d
				e.drops += d
				e.retxPkts += d
				e.sent += d // the sender did transmit the dropped volume
				e.lossReact(i, stepEnd, rttTime)
				continue
			}
			got := e.splitDrop(i, d, stepEnd, rttTime)
			remaining -= got
			dropped += got
			e.drops += got
			e.retxPkts += got
			e.sent += got
		}
	}
	return dropped
}

// lossReact applies the loss reaction to every member of cohort i at once
// (members share their in-flight state, so the duplicate-ACK test answers
// identically for all of them): a timeout stall with exponential backoff,
// or a fast-retransmit halving at most once per RTT. Counters scale by
// the member count.
func (e *engine) lossReact(i int32, stepEnd, rttTime sim.Time) {
	f := &e.flows[i]
	w := float64(e.mCnt[i])
	if e.hot[i].backlog+e.hot[i].arr < e.cfg.DupAckPackets {
		// Not enough in flight to trigger fast retransmit: stall.
		e.timeouts += w
		f.ctrl.onTimeout()
		e.hot[i].win = f.ctrl.window()
		rto := e.cfg.MaxRTO
		if f.backoff < 16 {
			if r := e.cfg.MinRTO << uint(f.backoff); r < rto {
				rto = r
			}
		}
		f.backoff++
		e.hot[i].stallT = stepEnd + rto
		f.roundEnd = 0
		e.hot[i].roundDel, e.hot[i].roundMark = 0, 0
		e.hot[i].reduced = false
		e.stalled = append(e.stalled, i)
		if e.hot[i].stallT < e.nextWake {
			e.nextWake = e.hot[i].stallT
		}
	} else if stepEnd-f.lastLoss >= rttTime {
		e.fastRetx += w
		f.ctrl.onLoss()
		e.hot[i].win = f.ctrl.window()
		f.lastLoss = stepEnd
	}
}

// splitDrop removes d (< the cohort's whole offer) from cohort i's
// arrivals by splitting it exactly: kFull = floor(d/perMember) members
// lose their entire offer, at most one more loses the remainder, and the
// rest are untouched. The parent record keeps the head member span (the
// unaffected group when non-empty, else the partial victim); fully- and
// partially-hit groups split off as new records that inherit the parent's
// state and then take their own loss reaction — exactly the per-flow
// outcome, just batched. Returns the volume actually dropped (== d up to
// one float ulp of regrouping).
func (e *engine) splitDrop(i int32, d float64, stepEnd, rttTime sim.Time) float64 {
	per := e.hot[i].arr
	cnt := e.mCnt[i]
	kFull := int32(d / per)
	if kFull > cnt-1 {
		kFull = cnt - 1
	}
	dPart := d - float64(kFull)*per
	if dPart < 0 {
		dPart = 0
	}
	p := int32(0)
	if dPart > 0 {
		p = 1
	}
	if kFull == 0 && p == 0 {
		return 0
	}
	unaffected := cnt - kFull - p

	if unaffected == 0 && kFull == 0 {
		// Single member, partially hit: react in place, no split.
		e.hot[i].arr -= dPart
		e.lossReact(i, stepEnd, rttTime)
		return dPart
	}

	e.splitsMade++
	off := e.mOff[i]
	if unaffected > 0 {
		// Parent keeps the unaffected head span untouched.
		e.mCnt[i] = unaffected
		if p > 0 {
			part := e.newCohort(i, off+unaffected, 1)
			e.hot[part].arr -= dPart
			e.lossReact(part, stepEnd, rttTime)
		}
		if kFull > 0 {
			full := e.newCohort(i, off+unaffected+p, kFull)
			e.hot[full].arr -= e.hot[full].arr
			e.lossReact(full, stepEnd, rttTime)
		}
	} else {
		// Every member is hit (p == 1, kFull == cnt-1): the parent becomes
		// the partial victim and the full victims split off.
		full := e.newCohort(i, off+1, kFull)
		e.hot[full].arr -= e.hot[full].arr
		e.lossReact(full, stepEnd, rttTime)
		e.mCnt[i] = 1
		e.hot[i].arr -= dPart
		e.lossReact(i, stepEnd, rttTime)
	}
	return float64(kFull)*per + dPart
}

// newCohort splits the member span [off, off+cnt) out of cohort parent as
// a new record carrying a copy of the parent's per-member state, threaded
// into the parent's lineage chain (so future releases reach it) and onto
// the active list (splits only happen to records with live arrivals).
func (e *engine) newCohort(parent, off, cnt int32) int32 {
	ci := int32(len(e.flows))
	e.flows = append(e.flows, e.flows[parent])
	e.hot = append(e.hot, e.hot[parent])
	e.mOff = append(e.mOff, off)
	e.mCnt = append(e.mCnt, cnt)
	e.gRef = append(e.gRef, 0)
	e.mRef = append(e.mRef, 0)
	e.lazy = append(e.lazy, false)
	e.lzStamp = append(e.lzStamp, 0)
	e.lineNext = append(e.lineNext, e.lineNext[parent])
	e.lineNext[parent] = ci
	e.flows[ci].active = true
	e.activeList = append(e.activeList, ci)
	return ci
}

// wakeDue reactivates stalled flows whose RTO expired.
func (e *engine) wakeDue() {
	keep := e.stalled[:0]
	e.nextWake = math.MaxInt64
	for _, i := range e.stalled {
		if e.hot[i].stallT <= e.now {
			e.hot[i].stallT = 0
			if e.hot[i].unsent > volEps || e.hot[i].backlog > volEps {
				e.activate(i)
			}
		} else {
			keep = append(keep, i)
			if e.hot[i].stallT < e.nextWake {
				e.nextWake = e.hot[i].stallT
			}
		}
	}
	e.stalled = keep
}

// lazyShift advances the epoch's drain coordinate by one step: service
// fraction s scales every parked backlog by (1-s), and the mark integral
// picks up the coordinate drop weighted by the step's mark fraction.
func (e *engine) lazyShift(q0, served, markNow float64) {
	if e.lzCount == 0 {
		return
	}
	if q0 > 0 && served > 0 {
		gNew := e.lzG * (1 - served/q0)
		if served >= q0 {
			gNew = 0 // full drain: every parked backlog reaches zero
		}
		e.lzM += (e.lzG - gNew) * markNow
		e.lzG = gNew
	} else if q0 <= e.crumbEps {
		// Nothing drains a (near-)empty queue; force the parked residue out
		// so the set cannot outlive the volume it is supposed to track.
		e.lzG = 0
	}
}

// lazyFire pops every finish threshold the coordinate decayed past, then
// renormalizes the epoch before lzG underflows.
func (e *engine) lazyFire(rttSec float64) {
	if e.lzCount == 0 {
		if len(e.lzHeap) > 0 {
			e.lzHeap = e.lzHeap[:0]
			e.lzG, e.lzM = 1, 0
		}
		return
	}
	for len(e.lzHeap) > 0 && e.lzHeap[0].g >= e.lzG {
		ev := e.lzHeapPop()
		if !e.lazy[ev.flow] || e.lzStamp[ev.flow] != ev.stamp {
			continue
		}
		e.touchLazy(ev.flow, rttSec)
	}
	if e.lzCount == 0 {
		e.lzHeap = e.lzHeap[:0]
		e.lzG, e.lzM = 1, 0
		return
	}
	if e.lzG < 1e-120 {
		// Renormalize: materialize every parked backlog in place and
		// re-anchor the epoch at coordinate 1. Thresholds are ratios of
		// coordinates, so rescaling the heap keys preserves every pending
		// event exactly.
		inv := 1 / e.lzG
		for i := range e.lazy {
			if !e.lazy[i] {
				continue
			}
			g := e.lzG / e.gRef[i]
			bHat := e.hot[i].backlog
			b := bHat * g
			e.hot[i].roundDel += bHat - b
			e.hot[i].roundMark += bHat * (e.lzM - e.mRef[i]) / e.gRef[i]
			e.hot[i].backlog = b
			e.gRef[i] = 1
			e.mRef[i] = 0
		}
		for j := range e.lzHeap {
			e.lzHeap[j].g *= inv
		}
		e.lzG, e.lzM = 1, 0
	}
}

// tryLazy parks an active flow in the lazy drain set when its remaining
// evolution is pure pro-rata draining: a spent flow (no unsent demand)
// waiting out its backlog. Its only hard deadline — the finish crumb —
// becomes a drain-coordinate threshold on the event heap; intermediate
// round closes are batch-replayed at the next touch (see touchLazy), so
// they cost nothing while the flow is parked. Returns false (stay eager)
// for senders — a window-limited flow tops its backlog up every step (the
// ACK clock), so parking one would thrash straight back — and for
// time-based-round laws, whose round closes are clock events.
func (e *engine) tryLazy(i int32) bool {
	if e.timeRounds || e.hot[i].unsent > volEps {
		return false
	}
	b := e.hot[i].backlog
	if b <= finishCrumb {
		return false
	}
	gStar := e.lzG * finishCrumb / b // finish: the crumb threshold
	if gStar >= e.lzG {
		return false // already due: let the eager path resolve it
	}
	e.hot[i].ackPipe = 0 // delivered-not-acked volume is never consulted again
	e.gRef[i] = e.lzG
	e.mRef[i] = e.lzM
	e.lazy[i] = true
	e.lzCount++
	e.flows[i].active = false
	e.lzHeapPush(lzEvent{g: gStar, flow: i, stamp: e.lzStamp[i]})
	return true
}

// touchLazy materializes a parked flow at the current drain coordinate —
// collapsing its deferred deliveries into backlog/roundDel/roundMark —
// replays the controller rounds that elapsed while parked, and re-disposes
// the flow: finished, parked again behind a fresh threshold, or back to
// eager.
//
// Round replay batches what the eager path does step by step: each round
// delivers one window and carries the parked period's average mark
// fraction, with the once-per-round cut applied on marked rounds exactly
// as pass 2 would on the round's first marked delivery. A drainer's
// service is pro rata regardless of its window, so batching leaves the
// queue trajectory untouched; only the controller bookkeeping (window and
// alpha evolution, update counts) is replayed, and under the sustained
// marking that dominates parked periods the per-round mark fractions are
// flat, making the average faithful.
func (e *engine) touchLazy(i int32, rttSec float64) {
	g := e.lzG / e.gRef[i]
	bHat := e.hot[i].backlog
	b := bHat * g
	e.hot[i].backlog = b
	e.hot[i].roundDel += bHat - b
	e.hot[i].roundMark += bHat * (e.lzM - e.mRef[i]) / e.gRef[i]
	e.lazy[i] = false
	e.lzCount--
	e.lzStamp[i]++

	if del := e.hot[i].roundDel; del > 0 {
		f := &e.flows[i]
		fbar := 0.0
		if e.hot[i].roundMark > 0 {
			fbar = e.hot[i].roundMark / del
			if fbar > 1 {
				fbar = 1
			}
		}
		for guard := 0; guard < 1<<14; guard++ {
			if fbar > 0 && !e.hot[i].reduced {
				e.hot[i].reduced = true
				f.ctrl.onMarkCut()
				e.hot[i].win = f.ctrl.window()
			}
			w := e.hot[i].win
			if del < w {
				break
			}
			f.ctrl.onRoundEnd(w, w*fbar, rttSec)
			e.hot[i].win = f.ctrl.window()
			f.backoff = 0
			del -= w
			e.hot[i].reduced = false
		}
		e.hot[i].roundDel = del
		e.hot[i].roundMark = del * fbar
	}
	if e.hot[i].unsent <= volEps && e.hot[i].backlog <= finishCrumb {
		e.orphan += e.hot[i].backlog * float64(e.mCnt[i])
		e.hot[i].backlog = 0
		return // done, exactly as pass 2's finish branch
	}
	if e.tryLazy(i) {
		return
	}
	e.activate(i)
}

// lzHeapPush and lzHeapPop maintain the max-heap of pending coordinate
// thresholds (largest fires first as lzG decays).
func (e *engine) lzHeapPush(ev lzEvent) {
	h := append(e.lzHeap, ev)
	j := len(h) - 1
	for j > 0 {
		p := (j - 1) / 2
		if h[p].g >= h[j].g {
			break
		}
		h[p], h[j] = h[j], h[p]
		j = p
	}
	e.lzHeap = h
}

func (e *engine) lzHeapPop() lzEvent {
	h := e.lzHeap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		m := j
		if l < len(h) && h[l].g > h[m].g {
			m = l
		}
		if r < len(h) && h[r].g > h[m].g {
			m = r
		}
		if m == j {
			break
		}
		h[j], h[m] = h[m], h[j]
		j = m
	}
	e.lzHeap = h
	return top
}

// recordCompletions detects burst completions: burst b is done when the
// cumulative delivered volume reaches its target (per-flow demand cannot
// over-deliver, so the aggregate crossing implies every flow finished).
// The completion instant is interpolated within the step; half a base RTT
// approximates the final ACK's return path.
func (e *engine) recordCompletions(served float64, dt, stepEnd sim.Time) {
	for e.burstsDone < e.cfg.Bursts {
		target := float64(e.burstsDone+1) * float64(e.cfg.Flows) * e.segs
		if e.cumDelivered < target-e.crumbEps {
			break
		}
		if e.releasedFlows < float64((e.burstsDone+1)*e.cfg.Flows) {
			break // not every flow of this burst has even been released
		}
		t := stepEnd
		if served > 0 {
			over := e.cumDelivered - target
			if over < 0 {
				over = 0
			}
			if over > served {
				over = served
			}
			t = stepEnd - sim.Time(over/served*float64(dt))
		}
		start := sim.Time(e.burstsDone) * e.cfg.Interval
		e.bcts = append(e.bcts, t+e.cfg.BaseRTT/2-start)
		e.burstsDone++
	}
}

// checkConservation verifies that released volume equals delivered volume
// plus what is still unsent or queued, and that the aggregate queue agrees
// with the per-flow backlogs.
func (e *engine) checkConservation() error {
	var unsent, backlog float64
	for i := range e.flows {
		w := float64(e.mCnt[i])
		unsent += e.hot[i].unsent * w
		b := e.hot[i].backlog
		if e.lazy[i] {
			b *= e.lzG / e.gRef[i] // parked: deliveries deferred in lzG
		}
		backlog += b * w
	}
	backlog += e.orphan
	released := e.releasedFlows * e.segs
	tol := 1e-6*released + float64(e.cfg.Flows)*volEps*10 + 1e-3
	if diff := math.Abs(released - (e.cumDelivered + unsent + backlog)); diff > tol {
		return fmt.Errorf("flowsim: volume conservation violated at %v: released %.3f != delivered %.3f + unsent %.3f + queued %.3f (diff %.6f)",
			e.now, released, e.cumDelivered, unsent, backlog, diff)
	}
	if diff := math.Abs(backlog - e.q); diff > 1e-3+1e-6*e.capPkts {
		return fmt.Errorf("flowsim: queue accounting violated at %v: aggregate %.6f vs per-flow sum %.6f",
			e.now, e.q, backlog)
	}
	return nil
}

// finish assembles the Result.
func (e *engine) finish() (*Result, error) {
	cfg := e.cfg
	if err := e.checkConservation(); err != nil {
		return nil, err
	}
	if len(e.bcts) < cfg.Bursts {
		return nil, fmt.Errorf("flowsim: only %d of %d bursts completed", len(e.bcts), cfg.Bursts)
	}
	r := &Result{
		Flows:         cfg.Flows,
		AlgName:       cfg.CC.Name,
		QueueCapacity: cfg.QueueCapacityPackets,
		ECNThreshold:  cfg.ECNThresholdPackets,
		Steps:         e.steps,
		SimNow:        e.now,
	}

	avg := stats.NewSeries(0, int64(cfg.SampleInterval), e.smp.perBurst)
	copy(avg.Values, e.smp.avg)
	avg.Scale(1 / float64(e.smp.measured))
	r.AvgQueue = avg
	r.MaxQueue = e.smp.maxQ
	if e.smp.busy > 0 {
		r.FracBelowK = float64(e.smp.belowK) / float64(e.smp.busy)
	}
	spikeSamples := int(2 * sim.Millisecond / cfg.SampleInterval)
	for i := 0; i < spikeSamples && i < len(avg.Values); i++ {
		if avg.Values[i] > r.SpikePackets {
			r.SpikePackets = avg.Values[i]
		}
	}

	var bctSum sim.Time
	measured := e.bcts[e.smp.first:]
	r.BCTs = append(r.BCTs, measured...)
	for _, b := range measured {
		bctSum += b
		if b > r.MaxBCT {
			r.MaxBCT = b
		}
	}
	r.MeanBCT = bctSum / sim.Time(len(measured))

	round := func(v float64) int64 { return int64(math.Round(v)) }
	r.Timeouts = round(e.timeouts - e.baseTimeouts)
	r.FastRetransmits = round(e.fastRetx - e.baseFastRetx)
	r.RetransmitPackets = round(e.retxPkts - e.baseRetxPkts)
	r.Drops = round(e.drops - e.baseDrops)
	r.Marks = round(e.marks - e.baseMarks)
	r.SentPackets = round(e.sent - e.baseSent)
	r.DeliveredPackets = round(e.cumDelivered - e.baseDelivered)
	// Per-flow end-state: every member of a record shares its controller,
	// so each member gets the record's window (and alpha), written at the
	// member's flow ID so the histograms match per-flow runs flow for flow.
	r.FinalCwndPkts = make([]float64, cfg.Flows)
	alphas := e.flows[0].ctrl.kind == KindDCTCP
	if alphas {
		r.FinalAlphas = make([]float64, cfg.Flows)
	}
	for i := range e.flows {
		cnt := int64(e.mCnt[i])
		r.CwndUpdates += e.flows[i].ctrl.updates * cnt
		win := e.flows[i].ctrl.window()
		for _, m := range e.perm[e.mOff[i] : e.mOff[i]+e.mCnt[i]] {
			r.FinalCwndPkts[m] = win
			if alphas {
				r.FinalAlphas[m] = e.flows[i].ctrl.alpha
			}
		}
	}
	r.Cohorts = len(e.mCnt)
	r.CohortSplits = e.splitsMade
	r.PeakCohortWeight = e.peakW
	return r, nil
}
