package flowsim

import "incastlab/internal/sim"

// sampler reproduces the packet simulator's per-burst queue sampling on
// top of fluid steps: sample times lie on a fixed grid relative to each
// measured burst's start, and values are linearly interpolated between
// step boundaries (exact for the piecewise-linear fluid queue). Because
// the sample window never exceeds the burst interval, a single cursor
// (burst m, sample idx) advances monotonically with time.
type sampler struct {
	interval sim.Time // sample spacing
	burstGap sim.Time // burst start-to-start spacing
	perBurst int      // samples per burst window
	first    int      // first measured burst index
	measured int      // number of measured bursts
	k        float64  // ECN threshold, for FracBelowK accounting

	avg          []float64 // element-wise sums across bursts
	busy, belowK int
	maxQ         float64

	m, idx int // cursor: measured-burst offset and sample index
	prevT  sim.Time
	prevQ  float64
}

// busyFloor is the minimum interpolated depth that counts as a busy
// sample: the packet simulator samples whole packets, so fluid slivers
// below half a packet must not register as busy below-K observations.
const busyFloor = 0.5

func newSampler(cfg Config, first int) sampler {
	perBurst := int(cfg.SampleWindow / cfg.SampleInterval)
	if perBurst < 1 {
		perBurst = 1
	}
	return sampler{
		interval: cfg.SampleInterval,
		burstGap: cfg.Interval,
		perBurst: perBurst,
		first:    first,
		measured: cfg.Bursts - first,
		k:        float64(cfg.ECNThresholdPackets),
		avg:      make([]float64, perBurst),
	}
}

func (s *sampler) measuredStart() sim.Time { return sim.Time(s.first) * s.burstGap }

// advance records every grid sample in (prevT, now], interpolating the
// queue linearly between the previous and current step boundary.
func (s *sampler) advance(now sim.Time, q float64) {
	for s.m < s.measured {
		b := s.first + s.m
		t := sim.Time(b)*s.burstGap + sim.Time(s.idx)*s.interval
		if t > now {
			break
		}
		v := q
		if now > s.prevT && t >= s.prevT {
			v = s.prevQ + (q-s.prevQ)*float64(t-s.prevT)/float64(now-s.prevT)
		}
		if v < 0 {
			v = 0
		}
		s.avg[s.idx] += v
		if v > s.maxQ {
			s.maxQ = v
		}
		if v >= busyFloor {
			s.busy++
			if v < s.k {
				s.belowK++
			}
		}
		s.idx++
		if s.idx >= s.perBurst {
			s.idx = 0
			s.m++
		}
	}
	s.prevT, s.prevQ = now, q
}
