package flowsim

import (
	"testing"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/workload"
)

// TestCalibrationDebug prints the quick Fig-5 points for manual
// calibration; run with -v. Kept separate from the assertions in
// flowsim_test.go.
func TestCalibrationDebug(t *testing.T) {
	for _, n := range []int{80, 100, 500, 1000, 1400} {
		segs := workload.BytesPerFlowFor(10*netsim.Gbps, 15*sim.Millisecond, n) / netsim.MSS
		res, err := Run(Config{
			Flows:           n,
			SegmentsPerFlow: segs,
			Bursts:          4,
			Check:           true,
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var busySum float64
		var busyN int
		for _, v := range res.AvgQueue.Values {
			if v >= 0.5 {
				busySum += v
				busyN++
			}
		}
		busyAvg := 0.0
		if busyN > 0 {
			busyAvg = busySum / float64(busyN)
		}
		t.Logf("n=%4d segs=%3d mode=%-15q busyAvg=%7.1f max=%6.1f spike=%6.1f fracBelowK=%.3f meanBCT=%7.3fms maxBCT=%7.3fms to=%d fr=%d drops=%d marks=%d sent=%d steps=%d",
			n, segs, Classify(res.Timeouts, res.FracBelowK), busyAvg, res.MaxQueue, res.SpikePackets,
			res.FracBelowK, float64(res.MeanBCT)/1e6, float64(res.MaxBCT)/1e6,
			res.Timeouts, res.FastRetransmits, res.Drops, res.Marks, res.SentPackets, res.Steps)
	}
}
